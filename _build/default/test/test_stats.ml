(* Tests for Dsim.Stats accumulators. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a)

module Summary = struct
  let test_basic () =
    let s = Dsim.Stats.Summary.create () in
    List.iter (Dsim.Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
    Alcotest.(check int) "count" 4 (Dsim.Stats.Summary.count s);
    Alcotest.(check bool) "mean" true (feq (Dsim.Stats.Summary.mean s) 2.5);
    Alcotest.(check bool) "variance" true
      (feq (Dsim.Stats.Summary.variance s) (5. /. 3.));
    Alcotest.(check bool) "min" true (feq (Dsim.Stats.Summary.min s) 1.);
    Alcotest.(check bool) "max" true (feq (Dsim.Stats.Summary.max s) 4.);
    Alcotest.(check bool) "total" true (feq (Dsim.Stats.Summary.total s) 10.)

  let test_empty () =
    let s = Dsim.Stats.Summary.create () in
    Alcotest.(check bool) "mean nan" true (Float.is_nan (Dsim.Stats.Summary.mean s));
    Alcotest.(check bool) "variance 0" true (Dsim.Stats.Summary.variance s = 0.)

  let prop_matches_direct =
    QCheck.Test.make ~name:"summary matches direct two-pass computation" ~count:200
      QCheck.(list_of_size (Gen.int_range 2 100) (float_range (-100.) 100.))
      (fun xs ->
        let s = Dsim.Stats.Summary.create () in
        List.iter (Dsim.Stats.Summary.add s) xs;
        let n = float_of_int (List.length xs) in
        let mean = List.fold_left ( +. ) 0. xs /. n in
        let var =
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
        in
        feq ~eps:1e-6 (Dsim.Stats.Summary.mean s) mean
        && feq ~eps:1e-6 (Dsim.Stats.Summary.variance s) var)

  let prop_merge =
    QCheck.Test.make ~name:"merged summary equals summary of concatenation" ~count:200
      QCheck.(
        pair
          (list_of_size (Gen.int_range 1 50) (float_range (-10.) 10.))
          (list_of_size (Gen.int_range 1 50) (float_range (-10.) 10.)))
      (fun (xs, ys) ->
        let sa = Dsim.Stats.Summary.create ()
        and sb = Dsim.Stats.Summary.create ()
        and sc = Dsim.Stats.Summary.create () in
        List.iter (Dsim.Stats.Summary.add sa) xs;
        List.iter (Dsim.Stats.Summary.add sb) ys;
        List.iter (Dsim.Stats.Summary.add sc) (xs @ ys);
        let m = Dsim.Stats.Summary.merge sa sb in
        feq ~eps:1e-6 (Dsim.Stats.Summary.mean m) (Dsim.Stats.Summary.mean sc)
        && feq ~eps:1e-6 (Dsim.Stats.Summary.variance m) (Dsim.Stats.Summary.variance sc)
        && Dsim.Stats.Summary.count m = Dsim.Stats.Summary.count sc)
end

module Counter = struct
  let test_basic () =
    let c = Dsim.Stats.Counter.create () in
    Dsim.Stats.Counter.incr c "a";
    Dsim.Stats.Counter.incr ~by:5 c "a";
    Dsim.Stats.Counter.incr c "b";
    Alcotest.(check int) "a" 6 (Dsim.Stats.Counter.get c "a");
    Alcotest.(check int) "b" 1 (Dsim.Stats.Counter.get c "b");
    Alcotest.(check int) "missing" 0 (Dsim.Stats.Counter.get c "zzz");
    Alcotest.(check (list (pair string int)))
      "to_list sorted"
      [ ("a", 6); ("b", 1) ]
      (Dsim.Stats.Counter.to_list c)
end

module Histogram = struct
  let test_buckets () =
    let h = Dsim.Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
    List.iter (Dsim.Stats.Histogram.add h) [ -1.; 0.; 1.9; 2.; 9.99; 10.; 100. ];
    Alcotest.(check int) "count" 7 (Dsim.Stats.Histogram.count h);
    Alcotest.(check int) "underflow" 1 (Dsim.Stats.Histogram.underflow h);
    Alcotest.(check int) "overflow" 2 (Dsim.Stats.Histogram.overflow h);
    let buckets = Dsim.Stats.Histogram.bucket_counts h in
    let counts = Array.map (fun (_, _, c) -> c) buckets in
    Alcotest.(check (array int)) "bucket counts" [| 2; 1; 0; 0; 1 |] counts

  let test_bad_args () =
    Alcotest.check_raises "0 buckets"
      (Invalid_argument "Histogram.create: buckets must be positive") (fun () ->
        ignore (Dsim.Stats.Histogram.create ~lo:0. ~hi:1. ~buckets:0))
end

module Timeseries = struct
  let test_time_average () =
    let ts = Dsim.Stats.Timeseries.create 0. in
    (* 0 on [0,10), 10 on [10,20): average over [0,20] is 5. *)
    Dsim.Stats.Timeseries.update ts ~at:10. 10.;
    Alcotest.(check bool) "value" true (Dsim.Stats.Timeseries.value ts = 10.);
    let avg = Dsim.Stats.Timeseries.time_average ts ~at:20. in
    Alcotest.(check bool) "average" true (feq avg 5.)

  let test_backwards_time () =
    let ts = Dsim.Stats.Timeseries.create ~at:5. 1. in
    Alcotest.check_raises "backwards"
      (Invalid_argument "Timeseries.update: time went backwards") (fun () ->
        Dsim.Stats.Timeseries.update ts ~at:4. 2.)
end

module Reservoir = struct
  let test_small_exact () =
    let r = Dsim.Stats.Reservoir.create ~capacity:100 (Dsim.Rng.create 1) in
    List.iter (Dsim.Stats.Reservoir.add r) [ 1.; 2.; 3.; 4.; 5. ];
    Alcotest.(check bool) "median" true (feq (Dsim.Stats.Reservoir.median r) 3.);
    Alcotest.(check bool) "p0" true (feq (Dsim.Stats.Reservoir.percentile r 0.) 1.);
    Alcotest.(check bool) "p100" true (feq (Dsim.Stats.Reservoir.percentile r 100.) 5.)

  let test_sampling_is_representative () =
    let r = Dsim.Stats.Reservoir.create ~capacity:500 (Dsim.Rng.create 2) in
    for i = 1 to 100000 do
      Dsim.Stats.Reservoir.add r (float_of_int i)
    done;
    Alcotest.(check int) "seen" 100000 (Dsim.Stats.Reservoir.count r);
    let med = Dsim.Stats.Reservoir.median r in
    Alcotest.(check bool) "median near 50000" true
      (med > 40000. && med < 60000.)

  let test_empty () =
    let r = Dsim.Stats.Reservoir.create (Dsim.Rng.create 3) in
    Alcotest.(check bool) "nan" true (Float.is_nan (Dsim.Stats.Reservoir.median r))
end

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "summary basic" `Quick Summary.test_basic;
        Alcotest.test_case "summary empty" `Quick Summary.test_empty;
        QCheck_alcotest.to_alcotest Summary.prop_matches_direct;
        QCheck_alcotest.to_alcotest Summary.prop_merge;
        Alcotest.test_case "counter" `Quick Counter.test_basic;
        Alcotest.test_case "histogram buckets" `Quick Histogram.test_buckets;
        Alcotest.test_case "histogram bad args" `Quick Histogram.test_bad_args;
        Alcotest.test_case "timeseries average" `Quick Timeseries.test_time_average;
        Alcotest.test_case "timeseries backwards" `Quick Timeseries.test_backwards_time;
        Alcotest.test_case "reservoir exact small" `Quick Reservoir.test_small_exact;
        Alcotest.test_case "reservoir representative" `Slow
          Reservoir.test_sampling_is_representative;
        Alcotest.test_case "reservoir empty" `Quick Reservoir.test_empty;
      ] );
  ]
