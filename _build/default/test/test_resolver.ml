(* Tests for syntax-directed resolution. *)

let n r h u = Naming.Name.make ~region:r ~host:h ~user:u

let east_space () =
  let sp = Naming.Name_space.create Naming.Name_space.By_host in
  let alice = n "east" "h1" "alice" in
  Naming.Name_space.register sp alice;
  Naming.Name_space.assign_context sp (Naming.Name_space.context_of sp alice) [ 10; 11 ];
  (sp, alice)

let test_local_resolution () =
  let sp, alice = east_space () in
  match Naming.Resolver.resolve sp ~local_region:"east" alice with
  | Naming.Resolver.Authoritative servers ->
      Alcotest.(check (list int)) "servers" [ 10; 11 ] servers
  | _ -> Alcotest.fail "expected Authoritative"

let test_foreign_forwarded () =
  let sp, _ = east_space () in
  match Naming.Resolver.resolve sp ~local_region:"east" (n "west" "h9" "bob") with
  | Naming.Resolver.Forward_to_region r -> Alcotest.(check string) "target" "west" r
  | _ -> Alcotest.fail "expected Forward_to_region"

let test_unknown_local () =
  let sp, _ = east_space () in
  match Naming.Resolver.resolve sp ~local_region:"east" (n "east" "h1" "mallory") with
  | Naming.Resolver.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown"

let test_registered_but_unassigned () =
  let sp = Naming.Name_space.create Naming.Name_space.By_host in
  let carol = n "east" "h2" "carol" in
  Naming.Name_space.register sp carol;
  match Naming.Resolver.resolve sp ~local_region:"east" carol with
  | Naming.Resolver.Unknown -> ()
  | _ -> Alcotest.fail "no servers should resolve as Unknown"

let spaces_of_list l region = List.assoc_opt region l

let test_resolution_path_direct () =
  let sp, alice = east_space () in
  let steps =
    Naming.Resolver.resolution_path ~start_region:"east"
      ~spaces:(spaces_of_list [ ("east", sp) ])
      alice
  in
  match steps with
  | [ Naming.Resolver.Looked_up "east"; Naming.Resolver.Found [ 10; 11 ] ] -> ()
  | _ -> Alcotest.failf "unexpected path (%d steps)" (List.length steps)

let test_resolution_path_forwarded () =
  let east, _ = east_space () in
  let west = Naming.Name_space.create Naming.Name_space.By_host in
  let bob = n "west" "h9" "bob" in
  Naming.Name_space.register west bob;
  Naming.Name_space.assign_context west (Naming.Name_space.context_of west bob) [ 20 ];
  let steps =
    Naming.Resolver.resolution_path ~start_region:"east"
      ~spaces:(spaces_of_list [ ("east", east); ("west", west) ])
      bob
  in
  match steps with
  | [
   Naming.Resolver.Looked_up "east";
   Naming.Resolver.Forwarded ("east", "west");
   Naming.Resolver.Looked_up "west";
   Naming.Resolver.Found [ 20 ];
  ] ->
      ()
  | _ -> Alcotest.failf "unexpected path (%d steps)" (List.length steps)

let test_resolution_path_unreachable_region () =
  let east, _ = east_space () in
  let steps =
    Naming.Resolver.resolution_path ~start_region:"east"
      ~spaces:(spaces_of_list [ ("east", east) ])
      (n "mars" "h1" "marvin")
  in
  match List.rev steps with
  | Naming.Resolver.Failed _ :: _ -> ()
  | _ -> Alcotest.fail "expected failure step"

let test_resolution_path_unknown_user () =
  let east, _ = east_space () in
  let steps =
    Naming.Resolver.resolution_path ~start_region:"east"
      ~spaces:(spaces_of_list [ ("east", east) ])
      (n "east" "h1" "nobody")
  in
  match List.rev steps with
  | Naming.Resolver.Failed _ :: _ -> ()
  | _ -> Alcotest.fail "expected failure step"

let suite =
  [
    ( "resolver",
      [
        Alcotest.test_case "local resolution" `Quick test_local_resolution;
        Alcotest.test_case "foreign names forwarded" `Quick test_foreign_forwarded;
        Alcotest.test_case "unknown local name" `Quick test_unknown_local;
        Alcotest.test_case "registered but unassigned" `Quick
          test_registered_but_unassigned;
        Alcotest.test_case "path: direct" `Quick test_resolution_path_direct;
        Alcotest.test_case "path: forwarded" `Quick test_resolution_path_forwarded;
        Alcotest.test_case "path: unreachable region" `Quick
          test_resolution_path_unreachable_region;
        Alcotest.test_case "path: unknown user" `Quick test_resolution_path_unknown_user;
      ] );
  ]
