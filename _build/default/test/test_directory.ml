(* Tests for the attribute directory. *)

open Naming

let nm i = Name.make ~region:"east" ~host:"h1" ~user:(Printf.sprintf "u%d" i)

let prof i attrs = { Directory.name = nm i; attrs }

let sample_dir () =
  let d = Directory.create () in
  Directory.add d (prof 1 [ Attribute.text "org" "acme"; Attribute.number "exp" 3. ]);
  Directory.add d (prof 2 [ Attribute.text "org" "acme"; Attribute.number "exp" 9. ]);
  Directory.add d (prof 3 [ Attribute.text "org" "globex" ]);
  d

let test_add_find_remove () =
  let d = sample_dir () in
  Alcotest.(check int) "size" 3 (Directory.size d);
  Alcotest.(check bool) "find" true (Directory.find d (nm 2) <> None);
  (try
     Directory.add d (prof 1 []);
     Alcotest.fail "duplicate add accepted"
   with Invalid_argument _ -> ());
  Directory.remove d (nm 2);
  Alcotest.(check int) "after remove" 2 (Directory.size d);
  Alcotest.(check bool) "gone" true (Directory.find d (nm 2) = None);
  Directory.remove d (nm 2) (* idempotent *)

let test_update () =
  let d = sample_dir () in
  Directory.update d (prof 1 [ Attribute.text "org" "initech" ]);
  let a = Directory.query d ~viewer:Attribute.anyone (Attribute.Eq ("org", Attribute.Text "initech")) in
  Alcotest.(check int) "updated profile matches" 1 (List.length a.Directory.matches);
  let old = Directory.query d ~viewer:Attribute.anyone (Attribute.Eq ("org", Attribute.Text "acme")) in
  Alcotest.(check int) "old value gone from u1" 1 (List.length old.Directory.matches)

let test_query_indexed () =
  let d = sample_dir () in
  let a = Directory.query d ~viewer:Attribute.anyone (Attribute.Eq ("org", Attribute.Text "acme")) in
  Alcotest.(check int) "matches" 2 (List.length a.Directory.matches);
  (* index should examine only the bucket, not all three profiles *)
  Alcotest.(check int) "examined bucket only" 2 a.Directory.examined

let test_query_scan () =
  let d = sample_dir () in
  let a = Directory.query d ~viewer:Attribute.anyone (Attribute.Between ("exp", 5., 10.)) in
  Alcotest.(check int) "matches" 1 (List.length a.Directory.matches);
  Alcotest.(check int) "scanned all" 3 a.Directory.examined

let test_index_case_insensitive () =
  let d = sample_dir () in
  let a =
    Directory.query d ~viewer:Attribute.anyone (Attribute.Eq ("org", Attribute.Text "ACME"))
  in
  (* Eq is exact on the stored value, so "ACME" ≠ "acme"; the index
     must not produce false positives either. *)
  Alcotest.(check int) "exact equality respected" 0 (List.length a.Directory.matches)

let test_indexable () =
  Alcotest.(check bool) "top-level Eq" true
    (Directory.indexable (Attribute.Eq ("k", Attribute.Text "v")) = Some ("k", "v"));
  Alcotest.(check bool) "inside And" true
    (Directory.indexable
       (Attribute.And [ Attribute.Has_key "x"; Attribute.Eq ("k", Attribute.Text "V") ])
    = Some ("k", "v"));
  Alcotest.(check bool) "Or not indexable" true
    (Directory.indexable (Attribute.Or [ Attribute.Eq ("k", Attribute.Text "v") ]) = None);
  Alcotest.(check bool) "number Eq not indexable" true
    (Directory.indexable (Attribute.Eq ("k", Attribute.Number 3.)) = None)

let test_privacy_in_queries () =
  let d = Directory.create () in
  Directory.add d
    (prof 1 [ Attribute.text ~visibility:(Attribute.Org "acme") "org" "acme" ]);
  let hidden =
    Directory.query d ~viewer:Attribute.anyone (Attribute.Eq ("org", Attribute.Text "acme"))
  in
  Alcotest.(check int) "hidden from outsiders" 0 (List.length hidden.Directory.matches);
  let visible =
    Directory.query d ~viewer:(Attribute.member_of "acme")
      (Attribute.Eq ("org", Attribute.Text "acme"))
  in
  Alcotest.(check int) "visible to org" 1 (List.length visible.Directory.matches)

let test_profiles_sorted () =
  let d = sample_dir () in
  let names = List.map (fun p -> p.Directory.name) (Directory.profiles d) in
  Alcotest.(check bool) "sorted" true (names = List.sort Name.compare names)

(* Property: for indexable queries, the indexed answer equals a full
   scan with the same predicate. *)
let prop_index_equals_scan =
  QCheck.Test.make ~name:"indexed query equals full scan" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 4))
    (fun (n, which_org) ->
      let orgs = [| "acme"; "globex"; "initech"; "umbrella"; "wonka" |] in
      let d = Directory.create () in
      let rng = Dsim.Rng.create (n + which_org) in
      for i = 1 to n do
        Directory.add d
          (prof i
             [
               Attribute.text "org" orgs.(Dsim.Rng.int rng 5);
               Attribute.number "exp" (float_of_int (Dsim.Rng.int rng 20));
             ])
      done;
      let pred = Attribute.Eq ("org", Attribute.Text orgs.(which_org)) in
      let indexed = Directory.query d ~viewer:Attribute.anyone pred in
      let by_scan =
        List.filter
          (fun p -> Attribute.matches ~viewer:Attribute.anyone ~attrs:p.Directory.attrs pred)
          (Directory.profiles d)
        |> List.map (fun p -> p.Directory.name)
        |> List.sort_uniq Name.compare
      in
      indexed.Directory.matches = by_scan)

let suite =
  [
    ( "directory",
      [
        Alcotest.test_case "add/find/remove" `Quick test_add_find_remove;
        Alcotest.test_case "update" `Quick test_update;
        Alcotest.test_case "indexed query" `Quick test_query_indexed;
        Alcotest.test_case "scan query" `Quick test_query_scan;
        Alcotest.test_case "exact equality in index path" `Quick
          test_index_case_insensitive;
        Alcotest.test_case "indexable detection" `Quick test_indexable;
        Alcotest.test_case "privacy in queries" `Quick test_privacy_in_queries;
        Alcotest.test_case "profiles sorted" `Quick test_profiles_sorted;
        QCheck_alcotest.to_alcotest prop_index_equals_scan;
      ] );
  ]
