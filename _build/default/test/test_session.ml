(* Tests for the user-session layer (§2 user interface). *)

let make () =
  let sys = Mail.Syntax_system.create (Netsim.Topology.paper_fig1 ()) in
  let users = Mail.Syntax_system.users sys in
  (sys, List.nth users 0, List.nth users 20)

let deliver sys = Mail.Syntax_system.quiesce sys

let test_compose_and_fetch () =
  let sys, alice, bob = make () in
  let sa = Mail.Session.open_session sys alice in
  let sb = Mail.Session.open_session sys bob in
  ignore (Mail.Session.compose sa ~to_:bob ~subject:"hi" ~body:"hello bob" ());
  deliver sys;
  let stats = Mail.Session.fetch sb in
  Alcotest.(check int) "retrieved" 1 stats.Mail.User_agent.retrieved;
  Alcotest.(check int) "one entry" 1 (List.length (Mail.Session.inbox sb));
  Alcotest.(check int) "unread" 1 (Mail.Session.unread_count sb)

let test_read_marks_read () =
  let sys, alice, bob = make () in
  let sa = Mail.Session.open_session sys alice in
  let sb = Mail.Session.open_session sys bob in
  ignore (Mail.Session.compose sa ~to_:bob ~subject:"s" ());
  deliver sys;
  ignore (Mail.Session.fetch sb);
  let e = List.hd (Mail.Session.inbox sb) in
  let m = Mail.Session.read sb e.Mail.Session.seq in
  Alcotest.(check string) "subject" "s" m.Mail.Message.subject;
  Alcotest.(check int) "no unread" 0 (Mail.Session.unread_count sb)

let test_reply_addresses_sender () =
  let sys, alice, bob = make () in
  let sa = Mail.Session.open_session sys alice in
  let sb = Mail.Session.open_session sys bob in
  ignore (Mail.Session.compose sa ~to_:bob ~subject:"ping" ());
  deliver sys;
  ignore (Mail.Session.fetch sb);
  let e = List.hd (Mail.Session.inbox sb) in
  let r = Mail.Session.reply sb e ~body:"pong" () in
  Alcotest.(check bool) "to alice" true (Naming.Name.equal r.Mail.Message.recipient alice);
  Alcotest.(check string) "re subject" "Re: ping" r.Mail.Message.subject;
  deliver sys;
  ignore (Mail.Session.fetch sa);
  let ea = List.hd (Mail.Session.inbox sa) in
  (* replying to a reply does not stack Re: *)
  let r2 = Mail.Session.reply sa ea () in
  Alcotest.(check string) "no Re: Re:" "Re: ping" r2.Mail.Message.subject

let test_delete_and_save () =
  let sys, alice, bob = make () in
  let sa = Mail.Session.open_session sys alice in
  let sb = Mail.Session.open_session sys bob in
  ignore (Mail.Session.compose sa ~to_:bob ~subject:"a" ());
  ignore (Mail.Session.compose sa ~to_:bob ~subject:"b" ());
  ignore (Mail.Session.compose sa ~to_:bob ~subject:"c" ());
  deliver sys;
  ignore (Mail.Session.fetch sb);
  let entries = Mail.Session.inbox sb in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  let e1 = List.nth entries 0 and e2 = List.nth entries 1 in
  Mail.Session.delete sb e1.Mail.Session.seq;
  Mail.Session.save sb e2.Mail.Session.seq ~folder:"projects";
  Alcotest.(check int) "one left in inbox" 1 (List.length (Mail.Session.inbox sb));
  Alcotest.(check int) "one in folder" 1 (List.length (Mail.Session.folder sb "projects"));
  Alcotest.(check (list string)) "folders" [ "projects" ] (Mail.Session.folders sb);
  Alcotest.(check (list Alcotest.string)) "unknown folder" []
    (List.map (fun m -> m.Mail.Message.subject) (Mail.Session.folder sb "nope"))

let test_unknown_seq () =
  let sys, alice, _ = make () in
  let sa = Mail.Session.open_session sys alice in
  (try
     ignore (Mail.Session.read sa 99);
     Alcotest.fail "unknown seq accepted"
   with Not_found -> ());
  try
    Mail.Session.delete sa 99;
    Alcotest.fail "unknown seq accepted"
  with Not_found -> ()

let test_fetch_idempotent () =
  let sys, alice, bob = make () in
  let sa = Mail.Session.open_session sys alice in
  let sb = Mail.Session.open_session sys bob in
  ignore (Mail.Session.compose sa ~to_:bob ());
  deliver sys;
  ignore (Mail.Session.fetch sb);
  ignore (Mail.Session.fetch sb);
  Alcotest.(check int) "no duplicate entries" 1 (List.length (Mail.Session.inbox sb))

let test_invalid_compose () =
  let sys, alice, bob = make () in
  let sa = Mail.Session.open_session sys alice in
  try
    ignore (Mail.Session.compose sa ~to_:bob ~subject:"two\nlines" ());
    Alcotest.fail "newline subject accepted"
  with Invalid_argument _ -> ()

let test_scenario_replicate () =
  let spec =
    { Mail.Scenario.default_spec with duration = 1000.; mail_count = 50; check_period = 100. }
  in
  let est =
    Mail.Scenario.replicate ~runs:3
      (Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()))
      spec
      (fun o -> o.Mail.Scenario.final_polls_per_check)
  in
  Alcotest.(check int) "runs" 3 est.Mail.Scenario.runs;
  Alcotest.(check bool) "mean near 1" true
    (est.Mail.Scenario.mean > 0.9 && est.Mail.Scenario.mean < 1.3);
  Alcotest.(check bool) "dispersion finite" true
    (Float.is_finite est.Mail.Scenario.stddev)

let suite =
  [
    ( "session",
      [
        Alcotest.test_case "compose and fetch" `Quick test_compose_and_fetch;
        Alcotest.test_case "read marks read" `Quick test_read_marks_read;
        Alcotest.test_case "reply addresses sender" `Quick test_reply_addresses_sender;
        Alcotest.test_case "delete and save to folder" `Quick test_delete_and_save;
        Alcotest.test_case "unknown sequence numbers" `Quick test_unknown_seq;
        Alcotest.test_case "fetch idempotent" `Quick test_fetch_idempotent;
        Alcotest.test_case "invalid compose" `Quick test_invalid_compose;
        Alcotest.test_case "scenario replication" `Slow test_scenario_replicate;
      ] );
  ]
