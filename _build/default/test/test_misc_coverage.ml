(* Edge-case sweep across modules: behaviours not covered by the
   per-module suites. *)

(* --- engine ---------------------------------------------------------- *)

let test_cancel_from_within_run () =
  let e = Dsim.Engine.create () in
  let fired = ref false in
  let late = Dsim.Engine.schedule_at e 10. (fun () -> fired := true) in
  ignore (Dsim.Engine.schedule_at e 1. (fun () -> Dsim.Engine.cancel e late));
  Dsim.Engine.run e;
  Alcotest.(check bool) "cancelled mid-run" false !fired

let test_step_then_run () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  ignore (Dsim.Engine.schedule_at e 1. (fun () -> log := 1 :: !log));
  ignore (Dsim.Engine.schedule_at e 2. (fun () -> log := 2 :: !log));
  ignore (Dsim.Engine.step e);
  Dsim.Engine.run e;
  Alcotest.(check (list int)) "mixing step and run" [ 1; 2 ] (List.rev !log)

let test_run_until_twice () =
  let e = Dsim.Engine.create () in
  Dsim.Engine.run ~until:5. e;
  Dsim.Engine.run ~until:3. e;
  (* horizon in the past: clock must not go backwards *)
  Alcotest.(check (float 1e-9)) "clock monotone" 5. (Dsim.Engine.now e)

(* --- balancer caps ---------------------------------------------------- *)

let test_balancer_max_passes_cap () =
  let problem = Loadbalance.Assignment.problem_of_site (Netsim.Topology.paper_fig1 ()) in
  let t = Loadbalance.Balancer.initialize problem in
  let stats = Loadbalance.Balancer.balance ~max_passes:1 problem t in
  Alcotest.(check bool) "not converged in one pass" false
    stats.Loadbalance.Balancer.converged;
  Alcotest.(check int) "passes capped" 1 stats.Loadbalance.Balancer.passes

(* --- mm1 extras -------------------------------------------------------- *)

let test_mm1_distribution_sums () =
  let rho = 0.6 in
  let total = ref 0. in
  for n = 0 to 200 do
    total := !total +. Queueing.Mm1.prob_n_customers ~rho n
  done;
  Alcotest.(check bool) "P(N=n) sums to ~1" true (Float.abs (!total -. 1.) < 1e-9)

let test_prob_wait_monotone () =
  let p t = Queueing.Mm1.prob_wait_exceeds ~arrival_rate:1. ~service_rate:2. t in
  Alcotest.(check bool) "decreasing in t" true (p 0.5 > p 1.0 && p 1.0 > p 2.0)

(* --- workload striping -------------------------------------------------- *)

let test_recipient_locality_striping () =
  let rng = Dsim.Rng.create 5 in
  let pop = { Queueing.Workload.size = 120; skew = 0. } in
  (* locality 1.0: recipient always shares the sender's stripe *)
  for _ = 1 to 300 do
    let sender = Dsim.Rng.int rng 120 in
    let r =
      Queueing.Workload.pick_recipient ~rng pop ~sender ~locality:1.0 ~regions:4
    in
    if r mod 4 <> sender mod 4 then
      Alcotest.failf "recipient %d not in sender %d's region" r sender
  done

(* --- graph edge cases --------------------------------------------------- *)

let test_subgraph_ignores_unknown_and_duplicates () =
  let g = Netsim.Topology.line ~n:3 ~weight:1. in
  let sub, mapping = Netsim.Graph.subgraph g [ 0; 0; 1; 99 ] in
  Alcotest.(check int) "two nodes" 2 (Netsim.Graph.node_count sub);
  Alcotest.(check int) "one edge" 1 (Netsim.Graph.edge_count sub);
  Alcotest.(check bool) "unknown unmapped" true (mapping 99 = None)

(* --- trace in systems ---------------------------------------------------- *)

let test_pipeline_traces_unresolvable () =
  let sys = Mail.Syntax_system.create (Netsim.Topology.paper_fig1 ()) in
  let users = Mail.Syntax_system.users sys in
  let victim = List.nth users 29 in
  (* migrate then remove the forwarding so the region lookup fails *)
  ignore victim;
  (* simpler: the trace records net status flips *)
  Netsim.Net.set_down (Mail.Syntax_system.net sys) 6;
  Netsim.Net.set_up (Mail.Syntax_system.net sys) 6;
  Alcotest.(check bool) "status flips traced" true
    (Dsim.Trace.count ~category:"net" (Mail.Syntax_system.trace sys) >= 2)

(* --- evaluation for design 2 ---------------------------------------------- *)

let test_evaluation_of_location () =
  let rng = Dsim.Rng.create 3 in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  let site =
    { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }
  in
  let sys = Mail.Location_system.create site in
  let users = Mail.Location_system.users sys in
  ignore
    (Mail.Location_system.submit sys ~sender:(List.nth users 0)
       ~recipient:(List.nth users 50) ());
  Mail.Location_system.quiesce sys;
  ignore (Mail.Location_system.check_mail sys (List.nth users 50));
  let r = Mail.Evaluation.of_location sys in
  Alcotest.(check int) "deposited" 1 r.Mail.Evaluation.deposited;
  Alcotest.(check int) "retrieved" 1 r.Mail.Evaluation.retrieved

(* --- heap stress ------------------------------------------------------------ *)

let test_heap_interleaved_push_pop () =
  let h = Dsim.Heap.create () in
  let rng = Dsim.Rng.create 9 in
  let reference = ref [] in
  for _ = 1 to 500 do
    if Dsim.Rng.bool rng || !reference = [] then begin
      let p = Dsim.Rng.float rng 100. in
      Dsim.Heap.push h p p;
      reference := p :: !reference
    end
    else begin
      let expected = List.fold_left Float.min infinity !reference in
      match Dsim.Heap.pop h with
      | Some (p, _) ->
          if Float.abs (p -. expected) > 1e-12 then
            Alcotest.failf "pop %f expected %f" p expected;
          let rec remove_one x = function
            | [] -> []
            | y :: tl -> if y = x then tl else y :: remove_one x tl
          in
          reference := remove_one expected !reference
      | None -> Alcotest.fail "empty heap with non-empty reference"
    end
  done

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "cancel from within run" `Quick test_cancel_from_within_run;
        Alcotest.test_case "step then run" `Quick test_step_then_run;
        Alcotest.test_case "run_until with past horizon" `Quick test_run_until_twice;
        Alcotest.test_case "balancer max_passes cap" `Quick test_balancer_max_passes_cap;
        Alcotest.test_case "M/M/1 distribution sums" `Quick test_mm1_distribution_sums;
        Alcotest.test_case "P(wait) monotone" `Quick test_prob_wait_monotone;
        Alcotest.test_case "recipient locality striping" `Quick
          test_recipient_locality_striping;
        Alcotest.test_case "subgraph odd inputs" `Quick
          test_subgraph_ignores_unknown_and_duplicates;
        Alcotest.test_case "status flips traced" `Quick test_pipeline_traces_unresolvable;
        Alcotest.test_case "evaluation of design 2" `Quick test_evaluation_of_location;
        Alcotest.test_case "heap interleaved stress" `Quick test_heap_interleaved_push_pop;
      ] );
  ]
