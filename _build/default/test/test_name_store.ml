(* Tests for the replicated name database (§2 / §4.2). *)

let nm u = Naming.Name.make ~region:"r" ~host:"h" ~user:u

let make ?(replicas = 3) () =
  let g = Netsim.Topology.ring ~n:(max 3 replicas) ~weight:1. in
  let engine = Dsim.Engine.create () in
  let store =
    Mail.Name_store.create ~engine ~graph:g ~replicas:(List.init replicas Fun.id) ()
  in
  (engine, store)

let test_write_propagates () =
  let engine, store = make () in
  Mail.Name_store.register store (nm "alice") [ 10; 11 ];
  (* immediately visible at the primary *)
  Alcotest.(check (option (list int))) "primary" (Some [ 10; 11 ])
    (Mail.Name_store.lookup store ~at:0 (nm "alice"));
  (* not yet at a secondary (propagation is asynchronous) *)
  Alcotest.(check bool) "secondary not yet" true
    (Mail.Name_store.lookup store ~at:1 (nm "alice") = None);
  Alcotest.(check int) "lagging replicas" 2 (Mail.Name_store.lag store (nm "alice"));
  Dsim.Engine.run engine;
  Alcotest.(check (option (list int))) "secondary after propagation" (Some [ 10; 11 ])
    (Mail.Name_store.lookup store ~at:1 (nm "alice"));
  Alcotest.(check bool) "converged" true (Mail.Name_store.converged store);
  Alcotest.(check int) "two update messages" 2 (Mail.Name_store.update_messages store)

let test_stale_reads_counted () =
  let engine, store = make () in
  Mail.Name_store.register store (nm "alice") [ 1 ];
  ignore (Mail.Name_store.lookup store ~at:2 (nm "alice"));
  Alcotest.(check int) "stale read" 1 (Mail.Name_store.stale_reads store);
  Dsim.Engine.run engine;
  ignore (Mail.Name_store.lookup store ~at:2 (nm "alice"));
  Alcotest.(check int) "fresh read not counted" 1 (Mail.Name_store.stale_reads store)

let test_versions_monotone () =
  let engine, store = make () in
  Mail.Name_store.register store (nm "alice") [ 1 ];
  Mail.Name_store.register store (nm "alice") [ 2 ];
  Dsim.Engine.run engine;
  Alcotest.(check int) "version 2 everywhere" 2
    (Mail.Name_store.version_at store ~at:2 (nm "alice"));
  Alcotest.(check (option (list int))) "latest value" (Some [ 2 ])
    (Mail.Name_store.lookup store ~at:2 (nm "alice"))

let test_unregister_tombstone () =
  let engine, store = make () in
  Mail.Name_store.register store (nm "alice") [ 1 ];
  Dsim.Engine.run engine;
  Mail.Name_store.unregister store (nm "alice");
  Dsim.Engine.run engine;
  List.iter
    (fun at ->
      Alcotest.(check bool)
        (Printf.sprintf "gone at %d" at)
        true
        (Mail.Name_store.lookup store ~at (nm "alice") = None))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "converged" true (Mail.Name_store.converged store)

let test_recovery_resync () =
  let engine, store = make () in
  let net = Mail.Name_store.net store in
  (* secondary 2 is down through two updates *)
  Netsim.Net.set_down net 2;
  Mail.Name_store.register store (nm "alice") [ 1 ];
  Mail.Name_store.register store (nm "bob") [ 2 ];
  Dsim.Engine.run engine;
  Alcotest.(check bool) "2 missed the updates" false (Mail.Name_store.converged store);
  Netsim.Net.set_up net 2;
  Dsim.Engine.run engine;
  Alcotest.(check bool) "resynchronised" true (Mail.Name_store.converged store);
  Alcotest.(check int) "two resync entries" 2 (Mail.Name_store.resyncs store);
  Alcotest.(check (option (list int))) "value arrived" (Some [ 1 ])
    (Mail.Name_store.lookup store ~at:2 (nm "alice"))

let test_out_of_order_versions_ignored () =
  (* A resync put racing a regular put must not regress versions:
     force the race by an update during the recovery event. *)
  let engine, store = make () in
  let net = Mail.Name_store.net store in
  Netsim.Net.set_down net 1;
  Mail.Name_store.register store (nm "alice") [ 1 ];
  Dsim.Engine.run engine;
  Netsim.Net.set_up net 1;
  (* v2 written immediately after the resync of v1 was queued *)
  Mail.Name_store.register store (nm "alice") [ 2 ];
  Dsim.Engine.run engine;
  Alcotest.(check (option (list int))) "newest wins" (Some [ 2 ])
    (Mail.Name_store.lookup store ~at:1 (nm "alice"))

let test_write_with_primary_down_rejected () =
  let _, store = make () in
  Netsim.Net.set_down (Mail.Name_store.net store) 0;
  try
    Mail.Name_store.register store (nm "alice") [ 1 ];
    Alcotest.fail "write accepted with primary down"
  with Invalid_argument _ -> ()

let test_update_cost_scales_with_replication () =
  (* The empirical counterpart of the §2 analytic model (C9): update
     messages = r - 1 per write. *)
  List.iter
    (fun r ->
      let engine, store = make ~replicas:r () in
      Mail.Name_store.register store (nm "alice") [ 1 ];
      Dsim.Engine.run engine;
      Alcotest.(check int)
        (Printf.sprintf "r=%d" r)
        (r - 1)
        (Mail.Name_store.update_messages store))
    [ 1; 2; 3; 5 ]

let test_unknown_replica_rejected () =
  let _, store = make () in
  try
    ignore (Mail.Name_store.lookup store ~at:99 (nm "alice"));
    Alcotest.fail "unknown replica accepted"
  with Invalid_argument _ -> ()

(* Random interleavings of writes, reads and one outage always end
   converged once the network drains. *)
let prop_random_ops_converge =
  QCheck.Test.make ~name:"random write/read/outage schedules converge" ~count:25
    QCheck.(triple (int_range 1 500) (int_range 2 5) (int_range 1 60))
    (fun (seed, replicas, writes) ->
      let g = Netsim.Topology.ring ~n:(max 3 replicas) ~weight:1. in
      let engine = Dsim.Engine.create () in
      let store =
        Mail.Name_store.create ~engine ~graph:g ~replicas:(List.init replicas Fun.id) ()
      in
      let rng = Dsim.Rng.create seed in
      for i = 0 to writes - 1 do
        let at = Dsim.Rng.float rng 500. in
        ignore
          (Dsim.Engine.schedule_at engine at (fun () ->
               Mail.Name_store.register store
                 (Naming.Name.make ~region:"r" ~host:"h"
                    ~user:(Printf.sprintf "u%d" (i mod 10)))
                 [ i ]))
      done;
      if replicas > 1 then begin
        let victim = 1 + Dsim.Rng.int rng (replicas - 1) in
        let start = Dsim.Rng.float rng 300. in
        Netsim.Failure.schedule_outage (Mail.Name_store.net store)
          { Netsim.Failure.node = victim; start; duration = Dsim.Rng.float rng 200. }
      end;
      Dsim.Engine.run engine;
      Mail.Name_store.converged store)

let suite =
  [
    ( "name_store",
      [
        Alcotest.test_case "write propagates" `Quick test_write_propagates;
        Alcotest.test_case "stale reads counted" `Quick test_stale_reads_counted;
        Alcotest.test_case "versions monotone" `Quick test_versions_monotone;
        Alcotest.test_case "unregister tombstone" `Quick test_unregister_tombstone;
        Alcotest.test_case "recovery resync" `Quick test_recovery_resync;
        Alcotest.test_case "out-of-order versions ignored" `Quick
          test_out_of_order_versions_ignored;
        Alcotest.test_case "write with primary down rejected" `Quick
          test_write_with_primary_down_rejected;
        Alcotest.test_case "update cost scales with replication" `Quick
          test_update_cost_scales_with_replication;
        Alcotest.test_case "unknown replica rejected" `Quick
          test_unknown_replica_rejected;
        QCheck_alcotest.to_alcotest prop_random_ops_converge;
      ] );
  ]
