(* Tests for distribution lists (group naming, §4.3). *)

let nm u = Naming.Name.make ~region:"east" ~host:"h1" ~user:u

let test_define_and_members () =
  let d = Mail.Dlist.create () in
  Mail.Dlist.define d ~name:(nm "staff") ~members:[ nm "alice"; nm "bob" ];
  Alcotest.(check bool) "is_list" true (Mail.Dlist.is_list d (nm "staff"));
  Alcotest.(check bool) "user is not a list" false (Mail.Dlist.is_list d (nm "alice"));
  Alcotest.(check int) "members" 2 (List.length (Mail.Dlist.members d (nm "staff")));
  Alcotest.(check int) "lists" 1 (List.length (Mail.Dlist.lists d))

let test_self_reference_rejected () =
  let d = Mail.Dlist.create () in
  try
    Mail.Dlist.define d ~name:(nm "loop") ~members:[ nm "loop" ];
    Alcotest.fail "self reference accepted"
  with Invalid_argument _ -> ()

let test_expand_plain_user () =
  let d = Mail.Dlist.create () in
  Alcotest.(check (list string)) "passthrough" [ "east.h1.alice" ]
    (List.map Naming.Name.to_string (Mail.Dlist.expand d (nm "alice")))

let test_expand_nested () =
  let d = Mail.Dlist.create () in
  Mail.Dlist.define d ~name:(nm "eng") ~members:[ nm "alice"; nm "bob" ];
  Mail.Dlist.define d ~name:(nm "mgmt") ~members:[ nm "carol" ];
  Mail.Dlist.define d ~name:(nm "all") ~members:[ nm "eng"; nm "mgmt"; nm "dave" ];
  let expanded = Mail.Dlist.expand d (nm "all") in
  Alcotest.(check int) "four users" 4 (List.length expanded);
  Alcotest.(check bool) "no list names inside" true
    (not (List.exists (fun n -> Mail.Dlist.is_list d n) expanded))

let test_expand_deduplicates () =
  let d = Mail.Dlist.create () in
  Mail.Dlist.define d ~name:(nm "a") ~members:[ nm "alice"; nm "bob" ];
  Mail.Dlist.define d ~name:(nm "b") ~members:[ nm "bob"; nm "carol" ];
  Mail.Dlist.define d ~name:(nm "both") ~members:[ nm "a"; nm "b" ];
  Alcotest.(check int) "bob once" 3 (List.length (Mail.Dlist.expand d (nm "both")))

let test_expand_cycle_safe () =
  let d = Mail.Dlist.create () in
  Mail.Dlist.define d ~name:(nm "x") ~members:[ nm "y"; nm "alice" ];
  Mail.Dlist.define d ~name:(nm "y") ~members:[ nm "x"; nm "bob" ];
  let expanded = Mail.Dlist.expand d (nm "x") in
  Alcotest.(check int) "terminates with both users" 2 (List.length expanded)

let test_expand_all () =
  let d = Mail.Dlist.create () in
  Mail.Dlist.define d ~name:(nm "l") ~members:[ nm "alice" ];
  let all = Mail.Dlist.expand_all d [ nm "l"; nm "alice"; nm "bob" ] in
  Alcotest.(check int) "union deduped" 2 (List.length all)

let test_submit_via_system () =
  let sys = Mail.Syntax_system.create (Netsim.Topology.paper_fig1 ()) in
  let users = Mail.Syntax_system.users sys in
  let sender = List.nth users 0 in
  let d = Mail.Dlist.create () in
  let list_name = Naming.Name.make ~region:"r0" ~host:"H1" ~user:"committee" in
  Mail.Dlist.define d ~name:list_name
    ~members:[ List.nth users 10; List.nth users 20; List.nth users 25 ];
  let msgs =
    Mail.Dlist.submit_via
      ~submit:(fun ~recipient ->
        Mail.Syntax_system.submit sys ~sender ~recipient ~subject:"minutes" ())
      d list_name
  in
  Alcotest.(check int) "one message per member" 3 (List.length msgs);
  Mail.Syntax_system.quiesce sys;
  List.iter
    (fun m -> Alcotest.(check bool) "delivered" true (Mail.Message.is_deposited m))
    msgs

let suite =
  [
    ( "dlist",
      [
        Alcotest.test_case "define and members" `Quick test_define_and_members;
        Alcotest.test_case "self reference rejected" `Quick test_self_reference_rejected;
        Alcotest.test_case "plain user passthrough" `Quick test_expand_plain_user;
        Alcotest.test_case "nested expansion" `Quick test_expand_nested;
        Alcotest.test_case "deduplication" `Quick test_expand_deduplicates;
        Alcotest.test_case "cycle safety" `Quick test_expand_cycle_safe;
        Alcotest.test_case "expand_all" `Quick test_expand_all;
        Alcotest.test_case "submit through a system" `Quick test_submit_via_system;
      ] );
  ]
