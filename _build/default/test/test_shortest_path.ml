(* Tests for Netsim.Shortest_path. *)

let line5 () = Netsim.Topology.line ~n:5 ~weight:2.

let test_line_distances () =
  let g = line5 () in
  let t = Netsim.Shortest_path.dijkstra g 0 in
  List.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "dist 0->%d" i)
        expected
        (Netsim.Shortest_path.distance t i))
    [ 0.; 2.; 4.; 6.; 8. ]

let test_path_extraction () =
  let g = line5 () in
  let t = Netsim.Shortest_path.dijkstra g 0 in
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3; 4 ])
    (Netsim.Shortest_path.path t 4);
  Alcotest.(check (option (list int))) "self path" (Some [ 0 ])
    (Netsim.Shortest_path.path t 0);
  Alcotest.(check (option int)) "hops" (Some 4) (Netsim.Shortest_path.hop_count t 4)

let test_unreachable () =
  let g = Netsim.Graph.create () in
  let a = Netsim.Graph.add_node g in
  let b = Netsim.Graph.add_node g in
  let t = Netsim.Shortest_path.dijkstra g a in
  Alcotest.(check bool) "infinite" true
    (Netsim.Shortest_path.distance t b = infinity);
  Alcotest.(check (option (list int))) "no path" None (Netsim.Shortest_path.path t b);
  Alcotest.(check (option int)) "no hops" None (Netsim.Shortest_path.hop_count t b)

let test_prefers_cheap_route () =
  (* triangle: direct edge 10, two-hop route 2+2=4 *)
  let g = Netsim.Graph.create () in
  let a = Netsim.Graph.add_node g in
  let b = Netsim.Graph.add_node g in
  let c = Netsim.Graph.add_node g in
  Netsim.Graph.add_edge g a c 10.;
  Netsim.Graph.add_edge g a b 2.;
  Netsim.Graph.add_edge g b c 2.;
  let t = Netsim.Shortest_path.dijkstra g a in
  Alcotest.(check (float 1e-9)) "cheap route" 4. (Netsim.Shortest_path.distance t c);
  Alcotest.(check (option (list int))) "via b" (Some [ a; b; c ])
    (Netsim.Shortest_path.path t c)

let test_paper_fig1_distances () =
  let site = Netsim.Topology.paper_fig1 () in
  let g = site.Netsim.Topology.graph in
  (* prose fact: minimum communication time between H2 and S1 is 2. *)
  let h2 = 1 and s1 = 6 in
  Alcotest.(check string) "h2 label" "H2" (Netsim.Graph.label g h2);
  Alcotest.(check string) "s1 label" "S1" (Netsim.Graph.label g s1);
  let t = Netsim.Shortest_path.dijkstra g h2 in
  Alcotest.(check (float 1e-9)) "H2->S1 = 2" 2. (Netsim.Shortest_path.distance t s1)

let test_next_hop_table () =
  let g = line5 () in
  let table = Netsim.Shortest_path.next_hop_table g 0 in
  Alcotest.(check int) "to 4 via 1" 1 table.(4);
  Alcotest.(check int) "to self" (-1) table.(0)

let test_diameter_and_eccentricity () =
  let g = line5 () in
  Alcotest.(check (float 1e-9)) "ecc of end" 8. (Netsim.Shortest_path.eccentricity g 0);
  Alcotest.(check (float 1e-9)) "ecc of middle" 4. (Netsim.Shortest_path.eccentricity g 2);
  Alcotest.(check (float 1e-9)) "diameter" 8. (Netsim.Shortest_path.diameter g)

let test_all_pairs_symmetry () =
  let rng = Dsim.Rng.create 8 in
  let g =
    Netsim.Topology.random_connected ~rng ~n:20 ~extra_edges:30 ~min_weight:1.
      ~max_weight:9.
  in
  let trees = Netsim.Shortest_path.all_pairs g in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          let duv = Netsim.Shortest_path.distance trees.(u) v in
          let dvu = Netsim.Shortest_path.distance trees.(v) u in
          if Float.abs (duv -. dvu) > 1e-9 then
            Alcotest.failf "asymmetry %d<->%d: %f vs %f" u v duv dvu)
        (Netsim.Graph.nodes g))
    (Netsim.Graph.nodes g)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"shortest paths obey the triangle inequality over edges"
    ~count:30
    QCheck.(int_range 3 30)
    (fun n ->
      let rng = Dsim.Rng.create (n * 7) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:0.5
          ~max_weight:4.
      in
      let t = Netsim.Shortest_path.dijkstra g 0 in
      List.for_all
        (fun (u, v, w) ->
          Netsim.Shortest_path.distance t v
          <= Netsim.Shortest_path.distance t u +. w +. 1e-9
          && Netsim.Shortest_path.distance t u
             <= Netsim.Shortest_path.distance t v +. w +. 1e-9)
        (Netsim.Graph.edges g))

let prop_path_length_matches_distance =
  QCheck.Test.make ~name:"sum of path edge weights equals reported distance" ~count:30
    QCheck.(int_range 3 25)
    (fun n ->
      let rng = Dsim.Rng.create (n * 13) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:(n / 2) ~min_weight:1.
          ~max_weight:6.
      in
      let t = Netsim.Shortest_path.dijkstra g 0 in
      List.for_all
        (fun v ->
          match Netsim.Shortest_path.path t v with
          | None -> false
          | Some nodes ->
              let rec walk acc = function
                | a :: (b :: _ as rest) ->
                    (match Netsim.Graph.weight g a b with
                    | Some w -> walk (acc +. w) rest
                    | None -> nan)
                | _ -> acc
              in
              Float.abs (walk 0. nodes -. Netsim.Shortest_path.distance t v) < 1e-9)
        (Netsim.Graph.nodes g))

let suite =
  [
    ( "shortest_path",
      [
        Alcotest.test_case "line distances" `Quick test_line_distances;
        Alcotest.test_case "path extraction" `Quick test_path_extraction;
        Alcotest.test_case "unreachable" `Quick test_unreachable;
        Alcotest.test_case "prefers cheap multi-hop route" `Quick test_prefers_cheap_route;
        Alcotest.test_case "paper Fig.1 H2->S1 distance" `Quick test_paper_fig1_distances;
        Alcotest.test_case "next hop table" `Quick test_next_hop_table;
        Alcotest.test_case "diameter and eccentricity" `Quick
          test_diameter_and_eccentricity;
        Alcotest.test_case "all pairs symmetry" `Quick test_all_pairs_symmetry;
        QCheck_alcotest.to_alcotest prop_triangle_inequality;
        QCheck_alcotest.to_alcotest prop_path_length_matches_distance;
      ] );
  ]
