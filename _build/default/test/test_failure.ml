(* Tests for failure injection. *)

type msg = unit

let test_outage_flips_status () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  let engine = Dsim.Engine.create () in
  let net : msg Netsim.Net.t = Netsim.Net.create ~engine g in
  Netsim.Failure.schedule_outage net { Netsim.Failure.node = 1; start = 5.; duration = 3. };
  let probes = ref [] in
  List.iter
    (fun t ->
      ignore
        (Dsim.Engine.schedule_at engine t (fun () ->
             probes := (t, Netsim.Net.is_up net 1) :: !probes)))
    [ 4.; 6.; 9. ];
  Dsim.Engine.run engine;
  Alcotest.(check (list (pair (float 1e-9) bool)))
    "up/down/up"
    [ (4., true); (6., false); (9., true) ]
    (List.rev !probes)

let test_negative_rejected () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  let engine = Dsim.Engine.create () in
  let net : msg Netsim.Net.t = Netsim.Net.create ~engine g in
  Alcotest.check_raises "negative"
    (Invalid_argument "Failure.schedule_outage: negative time") (fun () ->
      Netsim.Failure.schedule_outage net
        { Netsim.Failure.node = 0; start = -1.; duration = 1. })

let test_random_outages_rate () =
  let rng = Dsim.Rng.create 42 in
  let outages =
    Netsim.Failure.random_outages ~rng ~nodes:[ 0; 1; 2 ] ~rate:0.01 ~mean_duration:5.
      ~horizon:10000.
  in
  (* Expect roughly 100 outage starts per node. *)
  let per_node n = List.length (List.filter (fun o -> o.Netsim.Failure.node = n) outages) in
  List.iter
    (fun n ->
      let c = per_node n in
      if c < 60 || c > 140 then Alcotest.failf "node %d outage count suspicious: %d" n c)
    [ 0; 1; 2 ];
  (* All within the horizon. *)
  List.iter
    (fun o ->
      if o.Netsim.Failure.start < 0. || o.Netsim.Failure.start >= 10000. then
        Alcotest.fail "outage outside horizon")
    outages

let test_zero_rate_empty () =
  let rng = Dsim.Rng.create 1 in
  Alcotest.(check int) "no outages" 0
    (List.length
       (Netsim.Failure.random_outages ~rng ~nodes:[ 0; 1 ] ~rate:0. ~mean_duration:5.
          ~horizon:100.))

let test_availability () =
  let outages =
    [
      { Netsim.Failure.node = 0; start = 10.; duration = 10. };
      { Netsim.Failure.node = 0; start = 15.; duration = 10. };
      (* overlaps the first; union is [10, 25] *)
      { Netsim.Failure.node = 1; start = 0.; duration = 50. };
    ]
  in
  Alcotest.(check (float 1e-9)) "merged downtime" 0.85
    (Netsim.Failure.availability ~outages ~node:0 ~horizon:100.);
  Alcotest.(check (float 1e-9)) "half down" 0.5
    (Netsim.Failure.availability ~outages ~node:1 ~horizon:100.);
  Alcotest.(check (float 1e-9)) "unaffected node" 1.0
    (Netsim.Failure.availability ~outages ~node:2 ~horizon:100.)

let test_availability_clips_horizon () =
  let outages = [ { Netsim.Failure.node = 0; start = 90.; duration = 100. } ] in
  Alcotest.(check (float 1e-9)) "clipped" 0.9
    (Netsim.Failure.availability ~outages ~node:0 ~horizon:100.)

let prop_availability_in_unit_interval =
  QCheck.Test.make ~name:"availability always lies in [0,1]" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (pair (float_range 0. 100.) (float_range 0. 50.)))
    (fun specs ->
      let outages =
        List.map
          (fun (start, duration) -> { Netsim.Failure.node = 0; start; duration })
          specs
      in
      let a = Netsim.Failure.availability ~outages ~node:0 ~horizon:100. in
      a >= -1e-9 && a <= 1. +. 1e-9)

let suite =
  [
    ( "failure",
      [
        Alcotest.test_case "outage flips status" `Quick test_outage_flips_status;
        Alcotest.test_case "negative times rejected" `Quick test_negative_rejected;
        Alcotest.test_case "random outage rate" `Quick test_random_outages_rate;
        Alcotest.test_case "zero rate" `Quick test_zero_rate_empty;
        Alcotest.test_case "availability with overlaps" `Quick test_availability;
        Alcotest.test_case "availability clips at horizon" `Quick
          test_availability_clips_horizon;
        QCheck_alcotest.to_alcotest prop_availability_in_unit_interval;
      ] );
  ]
