(* Tests for the analytic queueing models, including an empirical
   validation of the M/M/1 formulas against a simulation built on the
   event engine — evidence the substrate reproduces textbook queueing
   behaviour, which the paper's cost model (§3.1.1) relies on. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a)

let test_paper_q () =
  Alcotest.(check (float 1e-9)) "rho=0" 0. (Queueing.Mm1.paper_q 0.);
  Alcotest.(check (float 1e-9)) "rho=0.5" 1. (Queueing.Mm1.paper_q 0.5);
  Alcotest.(check bool) "rho=0.9" true (feq (Queueing.Mm1.paper_q 0.9) 9.);
  Alcotest.(check (float 1e-9)) "cap at 0.99" 1e6 (Queueing.Mm1.paper_q 0.99);
  Alcotest.(check (float 1e-9)) "cap beyond 1" 1e6 (Queueing.Mm1.paper_q 1.5);
  Alcotest.(check (float 1e-9)) "custom cap" 123. (Queueing.Mm1.paper_q ~cap:123. 1.2);
  Alcotest.(check (float 1e-9)) "negative clamped" 0. (Queueing.Mm1.paper_q (-0.3))

let test_mm1_formulas () =
  let lambda = 2. and mu = 5. in
  Alcotest.(check (float 1e-9)) "rho" 0.4
    (Queueing.Mm1.utilization ~arrival_rate:lambda ~service_rate:mu);
  Alcotest.(check bool) "Wq = rho/(mu-lambda)" true
    (feq (Queueing.Mm1.mean_waiting_time ~arrival_rate:lambda ~service_rate:mu) (0.4 /. 3.));
  Alcotest.(check bool) "W = 1/(mu-lambda)" true
    (feq (Queueing.Mm1.mean_sojourn_time ~arrival_rate:lambda ~service_rate:mu) (1. /. 3.));
  Alcotest.(check bool) "L" true (feq (Queueing.Mm1.mean_queue_length ~rho:0.4) (2. /. 3.));
  Alcotest.(check (float 1e-12)) "P(N=0)" 0.6 (Queueing.Mm1.prob_n_customers ~rho:0.4 0);
  Alcotest.(check bool) "unstable" true
    (Queueing.Mm1.mean_waiting_time ~arrival_rate:6. ~service_rate:5. = infinity)

let test_prob_wait () =
  let p = Queueing.Mm1.prob_wait_exceeds ~arrival_rate:2. ~service_rate:5. 0. in
  Alcotest.(check (float 1e-9)) "t=0" 1. p;
  let p1 = Queueing.Mm1.prob_wait_exceeds ~arrival_rate:2. ~service_rate:5. 1. in
  Alcotest.(check bool) "decays" true (feq p1 (exp (-3.)))

let test_mmc_degenerates_to_mm1 () =
  let lambda = 2. and mu = 5. in
  let rho = lambda /. mu in
  (* Erlang-C with c = 1 is exactly rho. *)
  Alcotest.(check bool) "erlang_c c=1 = rho" true
    (feq (Queueing.Mmc.erlang_c ~c:1 ~rho) rho);
  Alcotest.(check bool) "wait c=1 = mm1" true
    (feq
       (Queueing.Mmc.mean_waiting_time ~c:1 ~arrival_rate:lambda ~service_rate:mu)
       (Queueing.Mm1.mean_waiting_time ~arrival_rate:lambda ~service_rate:mu))

let test_mmc_monotone_in_c () =
  let lambda = 8. and mu = 5. in
  let w2 = Queueing.Mmc.mean_waiting_time ~c:2 ~arrival_rate:lambda ~service_rate:mu in
  let w3 = Queueing.Mmc.mean_waiting_time ~c:3 ~arrival_rate:lambda ~service_rate:mu in
  let w4 = Queueing.Mmc.mean_waiting_time ~c:4 ~arrival_rate:lambda ~service_rate:mu in
  Alcotest.(check bool) "finite" true (Float.is_finite w2);
  Alcotest.(check bool) "adding servers reduces wait" true (w2 > w3 && w3 > w4)

let test_min_servers () =
  Alcotest.(check int) "just stable" 2
    (Queueing.Mmc.min_servers ~arrival_rate:8. ~service_rate:5.);
  Alcotest.(check int) "integer boundary" 3
    (Queueing.Mmc.min_servers ~arrival_rate:10. ~service_rate:5.);
  Alcotest.(check int) "tiny load" 1
    (Queueing.Mmc.min_servers ~arrival_rate:0.1 ~service_rate:5.)

let test_workload_generators () =
  let rng = Dsim.Rng.create 3 in
  let arr = Queueing.Workload.poisson_arrivals ~rng ~rate:0.5 ~horizon:1000. in
  let sorted = List.sort Float.compare arr in
  Alcotest.(check bool) "ascending" true (arr = sorted);
  Alcotest.(check bool) "rate plausible" true
    (List.length arr > 350 && List.length arr < 650);
  List.iter (fun t -> if t < 0. || t >= 1000. then Alcotest.fail "outside horizon") arr;
  let uni = Queueing.Workload.uniform_arrivals ~rng ~count:50 ~horizon:10. in
  Alcotest.(check int) "uniform count" 50 (List.length uni);
  Alcotest.(check bool) "uniform sorted" true (uni = List.sort Float.compare uni);
  let per = Queueing.Workload.periodic_arrivals ~period:2.5 ~horizon:10. in
  Alcotest.(check (list (float 1e-9))) "periodic" [ 2.5; 5.; 7.5 ] per

let test_population_picks () =
  let rng = Dsim.Rng.create 4 in
  let pop = { Queueing.Workload.size = 100; skew = 1.0 } in
  for _ = 1 to 500 do
    let s = Queueing.Workload.pick_sender ~rng pop in
    if s < 0 || s >= 100 then Alcotest.failf "sender out of range: %d" s;
    let r = Queueing.Workload.pick_recipient ~rng pop ~sender:s ~locality:0.8 ~regions:4 in
    if r < 0 || r >= 100 then Alcotest.failf "recipient out of range: %d" r;
    if r = s then Alcotest.fail "recipient equals sender"
  done

(* Empirical M/M/1: a single-server FIFO queue driven by the event
   engine; the measured mean wait must match rho/(mu-lambda). *)
let test_mm1_empirical () =
  let lambda = 1.0 and mu = 2.0 in
  let rng = Dsim.Rng.create 777 in
  let engine = Dsim.Engine.create () in
  let waits = Dsim.Stats.Summary.create () in
  let queue = Queue.create () in
  let busy = ref false in
  let rec start_service () =
    match Queue.take_opt queue with
    | None -> busy := false
    | Some arrival_time ->
        busy := true;
        Dsim.Stats.Summary.add waits (Dsim.Engine.now engine -. arrival_time);
        let service = Dsim.Rng.exponential rng mu in
        ignore (Dsim.Engine.schedule_after engine service start_service)
  in
  let horizon = 200000. in
  let rec arrive () =
    let gap = Dsim.Rng.exponential rng lambda in
    ignore
      (Dsim.Engine.schedule_after engine gap (fun () ->
           if Dsim.Engine.now engine < horizon then begin
             Queue.add (Dsim.Engine.now engine) queue;
             if not !busy then start_service ();
             arrive ()
           end))
  in
  arrive ();
  Dsim.Engine.run engine;
  let expected = Queueing.Mm1.mean_waiting_time ~arrival_rate:lambda ~service_rate:mu in
  let measured = Dsim.Stats.Summary.mean waits in
  if Float.abs (measured -. expected) > 0.05 *. expected then
    Alcotest.failf "empirical wait %f vs analytic %f" measured expected

let prop_erlang_c_is_probability =
  QCheck.Test.make ~name:"Erlang-C lies in [0,1]" ~count:200
    QCheck.(pair (int_range 1 20) (float_range 0. 0.99))
    (fun (c, rho) ->
      let p = Queueing.Mmc.erlang_c ~c ~rho in
      p >= 0. && p <= 1.)

let suite =
  [
    ( "queueing",
      [
        Alcotest.test_case "paper Q(rho)" `Quick test_paper_q;
        Alcotest.test_case "M/M/1 formulas" `Quick test_mm1_formulas;
        Alcotest.test_case "P(wait > t)" `Quick test_prob_wait;
        Alcotest.test_case "M/M/c degenerates to M/M/1" `Quick
          test_mmc_degenerates_to_mm1;
        Alcotest.test_case "M/M/c monotone in c" `Quick test_mmc_monotone_in_c;
        Alcotest.test_case "min_servers" `Quick test_min_servers;
        Alcotest.test_case "workload generators" `Quick test_workload_generators;
        Alcotest.test_case "population picks" `Quick test_population_picks;
        Alcotest.test_case "M/M/1 empirical validation" `Slow test_mm1_empirical;
        QCheck_alcotest.to_alcotest prop_erlang_c_is_probability;
      ] );
  ]
