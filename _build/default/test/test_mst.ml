(* Tests for Edge_id, Kruskal and Prim. *)

let test_edge_id_normalises () =
  let e = Mst.Edge_id.make 5 2 3. in
  Alcotest.(check int) "lo" 2 e.Mst.Edge_id.lo;
  Alcotest.(check int) "hi" 5 e.Mst.Edge_id.hi;
  try
    ignore (Mst.Edge_id.make 4 4 1.);
    Alcotest.fail "self loop accepted"
  with Invalid_argument _ -> ()

let test_edge_id_order () =
  let a = Mst.Edge_id.make 0 1 1. in
  let b = Mst.Edge_id.make 0 2 1. in
  let c = Mst.Edge_id.make 1 2 1. in
  let d = Mst.Edge_id.make 0 1 2. in
  Alcotest.(check bool) "weight first" true (Mst.Edge_id.compare a d < 0);
  Alcotest.(check bool) "ties by lo then hi" true
    (Mst.Edge_id.compare a b < 0 && Mst.Edge_id.compare b c < 0);
  Alcotest.(check bool) "equal" true (Mst.Edge_id.equal a (Mst.Edge_id.make 1 0 1.))

let test_edge_id_less_with_infinity () =
  let a = Some (Mst.Edge_id.make 0 1 1.) in
  Alcotest.(check bool) "finite < inf" true (Mst.Edge_id.less a None);
  Alcotest.(check bool) "inf not < finite" false (Mst.Edge_id.less None a);
  Alcotest.(check bool) "inf not < inf" false (Mst.Edge_id.less None None)

let known_graph () =
  (* classic example: MST weight = 1+2+2+3 = 8 over 5 nodes *)
  let g = Netsim.Graph.create () in
  let n () = Netsim.Graph.add_node g in
  let a = n () and b = n () and c = n () and d = n () and e = n () in
  List.iter
    (fun (u, v, w) -> Netsim.Graph.add_edge g u v w)
    [
      (a, b, 1.); (a, c, 5.); (b, c, 2.); (b, d, 4.); (c, d, 3.); (c, e, 2.); (d, e, 6.);
    ];
  g

let test_kruskal_known () =
  let r = Mst.Kruskal.run (known_graph ()) in
  Alcotest.(check (float 1e-9)) "weight" 8. r.Mst.Kruskal.total_weight;
  Alcotest.(check int) "edges" 4 (List.length r.Mst.Kruskal.edges);
  Alcotest.(check int) "one component" 1 r.Mst.Kruskal.components

let test_kruskal_forest () =
  let g = Netsim.Graph.create () in
  let a = Netsim.Graph.add_node g and b = Netsim.Graph.add_node g in
  let c = Netsim.Graph.add_node g and d = Netsim.Graph.add_node g in
  Netsim.Graph.add_edge g a b 1.;
  Netsim.Graph.add_edge g c d 2.;
  let r = Mst.Kruskal.run g in
  Alcotest.(check int) "two components" 2 r.Mst.Kruskal.components;
  Alcotest.(check (float 1e-9)) "forest weight" 3. r.Mst.Kruskal.total_weight

let test_kruskal_empty_and_single () =
  let empty = Mst.Kruskal.run (Netsim.Graph.create ()) in
  Alcotest.(check int) "empty components" 0 empty.Mst.Kruskal.components;
  let g = Netsim.Graph.create () in
  ignore (Netsim.Graph.add_node g);
  let single = Mst.Kruskal.run g in
  Alcotest.(check int) "single node" 1 single.Mst.Kruskal.components;
  Alcotest.(check int) "no edges" 0 (List.length single.Mst.Kruskal.edges)

let test_prim_known () =
  let r = Mst.Prim.run (known_graph ()) in
  Alcotest.(check (float 1e-9)) "weight" 8. r.Mst.Kruskal.total_weight;
  Alcotest.(check int) "edges" 4 (List.length r.Mst.Kruskal.edges)

let prop_prim_equals_kruskal =
  QCheck.Test.make ~name:"Prim and Kruskal produce the identical tree" ~count:60
    QCheck.(int_range 2 40)
    (fun n ->
      let rng = Dsim.Rng.create (n * 17) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:1.
          ~max_weight:10.
      in
      let k = Mst.Kruskal.run g and p = Mst.Prim.run g in
      k.Mst.Kruskal.edges = p.Mst.Kruskal.edges)

let prop_mst_edge_count =
  QCheck.Test.make ~name:"spanning tree has n-1 edges on connected graphs" ~count:60
    QCheck.(int_range 1 40)
    (fun n ->
      let rng = Dsim.Rng.create (n * 23) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:(2 * n) ~min_weight:1.
          ~max_weight:10.
      in
      List.length (Mst.Kruskal.run g).Mst.Kruskal.edges = n - 1)

(* Cut property spot check: for any tree edge removed, it is the
   cheapest edge crossing the two induced sides. *)
let prop_cut_property =
  QCheck.Test.make ~name:"every tree edge is a minimum crossing edge" ~count:20
    QCheck.(int_range 3 20)
    (fun n ->
      let rng = Dsim.Rng.create (n * 29) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:1.
          ~max_weight:10.
      in
      let tree = (Mst.Kruskal.run g).Mst.Kruskal.edges in
      List.for_all
        (fun (u, v, w) ->
          (* sides via union-find over remaining tree edges *)
          let parent = Array.init (Netsim.Graph.node_count g) Fun.id in
          let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); parent.(x)) in
          List.iter
            (fun (a, b, w') ->
              if not (a = u && b = v && w = w') then begin
                let ra = find a and rb = find b in
                if ra <> rb then parent.(ra) <- rb
              end)
            tree;
          (* all graph edges crossing the cut must weigh >= w (by Edge_id order) *)
          List.for_all
            (fun (a, b, w') ->
              find a = find b
              || Mst.Edge_id.compare (Mst.Edge_id.make u v w) (Mst.Edge_id.make a b w')
                 <= 0)
            (Netsim.Graph.edges g))
        tree)

let suite =
  [
    ( "mst",
      [
        Alcotest.test_case "edge id normalises" `Quick test_edge_id_normalises;
        Alcotest.test_case "edge id order" `Quick test_edge_id_order;
        Alcotest.test_case "edge id with infinity" `Quick test_edge_id_less_with_infinity;
        Alcotest.test_case "kruskal known graph" `Quick test_kruskal_known;
        Alcotest.test_case "kruskal forest" `Quick test_kruskal_forest;
        Alcotest.test_case "kruskal degenerate" `Quick test_kruskal_empty_and_single;
        Alcotest.test_case "prim known graph" `Quick test_prim_known;
        QCheck_alcotest.to_alcotest prop_prim_equals_kruskal;
        QCheck_alcotest.to_alcotest prop_mst_edge_count;
        QCheck_alcotest.to_alcotest prop_cut_property;
      ] );
  ]
