(* Tests for the §3.1.1 load-balancing algorithm: cost model,
   assignment bookkeeping, and the initialization + balancing loop on
   the paper's Figure 1 example (Tables 1 and 2). *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a)

let fig1_problem () =
  Loadbalance.Assignment.problem_of_site (Netsim.Topology.paper_fig1 ())

(* --- cost model --- *)

let test_paper_params () =
  let p = Loadbalance.Cost.paper_params in
  Alcotest.(check (float 1e-9)) "W1" 4. p.Loadbalance.Cost.w_comm;
  Alcotest.(check (float 1e-9)) "W2" 1. p.Loadbalance.Cost.w_proc;
  Alcotest.(check (float 1e-9)) "z" 0.5 p.Loadbalance.Cost.processing_time

let test_connection_cost_formula () =
  let p = Loadbalance.Cost.paper_params in
  (* TC = C*W1 + (Q(rho) + z)*W2 with Q(0.5) = 1. *)
  let tc = Loadbalance.Cost.connection_cost p ~comm:2. ~rho:0.5 in
  Alcotest.(check bool) "formula" true (feq tc ((2. *. 4.) +. ((1. +. 0.5) *. 1.)));
  (* overload hits the large constant *)
  let tc_over = Loadbalance.Cost.connection_cost p ~comm:0. ~rho:1.2 in
  Alcotest.(check bool) "B dominates" true (tc_over > 1e5)

(* --- assignment --- *)

let test_problem_of_site () =
  let p = fig1_problem () in
  Alcotest.(check int) "hosts" 6 (Array.length p.Loadbalance.Assignment.hosts);
  Alcotest.(check int) "servers" 3 (Array.length p.Loadbalance.Assignment.servers);
  Alcotest.(check (array int)) "capacities" [| 100; 100; 100 |]
    p.Loadbalance.Assignment.capacities;
  (* C for H1 (index 0): adjacent to S1 (1), S2 via S1 (2), S3 via S1,S2 (3) *)
  Alcotest.(check (float 1e-9)) "C(H1,S1)" 1. p.Loadbalance.Assignment.comm.(0).(0);
  Alcotest.(check (float 1e-9)) "C(H1,S2)" 2. p.Loadbalance.Assignment.comm.(0).(1);
  Alcotest.(check (float 1e-9)) "C(H1,S3)" 3. p.Loadbalance.Assignment.comm.(0).(2);
  (* prose fact: C(H2,S1) = 2 *)
  Alcotest.(check (float 1e-9)) "C(H2,S1)" 2. p.Loadbalance.Assignment.comm.(1).(0)

let test_assignment_bookkeeping () =
  let p = fig1_problem () in
  let t = Loadbalance.Assignment.empty p in
  Loadbalance.Assignment.set t ~host:0 ~server:0 30;
  Loadbalance.Assignment.set t ~host:1 ~server:0 20;
  Alcotest.(check int) "load" 50 (Loadbalance.Assignment.load t 0);
  Alcotest.(check int) "host assigned" 30 (Loadbalance.Assignment.assigned_of_host t 0);
  Loadbalance.Assignment.move t ~host:0 ~from_server:0 ~to_server:2 10;
  Alcotest.(check int) "after move src" 40 (Loadbalance.Assignment.load t 0);
  Alcotest.(check int) "after move dst" 10 (Loadbalance.Assignment.load t 2);
  Alcotest.(check int) "host total stable" 30
    (Loadbalance.Assignment.assigned_of_host t 0);
  (try
     Loadbalance.Assignment.move t ~host:0 ~from_server:0 ~to_server:1 100;
     Alcotest.fail "overdraw accepted"
   with Invalid_argument _ -> ());
  try
    Loadbalance.Assignment.set t ~host:0 ~server:0 (-1);
    Alcotest.fail "negative accepted"
  with Invalid_argument _ -> ()

let test_utilization_and_overload () =
  let p = fig1_problem () in
  let t = Loadbalance.Assignment.empty p in
  Loadbalance.Assignment.set t ~host:0 ~server:0 150;
  Alcotest.(check (float 1e-9)) "rho" 1.5 (Loadbalance.Assignment.utilization p t 0);
  Alcotest.(check (list int)) "overloaded" [ 0 ] (Loadbalance.Assignment.overloaded p t)

let test_copy_independent () =
  let p = fig1_problem () in
  let t = Loadbalance.Assignment.empty p in
  Loadbalance.Assignment.set t ~host:0 ~server:0 10;
  let t2 = Loadbalance.Assignment.copy t in
  Loadbalance.Assignment.set t2 ~host:0 ~server:0 99;
  Alcotest.(check int) "original untouched" 10
    (Loadbalance.Assignment.get t ~host:0 ~server:0)

(* --- Table 1: initialization --- *)

let test_table1_initial_assignment () =
  let p = fig1_problem () in
  let t = Loadbalance.Balancer.initialize p in
  (* nearest server per host: S1, S2, S1, S2, S2, S3 *)
  Alcotest.(check (array int)) "initial loads (Table 1)" [| 100; 150; 20 |]
    (Loadbalance.Assignment.loads t);
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p t);
  Alcotest.(check (list int)) "S2 overloaded" [ 1 ]
    (Loadbalance.Assignment.overloaded p t)

(* --- Table 2: balancing --- *)

let test_table2_balanced () =
  let p = fig1_problem () in
  let t = Loadbalance.Balancer.initialize p in
  let stats = Loadbalance.Balancer.balance p t in
  Alcotest.(check bool) "converged" true stats.Loadbalance.Balancer.converged;
  Alcotest.(check bool) "cost strictly improved" true
    (stats.Loadbalance.Balancer.cost_after < stats.Loadbalance.Balancer.cost_before);
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p t);
  Alcotest.(check int) "all users assigned" 270
    (Array.fold_left ( + ) 0 (Loadbalance.Assignment.loads t));
  Alcotest.(check (list int)) "no overload" [] (Loadbalance.Assignment.overloaded p t);
  Alcotest.(check bool) "well balanced" true
    (Loadbalance.Balancer.load_imbalance p t < 0.15);
  (* Table 2's observation: users of one host end up split over
     several servers. *)
  let split_hosts = ref 0 in
  for i = 0 to 5 do
    let used = ref 0 in
    for j = 0 to 2 do
      if Loadbalance.Assignment.get t ~host:i ~server:j > 0 then incr used
    done;
    if !used > 1 then incr split_hosts
  done;
  Alcotest.(check bool) "some host split across servers" true (!split_hosts > 0)

let test_batch_matches_single () =
  let p = fig1_problem () in
  let t1 = Loadbalance.Balancer.initialize p in
  let s1 = Loadbalance.Balancer.balance p t1 in
  let t2 = Loadbalance.Balancer.initialize p in
  let s2 = Loadbalance.Balancer.balance ~batch:true p t2 in
  Alcotest.(check bool) "batch converges" true s2.Loadbalance.Balancer.converged;
  Alcotest.(check bool) "batch needs fewer or equal passes" true
    (s2.Loadbalance.Balancer.passes <= s1.Loadbalance.Balancer.passes);
  (* The bulk moves may settle in a slightly different local optimum
     (the M/M/1 term makes the objective non-convex in single moves);
     the paper presents batching purely as a speed-up, so we assert
     the quality gap stays small rather than zero.  Bench C5 measures
     the trade-off. *)
  let ca = s1.Loadbalance.Balancer.cost_after and cb = s2.Loadbalance.Balancer.cost_after in
  Alcotest.(check bool) "similar quality" true (Float.abs (ca -. cb) < 0.10 *. ca);
  Alcotest.(check (list int)) "batch leaves no overload" []
    (Loadbalance.Assignment.overloaded p t2)

let test_table3_degenerate_start () =
  let p =
    Loadbalance.Assignment.problem_of_site (Netsim.Topology.paper_table3 ())
  in
  let t = Loadbalance.Balancer.initialize p in
  Alcotest.(check (array int)) "initial loads (Table 3)" [| 100; 100; 20 |]
    (Loadbalance.Assignment.loads t);
  let _ = Loadbalance.Balancer.balance p t in
  Alcotest.(check (list int)) "balanced" [] (Loadbalance.Assignment.overloaded p t)

let test_assign_remaining () =
  let p = fig1_problem () in
  let t = Loadbalance.Assignment.empty p in
  let placed = Loadbalance.Balancer.assign_remaining p t in
  Alcotest.(check int) "placed everyone" 270 placed;
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p t)

let prop_move_delta_exact =
  QCheck.Test.make ~name:"move_delta equals total_cost difference" ~count:200
    QCheck.(triple (int_range 0 5) (pair (int_range 0 2) (int_range 0 2)) (int_range 1 20))
    (fun (host, (from_server, to_server), count) ->
      QCheck.assume (from_server <> to_server);
      let p = fig1_problem () in
      let t = Loadbalance.Balancer.initialize p in
      let available = Loadbalance.Assignment.get t ~host ~server:from_server in
      QCheck.assume (available >= count);
      let before = Loadbalance.Assignment.total_cost p t in
      let delta =
        Loadbalance.Assignment.move_delta p t ~host ~from_server ~to_server ~count
      in
      Loadbalance.Assignment.move t ~host ~from_server ~to_server count;
      let after = Loadbalance.Assignment.total_cost p t in
      Float.abs (after -. before -. delta) < 1e-6 *. (1. +. Float.abs delta))

let prop_balancing_invariants =
  QCheck.Test.make ~name:"balancing preserves populations and never increases cost"
    ~count:25
    QCheck.(pair (int_range 2 12) (int_range 2 6))
    (fun (hosts, servers) ->
      let rng = Dsim.Rng.create ((hosts * 31) + servers) in
      let site =
        Netsim.Topology.random_mail_site ~rng ~hosts ~servers ~users_per_host:(5, 60)
          ~extra_edges:hosts
      in
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 site.Netsim.Topology.hosts in
      let capacity _ = 1 + (total / servers) in
      let p = Loadbalance.Assignment.problem_of_site ~capacity site in
      let t, stats = Loadbalance.Balancer.run p in
      Loadbalance.Assignment.is_complete p t
      && stats.Loadbalance.Balancer.cost_after
         <= stats.Loadbalance.Balancer.cost_before +. 1e-6
      && stats.Loadbalance.Balancer.converged
      && Array.fold_left ( + ) 0 (Loadbalance.Assignment.loads t) = total)

let test_pp_table_smoke () =
  let p = fig1_problem () in
  let t = Loadbalance.Balancer.initialize p in
  let s = Format.asprintf "%a" (Loadbalance.Assignment.pp_table p) t in
  Alcotest.(check bool) "mentions hosts" true (String.length s > 50)

let suite =
  [
    ( "loadbalance",
      [
        Alcotest.test_case "paper parameters" `Quick test_paper_params;
        Alcotest.test_case "connection cost formula" `Quick test_connection_cost_formula;
        Alcotest.test_case "problem from Fig.1" `Quick test_problem_of_site;
        Alcotest.test_case "assignment bookkeeping" `Quick test_assignment_bookkeeping;
        Alcotest.test_case "utilization and overload" `Quick
          test_utilization_and_overload;
        Alcotest.test_case "copy independence" `Quick test_copy_independent;
        Alcotest.test_case "Table 1: initial assignment" `Quick
          test_table1_initial_assignment;
        Alcotest.test_case "Table 2: balanced assignment" `Quick test_table2_balanced;
        Alcotest.test_case "batch variant" `Quick test_batch_matches_single;
        Alcotest.test_case "Table 3 variant" `Quick test_table3_degenerate_start;
        Alcotest.test_case "assign_remaining" `Quick test_assign_remaining;
        QCheck_alcotest.to_alcotest prop_move_delta_exact;
        QCheck_alcotest.to_alcotest prop_balancing_invariants;
        Alcotest.test_case "pp_table smoke" `Quick test_pp_table_smoke;
      ] );
  ]
