(* Tests for approximate matching and fuzzy directory look-up. *)

let test_edit_distance_basics () =
  Alcotest.(check int) "identical" 0 (Naming.Fuzzy.edit_distance "smith" "smith");
  Alcotest.(check int) "case-insensitive" 0 (Naming.Fuzzy.edit_distance "Smith" "sMITH");
  Alcotest.(check int) "substitution" 1 (Naming.Fuzzy.edit_distance "smith" "smyth");
  Alcotest.(check int) "insertion" 1 (Naming.Fuzzy.edit_distance "jon" "john");
  Alcotest.(check int) "deletion" 1 (Naming.Fuzzy.edit_distance "johnn" "john");
  Alcotest.(check int) "empty vs word" 4 (Naming.Fuzzy.edit_distance "" "word");
  Alcotest.(check int) "kitten/sitting" 3 (Naming.Fuzzy.edit_distance "kitten" "sitting")

let test_similar () =
  Alcotest.(check bool) "within default 2" true (Naming.Fuzzy.similar "receive" "recieve");
  Alcotest.(check bool) "too far" false (Naming.Fuzzy.similar "alice" "robert");
  Alcotest.(check bool) "custom bound" true
    (Naming.Fuzzy.similar ~max_distance:5 "alice" "alicia")

let test_best_matches () =
  let candidates = [ "johnson"; "jonson"; "johansson"; "smith"; "jensen" ] in
  let hits = Naming.Fuzzy.best_matches ~candidates "jonhson" in
  (match hits with
  | (best, d) :: _ ->
      (* deleting the stray 'h' reaches "jonson" in one edit *)
      Alcotest.(check string) "closest first" "jonson" best;
      Alcotest.(check int) "distance" 1 d
  | [] -> Alcotest.fail "no matches");
  Alcotest.(check bool) "smith excluded" true
    (not (List.mem_assoc "smith" hits));
  let limited = Naming.Fuzzy.best_matches ~limit:1 ~candidates "jonhson" in
  Alcotest.(check int) "limit respected" 1 (List.length limited)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"edit distance is symmetric" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 12)) (string_of_size (QCheck.Gen.int_range 0 12)))
    (fun (a, b) -> Naming.Fuzzy.edit_distance a b = Naming.Fuzzy.edit_distance b a)

let prop_distance_triangle =
  QCheck.Test.make ~name:"edit distance obeys the triangle inequality" ~count:200
    QCheck.(
      triple
        (string_of_size (QCheck.Gen.int_range 0 8))
        (string_of_size (QCheck.Gen.int_range 0 8))
        (string_of_size (QCheck.Gen.int_range 0 8)))
    (fun (a, b, c) ->
      Naming.Fuzzy.edit_distance a c
      <= Naming.Fuzzy.edit_distance a b + Naming.Fuzzy.edit_distance b c)

let prop_distance_zero_iff_equal =
  QCheck.Test.make ~name:"distance 0 iff equal modulo case" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 10)) (string_of_size (QCheck.Gen.int_range 0 10)))
    (fun (a, b) ->
      Naming.Fuzzy.edit_distance a b = 0
      = String.equal (String.lowercase_ascii a) (String.lowercase_ascii b))

(* fuzzy directory look-up *)

let nm i = Naming.Name.make ~region:"east" ~host:"h1" ~user:(Printf.sprintf "u%d" i)

let dir_with_names () =
  let d = Naming.Directory.create () in
  List.iteri
    (fun i (full, vis) ->
      Naming.Directory.add d
        {
          Naming.Directory.name = nm i;
          attrs = [ Naming.Attribute.text ~visibility:vis "name" full ];
        })
    [
      ("Alice Johnson", Naming.Attribute.Public);
      ("Alyce Jonson", Naming.Attribute.Public);
      ("Bob Smith", Naming.Attribute.Public);
      ("Secret Agent", Naming.Attribute.Private);
    ];
  d

let test_fuzzy_query () =
  let d = dir_with_names () in
  let hits =
    Naming.Directory.fuzzy_query d ~viewer:Naming.Attribute.anyone ~key:"name"
      "Alice Jonson"
  in
  (match hits with
  | (first, d1) :: (second, d2) :: _ ->
      Alcotest.(check bool) "both Alices found" true
        (Naming.Name.equal first (nm 0) || Naming.Name.equal first (nm 1));
      Alcotest.(check bool) "ranked" true (d1 <= d2);
      ignore second
  | _ -> Alcotest.fail "expected two matches");
  Alcotest.(check int) "smith excluded" 2 (List.length hits)

let test_fuzzy_query_respects_privacy () =
  let d = dir_with_names () in
  let hits =
    Naming.Directory.fuzzy_query d ~viewer:Naming.Attribute.anyone ~key:"name"
      "Secret Agent"
  in
  Alcotest.(check int) "private attr invisible" 0 (List.length hits)

let test_fuzzy_query_distance_bound () =
  let d = dir_with_names () in
  let hits =
    Naming.Directory.fuzzy_query d ~viewer:Naming.Attribute.anyone ~key:"name"
      ~max_distance:0 "alice johnson"
  in
  Alcotest.(check int) "exact (case-insensitive) only" 1 (List.length hits)

let suite =
  [
    ( "fuzzy",
      [
        Alcotest.test_case "edit distance basics" `Quick test_edit_distance_basics;
        Alcotest.test_case "similar" `Quick test_similar;
        Alcotest.test_case "best matches" `Quick test_best_matches;
        QCheck_alcotest.to_alcotest prop_distance_symmetric;
        QCheck_alcotest.to_alcotest prop_distance_triangle;
        QCheck_alcotest.to_alcotest prop_distance_zero_iff_equal;
        Alcotest.test_case "fuzzy directory query" `Quick test_fuzzy_query;
        Alcotest.test_case "fuzzy query privacy" `Quick test_fuzzy_query_respects_privacy;
        Alcotest.test_case "fuzzy distance bound" `Quick test_fuzzy_query_distance_bound;
      ] );
  ]
