(* Tests for the backbone + local MST modification (Fig. 2) and the
   §3.3.B cost table. *)

let hier seed =
  let rng = Dsim.Rng.create seed in
  Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy

let test_build_structure () =
  let g = hier 1 in
  let bb = Mst.Backbone.build g in
  Alcotest.(check int) "three local trees" 3 (List.length bb.Mst.Backbone.locals);
  Alcotest.(check bool) "has backbone edges" true (bb.Mst.Backbone.backbone <> []);
  Alcotest.(check bool) "spans all" true (Mst.Backbone.spans_all g bb);
  (* each local tree spans its region: n_r - 1 edges *)
  List.iter
    (fun (r, edges) ->
      let members = Netsim.Graph.nodes_in_region g r in
      Alcotest.(check int)
        (Printf.sprintf "local tree size of %s" r)
        (List.length members - 1)
        (List.length edges))
    bb.Mst.Backbone.locals

let test_total_weight_decomposition () =
  let g = hier 2 in
  let bb = Mst.Backbone.build g in
  Alcotest.(check (float 1e-6)) "total = backbone + locals"
    (bb.Mst.Backbone.backbone_weight +. bb.Mst.Backbone.local_weight)
    bb.Mst.Backbone.total_weight

let test_flat_mst_no_heavier () =
  (* The global MST weighs no more than the constrained
     backbone+locals structure (the price of regional autonomy). *)
  let g = hier 3 in
  let bb = Mst.Backbone.build g in
  let flat = Mst.Backbone.flat_mst g in
  Alcotest.(check bool) "flat <= modified" true
    (flat.Mst.Kruskal.total_weight <= bb.Mst.Backbone.total_weight +. 1e-9)

let test_distributed_matches_centralised () =
  let g = hier 4 in
  let dist = Mst.Backbone.build ~distributed:true g in
  let cent = Mst.Backbone.build ~distributed:false g in
  Alcotest.(check (float 1e-6)) "same backbone weight"
    cent.Mst.Backbone.backbone_weight dist.Mst.Backbone.backbone_weight;
  Alcotest.(check (float 1e-6)) "same local weight" cent.Mst.Backbone.local_weight
    dist.Mst.Backbone.local_weight;
  Alcotest.(check bool) "distributed run sent messages" true
    (dist.Mst.Backbone.messages > 0);
  Alcotest.(check int) "centralised run sent none" 0 cent.Mst.Backbone.messages

let test_border_nodes () =
  let g = hier 5 in
  let bb = Mst.Backbone.build g in
  List.iter
    (fun (r, borders) ->
      Alcotest.(check bool) (r ^ " has borders") true (borders <> []);
      List.iter
        (fun v ->
          Alcotest.(check string) "border in its region" r (Netsim.Graph.region g v);
          let crosses =
            List.exists
              (fun (u, _) -> Netsim.Graph.region g u <> r)
              (Netsim.Graph.neighbors g v)
          in
          Alcotest.(check bool) "actually borders another region" true crosses)
        borders)
    bb.Mst.Backbone.border_nodes

let test_single_region_backbone_empty () =
  let site = Netsim.Topology.paper_fig1 () in
  let bb = Mst.Backbone.build site.Netsim.Topology.graph in
  Alcotest.(check (list (triple int int (float 1e-9)))) "no backbone" []
    bb.Mst.Backbone.backbone;
  Alcotest.(check int) "one local tree" 1 (List.length bb.Mst.Backbone.locals);
  Alcotest.(check bool) "spans" true
    (Mst.Backbone.spans_all site.Netsim.Topology.graph bb)

let test_cost_table () =
  let g = hier 6 in
  let bb = Mst.Backbone.build g in
  let ct = Mst.Cost_table.build bb ~source:"r0" in
  Alcotest.(check int) "three entries" 3 (List.length ct.Mst.Cost_table.entries);
  List.iter
    (fun e ->
      let open Mst.Cost_table in
      Alcotest.(check bool) (e.region ^ " costs finite") true
        (Float.is_finite e.entry_total);
      Alcotest.(check bool) "total = parts" true
        (Float.abs (e.entry_total -. (e.backbone_cost +. e.local_cost)) < 1e-9);
      if String.equal e.region "r0" then
        Alcotest.(check (float 1e-9)) "own region backbone free" 0. e.backbone_cost
      else Alcotest.(check bool) "foreign region costs backbone" true (e.backbone_cost > 0.))
    ct.Mst.Cost_table.entries

let test_cost_table_estimate_additive () =
  let g = hier 6 in
  let bb = Mst.Backbone.build g in
  let ct = Mst.Cost_table.build bb ~source:"r0" in
  let e01 = Mst.Cost_table.estimate ct ~regions:[ "r0"; "r1" ] in
  let e0 = Mst.Cost_table.estimate ct ~regions:[ "r0" ] in
  let e1 = Mst.Cost_table.estimate ct ~regions:[ "r1" ] in
  Alcotest.(check (float 1e-9)) "additive" (e0 +. e1) e01;
  try
    ignore (Mst.Cost_table.estimate ct ~regions:[ "mars" ]);
    Alcotest.fail "unknown region accepted"
  with Invalid_argument _ -> ()

let test_affordable_greedy () =
  let g = hier 6 in
  let bb = Mst.Backbone.build g in
  let ct = Mst.Cost_table.build bb ~source:"r0" in
  let all_cost = Mst.Cost_table.estimate ct ~regions:(List.map fst bb.Mst.Backbone.locals) in
  Alcotest.(check (list string)) "huge budget covers all" [ "r0"; "r1"; "r2" ]
    (Mst.Cost_table.affordable ct ~budget:(all_cost +. 1.));
  Alcotest.(check (list string)) "zero budget covers none" []
    (Mst.Cost_table.affordable ct ~budget:0.);
  (* budgets are respected *)
  let chosen = Mst.Cost_table.affordable ct ~budget:(all_cost /. 2.) in
  Alcotest.(check bool) "partial" true
    (Mst.Cost_table.estimate ct ~regions:chosen <= (all_cost /. 2.) +. 1e-9)

let test_unknown_source_rejected () =
  let g = hier 7 in
  let bb = Mst.Backbone.build g in
  try
    ignore (Mst.Cost_table.build bb ~source:"nowhere");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_spans_random_hierarchies =
  QCheck.Test.make ~name:"backbone structure spans arbitrary hierarchies" ~count:15
    QCheck.(pair (int_range 2 5) (int_range 2 6))
    (fun (regions, hosts) ->
      let rng = Dsim.Rng.create ((regions * 100) + hosts) in
      let spec =
        { Netsim.Topology.default_hierarchy with regions; hosts_per_region = hosts }
      in
      let g = Netsim.Topology.hierarchical ~rng spec in
      let bb = Mst.Backbone.build ~distributed:false g in
      Mst.Backbone.spans_all g bb)

let suite =
  [
    ( "backbone",
      [
        Alcotest.test_case "structure" `Quick test_build_structure;
        Alcotest.test_case "weight decomposition" `Quick test_total_weight_decomposition;
        Alcotest.test_case "flat MST never heavier" `Quick test_flat_mst_no_heavier;
        Alcotest.test_case "distributed matches centralised" `Quick
          test_distributed_matches_centralised;
        Alcotest.test_case "border nodes" `Quick test_border_nodes;
        Alcotest.test_case "single region" `Quick test_single_region_backbone_empty;
        Alcotest.test_case "cost table (Figure 2 / §3.3.B)" `Quick test_cost_table;
        Alcotest.test_case "cost estimate additive" `Quick
          test_cost_table_estimate_additive;
        Alcotest.test_case "affordable greedy" `Quick test_affordable_greedy;
        Alcotest.test_case "unknown source rejected" `Quick test_unknown_source_rejected;
        QCheck_alcotest.to_alcotest prop_spans_random_hierarchies;
      ] );
  ]
