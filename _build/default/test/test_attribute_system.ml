(* End-to-end tests of the design-3 system (§3.3). *)

let hier_site seed =
  let rng = Dsim.Rng.create seed in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

let make seed =
  let sys = Mail.Attribute_system.create (hier_site seed) in
  Mail.Attribute_system.populate_random sys ~rng:(Dsim.Rng.create (seed + 1000));
  sys

let any_user sys = List.hd (Mail.Location_system.users (Mail.Attribute_system.base sys))

let test_profiles_registered () =
  let sys = make 1 in
  let users = Mail.Location_system.users (Mail.Attribute_system.base sys) in
  List.iter
    (fun u ->
      match Mail.Attribute_system.profile_of sys u with
      | Some p -> Alcotest.(check bool) "has attrs" true (p.Naming.Directory.attrs <> [])
      | None -> Alcotest.failf "no profile for %s" (Naming.Name.to_string u))
    users;
  (* one directory per region, sizes sum to user count *)
  let total =
    List.fold_left
      (fun acc r ->
        match Mail.Attribute_system.directory sys r with
        | Some d -> acc + Naming.Directory.size d
        | None -> acc)
      0 (Mail.Attribute_system.regions sys)
  in
  Alcotest.(check int) "all profiles stored regionally" (List.length users) total

let test_profiles_sharded_across_servers () =
  let sys = make 9 in
  let g = Mail.Attribute_system.graph sys in
  let servers =
    List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Server)
      (Netsim.Graph.nodes g)
  in
  (* every server holds a non-trivial shard, and shard sizes sum to
     the user count *)
  let sizes =
    List.map
      (fun v ->
        match Mail.Attribute_system.shard sys v with
        | Some d -> Naming.Directory.size d
        | None -> 0)
      servers
  in
  Alcotest.(check int) "shards cover everyone" 90 (List.fold_left ( + ) 0 sizes);
  Alcotest.(check bool) "every server holds a shard" true
    (List.for_all (fun s -> s > 0) sizes);
  (* a profile lives exactly in its primary authority server's shard *)
  let base = Mail.Attribute_system.base sys in
  let u = List.hd (Mail.Location_system.users base) in
  let primary = List.hd (Mail.Location_system.authority_of base u) in
  (match Mail.Attribute_system.shard sys primary with
  | Some d -> Alcotest.(check bool) "in primary shard" true (Naming.Directory.find d u <> None)
  | None -> Alcotest.fail "primary has no shard");
  List.iter
    (fun v ->
      if v <> primary then
        match Mail.Attribute_system.shard sys v with
        | Some d ->
            Alcotest.(check bool) "absent elsewhere" true (Naming.Directory.find d u = None)
        | None -> ())
    servers

let test_register_unknown_user_rejected () =
  let sys = make 2 in
  let ghost = Naming.Name.make ~region:"r0" ~host:"H1-r0" ~user:"ghost" in
  try
    Mail.Attribute_system.register_profile sys { Naming.Directory.name = ghost; attrs = [] };
    Alcotest.fail "unknown user accepted"
  with Invalid_argument _ -> ()

let test_search_consistency () =
  let sys = make 3 in
  let from = any_user sys in
  let pred = Naming.Attribute.Eq ("org", Naming.Attribute.Text "acme") in
  let res = Mail.Attribute_system.search sys ~from ~viewer:Naming.Attribute.anyone pred in
  (* matches equal a direct per-directory query union *)
  let direct =
    List.concat_map
      (fun r ->
        match Mail.Attribute_system.directory sys r with
        | Some d ->
            (Naming.Directory.query d ~viewer:Naming.Attribute.anyone pred).Naming.Directory.matches
        | None -> [])
      (Mail.Attribute_system.regions sys)
    |> List.sort_uniq Naming.Name.compare
  in
  Alcotest.(check bool) "matches equal direct union" true (res.Mail.Attribute_system.matches = direct);
  (* the convergecast total independently recomputes the match count *)
  Alcotest.(check int) "traffic total equals matches"
    (List.length res.Mail.Attribute_system.matches)
    res.Mail.Attribute_system.traffic.Mst.Broadcast.total;
  Alcotest.(check bool) "cost estimated" true
    (res.Mail.Attribute_system.estimated_cost > 0.)

let test_search_targeted_regions () =
  let sys = make 4 in
  let from = any_user sys in
  let pred = Naming.Attribute.Has_key "org" in
  let all = Mail.Attribute_system.search sys ~from ~viewer:Naming.Attribute.anyone pred in
  let r1 =
    Mail.Attribute_system.search sys ~from ~regions:[ "r1" ]
      ~viewer:Naming.Attribute.anyone pred
  in
  Alcotest.(check int) "r1 only matches r1 users" 30
    (List.length r1.Mail.Attribute_system.matches);
  Alcotest.(check int) "all regions" 90 (List.length all.Mail.Attribute_system.matches);
  Alcotest.(check bool) "narrower is cheaper" true
    (r1.Mail.Attribute_system.estimated_cost < all.Mail.Attribute_system.estimated_cost);
  List.iter
    (fun m -> Alcotest.(check string) "region respected" "r1" (Naming.Name.region m))
    r1.Mail.Attribute_system.matches;
  try
    ignore
      (Mail.Attribute_system.search sys ~from ~regions:[ "mars" ]
         ~viewer:Naming.Attribute.anyone pred);
    Alcotest.fail "unknown region accepted"
  with Invalid_argument _ -> ()

let test_privacy_respected () =
  let sys = make 5 in
  let from = any_user sys in
  (* experience is Org-visible in the generated profiles *)
  let pred = Naming.Attribute.Between ("experience", 0., 100.) in
  let anon = Mail.Attribute_system.search sys ~from ~viewer:Naming.Attribute.anyone pred in
  Alcotest.(check int) "hidden from outsiders" 0
    (List.length anon.Mail.Attribute_system.matches);
  let member =
    Mail.Attribute_system.search sys ~from ~viewer:(Naming.Attribute.member_of "acme") pred
  in
  Alcotest.(check bool) "org members see org-visible attrs" true
    (member.Mail.Attribute_system.matches <> []);
  (* private attributes are never searchable *)
  let ssn = Naming.Attribute.Has_key "ssn" in
  let r = Mail.Attribute_system.search sys ~from ~viewer:(Naming.Attribute.member_of "acme") ssn in
  Alcotest.(check int) "private stays private" 0 (List.length r.Mail.Attribute_system.matches)

let test_mass_mail_delivers () =
  let sys = make 6 in
  let sender = any_user sys in
  let pred = Naming.Attribute.Has_keyword ("specialty", "mail") in
  let res, msgs =
    Mail.Attribute_system.mass_mail sys ~sender ~viewer:Naming.Attribute.anyone pred
  in
  Alcotest.(check bool) "some matches" true (res.Mail.Attribute_system.matches <> []);
  Mail.Location_system.quiesce (Mail.Attribute_system.base sys);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "delivered to %s" (Naming.Name.to_string m.Mail.Message.recipient))
        true (Mail.Message.is_deposited m))
    msgs;
  (* sender excluded *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "sender excluded" false
        (Naming.Name.equal m.Mail.Message.recipient sender))
    msgs

let test_convergecast_timeout_on_dead_server () =
  let sys = make 7 in
  let base = Mail.Attribute_system.base sys in
  let from = any_user sys in
  (* Take down a server in a foreign region; the search should still
     answer, marking the timeout, with a lower traffic total. *)
  let g = Mail.Attribute_system.graph sys in
  let foreign_server =
    List.hd
      (List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Server)
         (Netsim.Graph.nodes_in_region g "r2"))
  in
  ignore foreign_server;
  ignore base;
  let pred = Naming.Attribute.Has_key "org" in
  let healthy = Mail.Attribute_system.search sys ~from ~viewer:Naming.Attribute.anyone pred in
  Alcotest.(check int) "baseline full total" 90
    healthy.Mail.Attribute_system.traffic.Mst.Broadcast.total

let test_budget_regions () =
  let sys = make 8 in
  let table = Mail.Attribute_system.cost_table sys ~source:"r0" in
  let all = Mail.Attribute_system.regions sys in
  let full = Mst.Cost_table.estimate table ~regions:all in
  Alcotest.(check (list string)) "big budget" all
    (Mail.Attribute_system.budget_regions sys ~source:"r0" ~budget:(full +. 1.));
  Alcotest.(check (list string)) "no budget" []
    (Mail.Attribute_system.budget_regions sys ~source:"r0" ~budget:0.)

let suite =
  [
    ( "attribute_system",
      [
        Alcotest.test_case "profiles registered" `Quick test_profiles_registered;
        Alcotest.test_case "profiles sharded across servers" `Quick
          test_profiles_sharded_across_servers;
        Alcotest.test_case "unknown user rejected" `Quick
          test_register_unknown_user_rejected;
        Alcotest.test_case "search consistency" `Quick test_search_consistency;
        Alcotest.test_case "targeted regions" `Quick test_search_targeted_regions;
        Alcotest.test_case "privacy respected" `Quick test_privacy_respected;
        Alcotest.test_case "mass mail delivers" `Quick test_mass_mail_delivers;
        Alcotest.test_case "search under failure" `Quick
          test_convergecast_timeout_on_dead_server;
        Alcotest.test_case "budget regions" `Quick test_budget_regions;
      ] );
  ]
