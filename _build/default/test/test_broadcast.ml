(* Tests for MST broadcast, flooding and convergecast (§3.3.A–B). *)

let tree_and_graph seed n =
  let rng = Dsim.Rng.create seed in
  let g =
    Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:1.
      ~max_weight:4.
  in
  (g, (Mst.Kruskal.run g).Mst.Kruskal.edges)

let test_broadcast_reaches_all () =
  let g, tree = tree_and_graph 1 20 in
  let s = Mst.Broadcast.broadcast g ~tree ~root:0 in
  Alcotest.(check int) "reached" 20 s.Mst.Broadcast.reached;
  Alcotest.(check int) "messages = n-1" 19 s.Mst.Broadcast.messages;
  Alcotest.(check bool) "took time" true (s.Mst.Broadcast.completion_time > 0.)

let test_flood_reaches_all_with_more_messages () =
  let g, tree = tree_and_graph 2 20 in
  let b = Mst.Broadcast.broadcast g ~tree ~root:0 in
  let f = Mst.Broadcast.flood g ~root:0 in
  Alcotest.(check int) "flood reaches" 20 f.Mst.Broadcast.reached;
  (* flooding sends deg(r) + sum over others (deg-1) = 2E - (n-1) *)
  let expected = (2 * Netsim.Graph.edge_count g) - (20 - 1) in
  Alcotest.(check int) "flood message count" expected f.Mst.Broadcast.messages;
  Alcotest.(check bool) "tree cheaper" true
    (b.Mst.Broadcast.messages < f.Mst.Broadcast.messages)

let test_broadcast_failed_subtree_cut () =
  (* line 0-1-2-3: failing node 1 cuts 2 and 3 off. *)
  let g = Netsim.Topology.line ~n:4 ~weight:1. in
  let tree = (Mst.Kruskal.run g).Mst.Kruskal.edges in
  let s = Mst.Broadcast.broadcast ~failed:[ 1 ] g ~tree ~root:0 in
  Alcotest.(check int) "only root" 1 s.Mst.Broadcast.reached

let test_broadcast_failed_root () =
  let g = Netsim.Topology.line ~n:3 ~weight:1. in
  let tree = (Mst.Kruskal.run g).Mst.Kruskal.edges in
  let s = Mst.Broadcast.broadcast ~failed:[ 0 ] g ~tree ~root:0 in
  Alcotest.(check int) "nothing happens" 0 s.Mst.Broadcast.reached;
  Alcotest.(check int) "no messages" 0 s.Mst.Broadcast.messages

let test_broadcast_virtual_edge_routed () =
  (* tree edge between non-adjacent nodes is routed over the graph *)
  let g = Netsim.Topology.line ~n:3 ~weight:1. in
  let tree = [ (0, 2, 2.) ] in
  let s = Mst.Broadcast.broadcast g ~tree ~root:0 in
  Alcotest.(check int) "reaches the far node" 2 s.Mst.Broadcast.reached;
  Alcotest.(check int) "one send" 1 s.Mst.Broadcast.messages;
  Alcotest.(check int) "two link crossings" 2 s.Mst.Broadcast.link_crossings

let test_convergecast_counts_all () =
  let g, tree = tree_and_graph 3 25 in
  let r = Mst.Broadcast.convergecast g ~tree ~root:0 ~value:(fun _ -> 1) in
  Alcotest.(check int) "total" 25 r.Mst.Broadcast.total;
  Alcotest.(check int) "responded" 25 r.Mst.Broadcast.responded;
  Alcotest.(check int) "no timeouts" 0 r.Mst.Broadcast.timed_out_children;
  (* a query and a reply per tree edge *)
  Alcotest.(check int) "messages = 2(n-1)" 48 r.Mst.Broadcast.g_messages

let test_convergecast_custom_values () =
  let g, tree = tree_and_graph 4 10 in
  let r = Mst.Broadcast.convergecast g ~tree ~root:0 ~value:(fun v -> v) in
  Alcotest.(check int) "sum of node ids" 45 r.Mst.Broadcast.total

let test_convergecast_with_failure_times_out () =
  let g = Netsim.Topology.line ~n:4 ~weight:1. in
  let tree = (Mst.Kruskal.run g).Mst.Kruskal.edges in
  let r =
    Mst.Broadcast.convergecast ~failed:[ 2 ] ~timeout:10. g ~tree ~root:0
      ~value:(fun _ -> 1)
  in
  (* nodes 2 and 3 unreachable; node 1 times out waiting on 2 and its
     partial summary still reaches the root thanks to the decaying
     budget. *)
  Alcotest.(check int) "partial total" 2 r.Mst.Broadcast.total;
  Alcotest.(check int) "responded" 2 r.Mst.Broadcast.responded;
  Alcotest.(check int) "one timed-out child" 1 r.Mst.Broadcast.timed_out_children;
  Alcotest.(check bool) "completion reflects the waiting" true
    (r.Mst.Broadcast.g_completion_time > 5.)

let test_convergecast_failed_root () =
  let g = Netsim.Topology.line ~n:3 ~weight:1. in
  let tree = (Mst.Kruskal.run g).Mst.Kruskal.edges in
  let r = Mst.Broadcast.convergecast ~failed:[ 0 ] g ~tree ~root:0 ~value:(fun _ -> 1) in
  Alcotest.(check int) "no result" 0 r.Mst.Broadcast.total

let test_convergecast_single_node () =
  let g = Netsim.Graph.create () in
  let root = Netsim.Graph.add_node g in
  let r = Mst.Broadcast.convergecast g ~tree:[] ~root ~value:(fun _ -> 7) in
  Alcotest.(check int) "own value" 7 r.Mst.Broadcast.total;
  Alcotest.(check int) "no messages" 0 r.Mst.Broadcast.g_messages

let test_unknown_root_rejected () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  try
    ignore (Mst.Broadcast.broadcast g ~tree:[] ~root:99);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_convergecast_total_equals_sum =
  QCheck.Test.make ~name:"convergecast total equals sum over nodes" ~count:25
    QCheck.(int_range 2 40)
    (fun n ->
      let g, tree = tree_and_graph (n * 7) n in
      let r = Mst.Broadcast.convergecast g ~tree ~root:0 ~value:(fun v -> v + 1) in
      r.Mst.Broadcast.total = n * (n + 1) / 2)

let prop_flood_always_reaches_connected =
  QCheck.Test.make ~name:"flooding reaches every node of a connected graph" ~count:25
    QCheck.(int_range 1 40)
    (fun n ->
      let g, _ = tree_and_graph (n * 11) n in
      (Mst.Broadcast.flood g ~root:0).Mst.Broadcast.reached = n)

let suite =
  [
    ( "broadcast",
      [
        Alcotest.test_case "broadcast reaches all" `Quick test_broadcast_reaches_all;
        Alcotest.test_case "flood costs more" `Quick
          test_flood_reaches_all_with_more_messages;
        Alcotest.test_case "failed subtree cut off" `Quick
          test_broadcast_failed_subtree_cut;
        Alcotest.test_case "failed root" `Quick test_broadcast_failed_root;
        Alcotest.test_case "virtual edges routed" `Quick
          test_broadcast_virtual_edge_routed;
        Alcotest.test_case "convergecast counts all" `Quick test_convergecast_counts_all;
        Alcotest.test_case "convergecast custom values" `Quick
          test_convergecast_custom_values;
        Alcotest.test_case "convergecast timeout on failure" `Quick
          test_convergecast_with_failure_times_out;
        Alcotest.test_case "convergecast failed root" `Quick
          test_convergecast_failed_root;
        Alcotest.test_case "convergecast single node" `Quick
          test_convergecast_single_node;
        Alcotest.test_case "unknown root rejected" `Quick test_unknown_root_rejected;
        QCheck_alcotest.to_alcotest prop_convergecast_total_equals_sum;
        QCheck_alcotest.to_alcotest prop_flood_always_reaches_connected;
      ] );
  ]
