(* Tests for the §3.1.3 reconfiguration operators. *)

let balanced_fig1 () =
  let p = Loadbalance.Assignment.problem_of_site (Netsim.Topology.paper_fig1 ()) in
  let t, _ = Loadbalance.Balancer.run p in
  (p, t)

let total_load t = Array.fold_left ( + ) 0 (Loadbalance.Assignment.loads t)

let test_add_users () =
  let p, t = balanced_fig1 () in
  let h1 = p.Loadbalance.Assignment.hosts.(0) in
  let p', t', stats =
    Loadbalance.Reconfigure.apply_and_rebalance p t
      (Loadbalance.Reconfigure.Add_users (h1, 20))
  in
  Alcotest.(check int) "population grew" 70 p'.Loadbalance.Assignment.populations.(0);
  Alcotest.(check int) "total" 290 (total_load t');
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p' t');
  Alcotest.(check bool) "converged" true stats.Loadbalance.Balancer.converged

let test_remove_users () =
  let p, t = balanced_fig1 () in
  let h2 = p.Loadbalance.Assignment.hosts.(1) in
  let p', t', _ =
    Loadbalance.Reconfigure.apply_and_rebalance p t
      (Loadbalance.Reconfigure.Remove_users (h2, 30))
  in
  Alcotest.(check int) "population shrank" 30 p'.Loadbalance.Assignment.populations.(1);
  Alcotest.(check int) "total" 240 (total_load t');
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p' t')

let test_remove_too_many_users () =
  let p, t = balanced_fig1 () in
  let h = p.Loadbalance.Assignment.hosts.(5) in
  try
    ignore (Loadbalance.Reconfigure.apply p t (Loadbalance.Reconfigure.Remove_users (h, 999)));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_add_host () =
  let site = Netsim.Topology.paper_fig1 () in
  let g = site.Netsim.Topology.graph in
  (* A new host wired to S3. *)
  let h7 = Netsim.Graph.add_node ~label:"H7" ~kind:Netsim.Graph.Host ~region:"r0" g in
  Netsim.Graph.add_edge g h7 8 1.0;
  let p = Loadbalance.Assignment.problem_of_site site in
  let t, _ = Loadbalance.Balancer.run p in
  let p', t', _ =
    Loadbalance.Reconfigure.apply_and_rebalance p t
      (Loadbalance.Reconfigure.Add_host (h7, 25))
  in
  Alcotest.(check int) "hosts" 7 (Array.length p'.Loadbalance.Assignment.hosts);
  Alcotest.(check int) "total" 295 (total_load t');
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p' t')

let test_remove_host () =
  let p, t = balanced_fig1 () in
  let h6 = p.Loadbalance.Assignment.hosts.(5) in
  let p', t', _ =
    Loadbalance.Reconfigure.apply_and_rebalance p t
      (Loadbalance.Reconfigure.Remove_host h6)
  in
  Alcotest.(check int) "hosts" 5 (Array.length p'.Loadbalance.Assignment.hosts);
  Alcotest.(check int) "total drops by 20" 250 (total_load t')

let test_add_server () =
  let site = Netsim.Topology.paper_fig1 () in
  let g = site.Netsim.Topology.graph in
  let s4 = Netsim.Graph.add_node ~label:"S4" ~kind:Netsim.Graph.Server ~region:"r0" g in
  Netsim.Graph.add_edge g s4 7 1.0;
  (* attach next to overloaded S2 *)
  let p = Loadbalance.Assignment.problem_of_site site in
  let t = Loadbalance.Balancer.initialize p in
  let p', t', _ =
    Loadbalance.Reconfigure.apply_and_rebalance p t
      (Loadbalance.Reconfigure.Add_server (s4, 100))
  in
  Alcotest.(check int) "servers" 4 (Array.length p'.Loadbalance.Assignment.servers);
  Alcotest.(check int) "total preserved" 270 (total_load t');
  Alcotest.(check (list int)) "no overload" []
    (Loadbalance.Assignment.overloaded p' t');
  (* the new server actually took load *)
  Alcotest.(check bool) "new server used" true (Loadbalance.Assignment.load t' 3 > 0)

let test_remove_server () =
  let p, t = balanced_fig1 () in
  let s3 = p.Loadbalance.Assignment.servers.(2) in
  let p', t', _ =
    Loadbalance.Reconfigure.apply_and_rebalance p t
      (Loadbalance.Reconfigure.Remove_server s3)
  in
  Alcotest.(check int) "servers" 2 (Array.length p'.Loadbalance.Assignment.servers);
  Alcotest.(check int) "users preserved" 270 (total_load t');
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p' t')

let test_remove_last_server_rejected () =
  let site = Netsim.Topology.paper_table3 () in
  let p = Loadbalance.Assignment.problem_of_site site in
  let t, _ = Loadbalance.Balancer.run p in
  let remove s (p, t) =
    let p', t' = Loadbalance.Reconfigure.apply p t (Loadbalance.Reconfigure.Remove_server s) in
    (p', t')
  in
  let p1, t1 = remove p.Loadbalance.Assignment.servers.(2) (p, t) in
  let p2, t2 = remove p1.Loadbalance.Assignment.servers.(1) (p1, t1) in
  try
    ignore (remove p2.Loadbalance.Assignment.servers.(0) (p2, t2));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_duplicate_add_rejected () =
  let p, t = balanced_fig1 () in
  let existing_server = p.Loadbalance.Assignment.servers.(0) in
  (try
     ignore
       (Loadbalance.Reconfigure.apply p t
          (Loadbalance.Reconfigure.Add_server (existing_server, 100)));
     Alcotest.fail "duplicate server accepted"
   with Invalid_argument _ -> ());
  let existing_host = p.Loadbalance.Assignment.hosts.(0) in
  try
    ignore
      (Loadbalance.Reconfigure.apply p t
         (Loadbalance.Reconfigure.Add_host (existing_host, 5)));
    Alcotest.fail "duplicate host accepted"
  with Invalid_argument _ -> ()

let test_port_preserves_surviving_assignment () =
  let p, t = balanced_fig1 () in
  let before = Loadbalance.Assignment.get t ~host:0 ~server:0 in
  let p', t' =
    Loadbalance.Reconfigure.apply p t (Loadbalance.Reconfigure.Remove_host
      p.Loadbalance.Assignment.hosts.(5))
  in
  Alcotest.(check int) "H1 allocation carried over" before
    (Loadbalance.Assignment.get t' ~host:0 ~server:0);
  Alcotest.(check bool) "still complete for surviving hosts" true
    (Loadbalance.Assignment.is_complete p' t')

(* Random sequences of reconfigurations keep the system consistent:
   complete assignment, conserved totals, convergence every step. *)
let prop_random_reconfiguration_sequences =
  QCheck.Test.make ~name:"random reconfiguration sequences stay consistent" ~count:15
    QCheck.(pair (int_range 1 1000) (int_range 1 6))
    (fun (seed, steps) ->
      let rng = Dsim.Rng.create seed in
      let site =
        Netsim.Topology.random_mail_site ~rng ~hosts:6 ~servers:3
          ~users_per_host:(10, 30) ~extra_edges:6
      in
      let g = site.Netsim.Topology.graph in
      let problem =
        Loadbalance.Assignment.problem_of_site ~capacity:(fun _ -> 200) site
      in
      let t, _ = Loadbalance.Balancer.run problem in
      let state = ref (problem, t) in
      let ok = ref true in
      for _ = 1 to steps do
        let problem, t = !state in
        let hosts = problem.Loadbalance.Assignment.hosts in
        let servers = problem.Loadbalance.Assignment.servers in
        let change =
          match Dsim.Rng.int rng 4 with
          | 0 ->
              Loadbalance.Reconfigure.Add_users
                (hosts.(Dsim.Rng.int rng (Array.length hosts)), 5)
          | 1 ->
              let i = Dsim.Rng.int rng (Array.length hosts) in
              let pop = problem.Loadbalance.Assignment.populations.(i) in
              Loadbalance.Reconfigure.Remove_users (hosts.(i), min 3 pop)
          | 2 when Array.length hosts > 1 ->
              Loadbalance.Reconfigure.Remove_host
                (hosts.(Dsim.Rng.int rng (Array.length hosts)))
          | 2 -> Loadbalance.Reconfigure.Add_users (hosts.(0), 1)
          | _ when Array.length servers > 1 ->
              Loadbalance.Reconfigure.Remove_server
                (servers.(Dsim.Rng.int rng (Array.length servers)))
          | _ -> Loadbalance.Reconfigure.Add_users (hosts.(0), 1)
        in
        let problem', t', stats =
          Loadbalance.Reconfigure.apply_and_rebalance problem t change
        in
        let expected =
          Array.fold_left ( + ) 0 problem'.Loadbalance.Assignment.populations
        in
        if
          (not (Loadbalance.Assignment.is_complete problem' t'))
          || Array.fold_left ( + ) 0 (Loadbalance.Assignment.loads t') <> expected
          || not stats.Loadbalance.Balancer.converged
        then ok := false;
        state := (problem', t')
      done;
      ignore g;
      !ok)

let suite =
  [
    ( "reconfigure",
      [
        Alcotest.test_case "add users" `Quick test_add_users;
        Alcotest.test_case "remove users" `Quick test_remove_users;
        Alcotest.test_case "remove too many users" `Quick test_remove_too_many_users;
        Alcotest.test_case "add host" `Quick test_add_host;
        Alcotest.test_case "remove host" `Quick test_remove_host;
        Alcotest.test_case "add server relieves overload" `Quick test_add_server;
        Alcotest.test_case "remove server" `Quick test_remove_server;
        Alcotest.test_case "cannot remove last server" `Quick
          test_remove_last_server_rejected;
        Alcotest.test_case "duplicate adds rejected" `Quick test_duplicate_add_rejected;
        Alcotest.test_case "porting preserves assignments" `Quick
          test_port_preserves_surviving_assignment;
        QCheck_alcotest.to_alcotest prop_random_reconfiguration_sequences;
      ] );
  ]
