(* Tests for the Netsim.Net transport. *)

type msg = Ping of int

let make_net () =
  let g = Netsim.Topology.line ~n:4 ~weight:2. in
  let engine = Dsim.Engine.create () in
  let net : msg Netsim.Net.t = Netsim.Net.create ~engine g in
  (engine, net)

let test_delivery_and_latency () =
  let engine, net = make_net () in
  let received = ref [] in
  Netsim.Net.set_handler net 3 (fun ~time ~src (Ping n) ->
      received := (time, src, n) :: !received);
  ignore (Netsim.Net.send net ~src:0 ~dst:3 (Ping 7));
  Dsim.Engine.run engine;
  match !received with
  | [ (time, src, 7) ] ->
      Alcotest.(check (float 1e-9)) "latency = path distance" 6. time;
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check int) "sent" 1 (Netsim.Net.messages_sent net);
      Alcotest.(check int) "delivered" 1 (Netsim.Net.messages_delivered net);
      Alcotest.(check int) "hops" 3 (Netsim.Net.hops_traversed net)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_send_neighbor () =
  let engine, net = make_net () in
  let got = ref false in
  Netsim.Net.set_handler net 1 (fun ~time ~src:_ (Ping _) ->
      Alcotest.(check (float 1e-9)) "edge latency" 2. time;
      got := true);
  ignore (Netsim.Net.send_neighbor net ~src:0 ~dst:1 (Ping 0));
  Dsim.Engine.run engine;
  Alcotest.(check bool) "delivered" true !got;
  Alcotest.check_raises "non-adjacent"
    (Invalid_argument "Net.send_neighbor: nodes are not adjacent") (fun () ->
      ignore (Netsim.Net.send_neighbor net ~src:0 ~dst:3 (Ping 0)))

let test_drop_when_destination_down () =
  let engine, net = make_net () in
  let got = ref false in
  Netsim.Net.set_handler net 1 (fun ~time:_ ~src:_ _ -> got := true);
  Netsim.Net.set_down net 1;
  ignore (Netsim.Net.send net ~src:0 ~dst:1 (Ping 0));
  Dsim.Engine.run engine;
  Alcotest.(check bool) "not delivered" false !got;
  Alcotest.(check int) "dropped" 1 (Netsim.Net.messages_dropped net)

let test_drop_in_flight () =
  (* Destination goes down after the send but before delivery. *)
  let engine, net = make_net () in
  let got = ref false in
  Netsim.Net.set_handler net 3 (fun ~time:_ ~src:_ _ -> got := true);
  let accepted = Netsim.Net.send net ~src:0 ~dst:3 (Ping 1) in
  Alcotest.(check bool) "accepted at send time" true accepted;
  ignore (Dsim.Engine.schedule_at engine 1. (fun () -> Netsim.Net.set_down net 3));
  Dsim.Engine.run engine;
  Alcotest.(check bool) "dropped at delivery" false !got;
  Alcotest.(check int) "counted dropped" 1 (Netsim.Net.messages_dropped net)

let test_drop_when_relay_down () =
  let engine, net = make_net () in
  Netsim.Net.set_down net 1;
  (* path 0-1-2-3 has relay 1 down *)
  let accepted = Netsim.Net.send net ~src:0 ~dst:3 (Ping 2) in
  Alcotest.(check bool) "refused" false accepted;
  Dsim.Engine.run engine;
  Alcotest.(check int) "dropped" 1 (Netsim.Net.messages_dropped net)

let test_source_down () =
  let _, net = make_net () in
  Netsim.Net.set_down net 0;
  Alcotest.(check bool) "refused" false (Netsim.Net.send net ~src:0 ~dst:1 (Ping 3))

let test_status_listeners () =
  let engine, net = make_net () in
  let events = ref [] in
  Netsim.Net.on_status_change net (fun ~time node up -> events := (time, node, up) :: !events);
  ignore (Dsim.Engine.schedule_at engine 5. (fun () -> Netsim.Net.set_down net 2));
  ignore (Dsim.Engine.schedule_at engine 9. (fun () -> Netsim.Net.set_up net 2));
  (* idempotent flips do not notify *)
  ignore (Dsim.Engine.schedule_at engine 9.5 (fun () -> Netsim.Net.set_up net 2));
  Dsim.Engine.run engine;
  Alcotest.(check (list (triple (float 1e-9) int bool)))
    "status events"
    [ (5., 2, false); (9., 2, true) ]
    (List.rev !events)

let test_per_edge_fifo () =
  (* Two messages over the same edge arrive in send order. *)
  let engine, net = make_net () in
  let order = ref [] in
  Netsim.Net.set_handler net 1 (fun ~time:_ ~src:_ (Ping n) -> order := n :: !order);
  ignore (Netsim.Net.send_neighbor net ~src:0 ~dst:1 (Ping 1));
  ignore (Netsim.Net.send_neighbor net ~src:0 ~dst:1 (Ping 2));
  ignore
    (Dsim.Engine.schedule_at engine 0.5 (fun () ->
         ignore (Netsim.Net.send_neighbor net ~src:0 ~dst:1 (Ping 3))));
  Dsim.Engine.run engine;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (List.rev !order)

let test_distance_and_hops () =
  let _, net = make_net () in
  Alcotest.(check (float 1e-9)) "distance" 4. (Netsim.Net.distance net 0 2);
  Alcotest.(check int) "hops" 2 (Netsim.Net.hops net 0 2);
  Alcotest.(check int) "self" 0 (Netsim.Net.hops net 1 1)

let test_reset_counters () =
  let engine, net = make_net () in
  ignore (Netsim.Net.send net ~src:0 ~dst:1 (Ping 9));
  Dsim.Engine.run engine;
  Netsim.Net.reset_counters net;
  Alcotest.(check int) "sent reset" 0 (Netsim.Net.messages_sent net);
  Alcotest.(check int) "delivered reset" 0 (Netsim.Net.messages_delivered net)

let suite =
  [
    ( "net",
      [
        Alcotest.test_case "routed delivery and latency" `Quick test_delivery_and_latency;
        Alcotest.test_case "neighbor send" `Quick test_send_neighbor;
        Alcotest.test_case "drop when destination down" `Quick
          test_drop_when_destination_down;
        Alcotest.test_case "drop in flight" `Quick test_drop_in_flight;
        Alcotest.test_case "drop when relay down" `Quick test_drop_when_relay_down;
        Alcotest.test_case "source down refuses" `Quick test_source_down;
        Alcotest.test_case "status listeners" `Quick test_status_listeners;
        Alcotest.test_case "per-edge FIFO" `Quick test_per_edge_fifo;
        Alcotest.test_case "distance and hops" `Quick test_distance_and_hops;
        Alcotest.test_case "reset counters" `Quick test_reset_counters;
      ] );
  ]
