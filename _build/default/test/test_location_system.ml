(* End-to-end tests of the design-2 system (§3.2). *)

let hier_site seed =
  let rng = Dsim.Rng.create seed in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

let make ?config seed = Mail.Location_system.create ?config (hier_site seed)

let user sys i = List.nth (Mail.Location_system.users sys) i

let in_region sys r =
  List.filter (fun u -> String.equal (Naming.Name.region u) r)
    (Mail.Location_system.users sys)

let test_construction () =
  let sys = make 1 in
  Alcotest.(check int) "users" 90 (List.length (Mail.Location_system.users sys));
  Alcotest.(check int) "servers" 6 (List.length (Mail.Location_system.server_nodes sys))

let test_hash_authority_host_independent () =
  let sys = make 2 in
  (* The §3.2 property: authority assignment depends only on (region,
     user), never on the host token. *)
  let a = Naming.Name.make ~region:"r0" ~host:"hostA" ~user:"zed" in
  let b = Naming.Name.make ~region:"r0" ~host:"hostB" ~user:"zed" in
  Alcotest.(check (list int)) "same authority"
    (Mail.Location_system.authority_of sys a)
    (Mail.Location_system.authority_of sys b);
  (* and lists are non-empty, distinct, within the region's servers *)
  let auth = Mail.Location_system.authority_of sys a in
  Alcotest.(check bool) "non-empty" true (auth <> []);
  Alcotest.(check int) "distinct" (List.length auth)
    (List.length (List.sort_uniq compare auth))

let test_cross_region_delivery () =
  let sys = make 3 in
  let sender = List.hd (in_region sys "r0") in
  let rcpt = List.hd (in_region sys "r2") in
  let m = Mail.Location_system.submit sys ~sender ~recipient:rcpt () in
  Mail.Location_system.run_until sys 500.;
  Alcotest.(check bool) "deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "crossed regions" true (m.Mail.Message.forward_hops >= 1);
  let st = Mail.Location_system.check_mail sys rcpt in
  Alcotest.(check int) "retrieved" 1 st.Mail.User_agent.retrieved

let test_login_moves_and_retrieves () =
  let sys = make 4 in
  let g = Mail.Location_system.graph sys in
  let u = List.hd (in_region sys "r1") in
  (* deposit mail before the user roams *)
  let sender = List.hd (in_region sys "r0") in
  ignore (Mail.Location_system.submit sys ~sender ~recipient:u ());
  Mail.Location_system.run_until sys 300.;
  let r1_hosts =
    List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
      (Netsim.Graph.nodes_in_region g "r1")
  in
  let original_primary = Mail.Location_system.primary_host sys u in
  let target =
    List.hd (List.filter (fun h -> h <> original_primary) r1_hosts)
  in
  let st = Mail.Location_system.login sys u ~host:target in
  Alcotest.(check int) "login retrieved pending mail" 1 st.Mail.User_agent.retrieved;
  Alcotest.(check int) "location updated" target
    (Mail.Location_system.current_location sys u);
  Alcotest.(check int) "agent host moved" target
    (Mail.User_agent.host (Mail.Location_system.agent sys u));
  (* primary host unchanged — the name still names the primary. *)
  Alcotest.(check int) "primary stable" original_primary
    (Mail.Location_system.primary_host sys u);
  Mail.Location_system.run_until sys 600.;
  Alcotest.(check bool) "gossip happened" true
    (Dsim.Stats.Counter.get (Mail.Location_system.counters sys) "location_updates" >= 1)

let test_login_foreign_region_rejected () =
  let sys = make 5 in
  let g = Mail.Location_system.graph sys in
  let u = List.hd (in_region sys "r0") in
  let foreign_host =
    List.hd
      (List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
         (Netsim.Graph.nodes_in_region g "r1"))
  in
  try
    ignore (Mail.Location_system.login sys u ~host:foreign_host);
    Alcotest.fail "foreign login accepted"
  with Invalid_argument _ -> ()

let test_notification_follows_user () =
  let sys = make 6 in
  let g = Mail.Location_system.graph sys in
  let u = List.hd (in_region sys "r1") in
  let r1_hosts =
    List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
      (Netsim.Graph.nodes_in_region g "r1")
  in
  ignore (Mail.Location_system.login sys u ~host:(List.nth r1_hosts 3));
  Mail.Location_system.run_until sys 200.;
  let sender = List.hd (in_region sys "r0") in
  ignore (Mail.Location_system.submit sys ~sender ~recipient:u ());
  Mail.Location_system.run_until sys 500.;
  Alcotest.(check bool) "notified" true
    (Dsim.Stats.Counter.get (Mail.Location_system.counters sys) "notifications" >= 1)

let test_rebalance_hash () =
  let sys = make 7 in
  let moved = Mail.Location_system.rebalance_hash sys ~groups:3 in
  Alcotest.(check bool) "some users moved" true (moved > 0);
  (* agents' authority lists are consistent with the new hash *)
  List.iter
    (fun u ->
      Alcotest.(check (list int)) "consistent"
        (Mail.Location_system.authority_of sys u)
        (Mail.User_agent.authority (Mail.Location_system.agent sys u)))
    (Mail.Location_system.users sys);
  (* delivery still works *)
  let sender = user sys 0 and rcpt = user sys 50 in
  let m = Mail.Location_system.submit sys ~sender ~recipient:rcpt () in
  Mail.Location_system.quiesce sys;
  Alcotest.(check bool) "delivery after rebalance" true (Mail.Message.is_deposited m)

let test_migrate_region () =
  let sys = make 8 in
  let g = Mail.Location_system.graph sys in
  let u = List.hd (in_region sys "r0") in
  let r1_host =
    List.hd
      (List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
         (Netsim.Graph.nodes_in_region g "r1"))
  in
  let new_name = Mail.Location_system.migrate_region sys u ~new_host:r1_host in
  Alcotest.(check string) "new region" "r1" (Naming.Name.region new_name);
  Alcotest.(check bool) "redirect" true
    (Mail.Location_system.redirect_target sys u = Some new_name);
  (* same-region migrate is rejected (use login) *)
  let u2 = List.hd (in_region sys "r2") in
  let r2_host =
    List.hd
      (List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
         (Netsim.Graph.nodes_in_region g "r2"))
  in
  try
    ignore (Mail.Location_system.migrate_region sys u2 ~new_host:r2_host);
    Alcotest.fail "same-region migrate accepted"
  with Invalid_argument _ -> ()

let test_mail_to_old_name_redirected () =
  let sys = make 9 in
  let g = Mail.Location_system.graph sys in
  let u = List.hd (in_region sys "r0") in
  let r1_host =
    List.hd
      (List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
         (Netsim.Graph.nodes_in_region g "r1"))
  in
  let new_name = Mail.Location_system.migrate_region sys u ~new_host:r1_host in
  let sender = List.hd (in_region sys "r2") in
  let m = Mail.Location_system.submit sys ~sender ~recipient:u () in
  Mail.Location_system.quiesce sys;
  Alcotest.(check bool) "deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "rewritten" true
    (Naming.Name.equal m.Mail.Message.recipient new_name);
  let st = Mail.Location_system.check_mail sys new_name in
  Alcotest.(check int) "retrieved at new identity" 1 st.Mail.User_agent.retrieved

let test_retrieval_cost_grows_when_roaming () =
  let sys = make 12 in
  let g = Mail.Location_system.graph sys in
  let u = List.hd (in_region sys "r0") in
  (* several checks at the primary host *)
  for _ = 1 to 5 do
    Mail.Location_system.run_until sys (Mail.Location_system.now sys +. 10.);
    ignore (Mail.Location_system.check_mail sys u)
  done;
  let at_home = Dsim.Stats.Summary.mean (Mail.Location_system.retrieval_cost_stats sys) in
  Alcotest.(check bool) "cost recorded" true (Float.is_finite at_home);
  (* roam across every host of the region: average cost must not be
     free, and the counter machinery must see the roaming checks *)
  let hosts =
    List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
      (Netsim.Graph.nodes_in_region g "r0")
  in
  List.iter
    (fun h ->
      Mail.Location_system.run_until sys (Mail.Location_system.now sys +. 10.);
      ignore (Mail.Location_system.login sys u ~host:h))
    hosts;
  let overall = Mail.Location_system.retrieval_cost_stats sys in
  Alcotest.(check bool) "many samples" true (Dsim.Stats.Summary.count overall >= 10);
  Alcotest.(check bool) "positive costs" true (Dsim.Stats.Summary.max overall > 0.)

let test_config_hash_groups () =
  let config = { Mail.Location_system.default_config with hash_groups = 2 } in
  let sys = make ~config 10 in
  let u = user sys 0 in
  Alcotest.(check bool) "authority within region servers" true
    (List.for_all
       (fun s -> List.mem s (Mail.Location_system.server_nodes sys))
       (Mail.Location_system.authority_of sys u))

let suite =
  [
    ( "location_system",
      [
        Alcotest.test_case "construction" `Quick test_construction;
        Alcotest.test_case "hash authority ignores host" `Quick
          test_hash_authority_host_independent;
        Alcotest.test_case "cross-region delivery" `Quick test_cross_region_delivery;
        Alcotest.test_case "login moves and retrieves" `Quick
          test_login_moves_and_retrieves;
        Alcotest.test_case "foreign login rejected" `Quick
          test_login_foreign_region_rejected;
        Alcotest.test_case "notification follows user" `Quick
          test_notification_follows_user;
        Alcotest.test_case "hash rebalancing" `Quick test_rebalance_hash;
        Alcotest.test_case "cross-region migration" `Quick test_migrate_region;
        Alcotest.test_case "old-name mail redirected" `Quick
          test_mail_to_old_name_redirected;
        Alcotest.test_case "retrieval cost accounting" `Quick
          test_retrieval_cost_grows_when_roaming;
        Alcotest.test_case "custom hash groups" `Quick test_config_hash_groups;
      ] );
  ]
