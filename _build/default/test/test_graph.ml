(* Tests for Netsim.Graph. *)

let simple () =
  let g = Netsim.Graph.create () in
  let a = Netsim.Graph.add_node ~label:"a" ~kind:Netsim.Graph.Host ~region:"r0" g in
  let b = Netsim.Graph.add_node ~label:"b" ~kind:Netsim.Graph.Server ~region:"r0" g in
  let c = Netsim.Graph.add_node ~label:"c" ~kind:Netsim.Graph.Gateway ~region:"r1" g in
  Netsim.Graph.add_edge g a b 1.5;
  Netsim.Graph.add_edge g b c 2.5;
  (g, a, b, c)

let test_construction () =
  let g, a, b, c = simple () in
  Alcotest.(check int) "nodes" 3 (Netsim.Graph.node_count g);
  Alcotest.(check int) "edges" 2 (Netsim.Graph.edge_count g);
  Alcotest.(check (list int)) "ids" [ a; b; c ] (Netsim.Graph.nodes g);
  Alcotest.(check string) "label" "b" (Netsim.Graph.label g b);
  Alcotest.(check string) "region" "r1" (Netsim.Graph.region g c);
  Alcotest.(check bool) "kind" true (Netsim.Graph.kind g a = Netsim.Graph.Host)

let test_edges_symmetric () =
  let g, a, b, _ = simple () in
  Alcotest.(check (option (float 1e-9))) "a->b" (Some 1.5) (Netsim.Graph.weight g a b);
  Alcotest.(check (option (float 1e-9))) "b->a" (Some 1.5) (Netsim.Graph.weight g b a);
  Alcotest.(check bool) "mem_edge both ways" true
    (Netsim.Graph.mem_edge g a b && Netsim.Graph.mem_edge g b a)

let test_bad_edges () =
  let g, a, b, _ = simple () in
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> Netsim.Graph.add_edge g a a 1.);
  expect_invalid (fun () -> Netsim.Graph.add_edge g a b 1.);
  expect_invalid (fun () -> Netsim.Graph.add_edge g a 99 1.);
  expect_invalid (fun () -> Netsim.Graph.add_edge g a b 0.);
  expect_invalid (fun () ->
      let c = Netsim.Graph.add_node g in
      Netsim.Graph.add_edge g a c (-2.))

let test_neighbors_sorted () =
  let g = Netsim.Graph.create () in
  let hub = Netsim.Graph.add_node g in
  let others = List.init 5 (fun _ -> Netsim.Graph.add_node g) in
  List.iter (fun v -> Netsim.Graph.add_edge g hub v 1.) (List.rev others);
  let nbrs = List.map fst (Netsim.Graph.neighbors g hub) in
  Alcotest.(check (list int)) "ascending" others nbrs;
  Alcotest.(check int) "degree" 5 (Netsim.Graph.degree g hub)

let test_kind_and_region_queries () =
  let g, a, b, c = simple () in
  Alcotest.(check (list int)) "hosts" [ a ] (Netsim.Graph.nodes_of_kind g Netsim.Graph.Host);
  Alcotest.(check (list int)) "servers" [ b ]
    (Netsim.Graph.nodes_of_kind g Netsim.Graph.Server);
  Alcotest.(check (list int)) "region r0" [ a; b ] (Netsim.Graph.nodes_in_region g "r0");
  Alcotest.(check (list int)) "region r1" [ c ] (Netsim.Graph.nodes_in_region g "r1");
  Alcotest.(check (list string)) "regions" [ "r0"; "r1" ] (Netsim.Graph.regions g)

let test_total_weight_and_edges () =
  let g, _, _, _ = simple () in
  Alcotest.(check (float 1e-9)) "total" 4.0 (Netsim.Graph.total_weight g);
  Alcotest.(check int) "edges listed once" 2 (List.length (Netsim.Graph.edges g));
  List.iter (fun (u, v, _) -> Alcotest.(check bool) "u<v" true (u < v)) (Netsim.Graph.edges g)

let test_connectivity () =
  let g, _, _, _ = simple () in
  Alcotest.(check bool) "connected" true (Netsim.Graph.is_connected g);
  let lonely = Netsim.Graph.add_node g in
  ignore lonely;
  Alcotest.(check bool) "disconnected with isolated node" false
    (Netsim.Graph.is_connected g);
  Alcotest.(check bool) "empty graph connected" true
    (Netsim.Graph.is_connected (Netsim.Graph.create ()))

let test_subgraph () =
  let g, a, b, c = simple () in
  let sub, mapping = Netsim.Graph.subgraph g [ a; b ] in
  Alcotest.(check int) "sub nodes" 2 (Netsim.Graph.node_count sub);
  Alcotest.(check int) "sub edges" 1 (Netsim.Graph.edge_count sub);
  Alcotest.(check bool) "labels preserved" true
    (Netsim.Graph.label sub (Option.get (mapping a)) = "a");
  Alcotest.(check bool) "dropped node unmapped" true (mapping c = None)

let test_pp_smoke () =
  let g, _, _, _ = simple () in
  let s = Format.asprintf "%a" Netsim.Graph.pp g in
  Alcotest.(check bool) "nonempty" true (String.length s > 20)

let prop_random_graph_consistency =
  QCheck.Test.make ~name:"random graphs: edge list matches adjacency" ~count:50
    QCheck.(int_range 2 40)
    (fun n ->
      let rng = Dsim.Rng.create n in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:1.
          ~max_weight:5.
      in
      let from_edges = List.length (Netsim.Graph.edges g) in
      let degree_sum =
        List.fold_left (fun acc v -> acc + Netsim.Graph.degree g v) 0 (Netsim.Graph.nodes g)
      in
      from_edges = Netsim.Graph.edge_count g && degree_sum = 2 * from_edges)

let suite =
  [
    ( "graph",
      [
        Alcotest.test_case "construction" `Quick test_construction;
        Alcotest.test_case "edges symmetric" `Quick test_edges_symmetric;
        Alcotest.test_case "bad edges rejected" `Quick test_bad_edges;
        Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
        Alcotest.test_case "kind and region queries" `Quick test_kind_and_region_queries;
        Alcotest.test_case "total weight and edge list" `Quick test_total_weight_and_edges;
        Alcotest.test_case "connectivity" `Quick test_connectivity;
        Alcotest.test_case "induced subgraph" `Quick test_subgraph;
        Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        QCheck_alcotest.to_alcotest prop_random_graph_consistency;
      ] );
  ]
