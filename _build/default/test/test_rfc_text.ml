(* Tests for the RFC-822-style wire codec. *)

let nm r h u = Naming.Name.make ~region:r ~host:h ~user:u

let sample () =
  Mail.Message.create ~id:42
    ~sender:(nm "east" "vax1" "alice")
    ~recipient:(nm "west" "sun3" "bob")
    ~subject:"lunch?" ~body:"how about tuesday\n-- alice"
    ~parts:[ Mail.Content.Voice { seconds = 2.5 }; Mail.Content.Facsimile { pages = 1 } ]
    ~submitted_at:17.25 ()

let test_encode_shape () =
  let wire = Mail.Rfc_text.encode (sample ()) in
  let has sub =
    let n = String.length sub and m = String.length wire in
    let rec scan i = i + n <= m && (String.sub wire i n = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "from header" true (has "From: east.vax1.alice\n");
  Alcotest.(check bool) "to header" true (has "To: west.sun3.bob\n");
  Alcotest.(check bool) "subject" true (has "Subject: lunch?\n");
  Alcotest.(check bool) "part header" true (has "X-Part: voice ");
  Alcotest.(check bool) "body after blank line" true (has "\n\nhow about tuesday")

let test_roundtrip_sample () =
  let m = sample () in
  match Mail.Rfc_text.roundtrip m with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      Alcotest.(check int) "id" m.Mail.Message.id m'.Mail.Message.id;
      Alcotest.(check bool) "sender" true
        (Naming.Name.equal m.Mail.Message.sender m'.Mail.Message.sender);
      Alcotest.(check bool) "recipient" true
        (Naming.Name.equal m.Mail.Message.recipient m'.Mail.Message.recipient);
      Alcotest.(check string) "subject" m.Mail.Message.subject m'.Mail.Message.subject;
      Alcotest.(check string) "body" m.Mail.Message.body m'.Mail.Message.body;
      Alcotest.(check (float 1e-12)) "date" m.Mail.Message.submitted_at
        m'.Mail.Message.submitted_at;
      Alcotest.(check bool) "parts" true (m.Mail.Message.parts = m'.Mail.Message.parts)

let test_newline_subject_rejected () =
  let m =
    Mail.Message.create ~id:1 ~sender:(nm "a" "b" "c") ~recipient:(nm "d" "e" "f")
      ~subject:"two\nlines" ~submitted_at:0. ()
  in
  try
    ignore (Mail.Rfc_text.encode m);
    Alcotest.fail "newline subject accepted"
  with Invalid_argument _ -> ()

let test_decode_errors () =
  let cases =
    [
      ("", "empty");
      ("no headers here", "no blank line");
      ("From: east.vax1.alice\n\nbody", "missing required headers");
      ("Message-Id: x\nFrom: east.vax1.alice\nTo: west.sun3.bob\nDate: 1\n\nb",
        "bad id");
      ("Message-Id: 1\nFrom: not-a-name\nTo: west.sun3.bob\nDate: 1\n\nb", "bad from");
      ("Message-Id: 1\nFrom: a.b.c\nTo: a.b.d\nDate: soon\n\nb", "bad date");
      ("Message-Id: 1\nFrom: a.b.c\nTo: a.b.d\nDate: 1\nX-Part: warp 9\n\nb",
        "unknown part");
      ("garbage line\nMessage-Id: 1\n\nb", "malformed header");
    ]
  in
  List.iter
    (fun (input, label) ->
      match Mail.Rfc_text.decode input with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    cases

let test_crlf_tolerated () =
  let wire =
    "Message-Id: 5\r\nFrom: a.b.c\r\nTo: a.b.d\r\nDate: 2\r\nSubject: crlf\r\n\r\nbody"
  in
  match Mail.Rfc_text.decode wire with
  | Ok d ->
      Alcotest.(check string) "subject" "crlf" d.Mail.Rfc_text.d_subject;
      Alcotest.(check string) "body" "body" d.Mail.Rfc_text.d_body
  | Error e -> Alcotest.fail e

let test_body_with_blank_lines_preserved () =
  let m =
    Mail.Message.create ~id:9 ~sender:(nm "a" "b" "c") ~recipient:(nm "d" "e" "f")
      ~body:"para one\n\npara two\n\npara three" ~submitted_at:0. ()
  in
  match Mail.Rfc_text.roundtrip m with
  | Ok m' -> Alcotest.(check string) "body intact" m.Mail.Message.body m'.Mail.Message.body
  | Error e -> Alcotest.fail e

let token_gen =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 6) (char_range 'a' 'z')))

let part_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Mail.Content.Text s) string_printable;
        map (fun s -> Mail.Content.Voice { seconds = float_of_int s }) (int_range 0 60);
        map2
          (fun w h -> Mail.Content.Image { width = w; height = h })
          (int_range 0 2000) (int_range 0 2000);
        map (fun p -> Mail.Content.Facsimile { pages = p }) (int_range 0 30);
      ])

let message_gen =
  QCheck.Gen.(
    map
      (fun ((id, r1, h1, u1), (r2, h2, u2), (subject, body, parts, date)) ->
        Mail.Message.create ~id
          ~sender:(nm r1 h1 u1)
          ~recipient:(nm r2 h2 u2)
          ~subject:
            (String.concat "" (List.map (String.make 1)
               (List.filter (fun c -> c <> '\n') (List.init (String.length subject) (String.get subject)))))
          ~body ~parts
          ~submitted_at:(Float.abs date)
          ())
      (triple
         (quad small_nat token_gen token_gen token_gen)
         (triple token_gen token_gen token_gen)
         (quad string_printable string_printable (list_size (int_range 0 4) part_gen)
            float)))

let prop_roundtrip =
  QCheck.Test.make ~name:"wire codec round-trips arbitrary messages" ~count:300
    (QCheck.make message_gen)
    (fun m ->
      match Mail.Rfc_text.roundtrip m with
      | Error _ -> false
      | Ok m' ->
          m.Mail.Message.id = m'.Mail.Message.id
          && Naming.Name.equal m.Mail.Message.sender m'.Mail.Message.sender
          && Naming.Name.equal m.Mail.Message.recipient m'.Mail.Message.recipient
          && String.equal m.Mail.Message.subject m'.Mail.Message.subject
          && String.equal m.Mail.Message.body m'.Mail.Message.body
          && m.Mail.Message.submitted_at = m'.Mail.Message.submitted_at
          && m.Mail.Message.parts = m'.Mail.Message.parts)

let suite =
  [
    ( "rfc_text",
      [
        Alcotest.test_case "encode shape" `Quick test_encode_shape;
        Alcotest.test_case "roundtrip sample" `Quick test_roundtrip_sample;
        Alcotest.test_case "newline subject rejected" `Quick
          test_newline_subject_rejected;
        Alcotest.test_case "decode errors" `Quick test_decode_errors;
        Alcotest.test_case "CRLF tolerated" `Quick test_crlf_tolerated;
        Alcotest.test_case "body blank lines preserved" `Quick
          test_body_with_blank_lines_preserved;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
  ]
