test/main.mli:
