test/test_content.ml: Alcotest Dsim List Mail Naming Netsim String
