test/test_name.ml: Alcotest List Naming QCheck QCheck_alcotest String
