test/test_engine.ml: Alcotest Dsim Float Gen List QCheck QCheck_alcotest
