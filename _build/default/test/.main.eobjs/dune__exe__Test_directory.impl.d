test/test_directory.ml: Alcotest Array Attribute Directory Dsim List Name Naming Printf QCheck QCheck_alcotest
