test/test_attribute.ml: Alcotest Format Naming QCheck QCheck_alcotest String
