test/test_backbone.ml: Alcotest Dsim Float List Mst Netsim Printf QCheck QCheck_alcotest String
