test/test_rng.ml: Alcotest Array Dsim Float Fun QCheck QCheck_alcotest
