test/test_misc_coverage.ml: Alcotest Dsim Float List Loadbalance Mail Netsim Queueing
