test/test_cache.ml: Alcotest Dsim Hashtbl List Mail Naming Netsim QCheck QCheck_alcotest
