test/test_session.ml: Alcotest Float List Mail Naming Netsim
