test/test_rfc_text.ml: Alcotest Float List Mail Naming QCheck QCheck_alcotest String
