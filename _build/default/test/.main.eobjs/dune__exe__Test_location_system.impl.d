test/test_location_system.ml: Alcotest Dsim Float List Mail Naming Netsim String
