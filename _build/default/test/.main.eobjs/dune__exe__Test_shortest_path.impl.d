test/test_shortest_path.ml: Alcotest Array Dsim Float List Netsim Printf QCheck QCheck_alcotest
