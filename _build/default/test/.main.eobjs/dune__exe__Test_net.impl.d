test/test_net.ml: Alcotest Dsim List Netsim
