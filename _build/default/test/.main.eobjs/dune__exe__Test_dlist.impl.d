test/test_dlist.ml: Alcotest List Mail Naming Netsim
