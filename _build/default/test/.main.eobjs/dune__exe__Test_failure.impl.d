test/test_failure.ml: Alcotest Dsim Gen List Netsim QCheck QCheck_alcotest
