test/test_fuzzy.ml: Alcotest List Naming Printf QCheck QCheck_alcotest String
