test/test_heap.ml: Alcotest Dsim Float List Printf QCheck QCheck_alcotest
