test/test_resolver.ml: Alcotest List Naming
