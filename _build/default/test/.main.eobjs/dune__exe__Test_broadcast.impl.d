test/test_broadcast.ml: Alcotest Dsim Mst Netsim QCheck QCheck_alcotest
