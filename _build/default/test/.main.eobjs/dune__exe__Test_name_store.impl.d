test/test_name_store.ml: Alcotest Dsim Fun List Mail Naming Netsim Printf QCheck QCheck_alcotest
