test/test_mst.ml: Alcotest Array Dsim Fun List Mst Netsim QCheck QCheck_alcotest
