test/test_stats.ml: Alcotest Array Dsim Float Gen List QCheck QCheck_alcotest
