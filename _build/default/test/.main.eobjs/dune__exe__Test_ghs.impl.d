test/test_ghs.ml: Alcotest Dsim List Mst Netsim QCheck QCheck_alcotest
