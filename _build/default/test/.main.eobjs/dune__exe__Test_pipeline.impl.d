test/test_pipeline.ml: Alcotest Dsim Fun Hashtbl Mail Naming Netsim
