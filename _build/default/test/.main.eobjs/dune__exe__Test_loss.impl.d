test/test_loss.ml: Alcotest Array Dsim List Mail Netsim QCheck QCheck_alcotest
