test/test_graph.ml: Alcotest Dsim Format List Netsim Option QCheck QCheck_alcotest String
