test/test_mailstore.ml: Alcotest Format List Mail Naming String
