test/test_scenario.ml: Alcotest Dsim Float List Mail Netsim
