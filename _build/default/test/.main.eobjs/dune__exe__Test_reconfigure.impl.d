test/test_reconfigure.ml: Alcotest Array Dsim Loadbalance Netsim QCheck QCheck_alcotest
