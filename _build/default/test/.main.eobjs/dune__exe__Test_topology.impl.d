test/test_topology.ml: Alcotest Dsim Float List Mst Netsim Printf QCheck QCheck_alcotest
