test/test_attribute_system.ml: Alcotest Dsim List Mail Mst Naming Netsim Printf
