test/test_user_agent.ml: Alcotest Array List Mail Naming
