test/test_loadbalance.ml: Alcotest Array Dsim Float Format List Loadbalance Netsim QCheck QCheck_alcotest String
