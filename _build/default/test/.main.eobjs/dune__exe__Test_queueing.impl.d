test/test_queueing.ml: Alcotest Dsim Float List QCheck QCheck_alcotest Queue Queueing
