test/test_service_queue.ml: Alcotest Array Dsim List Mail Netsim Option
