test/test_replicas.ml: Alcotest Array Dsim List Loadbalance Netsim QCheck QCheck_alcotest
