test/test_channel.ml: Alcotest Array Float List Loadbalance Netsim
