test/test_syntax_system.ml: Alcotest Dsim Format List Mail Naming Netsim Option Printf String
