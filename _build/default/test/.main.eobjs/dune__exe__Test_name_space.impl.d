test/test_name_space.ml: Alcotest Array List Naming Printf QCheck QCheck_alcotest String
