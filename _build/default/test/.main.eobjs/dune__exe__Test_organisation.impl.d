test/test_organisation.ml: Alcotest Format Naming QCheck QCheck_alcotest String
