test/test_billing.ml: Alcotest Dsim List Mail Naming Netsim String
