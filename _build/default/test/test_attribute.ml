(* Tests for attributes, visibility and predicates. *)

open Naming.Attribute

let profile =
  [
    text "name" "Alice Smith";
    text "org" "acme";
    keywords "specialty" [ "Networking"; "mail" ];
    number "experience" 7.;
    number ~visibility:(Org "acme") "salary" 100.;
    text ~visibility:Private "ssn" "123456789";
  ]

let check_match ?(viewer = anyone) pred expected label =
  Alcotest.(check bool) label expected (matches ~viewer ~attrs:profile pred)

let test_eq () =
  check_match (Eq ("org", Text "acme")) true "eq text";
  check_match (Eq ("org", Text "globex")) false "eq wrong value";
  check_match (Eq ("experience", Number 7.)) true "eq number";
  check_match (Eq ("org", Number 7.)) false "type mismatch";
  check_match (Eq ("nope", Text "x")) false "missing key"

let test_has_key () =
  check_match (Has_key "name") true "present";
  check_match (Has_key "phone") false "absent"

let test_text_predicates () =
  check_match (Text_prefix ("name", "ali")) true "case-insensitive prefix";
  check_match (Text_prefix ("name", "smith")) false "not a prefix";
  check_match (Text_contains ("name", "SMITH")) true "contains case-insensitive";
  check_match (Text_contains ("name", "bob")) false "not contained";
  check_match (Text_prefix ("experience", "7")) false "prefix on number is false"

let test_keywords () =
  check_match (Has_keyword ("specialty", "MAIL")) true "keyword case-insensitive";
  check_match (Has_keyword ("specialty", "databases")) false "missing keyword";
  check_match (Has_keyword ("name", "Alice")) false "keyword on text is false"

let test_between () =
  check_match (Between ("experience", 5., 10.)) true "inside";
  check_match (Between ("experience", 7., 7.)) true "inclusive bounds";
  check_match (Between ("experience", 8., 10.)) false "outside"

let test_boolean_combinators () =
  check_match (And [ Eq ("org", Text "acme"); Between ("experience", 0., 10.) ]) true "and";
  check_match (And [ Eq ("org", Text "acme"); Has_key "phone" ]) false "and short";
  check_match (Or [ Has_key "phone"; Eq ("org", Text "acme") ]) true "or";
  check_match (Not (Has_key "phone")) true "not";
  check_match (And []) true "empty and is true";
  check_match (Or []) false "empty or is false"

let test_visibility () =
  (* salary is org-restricted; ssn is private *)
  check_match (Has_key "salary") false "salary hidden from anyone";
  check_match ~viewer:(member_of "acme") (Has_key "salary") true "salary for acme";
  check_match ~viewer:(member_of "globex") (Has_key "salary") false "other org";
  check_match (Has_key "ssn") false "ssn always hidden";
  check_match
    ~viewer:{ org = None; is_self = true }
    (Has_key "ssn") true "self sees private"

let test_visible_to () =
  let a = text ~visibility:(Org "x") "k" "v" in
  Alcotest.(check bool) "org member" true (visible_to (member_of "x") a);
  Alcotest.(check bool) "outsider" false (visible_to anyone a);
  Alcotest.(check bool) "self" true (visible_to { org = None; is_self = true } a)

let test_value_equal () =
  Alcotest.(check bool) "texts" true (value_equal (Text "a") (Text "a"));
  Alcotest.(check bool) "numbers" true (value_equal (Number 2.) (Number 2.));
  Alcotest.(check bool) "keywords order-sensitive" false
    (value_equal (Keywords [ "a"; "b" ]) (Keywords [ "b"; "a" ]));
  Alcotest.(check bool) "cross-type" false (value_equal (Text "2") (Number 2.))

let test_empty_key_rejected () =
  try
    ignore (attr "" (Text "x"));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_pp_smoke () =
  let s = Format.asprintf "%a" pp_pred (And [ Eq ("a", Text "b"); Not (Has_key "c") ]) in
  Alcotest.(check bool) "renders" true (String.length s > 5)

(* Property: Not inverts matching, for predicates that do not depend on
   visibility-filtered attributes. *)
let pred_gen =
  QCheck.Gen.(
    oneof
      [
        return (Eq ("org", Text "acme"));
        return (Has_key "name");
        return (Between ("experience", 0., 5.));
        return (Text_prefix ("name", "al"));
        return (Has_keyword ("specialty", "mail"));
      ])

let prop_not_inverts =
  QCheck.Test.make ~name:"Not p inverts p" ~count:100
    (QCheck.make ~print:(Format.asprintf "%a" pp_pred) pred_gen)
    (fun p ->
      matches ~viewer:anyone ~attrs:profile (Not p)
      = not (matches ~viewer:anyone ~attrs:profile p))

let prop_de_morgan =
  QCheck.Test.make ~name:"De Morgan: not (a or b) = not a and not b" ~count:100
    (QCheck.make
       ~print:(fun (a, b) -> Format.asprintf "%a / %a" pp_pred a pp_pred b)
       QCheck.Gen.(pair pred_gen pred_gen))
    (fun (a, b) ->
      matches ~viewer:anyone ~attrs:profile (Not (Or [ a; b ]))
      = matches ~viewer:anyone ~attrs:profile (And [ Not a; Not b ]))

let suite =
  [
    ( "attribute",
      [
        Alcotest.test_case "Eq" `Quick test_eq;
        Alcotest.test_case "Has_key" `Quick test_has_key;
        Alcotest.test_case "text predicates" `Quick test_text_predicates;
        Alcotest.test_case "keywords" `Quick test_keywords;
        Alcotest.test_case "Between" `Quick test_between;
        Alcotest.test_case "boolean combinators" `Quick test_boolean_combinators;
        Alcotest.test_case "visibility" `Quick test_visibility;
        Alcotest.test_case "visible_to" `Quick test_visible_to;
        Alcotest.test_case "value_equal" `Quick test_value_equal;
        Alcotest.test_case "empty key rejected" `Quick test_empty_key_rejected;
        Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        QCheck_alcotest.to_alcotest prop_not_inverts;
        QCheck_alcotest.to_alcotest prop_de_morgan;
      ] );
  ]
