(* Tests for the server service-queue model (the measured counterpart
   of the §3.1.1 cost term Q(ρ) + z). *)

let single_server_site () =
  let g = Netsim.Graph.create () in
  let h1 = Netsim.Graph.add_node ~label:"H1" ~kind:Netsim.Graph.Host ~region:"r0" g in
  let h2 = Netsim.Graph.add_node ~label:"H2" ~kind:Netsim.Graph.Host ~region:"r0" g in
  let s1 = Netsim.Graph.add_node ~label:"S1" ~kind:Netsim.Graph.Server ~region:"r0" g in
  Netsim.Graph.add_edge g h1 s1 1.;
  Netsim.Graph.add_edge g h2 s1 1.;
  { Netsim.Topology.graph = g; hosts = [ (h1, 10); (h2, 10) ]; servers = [ s1 ] }

let test_processing_adds_latency () =
  let fast = Mail.Syntax_system.create (single_server_site ()) in
  let config =
    { Mail.Syntax_system.default_config with service_rate = Some 0.2 (* mean 5 *) }
  in
  let slow = Mail.Syntax_system.create ~config (single_server_site ()) in
  let latency sys =
    let users = Mail.Syntax_system.users sys in
    let m =
      Mail.Syntax_system.submit sys ~sender:(List.nth users 0)
        ~recipient:(List.nth users 7) ()
    in
    Mail.Syntax_system.quiesce sys;
    Option.get (Mail.Message.delivery_latency m)
  in
  let lf = latency fast and ls = latency slow in
  Alcotest.(check bool) "processing adds delay" true (ls > lf);
  Alcotest.(check (float 1e-9)) "fast system has no queue samples" 0.
    (float_of_int (Dsim.Stats.Summary.count (Mail.Syntax_system.queue_wait_stats fast)))

let test_queue_stats_populated () =
  let config = { Mail.Syntax_system.default_config with service_rate = Some 1.0 } in
  let sys = Mail.Syntax_system.create ~config (single_server_site ()) in
  let users = Array.of_list (Mail.Syntax_system.users sys) in
  for i = 0 to 19 do
    ignore
      (Mail.Syntax_system.submit_at sys
         ~at:(float_of_int i *. 0.5)
         ~sender:users.(i mod 5)
         ~recipient:users.(5 + (i mod 5))
         ())
  done;
  Mail.Syntax_system.quiesce sys;
  let waits = Mail.Syntax_system.queue_wait_stats sys in
  Alcotest.(check bool) "jobs went through the queue" true
    (Dsim.Stats.Summary.count waits >= 20);
  (* arrivals at 2x the service rate: waiting must actually occur *)
  Alcotest.(check bool) "waiting observed" true (Dsim.Stats.Summary.max waits > 0.);
  let server = List.hd (Mail.Syntax_system.server_nodes sys) in
  let util = Mail.Syntax_system.server_utilisation sys server in
  Alcotest.(check bool) "utilisation in (0,1]" true (util > 0. && util <= 1.)

let test_fifo_order_preserved () =
  (* Two messages submitted back-to-back must deposit in order even
     through a slow queue. *)
  let config = { Mail.Syntax_system.default_config with service_rate = Some 0.5 } in
  let sys = Mail.Syntax_system.create ~config (single_server_site ()) in
  let users = Mail.Syntax_system.users sys in
  let a = List.nth users 0 and b = List.nth users 7 in
  let m1 = Mail.Syntax_system.submit sys ~sender:a ~recipient:b ~subject:"1" () in
  let m2 = Mail.Syntax_system.submit sys ~sender:a ~recipient:b ~subject:"2" () in
  Mail.Syntax_system.quiesce sys;
  match (m1.Mail.Message.deposited_at, m2.Mail.Message.deposited_at) with
  | Some t1, Some t2 -> Alcotest.(check bool) "order" true (t1 < t2)
  | _ -> Alcotest.fail "not deposited"

let test_deterministic () =
  let run () =
    let config = { Mail.Syntax_system.default_config with service_rate = Some 1.0 } in
    let sys = Mail.Syntax_system.create ~config (single_server_site ()) in
    let users = Array.of_list (Mail.Syntax_system.users sys) in
    for i = 0 to 8 do
      ignore
        (Mail.Syntax_system.submit_at sys ~at:(float_of_int i)
           ~sender:users.(i) ~recipient:users.(9 - i) ())
    done;
    Mail.Syntax_system.quiesce sys;
    Dsim.Stats.Summary.mean (Mail.Syntax_system.queue_wait_stats sys)
  in
  Alcotest.(check (float 1e-12)) "same waits" (run ()) (run ())

let suite =
  [
    ( "service_queue",
      [
        Alcotest.test_case "processing adds latency" `Quick test_processing_adds_latency;
        Alcotest.test_case "queue stats populated" `Quick test_queue_stats_populated;
        Alcotest.test_case "FIFO order preserved" `Quick test_fifo_order_preserved;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
      ] );
  ]
