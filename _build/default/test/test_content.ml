(* Tests for typed message content (§5) and the bandwidth-aware
   transport that carries it. *)

let test_part_sizes () =
  Alcotest.(check int) "text" 5 (Mail.Content.bytes_of_part (Mail.Content.Text "hello"));
  Alcotest.(check int) "voice 2s" 16000
    (Mail.Content.bytes_of_part (Mail.Content.Voice { seconds = 2. }));
  Alcotest.(check int) "image 640x480" ((640 * 480 / 8) + 1)
    (Mail.Content.bytes_of_part (Mail.Content.Image { width = 640; height = 480 }));
  Alcotest.(check int) "fax 3 pages" 144_000
    (Mail.Content.bytes_of_part (Mail.Content.Facsimile { pages = 3 }));
  Alcotest.(check int) "sum" (5 + 16000)
    (Mail.Content.bytes_of [ Mail.Content.Text "hello"; Mail.Content.Voice { seconds = 2. } ])

let test_negative_rejected () =
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () ->
      ignore (Mail.Content.bytes_of_part (Mail.Content.Voice { seconds = -1. })));
  expect_invalid (fun () ->
      ignore (Mail.Content.bytes_of_part (Mail.Content.Facsimile { pages = -1 })))

let test_describe () =
  Alcotest.(check bool) "voice described" true
    (String.length (Mail.Content.describe (Mail.Content.Voice { seconds = 3. })) > 5)

let nm u = Naming.Name.make ~region:"r" ~host:"h" ~user:u

let test_message_size () =
  let m =
    Mail.Message.create ~id:1 ~sender:(nm "a") ~recipient:(nm "b") ~subject:"s"
      ~body:"bb"
      ~parts:[ Mail.Content.Voice { seconds = 1. } ]
      ~submitted_at:0. ()
  in
  Alcotest.(check int) "size" (64 + 1 + 2 + 8000) (Mail.Message.size_bytes m)

(* bandwidth-aware transport *)

type msg = Blob

let test_serialisation_delay () =
  let g = Netsim.Topology.line ~n:3 ~weight:1. in
  let engine = Dsim.Engine.create () in
  let net : msg Netsim.Net.t = Netsim.Net.create ~engine ~bandwidth:1000. g in
  let arrival = ref nan in
  Netsim.Net.set_handler net 2 (fun ~time ~src:_ Blob -> arrival := time);
  (* 2 hops of weight 1 + 2 * (4000 / 1000) serialisation = 10 *)
  ignore (Netsim.Net.send ~bytes:4000 net ~src:0 ~dst:2 Blob);
  Dsim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "latency includes serialisation" 10. !arrival

let test_zero_bytes_free () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  let engine = Dsim.Engine.create () in
  let net : msg Netsim.Net.t = Netsim.Net.create ~engine ~bandwidth:10. g in
  let arrival = ref nan in
  Netsim.Net.set_handler net 1 (fun ~time ~src:_ Blob -> arrival := time);
  ignore (Netsim.Net.send_neighbor net ~src:0 ~dst:1 Blob);
  Dsim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "no extra delay" 1. !arrival

let test_infinite_bandwidth_default () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  let engine = Dsim.Engine.create () in
  let net : msg Netsim.Net.t = Netsim.Net.create ~engine g in
  let arrival = ref nan in
  Netsim.Net.set_handler net 1 (fun ~time ~src:_ Blob -> arrival := time);
  ignore (Netsim.Net.send ~bytes:1_000_000 net ~src:0 ~dst:1 Blob);
  Dsim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "size free by default" 1. !arrival

let test_bad_bandwidth () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  let engine = Dsim.Engine.create () in
  try
    ignore (Netsim.Net.create ~engine ~bandwidth:0. g : msg Netsim.Net.t);
    Alcotest.fail "bandwidth 0 accepted"
  with Invalid_argument _ -> ()

(* end-to-end: a voice message is slower than a text message *)

let test_media_slows_delivery () =
  let config =
    { Mail.Syntax_system.default_config with bandwidth = Some 10_000. }
  in
  let sys = Mail.Syntax_system.create ~config (Netsim.Topology.paper_fig1 ()) in
  let users = Mail.Syntax_system.users sys in
  let a = List.nth users 0 and b = List.nth users 20 in
  let text = Mail.Syntax_system.submit sys ~sender:a ~recipient:b ~subject:"hi" () in
  let voice =
    Mail.Syntax_system.submit sys ~sender:a ~recipient:b ~subject:"vm"
      ~parts:[ Mail.Content.Voice { seconds = 30. } ]
      ()
  in
  Mail.Syntax_system.quiesce sys;
  match (Mail.Message.delivery_latency text, Mail.Message.delivery_latency voice) with
  | Some lt, Some lv ->
      Alcotest.(check bool) "voice much slower" true (lv > lt *. 5.)
  | _ -> Alcotest.fail "delivery incomplete"

let suite =
  [
    ( "content",
      [
        Alcotest.test_case "part sizes" `Quick test_part_sizes;
        Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
        Alcotest.test_case "describe" `Quick test_describe;
        Alcotest.test_case "message size" `Quick test_message_size;
        Alcotest.test_case "serialisation delay" `Quick test_serialisation_delay;
        Alcotest.test_case "zero bytes free" `Quick test_zero_bytes_free;
        Alcotest.test_case "infinite bandwidth default" `Quick
          test_infinite_bandwidth_default;
        Alcotest.test_case "bad bandwidth rejected" `Quick test_bad_bandwidth;
        Alcotest.test_case "media slows its own delivery" `Quick
          test_media_slows_delivery;
      ] );
  ]
