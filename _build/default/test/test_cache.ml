(* Tests for the LRU resolution cache (§4.1), standalone and wired
   into the design-1 system. *)

let nm u = Naming.Name.make ~region:"r" ~host:"h" ~user:u

let test_basic_hit_miss () =
  let c = Naming.Cache.create ~capacity:4 () in
  Alcotest.(check bool) "miss" true (Naming.Cache.find c (nm "a") = None);
  Naming.Cache.add c (nm "a") 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Naming.Cache.find c (nm "a"));
  Alcotest.(check int) "hits" 1 (Naming.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Naming.Cache.misses c);
  Alcotest.(check (float 1e-9)) "rate" 0.5 (Naming.Cache.hit_rate c)

let test_update_in_place () =
  let c = Naming.Cache.create ~capacity:2 () in
  Naming.Cache.add c (nm "a") 1;
  Naming.Cache.add c (nm "a") 2;
  Alcotest.(check int) "size 1" 1 (Naming.Cache.size c);
  Alcotest.(check (option int)) "updated" (Some 2) (Naming.Cache.find c (nm "a"))

let test_lru_eviction () =
  let c = Naming.Cache.create ~capacity:2 () in
  Naming.Cache.add c (nm "a") 1;
  Naming.Cache.add c (nm "b") 2;
  (* touch a so b becomes least-recent *)
  ignore (Naming.Cache.find c (nm "a"));
  Naming.Cache.add c (nm "c") 3;
  Alcotest.(check (option int)) "a survives" (Some 1) (Naming.Cache.find c (nm "a"));
  Alcotest.(check bool) "b evicted" true (Naming.Cache.find c (nm "b") = None);
  Alcotest.(check (option int)) "c present" (Some 3) (Naming.Cache.find c (nm "c"));
  Alcotest.(check int) "at capacity" 2 (Naming.Cache.size c)

let test_invalidate_and_clear () =
  let c = Naming.Cache.create ~capacity:4 () in
  Naming.Cache.add c (nm "a") 1;
  Naming.Cache.invalidate c (nm "a");
  Alcotest.(check bool) "gone" true (Naming.Cache.find c (nm "a") = None);
  Naming.Cache.invalidate c (nm "zz");
  (* no-op *)
  Naming.Cache.add c (nm "b") 2;
  Naming.Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Naming.Cache.size c)

let test_capacity_validation () =
  try
    ignore (Naming.Cache.create ~capacity:0 ());
    Alcotest.fail "capacity 0 accepted"
  with Invalid_argument _ -> ()

let prop_agrees_with_reference =
  QCheck.Test.make ~name:"cache agrees with a reference map on present keys" ~count:100
    QCheck.(list (pair (int_range 0 15) small_int))
    (fun ops ->
      let c = Naming.Cache.create ~capacity:8 () in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let key = nm (string_of_int k) in
          Naming.Cache.add c key v;
          Hashtbl.replace reference key v)
        ops;
      (* anything the cache still holds must match the last write *)
      List.for_all
        (fun (k, _) ->
          let key = nm (string_of_int k) in
          match Naming.Cache.find c key with
          | Some v -> Hashtbl.find reference key = v
          | None -> true)
        ops)

(* --- cache wired into design 1 ------------------------------------ *)

let multi_region_site seed =
  let rng = Dsim.Rng.create seed in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

let test_system_cache_skips_forwarding () =
  let config =
    { Mail.Syntax_system.default_config with cache_capacity = Some 64 }
  in
  let sys = Mail.Syntax_system.create ~config (multi_region_site 5) in
  let users = Mail.Syntax_system.users sys in
  let sender = List.find (fun u -> Naming.Name.region u = "r0") users in
  (* Pick a recipient whose authority head is NOT the server the
     forwarding step would choose, so the cached direct deposit
     strictly saves a hop. *)
  let first_r2_server =
    List.find
      (fun v ->
        Netsim.Graph.kind (Mail.Syntax_system.graph sys) v = Netsim.Graph.Server
        && Netsim.Graph.region (Mail.Syntax_system.graph sys) v = "r2")
      (Netsim.Graph.nodes (Mail.Syntax_system.graph sys))
  in
  let rcpt =
    List.find
      (fun u ->
        Naming.Name.region u = "r2"
        && List.hd (Mail.User_agent.authority (Mail.Syntax_system.agent sys u))
           <> first_r2_server)
      users
  in
  let m1 = Mail.Syntax_system.submit sys ~sender ~recipient:rcpt () in
  Mail.Syntax_system.quiesce sys;
  Alcotest.(check int) "first crosses a forward hop" 2 m1.Mail.Message.forward_hops;
  let m2 = Mail.Syntax_system.submit sys ~sender ~recipient:rcpt () in
  Mail.Syntax_system.quiesce sys;
  Alcotest.(check int) "second deposits directly" 1 m2.Mail.Message.forward_hops;
  let hits, misses = Mail.Syntax_system.resolution_cache_stats sys in
  Alcotest.(check bool) "one hit one miss" true (hits >= 1 && misses >= 1);
  Alcotest.(check int) "pipeline counted the hit" 1
    (Dsim.Stats.Counter.get (Mail.Syntax_system.counters sys) "resolution_cache_hits")

let test_system_cache_invalidated_on_migration () =
  let config =
    { Mail.Syntax_system.default_config with cache_capacity = Some 64 }
  in
  let sys = Mail.Syntax_system.create ~config (multi_region_site 6) in
  let users = Mail.Syntax_system.users sys in
  let sender = List.find (fun u -> Naming.Name.region u = "r0") users in
  let rcpt = List.find (fun u -> Naming.Name.region u = "r1") users in
  ignore (Mail.Syntax_system.submit sys ~sender ~recipient:rcpt ());
  Mail.Syntax_system.quiesce sys;
  (* migrate the recipient within its region; the cached entry for the
     old name must not serve the stale authority list *)
  let g = Mail.Syntax_system.graph sys in
  let new_host =
    List.find
      (fun v ->
        Netsim.Graph.kind g v = Netsim.Graph.Host
        && Netsim.Graph.region g v = "r1")
      (List.rev (Netsim.Graph.nodes g))
  in
  let new_name = Mail.Syntax_system.migrate_user sys rcpt ~new_host in
  let m = Mail.Syntax_system.submit sys ~sender ~recipient:rcpt () in
  Mail.Syntax_system.quiesce sys;
  Alcotest.(check bool) "still deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "to the migrated identity" true
    (Naming.Name.equal m.Mail.Message.recipient new_name);
  ignore (Mail.Syntax_system.check_mail sys new_name);
  Alcotest.(check bool) "retrieved" true (Mail.Message.is_retrieved m)

let test_disabled_by_default () =
  let sys = Mail.Syntax_system.create (multi_region_site 7) in
  let users = Mail.Syntax_system.users sys in
  let sender = List.find (fun u -> Naming.Name.region u = "r0") users in
  let rcpt = List.find (fun u -> Naming.Name.region u = "r1") users in
  ignore (Mail.Syntax_system.submit sys ~sender ~recipient:rcpt ());
  ignore (Mail.Syntax_system.submit sys ~sender ~recipient:rcpt ());
  Mail.Syntax_system.quiesce sys;
  Alcotest.(check (pair int int)) "no cache activity" (0, 0)
    (Mail.Syntax_system.resolution_cache_stats sys)

let suite =
  [
    ( "cache",
      [
        Alcotest.test_case "hit/miss accounting" `Quick test_basic_hit_miss;
        Alcotest.test_case "update in place" `Quick test_update_in_place;
        Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
        Alcotest.test_case "invalidate and clear" `Quick test_invalidate_and_clear;
        Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
        QCheck_alcotest.to_alcotest prop_agrees_with_reference;
        Alcotest.test_case "system: cache skips forwarding" `Quick
          test_system_cache_skips_forwarding;
        Alcotest.test_case "system: invalidated on migration" `Quick
          test_system_cache_invalidated_on_migration;
        Alcotest.test_case "system: disabled by default" `Quick test_disabled_by_default;
      ] );
  ]
