(* Tests for the distributed GHS MST algorithm. *)

let test_two_nodes () =
  let g = Netsim.Topology.line ~n:2 ~weight:3. in
  let r = Mst.Ghs.run g in
  Alcotest.(check bool) "halted" true r.Mst.Ghs.halted;
  Alcotest.(check (float 1e-9)) "weight" 3. r.Mst.Ghs.total_weight;
  Alcotest.(check int) "one edge" 1 (List.length r.Mst.Ghs.edges)

let test_single_node () =
  let g = Netsim.Graph.create () in
  ignore (Netsim.Graph.add_node g);
  let r = Mst.Ghs.run g in
  Alcotest.(check bool) "halted" true r.Mst.Ghs.halted;
  Alcotest.(check int) "no edges" 0 (List.length r.Mst.Ghs.edges)

let test_empty_rejected () =
  try
    ignore (Mst.Ghs.run (Netsim.Graph.create ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_disconnected_rejected () =
  let g = Netsim.Graph.create () in
  ignore (Netsim.Graph.add_node g);
  ignore (Netsim.Graph.add_node g);
  try
    ignore (Mst.Ghs.run g);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_ring_drops_heaviest () =
  let g = Netsim.Graph.create () in
  let nodes = List.init 4 (fun _ -> Netsim.Graph.add_node g) in
  (match nodes with
  | [ a; b; c; d ] ->
      Netsim.Graph.add_edge g a b 1.;
      Netsim.Graph.add_edge g b c 2.;
      Netsim.Graph.add_edge g c d 3.;
      Netsim.Graph.add_edge g d a 4.
  | _ -> assert false);
  let r = Mst.Ghs.run g in
  Alcotest.(check (float 1e-9)) "weight skips 4" 6. r.Mst.Ghs.total_weight

let test_equal_weights () =
  (* All weights equal: Edge_id tie-breaking must still give a valid,
     unique spanning tree matching Kruskal. *)
  let g = Netsim.Topology.grid ~rows:3 ~cols:3 ~weight:1. in
  let r = Mst.Ghs.run g in
  let k = Mst.Kruskal.run g in
  Alcotest.(check bool) "halted" true r.Mst.Ghs.halted;
  Alcotest.(check bool) "same tree" true (r.Mst.Ghs.edges = k.Mst.Kruskal.edges)

let prop_ghs_equals_kruskal =
  QCheck.Test.make ~name:"GHS produces exactly the Kruskal tree" ~count:30
    QCheck.(int_range 2 40)
    (fun n ->
      let rng = Dsim.Rng.create (n * 41) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:(2 * n) ~min_weight:1.
          ~max_weight:10.
      in
      let r = Mst.Ghs.run g in
      let k = Mst.Kruskal.run g in
      r.Mst.Ghs.halted && r.Mst.Ghs.edges = k.Mst.Kruskal.edges)

let prop_single_waker_same_tree =
  QCheck.Test.make ~name:"GHS with one spontaneous waker builds the same tree"
    ~count:20
    QCheck.(int_range 2 30)
    (fun n ->
      let make () =
        let rng = Dsim.Rng.create (n * 47) in
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:1.
          ~max_weight:10.
      in
      let all = Mst.Ghs.run ~wake:`All (make ()) in
      let one = Mst.Ghs.run ~wake:`One (make ()) in
      one.Mst.Ghs.halted && one.Mst.Ghs.edges = all.Mst.Ghs.edges)

let prop_message_complexity =
  QCheck.Test.make ~name:"GHS stays within 5 N log N + 2 E messages" ~count:20
    QCheck.(int_range 2 60)
    (fun n ->
      let rng = Dsim.Rng.create (n * 43) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:1.
          ~max_weight:10.
      in
      let r = Mst.Ghs.run g in
      r.Mst.Ghs.messages <= Mst.Ghs.message_bound g)

let test_message_bound_values () =
  let g = Netsim.Topology.ring ~n:8 ~weight:1. in
  (* 5*8*3 + 2*8 = 136 *)
  Alcotest.(check int) "bound" 136 (Mst.Ghs.message_bound g);
  let single = Netsim.Graph.create () in
  ignore (Netsim.Graph.add_node single);
  Alcotest.(check int) "single node bound" 0 (Mst.Ghs.message_bound single)

let test_deterministic () =
  let make () =
    let rng = Dsim.Rng.create 7 in
    Netsim.Topology.random_connected ~rng ~n:20 ~extra_edges:20 ~min_weight:1.
      ~max_weight:5.
  in
  let r1 = Mst.Ghs.run (make ()) in
  let r2 = Mst.Ghs.run (make ()) in
  Alcotest.(check bool) "same edges" true (r1.Mst.Ghs.edges = r2.Mst.Ghs.edges);
  Alcotest.(check int) "same messages" r1.Mst.Ghs.messages r2.Mst.Ghs.messages;
  Alcotest.(check (float 1e-9)) "same finish time" r1.Mst.Ghs.finish_time
    r2.Mst.Ghs.finish_time

let test_finish_time_positive () =
  let g = Netsim.Topology.ring ~n:6 ~weight:2. in
  let r = Mst.Ghs.run g in
  Alcotest.(check bool) "took virtual time" true (r.Mst.Ghs.finish_time > 0.)

let suite =
  [
    ( "ghs",
      [
        Alcotest.test_case "two nodes" `Quick test_two_nodes;
        Alcotest.test_case "single node" `Quick test_single_node;
        Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        Alcotest.test_case "disconnected rejected" `Quick test_disconnected_rejected;
        Alcotest.test_case "ring drops heaviest edge" `Quick test_ring_drops_heaviest;
        Alcotest.test_case "equal weights via tie-breaking" `Quick test_equal_weights;
        QCheck_alcotest.to_alcotest prop_ghs_equals_kruskal;
        QCheck_alcotest.to_alcotest prop_single_waker_same_tree;
        QCheck_alcotest.to_alcotest prop_message_complexity;
        Alcotest.test_case "message bound values" `Quick test_message_bound_values;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "finish time positive" `Quick test_finish_time_positive;
      ] );
  ]
