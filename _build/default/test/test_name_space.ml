(* Tests for the partitioned name space. *)

let n r h u = Naming.Name.make ~region:r ~host:h ~user:u

let test_register_and_membership () =
  let sp = Naming.Name_space.create Naming.Name_space.By_host in
  let a = n "east" "vax1" "alice" in
  Naming.Name_space.register sp a;
  Alcotest.(check bool) "mem" true (Naming.Name_space.mem sp a);
  Alcotest.(check int) "names" 1 (List.length (Naming.Name_space.names sp));
  (try
     Naming.Name_space.register sp a;
     Alcotest.fail "duplicate registration accepted"
   with Invalid_argument _ -> ());
  Naming.Name_space.unregister sp a;
  Alcotest.(check bool) "gone" false (Naming.Name_space.mem sp a);
  (* unregistering twice is fine *)
  Naming.Name_space.unregister sp a

let test_context_by_region () =
  let sp = Naming.Name_space.create Naming.Name_space.By_region in
  Alcotest.(check string) "context" "east"
    (Naming.Name_space.context_of sp (n "east" "h1" "u1"));
  Alcotest.(check string) "same for other host" "east"
    (Naming.Name_space.context_of sp (n "east" "h2" "u2"))

let test_context_by_host () =
  let sp = Naming.Name_space.create Naming.Name_space.By_host in
  Alcotest.(check string) "context" "east/h1"
    (Naming.Name_space.context_of sp (n "east" "h1" "u1"));
  Alcotest.(check bool) "hosts differ" true
    (Naming.Name_space.context_of sp (n "east" "h1" "u")
    <> Naming.Name_space.context_of sp (n "east" "h2" "u"))

let test_hash_host_independent () =
  (* Design 2's key property: the hash context ignores the host. *)
  let sp = Naming.Name_space.create (Naming.Name_space.By_hash 8) in
  let c1 = Naming.Name_space.context_of sp (n "east" "h1" "alice") in
  let c2 = Naming.Name_space.context_of sp (n "east" "h2" "alice") in
  Alcotest.(check string) "host does not matter" c1 c2;
  (* but region and user do *)
  let c3 = Naming.Name_space.context_of sp (n "west" "h1" "alice") in
  Alcotest.(check bool) "region matters" true
    (String.length c3 > 0 && not (String.equal (String.sub c1 0 4) (String.sub c3 0 4)))

let test_hash_group_range () =
  for groups = 1 to 16 do
    for i = 0 to 100 do
      let g =
        Naming.Name_space.hash_group ~groups (n "r" "h" (Printf.sprintf "u%d" i))
      in
      if g < 0 || g >= groups then Alcotest.failf "group %d out of range" g
    done
  done

let test_assignments () =
  let sp = Naming.Name_space.create Naming.Name_space.By_host in
  let a = n "east" "h1" "u1" in
  Naming.Name_space.register sp a;
  Alcotest.(check (list int)) "unassigned" [] (Naming.Name_space.authority_servers sp a);
  Naming.Name_space.assign_context sp (Naming.Name_space.context_of sp a) [ 3; 7 ];
  Alcotest.(check (list int)) "assigned" [ 3; 7 ]
    (Naming.Name_space.authority_servers sp a)

let test_contexts_listing () =
  let sp = Naming.Name_space.create Naming.Name_space.By_host in
  Naming.Name_space.register sp (n "east" "h1" "u1");
  Naming.Name_space.register sp (n "east" "h1" "u2");
  Naming.Name_space.register sp (n "east" "h2" "u1");
  Alcotest.(check (list string)) "contexts" [ "east/h1"; "east/h2" ]
    (Naming.Name_space.contexts sp);
  Alcotest.(check int) "names in context" 2
    (List.length (Naming.Name_space.names_in_context sp "east/h1"))

let test_rebalance_hash () =
  let sp = Naming.Name_space.create (Naming.Name_space.By_hash 4) in
  for i = 0 to 99 do
    Naming.Name_space.register sp (n "east" "h" (Printf.sprintf "user%d" i))
  done;
  let moved = Naming.Name_space.rebalance_hash sp ~k:5 in
  Alcotest.(check bool) "some move" true (moved > 0);
  Alcotest.(check bool) "not all move" true (moved < 100);
  (match Naming.Name_space.scheme sp with
  | Naming.Name_space.By_hash 5 -> ()
  | _ -> Alcotest.fail "scheme not updated");
  (* identity rebalance moves nothing *)
  Alcotest.(check int) "identity" 0 (Naming.Name_space.rebalance_hash sp ~k:5)

let test_rebalance_wrong_scheme () =
  let sp = Naming.Name_space.create Naming.Name_space.By_host in
  try
    ignore (Naming.Name_space.rebalance_hash sp ~k:4);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_hash_deterministic =
  QCheck.Test.make ~name:"hash_group is deterministic" ~count:200
    QCheck.(pair (int_range 1 32) small_string)
    (fun (groups, s) ->
      let user = if Naming.Name.valid_token s then s else "fallback" in
      let nm = n "r" "h" user in
      Naming.Name_space.hash_group ~groups nm = Naming.Name_space.hash_group ~groups nm)

let test_hash_spread () =
  (* 400 users over 8 groups: no group should be empty or hold more
     than half of all users. *)
  let counts = Array.make 8 0 in
  for i = 0 to 399 do
    let g = Naming.Name_space.hash_group ~groups:8 (n "r" "h" (Printf.sprintf "u%d" i)) in
    counts.(g) <- counts.(g) + 1
  done;
  Array.iteri
    (fun i c ->
      if c = 0 then Alcotest.failf "group %d empty" i;
      if c > 200 then Alcotest.failf "group %d overloaded: %d" i c)
    counts

let suite =
  [
    ( "name_space",
      [
        Alcotest.test_case "register/membership" `Quick test_register_and_membership;
        Alcotest.test_case "By_region contexts" `Quick test_context_by_region;
        Alcotest.test_case "By_host contexts" `Quick test_context_by_host;
        Alcotest.test_case "hash context ignores host" `Quick test_hash_host_independent;
        Alcotest.test_case "hash group in range" `Quick test_hash_group_range;
        Alcotest.test_case "authority assignments" `Quick test_assignments;
        Alcotest.test_case "contexts listing" `Quick test_contexts_listing;
        Alcotest.test_case "rebalance hash counts moves" `Quick test_rebalance_hash;
        Alcotest.test_case "rebalance wrong scheme" `Quick test_rebalance_wrong_scheme;
        QCheck_alcotest.to_alcotest prop_hash_deterministic;
        Alcotest.test_case "hash spreads load" `Quick test_hash_spread;
      ] );
  ]
