(* Tests for Dsim.Rng: determinism, ranges, distribution sanity. *)

let test_determinism () =
  let a = Dsim.Rng.create 42 and b = Dsim.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Dsim.Rng.bits64 a) (Dsim.Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Dsim.Rng.create 1 and b = Dsim.Rng.create 2 in
  Alcotest.(check bool) "diverge" false (Dsim.Rng.bits64 a = Dsim.Rng.bits64 b)

let test_copy_independent () =
  let a = Dsim.Rng.create 5 in
  let b = Dsim.Rng.copy a in
  let x = Dsim.Rng.bits64 a in
  let y = Dsim.Rng.bits64 b in
  Alcotest.(check int64) "copy resumes identically" x y

let test_split_independent () =
  let a = Dsim.Rng.create 5 in
  let b = Dsim.Rng.split a in
  Alcotest.(check bool) "split diverges" false (Dsim.Rng.bits64 a = Dsim.Rng.bits64 b)

let test_float_range () =
  let g = Dsim.Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Dsim.Rng.float g 10. in
    if x < 0. || x >= 10. then Alcotest.failf "float out of range: %f" x
  done

let test_float_bad_bound () =
  let g = Dsim.Rng.create 3 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.float: bound must be positive and finite") (fun () ->
      ignore (Dsim.Rng.float g 0.))

let test_int_range () =
  let g = Dsim.Rng.create 4 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let x = Dsim.Rng.int g 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of range: %d" x;
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_int_bad_bound () =
  let g = Dsim.Rng.create 4 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dsim.Rng.int g 0))

let test_bernoulli_extremes () =
  let g = Dsim.Rng.create 9 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0" false (Dsim.Rng.bernoulli g 0.);
    Alcotest.(check bool) "p=1" true (Dsim.Rng.bernoulli g 1.)
  done

let test_exponential_mean () =
  let g = Dsim.Rng.create 10 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Dsim.Rng.exponential g 2.0
  done;
  let mean = !sum /. float_of_int n in
  (* Exp(2) has mean 0.5; loose 5% tolerance. *)
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.025)

let test_normal_moments () =
  let g = Dsim.Rng.create 11 in
  let n = 20000 in
  let s = Dsim.Stats.Summary.create () in
  for _ = 1 to n do
    Dsim.Stats.Summary.add s (Dsim.Rng.normal g ~mean:3.0 ~stddev:2.0)
  done;
  Alcotest.(check bool) "mean" true (Float.abs (Dsim.Stats.Summary.mean s -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev" true
    (Float.abs (Dsim.Stats.Summary.stddev s -. 2.0) < 0.1)

let test_poisson_mean () =
  let g = Dsim.Rng.create 12 in
  let n = 10000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Dsim.Rng.poisson g 4.0
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.0) < 0.15)

let test_poisson_large_mean () =
  let g = Dsim.Rng.create 13 in
  let x = Dsim.Rng.poisson g 1000. in
  Alcotest.(check bool) "normal approximation plausible" true (x > 800 && x < 1200)

let test_zipf_range () =
  let g = Dsim.Rng.create 14 in
  for _ = 1 to 2000 do
    let x = Dsim.Rng.zipf g ~n:50 ~s:1.1 in
    if x < 1 || x > 50 then Alcotest.failf "zipf out of range: %d" x
  done

let test_zipf_skew () =
  let g = Dsim.Rng.create 15 in
  let counts = Array.make 51 0 in
  for _ = 1 to 10000 do
    let x = Dsim.Rng.zipf g ~n:50 ~s:1.2 in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "strong head" true (counts.(1) > 10000 / 10)

let test_zipf_n1 () =
  let g = Dsim.Rng.create 16 in
  Alcotest.(check int) "n=1 always 1" 1 (Dsim.Rng.zipf g ~n:1 ~s:1.0)

let test_choice_and_shuffle () =
  let g = Dsim.Rng.create 17 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    let x = Dsim.Rng.choice g arr in
    if not (Array.exists (( = ) x) arr) then Alcotest.failf "choice invalid: %d" x
  done;
  let arr2 = Array.init 20 Fun.id in
  Dsim.Rng.shuffle g arr2;
  let sorted = Array.copy arr2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 20 Fun.id) sorted

let test_pick_weighted () =
  let g = Dsim.Rng.create 18 in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if Dsim.Rng.pick_weighted g [ ("a", 9.); ("b", 1.) ] = "a" then incr heavy
  done;
  Alcotest.(check bool) "weights respected" true (!heavy > 800);
  Alcotest.check_raises "no weight"
    (Invalid_argument "Rng.pick_weighted: total weight not positive") (fun () ->
      ignore (Dsim.Rng.pick_weighted g [ ("a", 0.) ]))

let prop_uniform_in_interval =
  QCheck.Test.make ~name:"uniform stays inside its interval" ~count:500
    QCheck.(pair (float_range (-100.) 100.) (float_range 0.1 50.))
    (fun (lo, width) ->
      let g = Dsim.Rng.create 99 in
      let x = Dsim.Rng.uniform g lo (lo +. width) in
      x >= lo && x < lo +. width)

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_different_seeds;
        Alcotest.test_case "copy" `Quick test_copy_independent;
        Alcotest.test_case "split" `Quick test_split_independent;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "float bad bound" `Quick test_float_bad_bound;
        Alcotest.test_case "int range covers all residues" `Quick test_int_range;
        Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        Alcotest.test_case "normal moments" `Slow test_normal_moments;
        Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
        Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
        Alcotest.test_case "zipf range" `Quick test_zipf_range;
        Alcotest.test_case "zipf skew" `Slow test_zipf_skew;
        Alcotest.test_case "zipf n=1" `Quick test_zipf_n1;
        Alcotest.test_case "choice and shuffle" `Quick test_choice_and_shuffle;
        Alcotest.test_case "pick_weighted" `Quick test_pick_weighted;
        QCheck_alcotest.to_alcotest prop_uniform_in_interval;
      ] );
  ]
