(* Tests for random link loss and the retry machinery that absorbs it,
   plus transport conservation properties. *)

type msg = Ping

let test_loss_counted () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  let engine = Dsim.Engine.create () in
  let net : msg Netsim.Net.t =
    Netsim.Net.create ~engine ~loss_rate:0.5 ~loss_seed:7 g
  in
  let received = ref 0 in
  Netsim.Net.set_handler net 1 (fun ~time:_ ~src:_ Ping -> incr received);
  for _ = 1 to 200 do
    ignore (Netsim.Net.send net ~src:0 ~dst:1 Ping)
  done;
  Dsim.Engine.run engine;
  let lost = Netsim.Net.messages_lost net in
  Alcotest.(check bool) "roughly half lost" true (lost > 70 && lost < 130);
  Alcotest.(check int) "conservation" 200 (!received + lost)

let test_loss_rate_validation () =
  let g = Netsim.Topology.line ~n:2 ~weight:1. in
  let engine = Dsim.Engine.create () in
  try
    ignore (Netsim.Net.create ~engine ~loss_rate:1.0 g : msg Netsim.Net.t);
    Alcotest.fail "loss_rate 1 accepted"
  with Invalid_argument _ -> ()

let test_deterministic_loss () =
  let run () =
    let g = Netsim.Topology.line ~n:2 ~weight:1. in
    let engine = Dsim.Engine.create () in
    let net : msg Netsim.Net.t =
      Netsim.Net.create ~engine ~loss_rate:0.3 ~loss_seed:42 g
    in
    for _ = 1 to 100 do
      ignore (Netsim.Net.send net ~src:0 ~dst:1 Ping)
    done;
    Dsim.Engine.run engine;
    Netsim.Net.messages_lost net
  in
  Alcotest.(check int) "same losses" (run ()) (run ())

(* conservation over arbitrary traffic: sent = delivered + in-flight
   drops + random losses once the engine drains *)
let prop_conservation =
  QCheck.Test.make ~name:"transport conserves messages" ~count:50
    QCheck.(pair (int_range 2 20) (int_range 0 80))
    (fun (n, sends) ->
      let rng = Dsim.Rng.create (n + (sends * 131)) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:n ~min_weight:1.
          ~max_weight:3.
      in
      let engine = Dsim.Engine.create () in
      let net : msg Netsim.Net.t =
        Netsim.Net.create ~engine ~loss_rate:0.2 ~loss_seed:n g
      in
      let received = ref 0 in
      List.iter
        (fun v ->
          Netsim.Net.set_handler net v (fun ~time:_ ~src:_ Ping -> incr received))
        (Netsim.Graph.nodes g);
      let accepted = ref 0 in
      for _ = 1 to sends do
        let src = Dsim.Rng.int rng n and dst = Dsim.Rng.int rng n in
        if src <> dst && Netsim.Net.send net ~src ~dst Ping then incr accepted
      done;
      Dsim.Engine.run engine;
      (* no nodes fail here, so nothing is dropped at delivery *)
      !received + Netsim.Net.messages_lost net = !accepted
      && Netsim.Net.messages_dropped net = 0)

(* End-to-end: the mail system stays lossless under heavy random link
   loss, because deposits are acknowledged and retried. *)
let test_mail_survives_link_loss () =
  let config =
    {
      Mail.Syntax_system.default_config with
      loss_rate = 0.3;
      retry_timeout = 20.;
      resubmit_timeout = 150.;
    }
  in
  let sys = Mail.Syntax_system.create ~config (Netsim.Topology.paper_fig1 ()) in
  let users = Array.of_list (Mail.Syntax_system.users sys) in
  let messages = ref [] in
  for i = 0 to 49 do
    messages :=
      Mail.Syntax_system.submit_at sys
        ~at:(float_of_int i *. 10.)
        ~sender:users.(i mod 30)
        ~recipient:users.((i + 11) mod 30)
        ()
      :: !messages
  done;
  Mail.Syntax_system.quiesce sys;
  let lost = Netsim.Net.messages_lost (Mail.Syntax_system.net sys) in
  Alcotest.(check bool) "the network really lost traffic" true (lost > 10);
  List.iter
    (fun m -> Alcotest.(check bool) "deposited despite loss" true (Mail.Message.is_deposited m))
    !messages;
  (* and every message is retrievable *)
  Array.iter (fun u -> ignore (Mail.Syntax_system.check_mail sys u)) users;
  let r = Mail.Evaluation.of_syntax sys in
  Alcotest.(check int) "zero unretrieved" 0 r.Mail.Evaluation.unretrieved

(* End-to-end property: random small scenarios with server failures
   are always lossless. *)
let prop_scenario_lossless =
  QCheck.Test.make ~name:"random failure scenarios never lose mail" ~count:8
    QCheck.(pair (int_range 1 1000) (int_range 0 4))
    (fun (seed, rate_step) ->
      let spec =
        {
          Mail.Scenario.default_spec with
          seed;
          duration = 1500.;
          mail_count = 60;
          check_period = 120.;
          failure_rate = float_of_int rate_step *. 0.001;
        }
      in
      let o = Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()) spec in
      o.Mail.Scenario.report.Mail.Evaluation.undelivered = 0
      && o.Mail.Scenario.report.Mail.Evaluation.unretrieved = 0
      && o.Mail.Scenario.inbox_total = 60)

let suite =
  [
    ( "loss",
      [
        Alcotest.test_case "loss counted" `Quick test_loss_counted;
        Alcotest.test_case "loss rate validation" `Quick test_loss_rate_validation;
        Alcotest.test_case "deterministic loss" `Quick test_deterministic_loss;
        QCheck_alcotest.to_alcotest prop_conservation;
        Alcotest.test_case "mail survives 30% link loss" `Quick
          test_mail_survives_link_loss;
        QCheck_alcotest.to_alcotest ~long:true prop_scenario_lossless;
      ] );
  ]
