(* Tests for the discrete-event engine. *)

let test_runs_in_time_order () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Dsim.Engine.schedule_at e 3. (note "c"));
  ignore (Dsim.Engine.schedule_at e 1. (note "a"));
  ignore (Dsim.Engine.schedule_at e 2. (note "b"));
  Dsim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "executed" 3 (Dsim.Engine.events_executed e)

let test_fifo_simultaneous () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Dsim.Engine.schedule_at e 5. (fun () -> log := i :: !log))
  done;
  Dsim.Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_clock_advances () =
  let e = Dsim.Engine.create () in
  let seen = ref [] in
  ignore (Dsim.Engine.schedule_at e 2.5 (fun () -> seen := Dsim.Engine.now e :: !seen));
  ignore (Dsim.Engine.schedule_at e 7.5 (fun () -> seen := Dsim.Engine.now e :: !seen));
  Dsim.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "now at event times" [ 2.5; 7.5 ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "final clock" 7.5 (Dsim.Engine.now e)

let test_schedule_in_past_rejected () =
  let e = Dsim.Engine.create () in
  ignore (Dsim.Engine.schedule_at e 5. (fun () -> ()));
  Dsim.Engine.run e;
  (try
     ignore (Dsim.Engine.schedule_at e 1. (fun () -> ()));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Dsim.Engine.schedule_after e (-1.) (fun () -> ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_cancel () =
  let e = Dsim.Engine.create () in
  let fired = ref false in
  let id = Dsim.Engine.schedule_at e 1. (fun () -> fired := true) in
  Dsim.Engine.cancel e id;
  Dsim.Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  Alcotest.(check int) "not executed" 0 (Dsim.Engine.events_executed e)

let test_pending_excludes_cancelled () =
  let e = Dsim.Engine.create () in
  let id = Dsim.Engine.schedule_at e 1. (fun () -> ()) in
  ignore (Dsim.Engine.schedule_at e 2. (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Dsim.Engine.pending e);
  Dsim.Engine.cancel e id;
  Alcotest.(check int) "one pending" 1 (Dsim.Engine.pending e)

let test_run_until () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  ignore (Dsim.Engine.schedule_at e 1. (fun () -> log := 1 :: !log));
  ignore (Dsim.Engine.schedule_at e 10. (fun () -> log := 10 :: !log));
  Dsim.Engine.run ~until:5. e;
  Alcotest.(check (list int)) "only early event" [ 1 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at horizon" 5. (Dsim.Engine.now e);
  Dsim.Engine.run e;
  Alcotest.(check (list int)) "late event later" [ 1; 10 ] (List.rev !log)

let test_event_at_horizon_runs () =
  let e = Dsim.Engine.create () in
  let fired = ref false in
  ignore (Dsim.Engine.schedule_at e 5. (fun () -> fired := true));
  Dsim.Engine.run ~until:5. e;
  Alcotest.(check bool) "inclusive horizon" true !fired

let test_cascading_events () =
  let e = Dsim.Engine.create () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 0 then ignore (Dsim.Engine.schedule_after e 1. (chain (n - 1)))
  in
  ignore (Dsim.Engine.schedule_at e 0. (chain 9));
  Dsim.Engine.run e;
  Alcotest.(check int) "all chained events ran" 10 !count;
  Alcotest.(check (float 1e-9)) "clock" 9. (Dsim.Engine.now e)

let test_step () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  ignore (Dsim.Engine.schedule_at e 1. (fun () -> log := "a" :: !log));
  ignore (Dsim.Engine.schedule_at e 2. (fun () -> log := "b" :: !log));
  Alcotest.(check bool) "step 1" true (Dsim.Engine.step e);
  Alcotest.(check (list string)) "only first" [ "a" ] (List.rev !log);
  Alcotest.(check bool) "step 2" true (Dsim.Engine.step e);
  Alcotest.(check bool) "exhausted" false (Dsim.Engine.step e)

let prop_random_schedules_run_sorted =
  QCheck.Test.make ~name:"random schedules execute in nondecreasing time" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range 0. 1000.))
    (fun times ->
      let e = Dsim.Engine.create () in
      let seen = ref [] in
      List.iter
        (fun t -> ignore (Dsim.Engine.schedule_at e t (fun () -> seen := t :: !seen)))
        times;
      Dsim.Engine.run e;
      let order = List.rev !seen in
      order = List.sort Float.compare times
      || (* stable among equal keys: compare as multisets + sortedness *)
      List.sort Float.compare order = List.sort Float.compare times
      && List.for_all2 ( <= )
           (List.filteri (fun i _ -> i < List.length order - 1) order)
           (List.tl order))

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "time order" `Quick test_runs_in_time_order;
        Alcotest.test_case "FIFO for simultaneous events" `Quick test_fifo_simultaneous;
        Alcotest.test_case "clock advances" `Quick test_clock_advances;
        Alcotest.test_case "past scheduling rejected" `Quick test_schedule_in_past_rejected;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "pending excludes cancelled" `Quick
          test_pending_excludes_cancelled;
        Alcotest.test_case "run until horizon" `Quick test_run_until;
        Alcotest.test_case "event exactly at horizon" `Quick test_event_at_horizon_runs;
        Alcotest.test_case "cascading events" `Quick test_cascading_events;
        Alcotest.test_case "single stepping" `Quick test_step;
        QCheck_alcotest.to_alcotest prop_random_schedules_run_sorted;
      ] );
  ]
