(* Tests for billing / flow control (§3.3.B) and bounced mail (§4.2). *)

let nm u = Naming.Name.make ~region:"r0" ~host:"h" ~user:u

let test_accounts () =
  let b = Mail.Billing.create ~initial_balance:10. () in
  Alcotest.(check (float 1e-9)) "initial" 10. (Mail.Billing.balance b (nm "a"));
  Mail.Billing.credit b (nm "a") 5.;
  Alcotest.(check (float 1e-9)) "credited" 15. (Mail.Billing.balance b (nm "a"));
  (match Mail.Billing.try_charge b (nm "a") 12. with
  | Ok remaining -> Alcotest.(check (float 1e-9)) "charged" 3. remaining
  | Error e -> Alcotest.fail e);
  (match Mail.Billing.try_charge b (nm "a") 12. with
  | Ok _ -> Alcotest.fail "overdraft allowed"
  | Error _ -> ());
  Alcotest.(check (float 1e-9)) "balance untouched by refusal" 3.
    (Mail.Billing.balance b (nm "a"));
  Alcotest.(check (float 1e-9)) "spend tracked" 12.
    (Mail.Billing.total_charged b (nm "a"))

let test_negative_amounts_rejected () =
  let b = Mail.Billing.create () in
  (try
     Mail.Billing.credit b (nm "a") (-1.);
     Alcotest.fail "negative credit accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Mail.Billing.try_charge b (nm "a") (-1.));
    Alcotest.fail "negative charge accepted"
  with Invalid_argument _ -> ()

let attr_sys seed =
  let rng = Dsim.Rng.create seed in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  let site =
    { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }
  in
  let sys = Mail.Attribute_system.create site in
  Mail.Attribute_system.populate_random sys ~rng:(Dsim.Rng.create (seed + 1));
  sys

let test_billed_mass_mail () =
  let sys = attr_sys 11 in
  let sender = List.hd (Mail.Location_system.users (Mail.Attribute_system.base sys)) in
  let billing = Mail.Billing.create ~initial_balance:1000. () in
  let pred = Naming.Attribute.Has_keyword ("specialty", "mail") in
  match
    Mail.Billing.mass_mail billing sys ~sender ~viewer:Naming.Attribute.anyone pred
  with
  | Error e -> Alcotest.fail e
  | Ok billed ->
      Alcotest.(check bool) "charged the estimate" true (billed.Mail.Billing.charged > 0.);
      Alcotest.(check (float 1e-6)) "balance reduced"
        (1000. -. billed.Mail.Billing.charged)
        (Mail.Billing.balance billing sender);
      Alcotest.(check bool) "mail went out" true (billed.Mail.Billing.messages <> [])

let test_broke_sender_refused () =
  let sys = attr_sys 12 in
  let sender = List.hd (Mail.Location_system.users (Mail.Attribute_system.base sys)) in
  let billing = Mail.Billing.create ~initial_balance:0.01 () in
  let pred = Naming.Attribute.Has_key "org" in
  (match
     Mail.Billing.mass_mail billing sys ~sender ~viewer:Naming.Attribute.anyone pred
   with
  | Ok _ -> Alcotest.fail "broke sender allowed to broadcast"
  | Error _ -> ());
  (* refusal happens before any traffic *)
  Alcotest.(check (float 1e-9)) "not charged" 0.01 (Mail.Billing.balance billing sender)

let test_affordable_regions_scale_with_balance () =
  let sys = attr_sys 13 in
  let sender = List.hd (Mail.Location_system.users (Mail.Attribute_system.base sys)) in
  let poor = Mail.Billing.create ~initial_balance:5. () in
  let rich = Mail.Billing.create ~initial_balance:10000. () in
  let few = Mail.Billing.affordable_regions poor sys ~sender in
  let all = Mail.Billing.affordable_regions rich sys ~sender in
  Alcotest.(check bool) "richer reaches at least as far" true
    (List.length all >= List.length few);
  Alcotest.(check int) "rich reaches everywhere" 3 (List.length all)

(* --- bounced mail (§4.2) -------------------------------------------- *)

let test_bounce_on_permanent_failure () =
  let config =
    {
      Mail.Syntax_system.default_config with
      (* replication 1: the recipient's single authority server can go
         down while the sender's stays reachable. *)
      replication = 1;
      retry_timeout = 5.;
      resubmit_timeout = 2000.;
      max_retries = 3;
    }
  in
  let sys = Mail.Syntax_system.create ~config (Netsim.Topology.paper_fig1 ()) in
  let users = Mail.Syntax_system.users sys in
  let sender = List.nth users 0 and rcpt = List.nth users 25 in
  (* Take the recipient's whole authority list down, permanently. *)
  List.iter
    (fun s -> Netsim.Net.set_down (Mail.Syntax_system.net sys) s)
    (Mail.User_agent.authority (Mail.Syntax_system.agent sys rcpt));
  let m = Mail.Syntax_system.submit sys ~sender ~recipient:rcpt ~subject:"doomed" () in
  Mail.Syntax_system.run_until sys 1500.;
  Alcotest.(check bool) "never deposited" false (Mail.Message.is_deposited m);
  Alcotest.(check bool) "bounce generated" true
    (Dsim.Stats.Counter.get (Mail.Syntax_system.counters sys) "bounces" >= 1);
  (* the sender's mailbox now holds the error report *)
  ignore (Mail.Syntax_system.check_mail sys sender);
  let inbox = Mail.User_agent.inbox (Mail.Syntax_system.agent sys sender) in
  let is_bounce (b : Mail.Message.t) =
    String.length b.Mail.Message.subject > 17
    && String.sub b.Mail.Message.subject 0 17 = "DELIVERY FAILURE:"
  in
  Alcotest.(check bool) "bounce retrieved by sender" true (List.exists is_bounce inbox)

let test_bounce_not_bounced () =
  (* even if the bounce itself cannot be delivered, no loop forms *)
  let config =
    {
      Mail.Syntax_system.default_config with
      retry_timeout = 5.;
      resubmit_timeout = 2000.;
      max_retries = 2;
    }
  in
  let sys = Mail.Syntax_system.create ~config (Netsim.Topology.paper_fig1 ()) in
  let users = Mail.Syntax_system.users sys in
  let sender = List.nth users 0 and rcpt = List.nth users 25 in
  (* everything down: original fails AND the bounce fails *)
  List.iter
    (fun s -> Netsim.Net.set_down (Mail.Syntax_system.net sys) s)
    (Mail.Syntax_system.server_nodes sys);
  ignore (Mail.Syntax_system.submit sys ~sender ~recipient:rcpt ());
  Mail.Syntax_system.run_until sys 2000.;
  let bounces = Dsim.Stats.Counter.get (Mail.Syntax_system.counters sys) "bounces" in
  Alcotest.(check bool) "at most one bounce per message" true (bounces <= 1)

let suite =
  [
    ( "billing",
      [
        Alcotest.test_case "accounts" `Quick test_accounts;
        Alcotest.test_case "negative amounts rejected" `Quick
          test_negative_amounts_rejected;
        Alcotest.test_case "billed mass mail" `Quick test_billed_mass_mail;
        Alcotest.test_case "broke sender refused" `Quick test_broke_sender_refused;
        Alcotest.test_case "affordable regions scale" `Quick
          test_affordable_regions_scale_with_balance;
        Alcotest.test_case "bounce on permanent failure" `Quick
          test_bounce_on_permanent_failure;
        Alcotest.test_case "bounces are not bounced" `Quick test_bounce_not_bounced;
      ] );
  ]
