(* Tests for the §2 name-service organisation model. *)

let est org = Naming.Organisation.estimate org ~servers:10 ~server_availability:0.9 ~local_fraction:0.8

let test_centralized () =
  let e = est Naming.Organisation.Centralized in
  Alcotest.(check (float 1e-9)) "stores everything" 1. e.Naming.Organisation.storage_fraction;
  Alcotest.(check (float 1e-9)) "single point of failure" 0.9 e.Naming.Organisation.availability;
  Alcotest.(check (float 1e-9)) "round trip per lookup" 2. e.Naming.Organisation.lookup_messages

let test_fully_replicated () =
  let e = est Naming.Organisation.Fully_replicated in
  Alcotest.(check (float 1e-9)) "stores everything" 1. e.Naming.Organisation.storage_fraction;
  Alcotest.(check (float 1e-9)) "local lookups free" 0. e.Naming.Organisation.lookup_messages;
  Alcotest.(check (float 1e-9)) "updates hit every server" 20. e.Naming.Organisation.update_messages;
  Alcotest.(check bool) "nearly always available" true
    (e.Naming.Organisation.availability > 0.9999999)

let test_partitioned () =
  let e = est (Naming.Organisation.Partitioned 3) in
  Alcotest.(check (float 1e-9)) "stores a slice" 0.3 e.Naming.Organisation.storage_fraction;
  (* 80% local -> 0.4 expected messages *)
  Alcotest.(check (float 1e-6)) "mostly local lookups" 0.4 e.Naming.Organisation.lookup_messages;
  Alcotest.(check (float 1e-9)) "updates hit replicas" 6. e.Naming.Organisation.update_messages;
  Alcotest.(check (float 1e-9)) "replica availability" (1. -. (0.1 ** 3.))
    e.Naming.Organisation.availability

(* The §2 narrative: partitioning dominates centralisation on
   availability and full replication on storage/update cost, paying
   only a modest lookup overhead. *)
let test_paper_tradeoff_ordering () =
  let c = est Naming.Organisation.Centralized in
  let f = est Naming.Organisation.Fully_replicated in
  let p = est (Naming.Organisation.Partitioned 3) in
  Alcotest.(check bool) "more available than centralized" true
    (p.Naming.Organisation.availability > c.Naming.Organisation.availability);
  Alcotest.(check bool) "cheaper storage than replication" true
    (p.Naming.Organisation.storage_fraction < f.Naming.Organisation.storage_fraction);
  Alcotest.(check bool) "cheaper updates than replication" true
    (p.Naming.Organisation.update_messages < f.Naming.Organisation.update_messages);
  Alcotest.(check bool) "lookups dearer than replication" true
    (p.Naming.Organisation.lookup_messages > f.Naming.Organisation.lookup_messages)

let test_validation () =
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () ->
      ignore
        (Naming.Organisation.estimate Naming.Organisation.Centralized ~servers:0
           ~server_availability:0.9 ~local_fraction:0.5));
  expect_invalid (fun () ->
      ignore
        (Naming.Organisation.estimate Naming.Organisation.Centralized ~servers:5
           ~server_availability:1.5 ~local_fraction:0.5));
  expect_invalid (fun () ->
      ignore
        (Naming.Organisation.estimate (Naming.Organisation.Partitioned 9) ~servers:5
           ~server_availability:0.9 ~local_fraction:0.5))

let prop_availability_monotone_in_replication =
  QCheck.Test.make ~name:"availability grows with replication" ~count:100
    QCheck.(pair (int_range 1 9) (float_range 0.1 0.99))
    (fun (r, p) ->
      let e1 =
        Naming.Organisation.estimate (Naming.Organisation.Partitioned r) ~servers:10
          ~server_availability:p ~local_fraction:0.5
      in
      let e2 =
        Naming.Organisation.estimate (Naming.Organisation.Partitioned (r + 1))
          ~servers:10 ~server_availability:p ~local_fraction:0.5
      in
      e2.Naming.Organisation.availability >= e1.Naming.Organisation.availability)

let test_pp_smoke () =
  let s = Format.asprintf "%a" Naming.Organisation.pp (est Naming.Organisation.Centralized) in
  Alcotest.(check bool) "prints" true (String.length s > 10)

let suite =
  [
    ( "organisation",
      [
        Alcotest.test_case "centralized" `Quick test_centralized;
        Alcotest.test_case "fully replicated" `Quick test_fully_replicated;
        Alcotest.test_case "partitioned" `Quick test_partitioned;
        Alcotest.test_case "paper trade-off ordering" `Quick test_paper_tradeoff_ordering;
        Alcotest.test_case "validation" `Quick test_validation;
        QCheck_alcotest.to_alcotest prop_availability_monotone_in_replication;
        Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
      ] );
  ]
