(* Tests for congestion-aware communication delays (§3.1.1 final
   modification). *)

let fig1_problem () =
  Loadbalance.Assignment.problem_of_site (Netsim.Topology.paper_fig1 ())

let test_link_loads_conservation () =
  let p = fig1_problem () in
  let t = Loadbalance.Balancer.initialize p in
  let stats =
    Loadbalance.Channel.link_loads p t ~traffic_per_user:1. ~link_capacity:100.
  in
  (* nearest-server initialization: every host is adjacent to its
     server, so exactly the six host-server links carry traffic and
     each carries its host's whole population. *)
  Alcotest.(check int) "six loaded links" 6 (List.length stats);
  let total = List.fold_left (fun a s -> a +. s.Loadbalance.Channel.traffic) 0. stats in
  Alcotest.(check (float 1e-9)) "all user traffic accounted" 270. total

let test_link_loads_multi_hop () =
  let p = fig1_problem () in
  let t = Loadbalance.Assignment.empty p in
  (* Put H1's users (host index 0) on S3 (server index 2): path
     H1-S1-S2-S3 loads three links. *)
  Loadbalance.Assignment.set t ~host:0 ~server:2 50;
  let stats =
    Loadbalance.Channel.link_loads p t ~traffic_per_user:2. ~link_capacity:100.
  in
  Alcotest.(check int) "three links" 3 (List.length stats);
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9)) "flow on every hop" 100. s.Loadbalance.Channel.traffic;
      Alcotest.(check (float 1e-9)) "utilisation" 1. s.Loadbalance.Channel.utilisation)
    stats

let test_congested_comm_inflates () =
  let p = fig1_problem () in
  let t = Loadbalance.Balancer.initialize p in
  (* Base C(H1,S1) = 1; with traffic 50 on that link at capacity 60,
     rho ~ 0.83, so the effective delay must exceed the base. *)
  let comm =
    Loadbalance.Channel.congested_comm p t ~traffic_per_user:1. ~link_capacity:60.
  in
  Alcotest.(check bool) "inflated" true (comm.(0).(0) > 1.);
  (* with huge capacity the inflation vanishes *)
  let free =
    Loadbalance.Channel.congested_comm p t ~traffic_per_user:1. ~link_capacity:1e9
  in
  Alcotest.(check bool) "near base" true (Float.abs (free.(0).(0) -. 1.) < 0.01)

let test_balance_with_congestion_runs () =
  let p = fig1_problem () in
  let t, rounds =
    Loadbalance.Channel.balance_with_congestion ~rounds:3 ~traffic_per_user:1.
      ~link_capacity:80. p
  in
  Alcotest.(check int) "three rounds" 3 (List.length rounds);
  Alcotest.(check bool) "complete" true (Loadbalance.Assignment.is_complete p t);
  List.iter
    (fun r ->
      Alcotest.(check bool) "balancer converged each round" true
        r.Loadbalance.Channel.balancer.Loadbalance.Balancer.converged)
    rounds;
  (* congestion awareness reduces (or keeps) the worst link utilisation
     relative to round 1 *)
  match (rounds, List.rev rounds) with
  | first :: _, last :: _ ->
      Alcotest.(check bool) "hot links not worse" true
        (last.Loadbalance.Channel.max_link_utilisation
        <= first.Loadbalance.Channel.max_link_utilisation +. 1e-9)
  | _ -> Alcotest.fail "missing rounds"

let test_max_utilisation () =
  Alcotest.(check (float 1e-9)) "empty" 0. (Loadbalance.Channel.max_utilisation []);
  let stats =
    [
      { Loadbalance.Channel.link = (0, 1); traffic = 10.; utilisation = 0.1 };
      { Loadbalance.Channel.link = (1, 2); traffic = 90.; utilisation = 0.9 };
    ]
  in
  Alcotest.(check (float 1e-9)) "max" 0.9 (Loadbalance.Channel.max_utilisation stats)

let test_bad_rounds_rejected () =
  let p = fig1_problem () in
  try
    ignore (Loadbalance.Channel.balance_with_congestion ~rounds:0 p);
    Alcotest.fail "rounds 0 accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    ( "channel",
      [
        Alcotest.test_case "link load conservation" `Quick test_link_loads_conservation;
        Alcotest.test_case "multi-hop flows load every link" `Quick
          test_link_loads_multi_hop;
        Alcotest.test_case "congestion inflates delays" `Quick
          test_congested_comm_inflates;
        Alcotest.test_case "iterated congestion-aware balance" `Quick
          test_balance_with_congestion_runs;
        Alcotest.test_case "max utilisation" `Quick test_max_utilisation;
        Alcotest.test_case "bad rounds rejected" `Quick test_bad_rounds_rejected;
      ] );
  ]
