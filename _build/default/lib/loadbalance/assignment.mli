(** Server-assignment problems and assignment matrices (§3.1.1).

    A problem fixes the hosts (with user populations [N_i]), the
    servers (with capacities [M_j]), the zero-load communication-time
    matrix [C_ij] derived from the topology, and the cost parameters.
    An assignment is the matrix [A_ij] — how many users of host [i]
    are served by server [j]. *)

type problem = {
  graph : Netsim.Graph.t;
  hosts : Netsim.Graph.node array;
  populations : int array;  (** N_i, aligned with [hosts]. *)
  servers : Netsim.Graph.node array;
  capacities : int array;  (** M_j, aligned with [servers]. *)
  comm : float array array;  (** C_ij = zero-load shortest-path time. *)
  params : Cost.params;
}

val problem_of_site :
  ?params:Cost.params ->
  ?capacity:(Netsim.Graph.node -> int) ->
  Netsim.Topology.mail_site ->
  problem
(** Build a problem from a topology, computing [C_ij] by Dijkstra.
    Default parameters: {!Cost.paper_params}; default capacity: 100
    users per server (the worked example's [M_j]).
    @raise Invalid_argument if the site has no hosts or no servers, or
    some host cannot reach some server. *)

type t
(** Mutable assignment matrix for a given problem. *)

val empty : problem -> t
val copy : t -> t

val get : t -> host:int -> server:int -> int
(** Users of host index [host] assigned to server index [server]. *)

val set : t -> host:int -> server:int -> int -> unit
(** @raise Invalid_argument on a negative count. *)

val move : t -> host:int -> from_server:int -> to_server:int -> int -> unit
(** Move [count] users of a host between servers.
    @raise Invalid_argument if the source holds fewer than [count]. *)

val load : t -> int -> int
(** [L_j]: users currently assigned to server index [j], maintained
    incrementally. *)

val loads : t -> int array

val assigned_of_host : t -> int -> int
(** Users of host [i] currently assigned anywhere. *)

val utilization : problem -> t -> int -> float
(** ρ_j = L_j / M_j. *)

val connection_cost : problem -> t -> host:int -> server:int -> float
(** TC_ij under the current loads. *)

val total_cost : problem -> t -> float
(** Σ_ij A_ij · TC_ij — the objective the balancing loop minimises. *)

val move_delta :
  problem -> t -> host:int -> from_server:int -> to_server:int -> count:int -> float
(** Change in {!total_cost} if [count] users of [host] moved between
    the servers, computed in O(1) from the closed form of the
    objective (the communication terms of the moved users plus the
    queueing-term change of the two affected servers).  Exact:
    [total_cost] after an actual {!move} equals the old value plus
    this delta (up to rounding) — property-tested. *)

val is_complete : problem -> t -> bool
(** Every host's population fully assigned. *)

val overloaded : problem -> t -> int list
(** Server indexes with L_j > M_j (the algorithm's final check). *)

val server_label : problem -> int -> string
val host_label : problem -> int -> string

val pp_table : problem -> Format.formatter -> t -> unit
(** Render in the layout of the paper's Tables 1–3: one row per host,
    one column per server, plus per-server load and utilisation
    footer. *)
