lib/loadbalance/balancer.ml: Array Assignment Float Format
