lib/loadbalance/replicas.mli: Assignment Netsim
