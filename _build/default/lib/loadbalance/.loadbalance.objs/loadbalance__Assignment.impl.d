lib/loadbalance/assignment.ml: Array Cost Float Format Fun List Netsim Printf
