lib/loadbalance/reconfigure.ml: Array Assignment Balancer Float List Netsim
