lib/loadbalance/replicas.ml: Array Assignment Float Fun Hashtbl List Netsim
