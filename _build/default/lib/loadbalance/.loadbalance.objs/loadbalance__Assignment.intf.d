lib/loadbalance/assignment.mli: Cost Format Netsim
