lib/loadbalance/channel.ml: Array Assignment Balancer Cost Float Hashtbl List Netsim
