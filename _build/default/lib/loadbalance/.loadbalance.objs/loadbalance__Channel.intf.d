lib/loadbalance/channel.mli: Assignment Balancer Netsim
