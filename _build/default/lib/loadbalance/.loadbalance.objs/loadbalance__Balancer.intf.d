lib/loadbalance/balancer.mli: Assignment Format
