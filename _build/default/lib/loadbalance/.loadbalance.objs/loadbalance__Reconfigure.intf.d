lib/loadbalance/reconfigure.mli: Assignment Balancer Netsim
