lib/loadbalance/cost.ml: Queueing
