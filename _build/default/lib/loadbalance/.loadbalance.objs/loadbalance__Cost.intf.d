lib/loadbalance/cost.mli:
