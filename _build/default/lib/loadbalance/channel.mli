(** Variable communication delays under channel load.

    §3.1.1 closes with: "a final modification can be done to include
    variable communication delays by having approximate queueing
    delays that is a function of the channel utilization (in the above
    algorithm, we assume constant communication delays which are valid
    in the case of light loads on the channel)."

    This module implements that modification.  The user-to-server
    traffic implied by an assignment is routed over zero-load shortest
    paths; each link's utilisation follows, and its effective delay is
    inflated by the same M/M/1-style factor the server model uses:
    [w' = w · (1 + Q(ρ_link))].  Re-running the balancer against the
    inflated delays and iterating reaches a congestion-aware
    assignment. *)

type link_stats = {
  link : Netsim.Graph.node * Netsim.Graph.node;  (** with [u < v]. *)
  traffic : float;  (** offered load crossing the link. *)
  utilisation : float;  (** traffic / link capacity, uncapped. *)
}

val link_loads :
  Assignment.problem ->
  Assignment.t ->
  traffic_per_user:float ->
  link_capacity:float ->
  link_stats list
(** Route every host→assigned-server flow over the zero-load shortest
    path and accumulate per-link traffic.  Sorted by link. *)

val max_utilisation : link_stats list -> float
(** 0. for an empty list. *)

val congested_comm :
  Assignment.problem ->
  Assignment.t ->
  traffic_per_user:float ->
  link_capacity:float ->
  float array array
(** The effective [C_ij] matrix under the assignment's link loads:
    shortest paths over links reweighted by [w · (1 + Q(ρ))], where
    [Q] is {!Cost.waiting_estimate} capped at 100 (a saturated link is
    very slow, not absorbing). *)

type round_stats = {
  round : int;
  balancer : Balancer.stats;
  max_link_utilisation : float;
}

val balance_with_congestion :
  ?rounds:int ->
  ?traffic_per_user:float ->
  ?link_capacity:float ->
  Assignment.problem ->
  Assignment.t * round_stats list
(** Alternate balancing and delay re-estimation for [rounds]
    iterations (default 3) starting from the nearest-server
    initialization; defaults: 1 traffic unit per user, capacity 100
    per link.  Returns the final assignment and per-round stats. *)
