type params = {
  w_comm : float;
  w_proc : float;
  processing_time : float;
  big_b : float;
}

let paper_params = { w_comm = 4.0; w_proc = 1.0; processing_time = 0.5; big_b = 1e6 }

let waiting_estimate params ~rho = Queueing.Mm1.paper_q ~cap:params.big_b rho

let connection_cost params ~comm ~rho =
  (comm *. params.w_comm)
  +. ((waiting_estimate params ~rho +. params.processing_time) *. params.w_proc)
