type problem = {
  graph : Netsim.Graph.t;
  hosts : Netsim.Graph.node array;
  populations : int array;
  servers : Netsim.Graph.node array;
  capacities : int array;
  comm : float array array;
  params : Cost.params;
}

let problem_of_site ?(params = Cost.paper_params) ?(capacity = fun _ -> 100)
    (site : Netsim.Topology.mail_site) =
  if site.hosts = [] then invalid_arg "Assignment.problem_of_site: no hosts";
  if site.servers = [] then invalid_arg "Assignment.problem_of_site: no servers";
  let hosts = Array.of_list (List.map fst site.hosts) in
  let populations = Array.of_list (List.map snd site.hosts) in
  let servers = Array.of_list site.servers in
  let capacities = Array.map capacity servers in
  let comm =
    Array.map
      (fun h ->
        let tree = Netsim.Shortest_path.dijkstra site.graph h in
        Array.map
          (fun s ->
            let d = Netsim.Shortest_path.distance tree s in
            if not (Float.is_finite d) then
              invalid_arg
                (Printf.sprintf "Assignment.problem_of_site: host %s cannot reach server %s"
                   (Netsim.Graph.label site.graph h)
                   (Netsim.Graph.label site.graph s));
            d)
          servers)
      hosts
  in
  { graph = site.graph; hosts; populations; servers; capacities; comm; params }

type t = {
  matrix : int array array;  (* A_ij *)
  server_loads : int array;  (* L_j, maintained incrementally *)
  host_assigned : int array;
}

let empty problem =
  let i = Array.length problem.hosts and j = Array.length problem.servers in
  {
    matrix = Array.make_matrix i j 0;
    server_loads = Array.make j 0;
    host_assigned = Array.make i 0;
  }

let copy t =
  {
    matrix = Array.map Array.copy t.matrix;
    server_loads = Array.copy t.server_loads;
    host_assigned = Array.copy t.host_assigned;
  }

let get t ~host ~server = t.matrix.(host).(server)

let set t ~host ~server count =
  if count < 0 then invalid_arg "Assignment.set: negative count";
  let old = t.matrix.(host).(server) in
  t.matrix.(host).(server) <- count;
  t.server_loads.(server) <- t.server_loads.(server) + count - old;
  t.host_assigned.(host) <- t.host_assigned.(host) + count - old

let move t ~host ~from_server ~to_server count =
  if count < 0 then invalid_arg "Assignment.move: negative count";
  if t.matrix.(host).(from_server) < count then
    invalid_arg "Assignment.move: not enough users on source server";
  set t ~host ~server:from_server (t.matrix.(host).(from_server) - count);
  set t ~host ~server:to_server (t.matrix.(host).(to_server) + count)

let load t j = t.server_loads.(j)
let loads t = Array.copy t.server_loads
let assigned_of_host t i = t.host_assigned.(i)

let utilization problem t j =
  float_of_int t.server_loads.(j) /. float_of_int (max 1 problem.capacities.(j))

let connection_cost problem t ~host ~server =
  Cost.connection_cost problem.params
    ~comm:problem.comm.(host).(server)
    ~rho:(utilization problem t server)

let total_cost problem t =
  let total = ref 0. in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j count ->
          if count > 0 then
            total :=
              !total +. (float_of_int count *. connection_cost problem t ~host:i ~server:j))
        row)
    t.matrix;
  !total

(* Queueing component a server of load [l] contributes to the
   objective: l · (Q(l/M) + z) · W2. *)
let queue_term problem ~server l =
  let rho = float_of_int l /. float_of_int (max 1 problem.capacities.(server)) in
  float_of_int l
  *. (Cost.waiting_estimate problem.params ~rho +. problem.params.Cost.processing_time)
  *. problem.params.Cost.w_proc

let move_delta problem t ~host ~from_server ~to_server ~count =
  if from_server = to_server || count = 0 then 0.
  else begin
    let comm =
      problem.params.Cost.w_comm
      *. float_of_int count
      *. (problem.comm.(host).(to_server) -. problem.comm.(host).(from_server))
    in
    let la = t.server_loads.(from_server) and lb = t.server_loads.(to_server) in
    let queue =
      queue_term problem ~server:from_server (la - count)
      -. queue_term problem ~server:from_server la
      +. queue_term problem ~server:to_server (lb + count)
      -. queue_term problem ~server:to_server lb
    in
    comm +. queue
  end

let is_complete problem t =
  Array.for_all Fun.id
    (Array.mapi (fun i pop -> t.host_assigned.(i) = pop) problem.populations)

let overloaded problem t =
  List.filter
    (fun j -> t.server_loads.(j) > problem.capacities.(j))
    (List.init (Array.length problem.servers) Fun.id)

let server_label problem j = Netsim.Graph.label problem.graph problem.servers.(j)
let host_label problem i = Netsim.Graph.label problem.graph problem.hosts.(i)

let pp_table problem ppf t =
  let ns = Array.length problem.servers in
  Format.fprintf ppf "@[<v>%-8s" "Host";
  for j = 0 to ns - 1 do
    Format.fprintf ppf "%8s" (server_label problem j)
  done;
  Format.fprintf ppf "%8s@ " "Total";
  Array.iteri
    (fun i _ ->
      Format.fprintf ppf "%-8s" (host_label problem i);
      for j = 0 to ns - 1 do
        Format.fprintf ppf "%8d" t.matrix.(i).(j)
      done;
      Format.fprintf ppf "%8d@ " t.host_assigned.(i))
    problem.hosts;
  Format.fprintf ppf "%-8s" "Load";
  for j = 0 to ns - 1 do
    Format.fprintf ppf "%8d" t.server_loads.(j)
  done;
  Format.fprintf ppf "%8d@ "
    (Array.fold_left ( + ) 0 t.server_loads);
  Format.fprintf ppf "%-8s" "Util";
  for j = 0 to ns - 1 do
    Format.fprintf ppf "%8.2f" (utilization problem t j)
  done;
  Format.fprintf ppf "@]"
