(** The paper's connection-cost model (§3.1.1).

    [TC_ij = C_ij · W1 + (Q(ρ_j) + z) · W2] where [C_ij] is the
    zero-load shortest-path communication time between host [i] and
    server [j], [ρ_j = L_j / M_j] the server's utilisation estimate,
    [Q] the M/M/1 waiting-time estimate capped at a very large
    constant [B] once [ρ ≥ 0.99], and [z] the average per-request
    processing time. *)

type params = {
  w_comm : float;  (** W1 — weight of communication time. *)
  w_proc : float;  (** W2 — weight of processing + waiting time. *)
  processing_time : float;  (** z — mean processing time per request. *)
  big_b : float;  (** B — the "very large constant" for ρ ≥ 0.99. *)
}

val paper_params : params
(** The worked example's values: W1 = 4, W2 = 1, z = 0.5, B = 10⁶. *)

val waiting_estimate : params -> rho:float -> float
(** [Q(ρ)] as defined above. *)

val connection_cost : params -> comm:float -> rho:float -> float
(** [TC] for one host/server pair given the communication time and the
    server's current utilisation estimate. *)
