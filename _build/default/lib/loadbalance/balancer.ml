type stats = {
  passes : int;
  users_moved : int;
  rejected_moves : int;
  cost_before : float;
  cost_after : float;
  converged : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "passes=%d moved=%d rejected=%d cost %.2f -> %.2f%s" s.passes
    s.users_moved s.rejected_moves s.cost_before s.cost_after
    (if s.converged then "" else " (not converged)")

let n_hosts (p : Assignment.problem) = Array.length p.hosts
let n_servers (p : Assignment.problem) = Array.length p.servers

let initialize problem =
  let t = Assignment.empty problem in
  for i = 0 to n_hosts problem - 1 do
    (* Cost at initialization is communication time alone. *)
    let best = ref 0 in
    for j = 1 to n_servers problem - 1 do
      if problem.Assignment.comm.(i).(j) < problem.Assignment.comm.(i).(!best) then
        best := j
    done;
    Assignment.set t ~host:i ~server:!best problem.Assignment.populations.(i)
  done;
  t

(* One trial move of [count] users of host [i] from [s_max] to
   [s_min]; kept only if the global objective strictly improves.  The
   O(1) closed-form delta replaces a full objective recompute (the
   "undo the previous action" of the paper's pseudocode becomes
   not applying the move at all). *)
let try_move problem t ~host ~from_server ~to_server ~count =
  let delta = Assignment.move_delta problem t ~host ~from_server ~to_server ~count in
  if delta < 0. then begin
    Assignment.move t ~host ~from_server ~to_server count;
    true
  end
  else false

let balance ?(max_passes = 10000) ?(batch = false) problem t =
  let cost_before = Assignment.total_cost problem t in
  let users_moved = ref 0 in
  let rejected = ref 0 in
  let passes = ref 0 in
  (* In batch mode, a first phase moves half-allocations at a time for
     speed, then a single-move polish phase recovers the fine-grained
     optimum the one-user-at-a-time loop reaches. *)
  let batch_phase = ref batch in
  let changed = ref true in
  while !changed && !passes < max_passes do
    changed := false;
    incr passes;
    let batch = !batch_phase in
    for i = 0 to n_hosts problem - 1 do
      if Assignment.assigned_of_host t i > 0 then begin
        let tc j = Assignment.connection_cost problem t ~host:i ~server:j in
        let s_min = ref 0 and s_max = ref (-1) in
        for j = 1 to n_servers problem - 1 do
          if tc j < tc !s_min then s_min := j
        done;
        for j = 0 to n_servers problem - 1 do
          if Assignment.get t ~host:i ~server:j > 0 then
            if !s_max < 0 || tc j > tc !s_max then s_max := j
        done;
        let s_min = !s_min and s_max = !s_max in
        if s_max >= 0 && s_min <> s_max && tc s_min < tc s_max then begin
          let available = Assignment.get t ~host:i ~server:s_max in
          let accepted_count =
            if batch then begin
              let bulk = max 1 (available / 2) in
              if
                bulk > 1
                && try_move problem t ~host:i ~from_server:s_max ~to_server:s_min
                     ~count:bulk
              then Some bulk
              else if
                try_move problem t ~host:i ~from_server:s_max ~to_server:s_min
                  ~count:1
              then Some 1
              else None
            end
            else if
              try_move problem t ~host:i ~from_server:s_max ~to_server:s_min ~count:1
            then Some 1
            else None
          in
          match accepted_count with
          | Some n ->
              users_moved := !users_moved + n;
              changed := true
          | None -> incr rejected
        end
      end
    done;
    if (not !changed) && !batch_phase then begin
      batch_phase := false;
      changed := true
    end
  done;
  {
    passes = !passes;
    users_moved = !users_moved;
    rejected_moves = !rejected;
    cost_before;
    cost_after = Assignment.total_cost problem t;
    converged = not !changed;
  }

let run ?batch problem =
  let t = initialize problem in
  let stats = balance ?batch problem t in
  (t, stats)

let assign_remaining problem t =
  let placed = ref 0 in
  for i = 0 to n_hosts problem - 1 do
    let missing = problem.Assignment.populations.(i) - Assignment.assigned_of_host t i in
    for _ = 1 to missing do
      let best = ref 0 in
      for j = 1 to n_servers problem - 1 do
        if
          Assignment.connection_cost problem t ~host:i ~server:j
          < Assignment.connection_cost problem t ~host:i ~server:!best
        then best := j
      done;
      Assignment.set t ~host:i ~server:!best (Assignment.get t ~host:i ~server:!best + 1);
      incr placed
    done
  done;
  !placed

let max_utilization problem t =
  let m = ref 0. in
  for j = 0 to n_servers problem - 1 do
    m := Float.max !m (Assignment.utilization problem t j)
  done;
  !m

let load_imbalance problem t =
  let lo = ref infinity and hi = ref neg_infinity in
  for j = 0 to n_servers problem - 1 do
    let u = Assignment.utilization problem t j in
    if u < !lo then lo := u;
    if u > !hi then hi := u
  done;
  !hi -. !lo
