(** The §3.1.1 server-assignment algorithm: initialization followed by
    iterative load balancing.

    Initialization assigns every host's whole population to its
    nearest server by zero-load communication time.  Balancing then
    repeatedly scans the hosts; for each host it finds the
    cheapest server [S_min] and the dearest currently-used server
    [S_max] under the *current* loads, trial-moves users from [S_max]
    to [S_min], and keeps the move only if the global objective
    [Σ A_ij·TC_ij] strictly improves (the paper's "undo the previous
    action" step).  Every accepted move strictly decreases a
    lower-bounded objective, so the loop terminates. *)

type stats = {
  passes : int;  (** scans over the host list. *)
  users_moved : int;  (** accepted moves, in users. *)
  rejected_moves : int;  (** trial moves undone. *)
  cost_before : float;
  cost_after : float;
  converged : bool;  (** false only if [max_passes] was hit. *)
}

val pp_stats : Format.formatter -> stats -> unit

val initialize : Assignment.problem -> Assignment.t
(** Nearest-server initial assignment (ties to the lowest server
    index). *)

val balance :
  ?max_passes:int -> ?batch:bool -> Assignment.problem -> Assignment.t -> stats
(** Balance in place.  [batch] enables the paper's speed-up of moving
    several users at once (half of the source allocation, falling back
    to a single user when the large move does not improve).  Default
    [max_passes] 10000, [batch] false. *)

val run : ?batch:bool -> Assignment.problem -> Assignment.t * stats
(** [initialize] + [balance]. *)

val assign_remaining : Assignment.problem -> Assignment.t -> int
(** Greedily place any users not yet assigned (after a host/server
    reconfiguration) on their current cheapest server; returns the
    number of users placed. *)

val max_utilization : Assignment.problem -> Assignment.t -> float
val load_imbalance : Assignment.problem -> Assignment.t -> float
(** Max minus min utilisation over servers — 0 means perfectly even. *)
