(** Reconfiguration operators (§3.1.3).

    Each operator transforms a problem (and carries the existing
    assignment over where possible), mirroring the paper's procedures:
    adding or deleting users, hosts and servers.  After an operator the
    caller re-runs {!Balancer.balance} to "redistribute the load among
    the servers using the algorithm for server assignment". *)

type change =
  | Add_users of Netsim.Graph.node * int
      (** more users appear on an existing host. *)
  | Remove_users of Netsim.Graph.node * int
  | Add_host of Netsim.Graph.node * int
      (** a host node already present in the graph joins the mail
          system with the given population. *)
  | Remove_host of Netsim.Graph.node
  | Add_server of Netsim.Graph.node * int
      (** a server node already present in the graph joins with the
          given capacity [M_j]. *)
  | Remove_server of Netsim.Graph.node

val apply :
  Assignment.problem ->
  Assignment.t ->
  change ->
  Assignment.problem * Assignment.t
(** Rebuild the problem and port the old assignment.  Users whose
    server or host disappeared (or who are new) are left unassigned;
    place them with {!Balancer.assign_remaining} and then re-balance.
    @raise Invalid_argument on unknown nodes, duplicate additions, or
    removing the last host/server. *)

val apply_and_rebalance :
  ?batch:bool ->
  Assignment.problem ->
  Assignment.t ->
  change ->
  Assignment.problem * Assignment.t * Balancer.stats
(** {!apply}, then {!Balancer.assign_remaining}, then
    {!Balancer.balance}. *)
