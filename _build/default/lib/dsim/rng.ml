type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

(* splitmix64 finaliser: state advances by the golden-ratio gamma, and
   the output is a strongly-mixed function of the new state. *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed }

let float g bound =
  if not (Float.is_finite bound) || bound <= 0. then
    invalid_arg "Rng.float: bound must be positive and finite";
  (* 53 random mantissa bits scaled into [0, 1). *)
  let mant = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  mant /. 9007199254740992. *. bound

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 g) mask) in
    (* Reject the biased tail so every residue is equally likely. *)
    let limit = max_int - (max_int mod bound) in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g p =
  if p <= 0. then false else if p >= 1. then true else float g 1.0 < p

let uniform g lo hi =
  if hi <= lo then invalid_arg "Rng.uniform: empty interval";
  lo +. float g (hi -. lo)

let exponential g rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float g 1.0 in
  -.log u /. rate

let normal g ~mean ~stddev =
  let u1 = 1.0 -. float g 1.0 in
  let u2 = float g 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let poisson g mean =
  if mean <= 0. then 0
  else if mean > 500. then
    (* Normal approximation with continuity correction. *)
    let x = normal g ~mean ~stddev:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else begin
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. float g 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end

(* Rejection-inversion sampling for the Zipf distribution, after
   Hörmann & Derflinger (1996).  Constant expected time per draw. *)
let zipf g ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if n = 1 then 1
  else begin
    let h x = if s = 1.0 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv y =
      if s = 1.0 then exp y else ((1.0 -. s) *. y) ** (1.0 /. (1.0 -. s))
    in
    let h_x1 = h 1.5 -. 1.0 in
    let h_n = h (float_of_int n +. 0.5) in
    let rec draw () =
      let u = h_x1 +. (float g 1.0 *. (h_n -. h_x1)) in
      let x = h_inv u in
      let k = Float.round x in
      let k = if k < 1.0 then 1.0 else if k > float_of_int n then float_of_int n else k in
      if u >= h (k +. 0.5) -. (k ** -.s) then int_of_float k else draw ()
    in
    draw ()
  end

let choice g arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int g (Array.length arr))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick_weighted g items =
  let total = List.fold_left (fun acc (_, w) -> acc +. max 0. w) 0. items in
  if total <= 0. then invalid_arg "Rng.pick_weighted: total weight not positive";
  let target = float g total in
  let rec scan acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty list"
    | [ (v, _) ] -> v
    | (v, w) :: rest ->
        let acc = acc +. max 0. w in
        if target < acc then v else scan acc rest
  in
  scan 0. items
