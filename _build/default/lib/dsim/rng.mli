(** Deterministic pseudo-random number generation for simulations.

    The generator is splitmix64: tiny state, excellent statistical
    quality for simulation purposes, and — crucially for reproducible
    experiments — fully deterministic from its integer seed.  Every
    stochastic component of the simulator draws from an explicit [t]
    so that runs are replayable and independent streams can be split
    off per component. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing
    [g].  Use one stream per simulated component to keep components'
    draws independent of each other's call order. *)

val copy : t -> t
(** Snapshot of the current state; the copy evolves independently. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. [bound] must be
    positive and finite. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to
    [\[0,1\]]). *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential g rate] draws from Exp(rate); mean [1. /. rate].
    @raise Invalid_argument if [rate <= 0]. *)

val poisson : t -> float -> int
(** [poisson g mean] draws a Poisson variate.  Uses Knuth's product
    method for small means and a normal approximation above 500. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian variate by Box–Muller. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf g ~n ~s] draws a rank in [\[1, n\]] from a Zipf distribution
    with exponent [s] (by inverse-CDF over precomputed weights is too
    costly per call, so rejection-inversion is used).
    @raise Invalid_argument if [n <= 0]. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick_weighted : t -> ('a * float) list -> 'a
(** [pick_weighted g items] picks proportionally to the (non-negative)
    weights.  @raise Invalid_argument if the total weight is not
    positive. *)
