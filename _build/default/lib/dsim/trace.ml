type level = Debug | Info | Warn | Error

type record = { time : float; level : level; category : string; message : string }

type t = {
  buffer : record option array;
  mutable next : int;
  mutable stored : int;
  mutable total : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buffer = Array.make capacity None; next = 0; stored = 0; total = 0 }

let add t ~time ~level ~category message =
  t.buffer.(t.next) <- Some { time; level; category; message };
  t.next <- (t.next + 1) mod Array.length t.buffer;
  if t.stored < Array.length t.buffer then t.stored <- t.stored + 1;
  t.total <- t.total + 1

let logf t ~time ~level ~category fmt =
  Format.kasprintf (fun message -> add t ~time ~level ~category message) fmt

let debugf t ~time ~category fmt = logf t ~time ~level:Debug ~category fmt
let infof t ~time ~category fmt = logf t ~time ~level:Info ~category fmt
let warnf t ~time ~category fmt = logf t ~time ~level:Warn ~category fmt
let errorf t ~time ~category fmt = logf t ~time ~level:Error ~category fmt

let records t =
  let cap = Array.length t.buffer in
  let start = (t.next - t.stored + cap) mod cap in
  List.init t.stored (fun i ->
      match t.buffer.((start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let count ?category ?level t =
  let matches r =
    (match category with Some c -> String.equal r.category c | None -> true)
    && match level with Some l -> r.level = l | None -> true
  in
  List.length (List.filter matches (records t))

let total t = t.total

let clear t =
  Array.fill t.buffer 0 (Array.length t.buffer) None;
  t.next <- 0;
  t.stored <- 0;
  t.total <- 0

let level_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let pp_record ppf r =
  Format.fprintf ppf "[%10.4f] %-5s %-16s %s" r.time (level_label r.level)
    r.category r.message

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_record ppf (records t)
