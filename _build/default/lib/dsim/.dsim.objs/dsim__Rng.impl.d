lib/dsim/rng.ml: Array Float Int64 List
