lib/dsim/heap.mli:
