lib/dsim/engine.mli:
