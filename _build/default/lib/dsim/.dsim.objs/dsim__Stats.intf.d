lib/dsim/stats.mli: Format Rng
