lib/dsim/rng.mli:
