lib/dsim/stats.ml: Array Float Format Hashtbl List Rng Stdlib String
