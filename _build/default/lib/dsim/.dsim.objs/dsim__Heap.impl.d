lib/dsim/heap.ml: Array Float Int
