lib/dsim/engine.ml: Float Hashtbl Heap Printf
