(** Stochastic workload generators for the mail simulations.

    Arrival processes produce the times at which users send mail or
    check their mailboxes; the mix generator draws (sender, recipient)
    pairs with configurable locality, matching the paper's setting
    where most traffic stays within a region. *)

val poisson_arrivals : rng:Dsim.Rng.t -> rate:float -> horizon:float -> float list
(** Event times of a Poisson process of the given rate on
    [\[0, horizon)], ascending.  [rate <= 0.] yields []. *)

val uniform_arrivals : rng:Dsim.Rng.t -> count:int -> horizon:float -> float list
(** [count] times uniform on [\[0, horizon)], ascending. *)

val periodic_arrivals : period:float -> horizon:float -> float list
(** Deterministic arrivals at [period, 2·period, …) below [horizon].
    @raise Invalid_argument if [period <= 0.]. *)

(** A population of traffic sources with Zipf-skewed activity: a few
    users send most of the mail, as in real mail systems. *)
type population = {
  size : int;
  skew : float;  (** Zipf exponent; 0. would be uniform, use ~0.8–1.2. *)
}

val pick_sender : rng:Dsim.Rng.t -> population -> int
(** User index in [\[0, size)], rank 0 most active. *)

val pick_recipient :
  rng:Dsim.Rng.t -> population -> sender:int -> locality:float -> regions:int -> int
(** Recipient index distinct from [sender].  With probability
    [locality] the recipient is drawn from the sender's region (users
    are striped across [regions] round-robin), otherwise from the
    whole population. *)
