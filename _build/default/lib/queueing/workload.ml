let poisson_arrivals ~rng ~rate ~horizon =
  if rate <= 0. then []
  else begin
    let rec gen t acc =
      let t = t +. Dsim.Rng.exponential rng rate in
      if t >= horizon then List.rev acc else gen t (t :: acc)
    in
    gen 0. []
  end

let uniform_arrivals ~rng ~count ~horizon =
  List.init count (fun _ -> Dsim.Rng.float rng horizon)
  |> List.sort Float.compare

let periodic_arrivals ~period ~horizon =
  if period <= 0. then invalid_arg "Workload.periodic_arrivals: period <= 0";
  let rec gen t acc = if t >= horizon then List.rev acc else gen (t +. period) (t :: acc) in
  gen period []

type population = { size : int; skew : float }

let pick_sender ~rng pop =
  if pop.size <= 0 then invalid_arg "Workload.pick_sender: empty population";
  if pop.skew <= 0. then Dsim.Rng.int rng pop.size
  else Dsim.Rng.zipf rng ~n:pop.size ~s:pop.skew - 1

let pick_recipient ~rng pop ~sender ~locality ~regions =
  if pop.size <= 1 then invalid_arg "Workload.pick_recipient: need two users";
  let regions = max 1 regions in
  let sender_region = sender mod regions in
  let local = Dsim.Rng.bernoulli rng locality in
  let rec draw attempts =
    if attempts > 1000 then (sender + 1) mod pop.size
    else begin
      let candidate =
        if local then begin
          (* Users are striped round-robin over regions; draw an index
             in the sender's stripe. *)
          let stripe_size = ((pop.size - 1 - sender_region) / regions) + 1 in
          let k = Dsim.Rng.int rng (max 1 stripe_size) in
          sender_region + (k * regions)
        end
        else Dsim.Rng.int rng pop.size
      in
      if candidate <> sender && candidate < pop.size then candidate
      else draw (attempts + 1)
    end
  in
  draw 0
