lib/queueing/mmc.mli:
