lib/queueing/workload.ml: Dsim Float List
