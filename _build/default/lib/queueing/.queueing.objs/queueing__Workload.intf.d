lib/queueing/workload.mli: Dsim
