lib/queueing/mmc.ml: Float
