(** M/M/c queueing formulas (Erlang-C).

    Used when a mail server is modelled with [c] worker processes —
    the natural extension for the paper's "assign the primary server
    instead of only the primary server" remark, and for capacity
    planning in the reconfiguration experiments. *)

val erlang_c : c:int -> rho:float -> float
(** Probability an arrival must queue, with per-server utilisation
    [rho = λ/(cμ)].  Returns 1 when [rho >= 1.].
    @raise Invalid_argument if [c <= 0] or [rho < 0.]. *)

val mean_waiting_time : c:int -> arrival_rate:float -> service_rate:float -> float
(** Mean wait before service with [c] servers each of rate
    [service_rate]; [infinity] when unstable. *)

val mean_queue_length : c:int -> arrival_rate:float -> service_rate:float -> float

val min_servers : arrival_rate:float -> service_rate:float -> int
(** Fewest servers keeping the system stable (ρ < 1). *)
