let erlang_c ~c ~rho =
  if c <= 0 then invalid_arg "Mmc.erlang_c: c must be positive";
  if rho < 0. then invalid_arg "Mmc.erlang_c: negative utilisation";
  if rho >= 1. then 1.
  else begin
    (* a = offered load in Erlangs; sum the Erlang-B style series in a
       numerically stable incremental form. *)
    let a = rho *. float_of_int c in
    let term = ref 1. in
    let sum = ref 1. in
    for k = 1 to c - 1 do
      term := !term *. a /. float_of_int k;
      sum := !sum +. !term
    done;
    let term_c = !term *. a /. float_of_int c in
    let numer = term_c /. (1. -. rho) in
    numer /. (!sum +. numer)
  end

let mean_waiting_time ~c ~arrival_rate ~service_rate =
  if service_rate <= 0. then invalid_arg "Mmc.mean_waiting_time: service_rate <= 0";
  let rho = arrival_rate /. (float_of_int c *. service_rate) in
  if rho >= 1. then infinity
  else
    let pq = erlang_c ~c ~rho in
    pq /. ((float_of_int c *. service_rate) -. arrival_rate)

let mean_queue_length ~c ~arrival_rate ~service_rate =
  arrival_rate *. mean_waiting_time ~c ~arrival_rate ~service_rate

let min_servers ~arrival_rate ~service_rate =
  if service_rate <= 0. then invalid_arg "Mmc.min_servers: service_rate <= 0";
  if arrival_rate <= 0. then 1
  else
    let exact = arrival_rate /. service_rate in
    let c = int_of_float (Float.floor exact) + 1 in
    max 1 c
