let paper_q ?(cap = 1e6) rho =
  let rho = Float.max 0. rho in
  if rho < 0.99 then rho /. (1. -. rho) else cap

let utilization ~arrival_rate ~service_rate =
  if service_rate <= 0. then invalid_arg "Mm1.utilization: service_rate <= 0";
  arrival_rate /. service_rate

let mean_queue_length ~rho = if rho >= 1. then infinity else rho /. (1. -. rho)

let mean_waiting_time ~arrival_rate ~service_rate =
  let rho = utilization ~arrival_rate ~service_rate in
  if rho >= 1. then infinity else rho /. (service_rate -. arrival_rate)

let mean_sojourn_time ~arrival_rate ~service_rate =
  if arrival_rate >= service_rate then infinity
  else 1. /. (service_rate -. arrival_rate)

let prob_n_customers ~rho n =
  if n < 0 then 0.
  else if rho >= 1. || rho < 0. then 0.
  else (1. -. rho) *. (rho ** float_of_int n)

let prob_wait_exceeds ~arrival_rate ~service_rate t =
  if arrival_rate >= service_rate then 1.
  else exp (-.(service_rate -. arrival_rate) *. t)
