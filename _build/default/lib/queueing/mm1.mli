(** M/M/1 queueing formulas.

    The paper's connection-cost model (§3.1.1) approximates the average
    waiting time at a server by the M/M/1 formula [Q(ρ) = ρ/(1−ρ)]
    (in units of the mean service time), capping it with "a very large
    constant B" once utilisation reaches 0.99.  This module provides
    that estimate plus the standard exact quantities for validating
    the simulator against theory. *)

val paper_q : ?cap:float -> float -> float
(** [paper_q rho] is the paper's waiting-time estimate: [rho /. (1. -. rho)]
    when [rho < 0.99], otherwise the large constant [cap] (default
    [1e6]).  Negative utilisation is treated as 0. *)

val utilization : arrival_rate:float -> service_rate:float -> float
(** ρ = λ/μ. @raise Invalid_argument if [service_rate <= 0.]. *)

val mean_queue_length : rho:float -> float
(** L = ρ/(1−ρ); [infinity] when [rho >= 1.]. *)

val mean_waiting_time : arrival_rate:float -> service_rate:float -> float
(** Wq = ρ / (μ − λ); time an arrival waits before service starts.
    [infinity] when unstable. *)

val mean_sojourn_time : arrival_rate:float -> service_rate:float -> float
(** W = 1 / (μ − λ); waiting plus service. [infinity] when unstable. *)

val prob_n_customers : rho:float -> int -> float
(** P(N = n) = (1−ρ)ρⁿ for a stable queue; 0 when unstable. *)

val prob_wait_exceeds : arrival_rate:float -> service_rate:float -> float -> float
(** P(W > t) = e^{−(μ−λ)t} for the sojourn time of a stable queue;
    1 when unstable. *)
