type outcome =
  | Authoritative of Name_space.server list
  | Forward_to_region of string
  | Unknown

let resolve space ~local_region name =
  if not (String.equal (Name.region name) local_region) then
    Forward_to_region (Name.region name)
  else if Name_space.mem space name then
    match Name_space.authority_servers space name with
    | [] -> Unknown
    | servers -> Authoritative servers
  else Unknown

type step =
  | Looked_up of string
  | Forwarded of string * string
  | Found of Name_space.server list
  | Failed of string

let resolution_path ~start_region ~spaces name =
  let lookup region k =
    match spaces region with
    | None -> [ Failed (Printf.sprintf "region %s unreachable" region) ]
    | Some space -> Looked_up region :: k space
  in
  lookup start_region (fun space ->
      match resolve space ~local_region:start_region name with
      | Authoritative servers -> [ Found servers ]
      | Unknown -> [ Failed (Printf.sprintf "%s not registered" (Name.to_string name)) ]
      | Forward_to_region target ->
          Forwarded (start_region, target)
          :: lookup target (fun space ->
                 match resolve space ~local_region:target name with
                 | Authoritative servers -> [ Found servers ]
                 | Unknown ->
                     [ Failed (Printf.sprintf "%s not registered" (Name.to_string name)) ]
                 | Forward_to_region _ ->
                     [ Failed "resolution loop: home region disowns the name" ]))
