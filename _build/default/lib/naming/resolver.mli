(** Syntax-directed name resolution (§3.1.2b).

    Resolution is driven purely by the syntax of the name: a server in
    region [r] can resolve any name whose region token is [r] by
    consulting its regional name space; any other name is forwarded to
    the recipient's region, where resolution continues. *)

type outcome =
  | Authoritative of Name_space.server list
      (** The name resolved locally; ordered authority-server list. *)
  | Forward_to_region of string
      (** The name belongs to the given foreign region. *)
  | Unknown
      (** The name's region is local but no such user is registered
          (or its context has no assigned servers). *)

val resolve : Name_space.t -> local_region:string -> Name.t -> outcome
(** One resolution step at a server of [local_region]. *)

(** A full resolution trace across regions, for tests and examples. *)
type step =
  | Looked_up of string  (** consulted the name space of this region. *)
  | Forwarded of string * string  (** from region, to region. *)
  | Found of Name_space.server list
  | Failed of string  (** reason. *)

val resolution_path :
  start_region:string -> spaces:(string -> Name_space.t option) -> Name.t -> step list
(** Simulate the §3.1.2b chain: start at [start_region], follow at most
    one forward into the name's home region, and report every step.
    [spaces] maps a region to its name space ([None] = unreachable
    region). *)
