(** Attributes and attribute predicates (§3.3.1).

    "Each attribute has a type and a value. The 'type' indicates the
    format and the meaning of the value field."  A user profile is a
    set of attributes; each carries a visibility level because "users
    must have the option to limit the access to their personal
    information to specific groups or organizations". *)

(** Typed attribute values. *)
type value =
  | Text of string  (** names, aliases, job titles, cities, … *)
  | Number of float  (** years of experience, … *)
  | Keywords of string list  (** interests, specialties, … *)

type visibility =
  | Public
  | Org of string  (** visible only to members of this organisation. *)
  | Private  (** visible only to the user themself. *)

type attr = { key : string; value : value; visibility : visibility }

val attr : ?visibility:visibility -> string -> value -> attr
(** Default visibility [Public].
    @raise Invalid_argument on an empty key. *)

val text : ?visibility:visibility -> string -> string -> attr
val number : ?visibility:visibility -> string -> float -> attr
val keywords : ?visibility:visibility -> string -> string list -> attr

(** Who is asking — controls which attributes a query may see. *)
type viewer = { org : string option; is_self : bool }

val anyone : viewer
(** No organisation, not the profile owner. *)

val member_of : string -> viewer

val visible_to : viewer -> attr -> bool

(** Query predicates over a profile's visible attributes. *)
type pred =
  | Eq of string * value  (** attribute [key] has exactly this value. *)
  | Has_key of string
  | Text_prefix of string * string  (** case-insensitive prefix on a [Text]. *)
  | Text_contains of string * string  (** case-insensitive substring on a [Text]. *)
  | Has_keyword of string * string  (** [Keywords] value contains the word. *)
  | Between of string * float * float  (** inclusive range on a [Number]. *)
  | And of pred list
  | Or of pred list
  | Not of pred

val value_equal : value -> value -> bool

val matches : viewer:viewer -> attrs:attr list -> pred -> bool
(** Evaluate the predicate against the attributes visible to the
    viewer.  [And \[\]] is true, [Or \[\]] is false. *)

val pp_value : Format.formatter -> value -> unit
val pp_attr : Format.formatter -> attr -> unit
val pp_pred : Format.formatter -> pred -> unit
