lib/naming/fuzzy.ml: Array Fun Int List String
