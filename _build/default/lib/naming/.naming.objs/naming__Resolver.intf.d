lib/naming/resolver.mli: Name Name_space
