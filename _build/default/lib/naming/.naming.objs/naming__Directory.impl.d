lib/naming/directory.ml: Attribute Fuzzy Hashtbl Int List Map Name Option Printf String
