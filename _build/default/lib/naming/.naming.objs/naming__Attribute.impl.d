lib/naming/attribute.ml: Format List Printf String
