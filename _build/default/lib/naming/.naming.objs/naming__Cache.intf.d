lib/naming/cache.mli: Name
