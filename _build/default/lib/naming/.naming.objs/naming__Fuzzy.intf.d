lib/naming/fuzzy.mli:
