lib/naming/organisation.ml: Format Printf
