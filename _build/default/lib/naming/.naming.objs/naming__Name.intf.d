lib/naming/name.mli: Format
