lib/naming/directory.mli: Attribute Name
