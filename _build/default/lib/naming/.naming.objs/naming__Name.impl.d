lib/naming/name.ml: Format Hashtbl Printf String
