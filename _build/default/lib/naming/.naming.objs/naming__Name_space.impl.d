lib/naming/name_space.ml: Char Hashtbl Int64 List Name Printf Set String
