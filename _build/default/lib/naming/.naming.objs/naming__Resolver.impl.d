lib/naming/resolver.ml: Name Name_space Printf String
