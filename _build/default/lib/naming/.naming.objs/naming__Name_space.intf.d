lib/naming/name_space.mli: Name
