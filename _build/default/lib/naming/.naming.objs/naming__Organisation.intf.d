lib/naming/organisation.mli: Format
