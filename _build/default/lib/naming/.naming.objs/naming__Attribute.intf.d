lib/naming/attribute.mli: Format
