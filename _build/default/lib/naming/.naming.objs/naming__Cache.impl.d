lib/naming/cache.ml: Hashtbl Name
