(** Partitioned, replicated name space (§2).

    "The name space is partitioned into some easily manageable
    subspaces referred to as contexts and distributed among servers so
    that no server needs the complete knowledge of all names."

    A name space registers user names, groups them into contexts
    according to a partition scheme, and assigns each context an
    ordered list of authority servers (replicas).  Server identifiers
    are abstract integers supplied by the caller (they are
    {!Netsim.Graph.node}s in the full system). *)

type server = int

(** How names are grouped into contexts. *)
type scheme =
  | By_region  (** one context per region (coarse). *)
  | By_host  (** one context per (region, host) pair — design 1. *)
  | By_hash of int  (** [By_hash k]: k contexts per region, selected by
                        hashing the (region, user) pair — design 2;
                        deliberately host-independent. *)

type t

val create : scheme -> t

val scheme : t -> scheme

val context_of : t -> Name.t -> string
(** Context identifier a name belongs to (pure function of the scheme
    and the name). *)

val register : t -> Name.t -> unit
(** Add a name.  @raise Invalid_argument if already registered. *)

val unregister : t -> Name.t -> unit
(** Remove a name; unknown names are a no-op. *)

val mem : t -> Name.t -> bool
val names : t -> Name.t list
(** Sorted. *)

val names_in_context : t -> string -> Name.t list
val contexts : t -> string list
(** Contexts with at least one registered name, sorted. *)

val assign_context : t -> string -> server list -> unit
(** Set the ordered authority-server replica list for a context. *)

val servers_of_context : t -> string -> server list
(** Empty when unassigned. *)

val authority_servers : t -> Name.t -> server list
(** Replica list of the name's context. *)

val rebalance_hash : t -> k:int -> int
(** Switch a [By_hash _] space to [By_hash k]; returns how many
    registered names changed context (the reconfiguration cost of
    §3.2.3c "reallocation of load can be done by changing the hashing
    functions").
    @raise Invalid_argument when the current scheme is not [By_hash _]
    or [k <= 0]. *)

val hash_group : groups:int -> Name.t -> int
(** The FNV-1a based (region, user) hash used by [By_hash];
    exposed for the design-2 resolver and its tests. *)
