(** Hierarchical user names of the form ["region.host.user"] (§3.1.1).

    The region token is globally unique, the host token unique within
    its region, and the user token unique within its host.  Tokens are
    non-empty strings over [A–Z a–z 0–9 - _]; the ["."] delimiter
    separates them. *)

type t = private { region : string; host : string; user : string }

val make : region:string -> host:string -> user:string -> t
(** @raise Invalid_argument if any token is ill-formed. *)

val of_string : string -> (t, string) result
(** Parse ["region.host.user"]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse failure. *)

val to_string : t -> string

val region : t -> string
val host : t -> string
val user : t -> string

val valid_token : string -> bool

val with_host : t -> string -> t
(** [with_host n h] renames the host component — the §3.1.4 migration
    primitive for moves within a region. *)

val with_region : t -> region:string -> host:string -> t
(** Cross-region migration: both location components change. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit

(** Syntax-directed patterns: each component may be a literal token or
    the wildcard [*].  ["cs.*.*"] matches every name in region [cs]. *)
module Pattern : sig
  type name = t
  type t

  val of_string : string -> (t, string) result
  val of_string_exn : string -> t
  val to_string : t -> string
  val matches : t -> name -> bool
end
