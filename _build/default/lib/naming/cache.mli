(** LRU cache of name-resolution results (§4.1).

    The paper's efficiency criteria include "caching capability (i.e.,
    the capability of maintaining a list of both frequently and
    recently used names and addresses)".  A cache lives at one server
    and maps names to whatever resolution payload the system uses
    (typically an authority-server list); least-recently-used entries
    are evicted at capacity.  Hit/miss counts feed the C12
    experiment. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val find : 'a t -> Name.t -> 'a option
(** Look up and, on a hit, mark the entry most-recently used.
    Counts a hit or a miss. *)

val add : 'a t -> Name.t -> 'a -> unit
(** Insert or refresh; evicts the least-recently-used entry when
    full. *)

val invalidate : 'a t -> Name.t -> unit
(** Drop one entry (e.g. after a migration). *)

val clear : 'a t -> unit

val size : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int

val hit_rate : 'a t -> float
(** [nan] before any lookup. *)
