type profile = { name : Name.t; attrs : Attribute.attr list }

module NameMap = Map.Make (Name)

type t = {
  mutable store : profile NameMap.t;
  (* (key, lowercased text) -> names; candidates only, visibility is
     re-checked at evaluation time so the index never leaks. *)
  index : (string * string, Name.t list ref) Hashtbl.t;
}

let create () = { store = NameMap.empty; index = Hashtbl.create 64 }

let index_keys profile =
  List.filter_map
    (fun (a : Attribute.attr) ->
      match a.value with
      | Attribute.Text s -> Some (a.key, String.lowercase_ascii s)
      | Attribute.Number _ | Attribute.Keywords _ -> None)
    profile.attrs

let index_add t profile =
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.index key with
      | Some l -> l := profile.name :: !l
      | None -> Hashtbl.add t.index key (ref [ profile.name ]))
    (index_keys profile)

let index_remove t profile =
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.index key with
      | Some l -> l := List.filter (fun n -> not (Name.equal n profile.name)) !l
      | None -> ())
    (index_keys profile)

let add t profile =
  if NameMap.mem profile.name t.store then
    invalid_arg
      (Printf.sprintf "Directory.add: %s already present" (Name.to_string profile.name));
  t.store <- NameMap.add profile.name profile t.store;
  index_add t profile

let remove t name =
  match NameMap.find_opt name t.store with
  | None -> ()
  | Some profile ->
      index_remove t profile;
      t.store <- NameMap.remove name t.store

let update t profile =
  remove t profile.name;
  add t profile

let find t name = NameMap.find_opt name t.store

let size t = NameMap.cardinal t.store

let profiles t = List.map snd (NameMap.bindings t.store)

type answer = { matches : Name.t list; examined : int }

let rec indexable (pred : Attribute.pred) =
  match pred with
  | Attribute.Eq (k, Attribute.Text v) -> Some (k, String.lowercase_ascii v)
  | Attribute.And preds -> List.find_map indexable preds
  | Attribute.Eq _ | Attribute.Has_key _ | Attribute.Text_prefix _
  | Attribute.Text_contains _ | Attribute.Has_keyword _ | Attribute.Between _
  | Attribute.Or _ | Attribute.Not _ ->
      None

let fuzzy_query t ~viewer ~key ?(max_distance = 2) query =
  profiles t
  |> List.filter_map (fun p ->
         let best =
           List.fold_left
             (fun acc (a : Attribute.attr) ->
               match a.value with
               | Attribute.Text s
                 when String.equal a.key key && Attribute.visible_to viewer a ->
                   let d = Fuzzy.edit_distance query s in
                   if d <= max_distance then
                     match acc with
                     | Some best when best <= d -> acc
                     | Some _ | None -> Some d
                   else acc
               | Attribute.Text _ | Attribute.Number _ | Attribute.Keywords _ -> acc)
             None p.attrs
         in
         Option.map (fun d -> (p.name, d)) best)
  |> List.stable_sort (fun (n1, d1) (n2, d2) ->
         match Int.compare d1 d2 with 0 -> Name.compare n1 n2 | c -> c)

let query t ~viewer pred =
  let candidates =
    match indexable pred with
    | Some key -> (
        match Hashtbl.find_opt t.index key with
        | Some l -> List.filter_map (fun n -> NameMap.find_opt n t.store) !l
        | None -> [])
    | None -> profiles t
  in
  let examined = List.length candidates in
  let matches =
    candidates
    |> List.filter (fun p -> Attribute.matches ~viewer ~attrs:p.attrs pred)
    |> List.map (fun p -> p.name)
    |> List.sort_uniq Name.compare
  in
  { matches; examined }
