let edit_distance a b =
  let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* Two-row dynamic programme. *)
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let similar ?(max_distance = 2) a b = edit_distance a b <= max_distance

let best_matches ?(limit = 5) ?(max_distance = 2) ~candidates query =
  candidates
  |> List.filter_map (fun c ->
         let d = edit_distance query c in
         if d <= max_distance then Some (c, d) else None)
  |> List.stable_sort (fun (_, d1) (_, d2) -> Int.compare d1 d2)
  |> List.filteri (fun i _ -> i < limit)
