type org = Centralized | Fully_replicated | Partitioned of int

type estimate = {
  storage_fraction : float;
  lookup_messages : float;
  update_messages : float;
  availability : float;
}

let estimate org ~servers ~server_availability ~local_fraction =
  if servers <= 0 then invalid_arg "Organisation.estimate: servers <= 0";
  let check_prob what p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Organisation.estimate: %s outside [0,1]" what)
  in
  check_prob "server_availability" server_availability;
  check_prob "local_fraction" local_fraction;
  let p = server_availability in
  match org with
  | Centralized ->
      {
        (* One server stores everything; every lookup and update is a
           round trip to it; it is a single point of failure. *)
        storage_fraction = 1.;
        lookup_messages = 2.;
        update_messages = 2.;
        availability = p;
      }
  | Fully_replicated ->
      {
        (* Any local server answers directly, but updates must reach
           every replica and each stores the whole database. *)
        storage_fraction = 1.;
        lookup_messages = 0.;
        update_messages = 2. *. float_of_int servers;
        availability = 1. -. ((1. -. p) ** float_of_int servers);
      }
  | Partitioned r ->
      if r < 1 || r > servers then
        invalid_arg "Organisation.estimate: replication outside [1, servers]";
      {
        (* Each name lives on r of the servers.  A local-partition
           lookup is answered in place; a remote one costs a forward
           and a reply.  Updates touch the r replicas. *)
        storage_fraction = float_of_int r /. float_of_int servers;
        lookup_messages = 2. *. (1. -. local_fraction);
        update_messages = 2. *. float_of_int r;
        availability = 1. -. ((1. -. p) ** float_of_int r);
      }

let pp ppf e =
  Format.fprintf ppf
    "storage/server %.2f, lookup msgs %.2f, update msgs %.2f, availability %.4f"
    e.storage_fraction e.lookup_messages e.update_messages e.availability
