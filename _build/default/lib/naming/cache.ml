(* Classic LRU: hash table into an intrusive doubly-linked recency
   list, most-recently-used at the head. *)

type 'a node = {
  key : Name.t;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (Name.t, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recent *)
  mutable tail : 'a node option;  (* least recent *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity <= 0";
  { cap = capacity; table = Hashtbl.create capacity; head = None; tail = None; hits = 0; misses = 0 }

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n
  | None ->
      if Hashtbl.length t.table >= t.cap then begin
        match t.tail with
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key
        | None -> ()
      end;
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n

let invalidate t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table key
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let size t = Hashtbl.length t.table
let capacity t = t.cap
let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then nan else float_of_int t.hits /. float_of_int total
