type value = Text of string | Number of float | Keywords of string list

type visibility = Public | Org of string | Private

type attr = { key : string; value : value; visibility : visibility }

let attr ?(visibility = Public) key value =
  if String.length key = 0 then invalid_arg "Attribute.attr: empty key";
  { key; value; visibility }

let text ?visibility key s = attr ?visibility key (Text s)
let number ?visibility key f = attr ?visibility key (Number f)
let keywords ?visibility key ws = attr ?visibility key (Keywords ws)

type viewer = { org : string option; is_self : bool }

let anyone = { org = None; is_self = false }
let member_of org = { org = Some org; is_self = false }

let visible_to viewer a =
  viewer.is_self
  ||
  match a.visibility with
  | Public -> true
  | Org o -> ( match viewer.org with Some vo -> String.equal vo o | None -> false)
  | Private -> false

type pred =
  | Eq of string * value
  | Has_key of string
  | Text_prefix of string * string
  | Text_contains of string * string
  | Has_keyword of string * string
  | Between of string * float * float
  | And of pred list
  | Or of pred list
  | Not of pred

let value_equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Number x, Number y -> x = y
  | Keywords x, Keywords y ->
      List.length x = List.length y && List.for_all2 String.equal x y
  | (Text _ | Number _ | Keywords _), _ -> false

let lowercase = String.lowercase_ascii

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let rec scan i = i + n <= m && (String.equal sub (String.sub s i n) || scan (i + 1)) in
    scan 0
  end

let rec matches ~viewer ~attrs pred =
  let visible = List.filter (visible_to viewer) attrs in
  let with_key key f = List.exists (fun a -> String.equal a.key key && f a.value) visible in
  match pred with
  | Eq (key, v) -> with_key key (fun v' -> value_equal v v')
  | Has_key key -> with_key key (fun _ -> true)
  | Text_prefix (key, p) ->
      with_key key (function
        | Text s -> is_prefix ~prefix:(lowercase p) (lowercase s)
        | Number _ | Keywords _ -> false)
  | Text_contains (key, sub) ->
      with_key key (function
        | Text s -> contains_sub ~sub:(lowercase sub) (lowercase s)
        | Number _ | Keywords _ -> false)
  | Has_keyword (key, word) ->
      with_key key (function
        | Keywords ws -> List.exists (fun w -> String.equal (lowercase w) (lowercase word)) ws
        | Text _ | Number _ -> false)
  | Between (key, lo, hi) ->
      with_key key (function
        | Number x -> lo <= x && x <= hi
        | Text _ | Keywords _ -> false)
  | And preds -> List.for_all (fun p -> matches ~viewer ~attrs p) preds
  | Or preds -> List.exists (fun p -> matches ~viewer ~attrs p) preds
  | Not p -> not (matches ~viewer ~attrs p)

let pp_value ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Number f -> Format.fprintf ppf "%g" f
  | Keywords ws ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Format.pp_print_string)
        ws

let pp_attr ppf a =
  let vis =
    match a.visibility with
    | Public -> ""
    | Org o -> Printf.sprintf " [org:%s]" o
    | Private -> " [private]"
  in
  Format.fprintf ppf "%s=%a%s" a.key pp_value a.value vis

let rec pp_pred ppf = function
  | Eq (k, v) -> Format.fprintf ppf "%s = %a" k pp_value v
  | Has_key k -> Format.fprintf ppf "has(%s)" k
  | Text_prefix (k, p) -> Format.fprintf ppf "%s =~ %S*" k p
  | Text_contains (k, s) -> Format.fprintf ppf "%s =~ *%S*" k s
  | Has_keyword (k, w) -> Format.fprintf ppf "%s ∋ %S" k w
  | Between (k, lo, hi) -> Format.fprintf ppf "%g <= %s <= %g" lo k hi
  | And ps -> pp_compound ppf "and" ps
  | Or ps -> pp_compound ppf "or" ps
  | Not p -> Format.fprintf ppf "not (%a)" pp_pred p

and pp_compound ppf op ps =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " %s " op)
       pp_pred)
    ps
