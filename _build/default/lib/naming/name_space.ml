type server = int

type scheme = By_region | By_host | By_hash of int

module NameSet = Set.Make (Name)

type t = {
  mutable scheme : scheme;
  mutable names : NameSet.t;
  assignments : (string, server list) Hashtbl.t;
}

(* FNV-1a over the bytes of a string, folded into [0, groups). The
   host component is deliberately excluded so that names stay in the
   same context when a user's primary host changes within a region
   (design 2 requirement). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let hash_group ~groups name =
  if groups <= 0 then invalid_arg "Name_space.hash_group: groups <= 0";
  let key = Name.region name ^ "\x00" ^ Name.user name in
  let h = fnv1a key in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int groups))

let create scheme = { scheme; names = NameSet.empty; assignments = Hashtbl.create 16 }

let scheme t = t.scheme

let context_of t name =
  match t.scheme with
  | By_region -> Name.region name
  | By_host -> Name.region name ^ "/" ^ Name.host name
  | By_hash k -> Printf.sprintf "%s/g%d" (Name.region name) (hash_group ~groups:k name)

let register t name =
  if NameSet.mem name t.names then
    invalid_arg (Printf.sprintf "Name_space.register: %s already registered" (Name.to_string name));
  t.names <- NameSet.add name t.names

let unregister t name = t.names <- NameSet.remove name t.names

let mem t name = NameSet.mem name t.names

let names t = NameSet.elements t.names

let names_in_context t ctx =
  List.filter (fun n -> String.equal (context_of t n) ctx) (names t)

let contexts t =
  names t |> List.map (context_of t) |> List.sort_uniq String.compare

let assign_context t ctx servers = Hashtbl.replace t.assignments ctx servers

let servers_of_context t ctx =
  match Hashtbl.find_opt t.assignments ctx with Some l -> l | None -> []

let authority_servers t name = servers_of_context t (context_of t name)

let rebalance_hash t ~k =
  if k <= 0 then invalid_arg "Name_space.rebalance_hash: k <= 0";
  match t.scheme with
  | By_region | By_host ->
      invalid_arg "Name_space.rebalance_hash: scheme is not By_hash"
  | By_hash _ ->
      let old_ctx = List.map (fun n -> (n, context_of t n)) (names t) in
      t.scheme <- By_hash k;
      List.length
        (List.filter (fun (n, c) -> not (String.equal (context_of t n) c)) old_ctx)
