(** Approximate string matching for directory look-up (§3.3.1).

    "In attribute-based mail system, users are allowed to provide
    aliases, nicknames or some possible misspellings of the names" —
    the directory must find intended recipients despite typos.  This
    module provides case-insensitive Levenshtein distance and ranked
    candidate selection. *)

val edit_distance : string -> string -> int
(** Case-insensitive Levenshtein distance (unit costs for insert,
    delete, substitute). *)

val similar : ?max_distance:int -> string -> string -> bool
(** [similar a b] iff the distance is at most [max_distance]
    (default 2). *)

val best_matches :
  ?limit:int -> ?max_distance:int -> candidates:string list -> string -> (string * int) list
(** Candidates within [max_distance] (default 2) of the query, closest
    first (ties in input order), at most [limit] (default 5). *)
