(** The §2 name-service organisation trade-offs, quantified.

    The paper weighs three ways of holding the name database:
    a {e centralised} single server ("not very reliable because the
    server may fail"), {e full replication} ("too cumbersome to be
    stored everywhere … problems concerning the storage, updates and
    consistency"), and the {e partitioned + partially replicated}
    organisation it adopts.  This module turns that prose into a small
    analytic model so the trade-off curve can be tabulated (bench C9):
    per-server storage fraction, expected messages per lookup and per
    update, and lookup availability. *)

type org =
  | Centralized  (** one name server holds everything. *)
  | Fully_replicated  (** every server holds everything. *)
  | Partitioned of int
      (** [Partitioned r]: names partitioned across servers and
          replicated on [r] of them (the paper's choice; [r] is the
          authority-list length). *)

type estimate = {
  storage_fraction : float;
      (** fraction of the whole name database each participating
          server stores. *)
  lookup_messages : float;
      (** expected server-to-server messages to resolve one name. *)
  update_messages : float;
      (** messages to register/remove one name consistently. *)
  availability : float;
      (** probability a lookup finds some live authoritative server,
          given each server is independently up with probability
          [server_availability]. *)
}

val estimate :
  org ->
  servers:int ->
  server_availability:float ->
  local_fraction:float ->
  estimate
(** [local_fraction] is the share of lookups whose target partition is
    co-located with the asking server (within-region traffic); only
    the partitioned organisation distinguishes it.
    @raise Invalid_argument if [servers <= 0], a probability is
    outside [0,1], or [Partitioned r] has [r] outside [1, servers]. *)

val pp : Format.formatter -> estimate -> unit
