(** Per-server attribute directory (§3.3).

    Stores user profiles (name + attributes) and answers attribute
    queries, respecting attribute visibility.  An inverted index on
    exact [(key, Text value)] pairs accelerates the common
    directory-lookup queries; other predicates fall back to a scan.
    Every query reports how many profiles were examined — the
    "processing cost for searching the databases" used in the cost
    estimates of §3.3.B. *)

type profile = { name : Name.t; attrs : Attribute.attr list }

type t

val create : unit -> t

val add : t -> profile -> unit
(** @raise Invalid_argument if the name is already present. *)

val remove : t -> Name.t -> unit
(** Unknown names are a no-op. *)

val update : t -> profile -> unit
(** Replace (or insert) the profile for [profile.name]. *)

val find : t -> Name.t -> profile option

val size : t -> int

val profiles : t -> profile list
(** Sorted by name. *)

(** Result of a query: matching names plus the scan cost. *)
type answer = { matches : Name.t list; examined : int }

val query : t -> viewer:Attribute.viewer -> Attribute.pred -> answer
(** [matches] is sorted.  [examined] counts profiles evaluated: with
    an indexable predicate (a top-level [Eq (k, Text v)], or an [And]
    containing one) only the index bucket is examined. *)

val indexable : Attribute.pred -> (string * string) option
(** The [(key, text)] pair the index can serve, if any; exposed for
    tests. *)

val fuzzy_query :
  t ->
  viewer:Attribute.viewer ->
  key:string ->
  ?max_distance:int ->
  string ->
  (Name.t * int) list
(** Directory look-up tolerant of misspellings (§3.3.1): profiles
    whose visible [Text] attribute under [key] is within edit distance
    [max_distance] (default 2) of the query, ranked closest first
    (ties by name). *)
