(** Weighted undirected graphs describing network topologies.

    Nodes are dense integer identifiers assigned in creation order,
    each carrying a kind (host, server, gateway, relay), a free-form
    label, and the name of the region it belongs to.  Edges carry a
    strictly positive weight interpreted as the one-way communication
    time of the link, as in the paper's cost model. *)

type node = int

type kind = Host | Server | Gateway | Relay

type t

val create : unit -> t

val add_node : ?label:string -> ?kind:kind -> ?region:string -> t -> node
(** Appends a node.  Defaults: [kind = Relay], [region = ""], label
    generated from the id. *)

val add_edge : t -> node -> node -> float -> unit
(** [add_edge g u v w] links [u] and [v] with weight [w].
    @raise Invalid_argument if [u = v], if the weight is not positive
    and finite, if either endpoint is unknown, or if the edge already
    exists. *)

val node_count : t -> int
val edge_count : t -> int

val nodes : t -> node list
(** In id order. *)

val nodes_of_kind : t -> kind -> node list
val nodes_in_region : t -> string -> node list
val regions : t -> string list
(** Distinct region names, sorted. *)

val kind : t -> node -> kind
val label : t -> node -> string
val region : t -> node -> string

val mem_node : t -> node -> bool
val mem_edge : t -> node -> node -> bool

val weight : t -> node -> node -> float option
(** Weight of the direct edge, if present. *)

val neighbors : t -> node -> (node * float) list
(** Adjacent nodes with edge weights, ascending node id. *)

val degree : t -> node -> int

val edges : t -> (node * node * float) list
(** Each undirected edge once, with [u < v], sorted. *)

val total_weight : t -> float
(** Sum of all edge weights. *)

val is_connected : t -> bool
(** True for the empty graph and any graph where every node is
    reachable from node 0. *)

val subgraph : t -> node list -> t * (node -> node option)
(** [subgraph g keep] is the induced subgraph on [keep], plus the
    mapping from old to new node ids. *)

val pp : Format.formatter -> t -> unit
(** Human-readable adjacency dump (used for Figure 1). *)
