lib/netsim/shortest_path.mli: Graph
