lib/netsim/net.mli: Dsim Graph
