lib/netsim/topology.mli: Dsim Graph
