lib/netsim/topology.ml: Array Dsim Graph List Printf String
