lib/netsim/failure.ml: Dsim Float Graph List Net
