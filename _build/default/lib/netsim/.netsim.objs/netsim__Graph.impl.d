lib/netsim/graph.ml: Array Float Format Fun Hashtbl Int List Printf String
