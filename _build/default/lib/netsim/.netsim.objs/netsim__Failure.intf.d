lib/netsim/failure.mli: Dsim Graph Net
