lib/netsim/net.ml: Array Dsim Graph List Printf Shortest_path
