lib/netsim/shortest_path.ml: Array Dsim Float Graph List
