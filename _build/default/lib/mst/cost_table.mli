(** Broadcast cost estimation and flow control (§3.3.B).

    "When an MST is generated …, a table listing the costs for
    delivery to the targeted recipients in each region can be
    generated.  The user who is interested in broadcasting mail then
    can choose the regions he wants to send his mail to, based on the
    cost table."

    Costs decompose per region into the backbone communication cost of
    reaching it from the source region and the local cost of
    distributing over the region's own MST. *)

type entry = {
  region : string;
  backbone_cost : float;
      (** weight of the backbone-MST path from the source region. *)
  local_cost : float;  (** weight of the region's local MST. *)
  entry_total : float;
}

type t = { source : string; entries : entry list (** sorted by region. *) }

val build : Backbone.t -> source:string -> t
(** @raise Invalid_argument if [source] is not one of the backbone's
    regions. *)

val estimate : t -> regions:string list -> float
(** Total estimated cost of broadcasting to the given target regions
    (the source region's own local cost is included when listed).
    Unknown regions raise [Invalid_argument]. *)

val affordable : t -> budget:float -> string list
(** Greedy flow-control helper: the cheapest-first maximal set of
    regions whose cumulative estimate stays within [budget]. *)

val pp : Format.formatter -> t -> unit
