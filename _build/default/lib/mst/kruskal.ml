type result = {
  edges : (Netsim.Graph.node * Netsim.Graph.node * float) list;
  total_weight : float;
  components : int;
}

(* Union-find with path compression and union by rank. *)
module Uf = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

  let rec find t v =
    if t.parent.(v) = v then v
    else begin
      let root = find t t.parent.(v) in
      t.parent.(v) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then false
    else begin
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1
      end;
      true
    end
end

let run g =
  let n = Netsim.Graph.node_count g in
  let uf = Uf.create n in
  let sorted =
    Netsim.Graph.edges g
    |> List.map (fun (u, v, w) -> Edge_id.make u v w)
    |> List.sort Edge_id.compare
  in
  let edges =
    List.filter_map
      (fun (e : Edge_id.t) ->
        if Uf.union uf e.lo e.hi then Some (e.lo, e.hi, e.w) else None)
      sorted
  in
  let components =
    if n = 0 then 0
    else
      List.sort_uniq Int.compare (List.init n (Uf.find uf)) |> List.length
  in
  {
    edges;
    total_weight = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. edges;
    components;
  }
