type stats = {
  messages : int;
  link_crossings : int;
  reached : int;
  completion_time : float;
}

let tree_adjacency tree =
  let adj = Hashtbl.create 32 in
  (* Dedupe: a node pair may appear both as a local-tree edge and as a
     virtual backbone edge — the first (local) weight wins. *)
  let link u v w =
    let l = try Hashtbl.find adj u with Not_found -> [] in
    if not (List.mem_assoc v l) then Hashtbl.replace adj u ((v, w) :: l)
  in
  List.iter
    (fun (u, v, w) ->
      link u v w;
      link v u w)
    tree;
  adj

let check_root g root =
  if not (Netsim.Graph.mem_node g root) then invalid_arg "Broadcast: unknown root"

(* Send over one tree edge: a real link when adjacent, otherwise
   routed over the network (virtual backbone edge). *)
let send_edge net ~src ~dst msg =
  if Netsim.Graph.mem_edge (Netsim.Net.graph net) src dst then
    ignore (Netsim.Net.send_neighbor net ~src ~dst msg)
  else ignore (Netsim.Net.send net ~src ~dst msg)

type bcast_msg = Payload

let broadcast ?(failed = []) g ~tree ~root =
  check_root g root;
  let adj = tree_adjacency tree in
  let engine = Dsim.Engine.create () in
  let net = Netsim.Net.create ~engine g in
  List.iter (fun v -> Netsim.Net.set_down net v) failed;
  let reached = Hashtbl.create 32 in
  let last = ref 0. in
  let children v parent =
    (try Hashtbl.find adj v with Not_found -> [])
    |> List.filter (fun (u, _) -> Some u <> parent)
  in
  let forward v parent =
    if not (Hashtbl.mem reached v) then begin
      Hashtbl.replace reached v ();
      last := Dsim.Engine.now engine;
      List.iter (fun (u, _) -> send_edge net ~src:v ~dst:u Payload) (children v parent)
    end
  in
  List.iter
    (fun v ->
      Netsim.Net.set_handler net v (fun ~time:_ ~src (Payload : bcast_msg) ->
          forward v (Some src)))
    (Netsim.Graph.nodes g);
  if not (List.mem root failed) then
    ignore (Dsim.Engine.schedule_at engine 0. (fun () -> forward root None));
  Dsim.Engine.run engine;
  {
    messages = Netsim.Net.messages_sent net;
    link_crossings = Netsim.Net.hops_traversed net;
    reached = Hashtbl.length reached;
    completion_time = !last;
  }

let flood ?(failed = []) g ~root =
  check_root g root;
  let engine = Dsim.Engine.create () in
  let net = Netsim.Net.create ~engine g in
  List.iter (fun v -> Netsim.Net.set_down net v) failed;
  let reached = Hashtbl.create 32 in
  let last = ref 0. in
  let forward v except =
    if not (Hashtbl.mem reached v) then begin
      Hashtbl.replace reached v ();
      last := Dsim.Engine.now engine;
      List.iter
        (fun (u, _) ->
          if Some u <> except then
            ignore (Netsim.Net.send_neighbor net ~src:v ~dst:u Payload))
        (Netsim.Graph.neighbors g v)
    end
  in
  List.iter
    (fun v ->
      Netsim.Net.set_handler net v (fun ~time:_ ~src (Payload : bcast_msg) ->
          forward v (Some src)))
    (Netsim.Graph.nodes g);
  if not (List.mem root failed) then
    ignore (Dsim.Engine.schedule_at engine 0. (fun () -> forward root None));
  Dsim.Engine.run engine;
  {
    messages = Netsim.Net.messages_sent net;
    link_crossings = Netsim.Net.hops_traversed net;
    reached = Hashtbl.length reached;
    completion_time = !last;
  }

type gather = {
  total : int;
  responded : int;
  timed_out_children : int;
  g_messages : int;
  g_link_crossings : int;
  g_completion_time : float;
}

type cc_msg =
  | Query of float  (* remaining timeout budget at the receiver *)
  | Reply of int * int  (* partial sum, responder count *)

type cc_state = {
  mutable pending : int;
  mutable sum : int;
  mutable responders : int;
  mutable parent : Netsim.Graph.node option;
  mutable sent_up : bool;
  mutable queried : bool;
}

let convergecast ?(failed = []) ?timeout g ~tree ~root ~value =
  check_root g root;
  let adj = tree_adjacency tree in
  let tree_weight = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. tree in
  let timeout = match timeout with Some t -> t | None -> (4. *. tree_weight) +. 1. in
  let engine = Dsim.Engine.create () in
  let net = Netsim.Net.create ~engine g in
  List.iter (fun v -> Netsim.Net.set_down net v) failed;
  let n = Netsim.Graph.node_count g in
  let states =
    Array.init n (fun _ ->
        { pending = 0; sum = 0; responders = 0; parent = None; sent_up = false; queried = false })
  in
  let timed_out = ref 0 in
  let root_result = ref None in
  let finish = ref 0. in
  let children v parent =
    (try Hashtbl.find adj v with Not_found -> [])
    |> List.filter (fun (u, _) -> Some u <> parent)
  in
  let send_up v =
    let st = states.(v) in
    if not st.sent_up then begin
      st.sent_up <- true;
      timed_out := !timed_out + st.pending;
      let sum = st.sum + value v and responders = st.responders + 1 in
      match st.parent with
      | Some p -> send_edge net ~src:v ~dst:p (Reply (sum, responders))
      | None ->
          root_result := Some (sum, responders);
          finish := Dsim.Engine.now engine
    end
  in
  let on_query v parent ~budget =
    let st = states.(v) in
    if st.queried then begin
      (* The overlay may contain redundant edges (virtual backbone
         links paralleling local-tree paths); answer duplicate
         queries immediately with an empty summary so the second
         parent neither waits nor double-counts. *)
      match parent with
      | Some p when st.parent <> parent -> send_edge net ~src:v ~dst:p (Reply (0, 0))
      | _ -> ()
    end
    else begin
    st.queried <- true;
    st.parent <- parent;
    let kids = children v parent in
    st.pending <- List.length kids;
    if kids = [] then send_up v
    else begin
      (* A child's budget shrinks by the round trip over its edge (plus
         a sliver of slack), so a timed-out child's partial summary
         still arrives before this node's own deadline fires. *)
      List.iter
        (fun (u, w) ->
          let child_budget = Float.max 0.001 (budget -. (2. *. w) -. 1e-6) in
          send_edge net ~src:v ~dst:u (Query child_budget))
        kids;
      ignore
        (Dsim.Engine.schedule_after engine budget (fun () ->
             if not st.sent_up then send_up v))
    end
    end
  in
  let on_reply v sum responders =
    let st = states.(v) in
    if not st.sent_up then begin
      st.sum <- st.sum + sum;
      st.responders <- st.responders + responders;
      st.pending <- st.pending - 1;
      if st.pending = 0 then send_up v
    end
  in
  List.iter
    (fun v ->
      Netsim.Net.set_handler net v (fun ~time:_ ~src msg ->
          match msg with
          | Query budget -> on_query v (Some src) ~budget
          | Reply (sum, responders) -> on_reply v sum responders))
    (Netsim.Graph.nodes g);
  if not (List.mem root failed) then
    ignore (Dsim.Engine.schedule_at engine 0. (fun () -> on_query root None ~budget:timeout));
  Dsim.Engine.run engine;
  let total, responded = match !root_result with Some (s, r) -> (s, r) | None -> (0, 0) in
  {
    total;
    responded;
    timed_out_children = !timed_out;
    g_messages = Netsim.Net.messages_sent net;
    g_link_crossings = Netsim.Net.hops_traversed net;
    g_completion_time = !finish;
  }
