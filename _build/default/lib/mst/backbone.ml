type t = {
  border_nodes : (string * Netsim.Graph.node list) list;
  backbone : (Netsim.Graph.node * Netsim.Graph.node * float) list;
  locals : (string * (Netsim.Graph.node * Netsim.Graph.node * float) list) list;
  backbone_weight : float;
  local_weight : float;
  total_weight : float;
  messages : int;
}

let weight_of edges = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. edges

(* Nodes with at least one link into a different region. *)
let border_nodes_of g =
  Netsim.Graph.regions g
  |> List.map (fun r ->
         let borders =
           List.filter
             (fun v ->
               List.exists
                 (fun (u, _) -> not (String.equal (Netsim.Graph.region g u) r))
                 (Netsim.Graph.neighbors g v))
             (Netsim.Graph.nodes_in_region g r)
         in
         (r, borders))
  |> List.filter (fun (_, b) -> b <> [])

let run_mst ~distributed g =
  if distributed then begin
    let r = Ghs.run g in
    (r.Ghs.edges, r.Ghs.messages)
  end
  else begin
    let r = Kruskal.run g in
    if r.Kruskal.components > 1 then invalid_arg "Backbone: disconnected subgraph";
    (r.Kruskal.edges, 0)
  end

(* Map the edges of a subgraph MST back to original node ids via the
   inverse of the subgraph mapping. *)
let map_back ~inverse edges =
  List.map (fun (u, v, w) -> (inverse.(u), inverse.(v), w)) edges

let inverse_of g sub mapping =
  let inv = Array.make (Netsim.Graph.node_count sub) (-1) in
  List.iter
    (fun v -> match mapping v with Some v' -> inv.(v') <- v | None -> ())
    (Netsim.Graph.nodes g);
  inv

let build ?(distributed = true) g =
  let regions = Netsim.Graph.regions g in
  if regions = [] then invalid_arg "Backbone.build: graph has no nodes";
  let borders = border_nodes_of g in
  (* Local MSTs on each region's induced subgraph. *)
  let messages = ref 0 in
  let locals =
    List.map
      (fun r ->
        let members = Netsim.Graph.nodes_in_region g r in
        let sub, mapping = Netsim.Graph.subgraph g members in
        if not (Netsim.Graph.is_connected sub) then
          invalid_arg (Printf.sprintf "Backbone.build: region %s is disconnected" r);
        let inverse = inverse_of g sub mapping in
        let edges, msgs = run_mst ~distributed sub in
        messages := !messages + msgs;
        (r, map_back ~inverse edges))
      regions
  in
  (* Backbone graph: border nodes; real inter-region edges plus
     virtual same-region edges weighted by intra-region distance. *)
  let all_borders = List.concat_map snd borders in
  let backbone =
    if List.length regions <= 1 || all_borders = [] then []
    else begin
      let bg = Netsim.Graph.create () in
      let to_bg = Hashtbl.create 16 in
      let from_bg = Hashtbl.create 16 in
      List.iter
        (fun v ->
          let v' =
            Netsim.Graph.add_node ~label:(Netsim.Graph.label g v)
              ~kind:(Netsim.Graph.kind g v) ~region:(Netsim.Graph.region g v) bg
          in
          Hashtbl.add to_bg v v';
          Hashtbl.add from_bg v' v)
        all_borders;
      (* Real inter-region links between border nodes. *)
      List.iter
        (fun (u, v, w) ->
          match (Hashtbl.find_opt to_bg u, Hashtbl.find_opt to_bg v) with
          | Some u', Some v'
            when not
                   (String.equal (Netsim.Graph.region g u) (Netsim.Graph.region g v))
            ->
              if not (Netsim.Graph.mem_edge bg u' v') then
                Netsim.Graph.add_edge bg u' v' w
          | _ -> ())
        (Netsim.Graph.edges g);
      (* Virtual intra-region edges: shortest path inside the region. *)
      List.iter
        (fun (r, bs) ->
          let members = Netsim.Graph.nodes_in_region g r in
          let sub, mapping = Netsim.Graph.subgraph g members in
          let rec pairs = function
            | [] -> []
            | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
          in
          List.iter
            (fun (a, b) ->
              match (mapping a, mapping b) with
              | Some a', Some b' ->
                  let tree = Netsim.Shortest_path.dijkstra sub a' in
                  let d = Netsim.Shortest_path.distance tree b' in
                  if Float.is_finite d && d > 0. then begin
                    let ba = Hashtbl.find to_bg a and bb = Hashtbl.find to_bg b in
                    if not (Netsim.Graph.mem_edge bg ba bb) then
                      Netsim.Graph.add_edge bg ba bb d
                  end
              | _ -> ())
            (pairs bs))
        borders;
      if not (Netsim.Graph.is_connected bg) then
        invalid_arg "Backbone.build: backbone graph is disconnected";
      let edges, msgs = run_mst ~distributed bg in
      messages := !messages + msgs;
      List.map
        (fun (u, v, w) -> (Hashtbl.find from_bg u, Hashtbl.find from_bg v, w))
        edges
    end
  in
  let backbone_weight = weight_of backbone in
  let local_weight = List.fold_left (fun acc (_, es) -> acc +. weight_of es) 0. locals in
  {
    border_nodes = borders;
    backbone;
    locals;
    backbone_weight;
    local_weight;
    total_weight = backbone_weight +. local_weight;
    messages = !messages;
  }

let flat_mst g = Kruskal.run g

let spans_all g t =
  let n = Netsim.Graph.node_count g in
  if n = 0 then true
  else begin
    (* Union-find over local + backbone edges. *)
    let parent = Array.init n Fun.id in
    let rec find v = if parent.(v) = v then v else (parent.(v) <- find parent.(v); parent.(v)) in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then parent.(ra) <- rb
    in
    List.iter (fun (_, es) -> List.iter (fun (u, v, _) -> union u v) es) t.locals;
    List.iter (fun (u, v, _) -> union u v) t.backbone;
    let root = find 0 in
    List.for_all (fun v -> find v = root) (Netsim.Graph.nodes g)
  end

let pp g ppf t =
  let label = Netsim.Graph.label g in
  let pp_edge ppf (u, v, w) = Format.fprintf ppf "%s -- %s (%g)" (label u) (label v) w in
  Format.fprintf ppf "@[<v>backbone MST (weight %.3f):@ " t.backbone_weight;
  List.iter (fun e -> Format.fprintf ppf "  %a@ " pp_edge e) t.backbone;
  List.iter
    (fun (r, es) ->
      Format.fprintf ppf "local MST of %s (weight %.3f):@ " r (weight_of es);
      List.iter (fun e -> Format.fprintf ppf "  %a@ " pp_edge e) es)
    t.locals;
  Format.fprintf ppf "total weight: %.3f@]" t.total_weight
