(** Broadcasting and response collection over a spanning tree
    (§3.3.A–B), simulated on the event engine.

    [broadcast] pushes a message from the root down a given tree;
    [flood] is the naive baseline where every node forwards to all
    neighbours on first receipt; [convergecast] performs the paper's
    query/summary pattern: "upon receiving a request from the parent
    node in the MST, each node sends the message to its children
    nodes, and waits for the messages to come back from all the
    children nodes.  It then combines them into a single summary
    message and returns it to its parent node", with parents timing
    out on dead children. *)

type stats = {
  messages : int;  (** messages sent (one per tree/flood forwarding). *)
  link_crossings : int;  (** physical links traversed by delivered
                             messages — the traffic measure used in
                             experiment C3.  Virtual backbone edges
                             expand into their real multi-hop paths. *)
  reached : int;  (** distinct nodes that received the payload
                      (including the root). *)
  completion_time : float;  (** virtual time of the last delivery. *)
}

val broadcast :
  ?failed:Netsim.Graph.node list ->
  Netsim.Graph.t ->
  tree:(Netsim.Graph.node * Netsim.Graph.node * float) list ->
  root:Netsim.Graph.node ->
  stats
(** Failed nodes neither receive nor forward; their subtrees are cut
    off.  Tree edges between non-adjacent nodes (the backbone's
    virtual intra-region edges) are routed over the real network.
    @raise Invalid_argument if [root] is unknown. *)

val flood : ?failed:Netsim.Graph.node list -> Netsim.Graph.t -> root:Netsim.Graph.node -> stats

(** Result of a convergecast search. *)
type gather = {
  total : int;  (** sum of per-node values over responding nodes. *)
  responded : int;  (** nodes whose value made it into the total. *)
  timed_out_children : int;  (** child links a parent gave up waiting on
                                 ("the unavailable estimates can be
                                 marked so"). *)
  g_messages : int;
  g_link_crossings : int;
  g_completion_time : float;
}

val convergecast :
  ?failed:Netsim.Graph.node list ->
  ?timeout:float ->
  Netsim.Graph.t ->
  tree:(Netsim.Graph.node * Netsim.Graph.node * float) list ->
  root:Netsim.Graph.node ->
  value:(Netsim.Graph.node -> int) ->
  gather
(** Default [timeout]: four times the total tree weight plus one —
    generous enough never to fire without failures. *)
