(** Centralised MST baselines: Kruskal with union-find, used as the
    reference against which the distributed GHS run is checked. *)

type result = {
  edges : (Netsim.Graph.node * Netsim.Graph.node * float) list;
      (** MST edges, each with [u < v], sorted by {!Edge_id} order. *)
  total_weight : float;
  components : int;  (** 1 for a connected input — otherwise a minimum
                         spanning forest was produced. *)
}

val run : Netsim.Graph.t -> result
(** Ties broken by {!Edge_id.compare}, so the result is unique and
    identical to the GHS tree. *)
