(** The paper's modification of the MST algorithm (§3.3.A.ii, Fig. 2):
    a {e backbone MST} connecting the regions, formed over the nodes
    that have direct links into other regions, plus a {e local MST}
    inside every region spanning its nodes.

    Backbone edges are either real inter-region links or virtual
    intra-region edges between two border nodes of the same region,
    weighted by their intra-region shortest-path distance. *)

type t = {
  border_nodes : (string * Netsim.Graph.node list) list;
      (** Per region: nodes directly connected to another region. *)
  backbone : (Netsim.Graph.node * Netsim.Graph.node * float) list;
      (** Backbone MST edges, original node ids. *)
  locals : (string * (Netsim.Graph.node * Netsim.Graph.node * float) list) list;
      (** Per-region local MST edges, original node ids. *)
  backbone_weight : float;
  local_weight : float;
  total_weight : float;
  messages : int;  (** GHS messages across all runs (0 when centralised). *)
}

val build : ?distributed:bool -> Netsim.Graph.t -> t
(** [distributed] (default true) runs the GHS automaton on the
    backbone graph and on each region; [false] uses Kruskal (same
    trees, no messages).
    @raise Invalid_argument if the graph has no regions, a region's
    induced subgraph is disconnected, or the backbone graph is
    disconnected. *)

val flat_mst : Netsim.Graph.t -> Kruskal.result
(** The unmodified global MST, for the ablation comparison. *)

val spans_all : Netsim.Graph.t -> t -> bool
(** Check the union of local trees + backbone connects every node —
    the correctness property of the modification. *)

val pp : Netsim.Graph.t -> Format.formatter -> t -> unit
(** Render in the style of Figure 2: backbone edges then per-region
    trees, with labels. *)
