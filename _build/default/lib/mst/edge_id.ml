type t = { w : float; lo : Netsim.Graph.node; hi : Netsim.Graph.node }

let make u v w =
  if u = v then invalid_arg "Edge_id.make: self loop";
  if u < v then { w; lo = u; hi = v } else { w; lo = v; hi = u }

let compare a b =
  match Float.compare a.w b.w with
  | 0 -> (
      match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c)
  | c -> c

let equal a b = compare a b = 0

let less a b =
  match (a, b) with
  | Some a, Some b -> compare a b < 0
  | Some _, None -> true
  | None, (Some _ | None) -> false

let pp ppf e = Format.fprintf ppf "(%d-%d, %g)" e.lo e.hi e.w
