(** Totally ordered edge identities.

    The GHS algorithm requires all edge weights to be distinct.  As in
    Gallager's paper, ties are broken by the edge's endpoint pair, so
    any graph gets a unique MST under this order. *)

type t = { w : float; lo : Netsim.Graph.node; hi : Netsim.Graph.node }

val make : Netsim.Graph.node -> Netsim.Graph.node -> float -> t
(** Normalises the endpoints so [lo < hi].
    @raise Invalid_argument if the endpoints are equal. *)

val compare : t -> t -> int
(** Lexicographic on [(w, lo, hi)]. *)

val equal : t -> t -> bool

val less : t option -> t option -> bool
(** Order with [None] as +infinity — the form the GHS rules use. *)

val pp : Format.formatter -> t -> unit
