let run ?(root = 0) g =
  let n = Netsim.Graph.node_count g in
  if n = 0 then { Kruskal.edges = []; total_weight = 0.; components = 0 }
  else begin
    if not (Netsim.Graph.mem_node g root) then invalid_arg "Prim.run: unknown root";
    let in_tree = Array.make n false in
    let queue = Dsim.Heap.create () in
    let edges = ref [] in
    (* The heap priority is the edge weight; Edge_id tie-breaks are
       applied when popping equal-priority entries by re-comparing. *)
    let push_edges u =
      List.iter
        (fun (v, w) ->
          if not in_tree.(v) then
            Dsim.Heap.push queue w (Edge_id.make u v w))
        (Netsim.Graph.neighbors g u)
    in
    in_tree.(root) <- true;
    push_edges root;
    let pop_best () =
      (* Collect every minimum-weight candidate and keep the Edge_id
         minimum so ties resolve exactly as Kruskal's sort does. *)
      match Dsim.Heap.pop queue with
      | None -> None
      | Some (w, e) ->
          let collected = ref [ e ] in
          let rec gather () =
            match Dsim.Heap.peek queue with
            | Some (w', _) when w' = w ->
                let _, e' = Dsim.Heap.pop_exn queue in
                collected := e' :: !collected;
                gather ()
            | _ -> ()
          in
          gather ();
          let best =
            List.fold_left
              (fun acc e -> if Edge_id.compare e acc < 0 then e else acc)
              e !collected
          in
          List.iter
            (fun e' ->
              if not (Edge_id.equal e' best) then Dsim.Heap.push queue e'.Edge_id.w e')
            !collected;
          Some best
    in
    let rec grow () =
      match pop_best () with
      | None -> ()
      | Some e ->
          let { Edge_id.lo; hi; w } = e in
          let fresh =
            if in_tree.(lo) && not in_tree.(hi) then Some hi
            else if in_tree.(hi) && not in_tree.(lo) then Some lo
            else None
          in
          (match fresh with
          | Some v ->
              in_tree.(v) <- true;
              edges := (lo, hi, w) :: !edges;
              push_edges v
          | None -> ());
          grow ()
    in
    grow ();
    let edges =
      List.sort
        (fun (u1, v1, w1) (u2, v2, w2) ->
          Edge_id.compare (Edge_id.make u1 v1 w1) (Edge_id.make u2 v2 w2))
        !edges
    in
    let unreached = Array.to_list in_tree |> List.filter not |> List.length in
    {
      Kruskal.edges;
      total_weight = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. edges;
      components = 1 + unreached;
    }
  end
