(** Prim's MST algorithm (heap-based), a second centralised baseline.
    With {!Edge_id} tie-breaking it produces exactly the same tree as
    {!Kruskal} and {!Ghs} on any connected graph — a property the test
    suite exploits. *)

val run : ?root:Netsim.Graph.node -> Netsim.Graph.t -> Kruskal.result
(** Spanning tree of the component containing [root] (default node 0).
    [components] reports 1 plus the number of unreached nodes treated
    as singleton components. *)
