lib/mst/edge_id.ml: Float Format Int Netsim
