lib/mst/kruskal.ml: Array Edge_id Fun Int List Netsim
