lib/mst/backbone.ml: Array Float Format Fun Ghs Hashtbl Kruskal List Netsim Printf String
