lib/mst/ghs.mli: Netsim
