lib/mst/backbone.mli: Format Kruskal Netsim
