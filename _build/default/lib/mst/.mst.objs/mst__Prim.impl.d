lib/mst/prim.ml: Array Dsim Edge_id Kruskal List Netsim
