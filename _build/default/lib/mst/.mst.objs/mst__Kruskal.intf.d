lib/mst/kruskal.mli: Netsim
