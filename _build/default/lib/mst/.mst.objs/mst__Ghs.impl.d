lib/mst/ghs.ml: Array Dsim Edge_id Float Hashtbl List Netsim Option
