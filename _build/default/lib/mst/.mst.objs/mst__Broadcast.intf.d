lib/mst/broadcast.mli: Netsim
