lib/mst/broadcast.ml: Array Dsim Float Hashtbl List Netsim
