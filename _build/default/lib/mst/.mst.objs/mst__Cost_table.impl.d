lib/mst/cost_table.ml: Backbone Float Format Hashtbl List Printf String
