lib/mst/cost_table.mli: Backbone Format
