lib/mst/prim.mli: Kruskal Netsim
