lib/mst/edge_id.mli: Format Netsim
