(** Distributed minimum-weight spanning tree — the Gallager, Humblet
    and Spira algorithm ([GAL83]) the paper adopts for attribute-based
    mail distribution (§3.3.A.i).

    Every node runs the same local automaton: fragments of the MST
    grow by merging or absorbing across their minimum-weight outgoing
    edges, coordinated with [Connect] / [Initiate] / [Test] / [Accept]
    / [Reject] / [Report] / [ChangeRoot] messages exchanged over the
    simulated network ({!Netsim.Net.send_neighbor}), which provides
    the asynchronous, in-order, error-free channel model the paper
    assumes.  Edge weights need not be distinct: identities are
    totally ordered by {!Edge_id}.

    Message complexity is the classic bound [5·N·log₂ N + 2·E]
    (messages, not counting local requeues), which experiment C8
    verifies empirically. *)

type result = {
  edges : (Netsim.Graph.node * Netsim.Graph.node * float) list;
      (** Branch edges, each with [u < v], in {!Edge_id} order. *)
  total_weight : float;
  messages : int;  (** network messages the automata exchanged. *)
  finish_time : float;  (** virtual time when the algorithm halted. *)
  halted : bool;  (** a core detected termination (always true on a
                      connected graph unless [horizon] was hit). *)
  max_level : int;  (** highest fragment level reached — at most
                        ⌈log₂ N⌉, the quantity behind the N·log N
                        term of the message bound. *)
}

val run : ?horizon:float -> ?wake:[ `All | `One ] -> Netsim.Graph.t -> result
(** Run the automaton on every node of a connected graph until
    termination (or [horizon], default 1e9).  [wake] selects the
    spontaneous-awakening pattern of [GAL83]: [`All] (default) wakes
    every node at time 0; [`One] wakes only node 0 — the rest awaken
    on receipt of their first message, exercising the wakeup paths of
    the Connect and Test rules.  Both produce the identical tree.
    @raise Invalid_argument if the graph is empty or not connected. *)

val message_bound : Netsim.Graph.t -> int
(** The [5·N·⌈log₂ N⌉ + 2·E] upper bound for this graph. *)
