lib/mail/evaluation.mli: Dsim Format Location_system Message Syntax_system
