lib/mail/name_store.mli: Dsim Naming Netsim
