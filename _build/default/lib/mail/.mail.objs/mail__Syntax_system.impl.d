lib/mail/syntax_system.ml: Array Dsim Float Fun Hashtbl Int List Loadbalance Mailbox Message Naming Netsim Pipeline Printf Server String User_agent
