lib/mail/pipeline.ml: Dsim Hashtbl List Message Naming Netsim Queue Server String User_agent
