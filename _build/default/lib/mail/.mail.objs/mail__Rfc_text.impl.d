lib/mail/rfc_text.ml: Buffer Content Fun List Message Naming Printf Result Scanf String
