lib/mail/session.mli: Content Message Naming Syntax_system User_agent
