lib/mail/billing.ml: Attribute_system Map Message Mst Naming Printf
