lib/mail/name_store.ml: Dsim Hashtbl List Map Naming Netsim Printf
