lib/mail/message.mli: Content Format Naming Netsim
