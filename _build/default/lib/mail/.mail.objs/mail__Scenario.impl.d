lib/mail/scenario.ml: Array Dsim Evaluation Hashtbl List Location_system Naming Netsim Queueing Syntax_system User_agent
