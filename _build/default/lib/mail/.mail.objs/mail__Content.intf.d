lib/mail/content.mli: Format
