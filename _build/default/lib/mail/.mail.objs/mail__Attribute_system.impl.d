lib/mail/attribute_system.ml: Dsim Hashtbl List Location_system Mst Naming Netsim Printf String
