lib/mail/evaluation.ml: Dsim Format List Location_system Message Netsim Server Syntax_system
