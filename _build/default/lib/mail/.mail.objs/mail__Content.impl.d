lib/mail/content.ml: Float Format List Printf String
