lib/mail/rfc_text.mli: Content Message Naming
