lib/mail/pipeline.mli: Dsim Message Naming Netsim Server User_agent
