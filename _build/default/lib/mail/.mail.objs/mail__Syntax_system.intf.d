lib/mail/syntax_system.mli: Content Dsim Mailbox Message Naming Netsim Pipeline Server User_agent
