lib/mail/scenario.mli: Evaluation Location_system Netsim Syntax_system
