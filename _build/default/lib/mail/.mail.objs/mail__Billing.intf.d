lib/mail/billing.mli: Attribute_system Message Naming
