lib/mail/mailbox.ml: List Message Naming String
