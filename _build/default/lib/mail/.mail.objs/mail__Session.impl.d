lib/mail/session.ml: Hashtbl List Message Naming String Syntax_system User_agent
