lib/mail/dlist.mli: Message Naming
