lib/mail/server.ml: Hashtbl List Mailbox Message Naming Netsim
