lib/mail/user_agent.mli: Message Naming Netsim
