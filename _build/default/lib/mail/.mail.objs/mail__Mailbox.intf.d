lib/mail/mailbox.mli: Message Naming
