lib/mail/location_system.mli: Dsim Mailbox Message Naming Netsim Pipeline Server User_agent
