lib/mail/user_agent.ml: Hashtbl List Message Naming Netsim
