lib/mail/location_system.ml: Array Dsim Float Hashtbl Int List Mailbox Message Naming Netsim Pipeline Printf Server String User_agent
