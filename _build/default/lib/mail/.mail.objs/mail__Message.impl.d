lib/mail/message.ml: Content Format Naming Netsim Printf String
