lib/mail/attribute_system.mli: Dsim Location_system Message Mst Naming Netsim
