lib/mail/server.mli: Mailbox Message Naming Netsim
