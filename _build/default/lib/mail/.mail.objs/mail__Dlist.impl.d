lib/mail/dlist.ml: List Map Naming Set
