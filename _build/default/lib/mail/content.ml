type part =
  | Text of string
  | Voice of { seconds : float }
  | Image of { width : int; height : int }
  | Facsimile of { pages : int }

let bytes_of_part = function
  | Text s -> String.length s
  | Voice { seconds } ->
      if seconds < 0. then invalid_arg "Content.bytes_of_part: negative duration";
      int_of_float (Float.ceil (seconds *. 8000.))
  | Image { width; height } ->
      if width < 0 || height < 0 then
        invalid_arg "Content.bytes_of_part: negative dimensions";
      (width * height / 8) + 1
  | Facsimile { pages } ->
      if pages < 0 then invalid_arg "Content.bytes_of_part: negative pages";
      pages * 48_000

let bytes_of parts = List.fold_left (fun acc p -> acc + bytes_of_part p) 0 parts

let describe = function
  | Text s -> Printf.sprintf "text (%dB)" (String.length s)
  | Voice { seconds } as p -> Printf.sprintf "voice %.1fs (%dB)" seconds (bytes_of_part p)
  | Image { width; height } as p ->
      Printf.sprintf "image %dx%d (%dB)" width height (bytes_of_part p)
  | Facsimile { pages } as p ->
      Printf.sprintf "facsimile %d page(s) (%dB)" pages (bytes_of_part p)

let pp ppf p = Format.pp_print_string ppf (describe p)
