(** Typed message content (§5 conclusions).

    "In the near future, electronic mail systems should be able to
    transfer messages that consist of different forms of data such as
    voice, video, graphs, and facsimile."  A message carries a list of
    parts; each part has an era-appropriate size model, and the
    network's finite link bandwidth turns size into transmission
    delay. *)

type part =
  | Text of string
  | Voice of { seconds : float }  (** 8 kB per second (64 kbit/s PCM). *)
  | Image of { width : int; height : int }  (** 1 bit per pixel. *)
  | Facsimile of { pages : int }  (** ~48 kB per page (Group 3). *)

val bytes_of_part : part -> int
(** @raise Invalid_argument on negative dimensions. *)

val bytes_of : part list -> int

val describe : part -> string
(** Short human-readable form, e.g. ["voice 12.0s (96000B)"]. *)

val pp : Format.formatter -> part -> unit
