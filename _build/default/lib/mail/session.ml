type entry = { seq : int; message : Message.t; mutable unread : bool }

type t = {
  system : Syntax_system.t;
  name : Naming.Name.t;
  mutable entries : entry list;  (* newest first *)
  mutable next_seq : int;
  mutable known : int;  (* inbox messages already folded into entries *)
  folders : (string, Message.t list ref) Hashtbl.t;
}

let open_session system name =
  (* raises if the user is unknown *)
  ignore (Syntax_system.agent system name);
  { system; name; entries = []; next_seq = 1; known = 0; folders = Hashtbl.create 4 }

let user t = t.name

let compose t ~to_ ?(subject = "") ?(body = "") ?(parts = []) () =
  if String.contains subject '\n' then
    invalid_arg "Session.compose: newline in subject";
  Syntax_system.submit t.system ~sender:t.name ~recipient:to_ ~subject ~body ~parts ()

let reply t entry ?(body = "") () =
  let original = entry.message.Message.subject in
  let subject =
    if
      String.length original >= 4
      && String.equal (String.lowercase_ascii (String.sub original 0 4)) "re: "
    then original
    else "Re: " ^ original
  in
  compose t ~to_:entry.message.Message.sender ~subject ~body ()

let fold_new t =
  let all = User_agent.inbox (Syntax_system.agent t.system t.name) in
  let fresh = List.filteri (fun i _ -> i >= t.known) all in
  t.known <- List.length all;
  List.iter
    (fun message ->
      let e = { seq = t.next_seq; message; unread = true } in
      t.next_seq <- t.next_seq + 1;
      t.entries <- e :: t.entries)
    fresh

let fetch t =
  let stats = Syntax_system.check_mail t.system t.name in
  fold_new t;
  stats

let inbox t = List.rev t.entries

let unread_count t = List.length (List.filter (fun e -> e.unread) t.entries)

let find t seq =
  match List.find_opt (fun e -> e.seq = seq) t.entries with
  | Some e -> e
  | None -> raise Not_found

let read t seq =
  let e = find t seq in
  e.unread <- false;
  e.message

let delete t seq =
  let e = find t seq in
  t.entries <- List.filter (fun x -> x.seq <> e.seq) t.entries

let save t seq ~folder =
  if String.length folder = 0 then invalid_arg "Session.save: empty folder name";
  let e = find t seq in
  let box =
    match Hashtbl.find_opt t.folders folder with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.folders folder r;
        r
  in
  box := e.message :: !box;
  t.entries <- List.filter (fun x -> x.seq <> e.seq) t.entries

let folder t name =
  match Hashtbl.find_opt t.folders name with Some r -> List.rev !r | None -> []

let folders t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.folders [] |> List.sort String.compare
