type retrieval_mode = Get_mail | Poll_all | Naive

type spec = {
  seed : int;
  duration : float;
  mail_count : int;
  check_period : float;
  failure_rate : float;
  mean_outage : float;
  sender_skew : float;
  retrieval : retrieval_mode;
}

let default_spec =
  {
    seed = 1;
    duration = 5000.;
    mail_count = 300;
    check_period = 100.;
    failure_rate = 0.;
    mean_outage = 150.;
    sender_skew = 0.9;
    retrieval = Get_mail;
  }

type outcome = {
  report : Evaluation.report;
  availability : float;
  final_polls_per_check : float;
  inbox_total : int;
  counter : string -> int;
}

let pick_pair rng users =
  let n = Array.length users in
  let s = Dsim.Rng.int rng n in
  let rec other () =
    let r = Dsim.Rng.int rng n in
    if r = s then other () else r
  in
  (users.(s), users.(other ()))

(* Zipf-weighted sender, uniform distinct recipient. *)
let pick_pair_skewed rng users skew =
  let n = Array.length users in
  if skew <= 0. then pick_pair rng users
  else begin
    let s = Dsim.Rng.zipf rng ~n ~s:skew - 1 in
    let rec other () =
      let r = Dsim.Rng.int rng n in
      if r = s then other () else r
    in
    (users.(s), users.(other ()))
  end

(* The common driver body, abstracted over system operations. *)
type 'sys ops = {
  engine : 'sys -> Dsim.Engine.t;
  net_nodes_down : 'sys -> unit;  (* force all servers back up *)
  server_nodes : 'sys -> Netsim.Graph.node list;
  submit_at : 'sys -> at:float -> sender:Naming.Name.t -> recipient:Naming.Name.t -> unit;
  check : 'sys -> Naming.Name.t -> User_agent.check_stats;
  on_check_tick : 'sys -> rng:Dsim.Rng.t -> Naming.Name.t -> unit;
      (* roaming hook, runs just before a periodic check *)
  schedule_outages : 'sys -> Netsim.Failure.outage list -> unit;
  report : 'sys -> Evaluation.report;
  counters : 'sys -> Dsim.Stats.Counter.t;
  inbox_total : 'sys -> int;
  quiesce : 'sys -> unit;
}

let drive (type s) (sys : s) (ops : s ops) users spec =
  let rng = Dsim.Rng.create spec.seed in
  let traffic_rng = Dsim.Rng.split rng in
  let failure_rng = Dsim.Rng.split rng in
  let roam_rng = Dsim.Rng.split rng in
  let engine = ops.engine sys in
  let users_arr = Array.of_list users in
  (* Mail injection at uniform times. *)
  let send_times =
    Queueing.Workload.uniform_arrivals ~rng:traffic_rng ~count:spec.mail_count
      ~horizon:spec.duration
  in
  List.iter
    (fun at ->
      let sender, recipient = pick_pair_skewed traffic_rng users_arr spec.sender_skew in
      ops.submit_at sys ~at ~sender ~recipient)
    send_times;
  (* Periodic checks, phase-shifted per user. *)
  Array.iteri
    (fun i name ->
      let phase =
        spec.check_period *. float_of_int (i + 1) /. float_of_int (Array.length users_arr + 1)
      in
      let rec arm at =
        if at < spec.duration then
          ignore
            (Dsim.Engine.schedule_at engine at (fun () ->
                 ops.on_check_tick sys ~rng:roam_rng name;
                 ignore (ops.check sys name);
                 arm (at +. spec.check_period)))
      in
      arm phase)
    users_arr;
  (* Failure injection on servers. *)
  let outages =
    Netsim.Failure.random_outages ~rng:failure_rng ~nodes:(ops.server_nodes sys)
      ~rate:spec.failure_rate ~mean_duration:spec.mean_outage ~horizon:spec.duration
  in
  ops.schedule_outages sys outages;
  (* Run, restore, drain, final checks. *)
  Dsim.Engine.run ~until:spec.duration engine;
  ops.net_nodes_down sys;
  ops.quiesce sys;
  List.iter (fun name -> ignore (ops.check sys name)) users;
  ops.quiesce sys;
  let report = ops.report sys in
  let availability =
    let nodes = ops.server_nodes sys in
    if nodes = [] then 1.
    else
      List.fold_left
        (fun acc node ->
          acc +. Netsim.Failure.availability ~outages ~node ~horizon:spec.duration)
        0. nodes
      /. float_of_int (List.length nodes)
  in
  {
    report;
    availability;
    final_polls_per_check = report.Evaluation.polls_per_check;
    inbox_total = ops.inbox_total sys;
    counter = (fun key -> Dsim.Stats.Counter.get (ops.counters sys) key);
  }

let check_with mode view sys_agent now =
  match mode with
  | Get_mail -> User_agent.get_mail sys_agent ~view ~now
  | Poll_all -> User_agent.poll_all sys_agent ~view ~now
  | Naive -> User_agent.naive_check sys_agent ~view ~now

let record_check counters (stats : User_agent.check_stats) =
  Dsim.Stats.Counter.incr counters "checks";
  Dsim.Stats.Counter.incr ~by:stats.User_agent.polls counters "polls";
  Dsim.Stats.Counter.incr ~by:stats.User_agent.failed_polls counters "failed_polls";
  Dsim.Stats.Counter.incr ~by:stats.User_agent.retrieved counters "retrieved"

let run_syntax ?config site spec =
  let sys = Syntax_system.create ?config site in
  let users = Syntax_system.users sys in
  let ops =
    {
      engine = Syntax_system.engine;
      net_nodes_down =
        (fun s ->
          List.iter (fun n -> Netsim.Net.set_up (Syntax_system.net s) n)
            (Syntax_system.server_nodes s));
      server_nodes = Syntax_system.server_nodes;
      submit_at =
        (fun s ~at ~sender ~recipient ->
          ignore (Syntax_system.submit_at s ~at ~sender ~recipient ()));
      check =
        (fun s name ->
          let stats =
            check_with spec.retrieval (Syntax_system.view s)
              (Syntax_system.agent s name) (Syntax_system.now s)
          in
          record_check (Syntax_system.counters s) stats;
          stats);
      on_check_tick = (fun _ ~rng:_ _ -> ());
      schedule_outages =
        (fun s outages -> Netsim.Failure.schedule_outages (Syntax_system.net s) outages);
      report = Evaluation.of_syntax;
      counters = Syntax_system.counters;
      inbox_total =
        (fun s ->
          List.fold_left
            (fun acc name -> acc + User_agent.inbox_size (Syntax_system.agent s name))
            0 (Syntax_system.users s));
      quiesce = (fun s -> Syntax_system.quiesce s);
    }
  in
  drive sys ops users spec

let run_location ?config ~roam_probability site spec =
  let sys = Location_system.create ?config site in
  let users = Location_system.users sys in
  let graph = Location_system.graph sys in
  let hosts_by_region = Hashtbl.create 4 in
  List.iter
    (fun v ->
      if Netsim.Graph.kind graph v = Netsim.Graph.Host then begin
        let r = Netsim.Graph.region graph v in
        let cur =
          match Hashtbl.find_opt hosts_by_region r with Some l -> l | None -> []
        in
        Hashtbl.replace hosts_by_region r (v :: cur)
      end)
    (Netsim.Graph.nodes graph);
  let ops =
    {
      engine = Location_system.engine;
      net_nodes_down =
        (fun s ->
          List.iter (fun n -> Netsim.Net.set_up (Location_system.net s) n)
            (Location_system.server_nodes s));
      server_nodes = Location_system.server_nodes;
      submit_at =
        (fun s ~at ~sender ~recipient ->
          ignore (Location_system.submit_at s ~at ~sender ~recipient ()));
      check =
        (fun s name ->
          let stats =
            check_with spec.retrieval (Location_system.view s)
              (Location_system.agent s name) (Location_system.now s)
          in
          record_check (Location_system.counters s) stats;
          stats);
      on_check_tick =
        (fun s ~rng name ->
          if Dsim.Rng.bernoulli rng roam_probability then begin
            match Hashtbl.find_opt hosts_by_region (Naming.Name.region name) with
            | Some (_ :: _ as hosts) ->
                let arr = Array.of_list hosts in
                ignore (Location_system.login s name ~host:(Dsim.Rng.choice rng arr))
            | Some [] | None -> ()
          end);
      schedule_outages =
        (fun s outages ->
          Netsim.Failure.schedule_outages (Location_system.net s) outages);
      report = Evaluation.of_location;
      counters = Location_system.counters;
      inbox_total =
        (fun s ->
          List.fold_left
            (fun acc name -> acc + User_agent.inbox_size (Location_system.agent s name))
            0 (Location_system.users s));
      quiesce = (fun s -> Location_system.quiesce s);
    }
  in
  drive sys ops users spec

type estimate = { mean : float; stddev : float; runs : int }

let replicate ~runs run spec metric =
  if runs <= 0 then invalid_arg "Scenario.replicate: runs <= 0";
  let summary = Dsim.Stats.Summary.create () in
  for i = 0 to runs - 1 do
    let outcome = run { spec with seed = spec.seed + i } in
    Dsim.Stats.Summary.add summary (metric outcome)
  done;
  {
    mean = Dsim.Stats.Summary.mean summary;
    stddev = Dsim.Stats.Summary.stddev summary;
    runs;
  }
