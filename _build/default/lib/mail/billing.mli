(** Cost accounting and flow control for attribute-based mail
    (§3.3.B).

    "Estimated cost can be used as a flow-control mechanism and/or for
    guaranteeing that the users can pay the costs" — accounts hold
    balances, broadcasts are priced from the cost table {e before} any
    traffic is generated, and an unaffordable broadcast is refused
    outright. *)

type t

val create : ?initial_balance:float -> unit -> t
(** Accounts spring into existence at first touch with
    [initial_balance] (default 0). *)

val balance : t -> Naming.Name.t -> float

val credit : t -> Naming.Name.t -> float -> unit
(** @raise Invalid_argument on a negative amount. *)

val try_charge : t -> Naming.Name.t -> float -> (float, string) result
(** Atomically deduct; [Ok new_balance] or [Error reason] leaving the
    balance untouched.  @raise Invalid_argument on a negative
    amount. *)

val total_charged : t -> Naming.Name.t -> float
(** Lifetime spend of the account. *)

(** Result of a billed broadcast attempt. *)
type billed = {
  charged : float;  (** what the sender paid (the estimate). *)
  remaining : float;  (** balance after the charge. *)
  result : Attribute_system.search_result;
  messages : Message.t list;
}

val mass_mail :
  t ->
  Attribute_system.t ->
  sender:Naming.Name.t ->
  ?regions:string list ->
  ?subject:string ->
  ?body:string ->
  viewer:Naming.Attribute.viewer ->
  Naming.Attribute.pred ->
  (billed, string) result
(** Price the broadcast from the cost table for the selected regions
    (default all), refuse with [Error _] if the sender cannot pay —
    {e before} any search traffic is generated — otherwise charge and
    run {!Attribute_system.mass_mail}. *)

val affordable_regions : t -> Attribute_system.t -> sender:Naming.Name.t -> string list
(** The regions the sender's current balance can cover, cheapest
    first (the paper's "select his recipients and the level of search
    he wants"). *)
