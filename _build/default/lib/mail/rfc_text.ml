let encode_part = function
  | Content.Text s -> Printf.sprintf "text %S" s
  | Content.Voice { seconds } -> Printf.sprintf "voice %h" seconds
  | Content.Image { width; height } -> Printf.sprintf "image %dx%d" width height
  | Content.Facsimile { pages } -> Printf.sprintf "facsimile %d" pages

let encode (m : Message.t) =
  if String.contains m.Message.subject '\n' then
    invalid_arg "Rfc_text.encode: newline in subject";
  let buf = Buffer.create 256 in
  let header k v = Buffer.add_string buf (Printf.sprintf "%s: %s\n" k v) in
  header "Message-Id" (string_of_int m.Message.id);
  header "From" (Naming.Name.to_string m.Message.sender);
  header "To" (Naming.Name.to_string m.Message.recipient);
  header "Date" (Printf.sprintf "%h" m.Message.submitted_at);
  header "Subject" m.Message.subject;
  List.iter (fun p -> header "X-Part" (encode_part p)) m.Message.parts;
  Buffer.add_char buf '\n';
  Buffer.add_string buf m.Message.body;
  Buffer.contents buf

type decoded = {
  d_id : Message.id;
  d_sender : Naming.Name.t;
  d_recipient : Naming.Name.t;
  d_subject : string;
  d_body : string;
  d_submitted_at : float;
  d_parts : Content.part list;
}

let parse_part v =
  let fail () = Error (Printf.sprintf "malformed X-Part: %S" v) in
  match String.index_opt v ' ' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub v 0 i in
      let rest = String.sub v (i + 1) (String.length v - i - 1) in
      match kind with
      | "text" -> (
          try Ok (Content.Text (Scanf.sscanf rest "%S" Fun.id)) with _ -> fail ())
      | "voice" -> (
          match float_of_string_opt rest with
          | Some seconds when seconds >= 0. -> Ok (Content.Voice { seconds })
          | Some _ | None -> fail ())
      | "image" -> (
          match String.split_on_char 'x' rest with
          | [ w; h ] -> (
              match (int_of_string_opt w, int_of_string_opt h) with
              | Some width, Some height when width >= 0 && height >= 0 ->
                  Ok (Content.Image { width; height })
              | _ -> fail ())
          | _ -> fail ())
      | "facsimile" -> (
          match int_of_string_opt rest with
          | Some pages when pages >= 0 -> Ok (Content.Facsimile { pages })
          | Some _ | None -> fail ())
      | _ -> fail ())

(* Split the wire text at the first blank line. *)
let split_headers_body s =
  let rec scan i =
    if i >= String.length s then None
    else
      match String.index_from_opt s i '\n' with
      | None -> None
      | Some j ->
          if j + 1 < String.length s && s.[j + 1] = '\n' then
            Some (String.sub s 0 (j + 1), String.sub s (j + 2) (String.length s - j - 2))
          else scan (j + 1)
  in
  scan 0

let decode s =
  (* be liberal: accept CRLF line endings *)
  let s =
    if String.contains s '\r' then begin
      let buf = Buffer.create (String.length s) in
      String.iteri
        (fun i c ->
          if c = '\r' && i + 1 < String.length s && s.[i + 1] = '\n' then ()
          else Buffer.add_char buf c)
        s;
      Buffer.contents buf
    end
    else s
  in
  match split_headers_body s with
  | None -> Error "missing blank line between headers and body"
  | Some (header_block, body) -> (
      let lines =
        String.split_on_char '\n' header_block |> List.filter (fun l -> l <> "")
      in
      let parse_line acc line =
        match acc with
        | Error _ -> acc
        | Ok fields -> (
            match String.index_opt line ':' with
            | None -> Error (Printf.sprintf "malformed header line: %S" line)
            | Some i ->
                let key = String.sub line 0 i in
                let v =
                  let raw = String.sub line (i + 1) (String.length line - i - 1) in
                  if String.length raw > 0 && raw.[0] = ' ' then
                    String.sub raw 1 (String.length raw - 1)
                  else raw
                in
                Ok ((key, v) :: fields))
      in
      match List.fold_left parse_line (Ok []) lines with
      | Error e -> Error e
      | Ok fields -> (
          let fields = List.rev fields in
          let find k = List.assoc_opt k fields in
          let require k =
            match find k with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "missing header %s" k)
          in
          let ( let* ) = Result.bind in
          let* id_s = require "Message-Id" in
          let* from_s = require "From" in
          let* to_s = require "To" in
          let* date_s = require "Date" in
          let* d_id =
            match int_of_string_opt id_s with
            | Some i -> Ok i
            | None -> Error "malformed Message-Id"
          in
          let* d_sender =
            Result.map_error (fun e -> "From: " ^ e) (Naming.Name.of_string from_s)
          in
          let* d_recipient =
            Result.map_error (fun e -> "To: " ^ e) (Naming.Name.of_string to_s)
          in
          let* d_submitted_at =
            match float_of_string_opt date_s with
            | Some f -> Ok f
            | None -> Error "malformed Date"
          in
          let* d_parts =
            List.fold_left
              (fun acc (k, v) ->
                match acc with
                | Error _ -> acc
                | Ok parts ->
                    if String.equal k "X-Part" then
                      Result.map (fun p -> p :: parts) (parse_part v)
                    else acc)
              (Ok []) fields
            |> Result.map List.rev
          in
          Ok
            {
              d_id;
              d_sender;
              d_recipient;
              d_subject = (match find "Subject" with Some s -> s | None -> "");
              d_body = body;
              d_submitted_at;
              d_parts;
            }))

let to_message d =
  Message.create ~id:d.d_id ~sender:d.d_sender ~recipient:d.d_recipient
    ~subject:d.d_subject ~body:d.d_body ~parts:d.d_parts
    ~submitted_at:d.d_submitted_at ()

let roundtrip m = Result.map to_message (decode (encode m))
