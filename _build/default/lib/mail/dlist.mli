(** Distribution lists — the "group naming" capability §4.3 lists
    among the flexibility criteria.

    A list is itself named like a user; members may be users or other
    lists, and expansion is recursive, duplicate-free and cycle-safe
    (a member list that eventually includes its parent contributes its
    other members once and terminates). *)

type t

val create : unit -> t

val define : t -> name:Naming.Name.t -> members:Naming.Name.t list -> unit
(** Define or replace a list. @raise Invalid_argument if the list
    names itself directly. *)

val remove : t -> Naming.Name.t -> unit

val is_list : t -> Naming.Name.t -> bool

val members : t -> Naming.Name.t -> Naming.Name.t list
(** Direct members ([] for unknown lists). *)

val lists : t -> Naming.Name.t list
(** All defined list names, sorted. *)

val expand : t -> Naming.Name.t -> Naming.Name.t list
(** Transitive user members, sorted, duplicates removed, list names
    themselves excluded.  A non-list name expands to itself. *)

val expand_all : t -> Naming.Name.t list -> Naming.Name.t list
(** Union of expansions. *)

val submit_via :
  submit:(recipient:Naming.Name.t -> Message.t) -> t -> Naming.Name.t -> Message.t list
(** Expand the recipient and call [submit] once per final user —
    ordinary names pass through unchanged. *)
