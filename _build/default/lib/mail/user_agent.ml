type t = {
  name : Naming.Name.t;
  mutable host : Netsim.Graph.node;
  mutable authority : Netsim.Graph.node list;
  mutable last_checking : float;
  mutable previously_unavailable : Netsim.Graph.node list;
  mutable inbox : Message.t list;  (* newest first *)
  seen : (Message.id, unit) Hashtbl.t;
      (* delivery is at-least-once; the agent deduplicates. *)
}

let create ~name ~host ~authority =
  if authority = [] then invalid_arg "User_agent.create: empty authority list";
  {
    name;
    host;
    authority;
    last_checking = 0.;
    previously_unavailable = [];
    inbox = [];
    seen = Hashtbl.create 32;
  }

let name t = t.name
let host t = t.host
let authority t = t.authority
let set_authority t servers =
  if servers = [] then invalid_arg "User_agent.set_authority: empty authority list";
  t.authority <- servers

let set_host t h = t.host <- h

let inbox t = List.rev t.inbox
let inbox_size t = List.length t.inbox
let previously_unavailable t = t.previously_unavailable
let last_checking_time t = t.last_checking

type server_view = {
  is_alive : Netsim.Graph.node -> bool;
  last_start : Netsim.Graph.node -> float;
  fetch : Netsim.Graph.node -> Naming.Name.t -> at:float -> Message.t list;
}

type check_stats = { polls : int; failed_polls : int; retrieved : int }

let add_pus t s =
  if not (List.mem s t.previously_unavailable) then
    t.previously_unavailable <- t.previously_unavailable @ [ s ]

let remove_pus t s =
  t.previously_unavailable <- List.filter (fun x -> x <> s) t.previously_unavailable

(* Keep only messages not already retrieved (duplicates can arrive
   when a deposit retry raced a lost acknowledgement). *)
let fresh_only t msgs =
  List.filter
    (fun (m : Message.t) ->
      if Hashtbl.mem t.seen m.Message.id then false
      else begin
        Hashtbl.replace t.seen m.Message.id ();
        true
      end)
    msgs

let get_mail t ~view ~now =
  let current_checking_time = now in
  let polls = ref 0 and failed = ref 0 and retrieved = ref 0 in
  let take msgs =
    let msgs = fresh_only t msgs in
    retrieved := !retrieved + List.length msgs;
    t.inbox <- List.rev_append msgs t.inbox
  in
  (* Phase 1: scan the authority list until a stable server proves no
     later server can hold fresh mail. *)
  let rec scan = function
    | [] -> ()
    | s :: rest ->
        incr polls;
        if view.is_alive s then begin
          take (view.fetch s t.name ~at:now);
          remove_pus t s;
          if t.last_checking > view.last_start s then () else scan rest
        end
        else begin
          incr failed;
          add_pus t s;
          scan rest
        end
  in
  scan t.authority;
  (* Phase 2: drain servers that were unavailable at some earlier
     check and are alive again — they may hold old mail. *)
  List.iter
    (fun s ->
      if view.is_alive s then begin
        incr polls;
        take (view.fetch s t.name ~at:now);
        remove_pus t s
      end)
    t.previously_unavailable;
  t.last_checking <- current_checking_time;
  { polls = !polls; failed_polls = !failed; retrieved = !retrieved }

let poll_all t ~view ~now =
  let polls = ref 0 and failed = ref 0 and retrieved = ref 0 in
  List.iter
    (fun s ->
      incr polls;
      if view.is_alive s then begin
        let msgs = fresh_only t (view.fetch s t.name ~at:now) in
        retrieved := !retrieved + List.length msgs;
        t.inbox <- List.rev_append msgs t.inbox
      end
      else incr failed)
    t.authority;
  t.last_checking <- now;
  { polls = !polls; failed_polls = !failed; retrieved = !retrieved }

let naive_check t ~view ~now =
  let polls = ref 0 and failed = ref 0 and retrieved = ref 0 in
  let rec first_alive = function
    | [] -> ()
    | s :: rest ->
        incr polls;
        if view.is_alive s then begin
          let msgs = fresh_only t (view.fetch s t.name ~at:now) in
          retrieved := !retrieved + List.length msgs;
          t.inbox <- List.rev_append msgs t.inbox
        end
        else begin
          incr failed;
          first_alive rest
        end
  in
  first_alive t.authority;
  t.last_checking <- now;
  { polls = !polls; failed_polls = !failed; retrieved = !retrieved }
