(** Mail-server state (§2, §3.1.2).

    A server is "a process responsible for obtaining addresses of
    recipients, sending, buffering, relaying and delivering messages
    to the mail recipients".  This module holds the per-server state
    shared by all three system designs: the mailboxes of the users it
    is an authority server for, and [LastStartTime] — the time it last
    recovered or initialised, which the GetMail algorithm compares
    against each user's [LastCheckingTime]. *)

type t

val create :
  ?mailbox_policy:Mailbox.policy -> node:Netsim.Graph.node -> region:string -> unit -> t

val node : t -> Netsim.Graph.node
val region : t -> string

val last_start : t -> float
(** [LastStartTime]: 0 until the first recovery. *)

val note_recovery : t -> at:float -> unit
(** Called when the server's node comes back up. *)

val deposit : t -> Message.t -> at:float -> unit
(** Store in the recipient's mailbox (created on first use) and mark
    the message deposited. *)

val fetch : t -> Naming.Name.t -> at:float -> Message.t list
(** Retrieve-and-clear the user's pending mail, marking each message
    retrieved. *)

val pending_for : t -> Naming.Name.t -> int
val total_pending : t -> int
val mailbox_count : t -> int
val deposits : t -> int
(** Total messages ever deposited here. *)

val storage_bytes : t -> int

val cleanup : t -> now:float -> max_age:float -> int
(** Run the archive clean-up policy over every mailbox. *)
