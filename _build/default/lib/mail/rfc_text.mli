(** A text wire format for messages, in the RFC 822 style of the
    paper's era: a block of [Header: value] lines, a blank line, then
    the body.  Attachment parts (§5 multimedia) are carried as
    [X-Part] headers.

    The codec round-trips everything a {!Message.t} carries at
    submission time (identity, envelope, subject, body, parts);
    delivery bookkeeping (deposit/retrieval times) is transient state
    and is not serialised. *)

val encode : Message.t -> string
(** @raise Invalid_argument if the subject contains a newline (fold
    your subjects yourself, it is 1988). *)

(** Fields recovered from a wire message. *)
type decoded = {
  d_id : Message.id;
  d_sender : Naming.Name.t;
  d_recipient : Naming.Name.t;
  d_subject : string;
  d_body : string;
  d_submitted_at : float;
  d_parts : Content.part list;
}

val decode : string -> (decoded, string) result
(** Parse a wire message; [Error reason] on malformed input.  Unknown
    headers are ignored (be liberal in what you accept). *)

val to_message : decoded -> Message.t
(** Rebuild a fresh in-flight message from decoded fields. *)

val roundtrip : Message.t -> (Message.t, string) result
(** [decode (encode m) |> to_message] — used by the property tests. *)
