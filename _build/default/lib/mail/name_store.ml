(* Entries are versioned; a [None] value is a tombstone.  The wire
   payload is handled through a dedicated handler rather than the
   pipeline, so the store is self-contained. *)

type entry = { version : int; value : Netsim.Graph.node list option }

type wire = Put of Naming.Name.t * entry  (* primary -> secondary *)

module NameMap = Map.Make (Naming.Name)

type t = {
  engine : Dsim.Engine.t;
  net : wire Netsim.Net.t;
  replica_list : Netsim.Graph.node list;
  tables : (Netsim.Graph.node, entry NameMap.t ref) Hashtbl.t;
  mutable latest : entry NameMap.t;  (* authoritative versions *)
  mutable update_messages : int;
  mutable stale_reads : int;
  mutable resyncs : int;
}

let table t node =
  match Hashtbl.find_opt t.tables node with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Name_store: node %d is not a replica" node)

let primary t = List.hd t.replica_list
let replicas t = t.replica_list
let net t = t.net

let apply t node (Put (name, entry)) =
  let tbl = table t node in
  let keep =
    match NameMap.find_opt name !tbl with
    | Some existing -> existing.version >= entry.version
    | None -> false
  in
  if not keep then tbl := NameMap.add name entry !tbl

(* A refused send (a relay on the route is down right now) is retried
   while this entry is still the newest — a newer write supersedes the
   retry chain with its own puts. *)
let rec send_put t ~dst name entry =
  t.update_messages <- t.update_messages + 1;
  let accepted = Netsim.Net.send t.net ~src:(primary t) ~dst (Put (name, entry)) in
  if not accepted then
    ignore
      (Dsim.Engine.schedule_after t.engine 10. (fun () ->
           match NameMap.find_opt name t.latest with
           | Some newest when newest.version = entry.version ->
               send_put t ~dst name entry
           | Some _ | None -> ()))

let create ~engine ?trace ~graph ~replicas:replica_list () =
  if replica_list = [] then invalid_arg "Name_store.create: no replicas";
  List.iter
    (fun v ->
      if not (Netsim.Graph.mem_node graph v) then
        invalid_arg "Name_store.create: unknown replica node")
    replica_list;
  let net = Netsim.Net.create ~engine ?trace graph in
  let t =
    {
      engine;
      net;
      replica_list;
      tables = Hashtbl.create 8;
      latest = NameMap.empty;
      update_messages = 0;
      stale_reads = 0;
      resyncs = 0;
    }
  in
  List.iter (fun v -> Hashtbl.replace t.tables v (ref NameMap.empty)) replica_list;
  List.iter
    (fun v ->
      Netsim.Net.set_handler net v (fun ~time:_ ~src:_ put -> apply t v put))
    replica_list;
  (* Anti-entropy: when a secondary recovers, the primary pushes every
     entry the secondary is missing. *)
  Netsim.Net.on_status_change net (fun ~time:_ node up ->
      if up && List.mem node t.replica_list && node <> primary t then begin
        let tbl = table t node in
        NameMap.iter
          (fun name entry ->
            let stale =
              match NameMap.find_opt name !tbl with
              | Some held -> held.version < entry.version
              | None -> true
            in
            if stale then begin
              t.resyncs <- t.resyncs + 1;
              send_put t ~dst:node name entry
            end)
          t.latest
      end);
  t

let write t name value =
  if not (Netsim.Net.is_up t.net (primary t)) then
    invalid_arg "Name_store: primary is down";
  let version =
    match NameMap.find_opt name t.latest with Some e -> e.version + 1 | None -> 1
  in
  let entry = { version; value } in
  t.latest <- NameMap.add name entry t.latest;
  (* Local apply at the primary, then async propagation. *)
  apply t (primary t) (Put (name, entry));
  List.iter
    (fun dst -> if dst <> primary t then send_put t ~dst name entry)
    t.replica_list

let register t name authority = write t name (Some authority)
let unregister t name = write t name None

let lookup t ~at name =
  let tbl = table t at in
  let held = NameMap.find_opt name !tbl in
  let newest = NameMap.find_opt name t.latest in
  (match (held, newest) with
  | Some h, Some n when h.version < n.version -> t.stale_reads <- t.stale_reads + 1
  | None, Some _ -> t.stale_reads <- t.stale_reads + 1
  | _ -> ());
  match held with Some { value; _ } -> value | None -> None

let version_at t ~at name =
  match NameMap.find_opt name !(table t at) with Some e -> e.version | None -> 0

let lag t name =
  match NameMap.find_opt name t.latest with
  | None -> 0
  | Some newest ->
      List.length
        (List.filter
           (fun v ->
             match NameMap.find_opt name !(table t v) with
             | Some held -> held.version < newest.version
             | None -> true)
           t.replica_list)

let converged t = NameMap.for_all (fun name _ -> lag t name = 0) t.latest

let update_messages t = t.update_messages
let stale_reads t = t.stale_reads
let resyncs t = t.resyncs
