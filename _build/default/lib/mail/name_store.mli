(** A replicated name database with primary-copy update propagation.

    §2: the name space is "partitioned and distributed among the
    servers … the databases are partially replicated to increase the
    availability and the reliability of the system", and §4.2 lists
    "consistency of information concerning users" among the
    reliability requirements.  (The paper folds the name service into
    the mail servers, which is why this substrate lives in the mail
    library.)

    One store instance manages one context's replica group: the first
    replica is the primary; writes go to the primary and propagate
    asynchronously to the secondaries over the simulated network.
    Reads are served locally by any replica and may therefore be
    stale — the store counts how often.  A secondary that was down
    during an update is re-synchronised when it recovers
    (anti-entropy), so replicas converge once the network is quiet. *)

type t

val create :
  engine:Dsim.Engine.t ->
  ?trace:Dsim.Trace.t ->
  graph:Netsim.Graph.t ->
  replicas:Netsim.Graph.node list ->
  unit ->
  t
(** @raise Invalid_argument on an empty replica list or unknown
    nodes. *)

type wire
(** Propagation payloads. *)

val net : t -> wire Netsim.Net.t
(** The store's private network (exposed for failure injection). *)

val primary : t -> Netsim.Graph.node
val replicas : t -> Netsim.Graph.node list

val register : t -> Naming.Name.t -> Netsim.Graph.node list -> unit
(** Write (insert or replace) the name's authority list at the
    primary and start propagation.
    @raise Invalid_argument if the primary is down (the paper's
    systems would fail over; this substrate keeps a single primary to
    isolate the propagation behaviour). *)

val unregister : t -> Naming.Name.t -> unit
(** Tombstone write; propagated like any update. *)

val lookup :
  t -> at:Netsim.Graph.node -> Naming.Name.t -> Netsim.Graph.node list option
(** Local read at a replica.  [None] for unknown (or tombstoned)
    names.  Reads at a replica that has not yet seen the latest
    version return the old value and increment the staleness
    counter.  @raise Invalid_argument if [at] is not a replica. *)

val version_at : t -> at:Netsim.Graph.node -> Naming.Name.t -> int
(** Version of the entry a replica currently holds (0 = never seen). *)

val lag : t -> Naming.Name.t -> int
(** Replicas not yet holding the newest version of the name. *)

val converged : t -> bool
(** Every replica holds the newest version of every name. *)

(** Counters. *)

val update_messages : t -> int
(** Propagation messages sent (including resyncs). *)

val stale_reads : t -> int

val resyncs : t -> int
(** Entries pushed by recovery anti-entropy. *)
