module NameMap = Map.Make (Naming.Name)

type account = { mutable bal : float; mutable spent : float }

type t = { initial : float; mutable accounts : account NameMap.t }

let create ?(initial_balance = 0.) () =
  if initial_balance < 0. then invalid_arg "Billing.create: negative initial balance";
  { initial = initial_balance; accounts = NameMap.empty }

let account t name =
  match NameMap.find_opt name t.accounts with
  | Some a -> a
  | None ->
      let a = { bal = t.initial; spent = 0. } in
      t.accounts <- NameMap.add name a t.accounts;
      a

let balance t name = (account t name).bal

let credit t name amount =
  if amount < 0. then invalid_arg "Billing.credit: negative amount";
  let a = account t name in
  a.bal <- a.bal +. amount

let try_charge t name amount =
  if amount < 0. then invalid_arg "Billing.try_charge: negative amount";
  let a = account t name in
  if a.bal >= amount then begin
    a.bal <- a.bal -. amount;
    a.spent <- a.spent +. amount;
    Ok a.bal
  end
  else
    Error
      (Printf.sprintf "insufficient funds: balance %.2f < cost %.2f" a.bal amount)

let total_charged t name = (account t name).spent

type billed = {
  charged : float;
  remaining : float;
  result : Attribute_system.search_result;
  messages : Message.t list;
}

let mass_mail t sys ~sender ?regions ?subject ?body ~viewer pred =
  let source = Naming.Name.region sender in
  let table = Attribute_system.cost_table sys ~source in
  let selected =
    match regions with Some r when r <> [] -> r | _ -> Attribute_system.regions sys
  in
  let price = Mst.Cost_table.estimate table ~regions:selected in
  match try_charge t sender price with
  | Error _ as e -> e
  | Ok remaining ->
      let result, messages =
        Attribute_system.mass_mail sys ~sender ~regions:selected ?subject ?body ~viewer
          pred
      in
      Ok { charged = price; remaining; result; messages }

let affordable_regions t sys ~sender =
  Attribute_system.budget_regions sys
    ~source:(Naming.Name.region sender)
    ~budget:(balance t sender)
