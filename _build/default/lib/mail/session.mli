(** A user's interactive mail session (§2).

    "The user interface is a software package that interacts with the
    users and assists users in composing, sending, receiving, reading,
    and deleting mail and doing other mail-related functions."

    A session wraps one user of a design-1 system with the mailbox
    management a real client provides: an inbox of numbered entries
    with read/unread state, deletion, and named folders on the local
    host ("the user can choose to save the received message in his own
    storage").  Sessions are view-state only: the underlying system
    remains the source of truth for delivery. *)

type t

type entry = {
  seq : int;  (** stable per-session sequence number. *)
  message : Message.t;
  mutable unread : bool;
}

val open_session : Syntax_system.t -> Naming.Name.t -> t
(** @raise Invalid_argument if the user is unknown. *)

val user : t -> Naming.Name.t

val compose :
  t ->
  to_:Naming.Name.t ->
  ?subject:string ->
  ?body:string ->
  ?parts:Content.part list ->
  unit ->
  Message.t
(** Validate and submit a message through the system.
    @raise Invalid_argument if the recipient is unknown or the subject
    contains a newline (it could not be serialised later). *)

val reply : t -> entry -> ?body:string -> unit -> Message.t
(** Compose to the entry's sender with a ["Re: "] subject (not
    stacked on an existing ["Re: "]). *)

val fetch : t -> User_agent.check_stats
(** Run GetMail and fold newly retrieved messages into the inbox as
    unread entries. *)

val inbox : t -> entry list
(** Current entries, oldest first. *)

val unread_count : t -> int

val read : t -> int -> Message.t
(** Mark entry [seq] read and return the message.
    @raise Not_found for an unknown sequence number. *)

val delete : t -> int -> unit
(** Remove an entry. @raise Not_found for an unknown sequence number. *)

val save : t -> int -> folder:string -> unit
(** Move an entry into a named local folder (removes it from the
    inbox).  @raise Not_found / Invalid_argument on bad input. *)

val folder : t -> string -> Message.t list
(** Folder contents, oldest first ([] for unknown folders). *)

val folders : t -> string list
(** Folder names, sorted. *)
