module NameMap = Map.Make (Naming.Name)
module NameSet = Set.Make (Naming.Name)

type t = { mutable defs : Naming.Name.t list NameMap.t }

let create () = { defs = NameMap.empty }

let define t ~name ~members =
  if List.exists (Naming.Name.equal name) members then
    invalid_arg "Dlist.define: a list cannot contain itself";
  t.defs <- NameMap.add name members t.defs

let remove t name = t.defs <- NameMap.remove name t.defs

let is_list t name = NameMap.mem name t.defs

let members t name =
  match NameMap.find_opt name t.defs with Some m -> m | None -> []

let lists t = List.map fst (NameMap.bindings t.defs)

let expand t name =
  let rec go seen acc name =
    if NameSet.mem name seen then (seen, acc)
    else begin
      let seen = NameSet.add name seen in
      match NameMap.find_opt name t.defs with
      | None -> (seen, NameSet.add name acc)
      | Some members -> List.fold_left (fun (s, a) m -> go s a m) (seen, acc) members
    end
  in
  let _, acc = go NameSet.empty NameSet.empty name in
  NameSet.elements acc

let expand_all t names =
  List.concat_map (expand t) names |> List.sort_uniq Naming.Name.compare

let submit_via ~submit t name =
  List.map (fun recipient -> submit ~recipient) (expand t name)
