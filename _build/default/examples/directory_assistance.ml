(* Directory assistance (§3.3.1 "Directory Look-up").

   "People do not always remember the exact spelling of the full
   electronic mail addresses … Misspelling occurs so often that the
   system fails to recognize them."  This walkthrough plays a help
   desk: a caller knows a misspelled name, a rough organisation and a
   city; the assistant narrows candidates with fuzzy matching and
   attribute predicates, sets up a committee distribution list, and
   sends the minutes to it — all on a billed account.

   Run with: dune exec examples/directory_assistance.exe *)

let () =
  let rng = Dsim.Rng.create 1988 in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  let site =
    { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }
  in
  let sys = Mail.Attribute_system.create site in
  let base = Mail.Attribute_system.base sys in
  let users = Mail.Location_system.users base in

  (* Hand-curated directory entries for the cast, beside the random
     population. *)
  let alice = List.nth users 0 in
  let bob = List.nth users 31 in
  let carol = List.nth users 62 in
  List.iter
    (fun (who, full_name, org, city) ->
      Mail.Attribute_system.register_profile sys
        {
          Naming.Directory.name = who;
          attrs =
            [
              Naming.Attribute.text "name" full_name;
              Naming.Attribute.text "org" org;
              Naming.Attribute.text "city" city;
              Naming.Attribute.keywords "specialty" [ "standards"; "mail" ];
            ];
        })
    [
      (alice, "Alice Thornton", "acme", "boston");
      (bob, "Alyce Thornten", "acme", "boston");
      (carol, "Carol Weiss", "globex", "denver");
    ];
  Mail.Attribute_system.populate_random sys ~rng;

  (* The caller asks for "Alise Thornton" somewhere at acme. *)
  Printf.printf "caller: 'I need Alise Thornton, she works at acme'\n\n";
  let candidates =
    Mail.Attribute_system.regions sys
    |> List.concat_map (fun r ->
           match Mail.Attribute_system.directory sys r with
           | Some dir ->
               Naming.Directory.fuzzy_query dir ~viewer:Naming.Attribute.anyone
                 ~key:"name" ~max_distance:3 "Alise Thornton"
           | None -> [])
  in
  Printf.printf "fuzzy name matches (distance <= 3):\n";
  List.iter
    (fun (name, d) ->
      Printf.printf "  %-22s distance %d\n" (Naming.Name.to_string name) d)
    candidates;

  (* Ambiguous — "the user can provide more information to separate
     them": filter the candidates through an attribute query. *)
  let refined =
    List.filter
      (fun (name, _) ->
        match Mail.Attribute_system.profile_of sys name with
        | Some p ->
            Naming.Attribute.matches ~viewer:Naming.Attribute.anyone
              ~attrs:p.Naming.Directory.attrs
              (Naming.Attribute.And
                 [
                   Naming.Attribute.Eq ("org", Naming.Attribute.Text "acme");
                   Naming.Attribute.Eq ("city", Naming.Attribute.Text "boston");
                 ])
        | None -> false)
      candidates
  in
  Printf.printf "\nafter refining by org=acme and city=boston: %d candidates\n"
    (List.length refined);

  (* Build a committee list from the two Thorntons plus Carol, and mail
     the minutes through a billed account. *)
  let dl = Mail.Dlist.create () in
  let committee = Naming.Name.make ~region:"r0" ~host:"hq" ~user:"committee" in
  Mail.Dlist.define dl ~name:committee
    ~members:(carol :: List.map fst candidates);
  Printf.printf "\ncommittee list expands to %d members\n"
    (List.length (Mail.Dlist.expand dl committee));

  let billing = Mail.Billing.create ~initial_balance:0.5 () in
  let sender = alice in
  (match
     Mail.Billing.mass_mail billing sys ~sender ~viewer:Naming.Attribute.anyone
       (Naming.Attribute.Has_keyword ("specialty", "standards"))
   with
  | Error reason -> Printf.printf "\nbroadcast refused (flow control): %s\n" reason
  | Ok _ -> Printf.printf "\nbroadcast unexpectedly allowed!\n");
  Mail.Billing.credit billing sender 500.;
  (match
     Mail.Billing.mass_mail billing sys ~sender ~viewer:Naming.Attribute.anyone
       (Naming.Attribute.Has_keyword ("specialty", "standards"))
   with
  | Error reason -> Printf.printf "still refused: %s\n" reason
  | Ok billed ->
      Printf.printf "after a 500.0 credit: charged %.2f, %d recipients, %.2f left\n"
        billed.Mail.Billing.charged
        (List.length billed.Mail.Billing.messages)
        billed.Mail.Billing.remaining);
  Mail.Location_system.quiesce base;

  (* Ordinary mail to the committee list rides the same substrate. *)
  let msgs =
    Mail.Dlist.submit_via
      ~submit:(fun ~recipient ->
        Mail.Location_system.submit base ~sender ~recipient ~subject:"minutes" ())
      dl committee
  in
  Mail.Location_system.quiesce base;
  Printf.printf "minutes delivered to %d of %d committee members\n"
    (List.length (List.filter Mail.Message.is_deposited msgs))
    (List.length msgs)
