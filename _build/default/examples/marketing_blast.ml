(* Attribute-based mass distribution (design 3, §3.3).

   A vendor wants to reach every networking specialist it is allowed
   to see, across a five-region internetwork — without knowing any
   recipient addresses.  The example walks the full §3.3 flow: build
   the backbone + local MSTs, consult the cost table, trim the target
   regions to a budget (flow control), run the convergecast search,
   and mass-mail the matches.

   Run with: dune exec examples/marketing_blast.exe *)

let () =
  let rng = Dsim.Rng.create 42 in
  let spec = { Netsim.Topology.default_hierarchy with regions = 5 } in
  let g = Netsim.Topology.hierarchical ~rng spec in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  let site =
    { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }
  in
  let sys = Mail.Attribute_system.create site in
  Mail.Attribute_system.populate_random sys ~rng;
  let base = Mail.Attribute_system.base sys in
  let vendor = List.hd (Mail.Location_system.users base) in
  Printf.printf "vendor: %s\n" (Naming.Name.to_string vendor);

  (* 1. Consult the cost table before broadcasting anything. *)
  let table = Mail.Attribute_system.cost_table sys ~source:"r0" in
  Format.printf "@.%a@." Mst.Cost_table.pp table;

  (* 2. Flow control: a limited budget selects the affordable regions. *)
  let budget = 100. in
  let regions = Mail.Attribute_system.budget_regions sys ~source:"r0" ~budget in
  Printf.printf "\nbudget %.0f allows regions: {%s}\n" budget
    (String.concat ", " regions);

  (* 3. Search for networking specialists among the affordable regions. *)
  let pred = Naming.Attribute.Has_keyword ("specialty", "networking") in
  let result, messages =
    Mail.Attribute_system.mass_mail sys ~sender:vendor ~regions
      ~subject:"new router lineup" ~viewer:Naming.Attribute.anyone pred
  in
  Printf.printf "\nsearch examined %d profiles and matched %d users\n"
    result.Mail.Attribute_system.examined
    (List.length result.Mail.Attribute_system.matches);
  Printf.printf "convergecast: %d messages, %d link crossings, %d summaries timed out\n"
    result.Mail.Attribute_system.traffic.Mst.Broadcast.g_messages
    result.Mail.Attribute_system.traffic.Mst.Broadcast.g_link_crossings
    result.Mail.Attribute_system.traffic.Mst.Broadcast.timed_out_children;
  Printf.printf "estimated broadcast cost %.2f for %d regions\n"
    result.Mail.Attribute_system.estimated_cost
    (List.length result.Mail.Attribute_system.regions_searched);

  (* 4. Deliveries ride the ordinary mail substrate. *)
  Mail.Location_system.quiesce base;
  let delivered = List.length (List.filter Mail.Message.is_deposited messages) in
  Printf.printf "\nmass mail: %d sent, %d delivered\n" (List.length messages) delivered;

  (* 5. Privacy: salary-band queries only work inside the organisation. *)
  let salary_pred = Naming.Attribute.Between ("experience", 10., 40.) in
  let outside =
    Mail.Attribute_system.search sys ~from:vendor ~viewer:Naming.Attribute.anyone
      salary_pred
  in
  let inside =
    Mail.Attribute_system.search sys ~from:vendor
      ~viewer:(Naming.Attribute.member_of "acme") salary_pred
  in
  Printf.printf
    "\nexperience query — matches as outsider: %d, as acme member: %d\n"
    (List.length outside.Mail.Attribute_system.matches)
    (List.length inside.Mail.Attribute_system.matches)
