(* Quickstart: build a design-1 mail system on the paper's Figure 1
   topology, send a message, and retrieve it with GetMail.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A topology: six hosts, three servers, one region (Fig. 1). *)
  let site = Netsim.Topology.paper_fig1 () in

  (* 2. The mail system. Construction runs the §3.1.1 load balancer to
     assign each user an ordered list of authority servers. *)
  let sys = Mail.Syntax_system.create site in
  let users = Mail.Syntax_system.users sys in
  Printf.printf "the system has %d users, e.g. %s\n" (List.length users)
    (Naming.Name.to_string (List.hd users));

  (* 3. Pick two users and send a message. *)
  let alice = List.nth users 0 in
  let bob = List.nth users 20 in
  let msg =
    Mail.Syntax_system.submit sys ~sender:alice ~recipient:bob
      ~subject:"hello" ~body:"greetings from 1988" ()
  in
  Printf.printf "%s -> %s submitted\n" (Naming.Name.to_string alice)
    (Naming.Name.to_string bob);

  (* 4. Run the simulation until the pipeline settles. The message is
     resolved by the sender's server and deposited in the first active
     authority server of the recipient. *)
  Mail.Syntax_system.run_until sys 100.;
  (match Mail.Message.delivery_latency msg with
  | Some l -> Printf.printf "deposited after %.1f time units\n" l
  | None -> Printf.printf "not delivered?!\n");

  (* 5. Bob checks his mail using the paper's GetMail algorithm. *)
  let stats = Mail.Syntax_system.check_mail sys bob in
  Printf.printf "bob polled %d server(s) and retrieved %d message(s)\n"
    stats.Mail.User_agent.polls stats.Mail.User_agent.retrieved;
  List.iter
    (fun m ->
      Printf.printf "  inbox: %s (from %s)\n" m.Mail.Message.subject
        (Naming.Name.to_string m.Mail.Message.sender))
    (Mail.User_agent.inbox (Mail.Syntax_system.agent sys bob));

  (* 6. A system-wide report against the §4 evaluation criteria. *)
  Format.printf "@.%a@." Mail.Evaluation.pp (Mail.Evaluation.of_syntax sys)
