(* Campus mail under server failures (design 1, §3.1).

   A university campus runs three mail servers for six departmental
   hosts.  Servers crash and recover while students keep sending mail;
   the example shows the failure-handling machinery end to end:
   deposits fail over to secondary authority servers, the GetMail
   algorithm drains recovered servers, and no message is ever lost.
   A graduating student finally migrates to another host, exercising
   the §3.1.4 rename-with-redirection procedure.

   Run with: dune exec examples/campus_mail.exe *)

let () =
  let site = Netsim.Topology.paper_fig1 () in
  let sys = Mail.Syntax_system.create site in
  let net = Mail.Syntax_system.net sys in
  let users = Array.of_list (Mail.Syntax_system.users sys) in
  let rng = Dsim.Rng.create 1988 in

  (* Background traffic: 60 messages over 3000 time units. *)
  let sent = ref [] in
  List.iter
    (fun at ->
      let s = Dsim.Rng.int rng (Array.length users) in
      let r = (s + 1 + Dsim.Rng.int rng (Array.length users - 1)) mod Array.length users in
      sent :=
        Mail.Syntax_system.submit_at sys ~at ~sender:users.(s) ~recipient:users.(r)
          ~subject:(Printf.sprintf "memo-%g" at) ()
        :: !sent)
    (Queueing.Workload.uniform_arrivals ~rng ~count:60 ~horizon:3000.);

  (* Two scheduled outages: S1 early, S2 later, overlapping nothing. *)
  let servers = Mail.Syntax_system.server_nodes sys in
  let s1 = List.nth servers 0 and s2 = List.nth servers 1 in
  Netsim.Failure.schedule_outages net
    [
      { Netsim.Failure.node = s1; start = 500.; duration = 400. };
      { Netsim.Failure.node = s2; start = 1500.; duration = 600. };
    ];
  Printf.printf "scheduled outages: S1 down [500,900), S2 down [1500,2100)\n";

  (* Students check mailboxes every 250 time units. *)
  Array.iteri
    (fun i u ->
      let rec arm at =
        if at < 3000. then begin
          Mail.Syntax_system.check_mail_at sys ~at u;
          arm (at +. 250.)
        end
      in
      arm (50. +. float_of_int i))
    users;

  Mail.Syntax_system.run_until sys 3000.;
  Mail.Syntax_system.quiesce sys;

  (* Everyone checks one final time after the dust settles. *)
  Array.iter (fun u -> ignore (Mail.Syntax_system.check_mail sys u)) users;

  let report = Mail.Evaluation.of_syntax sys in
  Format.printf "@.%a@.@." Mail.Evaluation.pp report;
  assert (report.Mail.Evaluation.undelivered = 0);
  assert (report.Mail.Evaluation.unretrieved = 0);
  Printf.printf "no mail was lost across both outages ✔\n";
  Printf.printf "retries used: %d, polls per check: %.2f\n"
    report.Mail.Evaluation.retries report.Mail.Evaluation.polls_per_check;

  (* Graduation: the first user moves from H1 to H6 and gets a new
     name; mail addressed to the old name is redirected. *)
  let graduate = users.(0) in
  let h6 = fst (List.nth site.Netsim.Topology.hosts 5) in
  let new_name = Mail.Syntax_system.migrate_user sys graduate ~new_host:h6 in
  Printf.printf "\n%s graduated and is now %s\n"
    (Naming.Name.to_string graduate)
    (Naming.Name.to_string new_name);
  let farewell =
    Mail.Syntax_system.submit sys ~sender:users.(5) ~recipient:graduate
      ~subject:"farewell" ()
  in
  Mail.Syntax_system.quiesce sys;
  ignore (Mail.Syntax_system.check_mail sys new_name);
  Printf.printf "mail to the old address was redirected and read: %b\n"
    (Mail.Message.is_retrieved farewell)
