examples/roaming_users.mli:
