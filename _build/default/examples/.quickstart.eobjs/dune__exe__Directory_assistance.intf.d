examples/directory_assistance.mli:
