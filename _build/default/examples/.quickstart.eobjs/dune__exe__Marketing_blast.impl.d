examples/marketing_blast.ml: Dsim Format List Mail Mst Naming Netsim Printf String
