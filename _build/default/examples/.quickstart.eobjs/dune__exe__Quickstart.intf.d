examples/quickstart.mli:
