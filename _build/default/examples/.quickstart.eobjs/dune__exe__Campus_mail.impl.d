examples/campus_mail.ml: Array Dsim Format List Mail Naming Netsim Printf Queueing
