examples/quickstart.ml: Format List Mail Naming Netsim Printf
