examples/campus_mail.mli:
