examples/roaming_users.ml: Dsim Format List Mail Naming Netsim Printf
