examples/directory_assistance.ml: Dsim List Mail Naming Netsim Printf
