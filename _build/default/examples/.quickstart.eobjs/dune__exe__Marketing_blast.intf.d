examples/marketing_blast.mli:
