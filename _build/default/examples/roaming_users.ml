(* Roaming consultants (design 2, §3.2).

   A consultancy spans three regions.  Consultants log in from
   whatever office they visit; within a region this needs no renaming
   and no server reassignment — the servers gossip the user's current
   location and new-mail alerts follow them around.  The example also
   exercises the two reconfiguration levers: changing the hash function
   (§3.2.3c) and a cross-region move (§3.2.4).

   Run with: dune exec examples/roaming_users.exe *)

let () =
  let rng = Dsim.Rng.create 7 in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  let site =
    { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }
  in
  let sys = Mail.Location_system.create site in
  let users = Mail.Location_system.users sys in
  let in_region r = List.filter (fun u -> Naming.Name.region u = r) users in
  let hosts_of r =
    List.filter (fun v -> Netsim.Graph.kind g v = Netsim.Graph.Host)
      (Netsim.Graph.nodes_in_region g r)
  in

  let consultant = List.hd (in_region "r1") in
  let client = List.hd (in_region "r0") in
  Printf.printf "consultant %s, primary host %s\n"
    (Naming.Name.to_string consultant)
    (Netsim.Graph.label g (Mail.Location_system.primary_host sys consultant));

  (* The client sends a contract while the consultant is at the
     primary office. *)
  ignore
    (Mail.Location_system.submit sys ~sender:client ~recipient:consultant
       ~subject:"contract-v1" ());
  Mail.Location_system.run_until sys 100.;

  (* The consultant drops by a different office in the same region —
     the login retrieves the pending contract on the spot, with no
     renaming and no authority-server change. *)
  let away_office = List.nth (hosts_of "r1") 3 in
  let auth_before = Mail.Location_system.authority_of sys consultant in
  let st = Mail.Location_system.login sys consultant ~host:away_office in
  Printf.printf "logged in at %s: retrieved %d message(s) on login\n"
    (Netsim.Graph.label g away_office)
    st.Mail.User_agent.retrieved;
  assert (Mail.Location_system.authority_of sys consultant = auth_before);
  Printf.printf "authority servers unchanged by the move ✔\n";
  Mail.Location_system.run_until sys 200.;

  (* Mail sent now alerts the consultant at the away office. *)
  ignore
    (Mail.Location_system.submit sys ~sender:client ~recipient:consultant
       ~subject:"contract-v2" ());
  Mail.Location_system.run_until sys 400.;
  let c = Mail.Location_system.counters sys in
  Printf.printf "location updates so far: %d (gossip messages: %d)\n"
    (Dsim.Stats.Counter.get c "location_updates")
    (Dsim.Stats.Counter.get c "location_gossip");
  ignore (Mail.Location_system.check_mail sys consultant);

  (* Reconfiguration by changing the hash function: count how many
     users' authority assignments move. *)
  let moved = Mail.Location_system.rebalance_hash sys ~groups:5 in
  Printf.printf "\nrehashing 8 -> 5 groups reassigned %d of %d users\n" moved
    (List.length users);

  (* A permanent cross-region move needs a rename (§3.2.4). *)
  let hq_host = List.hd (hosts_of "r0") in
  let new_name = Mail.Location_system.migrate_region sys consultant ~new_host:hq_host in
  Printf.printf "\npermanent move to HQ: %s -> %s\n"
    (Naming.Name.to_string consultant)
    (Naming.Name.to_string new_name);
  let m =
    Mail.Location_system.submit sys ~sender:client ~recipient:consultant
      ~subject:"sent-to-old-name" ()
  in
  Mail.Location_system.quiesce sys;
  ignore (Mail.Location_system.check_mail sys new_name);
  Printf.printf "mail to the old name was redirected and read: %b\n"
    (Mail.Message.is_retrieved m);
  Format.printf "@.%a@." Mail.Evaluation.pp (Mail.Evaluation.of_location sys)
