.PHONY: all build test bench bench-scale bench-scale-quick examples clean doc lint determinism

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --skip-micro

# Large-scale throughput benchmark: >= 50k messages through the syntax
# system under the standard fault campaign; writes the `scale` section
# of BENCH.json (see docs/PERF.md).
bench-scale:
	dune exec bench/main.exe -- --scale-only

bench-scale-quick:
	dune exec bench/main.exe -- --scale-only --scale-quick

lint:
	dune build bin/lint
	dune exec bin/lint/main.exe -- lib bin

determinism:
	scripts/check_determinism.sh

examples:
	dune exec examples/quickstart.exe
	dune exec examples/campus_mail.exe
	dune exec examples/roaming_users.exe
	dune exec examples/marketing_blast.exe
	dune exec examples/directory_assistance.exe

clean:
	dune clean
