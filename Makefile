.PHONY: all build test bench examples clean doc lint determinism

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --skip-micro

lint:
	dune build bin/lint
	dune exec bin/lint/main.exe -- lib bin

determinism:
	scripts/check_determinism.sh

examples:
	dune exec examples/quickstart.exe
	dune exec examples/campus_mail.exe
	dune exec examples/roaming_users.exe
	dune exec examples/marketing_blast.exe
	dune exec examples/directory_assistance.exe

clean:
	dune clean
