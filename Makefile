.PHONY: all build test bench bench-scale bench-scale-quick examples clean doc lint analyze analyze-baseline determinism

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --skip-micro

# Large-scale throughput benchmark: >= 50k messages through the syntax
# system under the standard fault campaign; writes the `scale` section
# of BENCH.json (see docs/PERF.md).
bench-scale:
	dune exec bench/main.exe -- --scale-only

bench-scale-quick:
	dune exec bench/main.exe -- --scale-only --scale-quick

lint:
	dune build bin/lint
	dune exec bin/lint/main.exe -- lib bin

# Type-aware analysis over the .cmt typed ASTs: the hot-path
# allocation ratchet (vs analysis_baseline.json), metric-name and
# span/stage doc parity, and typed polymorphic-compare checks.  Needs
# a full build first — .cmt files are a build artifact (docs/LINT.md).
analyze:
	dune build @all
	dune exec bin/analyze/main.exe -- --json ANALYSIS.json lib bin

# Conscious re-ratchet: rewrite analysis_baseline.json from the
# current tree.  Review the diff — a count going up is a regression
# you are choosing to accept.
analyze-baseline:
	dune build @all
	dune exec bin/analyze/main.exe -- --write-baseline lib bin

determinism:
	scripts/check_determinism.sh

examples:
	dune exec examples/quickstart.exe
	dune exec examples/campus_mail.exe
	dune exec examples/roaming_users.exe
	dune exec examples/marketing_blast.exe
	dune exec examples/directory_assistance.exe

clean:
	dune clean
