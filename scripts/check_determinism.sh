#!/bin/sh
# Double-run reproducibility harness.
#
# Runs the fault campaign (mailsim faults -> LEDGER.json) and the
# benchmark snapshot (bench -> BENCH.json + TRACE.jsonl) twice, each
# under OCAMLRUNPARAM=R (randomized Hashtbl seeds), and fails unless
# every artifact is byte-identical between the two runs.  Randomized
# hashing makes any Hashtbl-iteration-order leak visible immediately;
# the companion static pass is `dune exec mailsys.lint -- lib bin`.
#
# Usage: scripts/check_determinism.sh   (from the repository root)
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$ROOT"

dune build @all bin/lint >/dev/null

WORK=$(mktemp -d "${TMPDIR:-/tmp}/mailsys-determinism.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

one_run() {
  dir="$1"
  mkdir -p "$dir"
  (
    cd "$dir"
    # --stable keeps the embedded metric registries free of volatile
    # (wall-clock-derived) metrics so the artifacts byte-compare.
    OCAMLRUNPARAM=R dune exec --root "$ROOT" bin/mailsim.exe -- \
      faults --seed 1 --stable --ledger-out LEDGER.json >faults.txt
    # A replicated run under the standard campaign: quorum deposit,
    # failover GetMail and recovery resync must all replay
    # byte-identically — SCALE.json carries the full ledger verdict
    # plus the replica and failover counters (docs/REPLICATION.md),
    # the SLO section, and the run writes the windowed metric
    # timeseries next to it (docs/MONITORING.md).
    OCAMLRUNPARAM=R dune exec --root "$ROOT" bin/mailsim.exe -- \
      scale --messages 2000 --replication 4 --stable \
      --json-out SCALE.json --timeseries-out TIMESERIES-scale.json >scale.txt
    # --scale-quick keeps the runs fast; --stable zeroes the scale
    # section's wall-clock-derived fields so BENCH.json (including the
    # scale benchmark's counters and critical path) byte-compares.
    OCAMLRUNPARAM=R dune exec --root "$ROOT" bench/main.exe -- \
      --skip-micro --scale-quick --stable >bench.txt
  )
}

echo "determinism: run 1 (OCAMLRUNPARAM=R)"
one_run "$WORK/run1"
echo "determinism: run 2 (OCAMLRUNPARAM=R)"
one_run "$WORK/run2"

status=0
for artifact in BENCH.json TRACE.jsonl LEDGER.json SCALE.json \
    TIMESERIES.json TIMESERIES-scale.json; do
  if cmp -s "$WORK/run1/$artifact" "$WORK/run2/$artifact"; then
    echo "determinism: $artifact byte-identical"
  else
    echo "determinism: FAIL — $artifact differs between identical seeded runs" >&2
    cmp "$WORK/run1/$artifact" "$WORK/run2/$artifact" >&2 || true
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "determinism: OK (BENCH.json, TRACE.jsonl, LEDGER.json, SCALE.json, TIMESERIES[-scale].json stable under randomized hash seeds)"
fi
exit "$status"
