(* Shared command-line plumbing for the mailsim subcommands.

   Every subcommand used to declare its own copies of the common flags
   (seed, duration, mail volume, region count, output files), with the
   docstrings slowly drifting apart.  They are defined once here; a
   subcommand composes the ones it needs and adds only its own
   specific options. *)

open Cmdliner

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let duration =
  Arg.(
    value & opt float 5000. & info [ "duration" ] ~docv:"TIME" ~doc:"Virtual time.")

(* Mail volume; subcommands differ only in the default (300 for the
   scenario drivers, 50k for the scale benchmark). *)
let messages ~default =
  Arg.(value & opt int default & info [ "messages" ] ~docv:"N" ~doc:"Mail volume.")

let regions ~default =
  Arg.(value & opt int default & info [ "regions" ] ~docv:"N" ~doc:"Region count.")

(* An optional output-file flag: [output_file ~flag:"json-out" ~doc:...]. *)
let output_file ~flag:name ~doc =
  Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)

let campaign_syntax_doc =
  "Items: crash:RATE[/MEAN|/=FIXED], link:RATE[/MEAN|/=FIXED], \
   partition:REGION[@START+DURATION], burst:FRACTION[@START+DURATION], seed:N."

(* The hierarchical multi-region site most subcommands drive. *)
let hier_site ~seed ~regions ~hosts_per_region =
  let rng = Dsim.Rng.create seed in
  let spec =
    { Netsim.Topology.default_hierarchy with regions; hosts_per_region }
  in
  let g = Netsim.Topology.hierarchical ~rng spec in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

(* Open [file], hand the channel to [write], and fail with a clean
   message instead of an exception trace when the path is unwritable —
   shared by every output-file option. *)
let with_output ~what file write =
  match open_out file with
  | exception Sys_error msg ->
      Printf.eprintf "mailsim: cannot write %s: %s\n" what msg;
      exit 1
  | oc ->
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
      Printf.printf "%s written to %s\n" what file

(* Pretty-printed JSON document to [file] through [with_output] — the
   one way every subcommand writes its artifacts. *)
let write_json ~what file json =
  with_output ~what file (fun oc ->
      output_string oc (Telemetry.Json.to_string ~indent:2 json);
      output_char oc '\n')

(* The byte-stability convention shared with the bench harness: JSON
   artifacts normally embed the full registry including volatile
   (wall-clock-derived) metrics; [--stable] excludes them so the
   double-run determinism harness can byte-compare the files. *)
let stable =
  Arg.(
    value
    & flag
    & info [ "stable" ]
        ~doc:
          "Byte-stable artifacts: exclude volatile (wall-clock-derived) \
           metrics from JSON output so identical seeded runs compare \
           byte-for-byte.")

(* Observability sampling, shared by getmail/scale/monitor: how often
   (in virtual time) the timeseries sampler and monitors run, and
   where the TIMESERIES.json document goes. *)
let resolution =
  Arg.(
    value
    & opt (some float) None
    & info [ "sample-resolution" ] ~docv:"TIME"
        ~doc:
          "Virtual-time distance between observability windows (metric \
           timeseries samples and monitor evaluations).")

let timeseries_file =
  output_file ~flag:"timeseries-out"
    ~doc:
      "Write the run's windowed metric timeseries (delta-encoded, \
       mailsys.timeseries/1) to $(docv) as JSON."
