(* Shared command-line plumbing for the mailsim subcommands.

   Every subcommand used to declare its own copies of the common flags
   (seed, duration, mail volume, region count, output files), with the
   docstrings slowly drifting apart.  They are defined once here; a
   subcommand composes the ones it needs and adds only its own
   specific options. *)

open Cmdliner

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let duration =
  Arg.(
    value & opt float 5000. & info [ "duration" ] ~docv:"TIME" ~doc:"Virtual time.")

(* Mail volume; subcommands differ only in the default (300 for the
   scenario drivers, 50k for the scale benchmark). *)
let messages ~default =
  Arg.(value & opt int default & info [ "messages" ] ~docv:"N" ~doc:"Mail volume.")

let regions ~default =
  Arg.(value & opt int default & info [ "regions" ] ~docv:"N" ~doc:"Region count.")

(* An optional output-file flag: [output_file ~flag:"json-out" ~doc:...]. *)
let output_file ~flag:name ~doc =
  Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)

let campaign_syntax_doc =
  "Items: crash:RATE[/MEAN|/=FIXED], link:RATE[/MEAN|/=FIXED], \
   partition:REGION[@START+DURATION], burst:FRACTION[@START+DURATION], seed:N."

(* The hierarchical multi-region site most subcommands drive. *)
let hier_site ~seed ~regions ~hosts_per_region =
  let rng = Dsim.Rng.create seed in
  let spec =
    { Netsim.Topology.default_hierarchy with regions; hosts_per_region }
  in
  let g = Netsim.Topology.hierarchical ~rng spec in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

(* Open [file], hand the channel to [write], and fail with a clean
   message instead of an exception trace when the path is unwritable —
   shared by every output-file option. *)
let with_output ~what file write =
  match open_out file with
  | exception Sys_error msg ->
      Printf.eprintf "mailsim: cannot write %s: %s\n" what msg;
      exit 1
  | oc ->
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
      Printf.printf "%s written to %s\n" what file
