(* mailsim — command-line driver for the mail-system simulations.

   Subcommands map onto the experiments of DESIGN.md so any individual
   result can be regenerated (and varied) without rebuilding the full
   bench harness. *)

open Cmdliner

(* Shared flags and helpers (seed, duration, volumes, output files)
   live in {!Cmdline}; aliased here so subcommand bodies read plainly. *)
let hier_site = Cmdline.hier_site
let seed_arg = Cmdline.seed
let with_output = Cmdline.with_output

(* --- balance ----------------------------------------------------------- *)

let balance_cmd =
  let run seed hosts servers batch fig1 =
    let site =
      if fig1 then Netsim.Topology.paper_fig1 ()
      else begin
        let rng = Dsim.Rng.create seed in
        Netsim.Topology.random_mail_site ~rng ~hosts ~servers ~users_per_host:(20, 60)
          ~extra_edges:hosts
      end
    in
    let total = List.fold_left (fun a (_, n) -> a + n) 0 site.Netsim.Topology.hosts in
    let servers_n = List.length site.Netsim.Topology.servers in
    let capacity _ =
      if fig1 then 100 else 1 + (total * 5 / (4 * servers_n))
    in
    let problem = Loadbalance.Assignment.problem_of_site ~capacity site in
    let t = Loadbalance.Balancer.initialize problem in
    Format.printf "initial assignment:@.%a@.@."
      (Loadbalance.Assignment.pp_table problem) t;
    let stats = Loadbalance.Balancer.balance ~batch problem t in
    Format.printf "balanced assignment:@.%a@.@.%a@."
      (Loadbalance.Assignment.pp_table problem)
      t Loadbalance.Balancer.pp_stats stats
  in
  let hosts = Arg.(value & opt int 10 & info [ "hosts" ] ~doc:"Host count (random site).") in
  let servers = Arg.(value & opt int 3 & info [ "servers" ] ~doc:"Server count (random site).") in
  let batch = Arg.(value & flag & info [ "batch" ] ~doc:"Move users in bulk.") in
  let fig1 =
    Arg.(value & flag & info [ "fig1" ] ~doc:"Use the paper's Figure 1 example site.")
  in
  Cmd.v
    (Cmd.info "balance" ~doc:"Run the §3.1.1 server-assignment algorithm (T1/T2).")
    Term.(const run $ seed_arg $ hosts $ servers $ batch $ fig1)

(* --- getmail ----------------------------------------------------------- *)

let getmail_cmd =
  let run seed failure_rate duration mail_count policy faults metrics_file
      trace_file trace_summary resolution timeseries_file stable =
    let retrieval =
      match policy with
      | "getmail" -> Mail.Scenario.Get_mail
      | "poll-all" -> Mail.Scenario.Poll_all
      | "naive" -> Mail.Scenario.Naive
      | other -> failwith (Printf.sprintf "unknown policy %S" other)
    in
    let faults = Option.map Netsim.Fault.parse faults in
    (* Sampling turns on when a timeseries was asked for (or a
       resolution given explicitly). *)
    let sampling =
      match (resolution, timeseries_file) with
      | Some r, _ -> Some r
      | None, Some _ -> Some 50.
      | None, None -> None
    in
    let spec =
      {
        Mail.Scenario.default_spec with
        seed;
        failure_rate;
        duration;
        mail_count;
        retrieval;
        faults;
        sampling;
      }
    in
    let o = Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()) spec in
    Printf.printf "availability     %.3f\n" o.Mail.Scenario.availability;
    Printf.printf "polls per check  %.3f\n" o.Mail.Scenario.final_polls_per_check;
    Printf.printf "inbox total      %d\n" o.Mail.Scenario.inbox_total;
    Format.printf "ledger           %a@." Mail.Ledger.pp_verdict
      o.Mail.Scenario.ledger;
    Format.printf "%a@." Mail.Evaluation.pp o.Mail.Scenario.report;
    if trace_summary then begin
      Format.printf "@[<v>%a@]@." Telemetry.Critical_path.pp
        (Telemetry.Critical_path.analyze o.Mail.Scenario.tracer);
      Format.printf "@[<v>%a@]@." Telemetry.Critical_path.pp
        (Telemetry.Critical_path.analyze ~root:"getmail.check"
           o.Mail.Scenario.tracer)
    end;
    (match metrics_file with
    | None -> ()
    | Some file ->
        Cmdline.write_json ~what:"metrics" file
          (Telemetry.Registry.to_json ~include_volatile:(not stable)
             o.Mail.Scenario.metrics));
    (match (timeseries_file, o.Mail.Scenario.timeseries) with
    | Some file, Some ts ->
        Cmdline.write_json ~what:"timeseries" file
          (Telemetry.Timeseries.to_json ts)
    | _ -> ());
    match trace_file with
    | None -> ()
    | Some file ->
        with_output ~what:"trace" file (fun oc ->
            (* One JSON object per line, spans then event-log records,
               each tagged with a "type" so consumers can split the
               stream. *)
            let tag kind = function
              | Telemetry.Json.Obj fields ->
                  Telemetry.Json.Obj
                    (("type", Telemetry.Json.String kind) :: fields)
              | other -> other
            in
            let emit line =
              output_string oc (Telemetry.Json.to_string line);
              output_char oc '\n'
            in
            List.iter
              (fun span -> emit (tag "span" (Telemetry.Span.to_json span)))
              (Telemetry.Tracer.spans o.Mail.Scenario.tracer);
            Dsim.Trace.iter
              (fun r ->
                emit
                  (tag "log"
                     (Telemetry.Json.of_string (Dsim.Trace.json_of_record r))))
              o.Mail.Scenario.events)
  in
  let rate =
    Arg.(value & opt float 0. & info [ "failure-rate" ] ~doc:"Server outage rate.")
  in
  let duration = Cmdline.duration in
  let count = Cmdline.messages ~default:300 in
  let policy =
    Arg.(
      value
      & opt string "getmail"
      & info [ "policy" ] ~doc:"Retrieval policy: getmail, poll-all or naive.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"CAMPAIGN"
          ~doc:
            ("Deterministic fault campaign, e.g. \
              $(b,crash:0.002/150,link:0.001,partition:regionA,burst:0.3). "
           ^ Cmdline.campaign_syntax_doc))
  in
  let metrics_file =
    Cmdline.output_file ~flag:"metrics"
      ~doc:
        "Write the run's full metric registry (counters, gauges, latency \
         histograms with p50/p90/p99) to $(docv) as JSON."
  in
  let trace_file =
    Cmdline.output_file ~flag:"trace-out"
      ~doc:
        "Write the run's spans and event log to $(docv) as JSONL: one object \
         per line, tagged type=span (per-message and per-check trace spans) or \
         type=log (the bounded simulation event log)."
  in
  let trace_summary =
    Arg.(
      value
      & flag
      & info [ "trace-summary" ]
          ~doc:"Print per-stage critical-path latency breakdowns (p50/p90/p99) \
                reconstructed from the run's message and retrieval traces.")
  in
  Cmd.v
    (Cmd.info "getmail" ~doc:"Drive a design-1 scenario and report §4 metrics (C1/C2).")
    Term.(
      const run $ seed_arg $ rate $ duration $ count $ policy $ faults
      $ metrics_file $ trace_file $ trace_summary $ Cmdline.resolution
      $ Cmdline.timeseries_file $ Cmdline.stable)

(* --- faults ------------------------------------------------------------- *)

let faults_cmd =
  let run seed campaign duration mail_count ledger_file stable =
    let campaign = Netsim.Fault.parse campaign in
    let spec =
      {
        Mail.Scenario.default_spec with
        seed;
        duration;
        mail_count;
        faults = Some campaign;
      }
    in
    (* Partitions need region boundaries, so drive the hierarchical
       multi-region site rather than the single-region Figure 1 one. *)
    let site () = hier_site ~seed ~regions:3 ~hosts_per_region:4 in
    let results =
      [
        ("syntax", Mail.Scenario.run_syntax (site ()) spec);
        ("location", Mail.Scenario.run_location ~roam_probability:0.3 (site ()) spec);
        ("attribute", Mail.Scenario.run_attribute ~roam_probability:0.3 (site ()) spec);
      ]
    in
    Printf.printf "campaign: %s\n\n" (Netsim.Fault.to_string campaign);
    List.iter
      (fun (name, o) ->
        Printf.printf "[%s] availability %.3f, fault windows %.0f\n" name
          o.Mail.Scenario.availability
          (Telemetry.Registry.get_gauge o.Mail.Scenario.metrics "fault_windows");
        Format.printf "  %a@." Mail.Ledger.pp_verdict o.Mail.Scenario.ledger)
      results;
    (match ledger_file with
    | None -> ()
    | Some file ->
        let entry (name, o) =
          ( name,
            Telemetry.Json.Obj
              [
                ("availability", Telemetry.Json.Float o.Mail.Scenario.availability);
                ( "fault_windows",
                  Telemetry.Json.Float
                    (Telemetry.Registry.get_gauge o.Mail.Scenario.metrics
                       "fault_windows") );
                ("ledger", Mail.Ledger.verdict_to_json o.Mail.Scenario.ledger);
                ( "metrics",
                  Telemetry.Registry.to_json ~include_volatile:(not stable)
                    o.Mail.Scenario.metrics );
              ] )
        in
        let json =
          Telemetry.Json.Obj
            [
              ("schema", Telemetry.Json.String "mailsys.ledger/2");
              ("campaign", Telemetry.Json.String (Netsim.Fault.to_string campaign));
              ("seed", Telemetry.Json.Int seed);
              ("designs", Telemetry.Json.Obj (List.map entry results));
            ]
        in
        Cmdline.write_json ~what:"ledger report" file json);
    let all_ok =
      List.for_all (fun (_, o) -> o.Mail.Scenario.ledger.Mail.Ledger.ok) results
    in
    if not all_ok then begin
      Printf.eprintf "mailsim: delivery invariant violated\n";
      exit 1
    end
  in
  let campaign =
    Arg.(
      value
      & opt string "crash:0.002/150,link:0.0008,partition:r1@1500+600,burst:0.25"
      & info [ "campaign" ] ~docv:"CAMPAIGN"
          ~doc:"Fault campaign to run (same syntax as $(b,getmail --faults)).")
  in
  let duration = Cmdline.duration in
  let count = Cmdline.messages ~default:300 in
  let ledger_file =
    Cmdline.output_file ~flag:"ledger-out"
      ~doc:"Write per-design availability and ledger verdicts to $(docv) as JSON."
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run one fault campaign against all three designs and check the \
          §3.1.2c no-lost-mail invariant; exits non-zero on any violation.")
    Term.(
      const run $ seed_arg $ campaign $ duration $ count $ ledger_file
      $ Cmdline.stable)

(* --- scale ------------------------------------------------------------- *)

let scale_cmd =
  let run seed messages regions hosts_per_region servers_per_region degree
      replication json_file resolution timeseries_file stable =
    let site =
      let rng = Dsim.Rng.create seed in
      Netsim.Topology.scale_site ~rng
        (Netsim.Topology.sized_hierarchy ~regions ~hosts_per_region
           ~servers_per_region ~degree ())
    in
    let g = site.Netsim.Topology.graph in
    let spec =
      {
        Mail.Scenario.default_spec with
        seed;
        duration = 5000.;
        mail_count = messages;
        check_period = 250.;
        faults = Some Netsim.Fault.standard;
        (* Observability is always on for the scale run: the JSON
           report carries an SLO section, so the monitors must have
           been evaluated. *)
        sampling = Some (Option.value resolution ~default:50.);
        monitors = Telemetry.Monitor.standard;
      }
    in
    let config =
      let n_servers = List.length site.Netsim.Topology.servers in
      { Mail.Syntax_system.default_config with
        replication = min replication n_servers
      }
    in
    let o = Mail.Scenario.run_syntax ~config site spec in
    let counter = Telemetry.Registry.get_counter o.Mail.Scenario.metrics in
    let recomputes = counter "route_tree_recompute" in
    let hits = counter "route_cache_hit" in
    let invalidations = counter "route_invalidation" in
    let hit_rate =
      if hits + recomputes = 0 then 0.
      else float_of_int hits /. float_of_int (hits + recomputes)
    in
    (* Throughput in virtual time only: wall-clock numbers live in the
       bench harness, keeping this driver deterministic end to end. *)
    let events_per_vt =
      float_of_int o.Mail.Scenario.engine_events /. spec.Mail.Scenario.duration
    in
    Printf.printf "topology          %d nodes, %d edges, %d regions\n"
      (Netsim.Graph.node_count g) (Netsim.Graph.edge_count g) regions;
    Printf.printf "campaign          %s\n" (Netsim.Fault.to_string Netsim.Fault.standard);
    Printf.printf "messages          %d\n" messages;
    Printf.printf "engine events     %d (%.1f per virtual-time unit)\n"
      o.Mail.Scenario.engine_events events_per_vt;
    Printf.printf "route recomputes  %d\n" recomputes;
    Printf.printf "route cache hits  %d (%.4f hit rate)\n" hits hit_rate;
    Printf.printf "invalidations     %d\n" invalidations;
    Printf.printf "availability      %.4f (server uptime %.4f, replication %d)\n"
      o.Mail.Scenario.availability o.Mail.Scenario.server_uptime
      o.Mail.Scenario.replication_factor;
    Printf.printf "failovers         %d\n" (counter "replica_failovers");
    Format.printf "ledger            %a@." Mail.Ledger.pp_verdict
      o.Mail.Scenario.ledger;
    let monitor =
      match o.Mail.Scenario.monitor with Some m -> m | None -> assert false
    in
    Format.printf "@[<v>monitors          %a@]@." Telemetry.Monitor.pp_summary
      monitor;
    (match json_file with
    | None -> ()
    | Some file ->
        let json =
          Telemetry.Json.Obj
            [
              ("schema", Telemetry.Json.String "mailsys.scale/3");
              ("seed", Telemetry.Json.Int seed);
              ("messages", Telemetry.Json.Int messages);
              ("engine_events", Telemetry.Json.Int o.Mail.Scenario.engine_events);
              ("events_per_virtual_time", Telemetry.Json.Float events_per_vt);
              ( "route",
                Telemetry.Json.Obj
                  [
                    ("recomputes", Telemetry.Json.Int recomputes);
                    ("cache_hits", Telemetry.Json.Int hits);
                    ("invalidations", Telemetry.Json.Int invalidations);
                    ("hit_rate", Telemetry.Json.Float hit_rate);
                  ] );
              ("availability", Telemetry.Json.Float o.Mail.Scenario.availability);
              ("server_uptime", Telemetry.Json.Float o.Mail.Scenario.server_uptime);
              ( "replication_factor",
                Telemetry.Json.Int o.Mail.Scenario.replication_factor );
              ("failovers", Telemetry.Json.Int (counter "replica_failovers"));
              ("ledger", Mail.Ledger.verdict_to_json o.Mail.Scenario.ledger);
              ("slo", Telemetry.Monitor.summary_to_json monitor);
              ( "metrics",
                Telemetry.Registry.to_json ~include_volatile:(not stable)
                  o.Mail.Scenario.metrics );
            ]
        in
        Cmdline.write_json ~what:"scale report" file json);
    (match (timeseries_file, o.Mail.Scenario.timeseries) with
    | Some file, Some ts ->
        Cmdline.write_json ~what:"timeseries" file
          (Telemetry.Timeseries.to_json ts)
    | _ -> ());
    if not o.Mail.Scenario.ledger.Mail.Ledger.ok then begin
      Printf.eprintf "mailsim: delivery invariant violated\n";
      exit 1
    end
  in
  let messages = Cmdline.messages ~default:50_000 in
  let regions = Cmdline.regions ~default:6 in
  let hosts =
    Arg.(value & opt int 8 & info [ "hosts-per-region" ] ~doc:"Hosts per region.")
  in
  let servers =
    Arg.(value & opt int 3 & info [ "servers-per-region" ] ~doc:"Servers per region.")
  in
  let degree =
    Arg.(value & opt float 10. & info [ "degree" ] ~doc:"Target average node degree.")
  in
  let replication =
    Arg.(
      value
      & opt int 4
      & info [ "replication" ]
          ~doc:"Authority-chain length (capped at the server count).")
  in
  let json_file =
    Cmdline.output_file ~flag:"json-out"
      ~doc:"Write the throughput and route-cache counters to $(docv) as JSON."
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Drive a large synthetic internetwork under the standard fault \
          campaign and report virtual-time throughput plus route-cache \
          counters (wall-clock numbers live in the bench harness).")
    Term.(
      const run $ seed_arg $ messages $ regions $ hosts $ servers $ degree
      $ replication $ json_file $ Cmdline.resolution $ Cmdline.timeseries_file
      $ Cmdline.stable)

(* --- monitor ------------------------------------------------------------ *)

let monitor_cmd =
  (* [--stable] is accepted for interface symmetry but has nothing to
     scrub here: the timeseries never samples volatile metrics. *)
  let run seed duration mail_count campaign rules resolution timeseries_file
      _stable =
    let campaign =
      match campaign with
      | Some s -> Netsim.Fault.parse s
      | None -> Netsim.Fault.standard
    in
    let rules =
      match rules with
      | Some s -> Telemetry.Monitor.parse s
      | None -> Telemetry.Monitor.standard
    in
    let resolution = Option.value resolution ~default:50. in
    let spec =
      {
        Mail.Scenario.default_spec with
        seed;
        duration;
        mail_count;
        faults = Some campaign;
        sampling = Some resolution;
        monitors = rules;
      }
    in
    (* Same multi-region site as the faults subcommand, so partition
       campaigns have region boundaries to cut. *)
    let o =
      Mail.Scenario.run_syntax (hier_site ~seed ~regions:3 ~hosts_per_region:4)
        spec
    in
    let monitor =
      match o.Mail.Scenario.monitor with Some m -> m | None -> assert false
    in
    Printf.printf "campaign:   %s\n" (Netsim.Fault.to_string campaign);
    Printf.printf "rules:      %s\n"
      (Telemetry.Monitor.to_string (Telemetry.Monitor.rules monitor));
    Printf.printf "resolution: %g (%d windows)\n\n" resolution
      (Telemetry.Monitor.windows_evaluated monitor);
    Format.printf "@[<v>%a@]@." Telemetry.Monitor.pp_summary monitor;
    let alerts = Telemetry.Monitor.alerts monitor in
    let shown = 20 in
    List.iteri
      (fun i (a : Telemetry.Monitor.alert) ->
        if i < shown then
          Printf.printf "w%-4d t=%-7.0f %s: %s\n" a.Telemetry.Monitor.a_window
            a.Telemetry.Monitor.a_time a.Telemetry.Monitor.a_rule
            a.Telemetry.Monitor.a_message)
      alerts;
    if List.length alerts > shown then
      Printf.printf "... %d more alerts\n" (List.length alerts - shown);
    (match (timeseries_file, o.Mail.Scenario.timeseries) with
    | Some file, Some ts ->
        Cmdline.write_json ~what:"timeseries" file
          (Telemetry.Timeseries.to_json ts)
    | _ -> ());
    if not o.Mail.Scenario.ledger.Mail.Ledger.ok then begin
      Printf.eprintf "mailsim: delivery invariant violated\n";
      exit 1
    end;
    if Telemetry.Monitor.slo_violated monitor then begin
      Printf.eprintf "mailsim: SLO violated (a burn-rate rule fired)\n";
      exit 1
    end
  in
  let campaign =
    Arg.(
      value
      & opt (some string) None
      & info [ "campaign" ] ~docv:"CAMPAIGN"
          ~doc:
            ("Fault campaign to replay (default: the standard campaign). "
           ^ Cmdline.campaign_syntax_doc))
  in
  let rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"RULES"
          ~doc:
            "Monitor rules, comma-separated \
             $(b,NAME=METRIC[{k=v}][.SELECTOR]COND) with COND one of >x, <x, \
             !n (no change for n windows) or ~t/w/b (SLO burn: value over t \
             in more than fraction b of the last w windows).  Default: the \
             standard rule set.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Replay a scenario with per-window health monitors and report which \
          rules fired; exits non-zero on an SLO (burn-rate) violation or a \
          delivery-invariant failure.")
    Term.(
      const run $ seed_arg $ Cmdline.duration
      $ Cmdline.messages ~default:300
      $ campaign $ rules $ Cmdline.resolution $ Cmdline.timeseries_file
      $ Cmdline.stable)

(* --- replicas ---------------------------------------------------------- *)

let replicas_cmd =
  let run seed hosts servers fig1 replication =
    let site =
      if fig1 then Netsim.Topology.paper_fig1 ()
      else begin
        let rng = Dsim.Rng.create seed in
        Netsim.Topology.random_mail_site ~rng ~hosts ~servers
          ~users_per_host:(20, 60) ~extra_edges:hosts
      end
    in
    let g = site.Netsim.Topology.graph in
    let total = List.fold_left (fun a (_, n) -> a + n) 0 site.Netsim.Topology.hosts in
    let servers_n = List.length site.Netsim.Topology.servers in
    let capacity _ = if fig1 then 100 else 1 + (total * 5 / (4 * servers_n)) in
    let problem = Loadbalance.Assignment.problem_of_site ~capacity site in
    let t, _ = Loadbalance.Balancer.run problem in
    (* [Replicas.assign] rejects infeasible replication outright; the
       inspection tool caps explicitly — and says so — like the mail
       systems do. *)
    let effective = min replication servers_n in
    if effective < replication then
      Printf.printf
        "note: replication %d infeasible with %d servers; capped to %d\n\n"
        replication servers_n effective;
    let r = Loadbalance.Replicas.assign ~replication:effective problem t in
    Printf.printf "effective replication: %d\n\n" r.Loadbalance.Replicas.replication;
    let label v = Netsim.Graph.label g v in
    Array.iteri
      (fun i slots ->
        let host, users = List.nth site.Netsim.Topology.hosts i in
        Printf.printf "%-6s (%3d users)\n" (label host) users;
        Array.iteri
          (fun k chain ->
            Printf.printf "  slot %d: %s\n" k
              (String.concat " -> " (List.map label chain)))
          slots)
      r.Loadbalance.Replicas.chains;
    Printf.printf "\nsecondary load (users inherited if the primary fails):\n";
    List.iteri
      (fun j s ->
        Printf.printf "  %-6s %d\n" (label s) r.Loadbalance.Replicas.secondary_load.(j))
      site.Netsim.Topology.servers;
    Printf.printf "secondary imbalance: %.3f\n"
      (Loadbalance.Replicas.secondary_imbalance problem r)
  in
  let hosts =
    Arg.(value & opt int 10 & info [ "hosts" ] ~doc:"Host count (random site).")
  in
  let servers =
    Arg.(value & opt int 3 & info [ "servers" ] ~doc:"Server count (random site).")
  in
  let fig1 =
    Arg.(value & flag & info [ "fig1" ] ~doc:"Use the paper's Figure 1 example site.")
  in
  let replication =
    Arg.(
      value
      & opt int 3
      & info [ "replication" ]
          ~doc:"Requested authority-chain length (capped at the server count).")
  in
  Cmd.v
    (Cmd.info "replicas"
       ~doc:
         "Inspect the §3.1.1 secondary-server assignment: per-host replica \
          chains, the secondary load each server inherits on a primary crash, \
          and the effective replication factor.")
    Term.(const run $ seed_arg $ hosts $ servers $ fig1 $ replication)

(* --- mst --------------------------------------------------------------- *)

let mst_cmd =
  let run seed nodes =
    let rng = Dsim.Rng.create seed in
    let g =
      Netsim.Topology.random_connected ~rng ~n:nodes ~extra_edges:(2 * nodes)
        ~min_weight:1. ~max_weight:8.
    in
    let k = Mst.Kruskal.run g in
    let d = Mst.Ghs.run g in
    Printf.printf "nodes %d, edges %d\n" nodes (Netsim.Graph.edge_count g);
    Printf.printf "kruskal weight   %.3f\n" k.Mst.Kruskal.total_weight;
    Printf.printf "ghs weight       %.3f (same tree: %b)\n" d.Mst.Ghs.total_weight
      (k.Mst.Kruskal.edges = d.Mst.Ghs.edges);
    Printf.printf "ghs messages     %d (bound %d)\n" d.Mst.Ghs.messages
      (Mst.Ghs.message_bound g);
    Printf.printf "ghs finish time  %.2f\n" d.Mst.Ghs.finish_time
  in
  let nodes = Arg.(value & opt int 64 & info [ "nodes" ] ~doc:"Graph size.") in
  Cmd.v
    (Cmd.info "mst" ~doc:"Distributed GHS MST vs centralised Kruskal (C8).")
    Term.(const run $ seed_arg $ nodes)

(* --- backbone ---------------------------------------------------------- *)

let backbone_cmd =
  let run seed regions budget =
    let site = hier_site ~seed ~regions ~hosts_per_region:6 in
    let g = site.Netsim.Topology.graph in
    let bb = Mst.Backbone.build g in
    Format.printf "%a@.@." (Mst.Backbone.pp g) bb;
    let flat = Mst.Backbone.flat_mst g in
    Printf.printf "flat global MST weight: %.3f\n\n" flat.Mst.Kruskal.total_weight;
    let ct = Mst.Cost_table.build bb ~source:"r0" in
    Format.printf "%a@." Mst.Cost_table.pp ct;
    let affordable = Mst.Cost_table.affordable ct ~budget in
    Printf.printf "\naffordable within %.1f: {%s}\n" budget
      (String.concat ", " affordable)
  in
  let regions = Cmdline.regions ~default:3 in
  let budget = Arg.(value & opt float 50. & info [ "budget" ] ~doc:"Broadcast budget.") in
  Cmd.v
    (Cmd.info "backbone" ~doc:"Backbone + local MSTs and the cost table (F2/C4).")
    Term.(const run $ seed_arg $ regions $ budget)

(* --- search ------------------------------------------------------------ *)

let search_cmd =
  let run seed regions key word org =
    let site = hier_site ~seed ~regions ~hosts_per_region:6 in
    let sys = Mail.Attribute_system.create site in
    Mail.Attribute_system.populate_random sys ~rng:(Dsim.Rng.create (seed + 1));
    let users = Mail.Location_system.users (Mail.Attribute_system.base sys) in
    let from = List.hd users in
    let viewer =
      match org with
      | Some o -> Naming.Attribute.member_of o
      | None -> Naming.Attribute.anyone
    in
    let pred =
      match word with
      | Some w -> Naming.Attribute.Has_keyword (key, w)
      | None -> Naming.Attribute.Has_key key
    in
    let res = Mail.Attribute_system.search sys ~from ~viewer pred in
    Format.printf "query: %a@." Naming.Attribute.pp_pred pred;
    Printf.printf "matches (%d):\n" (List.length res.Mail.Attribute_system.matches);
    List.iter
      (fun n -> Printf.printf "  %s\n" (Naming.Name.to_string n))
      res.Mail.Attribute_system.matches;
    Printf.printf "profiles examined: %d\n" res.Mail.Attribute_system.examined;
    Printf.printf "estimated cost:    %.2f\n" res.Mail.Attribute_system.estimated_cost;
    Printf.printf "search traffic:    %d messages, %d link crossings\n"
      res.Mail.Attribute_system.traffic.Mst.Broadcast.g_messages
      res.Mail.Attribute_system.traffic.Mst.Broadcast.g_link_crossings
  in
  let regions = Cmdline.regions ~default:3 in
  let key =
    Arg.(value & opt string "specialty" & info [ "key" ] ~doc:"Attribute key.")
  in
  let word =
    Arg.(
      value
      & opt (some string) (Some "mail")
      & info [ "word" ] ~doc:"Keyword to search for (omit for has-key).")
  in
  let org =
    Arg.(
      value
      & opt (some string) None
      & info [ "org" ] ~doc:"Search as a member of this organisation.")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Attribute-based directory search (§3.3).")
    Term.(const run $ seed_arg $ regions $ key $ word $ org)

(* --- org --------------------------------------------------------------- *)

let org_cmd =
  let run servers availability local =
    Printf.printf "%-18s %14s %12s %12s %14s\n" "organisation" "storage/server"
      "lookup-msgs" "update-msgs" "availability";
    let show label org =
      let e =
        Naming.Organisation.estimate org ~servers ~server_availability:availability
          ~local_fraction:local
      in
      Printf.printf "%-18s %14.2f %12.2f %12.2f %14.6f\n" label
        e.Naming.Organisation.storage_fraction e.Naming.Organisation.lookup_messages
        e.Naming.Organisation.update_messages e.Naming.Organisation.availability
    in
    show "centralized" Naming.Organisation.Centralized;
    show "fully-replicated" Naming.Organisation.Fully_replicated;
    List.iter
      (fun r ->
        if r <= servers then
          show
            (Printf.sprintf "partitioned r=%d" r)
            (Naming.Organisation.Partitioned r))
      [ 1; 2; 3; 5 ]
  in
  let servers = Arg.(value & opt int 10 & info [ "servers" ] ~doc:"Name servers.") in
  let availability =
    Arg.(value & opt float 0.95 & info [ "availability" ] ~doc:"Per-server uptime.")
  in
  let local =
    Arg.(value & opt float 0.8 & info [ "local" ] ~doc:"Fraction of local lookups.")
  in
  Cmd.v
    (Cmd.info "org" ~doc:"Compare §2 name-service organisations (C9).")
    Term.(const run $ servers $ availability $ local)

(* --- lookup (fuzzy) ------------------------------------------------------ *)

let lookup_cmd =
  let run seed regions query =
    let site = hier_site ~seed ~regions ~hosts_per_region:6 in
    let sys = Mail.Attribute_system.create site in
    Mail.Attribute_system.populate_random sys ~rng:(Dsim.Rng.create (seed + 1));
    Printf.printf "fuzzy look-up of %S against every regional directory:\n" query;
    List.iter
      (fun r ->
        match Mail.Attribute_system.directory sys r with
        | None -> ()
        | Some dir ->
            let hits =
              Naming.Directory.fuzzy_query dir ~viewer:Naming.Attribute.anyone
                ~key:"city" ~max_distance:3 query
            in
            List.iter
              (fun (name, d) ->
                Printf.printf "  %-24s (city, distance %d, region %s)\n"
                  (Naming.Name.to_string name) d r)
              (List.filteri (fun i _ -> i < 3) hits))
      (Mail.Attribute_system.regions sys)
  in
  let regions = Cmdline.regions ~default:3 in
  let query =
    Arg.(value & opt string "bostn" & info [ "query" ] ~doc:"Possibly misspelled value.")
  in
  Cmd.v
    (Cmd.info "lookup" ~doc:"Misspelling-tolerant directory look-up (§3.3.1).")
    Term.(const run $ seed_arg $ regions $ query)

(* --- store --------------------------------------------------------------- *)

let store_cmd =
  let run replicas writes =
    let g = Netsim.Topology.ring ~n:(max 3 replicas) ~weight:1. in
    let engine = Dsim.Engine.create () in
    let store =
      Mail.Name_store.create ~engine ~graph:g ~replicas:(List.init replicas Fun.id) ()
    in
    let rng = Dsim.Rng.create 11 in
    for i = 0 to writes - 1 do
      let at = Dsim.Rng.float rng 1000. in
      ignore
        (Dsim.Engine.schedule_at engine at (fun () ->
             Mail.Name_store.register store
               (Naming.Name.make ~region:"r" ~host:"h"
                  ~user:(Printf.sprintf "u%d" (i mod 40)))
               [ i ]))
    done;
    if replicas > 1 then
      Netsim.Failure.schedule_outage (Mail.Name_store.net store)
        { Netsim.Failure.node = replicas - 1; start = 300.; duration = 200. };
    Dsim.Engine.run engine;
    Printf.printf "replicas          %d\n" replicas;
    Printf.printf "writes            %d\n" writes;
    Printf.printf "update messages   %d\n" (Mail.Name_store.update_messages store);
    Printf.printf "recovery resyncs  %d\n" (Mail.Name_store.resyncs store);
    Printf.printf "converged         %b\n" (Mail.Name_store.converged store)
  in
  let replicas = Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replica count.") in
  let writes = Arg.(value & opt int 100 & info [ "writes" ] ~doc:"Registrations.") in
  Cmd.v
    (Cmd.info "store" ~doc:"Replicated name-database propagation (C14).")
    Term.(const run $ replicas $ writes)

(* --- media --------------------------------------------------------------- *)

let media_cmd =
  let run bandwidth =
    let config =
      { Mail.Syntax_system.default_config with bandwidth = Some bandwidth }
    in
    let sys = Mail.Syntax_system.create ~config (Netsim.Topology.paper_fig1 ()) in
    let users = Mail.Syntax_system.users sys in
    let a = List.nth users 0 and b = List.nth users 20 in
    let deliver label parts =
      let m = Mail.Syntax_system.submit sys ~sender:a ~recipient:b ~parts () in
      Mail.Syntax_system.quiesce sys;
      match Mail.Message.delivery_latency m with
      | Some l ->
          Printf.printf "%-24s %8dB  delivered in %8.2f\n" label
            (Mail.Message.size_bytes m) l
      | None -> Printf.printf "%-24s lost?!\n" label
    in
    Printf.printf "link bandwidth: %.0f bytes per time unit\n\n" bandwidth;
    deliver "text" [];
    deliver "voice 10s" [ Mail.Content.Voice { seconds = 10. } ];
    deliver "image 1024x768" [ Mail.Content.Image { width = 1024; height = 768 } ];
    deliver "facsimile 5 pages" [ Mail.Content.Facsimile { pages = 5 } ]
  in
  let bandwidth =
    Arg.(value & opt float 10_000. & info [ "bandwidth" ] ~doc:"Bytes per time unit.")
  in
  Cmd.v
    (Cmd.info "media" ~doc:"Multimedia mail under finite bandwidth (C13/§5).")
    Term.(const run $ bandwidth)

(* --- topo -------------------------------------------------------------- *)

let topo_cmd =
  let run seed kind regions =
    let g =
      match kind with
      | "fig1" -> (Netsim.Topology.paper_fig1 ()).Netsim.Topology.graph
      | "hier" -> (hier_site ~seed ~regions ~hosts_per_region:6).Netsim.Topology.graph
      | "ring" -> Netsim.Topology.ring ~n:8 ~weight:1.
      | "grid" -> Netsim.Topology.grid ~rows:4 ~cols:4 ~weight:1.
      | other -> failwith (Printf.sprintf "unknown topology %S" other)
    in
    Format.printf "%a@." Netsim.Graph.pp g;
    Printf.printf "diameter: %.2f\n" (Netsim.Shortest_path.diameter g)
  in
  let kind =
    Arg.(value & opt string "fig1" & info [ "kind" ] ~doc:"fig1, hier, ring or grid.")
  in
  let regions = Arg.(value & opt int 3 & info [ "regions" ] ~doc:"Regions for hier.") in
  Cmd.v
    (Cmd.info "topo" ~doc:"Print a topology (F1).")
    Term.(const run $ seed_arg $ kind $ regions)

let () =
  let doc = "Large electronic mail system simulations (ICDCS 1988 reproduction)." in
  let info = Cmd.info "mailsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            balance_cmd;
            getmail_cmd;
            faults_cmd;
            scale_cmd;
            monitor_cmd;
            replicas_cmd;
            mst_cmd;
            backbone_cmd;
            search_cmd;
            org_cmd;
            lookup_cmd;
            store_cmd;
            media_cmd;
            topo_cmd;
          ]))
