(* mailsys.analyze CLI: run the type-aware analyses (A1 hot-path
   allocation ratchet, A2 metric-name consistency, A3 span drift, A4
   typed poly-compare) over the .cmt files dune emitted for the given
   source directories.

     mailsys.analyze [options] [DIR...]        (default: lib bin)

   Options:
     --build DIR          build root holding the .cmt trees
                          (default _build/default)
     --baseline FILE      allocation baseline (default
                          analysis_baseline.json)
     --write-baseline     rewrite the baseline from the current tree
                          and exit 0 (the conscious-re-ratchet path)
     --json FILE          write the ANALYSIS.json report here
     --docs-metrics FILE  metric catalogue (default docs/METRICS.md)
     --docs-tracing FILE  span stage tables (default docs/TRACING.md)

   Requires a completed [dune build @check] (or full build): .cmt
   files are a build artifact.  Exits 1 when findings survive
   suppression, 2 on usage errors. *)

let usage () =
  prerr_endline
    "usage: mailsys.analyze [--build DIR] [--baseline FILE] \
     [--write-baseline] [--json FILE] [--docs-metrics FILE] \
     [--docs-tracing FILE] [DIR...]";
  exit 2

let () =
  let build = ref "_build/default" in
  let baseline_file = ref "analysis_baseline.json" in
  let write_baseline = ref false in
  let json_out = ref None in
  let metrics_doc = ref "docs/METRICS.md" in
  let tracing_doc = ref "docs/TRACING.md" in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--build" :: v :: rest -> build := v; parse rest
    | "--baseline" :: v :: rest -> baseline_file := v; parse rest
    | "--write-baseline" :: rest -> write_baseline := true; parse rest
    | "--json" :: v :: rest -> json_out := Some v; parse rest
    | "--docs-metrics" :: v :: rest -> metrics_doc := v; parse rest
    | "--docs-tracing" :: v :: rest -> tracing_doc := v; parse rest
    | s :: _ when String.length s > 1 && s.[0] = '-' ->
        Printf.eprintf "mailsys.analyze: unknown option %s\n" s;
        usage ()
    | d :: rest -> dirs := d :: !dirs; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
  if not (Sys.file_exists !build) then begin
    Printf.eprintf
      "mailsys.analyze: build root %s not found — run `dune build` first \
       (.cmt files are a build artifact)\n"
      !build;
    exit 2
  end;
  let roots = List.map (Filename.concat !build) dirs in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) roots in
  if missing <> [] then begin
    List.iter
      (Printf.eprintf
         "mailsys.analyze: no build tree at %s — run `dune build` first\n")
      missing;
    exit 2
  end;
  let cmts =
    List.fold_left (fun acc r -> Analyze_core.collect_cmts r acc) [] roots
    |> List.sort String.compare
  in
  if cmts = [] then begin
    Printf.eprintf "mailsys.analyze: no .cmt files under %s\n"
      (String.concat " " roots);
    exit 2
  end;
  let analysis =
    Analyze_core.analyze_tree ~baseline_file:!baseline_file
      ~metrics_doc:(!metrics_doc, []) ~tracing_doc:(!tracing_doc, []) cmts
  in
  if !write_baseline then begin
    let counts = Analyze_core.current_counts analysis.Analyze_core.an_facts in
    let oc = open_out !baseline_file in
    output_string oc
      (Telemetry.Json.to_string ~indent:2 (Analyze_core.baseline_to_json counts));
    output_string oc "\n";
    close_out oc;
    Printf.printf "mailsys.analyze: baseline written to %s (%d hot function(s))\n"
      !baseline_file (List.length counts);
    exit 0
  end;
  (match !json_out with
  | None -> ()
  | Some path ->
      let json =
        Analyze_core.report_to_json
          ~baseline:analysis.Analyze_core.an_baseline
          ~findings:analysis.Analyze_core.an_findings
          ~facts_list:analysis.Analyze_core.an_facts
      in
      let oc = open_out path in
      output_string oc (Telemetry.Json.to_string ~indent:2 json);
      output_string oc "\n";
      close_out oc);
  List.iter
    (fun (name, now, base) ->
      Printf.printf
        "mailsys.analyze: note: %s improved to %d allocation site(s) \
         (baseline %d) — ratchet down with `make analyze-baseline`\n"
        name now base)
    analysis.Analyze_core.an_improvements;
  match analysis.Analyze_core.an_findings with
  | [] ->
      Printf.printf "mailsys.analyze: clean (%s; %d compilation unit(s))\n"
        (String.concat " " dirs)
        (List.length analysis.Analyze_core.an_facts);
      exit 0
  | findings ->
      List.iter
        (fun v -> Format.printf "%a@." Lint_core.pp_violation v)
        findings;
      Printf.eprintf "mailsys.analyze: %d finding(s)\n" (List.length findings);
      exit 1
