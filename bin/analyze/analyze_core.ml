(* mailsys.analyze: type-aware static analysis over the .cmt typed
   ASTs dune emits ([-bin-annot]).  Where mailsys.lint (bin/lint)
   pattern-matches source syntax, this pass reads the Typedtree — so
   it can see through local helper functions, resolve identifier paths
   and ask what type a comparison was instantiated at.  Four rules:

   A1 [hot-path-alloc]  for a declared hot-function set (engine step,
                        heap push/pop, Net.send, pipeline handlers,
                        replica deposit/fetch, telemetry bump paths)
                        count heap-allocation sites per function and
                        ratchet them against a checked-in baseline
                        (analysis_baseline.json).  Counts are a static
                        proxy: closure/tuple/record/variant/array
                        construction, partial applications, allocating
                        stdlib calls and float-arith boxing sites.
   A2 [metric-name]     every string literal reaching a
                        Telemetry.Registry counter/gauge/histogram
                        constructor — including ones flowing through
                        local helpers like [let set name v = ...] and
                        promoted counter lists — must appear in the
                        docs/METRICS.md tables, every documented
                        metric must have an emitter, and every
                        monitor-DSL rule literal must reference an
                        emitted metric.
   A3 [span-drift]      span names created through Telemetry.Tracer
                        must match the docs/TRACING.md stage tables
                        (the stage list Critical_path reports on), and
                        a compilation unit that opens spans without
                        [~finish] must also contain a [Span.finish].
   A4 [poly-compare]    type-directed upgrade of lint R2: bare
                        [compare] and the =/<>/</>/<=/>= operators are
                        flagged only when instantiated at a type where
                        polymorphic comparison is actually unsafe —
                        function types, abstract types, extensible
                        variants, lazy values, first-class modules, or
                        an unresolved type variable.

   Findings print in the linter's [file:line rule message] format and
   honour the same audited [(* lint: allow <rule> — reason *)]
   suppressions (markdown docs use [<!-- lint: allow ... -->]).  The
   machine-readable report (ANALYSIS.json) carries schema
   [mailsys.analysis/1]. *)

open Typedtree
open Asttypes

type violation = Lint_core.violation = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

(* --- the hot-function set (A1) ------------------------------------------ *)

(* Dotted module name -> function names whose allocation counts are
   ratcheted.  These are the per-event code paths the ROADMAP's
   flat-core refactor targets: every site removed here is multiplied
   by ~50k events/sec. *)
let default_hot_set =
  [
    ( "Dsim.Engine",
      [ "exec"; "step"; "step_uninstrumented"; "settle_head"; "drain"; "run";
        "schedule_at"; "schedule_after"; "schedule_after_cat" ] );
    ("Dsim.Heap", [ "push"; "pop"; "peek"; "sift_up"; "sift_down" ]);
    ("Netsim.Net", [ "send"; "send_raw"; "send_timed"; "route" ]);
    ( "Mail.Pipeline",
      [
        "handle_wire";
        "through_queue";
        "do_deposit";
        "deposit_with";
        "resolve_phase";
        "try_submit";
        "send_fenced";
      ] );
    ("Mail.Replica_group", [ "write"; "fetch"; "observe_latencies" ]);
    ( "Telemetry.Registry",
      [ "incr"; "set_counter"; "set_gauge"; "add_gauge"; "observe"; "find_or_create" ] );
  ]

(* --- scan results ------------------------------------------------------- *)

type alloc_site = { al_line : int; al_kind : string }

type hot_fn = {
  hf_name : string;  (* "Dsim.Engine.step" *)
  hf_file : string;
  hf_line : int;
  hf_sites : alloc_site list;  (* sorted by line *)
}

type poly_site = {
  pc_file : string;
  pc_line : int;
  pc_op : string;  (* "compare", "=", ... *)
  pc_type : string;  (* printed instantiated argument type *)
  pc_reason : string;  (* why polymorphic comparison is unsafe there *)
}

type facts = {
  f_file : string;  (* source path recorded in the cmt *)
  f_module : string;  (* dotted module name *)
  f_hot : hot_fn list;
  f_metrics : (string * int) list;  (* metric name literal, line *)
  f_spans : (string * int * bool) list;  (* span name, line, closed at creation *)
  f_finishes : int list;  (* lines of Span.finish calls *)
  f_monitor_refs : (string * string * int) list;  (* rule name, metric, line *)
  f_poly : poly_site list;
  f_strings : string list;
      (* every name-shaped string literal in the unit — weak evidence
         that a documented name is still wired up somewhere, used to
         keep A3 quiet about spans emitted through data structures
         (e.g. hop names stored in a table and closed at the receiving
         node) *)
}

(* --- path helpers ------------------------------------------------------- *)

(* "Telemetry__Registry.counter" -> "Telemetry.Registry.counter" *)
let norm_name s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let norm_path p = norm_name (Path.name p)

let path_has_suffix p suffix =
  let s = norm_path p in
  String.equal s suffix
  || (String.length s > String.length suffix
     && String.equal
          (String.sub s (String.length s - String.length suffix - 1)
             (String.length suffix + 1))
          ("." ^ suffix))

let drop_stdlib s =
  let pre = "Stdlib." in
  if String.length s > String.length pre && String.sub s 0 (String.length pre) = pre
  then String.sub s (String.length pre) (String.length s - String.length pre)
  else s

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let dotted_modname m = norm_name m

(* --- A1: allocation-site counting --------------------------------------- *)

(* Calls into the stdlib that allocate on every invocation. *)
let allocating_calls =
  [
    "^"; "@"; "ref";
    "List.append"; "List.concat"; "List.rev"; "List.rev_append"; "List.map";
    "List.mapi"; "List.rev_map"; "List.filter"; "List.filter_map"; "List.init";
    "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.concat_map";
    "List.split"; "List.combine";
    "Array.make"; "Array.init"; "Array.append"; "Array.concat"; "Array.copy";
    "Array.sub"; "Array.of_list"; "Array.to_list"; "Array.map";
    "String.concat"; "String.sub"; "String.make"; "String.map"; "String.init";
    "String.split_on_char"; "String.trim"; "String.uppercase_ascii";
    "String.lowercase_ascii";
    "Bytes.make"; "Bytes.sub"; "Bytes.create"; "Bytes.cat";
    "Printf.sprintf"; "Format.asprintf"; "Format.sprintf";
    "Buffer.create"; "Buffer.contents"; "Hashtbl.create";
    "string_of_int"; "string_of_float"; "float_of_string"; "int_of_string_opt";
  ]

(* Float arithmetic whose boxed result is an allocation unless the
   compiler keeps it unboxed — counted as its own site kind so the
   baseline shows the breakdown. *)
let float_arith = [ "+."; "-."; "*."; "/."; "**"; "~-."; "float_of_int"; "Float.of_int" ]

(* Peel the leading curried-lambda spine of a function definition: the
   chain [fun a -> fun b -> ...]/[function ...] that forms the
   function's declared parameters compiles to one multi-argument
   function and allocates nothing per call.  Everything below counts. *)
let rec body_exprs e =
  match e.exp_desc with
  | Texp_function { cases; _ } -> List.concat_map (fun c -> body_exprs c.c_rhs) cases
  | _ -> [ e ]

let alloc_sites expr =
  let sites = ref [] in
  let add loc kind = sites := { al_line = line_of loc; al_kind = kind } :: !sites in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_function _ -> add e.exp_loc "closure"
          | Texp_tuple _ -> add e.exp_loc "tuple"
          | Texp_construct (_, _, args) when args <> [] -> add e.exp_loc "construct"
          | Texp_record _ -> add e.exp_loc "record"
          | Texp_array _ -> add e.exp_loc "array"
          | Texp_variant (_, Some _) -> add e.exp_loc "variant"
          | Texp_lazy _ -> add e.exp_loc "lazy"
          | Texp_apply (fn, _) -> (
              (match Types.get_desc e.exp_type with
              | Types.Tarrow _ -> add e.exp_loc "partial-apply"
              | _ -> ());
              match fn.exp_desc with
              | Texp_ident (p, _, _) ->
                  let name = drop_stdlib (norm_path p) in
                  if List.mem name allocating_calls then add e.exp_loc "alloc-call"
                  else if List.mem name float_arith then add e.exp_loc "float-box"
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  List.iter (fun body -> it.expr it body) (body_exprs expr);
  List.sort
    (fun a b ->
      match Int.compare a.al_line b.al_line with
      | 0 -> String.compare a.al_kind b.al_kind
      | c -> c)
    (List.rev !sites)

let hot_fns_of_structure ~hot_set ~modname ~file str =
  match List.assoc_opt modname hot_set with
  | None -> []
  | Some wanted ->
      List.concat_map
        (fun (item : structure_item) ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
              List.filter_map
                (fun vb ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) when List.mem (Ident.name id) wanted ->
                      Some
                        {
                          hf_name = modname ^ "." ^ Ident.name id;
                          hf_file = file;
                          hf_line = line_of vb.vb_loc;
                          hf_sites = alloc_sites vb.vb_expr;
                        }
                  | _ -> None)
                vbs
          | _ -> [])
        str.str_items

(* --- A4: typed polymorphic-comparison classification --------------------- *)

let compared_idents =
  [ "Stdlib.compare"; "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>=" ]

type safety = Safe | Unknown | Unsafe of string

let join a b =
  match (a, b) with
  | Unsafe r, _ | _, Unsafe r -> Unsafe r
  | Unknown, _ | _, Unknown -> Unknown
  | Safe, Safe -> Safe

let join_all = List.fold_left join Safe

let safe_predefs =
  [
    Predef.path_int; Predef.path_char; Predef.path_string; Predef.path_bytes;
    Predef.path_float; Predef.path_bool; Predef.path_unit; Predef.path_int32;
    Predef.path_int64; Predef.path_nativeint; Predef.path_floatarray;
  ]

let container_predefs = [ Predef.path_list; Predef.path_option; Predef.path_array ]

(* Is polymorphic structural comparison safe at this type?  Expands
   aliases and recurses into tuples, containers, records and variants;
   function types, abstract types, open types, lazy values, objects,
   packages and unresolved variables are unsafe.  Unresolvable
   declarations (a .cmi outside the load path) stay [Unknown] and are
   not reported — the pass prefers silence to false positives. *)
let rec type_safety env visited ty =
  match Types.get_desc ty with
  | Types.Tvar _ | Types.Tunivar _ ->
      Unsafe "the comparison is still polymorphic here (unresolved type variable)"
  | Types.Tarrow _ -> Unsafe "function types compare nondeterministically (or raise)"
  | Types.Ttuple ts -> join_all (List.map (type_safety env visited) ts)
  | Types.Tpoly (t, _) -> type_safety env visited t
  | Types.Tobject _ | Types.Tfield _ | Types.Tnil -> Unsafe "object types"
  | Types.Tpackage _ -> Unsafe "first-class modules"
  | Types.Tconstr (p, args, _) ->
      if List.exists (Path.same p) safe_predefs then Safe
      else if Path.same p Predef.path_lazy_t then
        Unsafe "lazy values compare by forcing (or raise)"
      else if List.exists (Path.same p) container_predefs then
        join_all (List.map (type_safety env visited) args)
      else if List.exists (Path.same p) visited then Safe (* recursive type: fields decide *)
      else (
        match Env.find_type p env with
        | exception Not_found -> Unknown
        | decl -> (
            let visited = p :: visited in
            let subst body =
              match Ctype.apply env decl.Types.type_params body args with
              | t -> Some t
              | exception _ -> None
            in
            match decl.Types.type_manifest with
            | Some body -> (
                match subst body with
                | Some t -> type_safety env visited t
                | None -> Unknown)
            | None -> (
                match decl.Types.type_kind with
                | Types.Type_abstract ->
                    Unsafe
                      (Printf.sprintf
                         "%s is abstract; its representation is not comparable \
                          by contract"
                         (norm_path p))
                | Types.Type_open -> Unsafe "extensible variant types"
                | Types.Type_record (lds, _) ->
                    join_all
                      (List.map
                         (fun (ld : Types.label_declaration) ->
                           match subst ld.ld_type with
                           | Some t -> type_safety env visited t
                           | None -> Unknown)
                         lds)
                | Types.Type_variant (cds, _) ->
                    join_all
                      (List.map
                         (fun (cd : Types.constructor_declaration) ->
                           match cd.cd_args with
                           | Types.Cstr_tuple ts ->
                               join_all
                                 (List.map
                                    (fun t ->
                                      match subst t with
                                      | Some t -> type_safety env visited t
                                      | None -> Unknown)
                                    ts)
                           | Types.Cstr_record lds ->
                               join_all
                                 (List.map
                                    (fun (ld : Types.label_declaration) ->
                                      match subst ld.ld_type with
                                      | Some t -> type_safety env visited t
                                      | None -> Unknown)
                                    lds))
                         cds))))
  | _ -> Unknown

let poly_site_of_ident ~file op expr =
  match Types.get_desc expr.exp_type with
  | Types.Tarrow (_, arg, _, _) -> (
      match Envaux.env_of_only_summary expr.exp_env with
      | exception _ -> None
      | env -> (
          match type_safety env [] arg with
          | Safe | Unknown -> None
          | Unsafe reason ->
              let ty =
                try Format.asprintf "%a" Printtyp.type_expr arg
                with _ -> "<type>"
              in
              Some
                {
                  pc_file = file;
                  pc_line = line_of expr.exp_loc;
                  pc_op = drop_stdlib op;
                  pc_type = ty;
                  pc_reason = reason;
                }))
  | _ -> None

(* --- A2/A3: name extraction --------------------------------------------- *)

let is_name_shaped ~dots s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | '0' .. '9' | '_' -> true
         | '.' when dots -> true
         | _ -> false)
       s

(* Registry functions whose string argument names a metric.  get_*
   readers are excluded: A2 checks the emission surface. *)
let registry_fns =
  [
    "Registry.counter"; "Registry.gauge"; "Registry.histogram";
    "Registry.set_counter"; "Registry.set_gauge"; "Registry.mark_volatile";
  ]

type sink_kind = Metric_sink | Span_sink of bool (* closed at creation *)

let literal_string e =
  match e.exp_desc with
  | Texp_constant (Const_string (s, _, _)) -> Some (s, line_of e.exp_loc)
  | Texp_construct
      (_, { Types.cstr_name = "Some"; _ },
       [ { exp_desc = Texp_constant (Const_string (s, _, _)); exp_loc; _ } ]) ->
      Some (s, line_of exp_loc)
  | _ -> None

let ident_arg e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some id
  | Texp_construct
      (_, { Types.cstr_name = "Some"; _ },
       [ { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ]) ->
      Some id
  | _ -> None

let rec string_list_of_expr e =
  match e.exp_desc with
  | Texp_construct (_, { Types.cstr_name = "[]"; _ }, []) -> Some []
  | Texp_construct (_, { Types.cstr_name = "::"; _ }, [ hd; tl ]) -> (
      match (literal_string hd, string_list_of_expr tl) with
      | Some s, Some rest -> Some (s :: rest)
      | _ -> None)
  | _ -> None

(* All parameters bound by a definition's leading lambda spine. *)
let rec fun_params e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.concat_map
        (fun c -> pat_bound_idents c.c_lhs @ fun_params c.c_rhs)
        cases
  | _ -> []

(* A fully-applied call materialises omitted optional arguments as a
   synthesised [None] constructor — that is "not passed", not a
   value. *)
let is_omitted e =
  match e.exp_desc with
  | Texp_construct (_, { Types.cstr_name = "None"; _ }, []) -> true
  | _ -> false

let labelled label (l, eo) =
  match (l, eo) with
  | (Labelled s | Optional s), Some e
    when String.equal s label && not (is_omitted e) ->
      Some e
  | _ -> None

let find_labelled label args = List.find_map (labelled label) args

(* The per-cmt scanner.  Helper-sink discovery needs a fixpoint: [let
   set name v = Registry.set_gauge (Registry.gauge reg name) v] makes
   [set] a metric sink, [record_hop] calling span-sink [emit_span]
   makes it a span sink one round later.  We iterate collection-only
   passes until the sink set is stable, then record sites once. *)
let scan_structure ~file str =
  let sinks : (Ident.t * sink_kind) list ref = ref [] in
  let string_lists : (Ident.t * (string * int) list) list ref = ref [] in
  let changed = ref true in
  let recording = ref false in
  let metrics = ref [] in
  let spans = ref [] in
  let finishes = ref [] in
  let monitor_refs = ref [] in
  let poly = ref [] in
  let strings = ref [] in
  let frames : (Ident.t * Ident.t list) list ref = ref [] in
  let sink_of id = List.find_map (fun (i, k) -> if Ident.same i id then Some k else None) !sinks in
  let mark_sink id kind =
    if sink_of id = None then begin
      sinks := (id, kind) :: !sinks;
      changed := true
    end
  in
  let owner_of_param id =
    List.find_map
      (fun (owner, params) ->
        if List.exists (Ident.same id) params then Some owner else None)
      !frames
  in
  let add_metric s = if !recording then metrics := s :: !metrics in
  let add_span s = if !recording then spans := s :: !spans in
  (* name flows into a metric position: literal -> site, parameter ->
     the enclosing definition becomes a sink *)
  let metric_name_arg e =
    (match literal_string e with Some s -> add_metric s | None -> ());
    match ident_arg e with
    | Some id -> (
        match owner_of_param id with
        | Some owner -> mark_sink owner Metric_sink
        | None -> ())
    | None -> ()
  in
  let span_name_arg ~closed e =
    (match literal_string e with
    | Some (s, line) -> add_span (s, line, closed)
    | None -> ());
    match ident_arg e with
    | Some id -> (
        match owner_of_param id with
        | Some owner -> mark_sink owner (Span_sink closed)
        | None -> ())
    | None -> ()
  in
  (* Does this lambda body feed [param] into a metric-name position?
     Covers [List.iter (fun k -> Registry.set_counter reg k v) keys]. *)
  let lambda_feeds_metric body params =
    let found = ref false in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.exp_desc with
            | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
                let is_registry =
                  List.exists (path_has_suffix p) registry_fns
                in
                let is_sink =
                  match p with
                  | Path.Pident id -> sink_of id = Some Metric_sink
                  | _ -> false
                in
                if is_registry || is_sink then
                  List.iter
                    (fun (_, eo) ->
                      match eo with
                      | Some e -> (
                          match ident_arg e with
                          | Some id when List.exists (Ident.same id) params ->
                              found := true
                          | _ -> ())
                      | None -> ())
                    args
            | _ -> ());
            Tast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it body;
    !found
  in
  let handle_apply fn args =
    match fn.exp_desc with
    | Texp_ident (p, _, _) ->
        if List.exists (path_has_suffix p) registry_fns then
          List.iter (fun (_, eo) -> Option.iter metric_name_arg eo) args
        else if path_has_suffix p "Probe.sync_counters" then
          Option.iter metric_name_arg (find_labelled "rest_as" args)
        else if path_has_suffix p "Tracer.span" then begin
          let closed = find_labelled "finish" args <> None in
          Option.iter (span_name_arg ~closed) (find_labelled "name" args)
        end
        else if path_has_suffix p "Span.finish" then begin
          if !recording then finishes := line_of fn.exp_loc :: !finishes
        end
        else if path_has_suffix p "List.iter" then (
          match args with
          | [ (_, Some f); (_, Some l) ] -> (
              let params = fun_params f in
              if params <> [] && lambda_feeds_metric f params then
                let items =
                  match string_list_of_expr l with
                  | Some items -> items
                  | None -> (
                      match l.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) -> (
                          match
                            List.find_map
                              (fun (i, items) ->
                                if Ident.same i id then Some items else None)
                              !string_lists
                          with
                          | Some items -> items
                          | None -> [])
                      | _ -> [])
                in
                List.iter add_metric items)
          | _ -> ())
        else (
          (* call of a locally-defined sink *)
          match p with
          | Path.Pident id -> (
              match sink_of id with
              | Some Metric_sink ->
                  List.iter (fun (_, eo) -> Option.iter metric_name_arg eo) args
              | Some (Span_sink closed) ->
                  List.iter
                    (fun arg ->
                      match arg with
                      | (Labelled "name" | Optional "name"), Some e ->
                          span_name_arg ~closed e
                      | _ -> ())
                    args
              | None -> ())
          | _ -> ())
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match (vb.vb_pat.pat_desc, string_list_of_expr vb.vb_expr) with
          | Tpat_var (id, _), Some items ->
              if
                not (List.exists (fun (i, _) -> Ident.same i id) !string_lists)
              then string_lists := (id, items) :: !string_lists
          | _ -> ());
          match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) ->
              let params = fun_params vb.vb_expr in
              if params <> [] then begin
                frames := (id, params) :: !frames;
                Tast_iterator.default_iterator.value_binding self vb;
                frames := List.tl !frames
              end
              else Tast_iterator.default_iterator.value_binding self vb
          | _ -> Tast_iterator.default_iterator.value_binding self vb);
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_apply (fn, args) -> handle_apply fn args
          | Texp_ident (p, _, _) when !recording ->
              let name = norm_path p in
              if List.mem name compared_idents then
                Option.iter
                  (fun s -> poly := s :: !poly)
                  (poly_site_of_ident ~file name e)
          | Texp_constant (Const_string (s, _, _))
            when !recording && String.length s <= 60 && is_name_shaped ~dots:true s
            ->
              strings := s :: !strings
          | Texp_constant (Const_string (s, _, _))
            when !recording && String.contains s '=' && String.length s < 200
            -> (
              (* a literal that parses as monitor-DSL rules references
                 metrics: the standard rule set, CLI defaults, docs in
                 --help strings *)
              match Telemetry.Monitor.parse s with
              | rules ->
                  List.iter
                    (fun (r : Telemetry.Monitor.rule) ->
                      monitor_refs :=
                        (r.rule_name, r.metric, line_of e.exp_loc)
                        :: !monitor_refs)
                    rules
              | exception _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  let rounds = ref 0 in
  while !changed && !rounds < 5 do
    changed := false;
    incr rounds;
    it.structure it str
  done;
  recording := true;
  it.structure it str;
  ( List.rev !metrics,
    List.rev !spans,
    List.rev !finishes,
    List.rev !monitor_refs,
    List.rev !poly,
    List.sort_uniq String.compare !strings )

(* --- cmt loading -------------------------------------------------------- *)

let scan_cmt ?(hot_set = default_hot_set) path =
  let cmt = Cmt_format.read_cmt path in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
      let file =
        match cmt.Cmt_format.cmt_sourcefile with
        | Some f -> f
        | None -> path
      in
      let modname = dotted_modname cmt.Cmt_format.cmt_modname in
      let metrics, spans, finishes, monitor_refs, poly, strings =
        scan_structure ~file str
      in
      Some
        {
          f_file = file;
          f_module = modname;
          f_hot = hot_fns_of_structure ~hot_set ~modname ~file str;
          f_metrics = metrics;
          f_spans = spans;
          f_finishes = finishes;
          f_monitor_refs = monitor_refs;
          f_poly = poly;
          f_strings = strings;
        }
  | _ -> None

let rec collect_cmts path acc =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc e -> collect_cmts (Filename.concat path e) acc) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* The load path lets Envaux rebuild environments: every directory
   that holds a .cmi (the repo's .objs dirs) plus the stdlib. *)
let init_load_path cmt_paths =
  let dirs =
    List.sort_uniq String.compare (List.map Filename.dirname cmt_paths)
  in
  Load_path.init ~auto_include:Load_path.no_auto_include
    (dirs @ [ Config.standard_library ]);
  Envaux.reset_cache ()

(* --- docs parsing (A2/A3 reference lists) -------------------------------- *)

let strip_labels s =
  match String.index_opt s '{' with Some i -> String.sub s 0 i | None -> s

(* Backticked names in a markdown file: the first cell of table rows
   ("| `name` | ...") and bold catalogue entries ("**`name{...}`**").
   Returns (name, first line) pairs, label selectors stripped. *)
let doc_names ~dots content =
  let out = ref [] in
  let add name line =
    let name = strip_labels name in
    if is_name_shaped ~dots name && not (List.mem_assoc name !out) then
      out := (name, line) :: !out
  in
  let lines = String.split_on_char '\n' content in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      let ltrim = String.trim line in
      (if String.length ltrim > 1 && ltrim.[0] = '|' then
         (* first cell, backticked *)
         let cell =
           match String.index_from_opt ltrim 1 '|' with
           | Some j -> String.sub ltrim 1 (j - 1)
           | None -> String.sub ltrim 1 (String.length ltrim - 1)
         in
         let cell = String.trim cell in
         if String.length cell > 2 && cell.[0] = '`' then
           match String.index_from_opt cell 1 '`' with
           | Some j -> add (String.sub cell 1 (j - 1)) lnum
           | None -> ());
       (* bold entries anywhere in the line *)
       let rec bold_from i =
         match
           if i + 3 > String.length line then None
           else
             let rec find k =
               if k + 3 > String.length line then None
               else if String.sub line k 3 = "**`" then Some k
               else find (k + 1)
             in
             find i
         with
         | None -> ()
         | Some k -> (
             match String.index_from_opt line (k + 3) '`' with
             | Some e ->
                 add (String.sub line (k + 3) (e - k - 3)) lnum;
                 bold_from (e + 1)
             | None -> ())
       in
       bold_from 0)
    lines;
  List.rev !out

let doc_metric_names content = doc_names ~dots:false content
let doc_span_names content = doc_names ~dots:true content

(* --- baselines (A1 ratchet) --------------------------------------------- *)

let baseline_schema = "mailsys.analysis-baseline/1"

let baseline_of_json json =
  match Telemetry.Json.member "functions" json with
  | Some (Telemetry.Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match v with Telemetry.Json.Int n -> Some (k, n) | _ -> None)
        kvs
  | _ -> []

let baseline_to_json entries =
  Telemetry.Json.Obj
    [
      ("schema", Telemetry.Json.String baseline_schema);
      ( "functions",
        Telemetry.Json.Obj
          (List.map
             (fun (k, n) -> (k, Telemetry.Json.Int n))
             (List.sort (fun (a, _) (b, _) -> String.compare a b) entries)) );
    ]

(* --- findings ----------------------------------------------------------- *)

let v file line rule message = { file; line; rule; message }

type a1_result = {
  a1_findings : violation list;
  a1_improvements : (string * int * int) list;  (* fn, count, baseline *)
}

let a1_ratchet ~baseline_file ~baseline ~hot_set facts_list =
  let reports = List.concat_map (fun f -> f.f_hot) facts_list in
  let findings = ref [] in
  let improvements = ref [] in
  List.iter
    (fun hf ->
      let n = List.length hf.hf_sites in
      match List.assoc_opt hf.hf_name baseline with
      | None ->
          findings :=
            v hf.hf_file hf.hf_line "hot-path-alloc"
              (Printf.sprintf
                 "hot function %s has no baseline entry (%d allocation \
                  site(s)); record it with `make analyze-baseline`"
                 hf.hf_name n)
            :: !findings
      | Some m when n > m ->
          findings :=
            v hf.hf_file hf.hf_line "hot-path-alloc"
              (Printf.sprintf
                 "hot function %s has %d allocation site(s), baseline is %d — \
                  remove the new allocation or consciously re-baseline with \
                  `make analyze-baseline`"
                 hf.hf_name n m)
            :: !findings
      | Some m when n < m -> improvements := (hf.hf_name, n, m) :: !improvements
      | Some _ -> ())
    reports;
  (* stale baseline entries and hot declarations the tree no longer has *)
  let reported = List.map (fun hf -> hf.hf_name) reports in
  List.iter
    (fun (name, _) ->
      if not (List.mem name reported) then
        findings :=
          v baseline_file 1 "hot-path-alloc"
            (Printf.sprintf
               "baseline entry %s matches no function in the scanned tree \
                (renamed or removed?); refresh with `make analyze-baseline`"
               name)
          :: !findings)
    baseline;
  let seen_modules = List.map (fun f -> f.f_module) facts_list in
  List.iter
    (fun (m, fns) ->
      if List.mem m seen_modules then
        let file =
          match List.find_opt (fun f -> String.equal f.f_module m) facts_list with
          | Some f -> f.f_file
          | None -> baseline_file
        in
        List.iter
          (fun fn ->
            let full = m ^ "." ^ fn in
            if not (List.mem full reported) then
              findings :=
                v file 1 "hot-path-alloc"
                  (Printf.sprintf
                     "declared hot function %s not found in %s — update the \
                      hot set in bin/analyze/analyze_core.ml"
                     full file)
                :: !findings)
          fns)
    hot_set;
  { a1_findings = List.rev !findings; a1_improvements = List.rev !improvements }

let a2_findings ~doc_file ~documented facts_list =
  let emitted =
    List.concat_map
      (fun f -> List.map (fun (n, l) -> (n, f.f_file, l)) f.f_metrics)
      facts_list
  in
  let emitted_names = List.sort_uniq String.compare (List.map (fun (n, _, _) -> n) emitted) in
  let doc_names = List.map fst documented in
  let findings = ref [] in
  (* undocumented emissions: one finding per name, at its first site *)
  List.iter
    (fun name ->
      if not (List.mem name doc_names) then
        match List.find_opt (fun (n, _, _) -> String.equal n name) emitted with
        | Some (_, file, line) ->
            findings :=
              v file line "metric-name"
                (Printf.sprintf
                   "metric %S is emitted but undocumented — add it to the %s \
                    catalogue"
                   name doc_file)
              :: !findings
        | None -> ())
    emitted_names;
  (* documented but never emitted *)
  List.iter
    (fun (name, line) ->
      if not (List.mem name emitted_names) then
        findings :=
          v doc_file line "metric-name"
            (Printf.sprintf
               "documented metric %S has no emitter under the scanned tree — \
                stale catalogue entry?"
               name)
          :: !findings)
    documented;
  (* monitor rules must reference emitted metrics *)
  List.iter
    (fun f ->
      List.iter
        (fun (rule, metric, line) ->
          if not (List.mem metric emitted_names) then
            findings :=
              v f.f_file line "metric-name"
                (Printf.sprintf
                   "monitor rule %S references metric %S, which nothing emits \
                    — dangling rule"
                   rule metric)
              :: !findings)
        f.f_monitor_refs)
    facts_list;
  List.rev !findings

let a3_findings ~doc_file ~documented facts_list =
  let emitted =
    List.concat_map
      (fun f -> List.map (fun (n, l, c) -> (n, f.f_file, l, c)) f.f_spans)
      facts_list
  in
  let emitted_names =
    List.sort_uniq String.compare (List.map (fun (n, _, _, _) -> n) emitted)
  in
  let doc_names = List.map fst documented in
  let findings = ref [] in
  List.iter
    (fun name ->
      if not (List.mem name doc_names) then
        match
          List.find_opt (fun (n, _, _, _) -> String.equal n name) emitted
        with
        | Some (_, file, line, _) ->
            findings :=
              v file line "span-drift"
                (Printf.sprintf
                   "span %S is created here but missing from the %s stage \
                    tables — critical-path stages and docs have drifted"
                   name doc_file)
              :: !findings
        | None -> ())
    emitted_names;
  (* A documented stage with no creation site is stale only if its
     name has also vanished from the code: spans emitted through data
     structures (hop names parked in a table, closed at the receiver)
     leave the literal behind as evidence. *)
  let literals = List.concat_map (fun f -> f.f_strings) facts_list in
  List.iter
    (fun (name, line) ->
      if (not (List.mem name emitted_names)) && not (List.mem name literals)
      then
        findings :=
          v doc_file line "span-drift"
            (Printf.sprintf
               "documented span stage %S is never created by the scanned tree \
                — stale stage table entry (the name appears nowhere in the \
                code)?"
               name)
          :: !findings)
    documented;
  (* pairing: a unit opening spans must also close them *)
  List.iter
    (fun f ->
      if f.f_finishes = [] then
        List.iter
          (fun (name, line, closed) ->
            if not closed then
              findings :=
                v f.f_file line "span-drift"
                  (Printf.sprintf
                     "span %S is opened without ~finish but %s never calls \
                      Span.finish — the span can leak open"
                     name f.f_file)
                :: !findings)
          f.f_spans)
    facts_list;
  List.rev !findings

let a4_findings facts_list =
  List.concat_map
    (fun f ->
      List.map
        (fun p ->
          v p.pc_file p.pc_line "poly-compare"
            (Printf.sprintf
               "polymorphic %s at type %s is unsafe: %s — use a typed \
                comparator"
               p.pc_op p.pc_type p.pc_reason))
        f.f_poly)
    facts_list

(* --- suppression filtering ---------------------------------------------- *)

(* [read_source] maps a finding's file to its text (None = unreadable,
   keep the finding).  Reuses the linter's audited-allow scanner, so
   the same [(* lint: allow <rule> — reason *)] annotations govern
   both passes; markdown files carry them in HTML comments. *)
let filter_suppressed ~read_source violations =
  let cache = Hashtbl.create 16 in
  let allows_for file =
    match Hashtbl.find_opt cache file with
    | Some allows -> allows
    | None ->
        let allows =
          match read_source file with
          | Some src -> Lint_core.scan_allows src
          | None -> []
        in
        Hashtbl.replace cache file allows;
        allows
  in
  List.filter
    (fun (viol : violation) ->
      not
        (Lint_core.suppressed (allows_for viol.file) ~rule:viol.rule
           ~line:viol.line))
    violations

let read_source_from_disk file =
  if Sys.file_exists file && not (Sys.is_directory file) then
    Some (Lint_core.read_file file)
  else None

(* --- ANALYSIS.json ------------------------------------------------------ *)

let analysis_schema = "mailsys.analysis/1"

let report_to_json ~baseline ~findings ~facts_list =
  let open Telemetry.Json in
  let hot =
    List.concat_map (fun f -> f.f_hot) facts_list
    |> List.sort (fun a b -> String.compare a.hf_name b.hf_name)
    |> List.map (fun hf ->
           Obj
             [
               ("function", String hf.hf_name);
               ("file", String hf.hf_file);
               ("line", Int hf.hf_line);
               ("allocs", Int (List.length hf.hf_sites));
               ( "baseline",
                 match List.assoc_opt hf.hf_name baseline with
                 | Some n -> Int n
                 | None -> Null );
               ( "sites",
                 List
                   (List.map
                      (fun s ->
                        Obj [ ("line", Int s.al_line); ("kind", String s.al_kind) ])
                      hf.hf_sites) );
             ])
  in
  let names_of select =
    List.concat_map select facts_list |> List.sort_uniq String.compare
    |> List.map (fun n -> String n)
  in
  let metrics_emitted = names_of (fun f -> List.map fst f.f_metrics) in
  let spans_emitted = names_of (fun f -> List.map (fun (n, _, _) -> n) f.f_spans) in
  let monitor_refs =
    List.concat_map
      (fun f ->
        List.map
          (fun (rule, metric, _) ->
            Obj [ ("rule", String rule); ("metric", String metric) ])
          f.f_monitor_refs)
      facts_list
  in
  let poly =
    List.concat_map
      (fun f ->
        List.map
          (fun p ->
            Obj
              [
                ("file", String p.pc_file);
                ("line", Int p.pc_line);
                ("op", String p.pc_op);
                ("type", String p.pc_type);
                ("reason", String p.pc_reason);
              ])
          f.f_poly)
      facts_list
  in
  Obj
    [
      ("schema", String analysis_schema);
      ("hot", List hot);
      ( "metrics",
        Obj
          [ ("emitted", List metrics_emitted); ("monitor_refs", List monitor_refs) ] );
      ("spans", Obj [ ("emitted", List spans_emitted) ]);
      ("poly_compare", List poly);
      ( "findings",
        List
          (List.map
             (fun (viol : violation) ->
               Obj
                 [
                   ("file", String viol.file);
                   ("line", Int viol.line);
                   ("rule", String viol.rule);
                   ("message", String viol.message);
                 ])
             findings) );
    ]

(* --- whole-tree driver --------------------------------------------------- *)

type analysis = {
  an_facts : facts list;
  an_findings : violation list;  (* suppression-filtered, sorted *)
  an_improvements : (string * int * int) list;
  an_baseline : (string * int) list;
}

let analyze_tree ?(hot_set = default_hot_set) ?(baseline_file = "analysis_baseline.json")
    ?(read_source = read_source_from_disk) ~metrics_doc ~tracing_doc cmt_paths =
  init_load_path cmt_paths;
  let facts_list = List.filter_map (scan_cmt ~hot_set) cmt_paths in
  let baseline =
    match read_source baseline_file with
    | Some src -> (
        match Telemetry.Json.of_string src with
        | json -> baseline_of_json json
        | exception _ -> [])
    | None -> []
  in
  let documented_metrics =
    match read_source (fst metrics_doc) with
    | Some src -> doc_metric_names src
    | None -> snd metrics_doc
  in
  let documented_spans =
    match read_source (fst tracing_doc) with
    | Some src -> doc_span_names src
    | None -> snd tracing_doc
  in
  let a1 = a1_ratchet ~baseline_file ~baseline ~hot_set facts_list in
  let findings =
    a1.a1_findings
    @ a2_findings ~doc_file:(fst metrics_doc) ~documented:documented_metrics
        facts_list
    @ a3_findings ~doc_file:(fst tracing_doc) ~documented:documented_spans
        facts_list
    @ a4_findings facts_list
  in
  let findings =
    filter_suppressed ~read_source findings
    |> List.sort Lint_core.compare_violation
  in
  {
    an_facts = facts_list;
    an_findings = findings;
    an_improvements = a1.a1_improvements;
    an_baseline = baseline;
  }

let current_counts facts_list =
  List.concat_map (fun f -> f.f_hot) facts_list
  |> List.map (fun hf -> (hf.hf_name, List.length hf.hf_sites))
