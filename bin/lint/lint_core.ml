(* mailsys-lint: a determinism linter for this repository.

   Every artifact the repo compares across runs and PRs (BENCH.json,
   TRACE.jsonl, LEDGER.json, outcome.metrics) depends on the simulation
   being bit-deterministic for a given seed.  This pass parses every
   .ml/.mli with compiler-libs and flags the constructs that have
   historically broken that property:

   R1 [unsorted-fold]   a Hashtbl.fold/iter that builds a list (its
                        callback contains a cons) inside a binding with
                        no List/Array sort — hash order escapes.
   R2 [poly-compare]    [Hashtbl.hash]/[Hashtbl.seeded_hash] — require
                        typed hash mixes.  Bare [compare] and the
                        equality/ordering operators are checked
                        type-directedly by mailsys.analyze (rule A4),
                        which flags them only at types where
                        polymorphic comparison is actually unsafe.
   R3 [wall-clock]      wall-clock or ambient entropy ([Sys.time],
                        [Unix.gettimeofday], global [Random.*]) in sim
                        code; use [Dsim.Rng] or the telemetry probe.
   R4 [stdout]          [print_*]/[Printf.printf]/[Format.printf]/
                        [exit]/[Printexc.print_backtrace] in [lib/].
   R5 [missing-mli]     a [lib/] module without an .mli.

   A finding can be suppressed with an audited comment on the same or
   the preceding line:

     (* lint: allow <rule> — reason *)

   The annotation may live inside a multi-line comment block; the
   justification may continue over following lines, and the block
   suppresses matching findings on any line it touches plus the line
   directly after it.  A suppression without a reason is itself
   reported [bad-suppression].  [missing-mli] is suppressed by an
   allow comment anywhere in the .ml.

   This module is shared with mailsys.analyze (bin/analyze), which
   reuses the violation type, the suppression scanner and the source
   walk for its own type-aware rules. *)

type violation = { file : string; line : int; rule : string; message : string }

let compare_violation a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let pp_violation ppf v =
  Format.fprintf ppf "%s:%d %s %s" v.file v.line v.rule v.message

(* --- suppression comments ---------------------------------------------- *)

type allow = {
  a_line : int;  (* line carrying the "lint: allow" marker *)
  a_until : int;  (* last line the suppression covers (comment block
                     end + 1, so an annotation above a construct works
                     even when the justification spans lines) *)
  a_rule : string;
  a_reason : bool;
}

let known_rules =
  [ "unsorted-fold"; "poly-compare"; "wall-clock"; "stdout"; "missing-mli" ]

let analysis_rules = [ "hot-path-alloc"; "metric-name"; "span-drift" ]
(* Rules owned by mailsys.analyze (bin/analyze); poly-compare is shared
   between the two passes.  Both binaries accept suppressions of either
   set, so an allow for an analyzer rule never trips the linter's
   bad-suppression meta-rule. *)

let all_rules = known_rules @ analysis_rules

(* Comment blocks [(start_offset, end_offset_exclusive, end_line)] of
   the source, honouring nesting and string literals (both outside and
   inside comments — OCaml lexes strings within comments).  Best
   effort: a miss only costs a (visible) finding. *)
let comment_blocks source =
  let n = String.length source in
  let line = ref 1 in
  let blocks = ref [] in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  (* skip a string literal starting at [i] (source.[i] = '"') *)
  let skip_string () =
    incr i;
    let rec go () =
      if !i < n then
        match source.[!i] with
        | '"' -> incr i
        | '\\' when !i + 1 < n ->
            bump source.[!i + 1];
            i := !i + 2;
            go ()
        | c ->
            bump c;
            incr i;
            go ()
    in
    go ()
  in
  let rec skip_comment depth start =
    if !i >= n then blocks := (start, n, !line) :: !blocks
    else if !i + 1 < n && source.[!i] = '*' && source.[!i + 1] = ')' then begin
      i := !i + 2;
      if depth = 1 then blocks := (start, !i, !line) :: !blocks
      else skip_comment (depth - 1) start
    end
    else if !i + 1 < n && source.[!i] = '(' && source.[!i + 1] = '*' then begin
      i := !i + 2;
      skip_comment (depth + 1) start
    end
    else if source.[!i] = '"' then begin
      skip_string ();
      skip_comment depth start
    end
    else begin
      bump source.[!i];
      incr i;
      skip_comment depth start
    end
  in
  while !i < n do
    if !i + 1 < n && source.[!i] = '(' && source.[!i + 1] = '*' then begin
      let start = !i in
      i := !i + 2;
      skip_comment 1 start
    end
    else if source.[!i] = '"' then skip_string ()
    else if
      (* char literal '"' would otherwise open a bogus string *)
      !i + 2 < n && source.[!i] = '\'' && source.[!i + 2] = '\''
      && source.[!i + 1] <> '\\'
    then begin
      bump source.[!i + 1];
      i := !i + 3
    end
    else begin
      bump source.[!i];
      incr i
    end
  done;
  List.rev !blocks

(* Find "lint: allow <rule>[ — reason]" annotations.  The marker, the
   rule and the reason may be spread across the lines of one comment
   block; outside any block (e.g. markdown files, where suppressions
   ride in "<!-- lint: allow ... -->" comments) the annotation is read
   to the end of its line. *)
let scan_allows source =
  let marker = "lint: allow " in
  let mlen = String.length marker in
  let n = String.length source in
  let blocks = comment_blocks source in
  (* offset -> line, via a simple forward walk over all marker hits *)
  let hits = ref [] in
  let line = ref 1 in
  for i = 0 to n - 1 do
    if source.[i] = '\n' then incr line
    else if i + mlen <= n && String.sub source i mlen = marker then
      hits := (i, !line) :: !hits
  done;
  let line_end_of_offset off =
    (* line number of the last line touched by [0, off) *)
    let l = ref 1 in
    for i = 0 to off - 1 do
      if source.[i] = '\n' then incr l
    done;
    !l
  in
  List.rev_map
    (fun (off, lnum) ->
      let text_end, until =
        match
          List.find_opt (fun (s, e, _) -> off >= s && off < e) blocks
        with
        | Some (_, e, _) ->
            (* strip the closing "*)" so a flush rule name parses *)
            let e' = if e >= 2 then e - 2 else e in
            (max (off + mlen) e', line_end_of_offset e + 1)
        | None ->
            let eol =
              match String.index_from_opt source off '\n' with
              | Some j -> j
              | None -> n
            in
            (eol, lnum + 1)
      in
      let text = String.sub source (off + mlen) (text_end - (off + mlen)) in
      (* collapse the block's newlines: the annotation reads as one line *)
      let text =
        String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) text
      in
      let text = String.trim text in
      let rule =
        match String.index_opt text ' ' with
        | Some i -> String.sub text 0 i
        | None -> text
      in
      let after =
        String.sub text (String.length rule) (String.length text - String.length rule)
      in
      (* audited: the comment must carry a reason after a dash *)
      let has_reason =
        let dash i =
          (* "—" (U+2014, 3 bytes) or "-" *)
          after.[i] = '-'
          || (i + 2 < String.length after
             && Char.code after.[i] = 0xE2
             && Char.code after.[i + 1] = 0x80)
        in
        let rec scan i seen_dash =
          if i >= String.length after then false
          else if seen_dash then
            (* any word character after the dash counts as a reason *)
            match after.[i] with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
            | _ -> scan (i + 1) true
          else if dash i then scan (i + 1) true
          else scan (i + 1) false
        in
        scan 0 false
      in
      (* Prose merely mentioning the syntax (placeholders like
         "<rule>") is not an annotation. *)
      let rule_shaped =
        String.length rule > 0
        && String.for_all (function 'a' .. 'z' | '-' -> true | _ -> false) rule
      in
      if rule_shaped then
        Some { a_line = lnum; a_until = until; a_rule = rule; a_reason = has_reason }
      else None)
    !hits
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> Int.compare a.a_line b.a_line)

let suppressed allows ~rule ~line =
  List.exists
    (fun a ->
      String.equal a.a_rule rule && a.a_reason
      && line >= a.a_line && line <= a.a_until)
    allows

let file_suppressed allows ~rule =
  List.exists (fun a -> String.equal a.a_rule rule && a.a_reason) allows

let allow_violations file allows =
  List.filter_map
    (fun a ->
      if not (List.mem a.a_rule all_rules) then
        Some
          {
            file;
            line = a.a_line;
            rule = "bad-suppression";
            message =
              Printf.sprintf "unknown rule %S in lint: allow comment" a.a_rule;
          }
      else if not a.a_reason then
        Some
          {
            file;
            line = a.a_line;
            rule = "bad-suppression";
            message =
              Printf.sprintf
                "suppression of %s must carry a reason: (* lint: allow %s — why *)"
                a.a_rule a.a_rule;
          }
      else None)
    allows

(* --- AST analysis ------------------------------------------------------- *)

open Parsetree

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Does an expression tree contain a list cons anywhere?  A fold/iter
   callback that conses builds an order-dependent list. *)
let contains_cons expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  !found

let is_hashtbl_module = function
  | Longident.Lident "Hashtbl" -> true
  | Longident.Ldot (Longident.Lident "Stdlib", "Hashtbl") -> true
  | _ -> false

let sort_names = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let is_sort_ident = function
  | Longident.Ldot (Longident.Lident ("List" | "Array"), f) -> List.mem f sort_names
  | Longident.Ldot
      (Longident.Ldot (Longident.Lident "Stdlib", ("List" | "Array")), f) ->
      List.mem f sort_names
  | _ -> false

(* One top-level binding = the rule's "same function" scope. *)
type binding_facts = {
  mutable escapes : Location.t list;  (* hashtbl fold/iter building lists *)
  mutable has_sort : bool;
}

let analyze_binding expr =
  let facts = { escapes = []; has_sort = false } in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
              match txt with
              | Longident.Ldot (m, ("fold" | "iter")) when is_hashtbl_module m ->
                  if List.exists (fun (_, a) -> contains_cons a) args then
                    facts.escapes <- e.pexp_loc :: facts.escapes
              | _ -> ())
          | Pexp_ident { txt; _ } when is_sort_ident txt -> facts.has_sort <- true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  facts

(* R2/R3/R4 are plain ident scans, independent of binding structure. *)
type ident_finding = { i_loc : Location.t; i_rule : string; i_msg : string }

let ident_findings ~in_lib expr =
  let out = ref [] in
  let add loc rule msg = out := { i_loc = loc; i_rule = rule; i_msg = msg } :: !out in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match txt with
              | Longident.Ldot (m, ("hash" | "seeded_hash"))
                when is_hashtbl_module m ->
                  add loc "poly-compare"
                    "polymorphic Hashtbl.hash; derive a typed hash from \
                     String.hash/Int.hash instead"
              | Longident.Ldot (Longident.Lident "Sys", "time") ->
                  add loc "wall-clock"
                    "Sys.time reads the wall clock; sim code must use virtual \
                     time (Dsim.Engine.now) or go through the telemetry probe"
              | Longident.Ldot
                  ( Longident.Lident "Unix",
                    (("gettimeofday" | "time" | "gmtime" | "localtime") as f) ) ->
                  add loc "wall-clock"
                    (Printf.sprintf
                       "Unix.%s reads the wall clock; sim code must use \
                        virtual time (Dsim.Engine.now)"
                       f)
              | Longident.Ldot (Longident.Lident "Random", f) when f <> "State" ->
                  add loc "wall-clock"
                    (Printf.sprintf
                       "Random.%s uses ambient global entropy; use Dsim.Rng \
                        with an explicit seed"
                       f)
              | Longident.Lident
                  (("print_endline" | "print_string" | "print_newline"
                   | "print_int" | "print_float" | "print_char") as f)
                when in_lib ->
                  add loc "stdout"
                    (Printf.sprintf
                       "%s writes to stdout from library code; return data or \
                        take a formatter"
                       f)
              | Longident.Lident "exit"
              | Longident.Ldot (Longident.Lident "Stdlib", "exit")
                when in_lib ->
                  add loc "stdout"
                    "exit from library code; raise or return an error instead"
              | Longident.Ldot (Longident.Lident "Printf", "printf") when in_lib
                ->
                  add loc "stdout"
                    "Printf.printf writes to stdout from library code; use \
                     sprintf or a formatter argument"
              | Longident.Ldot (Longident.Lident "Format", "printf") when in_lib
                ->
                  add loc "stdout"
                    "Format.printf writes to stdout from library code; take a \
                     formatter argument"
              | Longident.Ldot (Longident.Lident "Printexc", "print_backtrace")
                when in_lib ->
                  add loc "stdout"
                    "Printexc.print_backtrace writes to an ambient channel \
                     from library code"
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  List.rev !out

(* --- per-file check ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let in_lib path =
  (* normalised relative paths: lib/..., ./lib/..., /abs/.../lib/... *)
  let rec has_lib_component = function
    | [] -> false
    | "lib" :: _ -> true
    | _ :: rest -> has_lib_component rest
  in
  has_lib_component (String.split_on_char '/' path)

let check_structure ~path ~allows structure =
  let violations = ref [] in
  let add loc rule message =
    let line = line_of loc in
    if not (suppressed allows ~rule ~line) then
      violations := { file = path; line; rule; message } :: !violations
  in
  let lib = in_lib path in
  let rec walk_structure str = List.iter walk_item str
  and walk_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (fun vb -> check_binding vb.pvb_expr) vbs
    | Pstr_module { pmb_expr; _ } -> walk_module_expr pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> walk_module_expr mb.pmb_expr) mbs
    | Pstr_eval (e, _) -> check_binding e
    | Pstr_include { pincl_mod; _ } -> walk_module_expr pincl_mod
    | _ -> ()
  and walk_module_expr me =
    match me.pmod_desc with
    | Pmod_structure str -> walk_structure str
    | Pmod_functor (_, body) -> walk_module_expr body
    | Pmod_constraint (me, _) -> walk_module_expr me
    | _ -> ()
  and check_binding expr =
    let facts = analyze_binding expr in
    if not facts.has_sort then
      List.iter
        (fun loc ->
          add loc "unsorted-fold"
            "Hashtbl fold/iter builds a list but the binding never sorts; \
             hash order escapes — List.sort with a typed comparator before \
             the result leaves this function")
        facts.escapes;
    List.iter
      (fun f -> add f.i_loc f.i_rule f.i_msg)
      (ident_findings ~in_lib:lib expr)
  in
  walk_structure structure;
  !violations

let check_file path =
  let source = read_file path in
  let allows = scan_allows source in
  let bad = allow_violations path allows in
  if Filename.check_suffix path ".mli" then
    (* Interfaces carry no expressions; parse to catch syntax rot. *)
    match Pparse.parse_interface ~tool_name:"mailsys-lint" path with
    | (_ : signature) -> bad
    | exception exn ->
        {
          file = path;
          line = 1;
          rule = "parse-error";
          message = Printexc.to_string exn;
        }
        :: bad
  else
    match Pparse.parse_implementation ~tool_name:"mailsys-lint" path with
    | structure -> check_structure ~path ~allows structure @ bad
    | exception exn ->
        {
          file = path;
          line = 1;
          rule = "parse-error";
          message = Printexc.to_string exn;
        }
        :: bad

(* --- directory walk + R5 ------------------------------------------------ *)

let rec collect_sources path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry > 0 && entry.[0] = '.' then acc
           else if String.equal entry "_build" then acc
           else collect_sources (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let missing_mli_violations files =
  List.filter_map
    (fun path ->
      if
        Filename.check_suffix path ".ml"
        && in_lib path
        && not (List.mem (path ^ "i") files)
      then
        let allows = scan_allows (read_file path) in
        if file_suppressed allows ~rule:"missing-mli" then None
        else
          Some
            {
              file = path;
              line = 1;
              rule = "missing-mli";
              message =
                "library module has no .mli; every lib/ module must state \
                 its interface";
            }
      else None)
    files

let check_paths paths =
  let files = List.fold_left (fun acc p -> collect_sources p acc) [] paths in
  let files = List.sort_uniq String.compare files in
  let per_file = List.concat_map check_file files in
  List.sort compare_violation (per_file @ missing_mli_violations files)
