(* mailsys-lint: a determinism linter for this repository.

   Every artifact the repo compares across runs and PRs (BENCH.json,
   TRACE.jsonl, LEDGER.json, outcome.metrics) depends on the simulation
   being bit-deterministic for a given seed.  This pass parses every
   .ml/.mli with compiler-libs and flags the constructs that have
   historically broken that property:

   R1 [unsorted-fold]   a Hashtbl.fold/iter that builds a list (its
                        callback contains a cons) inside a binding with
                        no List/Array sort — hash order escapes.
   R2 [poly-compare]    bare polymorphic [compare]/[Stdlib.compare] or
                        [Hashtbl.hash] — require typed comparators.
   R3 [wall-clock]      wall-clock or ambient entropy ([Sys.time],
                        [Unix.gettimeofday], global [Random.*]) in sim
                        code; use [Dsim.Rng] or the telemetry probe.
   R4 [stdout]          [print_*]/[Printf.printf]/[Format.printf]/
                        [exit]/[Printexc.print_backtrace] in [lib/].
   R5 [missing-mli]     a [lib/] module without an .mli.

   A finding can be suppressed with an audited comment on the same or
   the preceding line:

     (* lint: allow <rule> — reason *)

   A suppression without a reason is itself reported [bad-suppression].
   [missing-mli] is suppressed by an allow comment anywhere in the .ml. *)

type violation = { file : string; line : int; rule : string; message : string }

let compare_violation a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let pp_violation ppf v =
  Format.fprintf ppf "%s:%d %s %s" v.file v.line v.rule v.message

(* --- suppression comments ---------------------------------------------- *)

type allow = { a_line : int; a_rule : string; a_reason : bool }

let known_rules =
  [ "unsorted-fold"; "poly-compare"; "wall-clock"; "stdout"; "missing-mli" ]

(* Find "lint: allow <rule>[ — reason]" occurrences with line numbers.
   A plain per-line scan is enough: the annotations are written on one
   line by convention, and a miss only costs a (visible) finding. *)
let scan_allows source =
  let allows = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      let marker = "lint: allow " in
      match
        let rec find from =
          if from + String.length marker > String.length line then None
          else if String.sub line from (String.length marker) = marker then
            Some (from + String.length marker)
          else find (from + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
          let rest = String.sub line start (String.length line - start) in
          let rule =
            match String.index_opt rest ' ' with
            | Some i -> String.sub rest 0 i
            | None ->
                (* strip a trailing "*)" when the comment ends flush *)
                let r = String.trim rest in
                let r =
                  if String.length r >= 2 && String.sub r (String.length r - 2) 2 = "*)"
                  then String.trim (String.sub r 0 (String.length r - 2))
                  else r
                in
                r
          in
          let rule_shaped =
            String.length rule > 0
            && String.for_all (function 'a' .. 'z' | '-' -> true | _ -> false) rule
          in
          let after =
            String.sub rest (String.length rule)
              (String.length rest - String.length rule)
          in
          (* audited: the comment must carry a reason after a dash *)
          let has_reason =
            let dash i =
              (* "—" (U+2014, 3 bytes) or "-" *)
              (after.[i] = '-')
              || (i + 2 < String.length after
                 && Char.code after.[i] = 0xE2
                 && Char.code after.[i + 1] = 0x80)
            in
            let rec scan i seen_dash =
              if i >= String.length after then false
              else if seen_dash then
                (* any word character after the dash counts as a reason *)
                (match after.[i] with
                | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
                | _ -> scan (i + 1) true)
              else if dash i then scan (i + 1) true
              else scan (i + 1) false
            in
            scan 0 false
          in
          (* Prose merely mentioning the syntax (placeholders like
             "<rule>") is not an annotation. *)
          if rule_shaped then
            allows := { a_line = lnum; a_rule = rule; a_reason = has_reason } :: !allows)
    lines;
  List.rev !allows

let suppressed allows ~rule ~line =
  List.exists
    (fun a ->
      String.equal a.a_rule rule && a.a_reason
      && (a.a_line = line || a.a_line = line - 1))
    allows

let file_suppressed allows ~rule =
  List.exists (fun a -> String.equal a.a_rule rule && a.a_reason) allows

let allow_violations file allows =
  List.filter_map
    (fun a ->
      if not (List.mem a.a_rule known_rules) then
        Some
          {
            file;
            line = a.a_line;
            rule = "bad-suppression";
            message =
              Printf.sprintf "unknown rule %S in lint: allow comment" a.a_rule;
          }
      else if not a.a_reason then
        Some
          {
            file;
            line = a.a_line;
            rule = "bad-suppression";
            message =
              Printf.sprintf
                "suppression of %s must carry a reason: (* lint: allow %s — why *)"
                a.a_rule a.a_rule;
          }
      else None)
    allows

(* --- AST analysis ------------------------------------------------------- *)

open Parsetree

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Does an expression tree contain a list cons anywhere?  A fold/iter
   callback that conses builds an order-dependent list. *)
let contains_cons expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  !found

let is_hashtbl_module = function
  | Longident.Lident "Hashtbl" -> true
  | Longident.Ldot (Longident.Lident "Stdlib", "Hashtbl") -> true
  | _ -> false

let sort_names = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let is_sort_ident = function
  | Longident.Ldot (Longident.Lident ("List" | "Array"), f) -> List.mem f sort_names
  | Longident.Ldot
      (Longident.Ldot (Longident.Lident "Stdlib", ("List" | "Array")), f) ->
      List.mem f sort_names
  | _ -> false

(* One top-level binding = the rule's "same function" scope. *)
type binding_facts = {
  mutable escapes : Location.t list;  (* hashtbl fold/iter building lists *)
  mutable has_sort : bool;
  mutable shadows_compare : bool;  (* a local [let compare] in scope *)
}

let analyze_binding expr =
  let facts = { escapes = []; has_sort = false; shadows_compare = false } in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
              match txt with
              | Longident.Ldot (m, ("fold" | "iter")) when is_hashtbl_module m ->
                  if List.exists (fun (_, a) -> contains_cons a) args then
                    facts.escapes <- e.pexp_loc :: facts.escapes
              | _ -> ())
          | Pexp_ident { txt; _ } when is_sort_ident txt -> facts.has_sort <- true
          | Pexp_let (_, vbs, _) ->
              if
                List.exists
                  (fun vb ->
                    match vb.pvb_pat.ppat_desc with
                    | Ppat_var { txt = "compare"; _ } -> true
                    | _ -> false)
                  vbs
              then facts.shadows_compare <- true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  facts

(* R2/R3/R4 are plain ident scans, independent of binding structure. *)
type ident_finding = { i_loc : Location.t; i_rule : string; i_msg : string }

let ident_findings ~in_lib ~module_shadows_compare expr =
  let out = ref [] in
  let add loc rule msg = out := { i_loc = loc; i_rule = rule; i_msg = msg } :: !out in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match txt with
              | Longident.Lident "compare"
              | Longident.Ldot (Longident.Lident "Stdlib", "compare")
                when not module_shadows_compare ->
                  add loc "poly-compare"
                    "bare polymorphic compare; use a typed comparator \
                     (Int.compare, String.compare, a record comparator, ...)"
              | Longident.Ldot (m, ("hash" | "seeded_hash"))
                when is_hashtbl_module m ->
                  add loc "poly-compare"
                    "polymorphic Hashtbl.hash; derive a typed hash from \
                     String.hash/Int.hash instead"
              | Longident.Ldot (Longident.Lident "Sys", "time") ->
                  add loc "wall-clock"
                    "Sys.time reads the wall clock; sim code must use virtual \
                     time (Dsim.Engine.now) or go through the telemetry probe"
              | Longident.Ldot
                  ( Longident.Lident "Unix",
                    (("gettimeofday" | "time" | "gmtime" | "localtime") as f) ) ->
                  add loc "wall-clock"
                    (Printf.sprintf
                       "Unix.%s reads the wall clock; sim code must use \
                        virtual time (Dsim.Engine.now)"
                       f)
              | Longident.Ldot (Longident.Lident "Random", f) when f <> "State" ->
                  add loc "wall-clock"
                    (Printf.sprintf
                       "Random.%s uses ambient global entropy; use Dsim.Rng \
                        with an explicit seed"
                       f)
              | Longident.Lident
                  (("print_endline" | "print_string" | "print_newline"
                   | "print_int" | "print_float" | "print_char") as f)
                when in_lib ->
                  add loc "stdout"
                    (Printf.sprintf
                       "%s writes to stdout from library code; return data or \
                        take a formatter"
                       f)
              | Longident.Lident "exit"
              | Longident.Ldot (Longident.Lident "Stdlib", "exit")
                when in_lib ->
                  add loc "stdout"
                    "exit from library code; raise or return an error instead"
              | Longident.Ldot (Longident.Lident "Printf", "printf") when in_lib
                ->
                  add loc "stdout"
                    "Printf.printf writes to stdout from library code; use \
                     sprintf or a formatter argument"
              | Longident.Ldot (Longident.Lident "Format", "printf") when in_lib
                ->
                  add loc "stdout"
                    "Format.printf writes to stdout from library code; take a \
                     formatter argument"
              | Longident.Ldot (Longident.Lident "Printexc", "print_backtrace")
                when in_lib ->
                  add loc "stdout"
                    "Printexc.print_backtrace writes to an ambient channel \
                     from library code"
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  List.rev !out

(* --- per-file check ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let in_lib path =
  (* normalised relative paths: lib/..., ./lib/..., /abs/.../lib/... *)
  let rec has_lib_component = function
    | [] -> false
    | "lib" :: _ -> true
    | _ :: rest -> has_lib_component rest
  in
  has_lib_component (String.split_on_char '/' path)

let check_structure ~path ~allows structure =
  let violations = ref [] in
  let add loc rule message =
    let line = line_of loc in
    if not (suppressed allows ~rule ~line) then
      violations := { file = path; line; rule; message } :: !violations
  in
  let lib = in_lib path in
  (* Module-level [let compare] shadows later bare uses (e.g. Edge_id
     defines its own compare, then uses it).  One positional pass. *)
  let module_shadows = ref false in
  let rec walk_structure str = List.iter walk_item str
  and walk_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            (match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = "compare"; _ } -> ()
            | _ -> check_binding vb.pvb_expr);
            (* the body of [let compare] itself is still checked, with
               bare-compare allowed inside (it may recurse) *)
            (match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = "compare"; _ } ->
                check_binding ~shadow:true vb.pvb_expr;
                module_shadows := true
            | _ -> ()))
          vbs
    | Pstr_module { pmb_expr; _ } -> walk_module_expr pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> walk_module_expr mb.pmb_expr) mbs
    | Pstr_eval (e, _) -> check_binding e
    | Pstr_include { pincl_mod; _ } -> walk_module_expr pincl_mod
    | _ -> ()
  and walk_module_expr me =
    match me.pmod_desc with
    | Pmod_structure str -> walk_structure str
    | Pmod_functor (_, body) -> walk_module_expr body
    | Pmod_constraint (me, _) -> walk_module_expr me
    | _ -> ()
  and check_binding ?(shadow = false) expr =
    let facts = analyze_binding expr in
    if not facts.has_sort then
      List.iter
        (fun loc ->
          add loc "unsorted-fold"
            "Hashtbl fold/iter builds a list but the binding never sorts; \
             hash order escapes — List.sort with a typed comparator before \
             the result leaves this function")
        facts.escapes;
    let shadows = shadow || !module_shadows || facts.shadows_compare in
    List.iter
      (fun f -> add f.i_loc f.i_rule f.i_msg)
      (ident_findings ~in_lib:lib ~module_shadows_compare:shadows expr)
  in
  walk_structure structure;
  !violations

let check_file path =
  let source = read_file path in
  let allows = scan_allows source in
  let bad = allow_violations path allows in
  if Filename.check_suffix path ".mli" then
    (* Interfaces carry no expressions; parse to catch syntax rot. *)
    match Pparse.parse_interface ~tool_name:"mailsys-lint" path with
    | (_ : signature) -> bad
    | exception exn ->
        {
          file = path;
          line = 1;
          rule = "parse-error";
          message = Printexc.to_string exn;
        }
        :: bad
  else
    match Pparse.parse_implementation ~tool_name:"mailsys-lint" path with
    | structure -> check_structure ~path ~allows structure @ bad
    | exception exn ->
        {
          file = path;
          line = 1;
          rule = "parse-error";
          message = Printexc.to_string exn;
        }
        :: bad

(* --- directory walk + R5 ------------------------------------------------ *)

let rec collect_sources path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry > 0 && entry.[0] = '.' then acc
           else if String.equal entry "_build" then acc
           else collect_sources (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let missing_mli_violations files =
  List.filter_map
    (fun path ->
      if
        Filename.check_suffix path ".ml"
        && in_lib path
        && not (List.mem (path ^ "i") files)
      then
        let allows = scan_allows (read_file path) in
        if file_suppressed allows ~rule:"missing-mli" then None
        else
          Some
            {
              file = path;
              line = 1;
              rule = "missing-mli";
              message =
                "library module has no .mli; every lib/ module must state \
                 its interface";
            }
      else None)
    files

let check_paths paths =
  let files = List.fold_left (fun acc p -> collect_sources p acc) [] paths in
  let files = List.sort_uniq String.compare files in
  let per_file = List.concat_map check_file files in
  List.sort compare_violation (per_file @ missing_mli_violations files)
