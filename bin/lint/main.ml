(* mailsys.lint CLI: [mailsys.lint DIR...] — lint every .ml/.mli under
   the given directories (default: lib bin), print one "file:line rule
   message" per finding, exit 1 if any survive suppression. *)

let () =
  let args =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib"; "bin" ] | _ :: rest -> rest
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) args in
  if missing <> [] then begin
    List.iter (Printf.eprintf "mailsys.lint: no such path %s\n") missing;
    exit 2
  end;
  let violations = Lint_core.check_paths args in
  List.iter
    (fun v -> Format.printf "%a@." Lint_core.pp_violation v)
    violations;
  match violations with
  | [] ->
      Printf.printf "mailsys.lint: clean (%s)\n" (String.concat " " args);
      exit 0
  | vs ->
      Printf.eprintf "mailsys.lint: %d violation(s)\n" (List.length vs);
      exit 1
