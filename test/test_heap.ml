(* Unit and property tests for Dsim.Heap. *)

let test_empty () =
  let h = Dsim.Heap.create () in
  Alcotest.(check int) "length" 0 (Dsim.Heap.length h);
  Alcotest.(check bool) "is_empty" true (Dsim.Heap.is_empty h);
  Alcotest.(check bool) "peek" true (Dsim.Heap.peek h = None);
  Alcotest.(check bool) "pop" true (Dsim.Heap.pop h = None)

let test_pop_exn_empty () =
  let h = Dsim.Heap.create () in
  Alcotest.check_raises "pop_exn" Not_found (fun () -> ignore (Dsim.Heap.pop_exn h))

let test_nan_rejected () =
  let h = Dsim.Heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Heap.push: NaN priority") (fun () ->
      Dsim.Heap.push h nan 0)

let test_ordering () =
  let h = Dsim.Heap.create () in
  List.iter (fun (p, v) -> Dsim.Heap.push h p v) [ (3., "c"); (1., "a"); (2., "b") ];
  let pop () = snd (Dsim.Heap.pop_exn h) in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let test_fifo_ties () =
  let h = Dsim.Heap.create () in
  List.iteri (fun i v -> Dsim.Heap.push h (if i = 1 then 0. else 1.) v)
    [ "x1"; "y"; "x2" ];
  (* y has priority 0; x1 and x2 tie at 1 and must pop in insertion order *)
  Alcotest.(check string) "min" "y" (snd (Dsim.Heap.pop_exn h));
  Alcotest.(check string) "tie 1" "x1" (snd (Dsim.Heap.pop_exn h));
  Alcotest.(check string) "tie 2" "x2" (snd (Dsim.Heap.pop_exn h))

let test_fifo_many_ties () =
  let h = Dsim.Heap.create () in
  for i = 0 to 99 do
    Dsim.Heap.push h 5. i
  done;
  for i = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "tie %d" i) i (snd (Dsim.Heap.pop_exn h))
  done

let test_clear () =
  let h = Dsim.Heap.create () in
  Dsim.Heap.push h 1. "a";
  Dsim.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Dsim.Heap.length h);
  Dsim.Heap.push h 2. "b";
  Alcotest.(check string) "usable after clear" "b" (snd (Dsim.Heap.pop_exn h))

let test_to_sorted_list () =
  let h = Dsim.Heap.create () in
  List.iter (fun p -> Dsim.Heap.push h p (int_of_float p)) [ 5.; 1.; 3.; 2.; 4. ];
  let l = Dsim.Heap.to_sorted_list h in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.map snd l);
  Alcotest.(check int) "non-destructive" 5 (Dsim.Heap.length h)

let test_capacity_hint () =
  (* Pushing far past the hint must behave exactly like the default. *)
  let h = Dsim.Heap.create ~capacity:4 () in
  for i = 0 to 99 do
    Dsim.Heap.push h (float_of_int (99 - i)) i
  done;
  Alcotest.(check int) "length" 100 (Dsim.Heap.length h);
  for expected = 99 downto 0 do
    Alcotest.(check int)
      (Printf.sprintf "pop %d" expected)
      expected
      (snd (Dsim.Heap.pop_exn h))
  done;
  (* Clearing drops the backing array; the heap stays usable. *)
  Dsim.Heap.push h 1. 7;
  Alcotest.(check int) "usable after drain" 7 (snd (Dsim.Heap.pop_exn h));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Heap.create: capacity must be positive") (fun () ->
      ignore (Dsim.Heap.create ~capacity:0 () : int Dsim.Heap.t))

let prop_pop_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:200
    QCheck.(list (pair (float_range 0. 1000.) small_int))
    (fun items ->
      let h = Dsim.Heap.create () in
      List.iter (fun (p, v) -> Dsim.Heap.push h p v) items;
      let rec drain acc =
        match Dsim.Heap.pop h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let prios = drain [] in
      let rec sorted = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> a <= b && sorted rest
      in
      List.length prios = List.length items && sorted prios)

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap drain equals stable sort" ~count:200
    QCheck.(list (pair (int_range 0 20) small_int))
    (fun items ->
      let h = Dsim.Heap.create () in
      List.iter (fun (p, v) -> Dsim.Heap.push h (float_of_int p) v) items;
      let rec drain acc =
        match Dsim.Heap.pop h with
        | None -> List.rev acc
        | Some (p, v) -> drain ((p, v) :: acc)
      in
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> Float.compare a b)
          (List.map (fun (p, v) -> (float_of_int p, v)) items)
      in
      drain [] = expected)

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "empty heap" `Quick test_empty;
        Alcotest.test_case "pop_exn on empty" `Quick test_pop_exn_empty;
        Alcotest.test_case "NaN priority rejected" `Quick test_nan_rejected;
        Alcotest.test_case "pops in priority order" `Quick test_ordering;
        Alcotest.test_case "FIFO among ties" `Quick test_fifo_ties;
        Alcotest.test_case "FIFO among many ties" `Quick test_fifo_many_ties;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "capacity hint" `Quick test_capacity_hint;
        Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list;
        QCheck_alcotest.to_alcotest prop_pop_sorted;
        QCheck_alcotest.to_alcotest prop_heap_matches_sort;
      ] );
  ]
