(* Tests for per-message span tracing: the Tracer collector, trace
   reassembly, the critical-path analyzer, and the end-to-end
   propagation through all three mail-system designs. *)

module Span = Telemetry.Span
module Tracer = Telemetry.Tracer

(* --- collector ---------------------------------------------------------- *)

let test_span_lifecycle () =
  let tr = Tracer.create () in
  let s = Tracer.span tr ~name:"stage" ~start:1. () in
  Alcotest.(check bool) "open" false (Span.is_finished s);
  Alcotest.(check bool) "no duration yet" true (Span.duration s = None);
  Span.finish s ~at:3.;
  Span.finish s ~at:99.;
  Alcotest.(check (float 1e-9)) "first finish wins" 2.
    (Option.get (Span.duration s));
  Span.set_attr s "k" "v1";
  Span.set_attr s "k" "v2";
  Alcotest.(check (option string)) "attr overridden" (Some "v2") (Span.attr s "k");
  Alcotest.(check (option string)) "missing attr" None (Span.attr s "nope")

let test_tracer_capacity_bounds () =
  (* Mirrors Dsim.Trace's discipline: the ring keeps the newest
     [capacity] spans, drops oldest-first, and [total] keeps counting. *)
  let tr = Tracer.create ~capacity:3 () in
  for i = 1 to 5 do
    ignore (Tracer.span tr ~name:(Printf.sprintf "s%d" i) ~start:(float_of_int i) ())
  done;
  let retained = Tracer.spans tr in
  Alcotest.(check int) "retained" 3 (List.length retained);
  Alcotest.(check (list string)) "kept newest" [ "s3"; "s4"; "s5" ]
    (List.map (fun (s : Span.t) -> s.Span.name) retained);
  Alcotest.(check int) "total counts all" 5 (Tracer.total tr);
  Alcotest.(check int) "count sees retained only" 1 (Tracer.count ~name:"s4" tr);
  Alcotest.(check int) "dropped span invisible" 0 (Tracer.count ~name:"s1" tr);
  Tracer.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Tracer.spans tr));
  Alcotest.(check int) "total reset" 0 (Tracer.total tr)

let test_reassembly () =
  let tr = Tracer.create () in
  let root = Tracer.span tr ~name:"root" ~start:0. () in
  let a = Tracer.span tr ~parent:root ~name:"a" ~start:1. ~finish:2. () in
  let _a1 = Tracer.span tr ~parent:a ~name:"a1" ~start:1.5 ~finish:1.8 () in
  let _b = Tracer.span tr ~parent:root ~name:"b" ~start:3. ~finish:4. () in
  let other = Tracer.span tr ~name:"other-root" ~start:0. () in
  Alcotest.(check bool) "distinct traces" true
    (other.Span.trace_id <> root.Span.trace_id);
  Alcotest.(check int) "two traces" 2 (List.length (Tracer.trace_ids tr));
  let spans = Tracer.trace_spans tr root.Span.trace_id in
  Alcotest.(check int) "four spans in trace" 4 (List.length spans);
  Alcotest.(check bool) "single connected tree" true (Tracer.is_connected spans);
  (match Tracer.trees tr root.Span.trace_id with
  | [ t ] ->
      Alcotest.(check string) "root on top" "root" t.Tracer.span.Span.name;
      Alcotest.(check (list string)) "children ordered by start" [ "a"; "b" ]
        (List.map (fun c -> c.Tracer.span.Span.name) t.Tracer.children)
  | l -> Alcotest.failf "expected one tree, got %d" (List.length l));
  (* A span whose parent is not in the list becomes a root. *)
  let orphan = { a with Span.parent = Some 99999; span_id = 424242 } in
  Alcotest.(check bool) "orphan breaks connectivity" false
    (Tracer.is_connected (orphan :: spans))

let test_exports () =
  let tr = Tracer.create () in
  let root = Tracer.span tr ~name:"message" ~start:0. ~finish:10. () in
  ignore
    (Tracer.span tr ~parent:root ~name:"submit" ~start:0. ~finish:1.
       ~attrs:[ ("server", "S1") ] ());
  let lines = String.split_on_char '\n' (String.trim (Tracer.to_jsonl tr)) in
  Alcotest.(check int) "one line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      match Telemetry.Json.of_string line with
      | Telemetry.Json.Obj fields ->
          Alcotest.(check bool) "has trace field" true
            (List.mem_assoc "trace" fields)
      | _ -> Alcotest.fail "span line is not an object")
    lines;
  match Tracer.to_chrome tr with
  | Telemetry.Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Telemetry.Json.List events ->
          Alcotest.(check int) "one event per span" 2 (List.length events);
          List.iter
            (fun ev ->
              Alcotest.(check (option string)) "complete event"
                (Some "X")
                (match Telemetry.Json.member "ph" ev with
                | Some (Telemetry.Json.String s) -> Some s
                | _ -> None))
            events
      | _ -> Alcotest.fail "traceEvents is not a list")
  | _ -> Alcotest.fail "chrome export is not an object"

(* --- critical path ------------------------------------------------------ *)

let test_critical_path_synthetic () =
  let tr = Tracer.create () in
  let mk total_wait =
    let root = Tracer.span tr ~name:"message" ~start:0. ~finish:(10. +. total_wait) () in
    ignore (Tracer.span tr ~parent:root ~name:"submit" ~start:0. ~finish:10. ());
    (* two queue waits per trace: the analyzer sums same-name spans *)
    ignore
      (Tracer.span tr ~parent:root ~name:"queue_wait" ~start:10.
         ~finish:(10. +. (total_wait /. 2.)) ());
    ignore
      (Tracer.span tr ~parent:root ~name:"queue_wait" ~start:12.
         ~finish:(12. +. (total_wait /. 2.)) ())
  in
  mk 2.;
  mk 4.;
  mk 6.;
  (* an unfinished root counts as a trace but not a complete one *)
  ignore (Tracer.span tr ~name:"message" ~start:0. ());
  (* a foreign trace family is not selected *)
  ignore (Tracer.span tr ~name:"getmail.check" ~start:0. ~finish:1. ());
  let r = Telemetry.Critical_path.analyze tr in
  Alcotest.(check string) "root name" "message" r.Telemetry.Critical_path.root;
  Alcotest.(check int) "traces" 4 r.Telemetry.Critical_path.traces;
  Alcotest.(check int) "complete" 3 r.Telemetry.Critical_path.complete;
  let stage name =
    List.find
      (fun s -> String.equal s.Telemetry.Critical_path.stage name)
      r.Telemetry.Critical_path.stages
  in
  let qw = stage "queue_wait" in
  Alcotest.(check int) "queue_wait traces" 3 qw.Telemetry.Critical_path.traces;
  Alcotest.(check int) "queue_wait spans" 6 qw.Telemetry.Critical_path.spans;
  Alcotest.(check (float 1e-9)) "queue_wait mean of per-trace sums" 4.
    qw.Telemetry.Critical_path.mean;
  Alcotest.(check (float 1e-9)) "queue_wait p50" 4. qw.Telemetry.Critical_path.p50;
  Alcotest.(check (float 1e-9)) "queue_wait max" 6. qw.Telemetry.Critical_path.max;
  let total = stage "total" in
  Alcotest.(check (float 1e-9)) "total p50" 14. total.Telemetry.Critical_path.p50;
  Alcotest.(check (float 1e-9)) "total p90 interpolates" 15.6
    total.Telemetry.Critical_path.p90;
  (* JSON export keeps the stage list *)
  match Telemetry.Critical_path.to_json r with
  | Telemetry.Json.Obj fields -> (
      match List.assoc "stages" fields with
      | Telemetry.Json.List l ->
          Alcotest.(check int) "stages exported"
            (List.length r.Telemetry.Critical_path.stages)
            (List.length l)
      | _ -> Alcotest.fail "stages is not a list")
  | _ -> Alcotest.fail "report is not an object"

(* --- end-to-end through the designs ------------------------------------- *)

let small_spec =
  {
    Mail.Scenario.default_spec with
    duration = 2000.;
    mail_count = 120;
    check_period = 80.;
  }

let hier_site seed =
  let rng = Dsim.Rng.create seed in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

let message_traces tracer =
  List.filter
    (fun (_, spans) ->
      List.exists
        (fun (s : Span.t) -> s.Span.parent = None && s.Span.name = "message")
        spans)
    (Tracer.traces tracer)

let stage_names spans =
  List.sort_uniq String.compare (List.map (fun (s : Span.t) -> s.Span.name) spans)

let check_message_traces ~label (o : Mail.Scenario.outcome) =
  let traces = message_traces o.Mail.Scenario.tracer in
  Alcotest.(check bool) (label ^ ": non-empty trace") true (traces <> []);
  (* Every reassembled message trace is one connected span tree
     covering the full lifecycle: submit → queue-wait → deposit →
     retrieval poll (plus the mailbox dwell). *)
  let full =
    List.filter
      (fun (_, spans) ->
        Tracer.is_connected spans
        && List.for_all
             (fun stage -> List.mem stage (stage_names spans))
             [ "submit"; "queue_wait"; "deposit"; "getmail.poll"; "mailbox.wait" ])
      traces
  in
  Alcotest.(check bool) (label ^ ": >=1 full connected lifecycle tree") true
    (full <> []);
  List.iter
    (fun (_, spans) ->
      Alcotest.(check bool) (label ^ ": trace connected") true
        (Tracer.is_connected spans))
    traces

let test_syntax_end_to_end () =
  let config =
    { Mail.Syntax_system.default_config with service_rate = Some 1.0 }
  in
  let o = Mail.Scenario.run_syntax ~config (Netsim.Topology.paper_fig1 ()) small_spec in
  check_message_traces ~label:"syntax" o;
  (* every injected message opened a trace, and all were retrieved *)
  Alcotest.(check int) "one message trace per submission" 120
    (List.length (message_traces o.Mail.Scenario.tracer));
  List.iter
    (fun (_, spans) ->
      let root =
        List.find (fun (s : Span.t) -> s.Span.parent = None) spans
      in
      Alcotest.(check bool) "message trace complete" true (Span.is_finished root))
    (message_traces o.Mail.Scenario.tracer);
  (* under the service model, queue waits reconstructed from spans
     agree with the pipeline's summary statistics *)
  let r = Telemetry.Critical_path.analyze o.Mail.Scenario.tracer in
  let qw =
    List.find
      (fun s -> s.Telemetry.Critical_path.stage = "queue_wait")
      r.Telemetry.Critical_path.stages
  in
  Alcotest.(check bool) "queue_wait observed" true
    (qw.Telemetry.Critical_path.spans > 0);
  let gauge name = Telemetry.Registry.get_gauge o.Mail.Scenario.metrics name in
  Alcotest.(check (float 1e-9)) "trace_spans gauge matches tracer"
    (float_of_int (Tracer.total o.Mail.Scenario.tracer))
    (gauge "trace_spans")

let test_all_designs_trace () =
  let syn = Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()) small_spec in
  check_message_traces ~label:"syntax" syn;
  let loc = Mail.Scenario.run_location ~roam_probability:0.2 (hier_site 11) small_spec in
  check_message_traces ~label:"location" loc;
  let att = Mail.Scenario.run_attribute ~roam_probability:0.1 (hier_site 11) small_spec in
  check_message_traces ~label:"attribute" att

let test_getmail_one_poll_per_check () =
  (* §3.1.2c: under no failures the retrieval traces must show ~1 poll
     per check — the claim behind [final_polls_per_check], asserted
     here from the reassembled spans instead of the counters. *)
  let o = Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()) small_spec in
  let checks = ref 0 and polls = ref 0 in
  List.iter
    (fun (_, spans) ->
      match
        List.find_opt
          (fun (s : Span.t) -> s.Span.parent = None && s.Span.name = "getmail.check")
          spans
      with
      | None -> ()
      | Some root ->
          incr checks;
          Alcotest.(check bool) "check span finished" true (Span.is_finished root);
          let in_trace =
            List.filter (fun (s : Span.t) -> s.Span.name = "getmail.poll") spans
          in
          polls := !polls + List.length in_trace;
          (* the root's attributes summarise its own children *)
          Alcotest.(check (option string)) "polls attr matches children"
            (Some (string_of_int (List.length in_trace)))
            (Span.attr root "polls");
          Alcotest.(check (option string)) "no failed polls" (Some "0")
            (Span.attr root "failed_polls"))
    (Tracer.traces o.Mail.Scenario.tracer);
  Alcotest.(check bool) "checks traced" true (!checks > 0);
  (* trace-derived ratio equals the counter-derived one... *)
  Alcotest.(check int) "poll spans = polls counter"
    (Telemetry.Registry.get_counter o.Mail.Scenario.metrics "polls")
    !polls;
  Alcotest.(check int) "check traces = checks counter"
    (Telemetry.Registry.get_counter o.Mail.Scenario.metrics "checks")
    !checks;
  let per_check = float_of_int !polls /. float_of_int !checks in
  Alcotest.(check (float 1e-9)) "agrees with final_polls_per_check"
    o.Mail.Scenario.final_polls_per_check per_check;
  (* ...and shows the paper's headline number. *)
  Alcotest.(check bool) "~1 poll per check" true
    (per_check >= 1.0 && per_check < 1.15)

let suite =
  [
    ( "tracing",
      [
        Alcotest.test_case "span lifecycle" `Quick test_span_lifecycle;
        Alcotest.test_case "tracer ring-buffer bounds" `Quick
          test_tracer_capacity_bounds;
        Alcotest.test_case "trace reassembly" `Quick test_reassembly;
        Alcotest.test_case "JSONL and Chrome exports" `Quick test_exports;
        Alcotest.test_case "critical-path analyzer" `Quick
          test_critical_path_synthetic;
        Alcotest.test_case "syntax end-to-end trace" `Slow test_syntax_end_to_end;
        Alcotest.test_case "all designs produce lifecycle traces" `Slow
          test_all_designs_trace;
        Alcotest.test_case "3.1.2c: one poll span per check" `Slow
          test_getmail_one_poll_per_check;
      ] );
  ]
