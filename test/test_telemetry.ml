(* Telemetry registry, histogram percentile edge cases, and JSON
   round-tripping. *)

module R = Telemetry.Registry
module J = Telemetry.Json

let test_counter_create_incr () =
  let reg = R.create () in
  let c = R.counter reg "polls" in
  R.incr c;
  R.incr ~by:4 c;
  Alcotest.(check int) "handle value" 5 (R.counter_value c);
  Alcotest.(check int) "lookup by name" 5 (R.get_counter reg "polls");
  (* find-or-create memoises: same handle again *)
  R.incr (R.counter reg "polls");
  Alcotest.(check int) "same handle" 6 (R.get_counter reg "polls");
  Alcotest.(check int) "absent counter reads 0" 0 (R.get_counter reg "nope")

let test_labels_distinguish_and_normalise () =
  let reg = R.create () in
  R.incr (R.counter ~labels:[ ("design", "syntax") ] reg "polls");
  R.incr ~by:2 (R.counter ~labels:[ ("design", "location") ] reg "polls");
  Alcotest.(check int) "label set 1" 1
    (R.get_counter ~labels:[ ("design", "syntax") ] reg "polls");
  Alcotest.(check int) "label set 2" 2
    (R.get_counter ~labels:[ ("design", "location") ] reg "polls");
  (* label order is irrelevant *)
  R.incr (R.counter ~labels:[ ("b", "2"); ("a", "1") ] reg "x");
  Alcotest.(check int) "sorted lookup" 1
    (R.get_counter ~labels:[ ("a", "1"); ("b", "2") ] reg "x");
  Alcotest.check_raises "duplicate label keys rejected"
    (Invalid_argument "Registry: duplicate label key \"a\"") (fun () ->
      ignore (R.counter ~labels:[ ("a", "1"); ("a", "2") ] reg "y"))

let test_kind_clash_rejected () =
  let reg = R.create () in
  ignore (R.counter reg "m");
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Registry: \"m\" already registered as a counter") (fun () ->
      ignore (R.gauge reg "m"))

let test_histogram_empty () =
  let reg = R.create () in
  let h = R.histogram reg "lat" in
  Alcotest.(check int) "count" 0 (R.hist_count h);
  Alcotest.(check bool) "p50 nan" true (Float.is_nan (R.percentile h 50.));
  Alcotest.(check bool) "mean nan" true (Float.is_nan (R.hist_mean h));
  Alcotest.(check bool) "min nan" true (Float.is_nan (R.hist_min h));
  Alcotest.(check bool) "max nan" true (Float.is_nan (R.hist_max h))

let test_histogram_single_sample () =
  let reg = R.create () in
  let h = R.histogram reg "lat" in
  R.observe h 42.;
  Alcotest.(check int) "count" 1 (R.hist_count h);
  (* every percentile of a single sample is that sample *)
  List.iter
    (fun p -> Alcotest.(check (float 1e-9)) "percentile" 42. (R.percentile h p))
    [ 0.; 50.; 90.; 99.; 100. ];
  Alcotest.(check (float 1e-9)) "mean" 42. (R.hist_mean h);
  Alcotest.(check (float 1e-9)) "min" 42. (R.hist_min h);
  Alcotest.(check (float 1e-9)) "max" 42. (R.hist_max h)

let test_histogram_overflow_bucket () =
  let reg = R.create () in
  let h = R.histogram ~lo:0. ~hi:10. ~buckets:10 reg "lat" in
  R.observe h 5.;
  R.observe h (-1.);
  R.observe h 10.;
  R.observe h 1000.;
  Alcotest.(check int) "underflow" 1 (R.hist_underflow h);
  Alcotest.(check int) "overflow (>= hi)" 2 (R.hist_overflow h);
  Alcotest.(check int) "all observations counted" 4 (R.hist_count h);
  (* out-of-range samples still participate in percentiles *)
  Alcotest.(check (float 1e-9)) "p100 from overflow" 1000. (R.percentile h 100.);
  Alcotest.(check (float 1e-9)) "max" 1000. (R.hist_max h)

let test_percentiles_interpolate () =
  let reg = R.create () in
  let h = R.histogram ~lo:0. ~hi:200. ~buckets:20 reg "lat" in
  for i = 1 to 100 do
    R.observe h (float_of_int i)
  done;
  Alcotest.(check bool) "p50 near median" true
    (Float.abs (R.percentile h 50. -. 50.5) < 1.);
  Alcotest.(check bool) "p90 near 90" true (Float.abs (R.percentile h 90. -. 90.) < 1.5);
  Alcotest.(check bool) "p99 near 99" true (Float.abs (R.percentile h 99. -. 99.) < 1.5);
  Alcotest.(check bool) "order" true
    (R.percentile h 50. < R.percentile h 90. && R.percentile h 90. < R.percentile h 99.)

let test_clear_histogram () =
  let reg = R.create () in
  let h = R.histogram reg "lat" in
  R.observe h 1.;
  R.observe h 2.;
  R.clear_histogram h;
  Alcotest.(check int) "empty again" 0 (R.hist_count h);
  R.observe h 7.;
  Alcotest.(check (float 1e-9)) "fresh observations" 7. (R.percentile h 50.)

let test_merge () =
  let a = R.create ~labels:[ ("design", "syntax") ] () in
  let b = R.create ~labels:[ ("design", "location") ] () in
  R.incr ~by:3 (R.counter a "polls");
  R.incr ~by:4 (R.counter b "polls");
  R.incr ~by:2 (R.counter ~labels:[ ("design", "syntax") ] b "polls");
  R.set_gauge (R.gauge a "avail") 0.5;
  R.set_gauge (R.gauge b "avail") 0.9;
  let ha = R.histogram a "lat" and hb = R.histogram b "lat" in
  R.observe ha 1.;
  R.observe ha 2.;
  R.observe hb 3.;
  let m = R.merge a b in
  (* counters keyed by full labels: base labels fold in, colliding keys add *)
  Alcotest.(check int) "syntax polls added across operands" 5
    (R.get_counter ~labels:[ ("design", "syntax") ] m "polls");
  Alcotest.(check int) "location polls" 4
    (R.get_counter ~labels:[ ("design", "location") ] m "polls");
  (* gauges: right operand wins on collision — distinct labels here, so both survive *)
  Alcotest.(check (float 1e-9)) "gauge a" 0.5
    (R.get_gauge ~labels:[ ("design", "syntax") ] m "avail");
  Alcotest.(check (float 1e-9)) "gauge b" 0.9
    (R.get_gauge ~labels:[ ("design", "location") ] m "avail");
  let hm = R.histogram ~labels:[ ("design", "syntax") ] m "lat" in
  Alcotest.(check int) "histogram a carried over" 2 (R.hist_count hm);
  let hn = R.histogram ~labels:[ ("design", "location") ] m "lat" in
  Alcotest.(check (float 1e-9)) "histogram b carried over" 3. (R.percentile hn 50.)

let test_merge_same_labels_histograms () =
  let a = R.create () and b = R.create () in
  let ha = R.histogram a "lat" and hb = R.histogram b "lat" in
  List.iter (R.observe ha) [ 1.; 2.; 3. ];
  List.iter (R.observe hb) [ 4.; 5. ];
  let m = R.merge a b in
  let hm = R.histogram m "lat" in
  Alcotest.(check int) "counts add" 5 (R.hist_count hm);
  Alcotest.(check (float 1e-9)) "min" 1. (R.hist_min hm);
  Alcotest.(check (float 1e-9)) "max" 5. (R.hist_max hm)

let test_json_round_trip () =
  let reg = R.create ~labels:[ ("design", "syntax") ] () in
  R.incr ~by:7 (R.counter reg "polls");
  R.incr (R.counter ~labels:[ ("event", "gossip") ] reg "system_events");
  R.set_gauge (R.gauge reg "availability") 0.975;
  let h = R.histogram ~lo:0. ~hi:10. ~buckets:5 reg "lat" in
  List.iter (R.observe h) [ 1.; 2.; 3.; 4.; 15. ];
  let json = R.to_json reg in
  let round = J.of_string (J.to_string json) in
  Alcotest.(check bool) "compact round-trip" true (J.equal json round);
  let round2 = J.of_string (J.to_string ~indent:2 json) in
  Alcotest.(check bool) "indented round-trip" true (J.equal json round2);
  (* spot-check shape *)
  (match J.member "counters" json with
  | Some (J.List cs) -> Alcotest.(check int) "two counters" 2 (List.length cs)
  | _ -> Alcotest.fail "counters missing");
  match J.member "histograms" json with
  | Some (J.List [ J.Obj fields ]) ->
      Alcotest.(check bool) "has p99" true (List.mem_assoc "p99" fields);
      Alcotest.(check (float 1e-9)) "overflow recorded" 1.
        (match List.assoc "overflow" fields with J.Int n -> float_of_int n | _ -> nan)
  | _ -> Alcotest.fail "histograms missing"

let test_json_non_finite_and_escapes () =
  let json =
    J.Obj
      [
        ("nan", J.Float nan);
        ("inf", J.Float infinity);
        ("text", J.String "a\"b\\c\n\t\x01");
        ("neg", J.Int (-3));
        ("e", J.List []);
      ]
  in
  let s = J.to_string json in
  let round = J.of_string s in
  (* non-finite floats degrade to null — everything else survives *)
  Alcotest.(check bool) "nan -> null" true (J.member "nan" round = Some J.Null);
  Alcotest.(check bool) "inf -> null" true (J.member "inf" round = Some J.Null);
  Alcotest.(check bool) "escaped string" true
    (J.member "text" round = Some (J.String "a\"b\\c\n\t\x01"));
  Alcotest.(check bool) "negative int" true (J.member "neg" round = Some (J.Int (-3)))

let test_engine_probe () =
  let reg = R.create () in
  let engine = Dsim.Engine.create () in
  Telemetry.Probe.attach_engine reg engine;
  ignore (Dsim.Engine.schedule_after ~category:"tick" engine 1. (fun () -> ()));
  ignore (Dsim.Engine.schedule_after ~category:"tick" engine 2. (fun () -> ()));
  ignore (Dsim.Engine.schedule_after engine 3. (fun () -> ()));
  Dsim.Engine.run engine;
  (* Counters flow through the batched profile flush, not a per-event
     callback. *)
  Telemetry.Probe.sync_engine_profile reg engine;
  Alcotest.(check int) "tick events" 2
    (R.get_counter ~labels:[ ("category", "tick") ] reg "engine_events");
  Alcotest.(check int) "default category" 1
    (R.get_counter ~labels:[ ("category", "event") ] reg "engine_events");
  Alcotest.(check bool) "handler time gauge exists" true
    (R.get_gauge reg "engine_handler_seconds" >= 0.)

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "counter create/incr/lookup" `Quick test_counter_create_incr;
        Alcotest.test_case "labels distinguish and normalise" `Quick
          test_labels_distinguish_and_normalise;
        Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
        Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
        Alcotest.test_case "histogram: single sample" `Quick
          test_histogram_single_sample;
        Alcotest.test_case "histogram: under/overflow buckets" `Quick
          test_histogram_overflow_bucket;
        Alcotest.test_case "histogram: p50/p90/p99 interpolation" `Quick
          test_percentiles_interpolate;
        Alcotest.test_case "histogram: clear" `Quick test_clear_histogram;
        Alcotest.test_case "merge across base labels" `Quick test_merge;
        Alcotest.test_case "merge same-label histograms" `Quick
          test_merge_same_labels_histograms;
        Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
        Alcotest.test_case "JSON non-finite and escapes" `Quick
          test_json_non_finite_and_escapes;
        Alcotest.test_case "engine probe" `Quick test_engine_probe;
      ] );
  ]
