(* Fixture support: an abstract type, so fix_poly_bad can compare
   values whose representation is hidden — the case A4 must flag. *)

type t

val v : t
