(* Fixture: A2 metric-name failures.  [bump] is a local helper sink,
   so the undocumented literal below must be traced through it; the
   monitor-DSL literal references a metric nothing emits. *)

let reg = Telemetry.Registry.create ()

let bump name = Telemetry.Registry.incr (Telemetry.Registry.counter reg name)

let observed () = bump "undocumented_metric"

let dangling_rules = "watch=missing_metric>1"
