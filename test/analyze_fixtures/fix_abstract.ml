type t = int

let v = 0
