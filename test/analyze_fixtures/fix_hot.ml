(* Fixture: A1 hot-path-alloc — [churn] has exactly three allocation
   sites (the List.map call, its closure argument and the tuple the
   closure builds); [calm] has none.  test_analyze.ml declares both
   hot and checks the counts and the baseline ratchet against them. *)

let churn xs = List.map (fun x -> (x, x)) xs

let calm acc n = acc + n + 1
