(* Fixture: A2 metric-name passes — a direct literal, plus a promoted
   name list published through List.iter (the [core_counters] idiom in
   lib/mail/system.ml).  All three names are documented by the
   catalogue test_analyze.ml injects. *)

let reg = Telemetry.Registry.create ()

let direct () =
  Telemetry.Registry.incr (Telemetry.Registry.counter reg "documented_metric")

let promoted = [ "batch_metric_a"; "batch_metric_b" ]

let publish v =
  List.iter
    (fun k -> Telemetry.Registry.set_gauge (Telemetry.Registry.gauge reg k) v)
    promoted
