(* Fixture: A4 poly-compare passes — structural comparison at ground
   types, containers of ground types, and locally-declared records and
   variants is deterministic and must NOT be flagged. *)

type color = Red | Green | Blue of int

type point = { x : float; y : float; tag : string }

let ints_eq (a : int) b = a = b

let lists_cmp (a : int list) b = compare a b

let colors_lt (a : color) b = a < b

let points_eq (a : point) b = a = b

let pairs_cmp (a : (int * string) option) b = compare a b
