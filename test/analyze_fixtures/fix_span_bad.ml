(* Fixture: A3 span-drift failures — [rogue.span] is created but not
   in the injected stage tables, and this unit never calls Span.finish
   so the open span also leaks. *)

let tracer = Telemetry.Tracer.create ()

let start_at t =
  ignore (Telemetry.Tracer.span tracer ~name:"rogue.span" ~start:t ())
