(* Fixture: A4 poly-compare failures — polymorphic comparison at a
   function type, at an unresolved type variable, on lazy values and
   at an abstract type.  Each line below must be flagged. *)

let fn_eq (f : int -> int) (g : int -> int) = f = g

let any_eq a b = compare a b = 0

let lazy_cmp (a : int lazy_t) b = compare a b

let abstract_eq (a : Fix_abstract.t) b = a = b
