(* Fixture: A3 span-drift passes — a directly-closed span, a span
   emitted through a local helper sink (the [emit_span] idiom in
   lib/mail/pipeline.ml), and a literal that serves as weak evidence
   for a documented stage emitted through a data structure. *)

let tracer = Telemetry.Tracer.create ()

let mark t =
  ignore (Telemetry.Tracer.span tracer ~name:"closed.span" ~start:t ~finish:t ())

let emit t ~name =
  ignore (Telemetry.Tracer.span tracer ~name ~start:t ~finish:t ())

let staged t = emit t ~name:"helper.span"

let latent_evidence = "latent.span"
