(* Tests for the type-aware analyzer (bin/analyze) over the compiled
   fixture corpus in [analyze_fixtures/]: building that library is
   what produces the .cmt files fed to Analyze_core, so every rule is
   exercised on real typed ASTs.  Docs and baselines are injected
   through [~read_source], never read from disk. *)

let objs = Filename.concat "analyze_fixtures" ".analyze_fixtures.objs/byte"
let cmt name = Filename.concat objs ("analyze_fixtures__Fix_" ^ name ^ ".cmt")
let fixmod name = "Analyze_fixtures.Fix_" ^ name

(* A markdown table in the shape the analyzer parses from
   docs/METRICS.md and docs/TRACING.md. *)
let table names =
  "| name | axis | meaning |\n|---|---|---|\n"
  ^ String.concat ""
      (List.map (fun n -> Printf.sprintf "| `%s` | — | fixture |\n" n) names)

let run ?(hot = []) ?(baseline = "") ?(metrics = []) ?(spans = []) cmts =
  let read_source f =
    if String.equal f "baseline.json" && baseline <> "" then Some baseline
    else if String.equal f "METRICS.md" then Some (table metrics)
    else if String.equal f "TRACING.md" then Some (table spans)
    else None
  in
  Analyze_core.analyze_tree ~hot_set:hot ~baseline_file:"baseline.json"
    ~read_source ~metrics_doc:("METRICS.md", []) ~tracing_doc:("TRACING.md", [])
    cmts

let findings analysis =
  List.map
    (fun v -> (v.Lint_core.line, v.Lint_core.rule))
    analysis.Analyze_core.an_findings

let messages analysis =
  List.map (fun v -> v.Lint_core.message) analysis.Analyze_core.an_findings

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_rules msg expected analysis =
  Alcotest.(check (list (pair int string))) msg expected (findings analysis)

(* --- A1: hot-path allocation counting and the ratchet ------------------- *)

let hot_fixture = [ (fixmod "hot", [ "churn"; "calm" ]) ]

let baseline_json entries =
  Telemetry.Json.to_string (Analyze_core.baseline_to_json entries)

let churn = fixmod "hot" ^ ".churn"
let calm = fixmod "hot" ^ ".calm"

let test_a1_counts () =
  let analysis =
    run ~hot:hot_fixture
      ~baseline:(baseline_json [ (churn, 3); (calm, 0) ])
      [ cmt "hot" ]
  in
  check_rules "counts match the baseline: clean" [] analysis;
  let hot_fns =
    List.concat_map (fun f -> f.Analyze_core.f_hot) analysis.Analyze_core.an_facts
  in
  let sites name =
    match
      List.find_opt (fun h -> String.equal h.Analyze_core.hf_name name) hot_fns
    with
    | Some h ->
        List.map (fun s -> s.Analyze_core.al_kind) h.Analyze_core.hf_sites
        |> List.sort String.compare
    | None -> Alcotest.failf "hot function %s not reported" name
  in
  Alcotest.(check (list string))
    "churn: List.map call + closure + tuple"
    [ "alloc-call"; "closure"; "tuple" ]
    (sites churn);
  Alcotest.(check (list string)) "calm: allocation-free" [] (sites calm)

let test_a1_ratchet_red () =
  let analysis =
    run ~hot:hot_fixture
      ~baseline:(baseline_json [ (churn, 2); (calm, 0) ])
      [ cmt "hot" ]
  in
  check_rules "count above baseline fails"
    [ (6, "hot-path-alloc") ]
    analysis;
  Alcotest.(check bool)
    "message states count and baseline" true
    (contains (List.hd (messages analysis)) "3 allocation site(s), baseline is 2")

let test_a1_missing_entry () =
  let analysis =
    run ~hot:hot_fixture ~baseline:(baseline_json [ (calm, 0) ]) [ cmt "hot" ]
  in
  check_rules "function without a baseline entry fails"
    [ (6, "hot-path-alloc") ]
    analysis;
  Alcotest.(check bool)
    "message asks for a baseline" true
    (contains (List.hd (messages analysis)) "no baseline entry")

let test_a1_stale_entry () =
  let analysis =
    run ~hot:hot_fixture
      ~baseline:
        (baseline_json [ (churn, 3); (calm, 0); (fixmod "hot" ^ ".gone", 1) ])
      [ cmt "hot" ]
  in
  check_rules "baseline entry without a function fails"
    [ (1, "hot-path-alloc") ]
    analysis;
  Alcotest.(check bool)
    "message points at the stale entry" true
    (contains (List.hd (messages analysis)) "matches no function")

let test_a1_improvement () =
  let analysis =
    run ~hot:hot_fixture
      ~baseline:(baseline_json [ (churn, 5); (calm, 0) ])
      [ cmt "hot" ]
  in
  check_rules "dropping below baseline is not a failure" [] analysis;
  Alcotest.(check (list (triple string int int)))
    "the improvement is reported for re-ratcheting"
    [ (churn, 3, 5) ]
    analysis.Analyze_core.an_improvements

let test_a1_declared_missing () =
  let analysis =
    run
      ~hot:[ (fixmod "hot", [ "churn"; "calm"; "ghost" ]) ]
      ~baseline:(baseline_json [ (churn, 3); (calm, 0) ])
      [ cmt "hot" ]
  in
  check_rules "declared hot function absent from the module fails"
    [ (1, "hot-path-alloc") ]
    analysis;
  Alcotest.(check bool)
    "message names the missing declaration" true
    (contains (List.hd (messages analysis)) "ghost not found")

(* --- A2: metric-name consistency ----------------------------------------- *)

let test_a2_bad () =
  let analysis =
    run ~metrics:[ "ghost_metric" ] [ cmt "metric_bad" ]
  in
  (* one emitted-but-undocumented (through the local helper sink), one
     documented-but-unemitted, one dangling monitor rule *)
  check_rules "all three drift directions are found"
    [ (3, "metric-name"); (9, "metric-name"); (11, "metric-name") ]
    analysis;
  let msgs = String.concat "\n" (messages analysis) in
  Alcotest.(check bool) "undocumented emission" true
    (contains msgs "\"undocumented_metric\" is emitted but undocumented");
  Alcotest.(check bool) "stale catalogue entry" true
    (contains msgs "\"ghost_metric\" has no emitter");
  Alcotest.(check bool) "dangling monitor rule" true
    (contains msgs "references metric \"missing_metric\"")

let test_a2_ok () =
  check_rules "helper-sink and promoted-list emissions match the catalogue" []
    (run
       ~metrics:[ "documented_metric"; "batch_metric_a"; "batch_metric_b" ]
       [ cmt "metric_ok" ])

(* --- A3: span/stage drift ------------------------------------------------ *)

let test_a3_bad () =
  let analysis = run ~spans:[ "documented.span" ] [ cmt "span_bad" ] in
  (* the stale stage table entry (line 3 of the injected doc), the
     undocumented creation and the unpaired open span *)
  check_rules "undocumented, stale and leaking spans are all found"
    [ (3, "span-drift"); (8, "span-drift"); (8, "span-drift") ]
    analysis;
  let msgs = String.concat "\n" (messages analysis) in
  Alcotest.(check bool) "undocumented span" true
    (contains msgs "\"rogue.span\" is created here but missing");
  Alcotest.(check bool) "stale stage entry" true
    (contains msgs "\"documented.span\" is never created");
  Alcotest.(check bool) "unpaired open span" true
    (contains msgs "never calls Span.finish")

let test_a3_ok () =
  (* closed.span directly, helper.span through the sink, latent.span by
     literal evidence only *)
  check_rules "closed, sink-emitted and literal-evidenced spans pass" []
    (run
       ~spans:[ "closed.span"; "helper.span"; "latent.span" ]
       [ cmt "span_ok" ])

(* --- A4: typed polymorphic comparison ------------------------------------ *)

let test_a4_bad () =
  let analysis = run [ cmt "poly_bad" ] in
  check_rules
    "function, tyvar, lazy and abstract comparisons are all flagged"
    [ (5, "poly-compare"); (7, "poly-compare"); (9, "poly-compare");
      (11, "poly-compare") ]
    analysis;
  let msgs = String.concat "\n" (messages analysis) in
  Alcotest.(check bool) "abstract type named in the finding" true
    (contains msgs "Fix_abstract.t is abstract")

let test_a4_ok () =
  check_rules
    "ground types, containers, records and variants are not flagged" []
    (run [ cmt "poly_ok" ])

(* --- shared suppression machinery ---------------------------------------- *)

let test_suppression_filter () =
  let read_source _ =
    Some "let x = 1 (* lint: allow metric-name — covered by fixture *)\n"
  in
  let viol rule =
    { Lint_core.file = "x.ml"; line = 1; rule; message = "m" }
  in
  let kept =
    Analyze_core.filter_suppressed ~read_source
      [ viol "metric-name"; viol "span-drift" ]
  in
  Alcotest.(check (list string))
    "only the matching rule is suppressed" [ "span-drift" ]
    (List.map (fun v -> v.Lint_core.rule) kept)

(* --- report and baseline serialisation ----------------------------------- *)

let test_report_schema () =
  let analysis =
    run ~hot:hot_fixture
      ~baseline:(baseline_json [ (churn, 3); (calm, 0) ])
      [ cmt "hot" ]
  in
  let json =
    Analyze_core.report_to_json ~baseline:analysis.Analyze_core.an_baseline
      ~findings:analysis.Analyze_core.an_findings
      ~facts_list:analysis.Analyze_core.an_facts
  in
  (match Telemetry.Json.member "schema" json with
  | Some (Telemetry.Json.String s) ->
      Alcotest.(check string) "schema tag" "mailsys.analysis/1" s
  | _ -> Alcotest.fail "ANALYSIS.json has no schema tag");
  match Telemetry.Json.member "hot" json with
  | Some (Telemetry.Json.List hot) ->
      Alcotest.(check int) "one entry per hot function" 2 (List.length hot)
  | _ -> Alcotest.fail "ANALYSIS.json has no hot section"

let test_baseline_roundtrip () =
  let entries = [ (calm, 0); (churn, 3) ] in
  let json = Telemetry.Json.of_string (baseline_json entries) in
  (match Telemetry.Json.member "schema" json with
  | Some (Telemetry.Json.String s) ->
      Alcotest.(check string) "baseline schema tag" "mailsys.analysis-baseline/1" s
  | _ -> Alcotest.fail "baseline has no schema tag");
  Alcotest.(check (list (pair string int)))
    "entries survive the roundtrip, sorted" entries
    (Analyze_core.baseline_of_json json)

(* --- doc-table parsing ---------------------------------------------------- *)

let test_doc_parsing () =
  let md =
    "# t\n\
     | name | axis |\n\
     |---|---|\n\
     | `plain_metric` | x |\n\
     | `labelled{rule=\"r\"}` | x |\n\
     | not_backticked | x |\n\
     Also **`bold_metric{event=\"e\"}`** in prose.\n"
  in
  Alcotest.(check (list (pair string int)))
    "first-cell backticks and bold entries, labels stripped"
    [ ("plain_metric", 4); ("labelled", 5); ("bold_metric", 7) ]
    (Analyze_core.doc_metric_names md);
  Alcotest.(check (list (pair string int)))
    "span names keep dotted shape"
    [ ("forward.hop", 2) ]
    (Analyze_core.doc_span_names "\n| `forward.hop` | x |\n")

let suite =
  [
    ( "analyze",
      [
        Alcotest.test_case "A1: allocation sites counted" `Quick test_a1_counts;
        Alcotest.test_case "A1: ratchet fails above baseline" `Quick
          test_a1_ratchet_red;
        Alcotest.test_case "A1: missing baseline entry fails" `Quick
          test_a1_missing_entry;
        Alcotest.test_case "A1: stale baseline entry fails" `Quick
          test_a1_stale_entry;
        Alcotest.test_case "A1: improvement reported, not failed" `Quick
          test_a1_improvement;
        Alcotest.test_case "A1: declared hot function must exist" `Quick
          test_a1_declared_missing;
        Alcotest.test_case "A2: drift in all three directions" `Quick
          test_a2_bad;
        Alcotest.test_case "A2: sinks and promoted lists pass" `Quick
          test_a2_ok;
        Alcotest.test_case "A3: undocumented, stale, leaking spans" `Quick
          test_a3_bad;
        Alcotest.test_case "A3: closed and sink-emitted spans pass" `Quick
          test_a3_ok;
        Alcotest.test_case "A4: unsafe comparisons flagged" `Quick test_a4_bad;
        Alcotest.test_case "A4: safe comparisons pass" `Quick test_a4_ok;
        Alcotest.test_case "suppressions shared with the linter" `Quick
          test_suppression_filter;
        Alcotest.test_case "ANALYSIS.json schema and shape" `Quick
          test_report_schema;
        Alcotest.test_case "baseline JSON roundtrip" `Quick
          test_baseline_roundtrip;
        Alcotest.test_case "doc-table name extraction" `Quick test_doc_parsing;
      ] );
  ]
