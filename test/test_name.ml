(* Tests for hierarchical names and syntax patterns. *)

let name = Alcotest.testable Naming.Name.pp Naming.Name.equal

let test_make_and_accessors () =
  let n = Naming.Name.make ~region:"east" ~host:"vax1" ~user:"alice" in
  Alcotest.(check string) "region" "east" (Naming.Name.region n);
  Alcotest.(check string) "host" "vax1" (Naming.Name.host n);
  Alcotest.(check string) "user" "alice" (Naming.Name.user n);
  Alcotest.(check string) "to_string" "east.vax1.alice" (Naming.Name.to_string n)

let test_parse_ok () =
  match Naming.Name.of_string "west.pdp10.bob" with
  | Ok n ->
      Alcotest.check name "parsed"
        (Naming.Name.make ~region:"west" ~host:"pdp10" ~user:"bob")
        n
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  let bad = [ ""; "a.b"; "a.b.c.d"; "a..c"; "a.b!c.d"; ".b.c"; "a b.c.d" ] in
  List.iter
    (fun s ->
      match Naming.Name.of_string s with
      | Ok _ -> Alcotest.failf "accepted bad name %S" s
      | Error _ -> ())
    bad

let test_make_invalid () =
  try
    ignore (Naming.Name.make ~region:"" ~host:"h" ~user:"u");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_valid_token () =
  Alcotest.(check bool) "alnum" true (Naming.Name.valid_token "abc-12_Z");
  Alcotest.(check bool) "empty" false (Naming.Name.valid_token "");
  Alcotest.(check bool) "dot" false (Naming.Name.valid_token "a.b");
  Alcotest.(check bool) "space" false (Naming.Name.valid_token "a b")

let test_migration_helpers () =
  let n = Naming.Name.make ~region:"east" ~host:"vax1" ~user:"alice" in
  let moved = Naming.Name.with_host n "vax9" in
  Alcotest.(check string) "host changed" "vax9" (Naming.Name.host moved);
  Alcotest.(check string) "region kept" "east" (Naming.Name.region moved);
  let far = Naming.Name.with_region n ~region:"west" ~host:"sun3" in
  Alcotest.(check string) "region changed" "west" (Naming.Name.region far);
  Alcotest.(check string) "user stable" "alice" (Naming.Name.user far)

let test_compare_total_order () =
  let a = Naming.Name.make ~region:"a" ~host:"h" ~user:"u" in
  let b = Naming.Name.make ~region:"b" ~host:"a" ~user:"a" in
  let c = Naming.Name.make ~region:"a" ~host:"h" ~user:"v" in
  Alcotest.(check bool) "region dominates" true (Naming.Name.compare a b < 0);
  Alcotest.(check bool) "user breaks ties" true (Naming.Name.compare a c < 0);
  Alcotest.(check int) "reflexive" 0 (Naming.Name.compare a a)

let test_patterns () =
  let n = Naming.Name.make ~region:"east" ~host:"vax1" ~user:"alice" in
  let check_match p expected =
    let pat = Naming.Name.Pattern.of_string_exn p in
    Alcotest.(check bool) p expected (Naming.Name.Pattern.matches pat n)
  in
  check_match "east.vax1.alice" true;
  check_match "east.*.*" true;
  check_match "*.*.alice" true;
  check_match "*.*.*" true;
  check_match "west.*.*" false;
  check_match "east.vax2.*" false;
  Alcotest.(check string) "roundtrip" "east.*.alice"
    (Naming.Name.Pattern.to_string (Naming.Name.Pattern.of_string_exn "east.*.alice"));
  match Naming.Name.Pattern.of_string "only.two" with
  | Ok _ -> Alcotest.fail "accepted malformed pattern"
  | Error _ -> ()

let token_gen =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 8)
         (oneof [ char_range 'a' 'z'; char_range '0' '9'; return '-'; return '_' ])))

let name_gen =
  QCheck.Gen.(
    map
      (fun (r, h, u) -> Naming.Name.make ~region:r ~host:h ~user:u)
      (triple token_gen token_gen token_gen))

let arbitrary_name = QCheck.make ~print:Naming.Name.to_string name_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"of_string (to_string n) = n" ~count:500 arbitrary_name
    (fun n -> Naming.Name.of_string_exn (Naming.Name.to_string n) = n)

let prop_hash_consistent_with_equal =
  QCheck.Test.make ~name:"equal names hash identically" ~count:200 arbitrary_name
    (fun n ->
      let copy = Naming.Name.of_string_exn (Naming.Name.to_string n) in
      Naming.Name.hash n = Naming.Name.hash copy)

(* Interning round trip: an interned id recovers a Name.t whose string
   form is byte-identical to the original, and re-interning the
   recovered name yields the same id (idempotence). *)
let prop_intern_roundtrip =
  QCheck.Test.make ~name:"intern id -> name -> string roundtrip" ~count:500
    (QCheck.make
       ~print:(fun ns -> String.concat ", " (List.map Naming.Name.to_string ns))
       QCheck.Gen.(list_size (int_range 1 40) name_gen))
    (fun names ->
      let intern = Naming.Intern.create () in
      let ids = List.map (Naming.Intern.intern intern) names in
      List.for_all2
        (fun n id ->
          let back = Naming.Intern.name intern id in
          String.equal (Naming.Name.to_string back) (Naming.Name.to_string n)
          && Naming.Intern.intern intern back = id
          && Naming.Intern.find_opt intern n = Some id)
        names ids)

let prop_intern_dense_ids =
  QCheck.Test.make ~name:"intern ids are dense in first-seen order" ~count:200
    (QCheck.make
       ~print:(fun ns -> String.concat ", " (List.map Naming.Name.to_string ns))
       QCheck.Gen.(list_size (int_range 1 40) name_gen))
    (fun names ->
      let intern = Naming.Intern.create () in
      ignore (List.map (Naming.Intern.intern intern) names);
      let distinct =
        List.sort_uniq Naming.Name.compare names |> List.length
      in
      Naming.Intern.count intern = distinct
      && List.for_all
           (fun n ->
             match Naming.Intern.find_opt intern n with
             | Some id -> id >= 0 && id < distinct
             | None -> false)
           names)

let suite =
  [
    ( "name",
      [
        Alcotest.test_case "make and accessors" `Quick test_make_and_accessors;
        Alcotest.test_case "parse ok" `Quick test_parse_ok;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "make invalid" `Quick test_make_invalid;
        Alcotest.test_case "valid_token" `Quick test_valid_token;
        Alcotest.test_case "migration helpers" `Quick test_migration_helpers;
        Alcotest.test_case "compare total order" `Quick test_compare_total_order;
        Alcotest.test_case "syntax patterns" `Quick test_patterns;
        QCheck_alcotest.to_alcotest prop_roundtrip;
        QCheck_alcotest.to_alcotest prop_hash_consistent_with_equal;
        QCheck_alcotest.to_alcotest prop_intern_roundtrip;
        QCheck_alcotest.to_alcotest prop_intern_dense_ids;
      ] );
  ]
