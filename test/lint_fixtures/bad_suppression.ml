(* Fixture: bad-suppression — a reason-less allow and an unknown rule
   are themselves findings. *)

(* lint: allow wall-clock *)
let elapsed () = Sys.time ()

(* lint: allow warp-core — not a rule this linter knows *)
let nothing = ()
