(* Fixture: R2 poly-compare — Hashtbl.hash is flagged syntactically.
   Bare [compare] is the type-directed analyzer's job (A4), so the
   sort below must NOT be flagged by the linter. *)

let sorted xs = List.sort compare xs

let bucket x = Hashtbl.hash x mod 16
