(* Fixture: R2 poly-compare — bare polymorphic compare and
   Hashtbl.hash. *)

let sorted xs = List.sort compare xs

let bucket x = Hashtbl.hash x mod 16
