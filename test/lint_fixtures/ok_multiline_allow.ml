(* Fixture: suppression — an allow annotation inside a multi-line
   comment block suppresses the construct on the line after the block,
   even when the justification wraps. *)

(* lint: allow wall-clock — this justification continues onto a second
   line, and the annotated construct sits below the whole block *)
let elapsed () = Sys.time ()

(* lint: allow wall-clock
   — the reason dash may even start the continuation line *)
let stamp () = Unix.gettimeofday ()
