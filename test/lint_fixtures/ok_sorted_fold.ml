(* Fixture: R1 pass — the same fold, but the binding sorts the result
   with a typed comparator before it escapes. *)

let keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare

(* Folds that merely aggregate (no cons in the callback) are order-safe
   and must not be flagged. *)
let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
