(* Fixture: suppression — an audited allow comment on the preceding or
   same line silences the finding. *)

(* lint: allow wall-clock — fixture exercising the suppression path *)
let elapsed () = Sys.time ()

let stamp () = Unix.gettimeofday () (* lint: allow wall-clock — same-line form *)

(* Seeded explicit state is fine without any suppression. *)
let draw st = Random.State.float st 1.0
