(* lint: allow missing-mli — fixture file; R4 is what is under test *)
(* Fixture: R4 stdout — ambient output channels from library code. *)

let shout () = print_endline "loud"

let format_shout n = Printf.printf "%d\n" n

let bail () = exit 1
