(* Fixture: R5 missing-mli — a library module without an .mli. *)

let triple x = 3 * x
