(* Fixture: R5 pass — a library module with a matching .mli. *)

let double x = 2 * x
