(** Fixture interface for {!With_interface}. *)

val double : int -> int
