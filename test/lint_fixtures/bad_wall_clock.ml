(* Fixture: R3 wall-clock — ambient time and global entropy. *)

let elapsed () = Sys.time ()

let stamp () = Unix.gettimeofday ()

let jitter () = Random.float 1.0
