(* Fixture: R2 pass — typed comparators, and a module that defines its
   own [compare] may use it bare. *)

let sorted xs = List.sort Int.compare xs

let compare (a1, b1) (a2, b2) =
  match String.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let max_pair x y = if compare x y >= 0 then x else y
