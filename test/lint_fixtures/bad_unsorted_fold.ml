(* Fixture: R1 unsorted-fold — the fold conses a list that escapes the
   binding without a sort, so Hashtbl iteration order leaks. *)

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
