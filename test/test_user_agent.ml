(* Direct tests of the GetMail algorithm (§3.1.2c) against scripted
   server behaviour — liveness, LastStartTime and mailbox contents are
   driven by hand so every branch of the paper's pseudocode is
   exercised. *)

let nm u = Naming.Name.make ~region:"east" ~host:"h1" ~user:u

let msg id =
  Mail.Message.create ~id ~sender:(nm "alice") ~recipient:(nm "bob") ~submitted_at:0. ()

(* A scripted world of three servers, ids 0 1 2. *)
type world = {
  alive : bool array;
  started : float array;
  boxes : Mail.Message.t list array;  (* pending mail per server *)
  mutable fetches : (int * float) list;  (* (server, time) log *)
}

let world () =
  { alive = [| true; true; true |]; started = [| 0.; 0.; 0. |]; boxes = [| []; []; [] |]; fetches = [] }

let view w =
  {
    Mail.User_agent.is_alive = (fun s -> w.alive.(s));
    last_start = (fun s -> w.started.(s));
    fetch =
      (fun s ~uid:_ _name ~at ->
        w.fetches <- (s, at) :: w.fetches;
        let mail = w.boxes.(s) in
        w.boxes.(s) <- [];
        mail);
  }

let agent () =
  Mail.User_agent.create ~name:(nm "bob") ~host:7 ~authority:[ 0; 1; 2 ] ()

let test_create_validation () =
  try
    ignore (Mail.User_agent.create ~name:(nm "x") ~host:0 ~authority:[] ());
    Alcotest.fail "empty authority accepted"
  with Invalid_argument _ -> ()

let test_first_check_polls_all () =
  (* LastCheckingTime = 0 is not > LastStartTime = 0, so the very
     first check must scan the whole list. *)
  let w = world () in
  let a = agent () in
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:10. in
  Alcotest.(check int) "polls" 3 st.Mail.User_agent.polls;
  Alcotest.(check int) "failed" 0 st.Mail.User_agent.failed_polls

let test_steady_state_single_poll () =
  (* After the first check, a stable primary means exactly one poll —
     the paper's "approximately one under normal conditions". *)
  let w = world () in
  let a = agent () in
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:10.);
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:20. in
  Alcotest.(check int) "single poll" 1 st.Mail.User_agent.polls

let test_retrieves_mail () =
  let w = world () in
  let a = agent () in
  w.boxes.(0) <- [ msg 1; msg 2 ];
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:10. in
  Alcotest.(check int) "retrieved" 2 st.Mail.User_agent.retrieved;
  Alcotest.(check int) "inbox" 2 (Mail.User_agent.inbox_size a)

let test_failed_primary_goes_to_secondary () =
  let w = world () in
  let a = agent () in
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:10.);
  w.alive.(0) <- false;
  w.boxes.(1) <- [ msg 1 ];
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:20. in
  Alcotest.(check int) "polls" 2 st.Mail.User_agent.polls;
  Alcotest.(check int) "failed" 1 st.Mail.User_agent.failed_polls;
  Alcotest.(check int) "mail found on secondary" 1 st.Mail.User_agent.retrieved;
  Alcotest.(check (list int)) "primary remembered as unavailable" [ 0 ]
    (Mail.User_agent.previously_unavailable a)

let test_recovered_server_drained () =
  (* The losslessness mechanism: mail deposited on the secondary while
     the primary was down, and mail stuck on the primary from before
     its crash, are both recovered. *)
  let w = world () in
  let a = agent () in
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:10.);
  (* primary crashes holding old mail *)
  w.alive.(0) <- false;
  w.boxes.(0) <- [ msg 1 ];
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:20.);
  Alcotest.(check int) "nothing yet" 0 (Mail.User_agent.inbox_size a);
  (* primary recovers; LastStartTime moves. *)
  w.alive.(0) <- true;
  w.started.(0) <- 25.;
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:30. in
  Alcotest.(check int) "old mail recovered" 1 st.Mail.User_agent.retrieved;
  Alcotest.(check (list int)) "PUS cleared" []
    (Mail.User_agent.previously_unavailable a)

let test_recovery_forces_deeper_scan () =
  (* When the primary restarted after our last check, mail may sit on
     later servers: the scan must continue past the primary. *)
  let w = world () in
  let a = agent () in
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:10.);
  (* primary silently crashed and recovered between checks; during the
     outage a message was deposited on server 1. *)
  w.started.(0) <- 15.;
  w.boxes.(1) <- [ msg 9 ];
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:20. in
  Alcotest.(check bool) "scanned beyond primary" true (st.Mail.User_agent.polls >= 2);
  Alcotest.(check int) "found the stranded mail" 1 st.Mail.User_agent.retrieved

let test_stable_primary_stops_scan () =
  (* Primary up since before LastCheckingTime: the scan must stop at
     one poll even if later servers are dead. *)
  let w = world () in
  let a = agent () in
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:10.);
  w.alive.(1) <- false;
  w.alive.(2) <- false;
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:20. in
  Alcotest.(check int) "one poll despite dead secondaries" 1 st.Mail.User_agent.polls;
  Alcotest.(check int) "no failed polls" 0 st.Mail.User_agent.failed_polls

let test_all_servers_down () =
  let w = world () in
  let a = agent () in
  w.alive.(0) <- false;
  w.alive.(1) <- false;
  w.alive.(2) <- false;
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:10. in
  Alcotest.(check int) "three failed polls" 3 st.Mail.User_agent.failed_polls;
  Alcotest.(check int) "nothing retrieved" 0 st.Mail.User_agent.retrieved;
  Alcotest.(check (list int)) "all remembered" [ 0; 1; 2 ]
    (Mail.User_agent.previously_unavailable a)

let test_duplicate_suppression () =
  (* The same message offered twice (at-least-once delivery) must be
     kept once. *)
  let w = world () in
  let a = agent () in
  let m = msg 7 in
  w.boxes.(0) <- [ m ];
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:10.);
  w.boxes.(1) <- [ m ];
  w.started.(0) <- 15.;
  (* force deep scan *)
  let st = Mail.User_agent.get_mail a ~view:(view w) ~now:20. in
  Alcotest.(check int) "duplicate dropped" 0 st.Mail.User_agent.retrieved;
  Alcotest.(check int) "inbox has one copy" 1 (Mail.User_agent.inbox_size a)

let test_poll_all_baseline () =
  let w = world () in
  let a = agent () in
  ignore (Mail.User_agent.poll_all a ~view:(view w) ~now:10.);
  let st = Mail.User_agent.poll_all a ~view:(view w) ~now:20. in
  Alcotest.(check int) "always all servers" 3 st.Mail.User_agent.polls

let test_naive_misses_stranded_mail () =
  let w = world () in
  let a = agent () in
  ignore (Mail.User_agent.naive_check a ~view:(view w) ~now:10.);
  (* outage: mail lands on secondary; then primary recovers *)
  w.alive.(0) <- false;
  w.boxes.(1) <- [ msg 1 ];
  ignore (Mail.User_agent.naive_check a ~view:(view w) ~now:20.);
  Alcotest.(check int) "naive found it while primary down" 1
    (Mail.User_agent.inbox_size a);
  (* but mail left on a secondary while primary is back is missed *)
  w.alive.(0) <- true;
  w.boxes.(2) <- [ msg 2 ];
  let st = Mail.User_agent.naive_check a ~view:(view w) ~now:30. in
  Alcotest.(check int) "missed" 0 st.Mail.User_agent.retrieved;
  (* GetMail on the same state would have drained it eventually; the
     contrast is asserted in the scenario tests. *)
  Alcotest.(check int) "stranded mail remains" 1 (List.length w.boxes.(2))

let test_setters () =
  let a = agent () in
  Mail.User_agent.set_host a 42;
  Alcotest.(check int) "host" 42 (Mail.User_agent.host a);
  Mail.User_agent.set_authority a [ 2; 1 ];
  Alcotest.(check (list int)) "authority" [ 2; 1 ] (Mail.User_agent.authority a);
  try
    Mail.User_agent.set_authority a [];
    Alcotest.fail "empty authority accepted"
  with Invalid_argument _ -> ()

let test_inbox_order () =
  let w = world () in
  let a = agent () in
  w.boxes.(0) <- [ msg 1; msg 2 ];
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:10.);
  w.boxes.(0) <- [ msg 3 ];
  ignore (Mail.User_agent.get_mail a ~view:(view w) ~now:20.);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ]
    (List.map (fun m -> m.Mail.Message.id) (Mail.User_agent.inbox a))

let suite =
  [
    ( "user_agent",
      [
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "first check polls all" `Quick test_first_check_polls_all;
        Alcotest.test_case "steady state: one poll" `Quick test_steady_state_single_poll;
        Alcotest.test_case "retrieves mail" `Quick test_retrieves_mail;
        Alcotest.test_case "failover to secondary" `Quick
          test_failed_primary_goes_to_secondary;
        Alcotest.test_case "recovered server drained" `Quick
          test_recovered_server_drained;
        Alcotest.test_case "recovery forces deeper scan" `Quick
          test_recovery_forces_deeper_scan;
        Alcotest.test_case "stable primary stops scan" `Quick
          test_stable_primary_stops_scan;
        Alcotest.test_case "all servers down" `Quick test_all_servers_down;
        Alcotest.test_case "duplicate suppression" `Quick test_duplicate_suppression;
        Alcotest.test_case "poll_all baseline" `Quick test_poll_all_baseline;
        Alcotest.test_case "naive misses stranded mail" `Quick
          test_naive_misses_stranded_mail;
        Alcotest.test_case "setters" `Quick test_setters;
        Alcotest.test_case "inbox order" `Quick test_inbox_order;
      ] );
  ]
