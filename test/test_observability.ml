(* Observability layer: snapshot iteration, span-loss accounting, the
   recurring engine event, windowed timeseries, monitor rules (DSL,
   thresholds, absence, SLO burn) and their scenario wiring. *)

module R = Telemetry.Registry
module Ts = Telemetry.Timeseries
module M = Telemetry.Monitor

(* --- Registry.iter_sorted ----------------------------------------------- *)

let test_iter_sorted_order_and_volatile () =
  let reg = R.create () in
  R.incr ~by:3 (R.counter reg "zeta");
  R.set_gauge (R.gauge reg "alpha") 1.5;
  R.observe (R.histogram ~lo:0. ~hi:10. ~buckets:5 reg "mid") 4.;
  R.set_gauge (R.gauge reg "wall_seconds") 123.;
  R.mark_volatile reg "wall_seconds";
  let seen = ref [] in
  R.iter_sorted (fun name _ _ -> seen := name :: !seen) reg;
  Alcotest.(check (list string))
    "sorted, volatile excluded"
    [ "alpha"; "mid"; "zeta" ] (List.rev !seen);
  let kinds = ref [] in
  R.iter_sorted ~include_volatile:true
    (fun name _ v ->
      let k =
        match v with
        | R.Counter_value c -> Printf.sprintf "%s=C%d" name c
        | R.Gauge_value g -> Printf.sprintf "%s=G%g" name g
        | R.Histogram_value h -> Printf.sprintf "%s=H%d" name (R.hist_count h)
      in
      kinds := k :: !kinds)
    reg;
  Alcotest.(check (list string))
    "typed values, volatile included"
    [ "alpha=G1.5"; "mid=H1"; "wall_seconds=G123"; "zeta=C3" ]
    (List.rev !kinds)

(* --- Tracer.dropped ------------------------------------------------------ *)

let test_tracer_overflow_counts_drops () =
  let tracer = Telemetry.Tracer.create ~capacity:4 () in
  for i = 0 to 9 do
    ignore
      (Telemetry.Tracer.span tracer ~name:"s"
         ~start:(float_of_int i)
         ~finish:(float_of_int i +. 1.)
         ())
  done;
  Alcotest.(check int) "total counts everything" 10
    (Telemetry.Tracer.total tracer);
  Alcotest.(check int) "four retained" 4
    (List.length (Telemetry.Tracer.spans tracer));
  Alcotest.(check int) "dropped = total - retained" 6
    (Telemetry.Tracer.dropped tracer);
  let t2 = Telemetry.Tracer.create ~capacity:4 () in
  ignore (Telemetry.Tracer.span t2 ~name:"only" ~start:0. ());
  Alcotest.(check int) "no overflow, no drops" 0 (Telemetry.Tracer.dropped t2)

(* --- Engine.every -------------------------------------------------------- *)

let test_engine_every () =
  let e = Dsim.Engine.create () in
  let fired = ref [] in
  Dsim.Engine.every e ~period:10. ~until:35. (fun () ->
      fired := Dsim.Engine.now e :: !fired);
  Dsim.Engine.run e;
  Alcotest.(check (list (float 1e-9)))
    "fires at period multiples up to until" [ 10.; 20.; 30. ]
    (List.rev !fired);
  (* inclusive bound: a firing landing exactly on [until] runs *)
  let e2 = Dsim.Engine.create () in
  let n = ref 0 in
  Dsim.Engine.every e2 ~period:10. ~until:30. (fun () -> incr n);
  Dsim.Engine.run e2;
  Alcotest.(check int) "until inclusive" 3 !n;
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Engine.every: period must be positive") (fun () ->
      Dsim.Engine.every e2 ~period:0. ~until:10. (fun () -> ()))

(* --- Timeseries ---------------------------------------------------------- *)

let test_timeseries_delta_encoding () =
  let reg = R.create () in
  let c = R.counter reg "events" in
  let g = R.gauge reg "depth" in
  R.incr ~by:5 c;
  R.set_gauge g 2.;
  let ts = Ts.create ~resolution:50. () in
  let w0 = Ts.sample ts ~at:50. reg in
  Alcotest.(check int) "baseline carries every metric" 2
    (List.length w0.Ts.samples);
  (* only the counter moves *)
  R.incr ~by:3 c;
  let w1 = Ts.sample ts ~at:100. reg in
  (match w1.Ts.samples with
  | [ { Ts.name = "events"; point = Ts.Counter { value; delta }; _ } ] ->
      Alcotest.(check int) "cumulative value" 8 value;
      Alcotest.(check int) "window delta" 3 delta
  | _ -> Alcotest.fail "expected exactly the changed counter");
  (* nothing moves: empty window *)
  let w2 = Ts.sample ts ~at:150. reg in
  Alcotest.(check int) "quiet window is empty" 0 (List.length w2.Ts.samples);
  (* a metric created mid-run appears with a full baseline *)
  R.observe (R.histogram ~lo:0. ~hi:10. ~buckets:5 reg "lat") 3.;
  let w3 = Ts.sample ts ~at:200. reg in
  (match w3.Ts.samples with
  | [ { Ts.name = "lat"; point = Ts.Hist { count; delta; p50; _ }; _ } ] ->
      Alcotest.(check int) "hist count" 1 count;
      Alcotest.(check int) "hist delta" 1 delta;
      Alcotest.(check bool) "single-sample p50 finite" true
        (Float.is_finite p50)
  | _ -> Alcotest.fail "expected exactly the new histogram");
  Alcotest.(check int) "four windows recorded" 4 (Ts.window_count ts);
  Alcotest.check_raises "resolution must be positive"
    (Invalid_argument "Timeseries.create: resolution must be positive")
    (fun () -> ignore (Ts.create ~resolution:0. ()))

let test_timeseries_excludes_volatile () =
  let reg = R.create () in
  R.set_gauge (R.gauge reg "wall") 9.;
  R.mark_volatile reg "wall";
  R.incr (R.counter reg "ok");
  let ts = Ts.create ~resolution:1. () in
  let w = Ts.sample ts ~at:1. reg in
  Alcotest.(check (list string))
    "volatile never sampled" [ "ok" ]
    (List.map (fun s -> s.Ts.name) w.Ts.samples);
  match Ts.to_json ts with
  | Telemetry.Json.Obj fields ->
      Alcotest.(check bool) "schema tagged" true
        (List.mem_assoc "schema" fields)
  | _ -> Alcotest.fail "to_json must be an object"

(* --- Monitor DSL --------------------------------------------------------- *)

let test_monitor_dsl_roundtrip () =
  let dsl =
    "backlog=pipeline_pending>500,p99=delivery_latency.p99~250/10/0.5,stall=deposits!20,neg=chain_health<0.5,ev=system_events{event=purge}.delta>9"
  in
  let rules = M.parse dsl in
  Alcotest.(check int) "five rules" 5 (List.length rules);
  Alcotest.(check string) "round-trip" dsl (M.to_string rules);
  let burn = List.nth rules 1 in
  (match burn.M.condition with
  | M.Burn { threshold; window; budget } ->
      Alcotest.(check (float 1e-9)) "threshold" 250. threshold;
      Alcotest.(check int) "window" 10 window;
      Alcotest.(check (float 1e-9)) "budget" 0.5 budget
  | _ -> Alcotest.fail "expected a burn condition");
  let labelled = List.nth rules 4 in
  Alcotest.(check (list (pair string string)))
    "labels parsed"
    [ ("event", "purge") ]
    labelled.M.labels;
  Alcotest.(check bool) "selector parsed" true
    (labelled.M.selector = M.Delta);
  Alcotest.(check string) "standard round-trips" M.standard_dsl
    (M.to_string M.standard);
  let bad s =
    match M.parse s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing condition rejected" true (bad "a=m");
  Alcotest.(check bool) "empty name rejected" true (bad "=m>1");
  Alcotest.(check bool) "bad burn rejected" true (bad "a=m~1/2");
  Alcotest.(check bool) "bad selector rejected" true (bad "a=m.p42>1")

let test_monitor_threshold_and_counters () =
  let reg = R.create () in
  let g = R.gauge reg "depth" in
  let mon = M.create ~registry:reg (M.parse "deep=depth>10,shallow=depth<1") in
  Alcotest.(check int) "alert counters registered eagerly" 0
    (R.get_counter ~labels:[ ("rule", "deep") ] reg "alert_fired");
  R.set_gauge g 5.;
  Alcotest.(check int) "no fire inside bounds" 0
    (List.length (M.eval mon ~time:50. reg));
  R.set_gauge g 12.;
  (match M.eval mon ~time:100. reg with
  | [ a ] ->
      Alcotest.(check string) "rule name" "deep" a.M.a_rule;
      Alcotest.(check int) "window index" 1 a.M.a_window;
      Alcotest.(check (float 1e-9)) "offending value" 12. a.M.a_value
  | _ -> Alcotest.fail "expected one alert");
  R.set_gauge g 0.5;
  ignore (M.eval mon ~time:150. reg);
  Alcotest.(check int) "per-rule counter" 1
    (R.get_counter ~labels:[ ("rule", "deep") ] reg "alert_fired");
  Alcotest.(check int) "shallow fired too" 1
    (R.get_counter ~labels:[ ("rule", "shallow") ] reg "alert_fired");
  Alcotest.(check int) "total" 2 (R.get_counter reg "alert_total");
  Alcotest.(check bool) "fired" true (M.fired mon);
  Alcotest.(check bool) "no burn rule, no slo violation" false
    (M.slo_violated mon);
  let s = List.hd (M.summary mon) in
  Alcotest.(check int) "deep fires once" 1 s.M.fires;
  Alcotest.(check int) "worst window" 1 s.M.worst_window

let test_monitor_delta_absent_burn () =
  let reg = R.create () in
  let c = R.counter reg "retries" in
  let g = R.gauge reg "p99ish" in
  let mon =
    M.create (M.parse "burst=retries.delta>5,stall=retries!3,slo=p99ish~10/4/0.5")
  in
  let step v dv t =
    R.set_gauge g v;
    R.incr ~by:dv c;
    M.eval mon ~time:t reg
  in
  (* w0: delta 3 — quiet.  w1: delta 7 — burst fires. *)
  Alcotest.(check int) "w0 quiet" 0 (List.length (step 0. 3 50.));
  let w1 = step 0. 7 100. in
  Alcotest.(check (list string))
    "burst fires on delta" [ "burst" ]
    (List.map (fun a -> a.M.a_rule) w1);
  (* three unchanged windows trip the absence rule *)
  ignore (step 0. 0 150.);
  ignore (step 0. 0 200.);
  let w4 = step 0. 0 250. in
  Alcotest.(check (list string))
    "stall fires after 3 static windows" [ "stall" ]
    (List.map (fun a -> a.M.a_rule) w4);
  (* burn: violations accumulate in a 4-window sliding window; budget
     0.5 means it fires at the 3rd violation (burn 0.75 > 0.5). *)
  Alcotest.(check bool) "one violation: no slo" true
    (List.for_all (fun a -> a.M.a_rule <> "slo") (step 20. 1 300.));
  Alcotest.(check bool) "two violations: burn = budget, no fire" true
    (List.for_all (fun a -> a.M.a_rule <> "slo") (step 20. 1 350.));
  let w7 = step 20. 1 400. in
  Alcotest.(check bool) "three violations: slo fires" true
    (List.exists (fun a -> a.M.a_rule = "slo") w7);
  Alcotest.(check bool) "slo violation recorded" true (M.slo_violated mon);
  let slo_summary =
    List.find (fun s -> s.M.s_rule.M.rule_name = "slo") (M.summary mon)
  in
  Alcotest.(check (float 1e-9)) "final burn fraction" 0.75
    slo_summary.M.burn_fraction

(* --- Critical_path edge cases ------------------------------------------- *)

let test_critical_path_edges () =
  let open Telemetry in
  (* empty tracer *)
  let empty = Critical_path.analyze (Tracer.create ()) in
  Alcotest.(check int) "no traces" 0 empty.Critical_path.traces;
  Alcotest.(check int) "no stages" 0 (List.length empty.Critical_path.stages);
  (* single-sample percentiles: every percentile is that sample *)
  let tracer = Tracer.create () in
  let root = Tracer.span tracer ~name:"message" ~start:0. ~finish:10. () in
  ignore (Tracer.span tracer ~parent:root ~name:"submit" ~start:0. ~finish:4. ());
  let r = Critical_path.analyze tracer in
  let submit =
    List.find (fun s -> s.Critical_path.stage = "submit") r.Critical_path.stages
  in
  Alcotest.(check (float 1e-9)) "p50 = sample" 4. submit.Critical_path.p50;
  Alcotest.(check (float 1e-9)) "p99 = sample" 4. submit.Critical_path.p99;
  Alcotest.(check (float 1e-9)) "max = sample" 4. submit.Critical_path.max;
  (* a stage missing from one trace is summarised over the traces that
     contain it, not padded with zeros *)
  let root2 = Tracer.span tracer ~name:"message" ~start:20. ~finish:40. () in
  ignore
    (Tracer.span tracer ~parent:root2 ~name:"retry" ~start:20. ~finish:30. ());
  let r2 = Critical_path.analyze tracer in
  Alcotest.(check int) "both traces seen" 2 r2.Critical_path.traces;
  let retry =
    List.find (fun s -> s.Critical_path.stage = "retry") r2.Critical_path.stages
  in
  Alcotest.(check int) "retry present in one trace" 1
    retry.Critical_path.traces;
  Alcotest.(check (float 1e-9)) "not diluted by the other trace" 10.
    retry.Critical_path.p50;
  (* unfinished root: counted as a trace but not complete *)
  ignore (Tracer.span tracer ~name:"message" ~start:50. ());
  let r3 = Critical_path.analyze tracer in
  Alcotest.(check int) "three traces" 3 r3.Critical_path.traces;
  Alcotest.(check int) "two complete" 2 r3.Critical_path.complete

(* --- Scenario integration ------------------------------------------------ *)

let sampled_spec =
  {
    Mail.Scenario.default_spec with
    seed = 3;
    duration = 1500.;
    mail_count = 40;
    faults = Some (Netsim.Fault.parse "seed:5,crash:0.004/200");
    sampling = Some 100.;
    monitors = M.parse "chains-degraded=replica_chains_degraded>0";
  }

let test_scenario_sampling_and_alerts () =
  let o = Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()) sampled_spec in
  let ts =
    match o.Mail.Scenario.timeseries with
    | Some ts -> ts
    | None -> Alcotest.fail "sampling on but no timeseries"
  in
  (* 15 periodic windows plus the final post-drain one *)
  Alcotest.(check int) "windows" 16 (Ts.window_count ts);
  let mon =
    match o.Mail.Scenario.monitor with
    | Some m -> m
    | None -> Alcotest.fail "sampling on but no monitor"
  in
  Alcotest.(check int) "monitor saw every window" 16
    (M.windows_evaluated mon);
  (* the campaign crashes servers, so the chain gauge must have tripped *)
  Alcotest.(check bool) "chains-degraded fired" true (M.fired mon);
  Alcotest.(check int) "alert counters in the registry"
    (List.length (M.alerts mon))
    (R.get_counter o.Mail.Scenario.metrics "alert_total");
  (* alerts also land in the engine trace under category "monitor" *)
  let monitor_records = ref 0 in
  Dsim.Trace.iter
    (fun r ->
      if String.equal r.Dsim.Trace.category "monitor" then incr monitor_records)
    o.Mail.Scenario.events;
  Alcotest.(check int) "alerts mirrored into the event log"
    (List.length (M.alerts mon))
    !monitor_records;
  (* health gauges exist after the run *)
  Alcotest.(check bool) "chain_health gauge present" true
    (Float.is_finite (R.get_gauge o.Mail.Scenario.metrics "chain_health"));
  Alcotest.(check bool) "queue_depth gauge present" true
    (Float.is_finite (R.get_gauge o.Mail.Scenario.metrics "queue_depth"))

let test_scenario_timeseries_deterministic () =
  let run () =
    let o =
      Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()) sampled_spec
    in
    match o.Mail.Scenario.timeseries with
    | Some ts -> Telemetry.Json.to_string (Ts.to_json ts)
    | None -> Alcotest.fail "no timeseries"
  in
  Alcotest.(check string) "byte-identical across identical runs" (run ())
    (run ())

let suite =
  [
    ( "observability",
      [
        Alcotest.test_case "iter_sorted order and volatility" `Quick
          test_iter_sorted_order_and_volatile;
        Alcotest.test_case "tracer overflow counts drops" `Quick
          test_tracer_overflow_counts_drops;
        Alcotest.test_case "engine recurring event" `Quick test_engine_every;
        Alcotest.test_case "timeseries delta encoding" `Quick
          test_timeseries_delta_encoding;
        Alcotest.test_case "timeseries excludes volatile" `Quick
          test_timeseries_excludes_volatile;
        Alcotest.test_case "monitor DSL round-trip" `Quick
          test_monitor_dsl_roundtrip;
        Alcotest.test_case "monitor thresholds and counters" `Quick
          test_monitor_threshold_and_counters;
        Alcotest.test_case "monitor delta, absence, burn" `Quick
          test_monitor_delta_absent_burn;
        Alcotest.test_case "critical-path edge cases" `Quick
          test_critical_path_edges;
        Alcotest.test_case "scenario sampling and alerts" `Quick
          test_scenario_sampling_and_alerts;
        Alcotest.test_case "scenario timeseries deterministic" `Quick
          test_scenario_timeseries_deterministic;
      ] );
  ]
