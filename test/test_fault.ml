(* Fault campaigns, link outages, the delivery ledger, and the
   delivery-guarantee regressions of the retry pipeline. *)

let nm u = Naming.Name.make ~region:"r0" ~host:"H1" ~user:u

let msg id =
  Mail.Message.create ~id ~sender:(nm "alice") ~recipient:(nm "bob")
    ~submitted_at:0. ()

(* --- campaign DSL and compilation ----------------------------------- *)

let test_parse_roundtrip () =
  let c =
    Netsim.Fault.parse
      "seed:7,crash:0.002/150,link:0.001/=30,partition:r1@100+50,burst:0.3@200+40"
  in
  Alcotest.(check int) "seed" 7 c.Netsim.Fault.seed;
  Alcotest.(check int) "faults" 4 (List.length c.Netsim.Fault.faults);
  let c' = Netsim.Fault.parse (Netsim.Fault.to_string c) in
  Alcotest.(check bool) "round-trip" true (c = c');
  Alcotest.check_raises "malformed" (Invalid_argument "Fault.parse: unknown fault kind \"bogus\"")
    (fun () -> ignore (Netsim.Fault.parse "bogus:1"))

let two_region_graph () =
  let g = Netsim.Graph.create () in
  let a1 = Netsim.Graph.add_node ~label:"A1" ~kind:Netsim.Graph.Server ~region:"ra" g in
  let a2 = Netsim.Graph.add_node ~label:"A2" ~kind:Netsim.Graph.Server ~region:"ra" g in
  let b1 = Netsim.Graph.add_node ~label:"B1" ~kind:Netsim.Graph.Server ~region:"rb" g in
  let b2 = Netsim.Graph.add_node ~label:"B2" ~kind:Netsim.Graph.Server ~region:"rb" g in
  Netsim.Graph.add_edge g a1 a2 1.;
  Netsim.Graph.add_edge g b1 b2 1.;
  Netsim.Graph.add_edge g a2 b1 1.;
  (g, a1, a2, b1, b2)

let test_compile_deterministic () =
  let g, a1, a2, b1, b2 = two_region_graph () in
  let servers = [ a1; a2; b1; b2 ] in
  let c = Netsim.Fault.parse "seed:3,crash:0.01,link:0.005,burst:0.5" in
  let s1 = Netsim.Fault.compile ~graph:g ~servers ~horizon:1000. c in
  let s2 = Netsim.Fault.compile ~graph:g ~servers ~horizon:1000. c in
  Alcotest.(check bool) "same schedule" true
    (s1.Netsim.Fault.windows = s2.Netsim.Fault.windows);
  Alcotest.(check bool) "windows generated" true
    (List.length s1.Netsim.Fault.windows > 0);
  let s3 = Netsim.Fault.compile ~salt:1 ~graph:g ~servers ~horizon:1000. c in
  Alcotest.(check bool) "salt changes the draw" true
    (s1.Netsim.Fault.windows <> s3.Netsim.Fault.windows)

let test_partition_targets_boundary () =
  let g, a1, a2, b1, b2 = two_region_graph () in
  let c = { Netsim.Fault.seed = 0; faults = [ Netsim.Fault.Partition { region = "rb"; start = Some 10.; duration = Some 5. } ] } in
  let s = Netsim.Fault.compile ~graph:g ~servers:[ a1; a2; b1; b2 ] ~horizon:100. c in
  (* The only edge crossing rb's boundary is a2-b1. *)
  Alcotest.(check int) "one boundary window" 1 (List.length s.Netsim.Fault.windows);
  (match s.Netsim.Fault.windows with
  | [ w ] ->
      Alcotest.(check string) "kind" "partition" w.Netsim.Fault.kind;
      Alcotest.(check bool) "targets the boundary link" true
        (w.Netsim.Fault.target = Netsim.Fault.Link (a2, b1)
        || w.Netsim.Fault.target = Netsim.Fault.Link (b1, a2))
  | _ -> Alcotest.fail "expected one window");
  Alcotest.check_raises "unknown region"
    (Invalid_argument "Fault.compile: unknown region \"mars\"") (fun () ->
      ignore
        (Netsim.Fault.compile ~graph:g ~servers:[ a1 ]
           ~horizon:100.
           { Netsim.Fault.seed = 0; faults = [ Netsim.Fault.Partition { region = "mars"; start = None; duration = None } ] }))

(* --- link outages in the network substrate --------------------------- *)

let test_link_cut_reroutes () =
  (* Square a-b-c-d-a: cutting a-b must detour a→b via d,c. *)
  let g = Netsim.Graph.create () in
  let a = Netsim.Graph.add_node ~region:"r0" g in
  let b = Netsim.Graph.add_node ~region:"r0" g in
  let c = Netsim.Graph.add_node ~region:"r0" g in
  let d = Netsim.Graph.add_node ~region:"r0" g in
  Netsim.Graph.add_edge g a b 1.;
  Netsim.Graph.add_edge g b c 1.;
  Netsim.Graph.add_edge g c d 1.;
  Netsim.Graph.add_edge g d a 1.;
  let engine = Dsim.Engine.create () in
  let net = Netsim.Net.create ~engine g in
  let got = ref [] in
  Netsim.Net.set_handler net b (fun ~time:_ ~src:_ m -> got := m :: !got);
  Alcotest.(check bool) "direct hop count" true (Netsim.Net.hops net a b = 1);
  Netsim.Net.set_link_down net a b;
  Alcotest.(check bool) "link reported down" false (Netsim.Net.link_is_up net a b);
  Alcotest.(check bool) "detour is 3 hops" true (Netsim.Net.hops net a b = 3);
  Alcotest.(check bool) "send accepted" true (Netsim.Net.send net ~src:a ~dst:b "x");
  Dsim.Engine.run engine;
  Alcotest.(check (list string)) "delivered via detour" [ "x" ] !got;
  (* Cutting the other incident edge isolates a entirely. *)
  Netsim.Net.set_link_down net a d;
  Alcotest.(check bool) "no route left" false (Netsim.Net.send net ~src:a ~dst:b "y");
  Netsim.Net.set_link_up net a b;
  Netsim.Net.set_link_up net a d;
  Alcotest.(check (list (pair int int))) "all links restored" []
    (Netsim.Net.links_down net);
  Alcotest.(check bool) "direct route back" true (Netsim.Net.hops net a b = 1)

let test_apply_depth_counting () =
  let g = Netsim.Graph.create () in
  let a = Netsim.Graph.add_node ~region:"r0" g in
  let b = Netsim.Graph.add_node ~region:"r0" g in
  Netsim.Graph.add_edge g a b 1.;
  let engine = Dsim.Engine.create () in
  let net = Netsim.Net.create ~engine g in
  (* Two overlapping windows on the same node: up only at the last end. *)
  let sched =
    {
      Netsim.Fault.windows =
        [
          { Netsim.Fault.target = Netsim.Fault.Node a; kind = "crash"; start = 10.; duration = 20. };
          { Netsim.Fault.target = Netsim.Fault.Node a; kind = "crash"; start = 20.; duration = 30. };
        ];
      horizon = 100.;
    }
  in
  let flips = ref [] in
  Netsim.Fault.apply
    ~on_event:(fun ~time w status -> flips := (time, w.Netsim.Fault.kind, status) :: !flips)
    net sched;
  ignore (Dsim.Engine.schedule_at engine 25. (fun () ->
      Alcotest.(check bool) "down inside overlap" false (Netsim.Net.is_up net a)));
  ignore (Dsim.Engine.schedule_at engine 35. (fun () ->
      Alcotest.(check bool) "still down after first window ends" false
        (Netsim.Net.is_up net a)));
  Dsim.Engine.run engine;
  Alcotest.(check bool) "up after last window" true (Netsim.Net.is_up net a);
  Alcotest.(check (list (triple (float 0.01) string bool)))
    "one effective down, one effective up"
    [ (10., "crash", false); (50., "crash", true) ]
    (List.rev !flips)

(* --- the delivery ledger --------------------------------------------- *)

let test_ledger_verdicts () =
  let l = Mail.Ledger.create () in
  let m1 = msg 1 and m2 = msg 2 and m3 = msg 3 and m4 = msg 4 in
  (* m1: clean delivery. *)
  Mail.Ledger.record_submit l m1 ~at:0.;
  Mail.Ledger.record_deposit l m1 ~at:1.;
  Mail.Ledger.record_fetch l m1 ~at:2.;
  Mail.Ledger.record_retrieve l m1 ~at:2.;
  (* m2: lost — submitted, never resolved. *)
  Mail.Ledger.record_submit l m2 ~at:0.;
  (* m3: duplicated into the inbox. *)
  Mail.Ledger.record_submit l m3 ~at:0.;
  Mail.Ledger.record_deposit l m3 ~at:1.;
  Mail.Ledger.record_fetch l m3 ~at:2.;
  Mail.Ledger.record_retrieve l m3 ~at:2.;
  Mail.Ledger.record_retrieve l m3 ~at:3.;
  (* m4: explicit bounce — not a violation. *)
  Mail.Ledger.record_submit l m4 ~at:0.;
  Mail.Ledger.record_undeliverable l m4 ~reason:"retries exhausted" ~at:5.;
  let v = Mail.Ledger.check l in
  Alcotest.(check int) "submitted" 4 v.Mail.Ledger.submitted;
  Alcotest.(check int) "delivered" 1 v.Mail.Ledger.delivered;
  Alcotest.(check int) "undeliverable" 1 v.Mail.Ledger.undeliverable;
  Alcotest.(check int) "lost" 1 v.Mail.Ledger.lost;
  Alcotest.(check int) "duplicates" 1 v.Mail.Ledger.duplicates;
  Alcotest.(check bool) "not ok" false v.Mail.Ledger.ok;
  Alcotest.(check (list int)) "violations sorted by id" [ 2; 3 ]
    (List.map (fun x -> x.Mail.Ledger.id) v.Mail.Ledger.violations);
  Alcotest.(check bool) "m1 settled" true (Mail.Ledger.settled l 1);
  Alcotest.(check bool) "m2 not settled" false (Mail.Ledger.settled l 2);
  Alcotest.(check bool) "unknown id settled" true (Mail.Ledger.settled l 99)

let test_ledger_spurious_bounce_ok () =
  let l = Mail.Ledger.create () in
  let m = msg 1 in
  Mail.Ledger.record_submit l m ~at:0.;
  Mail.Ledger.record_deposit l m ~at:1.;
  Mail.Ledger.record_fetch l m ~at:2.;
  Mail.Ledger.record_retrieve l m ~at:2.;
  (* The deposit ack vanished and the pipeline later bounced: delivered
     at-least-once, so counted but not a violation. *)
  Mail.Ledger.record_undeliverable l m ~reason:"retries exhausted" ~at:9.;
  let v = Mail.Ledger.check l in
  Alcotest.(check bool) "ok" true v.Mail.Ledger.ok;
  Alcotest.(check int) "spurious bounce counted" 1 v.Mail.Ledger.spurious_bounces;
  Alcotest.(check int) "delivered" 1 v.Mail.Ledger.delivered

(* --- pipeline regressions (stub world, as in test_pipeline) ---------- *)

let tiny_world ?(config = Mail.Pipeline.default_pipeline_config) () =
  let g = Netsim.Graph.create () in
  let h1 = Netsim.Graph.add_node ~label:"H1" ~kind:Netsim.Graph.Host ~region:"r0" g in
  let s1 = Netsim.Graph.add_node ~label:"S1" ~kind:Netsim.Graph.Server ~region:"r0" g in
  let s2 = Netsim.Graph.add_node ~label:"S2" ~kind:Netsim.Graph.Server ~region:"r0" g in
  let h2 = Netsim.Graph.add_node ~label:"H2" ~kind:Netsim.Graph.Host ~region:"r0" g in
  Netsim.Graph.add_edge g h1 s1 1.;
  Netsim.Graph.add_edge g s1 s2 1.;
  Netsim.Graph.add_edge g s2 h2 1.;
  let engine = Dsim.Engine.create () in
  let counters = Dsim.Stats.Counter.create () in
  let pipeline_ref = ref None in
  let the_pipeline () = Option.get !pipeline_ref in
  let storage =
    Mail.Replica_group.create ~counters
      ~chain_of:(fun _ -> [ s2 ])
      ~is_up:(fun node -> Netsim.Net.is_up (Mail.Pipeline.net (the_pipeline ())) node)
      ()
  in
  Mail.Replica_group.add_holder storage ~node:s1 ~region:"r0";
  Mail.Replica_group.add_holder storage ~node:s2 ~region:"r0";
  let intern = Naming.Intern.create () in
  let callbacks =
    {
      Mail.Pipeline.region_servers = (fun r -> if r = "r0" then [ s1; s2 ] else []);
      uid_of = Naming.Intern.intern intern;
      name_of_uid = Naming.Intern.name intern;
      canonical_uid = Fun.id;
      authority_of_uid = (fun _ -> [ s2 ]);
      notify_target_uid = (fun _ -> None);
      submit_servers = (fun _ -> [ s1; s2 ]);
      on_deposit = (fun _ ~on:_ ~ack:_ -> ());
      cached_authority = (fun ~at:_ _ -> None);
      on_forward_resolved = (fun ~at:_ _ _ -> ());
      on_undeliverable = (fun _ ~reason:_ -> ());
      on_redirected = (fun _ ~old_name:_ -> ());
      on_ctrl = (fun _ ~time:_ ~src:_ () -> ());
    }
  in
  let pipeline =
    Mail.Pipeline.create ~engine ~graph:g ~trace:(Dsim.Trace.create ()) ~counters
      ~storage config callbacks
  in
  pipeline_ref := Some pipeline;
  (engine, pipeline, counters, (h1, s1, s2, h2))

let agent h1 =
  Mail.User_agent.create ~name:(nm "alice") ~host:h1 ~authority:[ 1; 2 ] ()

let test_no_submit_timer_storm () =
  (* Regression: [try_submit] used to arm BOTH the retry-deferral timer
     and the resubmission safety net on every invocation, so timers —
     and submit attempts — doubled every round during a long outage.
     With one outstanding submit timer per message, attempts stay
     linear in the outage length. *)
  let config =
    { Mail.Pipeline.default_pipeline_config with retry_timeout = 20.; resubmit_timeout = 50. }
  in
  let engine, pipeline, counters, (h1, s1, s2, _) = tiny_world ~config () in
  let net = Mail.Pipeline.net pipeline in
  Netsim.Net.set_down net s1;
  Netsim.Net.set_down net s2;
  let m = msg 1 in
  Mail.Pipeline.submit pipeline ~sender_agent:(agent h1) ~msg:m;
  ignore
    (Dsim.Engine.schedule_at engine 2000. (fun () ->
         Netsim.Net.set_up net s1;
         Netsim.Net.set_up net s2));
  Dsim.Engine.run engine;
  Alcotest.(check bool) "delivered after recovery" true (Mail.Message.is_deposited m);
  (* 2000 time units / 20 per deferral round, 2 servers tried per round:
     ~200 attempts when linear; thousands when timers multiply. *)
  let attempts = Dsim.Stats.Counter.get counters "submit_attempts" in
  Alcotest.(check bool)
    (Printf.sprintf "submit attempts linear in outage (%d)" attempts)
    true
    (attempts <= 2 * ((2000 / 20) + 3));
  let deferred = Dsim.Stats.Counter.get counters "submit_deferred" in
  Alcotest.(check bool)
    (Printf.sprintf "deferrals linear in outage (%d)" deferred)
    true
    (deferred <= (2000 / 20) + 3)

let test_no_false_retry_exhaustion () =
  (* Regression: [arm_retry] used to burn the retry budget while the
     HOLDER of a pending transfer was down, then declare "retries
     exhausted" even though pending state survives holder crashes and
     delivery would have succeeded on recovery. *)
  let config =
    { Mail.Pipeline.default_pipeline_config with retry_timeout = 20.; max_retries = 3 }
  in
  let engine, pipeline, counters, (h1, s1, s2, _) = tiny_world ~config () in
  let net = Mail.Pipeline.net pipeline in
  (* The deposit target is down at submit time, so S1 accepts the
     submission and becomes the pending holder retrying toward S2. *)
  Netsim.Net.set_down net s2;
  let m = msg 1 in
  Mail.Pipeline.submit pipeline ~sender_agent:(agent h1) ~msg:m;
  (* Crash the holder too, for far longer than max_retries x timeout. *)
  ignore (Dsim.Engine.schedule_at engine 5. (fun () -> Netsim.Net.set_down net s1));
  ignore
    (Dsim.Engine.schedule_at engine 600. (fun () ->
         Netsim.Net.set_up net s1;
         Netsim.Net.set_up net s2));
  Dsim.Engine.run engine;
  Alcotest.(check int) "never gave up" 0 (Dsim.Stats.Counter.get counters "gave_up");
  Alcotest.(check bool) "delivered after the long crash" true
    (Mail.Message.is_deposited m);
  Alcotest.(check bool) "not declared dead" false (Mail.Pipeline.is_dead pipeline 1);
  Alcotest.(check int) "no pendings left" 0 (Mail.Pipeline.pending_count pipeline)

(* --- user-agent PUS list and compaction ------------------------------ *)

let test_pus_fifo_order () =
  let ua =
    Mail.User_agent.create ~name:(nm "alice") ~host:0 ~authority:[ 10; 11; 12 ] ()
  in
  let down = Hashtbl.create 4 in
  List.iter (fun s -> Hashtbl.replace down s ()) [ 10; 11; 12 ];
  let view =
    {
      Mail.User_agent.is_alive = (fun s -> not (Hashtbl.mem down s));
      last_start = (fun _ -> 0.);
      fetch = (fun _ ~uid:_ _ ~at:_ -> []);
    }
  in
  ignore (Mail.User_agent.get_mail ua ~view ~now:10.);
  Alcotest.(check (list int)) "marked in poll order" [ 10; 11; 12 ]
    (Mail.User_agent.previously_unavailable ua);
  (* 11 recovers and is drained; the others stay in order. *)
  Hashtbl.remove down 11;
  ignore (Mail.User_agent.get_mail ua ~view ~now:20.);
  Alcotest.(check (list int)) "drained server removed, order kept" [ 10; 12 ]
    (Mail.User_agent.previously_unavailable ua)

let test_compaction_bounds_tables () =
  let sys = Mail.Syntax_system.create (Netsim.Topology.paper_fig1 ()) in
  let users = Array.of_list (Mail.Syntax_system.users sys) in
  for i = 0 to 19 do
    ignore
      (Mail.Syntax_system.submit_at sys
         ~at:(float_of_int i *. 5.)
         ~sender:users.(i mod 10)
         ~recipient:users.(10 + (i mod 10))
         ())
  done;
  Mail.Syntax_system.quiesce sys;
  Array.iter (fun u -> ignore (Mail.Syntax_system.check_mail sys u)) users;
  let verdict = Mail.Ledger.check (Mail.Syntax_system.ledger sys) in
  Alcotest.(check bool) "all delivered" true verdict.Mail.Ledger.ok;
  Alcotest.(check int) "delivered count" 20 verdict.Mail.Ledger.delivered;
  let dropped = Mail.Syntax_system.compact sys in
  Alcotest.(check bool)
    (Printf.sprintf "compaction dropped settled entries (%d)" dropped)
    true (dropped >= 20);
  Alcotest.(check int) "second pass finds nothing" 0 (Mail.Syntax_system.compact sys)

(* --- the invariant under a full campaign, all three designs ---------- *)

let hier_site seed =
  let rng = Dsim.Rng.create seed in
  let spec = { Netsim.Topology.default_hierarchy with regions = 3; hosts_per_region = 4 } in
  let g = Netsim.Topology.hierarchical ~rng spec in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

let campaign_spec =
  {
    Mail.Scenario.default_spec with
    seed = 13;
    duration = 2500.;
    mail_count = 120;
    faults =
      Some
        (Netsim.Fault.parse
           "seed:9,crash:0.003/100,link:0.001,partition:r1@800+300,burst:0.3@1500+150");
  }

let check_campaign name run =
  let o = run campaign_spec in
  let v = o.Mail.Scenario.ledger in
  Alcotest.(check bool)
    (Printf.sprintf "%s: faults actually fired" name)
    true
    (Telemetry.Registry.get_gauge o.Mail.Scenario.metrics "fault_windows" > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "%s: server uptime dented" name)
    true
    (o.Mail.Scenario.server_uptime < 1.);
  Alcotest.(check bool)
    (Printf.sprintf "%s: replication keeps mailboxes more available than servers" name)
    true
    (o.Mail.Scenario.availability >= o.Mail.Scenario.server_uptime);
  Alcotest.(check int) (name ^ ": all submissions accounted") 120 v.Mail.Ledger.submitted;
  Alcotest.(check int) (name ^ ": nothing lost") 0 v.Mail.Ledger.lost;
  Alcotest.(check int) (name ^ ": nothing duplicated") 0 v.Mail.Ledger.duplicates;
  Alcotest.(check bool) (name ^ ": invariant holds") true v.Mail.Ledger.ok

let test_campaign_syntax () =
  check_campaign "syntax" (Mail.Scenario.run_syntax (hier_site 13))

let test_failover_keeps_invariant () =
  (* The tentpole regression: under the standard fault campaign a
     primary crash must actually be exercised — GetMail served by a
     lower-priority chain member ([replica_failovers] > 0) — and the
     delivery invariant must survive it with zero lost and zero
     duplicated, while replicated mailbox availability clears the 0.99
     target the raw server uptime misses. *)
  let config = { Mail.Syntax_system.default_config with replication = 4 } in
  let spec =
    {
      Mail.Scenario.default_spec with
      seed = 13;
      duration = 2500.;
      mail_count = 150;
      faults = Some Netsim.Fault.standard;
    }
  in
  let o = Mail.Scenario.run_syntax ~config (hier_site 13) spec in
  let failovers =
    Telemetry.Registry.get_counter o.Mail.Scenario.metrics "replica_failovers"
  in
  Alcotest.(check bool)
    (Printf.sprintf "a failover actually occurred (%d)" failovers)
    true (failovers > 0);
  Alcotest.(check int) "effective replication" 4 o.Mail.Scenario.replication_factor;
  Alcotest.(check bool)
    (Printf.sprintf "availability >= 0.99 (%.4f)" o.Mail.Scenario.availability)
    true
    (o.Mail.Scenario.availability >= 0.99);
  Alcotest.(check bool)
    (Printf.sprintf "servers were genuinely unreliable (%.4f)"
       o.Mail.Scenario.server_uptime)
    true
    (o.Mail.Scenario.server_uptime < 0.99);
  let v = o.Mail.Scenario.ledger in
  Alcotest.(check int) "zero lost across failover" 0 v.Mail.Ledger.lost;
  Alcotest.(check int) "zero duplicated across failover" 0 v.Mail.Ledger.duplicates;
  Alcotest.(check bool) "ledger ok" true v.Mail.Ledger.ok

let test_late_replicate_never_resurrects () =
  (* Regression: with a wide chain (replication 5, quorum 3) the
     coordinator can reach quorum while Replicates to the remaining
     chain members are still in flight.  The ledger then balances, the
     id compacts (retrieved set, agent seen set), and the late arrival
     used to store a *fresh* copy — served as a duplicate by the next
     failover fetch.  In-flight message fences now keep the id
     uncompactable until every scheduled arrival has passed.  This is
     the exact run that caught the bug (scale topology, seed 1,
     5000 messages, standard campaign). *)
  let site =
    let rng = Dsim.Rng.create 1 in
    Netsim.Topology.scale_site ~rng
      (Netsim.Topology.sized_hierarchy ~regions:6 ~hosts_per_region:8
         ~servers_per_region:3 ~degree:10. ())
  in
  let config = { Mail.Syntax_system.default_config with replication = 5 } in
  let spec =
    {
      Mail.Scenario.default_spec with
      seed = 1;
      duration = 5000.;
      mail_count = 5000;
      check_period = 250.;
      faults = Some Netsim.Fault.standard;
    }
  in
  let o = Mail.Scenario.run_syntax ~config site spec in
  let v = o.Mail.Scenario.ledger in
  Alcotest.(check int) "zero duplicates with a 5-wide chain" 0
    v.Mail.Ledger.duplicates;
  Alcotest.(check int) "zero lost" 0 v.Mail.Ledger.lost;
  Alcotest.(check bool) "ledger ok" true v.Mail.Ledger.ok

let test_pooled_reuse_never_aliases () =
  (* Flat-core regression: the pipeline now re-arms one pooled closure
     per retry/replication timer and the net reuses delivery slots, so
     a stale firing crediting the *wrong* message would surface in the
     ledger as a lost or duplicated copy.  Run a full standard fault
     campaign at replication 3 with lifecycle sampling on (both the
     traced and untraced submit paths exercised) and require the
     ledger to balance exactly: pooled reuse must not alias state. *)
  let config =
    { Mail.Syntax_system.default_config with replication = 3; span_sample = 4 }
  in
  let spec =
    {
      Mail.Scenario.default_spec with
      seed = 29;
      duration = 2500.;
      mail_count = 150;
      faults = Some Netsim.Fault.standard;
    }
  in
  let o = Mail.Scenario.run_syntax ~config (hier_site 29) spec in
  let v = o.Mail.Scenario.ledger in
  let retries = Telemetry.Registry.get_counter o.Mail.Scenario.metrics "retries" in
  let rounds =
    Telemetry.Registry.get_counter o.Mail.Scenario.metrics "replica_replicate_sends"
  in
  Alcotest.(check bool)
    (Printf.sprintf "pooled retry timers actually re-armed (%d)" retries)
    true (retries > 0);
  Alcotest.(check bool)
    (Printf.sprintf "pooled replication rounds actually ran (%d)" rounds)
    true (rounds > 0);
  Alcotest.(check int) "all submissions accounted" 150 v.Mail.Ledger.submitted;
  Alcotest.(check int) "zero lost under pooled reuse" 0 v.Mail.Ledger.lost;
  Alcotest.(check int) "zero duplicated under pooled reuse" 0
    v.Mail.Ledger.duplicates;
  Alcotest.(check bool) "ledger ok" true v.Mail.Ledger.ok

let test_campaign_location () =
  check_campaign "location"
    (Mail.Scenario.run_location ~roam_probability:0.3 (hier_site 13))

let test_campaign_attribute () =
  check_campaign "attribute"
    (Mail.Scenario.run_attribute ~roam_probability:0.3 (hier_site 13))

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
        Alcotest.test_case "compile deterministic" `Quick test_compile_deterministic;
        Alcotest.test_case "partition targets boundary" `Quick test_partition_targets_boundary;
        Alcotest.test_case "link cut reroutes" `Quick test_link_cut_reroutes;
        Alcotest.test_case "overlapping windows depth-counted" `Quick test_apply_depth_counting;
      ] );
    ( "ledger",
      [
        Alcotest.test_case "verdict classification" `Quick test_ledger_verdicts;
        Alcotest.test_case "spurious bounce is not a violation" `Quick
          test_ledger_spurious_bounce_ok;
      ] );
    ( "pipeline-guarantees",
      [
        Alcotest.test_case "no submit-timer storm" `Quick test_no_submit_timer_storm;
        Alcotest.test_case "no false retry exhaustion" `Quick
          test_no_false_retry_exhaustion;
        Alcotest.test_case "PUS list keeps FIFO order" `Quick test_pus_fifo_order;
        Alcotest.test_case "compaction bounds dedup tables" `Quick
          test_compaction_bounds_tables;
      ] );
    ( "fault-campaign",
      [
        Alcotest.test_case "syntax survives campaign" `Slow test_campaign_syntax;
        Alcotest.test_case "failover exercised, invariant intact" `Slow
          test_failover_keeps_invariant;
        Alcotest.test_case "late replicate never resurrects" `Slow
          test_late_replicate_never_resurrects;
        Alcotest.test_case "pooled reuse never aliases" `Slow
          test_pooled_reuse_never_aliases;
        Alcotest.test_case "location survives campaign" `Slow test_campaign_location;
        Alcotest.test_case "attribute survives campaign" `Slow test_campaign_attribute;
      ] );
  ]
