(* Tests for Message, Mailbox and Server. *)

let nm u = Naming.Name.make ~region:"east" ~host:"h1" ~user:u

(* bob interns to uid 1, carol to uid 2 in these storage tests. *)
let msg ?(id = 0) ?(at = 0.) () =
  Mail.Message.create ~id ~sender:(nm "alice") ~recipient:(nm "bob") ~recipient_uid:1
    ~subject:"s" ~body:"hello" ~submitted_at:at ()

(* --- message lifecycle --- *)

let test_message_lifecycle () =
  let m = msg ~at:1. () in
  Alcotest.(check bool) "not deposited" false (Mail.Message.is_deposited m);
  Mail.Message.mark_deposited m ~at:3. ~on:9;
  Alcotest.(check bool) "deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check (option (float 1e-9))) "delivery latency" (Some 2.)
    (Mail.Message.delivery_latency m);
  (* second deposit is ignored *)
  Mail.Message.mark_deposited m ~at:99. ~on:1;
  Alcotest.(check (option (float 1e-9))) "first deposit wins" (Some 2.)
    (Mail.Message.delivery_latency m);
  Alcotest.(check bool) "kept server" true (m.Mail.Message.deposited_on = Some 9);
  Mail.Message.mark_retrieved m ~at:6.;
  Alcotest.(check (option (float 1e-9))) "e2e latency" (Some 5.)
    (Mail.Message.end_to_end_latency m)

let test_message_pp () =
  let s = Format.asprintf "%a" Mail.Message.pp (msg ()) in
  Alcotest.(check bool) "prints" true (String.length s > 10)

(* --- mailbox --- *)

let test_mailbox_deposit_retrieve () =
  let mb = Mail.Mailbox.create (nm "bob") in
  Mail.Mailbox.deposit mb (msg ~id:1 ());
  Mail.Mailbox.deposit mb (msg ~id:2 ());
  Alcotest.(check int) "pending" 2 (Mail.Mailbox.pending mb);
  let got = Mail.Mailbox.retrieve_all mb in
  Alcotest.(check (list int)) "deposit order" [ 1; 2 ]
    (List.map (fun m -> m.Mail.Message.id) got);
  Alcotest.(check int) "drained" 0 (Mail.Mailbox.pending mb);
  Alcotest.(check int) "no archive by default" 0 (Mail.Mailbox.archived mb)

let test_mailbox_peek () =
  let mb = Mail.Mailbox.create (nm "bob") in
  Mail.Mailbox.deposit mb (msg ~id:1 ());
  Alcotest.(check int) "peek leaves" 1 (List.length (Mail.Mailbox.peek mb));
  Alcotest.(check int) "still pending" 1 (Mail.Mailbox.pending mb)

let test_mailbox_archive_policy () =
  let mb = Mail.Mailbox.create ~policy:Mail.Mailbox.Archive (nm "bob") in
  let m = msg ~id:1 () in
  Mail.Message.mark_deposited m ~at:10. ~on:0;
  Mail.Mailbox.deposit mb m;
  ignore (Mail.Mailbox.retrieve_all mb);
  Alcotest.(check int) "archived copy kept" 1 (Mail.Mailbox.archived mb);
  (* clean-up drops old copies *)
  let dropped = Mail.Mailbox.cleanup mb ~now:100. ~max_age:50. in
  Alcotest.(check int) "dropped" 1 dropped;
  Alcotest.(check int) "archive empty" 0 (Mail.Mailbox.archived mb)

let test_mailbox_cleanup_keeps_fresh () =
  let mb = Mail.Mailbox.create ~policy:Mail.Mailbox.Archive (nm "bob") in
  let m = msg ~id:1 () in
  Mail.Message.mark_deposited m ~at:90. ~on:0;
  Mail.Mailbox.deposit mb m;
  ignore (Mail.Mailbox.retrieve_all mb);
  Alcotest.(check int) "kept" 0 (Mail.Mailbox.cleanup mb ~now:100. ~max_age:50.);
  Alcotest.(check int) "still archived" 1 (Mail.Mailbox.archived mb)

let test_mailbox_storage () =
  let mb = Mail.Mailbox.create (nm "bob") in
  Alcotest.(check int) "empty" 0 (Mail.Mailbox.storage_bytes mb);
  Mail.Mailbox.deposit mb (msg ());
  Alcotest.(check bool) "positive" true (Mail.Mailbox.storage_bytes mb > 0)

(* --- server --- *)

let test_server_store_take () =
  let srv = Mail.Server.create ~node:3 ~region:"east" () in
  let m = msg ~id:5 ~at:1. () in
  Mail.Server.store srv m ~at:2.;
  Alcotest.(check bool) "marked deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "on this server" true (m.Mail.Message.deposited_on = Some 3);
  Alcotest.(check int) "pending for bob" 1 (Mail.Server.pending_for srv ~uid:1);
  Alcotest.(check int) "total pending" 1 (Mail.Server.total_pending srv);
  let got = Mail.Server.take srv ~uid:1 ~at:4. in
  Alcotest.(check int) "fetched" 1 (List.length got);
  Alcotest.(check bool) "marked retrieved" true (Mail.Message.is_retrieved m);
  Alcotest.(check (list int)) "refetch empty" []
    (List.map (fun m -> m.Mail.Message.id) (Mail.Server.take srv ~uid:1 ~at:5.));
  Alcotest.(check int) "stores counted" 1 (Mail.Server.stores srv)

let test_server_purge () =
  let srv = Mail.Server.create ~node:3 ~region:"east" () in
  Mail.Server.store srv (msg ~id:7 ()) ~at:0.;
  Mail.Server.store srv (msg ~id:8 ()) ~at:0.;
  Alcotest.(check int) "purged one copy" 1 (Mail.Server.purge srv ~uid:1 7);
  Alcotest.(check int) "one left" 1 (Mail.Server.pending_for srv ~uid:1);
  Alcotest.(check int) "absent id is a no-op" 0 (Mail.Server.purge srv ~uid:1 7);
  Alcotest.(check int) "unknown user is a no-op" 0 (Mail.Server.purge srv ~uid:99 8);
  let got = Mail.Server.take srv ~uid:1 ~at:1. in
  Alcotest.(check (list int)) "purged copy never served" [ 8 ]
    (List.map (fun m -> m.Mail.Message.id) got)

let test_server_unknown_user_fetch () =
  let srv = Mail.Server.create ~node:3 ~region:"east" () in
  Alcotest.(check int) "empty" 0 (List.length (Mail.Server.take srv ~uid:99 ~at:0.))

let test_server_last_start () =
  let srv = Mail.Server.create ~node:3 ~region:"east" () in
  Alcotest.(check (float 1e-9)) "initial" 0. (Mail.Server.last_start srv);
  Mail.Server.note_recovery srv ~at:42.;
  Alcotest.(check (float 1e-9)) "after recovery" 42. (Mail.Server.last_start srv)

let test_server_mailbox_count_and_cleanup () =
  let srv = Mail.Server.create ~mailbox_policy:Mail.Mailbox.Archive ~node:1 ~region:"r" () in
  Mail.Server.store srv (msg ~id:1 ()) ~at:0.;
  let m2 =
    Mail.Message.create ~id:2 ~sender:(nm "bob") ~recipient:(nm "carol")
      ~recipient_uid:2 ~submitted_at:0. ()
  in
  Mail.Server.store srv m2 ~at:0.;
  Alcotest.(check int) "two mailboxes" 2 (Mail.Server.mailbox_count srv);
  ignore (Mail.Server.take srv ~uid:1 ~at:1.);
  ignore (Mail.Server.take srv ~uid:2 ~at:1.);
  let dropped = Mail.Server.cleanup srv ~now:1000. ~max_age:10. in
  Alcotest.(check int) "archives cleaned" 2 dropped

let suite =
  [
    ( "mailstore",
      [
        Alcotest.test_case "message lifecycle" `Quick test_message_lifecycle;
        Alcotest.test_case "message pp" `Quick test_message_pp;
        Alcotest.test_case "mailbox deposit/retrieve" `Quick
          test_mailbox_deposit_retrieve;
        Alcotest.test_case "mailbox peek" `Quick test_mailbox_peek;
        Alcotest.test_case "archive policy" `Quick test_mailbox_archive_policy;
        Alcotest.test_case "cleanup keeps fresh" `Quick test_mailbox_cleanup_keeps_fresh;
        Alcotest.test_case "storage accounting" `Quick test_mailbox_storage;
        Alcotest.test_case "server store/take" `Quick test_server_store_take;
        Alcotest.test_case "server purge" `Quick test_server_purge;
        Alcotest.test_case "server unknown user" `Quick test_server_unknown_user_fetch;
        Alcotest.test_case "LastStartTime" `Quick test_server_last_start;
        Alcotest.test_case "mailboxes and cleanup" `Quick
          test_server_mailbox_count_and_cleanup;
      ] );
  ]
