(* Unit tests of the shared delivery pipeline with stub callbacks —
   isolating the §3.1.2 machinery (now including the quorum
   replication rounds) from any full system. *)

let nm u = Naming.Name.make ~region:"r0" ~host:"H1" ~user:u

(* A two-host / two-server line: H1 - S1 - S2 - H2. *)
let tiny_world () =
  let g = Netsim.Graph.create () in
  let h1 = Netsim.Graph.add_node ~label:"H1" ~kind:Netsim.Graph.Host ~region:"r0" g in
  let s1 = Netsim.Graph.add_node ~label:"S1" ~kind:Netsim.Graph.Server ~region:"r0" g in
  let s2 = Netsim.Graph.add_node ~label:"S2" ~kind:Netsim.Graph.Server ~region:"r0" g in
  let h2 = Netsim.Graph.add_node ~label:"H2" ~kind:Netsim.Graph.Host ~region:"r0" g in
  Netsim.Graph.add_edge g h1 s1 1.;
  Netsim.Graph.add_edge g s1 s2 1.;
  Netsim.Graph.add_edge g s2 h2 1.;
  let engine = Dsim.Engine.create () in
  let trace = Dsim.Trace.create () in
  let counters = Dsim.Stats.Counter.create () in
  let pipeline_ref = ref None in
  let the_pipeline () = Option.get !pipeline_ref in
  let storage =
    Mail.Replica_group.create ~counters
      ~chain_of:(fun _ -> [ s2; s1 ])
      ~is_up:(fun node -> Netsim.Net.is_up (Mail.Pipeline.net (the_pipeline ())) node)
      ()
  in
  Mail.Replica_group.add_holder storage ~node:s1 ~region:"r0";
  Mail.Replica_group.add_holder storage ~node:s2 ~region:"r0";
  let deposits = ref [] in
  let acks = ref [] in
  let intern = Naming.Intern.create () in
  let callbacks =
    {
      Mail.Pipeline.region_servers = (fun r -> if r = "r0" then [ s1; s2 ] else []);
      uid_of = Naming.Intern.intern intern;
      name_of_uid = Naming.Intern.name intern;
      canonical_uid = Fun.id;
      authority_of_uid = (fun _ -> [ s2; s1 ]);
      notify_target_uid = (fun _ -> Some h2);
      submit_servers = (fun _ -> [ s1; s2 ]);
      on_deposit =
        (fun m ~on ~ack ->
          deposits := (m.Mail.Message.id, on) :: !deposits;
          acks := (m.Mail.Message.id, ack) :: !acks);
      cached_authority = (fun ~at:_ _ -> None);
      on_forward_resolved = (fun ~at:_ _ _ -> ());
      on_undeliverable = (fun _ ~reason:_ -> ());
      on_redirected = (fun _ ~old_name:_ -> ());
      on_ctrl = (fun _ ~time:_ ~src:_ () -> ());
    }
  in
  let pipeline =
    Mail.Pipeline.create ~engine ~graph:g ~trace ~counters ~storage
      {
        Mail.Pipeline.default_pipeline_config with
        retry_timeout = 20.;
        resubmit_timeout = 200.;
        max_retries = 20;
      }
      callbacks
  in
  pipeline_ref := Some pipeline;
  (engine, pipeline, counters, deposits, acks, (h1, s1, s2, h2))

let agent h1 =
  Mail.User_agent.create ~name:(nm "alice") ~host:h1 ~authority:[ 1; 2 ] ()

let msg id = Mail.Message.create ~id ~sender:(nm "alice") ~recipient:(nm "bob") ~submitted_at:0. ()

let test_deposit_on_first_active () =
  let engine, pipeline, counters, deposits, acks, (h1, _, s2, _) = tiny_world () in
  let m = msg 1 in
  Mail.Pipeline.submit pipeline ~sender_agent:(agent h1) ~msg:m;
  Dsim.Engine.run engine;
  Alcotest.(check bool) "deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check (list (pair int int))) "on the authority head" [ (1, s2) ] !deposits;
  Alcotest.(check bool) "acked at quorum" true
    (!acks = [ (1, Mail.Pipeline.Quorum) ]);
  Alcotest.(check int) "both chain members hold a copy" 2
    (Dsim.Stats.Counter.get counters "replica_copy_writes");
  Alcotest.(check int) "notified" 1 (Dsim.Stats.Counter.get counters "notifications");
  Alcotest.(check int) "no pendings left" 0 (Mail.Pipeline.pending_count pipeline)

let test_deposit_falls_back () =
  let engine, pipeline, _, deposits, acks, (h1, s1, s2, _) = tiny_world () in
  Netsim.Net.set_down (Mail.Pipeline.net pipeline) s2;
  let m = msg 2 in
  Mail.Pipeline.submit pipeline ~sender_agent:(agent h1) ~msg:m;
  Dsim.Engine.run engine;
  Alcotest.(check bool) "deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check (list (pair int int))) "on the live secondary" [ (2, s1) ] !deposits;
  (* The quorum of the 2-chain is 2 and the primary stayed down, so
     the round exhausts its budget and acks degraded — the mail is
     stored, just under-replicated. *)
  Alcotest.(check bool) "acked degraded" true (!acks = [ (2, Mail.Pipeline.Degraded) ])

let test_retry_after_recovery () =
  let engine, pipeline, counters, _, _, (h1, s1, s2, _) = tiny_world () in
  (* Both servers down at submit: the submit is deferred; recovery at
     t=100 lets the deferred submission complete. *)
  Netsim.Net.set_down (Mail.Pipeline.net pipeline) s1;
  Netsim.Net.set_down (Mail.Pipeline.net pipeline) s2;
  let m = msg 3 in
  Mail.Pipeline.submit pipeline ~sender_agent:(agent h1) ~msg:m;
  ignore
    (Dsim.Engine.schedule_at engine 100. (fun () ->
         Netsim.Net.set_up (Mail.Pipeline.net pipeline) s1;
         Netsim.Net.set_up (Mail.Pipeline.net pipeline) s2));
  Dsim.Engine.run engine;
  Alcotest.(check bool) "eventually deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "submission was deferred" true
    (Dsim.Stats.Counter.get counters "submit_deferred" > 0)

let test_unresolvable_region_counted () =
  let engine, pipeline, counters, _, _, (h1, _, _, _) = tiny_world () in
  let m =
    Mail.Message.create ~id:4 ~sender:(nm "alice")
      ~recipient:(Naming.Name.make ~region:"mars" ~host:"x" ~user:"marvin")
      ~submitted_at:0. ()
  in
  Mail.Pipeline.submit pipeline ~sender_agent:(agent h1) ~msg:m;
  Dsim.Engine.run ~until:150. engine;
  Alcotest.(check bool) "unresolvable counted" true
    (Dsim.Stats.Counter.get counters "unresolvable" > 0);
  Alcotest.(check bool) "not deposited" false (Mail.Message.is_deposited m)

let test_retransmitted_deposit_reacked () =
  (* A finished round must re-acknowledge retransmitted Deposits from
     the completed table instead of reopening replication. *)
  let engine, pipeline, counters, deposits, _, (h1, s1, s2, _) = tiny_world () in
  let m = msg 5 in
  Mail.Pipeline.submit pipeline ~sender_agent:(agent h1) ~msg:m;
  Dsim.Engine.run engine;
  let sends_before = Dsim.Stats.Counter.get counters "replica_replicate_sends" in
  ignore
    (Netsim.Net.send (Mail.Pipeline.net pipeline) ~src:s1 ~dst:s2
       (Mail.Pipeline.Deposit m));
  Dsim.Engine.run engine;
  Alcotest.(check int) "round not reopened" sends_before
    (Dsim.Stats.Counter.get counters "replica_replicate_sends");
  Alcotest.(check int) "on_deposit fired once" 1 (List.length !deposits)

let test_ctrl_dispatch () =
  let g = Netsim.Graph.create () in
  let a = Netsim.Graph.add_node ~kind:Netsim.Graph.Server ~region:"r0" g in
  let b = Netsim.Graph.add_node ~kind:Netsim.Graph.Server ~region:"r0" g in
  Netsim.Graph.add_edge g a b 1.;
  let engine = Dsim.Engine.create () in
  let counters = Dsim.Stats.Counter.create () in
  let got = ref None in
  let storage =
    Mail.Replica_group.create ~counters
      ~chain_of:(fun _ -> [ a ])
      ~is_up:(fun _ -> true)
      ()
  in
  Mail.Replica_group.add_holder storage ~node:a ~region:"r0";
  Mail.Replica_group.add_holder storage ~node:b ~region:"r0";
  let intern = Naming.Intern.create () in
  let callbacks =
    {
      Mail.Pipeline.region_servers = (fun _ -> [ a; b ]);
      uid_of = Naming.Intern.intern intern;
      name_of_uid = Naming.Intern.name intern;
      canonical_uid = Fun.id;
      authority_of_uid = (fun _ -> [ a ]);
      notify_target_uid = (fun _ -> None);
      submit_servers = (fun _ -> [ a ]);
      on_deposit = (fun _ ~on:_ ~ack:_ -> ());
      cached_authority = (fun ~at:_ _ -> None);
      on_forward_resolved = (fun ~at:_ _ _ -> ());
      on_undeliverable = (fun _ ~reason:_ -> ());
      on_redirected = (fun _ ~old_name:_ -> ());
      on_ctrl = (fun node ~time:_ ~src payload -> got := Some (node, src, payload));
    }
  in
  let pipeline =
    Mail.Pipeline.create ~engine ~graph:g ~trace:(Dsim.Trace.create ())
      ~counters ~storage Mail.Pipeline.default_pipeline_config callbacks
  in
  ignore (Netsim.Net.send (Mail.Pipeline.net pipeline) ~src:a ~dst:b (Mail.Pipeline.Ctrl "ping"));
  Dsim.Engine.run engine;
  Alcotest.(check bool) "ctrl delivered" true (!got = Some (b, a, "ping"))

let suite =
  [
    ( "pipeline",
      [
        Alcotest.test_case "deposit on first active" `Quick test_deposit_on_first_active;
        Alcotest.test_case "fallback to secondary" `Quick test_deposit_falls_back;
        Alcotest.test_case "retry after recovery" `Quick test_retry_after_recovery;
        Alcotest.test_case "unresolvable region" `Quick test_unresolvable_region_counted;
        Alcotest.test_case "retransmitted deposit re-acked" `Quick
          test_retransmitted_deposit_reacked;
        Alcotest.test_case "ctrl dispatch" `Quick test_ctrl_dispatch;
      ] );
  ]
