(* Scenario-level regression tests: the paper's quantitative claims
   (C1/C2/C6) hold on every run. *)

let fig1 = Netsim.Topology.paper_fig1

let small_spec =
  {
    Mail.Scenario.default_spec with
    duration = 2000.;
    mail_count = 120;
    check_period = 80.;
  }

let test_no_failures_lossless_and_one_poll () =
  let o = Mail.Scenario.run_syntax (fig1 ()) small_spec in
  let r = o.Mail.Scenario.report in
  Alcotest.(check int) "all deposited" 0 r.Mail.Evaluation.undelivered;
  Alcotest.(check int) "all retrieved" 0 r.Mail.Evaluation.unretrieved;
  Alcotest.(check int) "inbox total equals traffic" 120 o.Mail.Scenario.inbox_total;
  (* the paper's headline: ~1 poll per retrieval under normal conditions *)
  Alcotest.(check bool) "polls/check near 1" true
    (o.Mail.Scenario.final_polls_per_check < 1.15);
  Alcotest.(check (float 1e-9)) "fully available" 1. o.Mail.Scenario.availability

let test_failures_still_lossless () =
  let spec = { small_spec with failure_rate = 0.002; mean_outage = 120. } in
  let o = Mail.Scenario.run_syntax (fig1 ()) spec in
  let r = o.Mail.Scenario.report in
  Alcotest.(check bool) "servers actually failed" true
    (o.Mail.Scenario.server_uptime < 1.);
  Alcotest.(check int) "zero undelivered" 0 r.Mail.Evaluation.undelivered;
  Alcotest.(check int) "zero unretrieved" 0 r.Mail.Evaluation.unretrieved;
  Alcotest.(check int) "every message reached an inbox" 120 o.Mail.Scenario.inbox_total;
  Alcotest.(check bool) "polls rise under failures" true
    (o.Mail.Scenario.final_polls_per_check > 1.0)

let test_polls_monotone_in_failure_rate () =
  let run rate =
    let spec = { small_spec with failure_rate = rate } in
    (Mail.Scenario.run_syntax (fig1 ()) spec).Mail.Scenario.final_polls_per_check
  in
  let p0 = run 0.0 and p1 = run 0.004 in
  Alcotest.(check bool) "more failures, more polls" true (p1 > p0)

let test_getmail_beats_poll_all () =
  let run mode =
    let spec = { small_spec with failure_rate = 0.002; retrieval = mode } in
    Mail.Scenario.run_syntax (fig1 ()) spec
  in
  let gm = run Mail.Scenario.Get_mail in
  let pa = run Mail.Scenario.Poll_all in
  Alcotest.(check bool) "fewer polls" true
    (gm.Mail.Scenario.final_polls_per_check < pa.Mail.Scenario.final_polls_per_check);
  (* poll-all always pays the full list *)
  Alcotest.(check bool) "poll-all = replication" true
    (Float.abs (pa.Mail.Scenario.final_polls_per_check -. 3.) < 1e-9);
  (* both are lossless *)
  Alcotest.(check int) "getmail lossless" 0
    gm.Mail.Scenario.report.Mail.Evaluation.unretrieved;
  Alcotest.(check int) "poll-all lossless" 0
    pa.Mail.Scenario.report.Mail.Evaluation.unretrieved

let test_naive_loses_mail_under_failures () =
  let spec =
    { small_spec with failure_rate = 0.004; seed = 3; retrieval = Mail.Scenario.Naive }
  in
  let o = Mail.Scenario.run_syntax (fig1 ()) spec in
  (* The lossy baseline leaves stranded mail behind (this seed makes it
     deterministic). *)
  Alcotest.(check bool) "naive strands mail" true
    (o.Mail.Scenario.report.Mail.Evaluation.unretrieved > 0)

let test_deterministic_runs () =
  let o1 = Mail.Scenario.run_syntax (fig1 ()) small_spec in
  let o2 = Mail.Scenario.run_syntax (fig1 ()) small_spec in
  Alcotest.(check (float 1e-9)) "same polls"
    o1.Mail.Scenario.final_polls_per_check o2.Mail.Scenario.final_polls_per_check;
  Alcotest.(check int) "same traffic"
    o1.Mail.Scenario.report.Mail.Evaluation.messages_sent
    o2.Mail.Scenario.report.Mail.Evaluation.messages_sent

let hier_site seed =
  let rng = Dsim.Rng.create seed in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }

let test_location_roaming_overhead () =
  let spec = { small_spec with mail_count = 80 } in
  let fixed = Mail.Scenario.run_location ~roam_probability:0.0 (hier_site 11) spec in
  let roaming = Mail.Scenario.run_location ~roam_probability:0.4 (hier_site 11) spec in
  (* §3.2.2c: "overhead is only incurred if a user moves". *)
  Alcotest.(check bool) "roaming costs more messages" true
    (roaming.Mail.Scenario.report.Mail.Evaluation.messages_sent
    > fixed.Mail.Scenario.report.Mail.Evaluation.messages_sent);
  Alcotest.(check int) "fixed lossless" 0
    fixed.Mail.Scenario.report.Mail.Evaluation.unretrieved;
  Alcotest.(check int) "roaming lossless" 0
    roaming.Mail.Scenario.report.Mail.Evaluation.unretrieved

let test_large_hierarchy_stress () =
  (* A heavyweight end-to-end run: 5 regions, 150 users, 800 messages,
     server failures, multimedia sizes — everything must still arrive. *)
  let rng = Dsim.Rng.create 2026 in
  let spec_h = { Netsim.Topology.default_hierarchy with regions = 5 } in
  let g = Netsim.Topology.hierarchical ~rng spec_h in
  let hosts = Netsim.Graph.nodes_of_kind g Netsim.Graph.Host in
  let servers = Netsim.Graph.nodes_of_kind g Netsim.Graph.Server in
  let site =
    { Netsim.Topology.graph = g; hosts = List.map (fun h -> (h, 10)) hosts; servers }
  in
  let spec =
    {
      Mail.Scenario.default_spec with
      seed = 17;
      duration = 8000.;
      mail_count = 800;
      check_period = 150.;
      failure_rate = 0.0005;
    }
  in
  let o = Mail.Scenario.run_syntax site spec in
  let r = o.Mail.Scenario.report in
  Alcotest.(check bool) "failures occurred" true (o.Mail.Scenario.server_uptime < 1.);
  Alcotest.(check int) "zero undelivered" 0 r.Mail.Evaluation.undelivered;
  Alcotest.(check int) "zero unretrieved" 0 r.Mail.Evaluation.unretrieved;
  Alcotest.(check int) "every message in an inbox" 800 o.Mail.Scenario.inbox_total;
  Alcotest.(check bool) "cross-region forwarding happened" true
    (r.Mail.Evaluation.mean_forward_hops > 0.5)

let test_metric_name_parity () =
  (* The three designs are only comparable if their registries expose
     the same measurement surface: identical metric names, labels
     aside. *)
  let spec = { small_spec with mail_count = 80; failure_rate = 0.002 } in
  let syn = Mail.Scenario.run_syntax (fig1 ()) spec in
  let loc = Mail.Scenario.run_location ~roam_probability:0.2 (hier_site 11) spec in
  let names o = Telemetry.Registry.metric_names o.Mail.Scenario.metrics in
  Alcotest.(check (list string)) "syntax/location same metric names" (names syn)
    (names loc);
  let att = Mail.Scenario.run_attribute ~roam_probability:0.1 (hier_site 11) spec in
  Alcotest.(check (list string)) "attribute matches too" (names syn) (names att);
  (* typed registry access replaced the old stringly counter shim *)
  Alcotest.(check bool) "typed counter access works" true
    (Telemetry.Registry.get_counter syn.Mail.Scenario.metrics "polls" > 0)

let test_arpanet_mail () =
  (* A full mail scenario over the 1977 ARPANET backbone: BBN, UCLA
     and Illinois serve mail for the other seventeen sites. *)
  let site = Netsim.Topology.arpanet_mail_site () in
  let spec =
    {
      Mail.Scenario.default_spec with
      seed = 1969;
      duration = 6000.;
      mail_count = 400;
      check_period = 200.;
      failure_rate = 0.0003;
    }
  in
  let o = Mail.Scenario.run_syntax site spec in
  let r = o.Mail.Scenario.report in
  Alcotest.(check int) "zero undelivered" 0 r.Mail.Evaluation.undelivered;
  Alcotest.(check int) "zero unretrieved" 0 r.Mail.Evaluation.unretrieved;
  Alcotest.(check int) "every message landed" 400 o.Mail.Scenario.inbox_total;
  Alcotest.(check bool) "coast-to-coast traffic forwarded" true
    (r.Mail.Evaluation.mean_forward_hops > 0.1)

let suite =
  [
    ( "scenario",
      [
        Alcotest.test_case "C1: lossless, ~1 poll, no failures" `Slow
          test_no_failures_lossless_and_one_poll;
        Alcotest.test_case "C1: lossless under failures" `Slow
          test_failures_still_lossless;
        Alcotest.test_case "C1: polls monotone in failure rate" `Slow
          test_polls_monotone_in_failure_rate;
        Alcotest.test_case "C2: GetMail beats poll-all" `Slow test_getmail_beats_poll_all;
        Alcotest.test_case "C2: naive baseline strands mail" `Slow
          test_naive_loses_mail_under_failures;
        Alcotest.test_case "determinism" `Slow test_deterministic_runs;
        Alcotest.test_case "C6: roaming overhead" `Slow test_location_roaming_overhead;
        Alcotest.test_case "metric-name parity across designs" `Slow
          test_metric_name_parity;
        Alcotest.test_case "large hierarchy stress" `Slow test_large_hierarchy_stress;
        Alcotest.test_case "mail over the 1977 ARPANET" `Slow test_arpanet_mail;
      ] );
  ]
