(* Tests for topology generators. *)

let test_paper_fig1 () =
  let site = Netsim.Topology.paper_fig1 () in
  let g = site.Netsim.Topology.graph in
  Alcotest.(check int) "nodes" 9 (Netsim.Graph.node_count g);
  Alcotest.(check int) "edges" 8 (Netsim.Graph.edge_count g);
  Alcotest.(check int) "hosts" 6 (List.length site.hosts);
  Alcotest.(check int) "servers" 3 (List.length site.servers);
  Alcotest.(check (list int)) "populations"
    [ 50; 60; 50; 50; 40; 20 ]
    (List.map snd site.hosts);
  Alcotest.(check bool) "connected" true (Netsim.Graph.is_connected g);
  (* all links unit weight *)
  List.iter
    (fun (_, _, w) -> Alcotest.(check (float 1e-9)) "unit weight" 1. w)
    (Netsim.Graph.edges g)

let test_paper_table3 () =
  let site = Netsim.Topology.paper_table3 () in
  Alcotest.(check (list int)) "populations" [ 100; 100; 20 ] (List.map snd site.hosts);
  Alcotest.(check int) "servers" 3 (List.length site.servers)

let test_line_ring_star_grid () =
  let line = Netsim.Topology.line ~n:4 ~weight:1. in
  Alcotest.(check int) "line edges" 3 (Netsim.Graph.edge_count line);
  let ring = Netsim.Topology.ring ~n:6 ~weight:1. in
  Alcotest.(check int) "ring edges" 6 (Netsim.Graph.edge_count ring);
  List.iter
    (fun v -> Alcotest.(check int) "ring degree" 2 (Netsim.Graph.degree ring v))
    (Netsim.Graph.nodes ring);
  let star = Netsim.Topology.star ~leaves:7 ~weight:1. in
  Alcotest.(check int) "star hub degree" 7 (Netsim.Graph.degree star 0);
  let grid = Netsim.Topology.grid ~rows:3 ~cols:4 ~weight:1. in
  Alcotest.(check int) "grid nodes" 12 (Netsim.Graph.node_count grid);
  Alcotest.(check int) "grid edges" 17 (Netsim.Graph.edge_count grid);
  Alcotest.(check bool) "grid connected" true (Netsim.Graph.is_connected grid)

let test_generator_bad_args () =
  let expect_invalid f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> ignore (Netsim.Topology.line ~n:0 ~weight:1.));
  expect_invalid (fun () -> ignore (Netsim.Topology.ring ~n:2 ~weight:1.));
  expect_invalid (fun () -> ignore (Netsim.Topology.star ~leaves:0 ~weight:1.));
  expect_invalid (fun () -> ignore (Netsim.Topology.grid ~rows:0 ~cols:3 ~weight:1.))

let prop_random_connected =
  QCheck.Test.make ~name:"random_connected is connected with requested extras"
    ~count:50
    QCheck.(pair (int_range 1 50) (int_range 0 60))
    (fun (n, extra) ->
      let rng = Dsim.Rng.create (n + (1000 * extra)) in
      let g =
        Netsim.Topology.random_connected ~rng ~n ~extra_edges:extra ~min_weight:1.
          ~max_weight:2.
      in
      let max_edges = n * (n - 1) / 2 in
      Netsim.Graph.is_connected g
      && Netsim.Graph.node_count g = n
      && Netsim.Graph.edge_count g = min max_edges (n - 1 + extra))

let test_random_mail_site () =
  let rng = Dsim.Rng.create 5 in
  let site =
    Netsim.Topology.random_mail_site ~rng ~hosts:10 ~servers:3
      ~users_per_host:(20, 40) ~extra_edges:6
  in
  Alcotest.(check int) "hosts" 10 (List.length site.hosts);
  Alcotest.(check int) "servers" 3 (List.length site.servers);
  Alcotest.(check bool) "connected" true (Netsim.Graph.is_connected site.graph);
  List.iter
    (fun (_, pop) ->
      if pop < 20 || pop > 40 then Alcotest.failf "population out of range: %d" pop)
    site.hosts

let test_hierarchical_structure () =
  let rng = Dsim.Rng.create 6 in
  let spec = Netsim.Topology.default_hierarchy in
  let g = Netsim.Topology.hierarchical ~rng spec in
  Alcotest.(check bool) "connected" true (Netsim.Graph.is_connected g);
  Alcotest.(check (list string)) "regions" [ "r0"; "r1"; "r2" ] (Netsim.Graph.regions g);
  let per_region =
    spec.Netsim.Topology.hosts_per_region + spec.servers_per_region
    + spec.gateways_per_region
  in
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "size of %s" r)
        per_region
        (List.length (Netsim.Graph.nodes_in_region g r)))
    (Netsim.Graph.regions g);
  (* every region's induced subgraph is internally connected *)
  List.iter
    (fun r ->
      let sub, _ = Netsim.Graph.subgraph g (Netsim.Graph.nodes_in_region g r) in
      Alcotest.(check bool) (r ^ " internally connected") true
        (Netsim.Graph.is_connected sub))
    (Netsim.Graph.regions g)

let test_arpanet () =
  let g = Netsim.Topology.arpanet () in
  Alcotest.(check int) "twenty sites" 20 (Netsim.Graph.node_count g);
  Alcotest.(check bool) "connected" true (Netsim.Graph.is_connected g);
  Alcotest.(check (list string)) "three coasts" [ "central"; "east"; "west" ]
    (Netsim.Graph.regions g);
  (* a couple of famous sites exist and are linked *)
  let by_label l =
    List.find (fun v -> Netsim.Graph.label g v = l) (Netsim.Graph.nodes g)
  in
  Alcotest.(check bool) "MIT-BBN link" true
    (Netsim.Graph.mem_edge g (by_label "MIT") (by_label "BBN"));
  Alcotest.(check bool) "UCLA-SRI link" true
    (Netsim.Graph.mem_edge g (by_label "UCLA") (by_label "SRI"))

let test_ghs_levels_bounded () =
  let g = Netsim.Topology.arpanet () in
  let d = Mst.Ghs.run g in
  Alcotest.(check bool) "levels within ceil(log2 N)" true
    (d.Mst.Ghs.max_level
    <= int_of_float (Float.ceil (Float.log2 (float_of_int (Netsim.Graph.node_count g)))))

let test_sized_hierarchy_degree () =
  let spec =
    Netsim.Topology.sized_hierarchy ~regions:5 ~hosts_per_region:9
      ~servers_per_region:3 ~degree:8.0 ()
  in
  let rng = Dsim.Rng.create 11 in
  let g = Netsim.Topology.hierarchical ~rng spec in
  Alcotest.(check bool) "connected" true (Netsim.Graph.is_connected g);
  Alcotest.(check int) "node count" (5 * (9 + 3 + 2)) (Netsim.Graph.node_count g);
  (* The spec derives intra-region edge counts from the target average
     degree; backbone links push the realised mean slightly above it. *)
  let avg =
    2. *. float_of_int (Netsim.Graph.edge_count g)
    /. float_of_int (Netsim.Graph.node_count g)
  in
  if avg < 7.5 || avg > 9.5 then
    Alcotest.failf "average degree %.2f not near target 8.0" avg

let test_sized_hierarchy_bad_args () =
  let expect_invalid f =
    try
      f ();
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () ->
      ignore
        (Netsim.Topology.sized_hierarchy ~regions:0 ~hosts_per_region:4
           ~servers_per_region:1 ()));
  expect_invalid (fun () ->
      ignore
        (Netsim.Topology.sized_hierarchy ~regions:2 ~hosts_per_region:0
           ~servers_per_region:1 ()));
  expect_invalid (fun () ->
      ignore
        (Netsim.Topology.sized_hierarchy ~regions:2 ~hosts_per_region:4
           ~servers_per_region:1 ~degree:1.5 ()))

let test_scale_site () =
  let spec =
    Netsim.Topology.sized_hierarchy ~regions:3 ~hosts_per_region:5
      ~servers_per_region:2 ()
  in
  let site = Netsim.Topology.scale_site ~rng:(Dsim.Rng.create 21) ~users_per_host:7 spec in
  let g = site.Netsim.Topology.graph in
  Alcotest.(check int) "hosts" 15 (List.length site.hosts);
  Alcotest.(check int) "servers" 6 (List.length site.servers);
  List.iter
    (fun (h, pop) ->
      Alcotest.(check bool) "host kind" true (Netsim.Graph.kind g h = Netsim.Graph.Host);
      Alcotest.(check int) "population" 7 pop)
    site.hosts;
  List.iter
    (fun s ->
      Alcotest.(check bool) "server kind" true
        (Netsim.Graph.kind g s = Netsim.Graph.Server))
    site.servers;
  (* Same seed, same site — the generator must be deterministic. *)
  let again = Netsim.Topology.scale_site ~rng:(Dsim.Rng.create 21) ~users_per_host:7 spec in
  Alcotest.(check bool) "deterministic edges" true
    (Netsim.Graph.edges g = Netsim.Graph.edges again.Netsim.Topology.graph);
  Alcotest.(check bool) "deterministic hosts" true (site.hosts = again.hosts)

let test_region_of_gateways () =
  let rng = Dsim.Rng.create 7 in
  let g = Netsim.Topology.hierarchical ~rng Netsim.Topology.default_hierarchy in
  let groups = Netsim.Topology.region_of_gateways g in
  Alcotest.(check int) "three regions" 3 (List.length groups);
  List.iter
    (fun (_, gws) ->
      Alcotest.(check int) "gateways per region" 2 (List.length gws))
    groups

let suite =
  [
    ( "topology",
      [
        Alcotest.test_case "paper Fig.1 site" `Quick test_paper_fig1;
        Alcotest.test_case "paper Table 3 site" `Quick test_paper_table3;
        Alcotest.test_case "line/ring/star/grid" `Quick test_line_ring_star_grid;
        Alcotest.test_case "generator bad args" `Quick test_generator_bad_args;
        QCheck_alcotest.to_alcotest prop_random_connected;
        Alcotest.test_case "random mail site" `Quick test_random_mail_site;
        Alcotest.test_case "hierarchical structure" `Quick test_hierarchical_structure;
        Alcotest.test_case "ARPANET backbone" `Quick test_arpanet;
        Alcotest.test_case "GHS levels bounded on ARPANET" `Quick test_ghs_levels_bounded;
        Alcotest.test_case "sized hierarchy degree" `Quick test_sized_hierarchy_degree;
        Alcotest.test_case "sized hierarchy bad args" `Quick
          test_sized_hierarchy_bad_args;
        Alcotest.test_case "scale site" `Quick test_scale_site;
        Alcotest.test_case "region_of_gateways" `Quick test_region_of_gateways;
      ] );
  ]
