(* Tests for the bounded trace log. *)

let test_add_and_read () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.infof t ~time:1. ~category:"net" "hello %d" 42;
  Dsim.Trace.warnf t ~time:2. ~category:"mail" "oops";
  let records = Dsim.Trace.records t in
  Alcotest.(check int) "count" 2 (List.length records);
  let first = List.hd records in
  Alcotest.(check string) "message" "hello 42" first.Dsim.Trace.message;
  Alcotest.(check string) "category" "net" first.Dsim.Trace.category;
  Alcotest.(check bool) "level" true (first.Dsim.Trace.level = Dsim.Trace.Info)

let test_capacity_ring () =
  let t = Dsim.Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Dsim.Trace.infof t ~time:(float_of_int i) ~category:"c" "m%d" i
  done;
  let records = Dsim.Trace.records t in
  Alcotest.(check int) "retained" 3 (List.length records);
  Alcotest.(check (list string)) "kept newest"
    [ "m3"; "m4"; "m5" ]
    (List.map (fun r -> r.Dsim.Trace.message) records);
  Alcotest.(check int) "total counts all" 5 (Dsim.Trace.total t)

let test_count_filters () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.infof t ~time:0. ~category:"a" "x";
  Dsim.Trace.infof t ~time:0. ~category:"b" "y";
  Dsim.Trace.errorf t ~time:0. ~category:"a" "z";
  Alcotest.(check int) "by category" 2 (Dsim.Trace.count ~category:"a" t);
  Alcotest.(check int) "by level" 1 (Dsim.Trace.count ~level:Dsim.Trace.Error t);
  Alcotest.(check int) "both" 1
    (Dsim.Trace.count ~category:"a" ~level:Dsim.Trace.Error t);
  Alcotest.(check int) "all" 3 (Dsim.Trace.count t)

let test_clear () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.debugf t ~time:0. ~category:"c" "gone";
  Dsim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Dsim.Trace.records t));
  Alcotest.(check int) "total reset" 0 (Dsim.Trace.total t)

(* Tiny local substring helper to avoid a dependency. *)
let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

let test_pp_smoke () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.infof t ~time:1.5 ~category:"cat" "msg";
  let s = Format.asprintf "%a" Dsim.Trace.pp t in
  Alcotest.(check bool) "mentions category" true (contains s "cat")

let test_iter_fold () =
  let t = Dsim.Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Dsim.Trace.infof t ~time:(float_of_int i) ~category:"c" "m%d" i
  done;
  (* iter and fold agree with [records], including across the ring's
     wrap-around. *)
  let seen = ref [] in
  Dsim.Trace.iter (fun r -> seen := r.Dsim.Trace.message :: !seen) t;
  Alcotest.(check (list string)) "iter oldest first" [ "m3"; "m4"; "m5" ]
    (List.rev !seen);
  Alcotest.(check int) "fold counts retained" 3
    (Dsim.Trace.fold (fun acc _ -> acc + 1) 0 t);
  Alcotest.(check string) "fold sees messages in order" "m3m4m5"
    (Dsim.Trace.fold (fun acc r -> acc ^ r.Dsim.Trace.message) "" t)

let test_json_export () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.infof t ~time:1.25 ~category:"net" "plain";
  Dsim.Trace.errorf t ~time:2. ~category:"mail" "quote \" slash \\ tab \t done";
  (* the output must be real JSON: round-trip through the telemetry
     parser and check the fields survive, escapes included *)
  match Telemetry.Json.of_string (Dsim.Trace.to_json t) with
  | Telemetry.Json.List [ first; second ] ->
      let str name j =
        match Telemetry.Json.member name j with
        | Some (Telemetry.Json.String s) -> s
        | _ -> Alcotest.failf "field %s missing" name
      in
      Alcotest.(check string) "category" "net" (str "category" first);
      Alcotest.(check string) "level" "info" (str "level" first);
      Alcotest.(check string) "message" "plain" (str "message" first);
      Alcotest.(check string) "escapes round-trip"
        "quote \" slash \\ tab \t done" (str "message" second);
      Alcotest.(check string) "error level" "error" (str "level" second);
      (match Telemetry.Json.member "time" first with
      | Some (Telemetry.Json.Float v) -> Alcotest.(check (float 1e-9)) "time" 1.25 v
      | _ -> Alcotest.fail "time missing")
  | _ -> Alcotest.fail "expected a two-element JSON array"

let test_json_empty () =
  let t = Dsim.Trace.create () in
  Alcotest.(check string) "empty log is an empty array" "[]" (Dsim.Trace.to_json t)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "add and read" `Quick test_add_and_read;
        Alcotest.test_case "ring buffer capacity" `Quick test_capacity_ring;
        Alcotest.test_case "count filters" `Quick test_count_filters;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        Alcotest.test_case "iter and fold" `Quick test_iter_fold;
        Alcotest.test_case "JSON export round-trips" `Quick test_json_export;
        Alcotest.test_case "JSON export of empty log" `Quick test_json_empty;
      ] );
  ]
