(* Route-cache oracle: replay a seeded stream of link cuts/restores
   interleaved with route queries against a scoped-invalidation
   network, and after every query compare the cached shortest-path
   tree byte-for-byte against a fresh full Dijkstra over the same
   outage set.  The dune rule runs this under OCAMLRUNPARAM=R
   (randomized Hashtbl seeds), so any hash-iteration-order dependence
   in the dependency index or the improvement check would break the
   comparison across runs.

   Exits 0 after printing a one-line summary; exits 1 with a
   diagnostic on the first divergence. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check_tree net g src =
  let cached = Netsim.Net.tree net src in
  let fresh =
    Netsim.Shortest_path.dijkstra
      ~usable:(fun u v -> Netsim.Net.link_is_up net u v)
      g src
  in
  let n = Netsim.Graph.node_count g in
  for v = 0 to n - 1 do
    (* Exact float equality on purpose: the caches must agree to the
       last bit, including [infinity] for unreachable nodes. *)
    if not (Float.equal cached.Netsim.Shortest_path.dist.(v)
              fresh.Netsim.Shortest_path.dist.(v))
    then
      fail "oracle: dist mismatch src=%d v=%d cached=%h fresh=%h" src v
        cached.Netsim.Shortest_path.dist.(v)
        fresh.Netsim.Shortest_path.dist.(v);
    if cached.Netsim.Shortest_path.prev.(v) <> fresh.Netsim.Shortest_path.prev.(v)
    then
      fail "oracle: prev mismatch src=%d v=%d cached=%d fresh=%d" src v
        cached.Netsim.Shortest_path.prev.(v)
        fresh.Netsim.Shortest_path.prev.(v)
  done;
  let fresh_hops = Netsim.Shortest_path.first_hops fresh in
  for dst = 0 to n - 1 do
    let cached_hop =
      match Netsim.Net.first_hop net ~src ~dst with Some h -> h | None -> -1
    in
    if cached_hop <> fresh_hops.(dst) then
      fail "oracle: first-hop mismatch src=%d dst=%d cached=%d fresh=%d" src dst
        cached_hop fresh_hops.(dst)
  done

let () =
  let rng = Dsim.Rng.create 4242 in
  let spec =
    Netsim.Topology.sized_hierarchy ~regions:4 ~hosts_per_region:10
      ~servers_per_region:3 ~degree:8.0 ()
  in
  let g = (Netsim.Topology.scale_site ~rng spec).Netsim.Topology.graph in
  let n = Netsim.Graph.node_count g in
  let edges = Array.of_list (Netsim.Graph.edges g) in
  let engine = Dsim.Engine.create () in
  let net = (Netsim.Net.create ~engine g : unit Netsim.Net.t) in
  let flips = Dsim.Rng.create 1988 in
  let down = Queue.create () in
  let is_down = Hashtbl.create 16 in
  let queries = ref 0 in
  for _step = 1 to 500 do
    (* Keep at most 4 links down so the network stays recognisable;
       restore oldest-first, exactly like an outage/repair process. *)
    (if Queue.length down >= 4 then begin
       let u, v = Queue.pop down in
       Hashtbl.remove is_down (u, v);
       Netsim.Net.set_link_up net u v
     end
     else
       let u, v, _ = edges.(Dsim.Rng.int flips (Array.length edges)) in
       if not (Hashtbl.mem is_down (u, v)) then begin
         Hashtbl.replace is_down (u, v) ();
         Queue.push (u, v) down;
         Netsim.Net.set_link_down net u v
       end);
    for _q = 1 to 3 do
      incr queries;
      check_tree net g (Dsim.Rng.int flips n)
    done
  done;
  Printf.printf
    "route oracle: %d queries byte-identical to fresh Dijkstra \
     (%d recomputes, %d cache hits, %d invalidations)\n"
    !queries
    (Netsim.Net.route_recomputes net)
    (Netsim.Net.route_cache_hits net)
    (Netsim.Net.route_invalidations net)
