(* Tests for Netsim.Net's scoped route-cache invalidation: the
   dependency index, the link-restore improvement check, the next-hop
   table, equivalence with full invalidation, the recompute saving the
   scoped policy must deliver under an outage/repair process like the
   standard campaign's, and the counters a faulted scenario run must
   publish. *)

(* Diamond: 0-1-2-3 unit chain plus a heavy 0-3 chord, so the chord is
   on nobody's shortest-path tree until the chain is cut. *)
let diamond () =
  let g = Netsim.Graph.create () in
  for _ = 0 to 3 do
    ignore (Netsim.Graph.add_node g)
  done;
  Netsim.Graph.add_edge g 0 1 1.;
  Netsim.Graph.add_edge g 1 2 1.;
  Netsim.Graph.add_edge g 2 3 1.;
  Netsim.Graph.add_edge g 0 3 10.;
  g

let make ?invalidation g =
  let engine = Dsim.Engine.create () in
  (Netsim.Net.create ~engine ?invalidation g : unit Netsim.Net.t)

let test_unused_link_cut_keeps_cache () =
  let net = make (diamond ()) in
  Alcotest.(check int) "hops before" 3 (Netsim.Net.hops net 0 3);
  let recomputes = Netsim.Net.route_recomputes net in
  (* The 0-3 chord is not on source 0's tree: cutting it must leave
     the cached tree alone. *)
  Netsim.Net.set_link_down net 0 3;
  Alcotest.(check int) "no invalidation" 0 (Netsim.Net.route_invalidations net);
  Alcotest.(check int) "hops unchanged" 3 (Netsim.Net.hops net 0 3);
  Alcotest.(check int) "answered from cache" recomputes
    (Netsim.Net.route_recomputes net)

let test_used_link_cut_drops_dependents () =
  let net = make (diamond ()) in
  ignore (Netsim.Net.hops net 0 3);
  ignore (Netsim.Net.hops net 3 0);
  (* Both trees route over 1-2.  Repair is lazy: the cut alone logs a
     flip, and each dependent tree is repaired on its next query. *)
  Netsim.Net.set_link_down net 1 2;
  Alcotest.(check int) "cut alone repairs nothing" 0
    (Netsim.Net.route_invalidations net);
  Alcotest.(check int) "rerouted over the chord" 1 (Netsim.Net.hops net 0 3);
  Alcotest.(check (float 1e-9)) "detour distance" 10. (Netsim.Net.distance net 0 3);
  ignore (Netsim.Net.hops net 3 0);
  Alcotest.(check int) "both repaired once queried" 2
    (Netsim.Net.route_invalidations net)

let test_restore_improvement_check () =
  let net = make (diamond ()) in
  ignore (Netsim.Net.hops net 0 3);
  (* Cutting and restoring the unused chord is invisible both ways:
     restoring an edge that cannot shorten anything keeps the cache. *)
  Netsim.Net.set_link_down net 0 3;
  Netsim.Net.set_link_up net 0 3;
  Alcotest.(check int) "chord restore keeps cache" 0
    (Netsim.Net.route_invalidations net);
  (* Force the detour, then restore the chain link: now the restored
     edge strictly improves the cached route and must drop it. *)
  Netsim.Net.set_link_down net 1 2;
  Alcotest.(check int) "detour" 1 (Netsim.Net.hops net 0 3);
  let drops = Netsim.Net.route_invalidations net in
  Netsim.Net.set_link_up net 1 2;
  Alcotest.(check int) "short route back" 3 (Netsim.Net.hops net 0 3);
  Alcotest.(check bool) "improving restore repaired on query" true
    (Netsim.Net.route_invalidations net > drops)

let test_first_hop () =
  let net = make (diamond ()) in
  Alcotest.(check (option int)) "via chain" (Some 1)
    (Netsim.Net.first_hop net ~src:0 ~dst:3);
  Alcotest.(check (option int)) "self" None (Netsim.Net.first_hop net ~src:0 ~dst:0);
  Netsim.Net.set_link_down net 1 2;
  Alcotest.(check (option int)) "via chord after cut" (Some 3)
    (Netsim.Net.first_hop net ~src:0 ~dst:3);
  Netsim.Net.set_link_down net 0 3;
  Alcotest.(check (option int)) "unreachable" None
    (Netsim.Net.first_hop net ~src:0 ~dst:3)

(* Dense scale topology: the scoped/full recompute ratio converges to
   roughly E/(n-1) — the chance a cut link sits on a given tree — so
   the saving needs average degree comfortably above 2x the target
   ratio. *)
let scale_graph () =
  let rng = Dsim.Rng.create 4242 in
  let spec =
    Netsim.Topology.sized_hierarchy ~regions:4 ~hosts_per_region:16
      ~servers_per_region:3 ~degree:16.0 ()
  in
  (Netsim.Topology.scale_site ~rng spec).Netsim.Topology.graph

(* Replay one deterministic flip/query trace against a net and return
   (answers, recomputes).  Sharing the trace between policies makes
   their answer streams directly comparable. *)
let replay trace net =
  let answers = ref [] in
  List.iter
    (fun step ->
      match step with
      | `Down (u, v) -> Netsim.Net.set_link_down net u v
      | `Up (u, v) -> Netsim.Net.set_link_up net u v
      | `Query (src, dst) -> answers := Netsim.Net.hops net src dst :: !answers)
    trace;
  (List.rev !answers, Netsim.Net.route_recomputes net)

(* Cut/restore windows (at most [concurrent] links down at once, like
   a real outage process) interleaved with queries from a handful of
   hot sources — the access pattern scoped invalidation is built for. *)
let make_trace g ~steps ~hot ~seed ~concurrent =
  let rng = Dsim.Rng.create seed in
  let edges = Array.of_list (Netsim.Graph.edges g) in
  let n = Netsim.Graph.node_count g in
  let down = Queue.create () in
  let is_down = Hashtbl.create 16 in
  let trace = ref [] in
  for _ = 1 to steps do
    if Queue.length down >= concurrent then begin
      let u, v = Queue.pop down in
      Hashtbl.remove is_down (u, v);
      trace := `Up (u, v) :: !trace
    end
    else begin
      let u, v, _ = edges.(Dsim.Rng.int rng (Array.length edges)) in
      if not (Hashtbl.mem is_down (u, v)) then begin
        Hashtbl.replace is_down (u, v) ();
        Queue.push (u, v) down;
        trace := `Down (u, v) :: !trace
      end
    end;
    List.iter
      (fun src -> trace := `Query (src, Dsim.Rng.int rng n) :: !trace)
      hot
  done;
  List.rev !trace

let test_scoped_equals_full () =
  let g = scale_graph () in
  let trace = make_trace g ~steps:300 ~hot:[ 0; 17; 33; 50; 71 ] ~seed:97 ~concurrent:3 in
  let scoped, _ = replay trace (make ~invalidation:Netsim.Net.Scoped g) in
  let full, _ = replay trace (make ~invalidation:Netsim.Net.Full g) in
  Alcotest.(check (list int)) "identical routing answers" full scoped

let test_recompute_saving () =
  (* The tentpole claim: on the scale topology, with per-source query
     traffic dense relative to link flips, scoped invalidation redoes
     at least 5x less Dijkstra work than whole-cache invalidation for
     byte-identical answers. *)
  let g = scale_graph () in
  let trace = make_trace g ~steps:400 ~hot:[ 3; 21; 40; 58; 66 ] ~seed:2024 ~concurrent:3 in
  let scoped_answers, scoped = replay trace (make ~invalidation:Netsim.Net.Scoped g) in
  let full_answers, full = replay trace (make ~invalidation:Netsim.Net.Full g) in
  Alcotest.(check (list int)) "same answers" full_answers scoped_answers;
  Alcotest.(check bool)
    (Printf.sprintf "scoped %d vs full %d recomputes (need 5x)" scoped full)
    true
    (scoped * 5 <= full)

let test_counters_exposed_via_registry () =
  (* End-to-end: a faulted scenario run must surface the route-cache
     counters through the telemetry registry. *)
  let rng = Dsim.Rng.create 8 in
  let site =
    Netsim.Topology.scale_site ~rng
      (Netsim.Topology.sized_hierarchy ~regions:3 ~hosts_per_region:4
         ~servers_per_region:2 ())
  in
  let spec =
    {
      Mail.Scenario.default_spec with
      seed = 3;
      mail_count = 60;
      duration = 2000.;
      faults = Some Netsim.Fault.standard;
    }
  in
  let o = Mail.Scenario.run_syntax site spec in
  let counter = Telemetry.Registry.get_counter o.Mail.Scenario.metrics in
  Alcotest.(check bool) "recomputes counted" true (counter "route_tree_recompute" > 0);
  Alcotest.(check bool) "hits counted" true (counter "route_cache_hit" > 0);
  Alcotest.(check bool) "invalidations counted" true (counter "route_invalidation" > 0);
  Alcotest.(check bool) "engine events counted" true
    (o.Mail.Scenario.engine_events > 0)

let suite =
  [
    ( "route_cache",
      [
        Alcotest.test_case "unused link cut keeps cache" `Quick
          test_unused_link_cut_keeps_cache;
        Alcotest.test_case "used link cut drops dependents" `Quick
          test_used_link_cut_drops_dependents;
        Alcotest.test_case "restore improvement check" `Quick
          test_restore_improvement_check;
        Alcotest.test_case "first hop" `Quick test_first_hop;
        Alcotest.test_case "scoped equals full" `Quick test_scoped_equals_full;
        Alcotest.test_case "5x fewer recomputes" `Quick test_recompute_saving;
        Alcotest.test_case "counters in registry" `Quick
          test_counters_exposed_via_registry;
      ] );
  ]
