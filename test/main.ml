(* Aggregated test runner: one Alcotest suite per library module. *)

let () =
  Alcotest.run "mailsys"
    (Test_heap.suite @ Test_rng.suite @ Test_stats.suite @ Test_engine.suite
   @ Test_trace.suite @ Test_graph.suite @ Test_shortest_path.suite
   @ Test_topology.suite @ Test_net.suite @ Test_route_cache.suite
   @ Test_failure.suite
   @ Test_queueing.suite @ Test_name.suite @ Test_name_space.suite
   @ Test_resolver.suite @ Test_attribute.suite @ Test_directory.suite
   @ Test_fuzzy.suite @ Test_organisation.suite @ Test_loadbalance.suite
   @ Test_reconfigure.suite @ Test_replicas.suite @ Test_channel.suite
   @ Test_mst.suite @ Test_ghs.suite @ Test_backbone.suite
   @ Test_broadcast.suite @ Test_mailstore.suite @ Test_user_agent.suite
   @ Test_pipeline.suite @ Test_dlist.suite @ Test_cache.suite
   @ Test_billing.suite @ Test_content.suite @ Test_rfc_text.suite
   @ Test_name_store.suite @ Test_service_queue.suite @ Test_session.suite @ Test_loss.suite
   @ Test_syntax_system.suite
   @ Test_location_system.suite @ Test_attribute_system.suite
   @ Test_telemetry.suite @ Test_tracing.suite @ Test_scenario.suite
   @ Test_fault.suite @ Test_misc_coverage.suite @ Test_observability.suite
   @ Test_lint.suite @ Test_analyze.suite)
