(* Tests for the determinism linter (bin/lint) over the fixture corpus
   in [lint_fixtures/], plus the double-run determinism regression the
   linter exists to protect. *)

let fixture name = Filename.concat "lint_fixtures" name

(* (line, rule) pairs, in canonical order. *)
let findings path =
  Lint_core.check_file path
  |> List.sort Lint_core.compare_violation
  |> List.map (fun v -> (v.Lint_core.line, v.Lint_core.rule))

let check_findings msg expected path =
  Alcotest.(check (list (pair int string))) msg expected (findings path)

(* --- R1: unsorted fold escapes ----------------------------------------- *)

let test_unsorted_fold () =
  check_findings "fold consing without a sort is flagged"
    [ (4, "unsorted-fold") ]
    (fixture "bad_unsorted_fold.ml")

let test_sorted_fold_ok () =
  check_findings "sorted escape and pure aggregation pass" []
    (fixture "ok_sorted_fold.ml")

(* --- R2: polymorphic compare/hash -------------------------------------- *)

let test_poly_compare () =
  (* Bare [compare] is no longer a syntactic finding — the type-aware
     analyzer (bin/analyze, rule A4) flags it only at types where
     polymorphic comparison is actually unsafe.  Hashtbl.hash stays. *)
  check_findings "Hashtbl.hash flagged, bare compare left to the analyzer"
    [ (7, "poly-compare") ]
    (fixture "bad_poly_compare.ml")

let test_typed_compare_ok () =
  check_findings "typed comparators and a module-local compare pass" []
    (fixture "ok_typed_compare.ml")

(* --- suppressions spanning comment blocks -------------------------------- *)

let test_multiline_allow () =
  check_findings
    "allow annotations inside multi-line comment blocks suppress" []
    (fixture "ok_multiline_allow.ml")

(* --- R3: wall clock / ambient entropy ----------------------------------- *)

let test_wall_clock () =
  check_findings "Sys.time, Unix.gettimeofday and global Random are flagged"
    [ (3, "wall-clock"); (5, "wall-clock"); (7, "wall-clock") ]
    (fixture "bad_wall_clock.ml")

let test_suppression_ok () =
  check_findings "audited allow comments (preceding or same line) suppress" []
    (fixture "ok_suppressed.ml")

let test_bad_suppression () =
  (* A reason-less allow does not suppress (the finding survives) and is
     itself reported; so is an unknown rule name. *)
  check_findings "reason-less and unknown-rule allows are reported"
    [ (4, "bad-suppression"); (5, "wall-clock"); (7, "bad-suppression") ]
    (fixture "bad_suppression.ml")

(* --- R4: stdout/exit in library code ------------------------------------ *)

let test_stdout_in_lib () =
  check_findings "print/printf/exit under a lib/ path are flagged"
    [ (4, "stdout"); (6, "stdout"); (8, "stdout") ]
    (fixture "lib/bad_stdout.ml")

let test_stdout_outside_lib_ok () =
  (* The same constructs outside lib/ are fine: executables may print. *)
  let src = fixture "lib/bad_stdout.ml" in
  let copy = Filename.concat (Filename.get_temp_dir_name ()) "cli_stdout.ml" in
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin copy in
  output_string oc body;
  close_out oc;
  check_findings "no stdout findings outside lib/" [] copy;
  Sys.remove copy

(* --- R5: missing .mli (directory-level pass) ----------------------------- *)

let test_missing_mli () =
  let mli_violations =
    Lint_core.check_paths [ "lint_fixtures" ]
    |> List.filter (fun v -> String.equal v.Lint_core.rule "missing-mli")
    |> List.map (fun v -> v.Lint_core.file)
  in
  (* Only the module without an interface and without a file-level allow
     is reported: with_interface.ml has an .mli, bad_stdout.ml carries
     an audited allow. *)
  Alcotest.(check (list string))
    "exactly the uninterfaced module"
    [ fixture "lib/no_interface.ml" ]
    mli_violations

let test_check_paths_aggregates () =
  (* The directory pass finds every per-file violation too, sorted. *)
  let vs = Lint_core.check_paths [ "lint_fixtures" ] in
  let count rule =
    List.length (List.filter (fun v -> String.equal v.Lint_core.rule rule) vs)
  in
  Alcotest.(check int) "unsorted-fold count" 1 (count "unsorted-fold");
  Alcotest.(check int) "poly-compare count" 1 (count "poly-compare");
  Alcotest.(check int) "wall-clock count" 4 (count "wall-clock");
  Alcotest.(check int) "stdout count" 3 (count "stdout");
  Alcotest.(check int) "missing-mli count" 1 (count "missing-mli");
  Alcotest.(check int) "bad-suppression count" 2 (count "bad-suppression");
  let sorted = List.sort Lint_core.compare_violation vs in
  Alcotest.(check bool) "output is canonically sorted" true (vs = sorted)

(* --- determinism regression: the property the linter protects ------------ *)

let test_double_run_identical () =
  let spec =
    {
      Mail.Scenario.default_spec with
      duration = 1500.;
      mail_count = 100;
      check_period = 80.;
      failure_rate = 0.002;
    }
  in
  let run () = Mail.Scenario.run_syntax (Netsim.Topology.paper_fig1 ()) spec in
  let o1 = run () and o2 = run () in
  let metrics o =
    Telemetry.Json.to_string
      (Telemetry.Registry.to_json o.Mail.Scenario.metrics)
  in
  let ledger o =
    Telemetry.Json.to_string (Mail.Ledger.verdict_to_json o.Mail.Scenario.ledger)
  in
  Alcotest.(check string) "metrics export byte-identical" (metrics o1) (metrics o2);
  Alcotest.(check string) "ledger verdict byte-identical" (ledger o1) (ledger o2)

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "R1: unsorted fold flagged" `Quick test_unsorted_fold;
        Alcotest.test_case "R1: sorted fold passes" `Quick test_sorted_fold_ok;
        Alcotest.test_case "R2: poly compare flagged" `Quick test_poly_compare;
        Alcotest.test_case "R2: typed compare passes" `Quick test_typed_compare_ok;
        Alcotest.test_case "R3: wall clock flagged" `Quick test_wall_clock;
        Alcotest.test_case "suppression: audited allows work" `Quick
          test_suppression_ok;
        Alcotest.test_case "suppression: multi-line comment blocks" `Quick
          test_multiline_allow;
        Alcotest.test_case "suppression: unaudited allows reported" `Quick
          test_bad_suppression;
        Alcotest.test_case "R4: stdout in lib flagged" `Quick test_stdout_in_lib;
        Alcotest.test_case "R4: stdout outside lib passes" `Quick
          test_stdout_outside_lib_ok;
        Alcotest.test_case "R5: missing mli flagged" `Quick test_missing_mli;
        Alcotest.test_case "directory pass aggregates and sorts" `Quick
          test_check_paths_aggregates;
        Alcotest.test_case "double-run: metrics and ledger identical" `Slow
          test_double_run_identical;
      ] );
  ]
