(* End-to-end tests of the design-1 system (§3.1). *)

let make () = Mail.Syntax_system.create (Netsim.Topology.paper_fig1 ())

let user sys i = List.nth (Mail.Syntax_system.users sys) i

let test_construction () =
  let sys = make () in
  Alcotest.(check int) "users" 30 (List.length (Mail.Syntax_system.users sys));
  Alcotest.(check int) "servers" 3 (List.length (Mail.Syntax_system.server_nodes sys));
  (* every agent has a full ordered authority list of distinct servers *)
  List.iter
    (fun u ->
      let auth = Mail.User_agent.authority (Mail.Syntax_system.agent sys u) in
      Alcotest.(check int) "replication" 3 (List.length auth);
      Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare auth)))
    (Mail.Syntax_system.users sys);
  (* the regional name space knows every user *)
  match Mail.Syntax_system.space sys "r0" with
  | Some sp -> Alcotest.(check int) "registered" 30
      (List.length (Naming.Name_space.names sp))
  | None -> Alcotest.fail "missing region space"

let test_basic_delivery () =
  let sys = make () in
  let m = Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:(user sys 20) () in
  Mail.Syntax_system.run_until sys 100.;
  Alcotest.(check bool) "deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "latency positive" true
    (match Mail.Message.delivery_latency m with Some l -> l > 0. | None -> false);
  let st = Mail.Syntax_system.check_mail sys (user sys 20) in
  Alcotest.(check int) "retrieved" 1 st.Mail.User_agent.retrieved

let test_unknown_users_rejected () =
  let sys = make () in
  let ghost = Naming.Name.make ~region:"r0" ~host:"H1" ~user:"ghost" in
  (try
     ignore (Mail.Syntax_system.submit sys ~sender:ghost ~recipient:(user sys 0) ());
     Alcotest.fail "unknown sender accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:ghost ());
    Alcotest.fail "unknown recipient accepted"
  with Invalid_argument _ -> ()

let test_delivery_during_primary_outage () =
  let sys = make () in
  let rcpt = user sys 20 in
  let primary = List.hd (Mail.User_agent.authority (Mail.Syntax_system.agent sys rcpt)) in
  Netsim.Net.set_down (Mail.Syntax_system.net sys) primary;
  let m = Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:rcpt () in
  Mail.Syntax_system.run_until sys 200.;
  Alcotest.(check bool) "deposited on a secondary" true
    (Mail.Message.is_deposited m
    && m.Mail.Message.deposited_on <> Some primary);
  let st = Mail.Syntax_system.check_mail sys rcpt in
  Alcotest.(check int) "still retrievable" 1 st.Mail.User_agent.retrieved

let test_no_loss_through_total_outage () =
  (* Every authority server of the recipient is down at submit time;
     retries must deposit the mail after recovery. *)
  let sys = make () in
  let rcpt = user sys 25 in
  let auth = Mail.User_agent.authority (Mail.Syntax_system.agent sys rcpt) in
  List.iter (fun s -> Netsim.Net.set_down (Mail.Syntax_system.net sys) s) auth;
  let m = Mail.Syntax_system.submit sys ~sender:(user sys 2) ~recipient:rcpt () in
  Mail.Syntax_system.run_until sys 300.;
  (* recover everything *)
  List.iter (fun s -> Netsim.Net.set_up (Mail.Syntax_system.net sys) s) auth;
  Mail.Syntax_system.quiesce sys;
  Alcotest.(check bool) "eventually deposited" true (Mail.Message.is_deposited m);
  let st = Mail.Syntax_system.check_mail sys rcpt in
  Alcotest.(check int) "retrieved after recovery" 1 st.Mail.User_agent.retrieved

(* A site whose hosts are dual-homed, so taking one server down does
   not physically isolate the sender (in Fig. 1 every host has a single
   link, making sender-side failover impossible to exercise there). *)
let dual_homed_site () =
  let g = Netsim.Graph.create () in
  let host i = Netsim.Graph.add_node ~label:(Printf.sprintf "H%d" i) ~kind:Netsim.Graph.Host ~region:"r0" g in
  let server i = Netsim.Graph.add_node ~label:(Printf.sprintf "S%d" i) ~kind:Netsim.Graph.Server ~region:"r0" g in
  let h1 = host 1 and h2 = host 2 in
  let s1 = server 1 and s2 = server 2 and s3 = server 3 in
  List.iter
    (fun (u, v) -> Netsim.Graph.add_edge g u v 1.0)
    [ (h1, s1); (h1, s2); (h2, s2); (h2, s3); (s1, s2); (s2, s3) ];
  { Netsim.Topology.graph = g; hosts = [ (h1, 20); (h2, 20) ]; servers = [ s1; s2; s3 ] }

let test_sender_connection_failover () =
  let sys = Mail.Syntax_system.create (dual_homed_site ()) in
  let sender = user sys 0 in
  let s_auth = Mail.User_agent.authority (Mail.Syntax_system.agent sys sender) in
  Netsim.Net.set_down (Mail.Syntax_system.net sys) (List.hd s_auth);
  let m = Mail.Syntax_system.submit sys ~sender ~recipient:(user sys 7) () in
  Mail.Syntax_system.run_until sys 200.;
  Alcotest.(check bool) "delivered via another server" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "failure counted" true
    (Dsim.Stats.Counter.get (Mail.Syntax_system.counters sys) "submit_attempt_failures" > 0)

let test_notifications_emitted () =
  let sys = make () in
  ignore (Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:(user sys 20) ());
  Mail.Syntax_system.run_until sys 100.;
  Alcotest.(check int) "notification" 1
    (Dsim.Stats.Counter.get (Mail.Syntax_system.counters sys) "notifications")

let test_migration_within_region () =
  let sys = make () in
  let victim = user sys 29 in
  let new_name = Mail.Syntax_system.migrate_user sys victim ~new_host:0 in
  Alcotest.(check bool) "renamed" false (Naming.Name.equal victim new_name);
  Alcotest.(check string) "host token" "H1" (Naming.Name.host new_name);
  Alcotest.(check bool) "redirect recorded" true
    (Mail.Syntax_system.redirect_target sys victim = Some new_name);
  (* mail to the old name lands in the new mailbox *)
  let m = Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:victim () in
  Mail.Syntax_system.run_until sys 200.;
  Alcotest.(check bool) "deposited" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "rewritten to new name" true
    (Naming.Name.equal m.Mail.Message.recipient new_name);
  let st = Mail.Syntax_system.check_mail sys new_name in
  Alcotest.(check int) "new identity retrieves" 1 st.Mail.User_agent.retrieved;
  (* the old name is no longer a user *)
  try
    ignore (Mail.Syntax_system.agent sys victim);
    Alcotest.fail "old name still a user"
  with Invalid_argument _ -> ()

let test_add_and_remove_user () =
  let sys = make () in
  let newbie = Mail.Syntax_system.add_user sys ~host:0 ~user:"newbie" in
  Alcotest.(check string) "named after the host" "r0.H1.newbie"
    (Naming.Name.to_string newbie);
  Alcotest.(check int) "population grew" 31 (List.length (Mail.Syntax_system.users sys));
  (* the new user sends and receives like anyone else *)
  let m = Mail.Syntax_system.submit sys ~sender:newbie ~recipient:(user sys 20) () in
  let m2 = Mail.Syntax_system.submit sys ~sender:(user sys 3) ~recipient:newbie () in
  Mail.Syntax_system.quiesce sys;
  Alcotest.(check bool) "sends" true (Mail.Message.is_deposited m);
  Alcotest.(check bool) "receives" true (Mail.Message.is_deposited m2);
  ignore (Mail.Syntax_system.check_mail sys newbie);
  Alcotest.(check bool) "retrieves" true (Mail.Message.is_retrieved m2);
  (try
     ignore (Mail.Syntax_system.add_user sys ~host:0 ~user:"newbie");
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  Mail.Syntax_system.remove_user sys newbie;
  Alcotest.(check int) "population shrank" 30
    (List.length (Mail.Syntax_system.users sys));
  try
    ignore (Mail.Syntax_system.submit sys ~sender:(user sys 3) ~recipient:newbie ());
    Alcotest.fail "mail to removed user accepted"
  with Invalid_argument _ -> ()

let test_rename_notice_sent () =
  let sys = make () in
  let victim = user sys 29 in
  ignore (Mail.Syntax_system.migrate_user sys victim ~new_host:0);
  ignore (Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:victim ());
  Mail.Syntax_system.quiesce sys;
  let c = Mail.Syntax_system.counters sys in
  Alcotest.(check bool) "sender was told about the rename" true
    (Dsim.Stats.Counter.get c "rename_notices" >= 1)

let test_polls_counted () =
  let sys = make () in
  (* checks happen at positive times so LastCheckingTime can exceed
     the servers' LastStartTime of 0 *)
  Mail.Syntax_system.run_until sys 5.;
  ignore (Mail.Syntax_system.check_mail sys (user sys 0));
  Mail.Syntax_system.run_until sys 10.;
  ignore (Mail.Syntax_system.check_mail sys (user sys 0));
  let c = Mail.Syntax_system.counters sys in
  Alcotest.(check int) "checks" 2 (Dsim.Stats.Counter.get c "checks");
  (* first check polls all three, second polls one *)
  Alcotest.(check int) "polls" 4 (Dsim.Stats.Counter.get c "polls")

let test_submit_at_schedules () =
  let sys = make () in
  let m = Mail.Syntax_system.submit_at sys ~at:50. ~sender:(user sys 0)
      ~recipient:(user sys 15) () in
  Mail.Syntax_system.run_until sys 40.;
  Alcotest.(check bool) "not yet" false (Mail.Message.is_deposited m);
  Mail.Syntax_system.run_until sys 100.;
  Alcotest.(check bool) "after its time" true (Mail.Message.is_deposited m)

let test_duplicate_deposits_suppressed_to_user () =
  (* Force retry duplication by killing the recipient's primary right
     after a deposit is sent, dropping the ack. *)
  let sys = make () in
  let rcpt = user sys 20 in
  ignore (Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:rcpt ());
  Mail.Syntax_system.quiesce sys;
  ignore (Mail.Syntax_system.check_mail sys rcpt);
  let again = Mail.Syntax_system.check_mail sys rcpt in
  Alcotest.(check int) "no duplicate in second check" 0 again.Mail.User_agent.retrieved;
  Alcotest.(check int) "inbox exactly one" 1
    (Mail.User_agent.inbox_size (Mail.Syntax_system.agent sys rcpt))

let test_scheduled_cleanup () =
  let config =
    { Mail.Syntax_system.default_config with mailbox_policy = Mail.Mailbox.Archive }
  in
  let sys = Mail.Syntax_system.create ~config (Netsim.Topology.paper_fig1 ()) in
  let rcpt = user sys 20 in
  ignore (Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:rcpt ());
  Mail.Syntax_system.run_until sys 50.;
  ignore (Mail.Syntax_system.check_mail sys rcpt);
  (* the archived copy survives retrieval… *)
  let on = Option.get ((List.hd (Mail.Syntax_system.submitted sys)).Mail.Message.deposited_on) in
  let srv = Mail.Replica_group.holder (Mail.Syntax_system.storage sys) on in
  Alcotest.(check bool) "archived copy held" true (Mail.Server.storage_bytes srv > 0);
  (* …until the clean-up policy expires it. *)
  Mail.Syntax_system.schedule_cleanup sys ~period:100. ~until:1000. ~max_age:200.;
  Mail.Syntax_system.run_until sys 1000.;
  Alcotest.(check bool) "expired by cleanup" true
    (Dsim.Stats.Counter.get (Mail.Syntax_system.counters sys) "archive_dropped" >= 1);
  Alcotest.(check int) "storage reclaimed" 0 (Mail.Server.storage_bytes srv)

let test_evaluation_report () =
  let sys = make () in
  ignore (Mail.Syntax_system.submit sys ~sender:(user sys 0) ~recipient:(user sys 20) ());
  Mail.Syntax_system.quiesce sys;
  ignore (Mail.Syntax_system.check_mail sys (user sys 20));
  let r = Mail.Evaluation.of_syntax sys in
  Alcotest.(check int) "submitted" 1 r.Mail.Evaluation.submitted;
  Alcotest.(check int) "deposited" 1 r.Mail.Evaluation.deposited;
  Alcotest.(check int) "retrieved" 1 r.Mail.Evaluation.retrieved;
  Alcotest.(check int) "no losses" 0 r.Mail.Evaluation.undelivered;
  Alcotest.(check bool) "messages flowed" true (r.Mail.Evaluation.messages_sent > 0);
  let s = Format.asprintf "%a" Mail.Evaluation.pp r in
  Alcotest.(check bool) "pp" true (String.length s > 50)

let suite =
  [
    ( "syntax_system",
      [
        Alcotest.test_case "construction" `Quick test_construction;
        Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
        Alcotest.test_case "unknown users rejected" `Quick test_unknown_users_rejected;
        Alcotest.test_case "delivery during primary outage" `Quick
          test_delivery_during_primary_outage;
        Alcotest.test_case "no loss through total outage" `Quick
          test_no_loss_through_total_outage;
        Alcotest.test_case "sender connection failover" `Quick
          test_sender_connection_failover;
        Alcotest.test_case "notifications" `Quick test_notifications_emitted;
        Alcotest.test_case "migration with redirection" `Quick
          test_migration_within_region;
        Alcotest.test_case "rename notice to sender" `Quick test_rename_notice_sent;
        Alcotest.test_case "add and remove user at runtime" `Quick
          test_add_and_remove_user;
        Alcotest.test_case "poll counters" `Quick test_polls_counted;
        Alcotest.test_case "scheduled submission" `Quick test_submit_at_schedules;
        Alcotest.test_case "duplicates suppressed at the user" `Quick
          test_duplicate_deposits_suppressed_to_user;
        Alcotest.test_case "scheduled archive cleanup" `Quick test_scheduled_cleanup;
        Alcotest.test_case "evaluation report" `Quick test_evaluation_report;
      ] );
  ]
