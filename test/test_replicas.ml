(* Tests for secondary-server assignment (§3.1.1 extension). *)

let balanced_fig1 () =
  let p = Loadbalance.Assignment.problem_of_site (Netsim.Topology.paper_fig1 ()) in
  let t, _ = Loadbalance.Balancer.run p in
  (p, t)

let test_chains_well_formed () =
  let p, t = balanced_fig1 () in
  let r = Loadbalance.Replicas.assign ~replication:3 p t in
  Array.iteri
    (fun i slots ->
      Array.iter
        (fun chain ->
          Alcotest.(check int) "chain length" 3 (List.length chain);
          Alcotest.(check int) "distinct servers" 3
            (List.length (List.sort_uniq compare chain));
          List.iter
            (fun s ->
              if not (Array.exists (( = ) s) p.Loadbalance.Assignment.servers) then
                Alcotest.failf "host %d chain uses unknown server %d" i s)
            chain)
        slots)
    r.Loadbalance.Replicas.chains

let test_primary_heads_chain () =
  let p, t = balanced_fig1 () in
  let r = Loadbalance.Replicas.assign p t in
  (* every chain's head must be a server actually serving that host *)
  Array.iteri
    (fun i slots ->
      Array.iter
        (fun chain ->
          match chain with
          | head :: _ ->
              let j =
                let found = ref (-1) in
                Array.iteri
                  (fun k s -> if s = head then found := k)
                  p.Loadbalance.Assignment.servers;
                !found
              in
              if Loadbalance.Assignment.get t ~host:i ~server:j = 0 then
                Alcotest.failf "chain head %d serves no users of host %d" head i
          | [] -> Alcotest.fail "empty chain")
        slots)
    r.Loadbalance.Replicas.chains

let test_infeasible_replication_raises () =
  (* The old behaviour silently capped chains at the server count —
     callers asking for replication 10 got 3-chains and no signal.
     Infeasible replication is now an error; systems that want
     best-effort cap explicitly with [min replication n_servers]. *)
  let p, t = balanced_fig1 () in
  Alcotest.check_raises "infeasible replication rejected"
    (Invalid_argument
       "Replicas.assign: replication 10 exceeds server count 3 (cap explicitly \
        if best-effort is intended)") (fun () ->
      ignore (Loadbalance.Replicas.assign ~replication:10 p t))

let test_effective_replication_echoed () =
  let p, t = balanced_fig1 () in
  let r2 = Loadbalance.Replicas.assign ~replication:2 p t in
  Alcotest.(check int) "echoes what was assigned" 2
    r2.Loadbalance.Replicas.replication;
  let r3 = Loadbalance.Replicas.assign ~replication:3 p t in
  Alcotest.(check int) "default-length chains echoed" 3
    r3.Loadbalance.Replicas.replication;
  Array.iter
    (fun slots ->
      Array.iter
        (fun chain ->
          Alcotest.(check int) "chain length matches the echo" 2
            (List.length chain))
        slots)
    r2.Loadbalance.Replicas.chains

let test_chain_for_cycles_slots () =
  let p, t = balanced_fig1 () in
  let r = Loadbalance.Replicas.assign p t in
  (* host 1 (H2) has users split over two servers after balancing *)
  let c0 = Loadbalance.Replicas.chain_for r ~host:1 ~user_slot:0 in
  let slots = Array.length r.Loadbalance.Replicas.chains.(1) in
  let c_again = Loadbalance.Replicas.chain_for r ~host:1 ~user_slot:slots in
  Alcotest.(check (list int)) "slots cycle" c0 c_again

let test_secondary_load_spread () =
  let p, t = balanced_fig1 () in
  let r = Loadbalance.Replicas.assign p t in
  let total_secondary = Array.fold_left ( + ) 0 r.Loadbalance.Replicas.secondary_load in
  Alcotest.(check int) "every user has a first secondary" 270 total_secondary;
  Alcotest.(check bool) "reasonably spread" true
    (Loadbalance.Replicas.secondary_imbalance p r < 1.0)

let test_secondary_imbalance_single_server () =
  (* With one server there are no secondaries at all: every chain is
     the singleton primary, the secondary load is all zeros, and the
     imbalance metric must report perfect evenness instead of
     dividing by a zero spread. *)
  let rng = Dsim.Rng.create 7 in
  let site =
    Netsim.Topology.random_mail_site ~rng ~hosts:4 ~servers:1
      ~users_per_host:(5, 10) ~extra_edges:4
  in
  let p =
    Loadbalance.Assignment.problem_of_site ~capacity:(fun _ -> 1000) site
  in
  let t, _ = Loadbalance.Balancer.run p in
  let r = Loadbalance.Replicas.assign ~replication:1 p t in
  Alcotest.(check int) "no secondary load" 0
    (Array.fold_left ( + ) 0 r.Loadbalance.Replicas.secondary_load);
  Alcotest.(check (float 1e-9)) "perfectly even" 0.
    (Loadbalance.Replicas.secondary_imbalance p r);
  Array.iter
    (fun slots ->
      Array.iter
        (fun chain -> Alcotest.(check int) "singleton chain" 1 (List.length chain))
        slots)
    r.Loadbalance.Replicas.chains

let test_incomplete_rejected () =
  let p, _ = balanced_fig1 () in
  let empty = Loadbalance.Assignment.empty p in
  try
    ignore (Loadbalance.Replicas.assign p empty);
    Alcotest.fail "incomplete assignment accepted"
  with Invalid_argument _ -> ()

let test_bad_replication_rejected () =
  let p, t = balanced_fig1 () in
  try
    ignore (Loadbalance.Replicas.assign ~replication:0 p t);
    Alcotest.fail "replication 0 accepted"
  with Invalid_argument _ -> ()

let prop_random_sites =
  QCheck.Test.make ~name:"replica chains valid on random sites" ~count:20
    QCheck.(pair (int_range 3 15) (int_range 2 6))
    (fun (hosts, servers) ->
      let rng = Dsim.Rng.create ((hosts * 37) + servers) in
      let site =
        Netsim.Topology.random_mail_site ~rng ~hosts ~servers ~users_per_host:(5, 30)
          ~extra_edges:hosts
      in
      let total = List.fold_left (fun a (_, n) -> a + n) 0 site.Netsim.Topology.hosts in
      let p =
        Loadbalance.Assignment.problem_of_site
          ~capacity:(fun _ -> 1 + (total * 2 / servers))
          site
      in
      let t, _ = Loadbalance.Balancer.run p in
      let want = min 3 servers in
      let r = Loadbalance.Replicas.assign ~replication:want p t in
      Array.for_all
        (fun slots ->
          Array.for_all
            (fun chain ->
              List.length chain = want
              && List.length (List.sort_uniq compare chain) = want)
            slots)
        r.Loadbalance.Replicas.chains)

let prop_secondaries_distinct_from_primary =
  QCheck.Test.make ~name:"secondaries are never the chain's own primary"
    ~count:20
    QCheck.(pair (int_range 3 15) (int_range 2 6))
    (fun (hosts, servers) ->
      let rng = Dsim.Rng.create ((hosts * 53) + servers) in
      let site =
        Netsim.Topology.random_mail_site ~rng ~hosts ~servers
          ~users_per_host:(5, 30) ~extra_edges:hosts
      in
      let total = List.fold_left (fun a (_, n) -> a + n) 0 site.Netsim.Topology.hosts in
      let p =
        Loadbalance.Assignment.problem_of_site
          ~capacity:(fun _ -> 1 + (total * 2 / servers))
          site
      in
      let t, _ = Loadbalance.Balancer.run p in
      let r = Loadbalance.Replicas.assign ~replication:(min 3 servers) p t in
      Array.for_all
        (fun slots ->
          Array.for_all
            (fun chain ->
              match chain with
              | primary :: secondaries ->
                  List.for_all (fun s -> s <> primary) secondaries
              | [] -> false)
            slots)
        r.Loadbalance.Replicas.chains)

let suite =
  [
    ( "replicas",
      [
        Alcotest.test_case "chains well formed" `Quick test_chains_well_formed;
        Alcotest.test_case "primary heads each chain" `Quick test_primary_heads_chain;
        Alcotest.test_case "infeasible replication raises" `Quick
          test_infeasible_replication_raises;
        Alcotest.test_case "effective replication echoed" `Quick
          test_effective_replication_echoed;
        Alcotest.test_case "slot cycling" `Quick test_chain_for_cycles_slots;
        Alcotest.test_case "secondary load spread" `Quick test_secondary_load_spread;
        Alcotest.test_case "single server: no secondaries" `Quick
          test_secondary_imbalance_single_server;
        Alcotest.test_case "incomplete rejected" `Quick test_incomplete_rejected;
        Alcotest.test_case "bad replication rejected" `Quick test_bad_replication_rejected;
        QCheck_alcotest.to_alcotest prop_random_sites;
        QCheck_alcotest.to_alcotest prop_secondaries_distinct_from_primary;
      ] );
  ]
