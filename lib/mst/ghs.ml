type node_state = Sleeping | Find | Found

type edge_state = Basic | Branch | Rejected

type msg =
  | Connect of int
  | Initiate of int * Edge_id.t * node_state
  | Test of int * Edge_id.t
  | Accept
  | Reject
  | Report of Edge_id.t option
  | Change_root

type result = {
  edges : (Netsim.Graph.node * Netsim.Graph.node * float) list;
  total_weight : float;
  messages : int;
  finish_time : float;
  halted : bool;
  max_level : int;
}

(* Per-node automaton state, exactly the variables of Gallager's
   pseudocode: SN, FN, LN, SE(j), best/test/in-branch edges and the
   outstanding-Report counter. *)
type node_ctx = {
  id : Netsim.Graph.node;
  mutable sn : node_state;
  mutable fn : Edge_id.t option;  (* fragment identity *)
  mutable ln : int;  (* fragment level *)
  se : (Netsim.Graph.node, edge_state) Hashtbl.t;
  mutable best_edge : Netsim.Graph.node option;
  mutable best_wt : Edge_id.t option;  (* None = infinity *)
  mutable test_edge : Netsim.Graph.node option;
  mutable in_branch : Netsim.Graph.node option;
  mutable find_count : int;
}

let message_bound g =
  let n = Netsim.Graph.node_count g in
  let e = Netsim.Graph.edge_count g in
  if n <= 1 then 0
  else begin
    let log2n = int_of_float (Float.ceil (Float.log2 (float_of_int n))) in
    (5 * n * max 1 log2n) + (2 * e)
  end

let run ?(horizon = 1e9) ?(wake = `All) g =
  let n = Netsim.Graph.node_count g in
  if n = 0 then invalid_arg "Ghs.run: empty graph";
  if not (Netsim.Graph.is_connected g) then invalid_arg "Ghs.run: graph not connected";
  let engine = Dsim.Engine.create () in
  let net = Netsim.Net.create ~engine g in
  let ctx =
    Array.init n (fun id ->
        let se = Hashtbl.create 8 in
        List.iter (fun (v, _) -> Hashtbl.replace se v Basic) (Netsim.Graph.neighbors g id);
        {
          id;
          sn = Sleeping;
          fn = None;
          ln = 0;
          se;
          best_edge = None;
          best_wt = None;
          test_edge = None;
          in_branch = None;
          find_count = 0;
        })
  in
  let halted = ref false in
  let finish_time = ref 0. in
  let edge_id u v =
    match Netsim.Graph.weight g u v with
    | Some w -> Edge_id.make u v w
    | None -> invalid_arg "Ghs: not an edge"
  in
  let edge_state c v = try Hashtbl.find c.se v with Not_found -> Rejected in
  let send u v m = ignore (Netsim.Net.send_neighbor net ~src:u ~dst:v m) in
  (* Requeue a message the automaton cannot process yet: redeliver to
     self shortly, without touching the network counters. *)
  let rec requeue c ~src m =
    ignore (Dsim.Engine.schedule_after engine 0.001 (fun () -> handle c ~src m))
  and wakeup c =
    (* Pick the minimum adjacent edge, make it a Branch, send Connect(0). *)
    let best =
      List.fold_left
        (fun acc (v, w) ->
          let e = Edge_id.make c.id v w in
          match acc with
          | Some (_, e') when Edge_id.compare e' e <= 0 -> acc
          | _ -> Some (v, e))
        None
        (Netsim.Graph.neighbors g c.id)
    in
    match best with
    | None -> ()  (* isolated node: nothing to connect to *)
    | Some (v, _) ->
        Hashtbl.replace c.se v Branch;
        c.ln <- 0;
        c.sn <- Found;
        c.find_count <- 0;
        send c.id v (Connect 0)
  and test_procedure c =
    let basics =
      Hashtbl.fold
        (fun v st acc -> if st = Basic then edge_id c.id v :: acc else acc)
        c.se []
    in
    match List.sort Edge_id.compare basics with
    | [] ->
        c.test_edge <- None;
        report_procedure c
    | e :: _ ->
        let v = if e.Edge_id.lo = c.id then e.Edge_id.hi else e.Edge_id.lo in
        c.test_edge <- Some v;
        send c.id v (Test (c.ln, Option.get c.fn))
  and report_procedure c =
    if c.find_count = 0 && c.test_edge = None then begin
      c.sn <- Found;
      match c.in_branch with
      | Some j -> send c.id j (Report c.best_wt)
      | None -> ()
    end
  and change_root c =
    match c.best_edge with
    | None -> ()
    | Some b ->
        if edge_state c b = Branch then send c.id b Change_root
        else begin
          send c.id b (Connect c.ln);
          Hashtbl.replace c.se b Branch
        end
  and handle c ~src m =
    if not !halted then
      match m with
      | Connect l ->
          if c.sn = Sleeping then wakeup c;
          if l < c.ln then begin
            (* Absorb the lower-level fragment. *)
            Hashtbl.replace c.se src Branch;
            send c.id src (Initiate (c.ln, Option.get c.fn, c.sn));
            if c.sn = Find then c.find_count <- c.find_count + 1
          end
          else if edge_state c src = Basic then requeue c ~src m
          else begin
            (* Merge: this edge becomes the new core. *)
            send c.id src (Initiate (c.ln + 1, edge_id c.id src, Find))
          end
      | Initiate (l, f, s) ->
          c.ln <- l;
          c.fn <- Some f;
          c.sn <- s;
          c.in_branch <- Some src;
          c.best_edge <- None;
          c.best_wt <- None;
          (* Propagate to branch neighbours in node order, not hash
             order: sends schedule events, and equal-time ties break by
             schedule sequence, so iteration order is observable. *)
          Hashtbl.fold
            (fun v st acc -> if v <> src && st = Branch then v :: acc else acc)
            c.se []
          |> List.sort Int.compare
          |> List.iter (fun v ->
                 send c.id v (Initiate (l, f, s));
                 if s = Find then c.find_count <- c.find_count + 1);
          if s = Find then test_procedure c
      | Test (l, f) ->
          if c.sn = Sleeping then wakeup c;
          if l > c.ln then requeue c ~src m
          else if not (match c.fn with Some fn -> Edge_id.equal fn f | None -> false)
          then send c.id src Accept
          else begin
            if edge_state c src = Basic then Hashtbl.replace c.se src Rejected;
            if c.test_edge <> Some src then send c.id src Reject
            else test_procedure c
          end
      | Accept ->
          c.test_edge <- None;
          let e = edge_id c.id src in
          if Edge_id.less (Some e) c.best_wt then begin
            c.best_edge <- Some src;
            c.best_wt <- Some e
          end;
          report_procedure c
      | Reject ->
          if edge_state c src = Basic then Hashtbl.replace c.se src Rejected;
          test_procedure c
      | Report w ->
          if c.in_branch <> Some src then begin
            c.find_count <- c.find_count - 1;
            if Edge_id.less w c.best_wt then begin
              c.best_wt <- w;
              c.best_edge <- Some src
            end;
            report_procedure c
          end
          else if c.sn = Find then requeue c ~src m
          else if Edge_id.less c.best_wt w then change_root c
          else if w = None && c.best_wt = None then begin
            halted := true;
            finish_time := Dsim.Engine.now engine
          end
      | Change_root -> change_root c
  in
  Array.iter
    (fun c ->
      Netsim.Net.set_handler net c.id (fun ~time:_ ~src m -> handle c ~src m))
    ctx;
  (* Spontaneous awakenings at t = 0; sleepers awaken on first
     message receipt (rules 2 and 4). *)
  let wakers = match wake with `All -> Array.to_list ctx | `One -> [ ctx.(0) ] in
  List.iter
    (fun c ->
      ignore
        (Dsim.Engine.schedule_at engine 0. (fun () ->
             if c.sn = Sleeping then wakeup c)))
    wakers;
  Dsim.Engine.run ~until:horizon engine;
  if n = 1 && not !halted then begin
    halted := true;
    finish_time := 0.
  end;
  let branch_edges =
    Array.to_list ctx
    |> List.concat_map (fun c ->
           Hashtbl.fold
             (fun v st acc -> if st = Branch then edge_id c.id v :: acc else acc)
             c.se [])
    |> List.sort_uniq Edge_id.compare
    |> List.map (fun (e : Edge_id.t) -> (e.lo, e.hi, e.w))
  in
  {
    edges = branch_edges;
    total_weight = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. branch_edges;
    messages = Netsim.Net.messages_sent net;
    finish_time = !finish_time;
    halted = !halted;
    max_level = Array.fold_left (fun acc c -> max acc c.ln) 0 ctx;
  }
