type entry = {
  region : string;
  backbone_cost : float;
  local_cost : float;
  entry_total : float;
}

type t = { source : string; entries : entry list }

let weight_of edges = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. edges

(* Distance between two nodes along the backbone tree (unique path). *)
let tree_distance edges (src : Netsim.Graph.node) (dst : Netsim.Graph.node) =
  if src = dst then 0.
  else begin
    let adj = Hashtbl.create 16 in
    let link u v w =
      let l = try Hashtbl.find adj u with Not_found -> [] in
      Hashtbl.replace adj u ((v, w) :: l)
    in
    List.iter
      (fun (u, v, w) ->
        link u v w;
        link v u w)
      edges;
    let rec dfs v from acc =
      if v = dst then Some acc
      else
        List.fold_left
          (fun found (u, w) ->
            match found with
            | Some _ -> found
            | None -> if Some u = from then None else dfs u (Some v) (acc +. w))
          None
          (try Hashtbl.find adj v with Not_found -> [])
    in
    match dfs src None 0. with Some d -> d | None -> infinity
  end

let build (bb : Backbone.t) ~source =
  let regions = List.map fst bb.locals in
  if not (List.mem source regions) then
    invalid_arg (Printf.sprintf "Cost_table.build: unknown source region %s" source);
  (* Representative border node per region: the smallest id. *)
  let rep r =
    match List.assoc_opt r bb.border_nodes with
    | Some (v :: _ as vs) -> Some (List.fold_left min v vs)
    | Some [] | None -> None
  in
  let src_rep = rep source in
  let entries =
    List.map
      (fun (r, local_edges) ->
        let backbone_cost =
          if String.equal r source then 0.
          else
            match (src_rep, rep r) with
            | Some a, Some b -> tree_distance bb.backbone a b
            | _ -> infinity
        in
        let local_cost = weight_of local_edges in
        { region = r; backbone_cost; local_cost; entry_total = backbone_cost +. local_cost })
      bb.locals
    |> List.sort (fun a b -> String.compare a.region b.region)
  in
  { source; entries }

let find t r =
  match List.find_opt (fun e -> String.equal e.region r) t.entries with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Cost_table: unknown region %s" r)

let estimate t ~regions =
  List.fold_left (fun acc r -> acc +. (find t r).entry_total) 0. regions

let affordable t ~budget =
  let sorted =
    List.sort (fun a b -> Float.compare a.entry_total b.entry_total) t.entries
  in
  let _, chosen =
    List.fold_left
      (fun (spent, acc) e ->
        if spent +. e.entry_total <= budget then (spent +. e.entry_total, e.region :: acc)
        else (spent, acc))
      (0., []) sorted
  in
  List.sort String.compare chosen

let pp ppf t =
  Format.fprintf ppf "@[<v>cost table from region %s:@ " t.source;
  Format.fprintf ppf "%-10s %12s %12s %12s@ " "region" "backbone" "local" "total";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-10s %12.3f %12.3f %12.3f@ " e.region e.backbone_cost
        e.local_cost e.entry_total)
    t.entries;
  Format.fprintf ppf "@]"
