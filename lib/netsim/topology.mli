(** Topology generators.

    Includes the paper's worked example (Figure 1), hierarchical
    multi-region internetworks like the one sketched in Figure 2, and
    generic shapes (ring, star, line, grid, random) used by the test
    suite and parameter sweeps. *)

(** A topology annotated with the mail-system roles the load-balancing
    algorithm of §3.1.1 needs: which nodes are user hosts (and how many
    users each carries) and which are mail servers. *)
type mail_site = {
  graph : Graph.t;
  hosts : (Graph.node * int) list;  (** host node, user population [N_i]. *)
  servers : Graph.node list;
}

val paper_fig1 : unit -> mail_site
(** The Figure 1 example: six hosts with user populations
    (50, 60, 50, 50, 40, 20), three servers in one region, all links of
    weight 1, arranged so that hosts 1 and 3 are adjacent to server 1,
    hosts 2, 4 and 5 to server 2, host 6 to server 3, with the servers
    chained S1–S2–S3.  This reproduces the prose facts (e.g. the
    H2–S1 zero-load distance of 2 time units). *)

val paper_table3 : unit -> mail_site
(** The three-host variant behind Table 3: populations
    (100, 100, 20), one host adjacent to each server. *)

val arpanet : unit -> Graph.t
(** The classic ARPANET backbone circa 1977 — about twenty IMP sites
    (MIT, BBN, UCLA, SRI, …) with its historical cross-country links,
    unit-ish weights scaled by rough mileage.  An era-appropriate
    testbed for the MST and broadcast experiments. *)

val arpanet_mail_site : unit -> mail_site
(** The ARPANET as a three-region mail system: BBN (east), UCLA (west)
    and Illinois (central) act as the mail servers — the sites that
    historically ran heavyweight service hosts — and every other site
    carries ten users. *)

val line : n:int -> weight:float -> Graph.t
val ring : n:int -> weight:float -> Graph.t
val star : leaves:int -> weight:float -> Graph.t
(** Node 0 is the hub. *)

val grid : rows:int -> cols:int -> weight:float -> Graph.t

val random_connected :
  rng:Dsim.Rng.t -> n:int -> extra_edges:int -> min_weight:float -> max_weight:float -> Graph.t
(** Random spanning tree (guaranteeing connectivity) plus
    [extra_edges] additional distinct random edges, with weights
    uniform in [\[min_weight, max_weight)].  All weights are distinct
    with probability 1, as the GHS algorithm requires. *)

val random_mail_site :
  rng:Dsim.Rng.t ->
  hosts:int ->
  servers:int ->
  users_per_host:int * int ->
  extra_edges:int ->
  mail_site
(** Random connected site for balancing sweeps; populations uniform in
    the inclusive range [users_per_host]. *)

(** Parameters of a hierarchical multi-region internetwork. *)
type hierarchy = {
  regions : int;
  hosts_per_region : int;
  servers_per_region : int;
  gateways_per_region : int;
  intra_extra_edges : int;  (** extra random intra-region edges beyond a tree. *)
  backbone_extra_edges : int;  (** extra random gateway-to-gateway edges beyond a backbone ring. *)
  local_weight : float * float;  (** intra-region edge weight range. *)
  backbone_weight : float * float;  (** inter-region edge weight range. *)
}

val default_hierarchy : hierarchy

val hierarchical : rng:Dsim.Rng.t -> hierarchy -> Graph.t
(** Regions named ["r0"], ["r1"], … with hosts, servers and gateways
    per region; each region internally connected (random tree + extra
    edges), gateways joined by a backbone ring + extra edges.  All
    edge weights drawn from continuous ranges, hence distinct with
    probability 1. *)

val sized_hierarchy :
  regions:int ->
  hosts_per_region:int ->
  servers_per_region:int ->
  ?gateways_per_region:int ->
  ?degree:float ->
  ?local_weight:float * float ->
  ?backbone_weight:float * float ->
  unit ->
  hierarchy
(** Hierarchy spec with the edge counts derived from a target average
    node degree instead of spelled out: each region gets enough extra
    random edges beyond its spanning tree to reach [degree] (default 6)
    on average, and the backbone gets [regions - 1] extra gateway
    links beyond its ring.  [gateways_per_region] defaults to 2; the
    weight ranges default to {!default_hierarchy}'s.  This is how the
    scale benchmark dials topology density.
    @raise Invalid_argument on non-positive counts or [degree < 2]. *)

val scale_site : rng:Dsim.Rng.t -> ?users_per_host:int -> hierarchy -> mail_site
(** Generate {!hierarchical} from the spec and annotate it as a
    {!mail_site}: every [Host] node carries [users_per_host] users
    (default 10) and every [Server] node serves mail.  Gateways carry
    no users — they only relay.  Deterministic given the [rng] seed;
    this is the large-topology generator behind [bench scale]. *)

val region_of_gateways : Graph.t -> (string * Graph.node list) list
(** Gateway nodes grouped by region, sorted by region name. *)
