type node = int

type kind = Host | Server | Gateway | Relay

type node_info = { label : string; kind : kind; region : string }

type t = {
  mutable infos : node_info array;
  mutable count : int;
  adjacency : (node, (node * float) list ref) Hashtbl.t;
  mutable n_edges : int;
}

let create () =
  { infos = [||]; count = 0; adjacency = Hashtbl.create 64; n_edges = 0 }

let kind_prefix = function
  | Host -> "H"
  | Server -> "S"
  | Gateway -> "G"
  | Relay -> "R"

let add_node ?label ?(kind = Relay) ?(region = "") g =
  let id = g.count in
  let label =
    match label with Some l -> l | None -> kind_prefix kind ^ string_of_int id
  in
  let info = { label; kind; region } in
  if g.count = Array.length g.infos then begin
    let cap = max 8 (2 * Array.length g.infos) in
    let infos = Array.make cap info in
    Array.blit g.infos 0 infos 0 g.count;
    g.infos <- infos
  end;
  g.infos.(id) <- info;
  g.count <- g.count + 1;
  Hashtbl.add g.adjacency id (ref []);
  id

let mem_node g v = v >= 0 && v < g.count

let adj g v =
  match Hashtbl.find_opt g.adjacency v with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Graph: unknown node %d" v)

let mem_edge g u v =
  mem_node g u && mem_node g v && List.mem_assoc v !(adj g u)

let add_edge g u v w =
  if u = v then invalid_arg "Graph.add_edge: self loop";
  if not (Float.is_finite w) || w <= 0. then
    invalid_arg "Graph.add_edge: weight must be positive and finite";
  if not (mem_node g u) || not (mem_node g v) then
    invalid_arg "Graph.add_edge: unknown endpoint";
  if mem_edge g u v then invalid_arg "Graph.add_edge: duplicate edge";
  let au = adj g u and av = adj g v in
  au := (v, w) :: !au;
  av := (u, w) :: !av;
  g.n_edges <- g.n_edges + 1

let node_count g = g.count
let edge_count g = g.n_edges
let nodes g = List.init g.count Fun.id

let info g v =
  if not (mem_node g v) then invalid_arg (Printf.sprintf "Graph: unknown node %d" v);
  g.infos.(v)

let kind g v = (info g v).kind
let label g v = (info g v).label
let region g v = (info g v).region

let nodes_of_kind g k = List.filter (fun v -> kind g v = k) (nodes g)
let nodes_in_region g r = List.filter (fun v -> String.equal (region g v) r) (nodes g)

let regions g =
  nodes g
  |> List.map (region g)
  |> List.sort_uniq String.compare

let weight g u v =
  if mem_node g u && mem_node g v then List.assoc_opt v !(adj g u) else None

let neighbors g v =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !(adj g v)

let degree g v = List.length !(adj g v)

let edges g =
  nodes g
  |> List.concat_map (fun u ->
         List.filter_map
           (fun (v, w) -> if u < v then Some (u, v, w) else None)
           !(adj g u))
  |> List.sort (fun (u1, v1, w1) (u2, v2, w2) ->
         match Int.compare u1 u2 with
         | 0 -> (
             match Int.compare v1 v2 with 0 -> Float.compare w1 w2 | c -> c)
         | c -> c)

let total_weight g = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. (edges g)

let is_connected g =
  if g.count = 0 then true
  else begin
    let seen = Array.make g.count false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter (fun (u, _) -> visit u) !(adj g v)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let subgraph g keep =
  let sub = create () in
  let mapping = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if mem_node g v && not (Hashtbl.mem mapping v) then begin
        let i = info g v in
        let v' = add_node ~label:i.label ~kind:i.kind ~region:i.region sub in
        Hashtbl.add mapping v v'
      end)
    keep;
  List.iter
    (fun (u, v, w) ->
      match (Hashtbl.find_opt mapping u, Hashtbl.find_opt mapping v) with
      | Some u', Some v' -> add_edge sub u' v' w
      | _ -> ())
    (edges g);
  (sub, fun v -> Hashtbl.find_opt mapping v)

let pp ppf g =
  Format.fprintf ppf "@[<v>nodes: %d, edges: %d@ " g.count g.n_edges;
  List.iter
    (fun v ->
      let i = info g v in
      let pp_nbr ppf (u, w) = Format.fprintf ppf "%s(%g)" (label g u) w in
      Format.fprintf ppf "%-6s %-7s region=%-8s -> %a@ " i.label
        (match i.kind with
        | Host -> "host"
        | Server -> "server"
        | Gateway -> "gateway"
        | Relay -> "relay")
        (if i.region = "" then "-" else i.region)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_nbr)
        (neighbors g v))
    (nodes g);
  Format.fprintf ppf "@]"
