type mail_site = {
  graph : Graph.t;
  hosts : (Graph.node * int) list;
  servers : Graph.node list;
}

let paper_fig1 () =
  let g = Graph.create () in
  let region = "r0" in
  let host i = Graph.add_node ~label:(Printf.sprintf "H%d" i) ~kind:Host ~region g in
  let server i = Graph.add_node ~label:(Printf.sprintf "S%d" i) ~kind:Server ~region g in
  let h1 = host 1 and h2 = host 2 and h3 = host 3 in
  let h4 = host 4 and h5 = host 5 and h6 = host 6 in
  let s1 = server 1 and s2 = server 2 and s3 = server 3 in
  let link u v = Graph.add_edge g u v 1.0 in
  link h1 s1;
  link h3 s1;
  link h2 s2;
  link h4 s2;
  link h5 s2;
  link h6 s3;
  link s1 s2;
  link s2 s3;
  {
    graph = g;
    hosts = [ (h1, 50); (h2, 60); (h3, 50); (h4, 50); (h5, 40); (h6, 20) ];
    servers = [ s1; s2; s3 ];
  }

let paper_table3 () =
  let g = Graph.create () in
  let region = "r0" in
  let host i = Graph.add_node ~label:(Printf.sprintf "H%d" i) ~kind:Host ~region g in
  let server i = Graph.add_node ~label:(Printf.sprintf "S%d" i) ~kind:Server ~region g in
  let h1 = host 1 and h2 = host 2 and h3 = host 3 in
  let s1 = server 1 and s2 = server 2 and s3 = server 3 in
  let link u v = Graph.add_edge g u v 1.0 in
  link h1 s1;
  link h2 s2;
  link h3 s3;
  link s1 s2;
  link s2 s3;
  { graph = g; hosts = [ (h1, 100); (h2, 100); (h3, 20) ]; servers = [ s1; s2; s3 ] }

let arpanet () =
  let g = Graph.create () in
  let site label region = Graph.add_node ~label ~kind:Relay ~region g in
  (* West coast *)
  let ucla = site "UCLA" "west" in
  let sri = site "SRI" "west" in
  let ucsb = site "UCSB" "west" in
  let stanford = site "STAN" "west" in
  let ames = site "AMES" "west" in
  let usc = site "USC" "west" in
  let rand = site "RAND" "west" in
  (* Mountain / central *)
  let utah = site "UTAH" "central" in
  let illinois = site "ILL" "central" in
  let aberdeen = site "ABER" "central" in
  let carnegie = site "CMU" "central" in
  let case = site "CASE" "central" in
  (* East coast *)
  let mit = site "MIT" "east" in
  let bbn = site "BBN" "east" in
  let harvard = site "HARV" "east" in
  let lincoln = site "LL" "east" in
  let nbs = site "NBS" "east" in
  let mitre = site "MITRE" "east" in
  let belvoir = site "BELV" "east" in
  let rutgers = site "RUTG" "east" in
  (* Historical-ish links; weights are rough mileage / 100. *)
  List.iter
    (fun (u, v, w) -> Graph.add_edge g u v w)
    [
      (ucla, sri, 3.5); (ucla, ucsb, 1.0); (ucla, rand, 0.2); (ucla, usc, 0.2);
      (sri, ucsb, 3.0); (sri, stanford, 0.2); (sri, ames, 0.3); (sri, utah, 7.5);
      (stanford, ames, 0.2); (rand, usc, 0.1); (usc, utah, 7.0);
      (utah, illinois, 13.0); (illinois, mit, 10.0); (illinois, carnegie, 4.5);
      (carnegie, case, 1.2); (case, mit, 6.0); (aberdeen, nbs, 0.7);
      (aberdeen, belvoir, 0.6); (mit, bbn, 0.1); (mit, lincoln, 0.2);
      (bbn, harvard, 0.1); (harvard, rutgers, 2.5); (rutgers, mitre, 2.0);
      (mitre, nbs, 0.2); (nbs, belvoir, 0.3); (rand, aberdeen, 23.0);
      (lincoln, case, 5.5);
    ];
  g

let arpanet_mail_site () =
  let g = arpanet () in
  let by_label l =
    List.find (fun v -> String.equal (Graph.label g v) l) (Graph.nodes g)
  in
  let servers = List.map by_label [ "BBN"; "UCLA"; "ILL" ] in
  let hosts =
    List.filter (fun v -> not (List.mem v servers)) (Graph.nodes g)
    |> List.map (fun v -> (v, 10))
  in
  { graph = g; hosts; servers }

let line ~n ~weight =
  if n <= 0 then invalid_arg "Topology.line: n must be positive";
  let g = Graph.create () in
  let ids = Array.init n (fun _ -> Graph.add_node g) in
  for i = 0 to n - 2 do
    Graph.add_edge g ids.(i) ids.(i + 1) weight
  done;
  g

let ring ~n ~weight =
  if n < 3 then invalid_arg "Topology.ring: need at least 3 nodes";
  let g = line ~n ~weight in
  Graph.add_edge g (n - 1) 0 weight;
  g

let star ~leaves ~weight =
  if leaves <= 0 then invalid_arg "Topology.star: need at least one leaf";
  let g = Graph.create () in
  let hub = Graph.add_node ~label:"hub" g in
  for _ = 1 to leaves do
    let leaf = Graph.add_node g in
    Graph.add_edge g hub leaf weight
  done;
  g

let grid ~rows ~cols ~weight =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.grid: empty grid";
  let g = Graph.create () in
  let ids = Array.init (rows * cols) (fun _ -> Graph.add_node g) in
  let at r c = ids.((r * cols) + c) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge g (at r c) (at r (c + 1)) weight;
      if r + 1 < rows then Graph.add_edge g (at r c) (at (r + 1) c) weight
    done
  done;
  g

let random_weight rng lo hi =
  if hi <= lo then lo else Dsim.Rng.uniform rng lo hi

(* Random spanning tree by attaching each new node to a uniformly
   chosen earlier node, then sprinkling extra edges. *)
let random_connected ~rng ~n ~extra_edges ~min_weight ~max_weight =
  if n <= 0 then invalid_arg "Topology.random_connected: n must be positive";
  let g = Graph.create () in
  let ids = Array.init n (fun _ -> Graph.add_node g) in
  for i = 1 to n - 1 do
    let parent = Dsim.Rng.int rng i in
    Graph.add_edge g ids.(i) ids.(parent) (random_weight rng min_weight max_weight)
  done;
  let max_extra = ((n * (n - 1)) / 2) - (n - 1) in
  let wanted = min extra_edges max_extra in
  let added = ref 0 in
  while !added < wanted do
    let u = Dsim.Rng.int rng n and v = Dsim.Rng.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      Graph.add_edge g u v (random_weight rng min_weight max_weight);
      incr added
    end
  done;
  g

let random_mail_site ~rng ~hosts ~servers ~users_per_host ~extra_edges =
  if hosts <= 0 || servers <= 0 then
    invalid_arg "Topology.random_mail_site: need hosts and servers";
  let n = hosts + servers in
  let g = Graph.create () in
  let host_ids =
    List.init hosts (fun i ->
        Graph.add_node ~label:(Printf.sprintf "H%d" (i + 1)) ~kind:Host ~region:"r0" g)
  in
  let server_ids =
    List.init servers (fun i ->
        Graph.add_node ~label:(Printf.sprintf "S%d" (i + 1)) ~kind:Server ~region:"r0" g)
  in
  (* Spanning tree over all nodes. *)
  for i = 1 to n - 1 do
    let parent = Dsim.Rng.int rng i in
    Graph.add_edge g i parent (random_weight rng 1.0 4.0)
  done;
  let max_extra = ((n * (n - 1)) / 2) - (n - 1) in
  let wanted = min extra_edges max_extra in
  let added = ref 0 in
  while !added < wanted do
    let u = Dsim.Rng.int rng n and v = Dsim.Rng.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      Graph.add_edge g u v (random_weight rng 1.0 4.0);
      incr added
    end
  done;
  let lo, hi = users_per_host in
  let hosts =
    List.map (fun h -> (h, lo + Dsim.Rng.int rng (max 1 (hi - lo + 1)))) host_ids
  in
  { graph = g; hosts; servers = server_ids }

type hierarchy = {
  regions : int;
  hosts_per_region : int;
  servers_per_region : int;
  gateways_per_region : int;
  intra_extra_edges : int;
  backbone_extra_edges : int;
  local_weight : float * float;
  backbone_weight : float * float;
}

let default_hierarchy =
  {
    regions = 3;
    hosts_per_region = 6;
    servers_per_region = 2;
    gateways_per_region = 2;
    intra_extra_edges = 4;
    backbone_extra_edges = 2;
    local_weight = (1.0, 3.0);
    backbone_weight = (5.0, 12.0);
  }

let hierarchical ~rng spec =
  if spec.regions <= 0 then invalid_arg "Topology.hierarchical: need regions";
  if spec.gateways_per_region <= 0 then
    invalid_arg "Topology.hierarchical: need gateways";
  let g = Graph.create () in
  let lo_l, hi_l = spec.local_weight and lo_b, hi_b = spec.backbone_weight in
  let all_gateways = ref [] in
  for r = 0 to spec.regions - 1 do
    let region = Printf.sprintf "r%d" r in
    let members = ref [] in
    let add kind label_prefix count =
      List.init count (fun i ->
          let label = Printf.sprintf "%s%d-%s" label_prefix (i + 1) region in
          let v = Graph.add_node ~label ~kind ~region g in
          members := v :: !members;
          v)
    in
    let _hosts = add Graph.Host "H" spec.hosts_per_region in
    let _servers = add Graph.Server "S" spec.servers_per_region in
    let gateways = add Graph.Gateway "G" spec.gateways_per_region in
    all_gateways := !all_gateways @ gateways;
    let members = Array.of_list (List.rev !members) in
    let m = Array.length members in
    (* Intra-region random tree + extra edges. *)
    for i = 1 to m - 1 do
      let parent = Dsim.Rng.int rng i in
      Graph.add_edge g members.(i) members.(parent) (random_weight rng lo_l hi_l)
    done;
    let max_extra = ((m * (m - 1)) / 2) - (m - 1) in
    let wanted = min spec.intra_extra_edges max_extra in
    let added = ref 0 in
    while !added < wanted do
      let u = members.(Dsim.Rng.int rng m) and v = members.(Dsim.Rng.int rng m) in
      if u <> v && not (Graph.mem_edge g u v) then begin
        Graph.add_edge g u v (random_weight rng lo_l hi_l);
        incr added
      end
    done
  done;
  (* Backbone: ring over one gateway per region, then extra random
     gateway-to-gateway links across distinct regions. *)
  let gw = Array.of_list !all_gateways in
  let primary =
    Array.init spec.regions (fun r -> gw.(r * spec.gateways_per_region))
  in
  if spec.regions > 1 then begin
    for r = 0 to spec.regions - 1 do
      let next = (r + 1) mod spec.regions in
      if not (Graph.mem_edge g primary.(r) primary.(next)) then
        Graph.add_edge g primary.(r) primary.(next) (random_weight rng lo_b hi_b)
    done;
    let added = ref 0 in
    let attempts = ref 0 in
    while !added < spec.backbone_extra_edges && !attempts < 1000 do
      incr attempts;
      let u = gw.(Dsim.Rng.int rng (Array.length gw)) in
      let v = gw.(Dsim.Rng.int rng (Array.length gw)) in
      if
        u <> v
        && (not (String.equal (Graph.region g u) (Graph.region g v)))
        && not (Graph.mem_edge g u v)
      then begin
        Graph.add_edge g u v (random_weight rng lo_b hi_b);
        incr added
      end
    done
  end;
  g

(* Edges needed on top of the intra-region spanning tree to reach an
   average degree of [degree] over [m] nodes (sum of degrees = 2E). *)
let extra_for_degree ~m ~degree =
  let target = int_of_float (Float.ceil (float_of_int m *. degree /. 2.)) in
  let max_edges = m * (m - 1) / 2 in
  max 0 (min target max_edges - (m - 1))

let sized_hierarchy ~regions ~hosts_per_region ~servers_per_region
    ?(gateways_per_region = 2) ?(degree = 6.0) ?(local_weight = (1.0, 3.0))
    ?(backbone_weight = (5.0, 12.0)) () =
  if regions <= 0 then invalid_arg "Topology.sized_hierarchy: need regions";
  if hosts_per_region <= 0 || servers_per_region <= 0 then
    invalid_arg "Topology.sized_hierarchy: need hosts and servers";
  if gateways_per_region <= 0 then
    invalid_arg "Topology.sized_hierarchy: need gateways";
  if degree < 2.0 then invalid_arg "Topology.sized_hierarchy: degree below tree";
  let m = hosts_per_region + servers_per_region + gateways_per_region in
  {
    regions;
    hosts_per_region;
    servers_per_region;
    gateways_per_region;
    intra_extra_edges = extra_for_degree ~m ~degree;
    backbone_extra_edges = max 0 (regions - 1);
    local_weight;
    backbone_weight;
  }

let scale_site ~rng ?(users_per_host = 10) spec =
  if users_per_host <= 0 then invalid_arg "Topology.scale_site: need users";
  let g = hierarchical ~rng spec in
  let nodes = Graph.nodes g in
  let hosts =
    List.filter (fun v -> Graph.kind g v = Graph.Host) nodes
    |> List.map (fun v -> (v, users_per_host))
  in
  let servers = List.filter (fun v -> Graph.kind g v = Graph.Server) nodes in
  { graph = g; hosts; servers }

let region_of_gateways g =
  Graph.regions g
  |> List.map (fun r ->
         let gws =
           List.filter (fun v -> Graph.kind g v = Graph.Gateway) (Graph.nodes_in_region g r)
         in
         (r, gws))
  |> List.filter (fun (_, gws) -> gws <> [])
