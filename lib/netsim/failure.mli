(** Crash/recovery failure injection.

    Outages flip a node's status in the owning {!Net} at scheduled
    virtual times.  Deterministic schedules support the unit tests;
    the random generator drives the GetMail availability sweeps
    (experiments C1/C2) where servers fail with a given rate and
    recover after exponentially distributed repair times. *)

type outage = { node : Graph.node; start : float; duration : float }

val schedule_outage : 'msg Net.t -> outage -> unit
(** Take the node down at [start] and bring it back at
    [start +. duration].
    @raise Invalid_argument on negative times. *)

val schedule_outages : 'msg Net.t -> outage list -> unit

val random_outages :
  rng:Dsim.Rng.t ->
  nodes:Graph.node list ->
  rate:float ->
  mean_duration:float ->
  horizon:float ->
  outage list
(** For each node, a Poisson process of outage starts with the given
    [rate] (per unit virtual time), each lasting Exp(1/mean_duration).
    Overlapping outages on one node are merged by the net's idempotent
    status flips.  [rate <= 0.] yields no outages. *)

val availability : outages:outage list -> node:Graph.node -> horizon:float -> float
(** Fraction of [0, horizon] during which [node] is up under the given
    schedule (overlaps collapsed). *)

val group_availability :
  outages:outage list -> nodes:Graph.node list -> horizon:float -> float
(** Fraction of [0, horizon] during which {e at least one} of [nodes]
    is up — the availability a replica group offers its users: the
    group is only unavailable while every chain member is down
    simultaneously.  [nodes = []] yields 0 (no server can ever
    serve). *)
