type tree = {
  source : Graph.node;
  dist : float array;
  prev : Graph.node array;
}

let dijkstra ?usable g source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Shortest_path.dijkstra: bad source";
  let edge_ok u v =
    match usable with None -> true | Some f -> f u v
  in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let queue = Dsim.Heap.create () in
  dist.(source) <- 0.;
  Dsim.Heap.push queue 0. source;
  let rec drain () =
    match Dsim.Heap.pop queue with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) && d <= dist.(u) then begin
          settled.(u) <- true;
          let relax (v, w) =
            let nd = dist.(u) +. w in
            (* Strict improvement, or equal cost through a smaller
               predecessor: keeps tie-broken paths deterministic. *)
            if
              edge_ok u v
              && (not settled.(v))
              && (nd < dist.(v) || (nd = dist.(v) && u < prev.(v)))
            then begin
              dist.(v) <- nd;
              prev.(v) <- u;
              Dsim.Heap.push queue nd v
            end
          in
          List.iter relax (Graph.neighbors g u)
        end;
        drain ()
  in
  drain ();
  { source; dist; prev }

let distance t v = t.dist.(v)

let path t target =
  if target = t.source then Some [ t.source ]
  else if Float.is_finite t.dist.(target) then begin
    let rec build v acc =
      if v = t.source then v :: acc else build t.prev.(v) (v :: acc)
    in
    Some (build target [])
  end
  else None

let hop_count t target =
  match path t target with Some p -> Some (List.length p - 1) | None -> None

(* Every reachable non-source node contributes exactly one tree edge
   (prev.(v), v), so the normalised pairs are already distinct. *)
let tree_links t =
  let acc = ref [] in
  Array.iteri
    (fun v p -> if p >= 0 then acc := (if p < v then (p, v) else (v, p)) :: !acc)
    t.prev;
  List.sort
    (fun (u1, v1) (u2, v2) ->
      match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    !acc

let first_hops t =
  let n = Array.length t.dist in
  let hop = Array.make n (-1) in
  (* hop.(v) is the source's neighbour beginning the path to v;
     memoised along the predecessor chain, so the whole table is O(n). *)
  let rec resolve v =
    if v = t.source || t.prev.(v) < 0 then -1
    else if hop.(v) >= 0 then hop.(v)
    else begin
      let h = if t.prev.(v) = t.source then v else resolve t.prev.(v) in
      hop.(v) <- h;
      h
    end
  in
  for v = 0 to n - 1 do
    ignore (resolve v)
  done;
  hop

let all_pairs g = Array.of_list (List.map (dijkstra g) (Graph.nodes g))

let next_hop_table g src = first_hops (dijkstra g src)

let eccentricity g v =
  let t = dijkstra g v in
  Array.fold_left
    (fun acc d -> if Float.is_finite d && d > acc then d else acc)
    0. t.dist

let diameter g =
  List.fold_left (fun acc v -> Float.max acc (eccentricity g v)) 0. (Graph.nodes g)
