type tree = {
  source : Graph.node;
  dist : float array;
  prev : Graph.node array;
}

let dijkstra ?usable g source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Shortest_path.dijkstra: bad source";
  let edge_ok u v =
    match usable with None -> true | Some f -> f u v
  in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let queue = Dsim.Heap.create () in
  dist.(source) <- 0.;
  Dsim.Heap.push queue 0. source;
  let rec drain () =
    match Dsim.Heap.pop queue with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) && d <= dist.(u) then begin
          settled.(u) <- true;
          let relax (v, w) =
            let nd = dist.(u) +. w in
            (* Strict improvement, or equal cost through a smaller
               predecessor: keeps tie-broken paths deterministic. *)
            if
              edge_ok u v
              && (not settled.(v))
              && (nd < dist.(v) || (nd = dist.(v) && u < prev.(v)))
            then begin
              dist.(v) <- nd;
              prev.(v) <- u;
              Dsim.Heap.push queue nd v
            end
          in
          List.iter relax (Graph.neighbors g u)
        end;
        drain ()
  in
  drain ();
  { source; dist; prev }

let distance t v = t.dist.(v)

let path t target =
  if target = t.source then Some [ t.source ]
  else if Float.is_finite t.dist.(target) then begin
    let rec build v acc =
      if v = t.source then v :: acc else build t.prev.(v) (v :: acc)
    in
    Some (build target [])
  end
  else None

let hop_count t target =
  match path t target with Some p -> Some (List.length p - 1) | None -> None

(* Every reachable non-source node contributes exactly one tree edge
   (prev.(v), v), so the normalised pairs are already distinct. *)
let tree_links t =
  let acc = ref [] in
  Array.iteri
    (fun v p -> if p >= 0 then acc := (if p < v then (p, v) else (v, p)) :: !acc)
    t.prev;
  List.sort
    (fun (u1, v1) (u2, v2) ->
      match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    !acc

let first_hops t =
  let n = Array.length t.dist in
  let hop = Array.make n (-1) in
  (* hop.(v) is the source's neighbour beginning the path to v;
     memoised along the predecessor chain, so the whole table is O(n). *)
  let rec resolve v =
    if v = t.source || t.prev.(v) < 0 then -1
    else if hop.(v) >= 0 then hop.(v)
    else begin
      let h = if t.prev.(v) = t.source then v else resolve t.prev.(v) in
      hop.(v) <- h;
      h
    end
  in
  for v = 0 to n - 1 do
    ignore (resolve v)
  done;
  hop

(* --- flat adjacency + arena Dijkstra ------------------------------- *)

type adjacency = {
  adj_n : int;
  adj_index : int array;
  adj_dst : int array;
  adj_weight : float array;
  adj_edge : int array;
}

let compile g =
  let n = Graph.node_count g in
  (* Undirected edge ids follow [Graph.edges] order (u < v, sorted), so
     the numbering is deterministic and shared with every consumer. *)
  let ids = Hashtbl.create (max 16 (2 * Graph.edge_count g)) in
  List.iteri
    (fun i (u, v, _) -> Hashtbl.replace ids ((u * n) + v) i)
    (Graph.edges g);
  let index = Array.make (n + 1) 0 in
  let total = ref 0 in
  let neighbors = Array.init n (Graph.neighbors g) in
  Array.iteri
    (fun u l ->
      index.(u) <- !total;
      total := !total + List.length l)
    neighbors;
  index.(n) <- !total;
  let sz = max 1 !total in
  let dst = Array.make sz 0 in
  let weight = Array.make sz 0. in
  let edge = Array.make sz 0 in
  Array.iteri
    (fun u l ->
      let i = ref index.(u) in
      List.iter
        (fun (v, w) ->
          dst.(!i) <- v;
          weight.(!i) <- w;
          let key = if u < v then (u * n) + v else (v * n) + u in
          edge.(!i) <- Hashtbl.find ids key;
          incr i)
        l)
    neighbors;
  { adj_n = n; adj_index = index; adj_dst = dst; adj_weight = weight; adj_edge = edge }

type scratch = {
  mutable settled : Bytes.t;
  queue : unit Dsim.Heap.Arena.t;
}

let scratch ?(capacity = 256) n =
  { settled = Bytes.make (max 1 n) '\000'; queue = Dsim.Heap.Arena.create ~capacity ~dummy:() () }

let bit_set bits i =
  Char.code (Bytes.unsafe_get bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let dijkstra_flat ~adj ?edge_down ws source =
  let n = adj.adj_n in
  if source < 0 || source >= n then
    invalid_arg "Shortest_path.dijkstra_flat: bad source";
  if Bytes.length ws.settled < n then ws.settled <- Bytes.make n '\000'
  else Bytes.fill ws.settled 0 n '\000';
  let settled = ws.settled in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let via = Array.make n (-1) in
  let q = ws.queue in
  let filtered, down =
    match edge_down with None -> (false, Bytes.empty) | Some b -> (true, b)
  in
  dist.(source) <- 0.;
  ignore (Dsim.Heap.Arena.push q ~prio:0. ~tag:source ());
  while not (Dsim.Heap.Arena.is_empty q) do
    let d = Dsim.Heap.Arena.top_prio q in
    let u = Dsim.Heap.Arena.top_tag q in
    Dsim.Heap.Arena.drop q;
    if Bytes.get settled u = '\000' && d <= dist.(u) then begin
      Bytes.set settled u '\001';
      let du = dist.(u) in
      for i = adj.adj_index.(u) to adj.adj_index.(u + 1) - 1 do
        let v = adj.adj_dst.(i) in
        if
          Bytes.get settled v = '\000'
          && ((not filtered) || not (bit_set down adj.adj_edge.(i)))
        then begin
          let nd = du +. adj.adj_weight.(i) in
          (* Strict improvement, or equal cost through a smaller
             predecessor: identical tie-break to [dijkstra], so both
             implementations return byte-identical trees. *)
          if nd < dist.(v) || (nd = dist.(v) && u < prev.(v)) then begin
            dist.(v) <- nd;
            prev.(v) <- u;
            via.(v) <- adj.adj_edge.(i);
            ignore (Dsim.Heap.Arena.push q ~prio:nd ~tag:v ())
          end
        end
      done
    end
  done;
  ({ source; dist; prev }, via)

let all_pairs g = Array.of_list (List.map (dijkstra g) (Graph.nodes g))

let next_hop_table g src = first_hops (dijkstra g src)

let eccentricity g v =
  let t = dijkstra g v in
  Array.fold_left
    (fun acc d -> if Float.is_finite d && d > acc then d else acc)
    0. t.dist

let diameter g =
  List.fold_left (fun acc v -> Float.max acc (eccentricity g v)) 0. (Graph.nodes g)
