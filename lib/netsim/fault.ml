(* Deterministic fault campaigns: a declarative generalisation of
   {!Failure} from independent node outages to link cuts, region
   partitions, crash/restart schedules with configurable repair
   distributions, and correlated burst failures.

   A campaign is a pure value; [compile] expands it against a concrete
   topology into a [schedule] of timed down/up windows using only the
   campaign's own seeded RNG stream, so the same campaign on the same
   graph always produces the same faults.  [apply] arms the windows on
   a live network. *)

type repair = Fixed of float | Exp_mean of float

type fault =
  | Crashes of { rate : float; repair : repair }
  | Link_cuts of { rate : float; repair : repair }
  | Partition of { region : string; start : float option; duration : float option }
  | Burst of { fraction : float; at : float option; duration : float option }

type campaign = { seed : int; faults : fault list }

let no_faults = { seed = 0; faults = [] }

type target = Node of Graph.node | Link of Graph.node * Graph.node

type window = { target : target; kind : string; start : float; duration : float }

type schedule = { windows : window list; horizon : float }

let default_repair_mean = 150.

(* --- compile --- *)

let draw_repair rng = function
  | Fixed d -> d
  | Exp_mean m -> Dsim.Rng.exponential rng (1. /. m)

(* Poisson-process fault starts on one target, as in
   [Failure.random_outages], but with a pluggable repair law. *)
let poisson_windows rng ~rate ~repair ~horizon ~kind target =
  if rate <= 0. then []
  else begin
    let rec gen t acc =
      let t = t +. Dsim.Rng.exponential rng rate in
      if t >= horizon then List.rev acc
      else
        let duration = draw_repair rng repair in
        gen t ({ target; kind; start = t; duration } :: acc)
    in
    gen 0. []
  end

let boundary_edges graph region =
  List.filter
    (fun (u, v, _) ->
      let ru = Graph.region graph u = region and rv = Graph.region graph v = region in
      ru <> rv)
    (Graph.edges graph)

let compile ?(salt = 0) ~graph ~servers ~horizon campaign =
  if horizon <= 0. then invalid_arg "Fault.compile: horizon must be positive";
  let rng = Dsim.Rng.create (campaign.seed lxor (salt * 0x9e3779b9)) in
  let expand fault =
    match fault with
    | Crashes { rate; repair } ->
        List.concat_map
          (fun node -> poisson_windows rng ~rate ~repair ~horizon ~kind:"crash" (Node node))
          servers
    | Link_cuts { rate; repair } ->
        List.concat_map
          (fun (u, v, _) ->
            poisson_windows rng ~rate ~repair ~horizon ~kind:"link" (Link (u, v)))
          (Graph.edges graph)
    | Partition { region; start; duration } ->
        if not (List.mem region (Graph.regions graph)) then
          invalid_arg (Printf.sprintf "Fault.compile: unknown region %S" region);
        let start = Option.value start ~default:(horizon /. 3.) in
        let duration = Option.value duration ~default:(horizon /. 4.) in
        List.map
          (fun (u, v, _) -> { target = Link (u, v); kind = "partition"; start; duration })
          (boundary_edges graph region)
    | Burst { fraction; at; duration } ->
        let at = Option.value at ~default:(horizon /. 2.) in
        let duration = Option.value duration ~default:(horizon /. 10.) in
        let pool = Array.of_list servers in
        Dsim.Rng.shuffle rng pool;
        let k =
          if fraction <= 0. then 0
          else
            Int.min (Array.length pool)
              (Int.max 1 (int_of_float (ceil (fraction *. float_of_int (Array.length pool)))))
        in
        List.init k (fun i ->
            { target = Node pool.(i); kind = "burst"; start = at; duration })
  in
  let windows = List.concat_map expand campaign.faults in
  { windows; horizon }

let node_outages sched =
  List.filter_map
    (fun w ->
      match w.target with
      | Node node -> Some { Failure.node; start = w.start; duration = w.duration }
      | Link _ -> None)
    sched.windows

(* --- apply --- *)

(* Overlapping windows on one target are nested with a depth count so
   the target only comes back up when the *last* covering window ends
   (plain idempotent flips would resurrect it at the first end). *)
let apply ?on_event net sched =
  let engine = Net.engine net in
  let depth : (target, int ref) Hashtbl.t = Hashtbl.create 32 in
  let counter_of tgt =
    match Hashtbl.find_opt depth tgt with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace depth tgt r;
        r
  in
  let fire w status =
    match on_event with
    | Some f -> f ~time:(Dsim.Engine.now engine) w status
    | None -> ()
  in
  let down w =
    let r = counter_of w.target in
    incr r;
    if !r = 1 then begin
      (match w.target with
      | Node v -> Net.set_down net v
      | Link (u, v) -> Net.set_link_down net u v);
      fire w false
    end
  in
  let up w =
    let r = counter_of w.target in
    if !r > 0 then begin
      decr r;
      if !r = 0 then begin
        (match w.target with
        | Node v -> Net.set_up net v
        | Link (u, v) -> Net.set_link_up net u v);
        fire w true
      end
    end
  in
  List.iter
    (fun w ->
      if w.start < 0. || w.duration < 0. then
        invalid_arg "Fault.apply: negative time in window";
      ignore
        (Dsim.Engine.schedule_at ~category:"fault" engine w.start (fun () -> down w));
      ignore
        (Dsim.Engine.schedule_at ~category:"fault" engine (w.start +. w.duration)
           (fun () -> up w)))
    sched.windows

let heal net sched =
  List.iter
    (fun w ->
      match w.target with
      | Node v -> Net.set_up net v
      | Link (u, v) -> Net.set_link_up net u v)
    sched.windows

(* --- the flag DSL --- *)

let bad fmt = Printf.ksprintf invalid_arg ("Fault.parse: " ^^ fmt)

let float_arg what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f && f >= 0. -> f
  | _ -> bad "bad %s %S" what s

(* "RATE", "RATE/MEAN" (exponential repair) or "RATE/=D" (fixed). *)
let rate_repair spec =
  match String.split_on_char '/' spec with
  | [ r ] -> (float_arg "rate" r, Exp_mean default_repair_mean)
  | [ r; rep ] ->
      let repair =
        if String.length rep > 0 && rep.[0] = '=' then
          Fixed (float_arg "repair" (String.sub rep 1 (String.length rep - 1)))
        else Exp_mean (float_arg "repair" rep)
      in
      (float_arg "rate" r, repair)
  | _ -> bad "bad rate spec %S" spec

(* "X@START+DURATION" or bare "X". *)
let at_window spec =
  match String.split_on_char '@' spec with
  | [ x ] -> (x, None, None)
  | [ x; win ] -> (
      match String.split_on_char '+' win with
      | [ s; d ] -> (x, Some (float_arg "start" s), Some (float_arg "duration" d))
      | _ -> bad "bad window %S (expected START+DURATION)" win)
  | _ -> bad "bad spec %S" spec

let parse s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if items = [] then bad "empty campaign %S" s;
  let seed = ref 0 in
  let faults =
    List.filter_map
      (fun item ->
        match String.index_opt item ':' with
        | None -> bad "%S (expected KIND:SPEC)" item
        | Some i ->
            let kind = String.sub item 0 i in
            let spec = String.sub item (i + 1) (String.length item - i - 1) in
            (match kind with
            | "seed" -> (
                match int_of_string_opt spec with
                | Some n ->
                    seed := n;
                    None
                | None -> bad "bad seed %S" spec)
            | "crash" ->
                let rate, repair = rate_repair spec in
                Some (Crashes { rate; repair })
            | "link" ->
                let rate, repair = rate_repair spec in
                Some (Link_cuts { rate; repair })
            | "partition" ->
                let region, start, duration = at_window spec in
                if region = "" then bad "empty region in %S" item;
                Some (Partition { region; start; duration })
            | "burst" ->
                let frac, at, duration = at_window spec in
                let fraction = float_arg "fraction" frac in
                if fraction > 1. then bad "burst fraction %g > 1" fraction;
                Some (Burst { fraction; at; duration })
            | _ -> bad "unknown fault kind %S" kind))
      items
  in
  { seed = !seed; faults }

let string_of_repair = function
  | Exp_mean m -> Printf.sprintf "/%g" m
  | Fixed d -> Printf.sprintf "/=%g" d

let string_of_window = function
  | Some s, Some d -> Printf.sprintf "@%g+%g" s d
  | _ -> ""

let to_string c =
  let items =
    List.map
      (function
        | Crashes { rate; repair } ->
            Printf.sprintf "crash:%g%s" rate (string_of_repair repair)
        | Link_cuts { rate; repair } ->
            Printf.sprintf "link:%g%s" rate (string_of_repair repair)
        | Partition { region; start; duration } ->
            Printf.sprintf "partition:%s%s" region (string_of_window (start, duration))
        | Burst { fraction; at; duration } ->
            Printf.sprintf "burst:%g%s" fraction (string_of_window (at, duration)))
      c.faults
  in
  let items = if c.seed <> 0 then Printf.sprintf "seed:%d" c.seed :: items else items in
  String.concat "," items

let pp ppf c = Format.pp_print_string ppf (to_string c)

let standard = parse "seed:5,crash:0.002/150,link:0.0008,partition:r1@1500+600,burst:0.25"
