type 'msg handler = time:float -> src:Graph.node -> 'msg -> unit

type invalidation = Full | Scoped

(* One cached routing state per source: the Dijkstra tree, a derived
   next-hop table for O(1) first-hop queries, and the exact set of
   links the tree routes over — what lets a link flip touch only the
   trees it can actually affect. *)
type route = {
  tree : Shortest_path.tree;
  next_hop : Graph.node array;
  via : int array;
      (* per-node id of the tree edge reaching it (-1 for the source
         and unreachable nodes) — both the dependency record and the
         edge set incremental repair patches in place *)
  mutable flip_cursor : int;
      (* index into the net's flip log this tree is synced to; the
         gap to [flip_len] is the set of link flips the tree has not
         yet observed (settled lazily, at query time) *)
}

(* Pooled in-flight delivery slots: the per-send (src, dst, hops,
   payload) tuple lives in parallel arrays and the scheduled event is a
   per-slot closure allocated once, on the slot's first use, and reused
   for every later flight through that slot.  The steady state of the
   dominant event kind — wire delivery — therefore allocates nothing.
   Created lazily on the first send so the payload array has a filler
   value without requiring a dummy at [create] time. *)
type 'msg slots = {
  mutable s_src : int array;
  mutable s_dst : int array;
  mutable s_hops : int array;
  mutable s_msg : 'msg array;
  mutable s_fire : (unit -> unit) array;
  mutable s_free : int array;  (* stack of free slot indices *)
  mutable s_free_top : int;
}

type 'msg t = {
  graph : Graph.t;
  engine : Dsim.Engine.t;
  trace : Dsim.Trace.t option;
  bandwidth : float;  (* bytes per unit time per link; infinity = unsized *)
  loss_rate : float;
  loss_rng : Dsim.Rng.t;
  mutable lost : int;
  up : bool array;
  (* Links are undirected edge ids (positions in the sorted
     [Graph.edges] list); outages live in a bitset, not a hashtable. *)
  n : int;
  edge_ends : (Graph.node * Graph.node) array;  (* id -> (u, v), u < v *)
  edge_ids : (int, int) Hashtbl.t;  (* u * n + v (u < v) -> id; cold paths *)
  edge_down : Bytes.t;
  mutable edges_down : int;
  adj : Shortest_path.adjacency;
  scratch : Shortest_path.scratch;
  handlers : 'msg handler array;
  mutable listeners : (time:float -> Graph.node -> bool -> unit) list;
  routes : route option array;  (* Dijkstra cache per source *)
  (* Lazy-repair flip log: every scoped link flip appends one entry
     ([edge id * 2], low bit 1 = restore) and each cached tree carries
     a cursor into the log.  Trees catch up at query time — a flip
     that cannot touch a canonical tree (a cut of an edge it does not
     route over, a restore that cannot shorten or re-tie-break any
     path) just advances the cursor, so trees nobody queries between
     flips never pay for repairs at all. *)
  edge_weight : float array;  (* id -> link weight; restore checks *)
  mutable flip_log : int array;
  mutable flip_len : int;
  invalidation : invalidation;
  (* Repair workspace, shared by every tree: per-node mark bytes
     (0 untouched / 1 detached-unsettled / 2 settled), a scratch heap,
     and the list of marked nodes to clear afterwards. *)
  mark : Bytes.t;
  repair_heap : unit Dsim.Heap.Arena.t;
  mutable touched : int array;
  mutable ntouched : int;
  (* Route-anchor bitset: when set, only these nodes keep cached
     Dijkstra trees warm — a (src, dst) query is answered from the
     anchored endpoint's tree (paths are symmetric on an undirected
     graph).  Declaring the infrastructure nodes (servers, gateways)
     as anchors shrinks the set of trees the fault campaign must
     repair from every-host to a few hundred shared ones. *)
  mutable anchors : Bytes.t option;
  mutable route_recomputes : int;
  mutable route_cache_hits : int;
  mutable route_invalidations : int;
  mutable slots : 'msg slots option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable hops : int;
}

let default_handler ~time:_ ~src:_ _ = ()

let create ~engine ?trace ?(bandwidth = infinity) ?(loss_rate = 0.) ?(loss_seed = 0)
    ?(invalidation = Scoped) graph =
  if bandwidth <= 0. then invalid_arg "Net.create: bandwidth must be positive";
  if loss_rate < 0. || loss_rate >= 1. then
    invalid_arg "Net.create: loss_rate outside [0, 1)";
  let n = Graph.node_count graph in
  let edges = Graph.edges graph in
  let edge_ends = Array.of_list (List.map (fun (u, v, _) -> (u, v)) edges) in
  let edge_weight = Array.of_list (List.map (fun (_, _, w) -> w) edges) in
  let edge_ids = Hashtbl.create (max 16 (2 * Array.length edge_ends)) in
  Array.iteri (fun i (u, v) -> Hashtbl.replace edge_ids ((u * n) + v) i) edge_ends;
  {
    graph;
    engine;
    trace;
    bandwidth;
    loss_rate;
    loss_rng = Dsim.Rng.create loss_seed;
    lost = 0;
    up = Array.make n true;
    n;
    edge_ends;
    edge_ids;
    edge_down = Bytes.make ((Array.length edge_ends + 7) / 8 |> max 1) '\000';
    edges_down = 0;
    adj = Shortest_path.compile graph;
    scratch = Shortest_path.scratch n;
    handlers = Array.make n default_handler;
    listeners = [];
    routes = Array.make n None;
    edge_weight;
    flip_log = [||];
    flip_len = 0;
    invalidation;
    mark = Bytes.make (max 1 n) '\000';
    repair_heap = Dsim.Heap.Arena.create ~capacity:64 ~dummy:() ();
    touched = Array.make 64 0;
    ntouched = 0;
    anchors = None;
    route_recomputes = 0;
    route_cache_hits = 0;
    route_invalidations = 0;
    slots = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    hops = 0;
  }

let graph t = t.graph
let engine t = t.engine

let check_node t v =
  if not (Graph.mem_node t.graph v) then
    invalid_arg (Printf.sprintf "Net: unknown node %d" v)

let set_handler t v h =
  check_node t v;
  t.handlers.(v) <- h

let is_up t v =
  check_node t v;
  t.up.(v)

let notify t v status =
  let time = Dsim.Engine.now t.engine in
  (match t.trace with
  | Some tr ->
      Dsim.Trace.infof tr ~time ~category:"net"
        "node %s %s" (Graph.label t.graph v) (if status then "up" else "down")
  | None -> ());
  List.iter (fun f -> f ~time v status) t.listeners

let set_up t v =
  check_node t v;
  if not t.up.(v) then begin
    t.up.(v) <- true;
    notify t v true
  end

let set_down t v =
  check_node t v;
  if t.up.(v) then begin
    t.up.(v) <- false;
    notify t v false
  end

let on_status_change t f = t.listeners <- t.listeners @ [ f ]

(* --- Link outages.  Either endpoint orientation resolves to the same
   undirected edge id; the outage set itself is one bit per edge. --- *)

let check_link t u v =
  check_node t u;
  check_node t v;
  if Graph.weight t.graph u v = None then
    invalid_arg (Printf.sprintf "Net: nodes %d and %d are not adjacent" u v)

let edge_id t u v =
  let key = if u <= v then (u * t.n) + v else (v * t.n) + u in
  Hashtbl.find t.edge_ids key

let edge_is_down t e =
  Char.code (Bytes.unsafe_get t.edge_down (e lsr 3)) land (1 lsl (e land 7)) <> 0

let link_is_up t u v = not (edge_is_down t (edge_id t u v))

(* --- Route cache with lazy incremental repair.

   A cut of a tree edge does not discard the tree: it detaches exactly
   the subtree hanging below the cut edge and re-routes those nodes
   with a Dijkstra confined to the detached set, seeded from its
   boundary; a link restore runs the standard decrease-propagation
   from the restored edge.  Both repairs re-establish the canonical
   tree a fresh full Dijkstra computes — exact distances, and every
   node's predecessor is its smallest-id neighbour achieving that
   distance (the explicit tie-break in [Shortest_path]) — so repaired
   answers stay byte-identical (distances, predecessors, first hops)
   to recomputation against the current outage set; the oracle
   property test in test/oracle asserts exactly that after every flip.

   Repairs run lazily: a flip only appends to the flip log, and each
   tree reconciles the log suffix it has not seen on its next query
   ([catch_up] below).  Under a fault campaign most flips touch trees
   that are never consulted before the link comes back, and those now
   cost one cursor comparison instead of a subtree repair. --- *)

let log_flip t code =
  if t.flip_len = Array.length t.flip_log then begin
    let grown = Array.make (max 64 (2 * t.flip_len)) 0 in
    Array.blit t.flip_log 0 grown 0 t.flip_len;
    t.flip_log <- grown
  end;
  t.flip_log.(t.flip_len) <- code;
  t.flip_len <- t.flip_len + 1

let drop_route t src =
  match t.routes.(src) with
  | None -> ()
  | Some _ ->
      t.route_invalidations <- t.route_invalidations + 1;
      t.routes.(src) <- None

let invalidate_all t =
  Array.iteri (fun src _ -> drop_route t src) t.routes

(* --- The repair pass itself. --- *)

let touch t v c =
  Bytes.unsafe_set t.mark v c;
  if t.ntouched = Array.length t.touched then
    t.touched <- Array.append t.touched (Array.make t.ntouched 0);
  t.touched.(t.ntouched) <- v;
  t.ntouched <- t.ntouched + 1

let clear_marks t =
  for i = 0 to t.ntouched - 1 do
    Bytes.unsafe_set t.mark t.touched.(i) '\000'
  done;
  t.ntouched <- 0

(* Replace [v]'s tree edge with [e] ([-1] = no edge). *)
let reseat_via r v e = if r.via.(v) <> e then r.via.(v) <- e

(* After [x]'s first hop changed, walk its tree descendants (the
   adjacency is the child index: [w] is a child of [x] iff
   [prev.(w) = x]) refreshing theirs, pruning where the value is
   already right.  Transient values written over nodes still awaiting
   their own repair pop are overwritten when they settle. *)
let rec push_hops t r src x =
  let adj = t.adj in
  let prev = r.tree.Shortest_path.prev in
  for i = adj.Shortest_path.adj_index.(x) to adj.Shortest_path.adj_index.(x + 1) - 1 do
    let c = adj.Shortest_path.adj_dst.(i) in
    if prev.(c) = x then begin
      let nh = if x = src then c else r.next_hop.(x) in
      if r.next_hop.(c) <> nh then begin
        r.next_hop.(c) <- nh;
        push_hops t r src c
      end
    end
  done

(* A cut of tree edge [e]: detach the subtree below it, then re-route
   only the detached nodes.  Everything outside the detached set keeps
   its exact distance, predecessor and first hop (its root path avoids
   [e] by definition), so the confined Dijkstra — seeded by relaxing
   every up boundary edge into the set — rebuilds the canonical tree
   restricted to the detached nodes. *)
let repair_cut t src r e =
  t.route_invalidations <- t.route_invalidations + 1;
  let adj = t.adj in
  let dist = r.tree.Shortest_path.dist
  and prev = r.tree.Shortest_path.prev in
  let a, b = t.edge_ends.(e) in
  let child = if r.via.(b) = e then b else a in
  (* Collect the detached subtree ([touched] doubles as BFS queue). *)
  touch t child '\001';
  let head = ref (t.ntouched - 1) in
  while !head < t.ntouched do
    let v = t.touched.(!head) in
    incr head;
    for i = adj.Shortest_path.adj_index.(v) to adj.Shortest_path.adj_index.(v + 1) - 1 do
      let w = adj.Shortest_path.adj_dst.(i) in
      if prev.(w) = v then touch t w '\001'
    done
  done;
  let nS = t.ntouched in
  for i = 0 to nS - 1 do
    let v = t.touched.(i) in
    reseat_via r v (-1);
    dist.(v) <- infinity;
    prev.(v) <- -1;
    r.next_hop.(v) <- -1
  done;
  let q = t.repair_heap in
  let relax u v nd e' =
    if nd < dist.(v) || (nd = dist.(v) && u < prev.(v)) then begin
      dist.(v) <- nd;
      prev.(v) <- u;
      r.via.(v) <- e';
      ignore (Dsim.Heap.Arena.push q ~prio:nd ~tag:v ())
    end
  in
  (* Seed: every up edge from a node outside the set (exact distance)
     into it. *)
  for i = 0 to nS - 1 do
    let v = t.touched.(i) in
    for j = adj.Shortest_path.adj_index.(v) to adj.Shortest_path.adj_index.(v + 1) - 1 do
      let u = adj.Shortest_path.adj_dst.(j) in
      if
        Bytes.unsafe_get t.mark u = '\000'
        && Float.is_finite dist.(u)
        && not (edge_is_down t adj.Shortest_path.adj_edge.(j))
      then relax u v (dist.(u) +. adj.Shortest_path.adj_weight.(j)) adj.Shortest_path.adj_edge.(j)
    done
  done;
  (* Confined Dijkstra over the detached set. *)
  while not (Dsim.Heap.Arena.is_empty q) do
    let d = Dsim.Heap.Arena.top_prio q in
    let v = Dsim.Heap.Arena.top_tag q in
    Dsim.Heap.Arena.drop q;
    if Bytes.unsafe_get t.mark v = '\001' && d <= dist.(v) then begin
      Bytes.unsafe_set t.mark v '\002';
      (* [via] carried the winning edge through the relaxes; commit it
         to the dependency index now that it is final. *)
      let e' = r.via.(v) in
      r.via.(v) <- -1;
      reseat_via r v e';
      r.next_hop.(v) <- (if prev.(v) = src then v else r.next_hop.(prev.(v)));
      let dv = dist.(v) in
      for j = adj.Shortest_path.adj_index.(v) to adj.Shortest_path.adj_index.(v + 1) - 1 do
        let w = adj.Shortest_path.adj_dst.(j) in
        if
          Bytes.unsafe_get t.mark w = '\001'
          && not (edge_is_down t adj.Shortest_path.adj_edge.(j))
        then relax v w (dv +. adj.Shortest_path.adj_weight.(j)) adj.Shortest_path.adj_edge.(j)
      done
    end
  done;
  clear_marks t

(* A restore that can improve this tree: propagate the decreases (and
   equal-cost smaller-predecessor flips) out from the restored edge.
   A node's distance is final when it pops, so its canonical
   predecessor — the smallest-id up-neighbour achieving the distance —
   is recomputed by a local scan there, which is what keeps repaired
   predecessors identical to a fresh Dijkstra even for neighbours this
   propagation never re-relaxes. *)
let repair_restore t src r ru rv w =
  t.route_invalidations <- t.route_invalidations + 1;
  let adj = t.adj in
  let dist = r.tree.Shortest_path.dist
  and prev = r.tree.Shortest_path.prev in
  let q = t.repair_heap in
  let bump v =
    if Bytes.unsafe_get t.mark v = '\000' then touch t v '\001';
    ignore (Dsim.Heap.Arena.push q ~prio:dist.(v) ~tag:v ())
  in
  let seed u v =
    if Float.is_finite dist.(u) then begin
      let nd = dist.(u) +. w in
      if nd < dist.(v) then begin
        dist.(v) <- nd;
        bump v
      end
      else if nd = dist.(v) && prev.(v) >= 0 && u < prev.(v) then bump v
    end
  in
  seed ru rv;
  seed rv ru;
  while not (Dsim.Heap.Arena.is_empty q) do
    let d = Dsim.Heap.Arena.top_prio q in
    let x = Dsim.Heap.Arena.top_tag q in
    Dsim.Heap.Arena.drop q;
    if Bytes.unsafe_get t.mark x = '\001' && d <= dist.(x) then begin
      Bytes.unsafe_set t.mark x '\002';
      let dx = dist.(x) in
      (* Canonical predecessor scan. *)
      let best = ref max_int and best_e = ref (-1) in
      for j = adj.Shortest_path.adj_index.(x) to adj.Shortest_path.adj_index.(x + 1) - 1 do
        let u = adj.Shortest_path.adj_dst.(j) in
        if
          u < !best
          && dist.(u) +. adj.Shortest_path.adj_weight.(j) = dx
          && not (edge_is_down t adj.Shortest_path.adj_edge.(j))
        then begin
          best := u;
          best_e := adj.Shortest_path.adj_edge.(j)
        end
      done;
      prev.(x) <- (if !best = max_int then -1 else !best);
      reseat_via r x !best_e;
      let nh = if prev.(x) = src then x else if prev.(x) < 0 then -1 else r.next_hop.(prev.(x)) in
      if r.next_hop.(x) <> nh then begin
        r.next_hop.(x) <- nh;
        push_hops t r src x
      end;
      for j = adj.Shortest_path.adj_index.(x) to adj.Shortest_path.adj_index.(x + 1) - 1 do
        let y = adj.Shortest_path.adj_dst.(j) in
        if not (edge_is_down t adj.Shortest_path.adj_edge.(j)) then begin
          let nd = dx +. adj.Shortest_path.adj_weight.(j) in
          if nd < dist.(y) then begin
            dist.(y) <- nd;
            bump y
          end
          else if
            nd = dist.(y)
            && prev.(y) >= 0
            && x < prev.(y)
            && Bytes.unsafe_get t.mark y <> '\002'
          then bump y
        end
      done
    end
  done;
  clear_marks t

(* Can restoring edge (u, v) of weight [w] change this tree?  With the
   edge absent the cached distances are exact, so it matters only when
   it strictly shortens a path through either endpoint — or ties one
   while offering a smaller predecessor id, which would flip the
   deterministic tie-break a fresh Dijkstra applies. *)
let restored_edge_matters r u v w =
  let dist = r.tree.Shortest_path.dist and prev = r.tree.Shortest_path.prev in
  let du = dist.(u) and dv = dist.(v) in
  du +. w < dv
  || dv +. w < du
  || (du +. w = dv && prev.(v) >= 0 && u < prev.(v))
  || (dv +. w = du && prev.(u) >= 0 && v < prev.(u))

(* Does this (not yet caught up) flip touch the tree?  Checked in log
   order, so the tree is canonical for the outage set just before the
   flip: a cut matters only when the tree routes over the edge, a
   restore only when [restored_edge_matters]. *)
let flip_matters t r code =
  let e = code lsr 1 in
  let u, v = t.edge_ends.(e) in
  if code land 1 = 0 then r.via.(u) = e || r.via.(v) = e
  else restored_edge_matters r u v t.edge_weight.(e)

let set_edge_bit t e =
  Bytes.set t.edge_down (e lsr 3)
    (Char.chr (Char.code (Bytes.get t.edge_down (e lsr 3)) lor (1 lsl (e land 7))))

let clear_edge_bit t e =
  Bytes.set t.edge_down (e lsr 3)
    (Char.chr
       (Char.code (Bytes.get t.edge_down (e lsr 3)) land lnot (1 lsl (e land 7))))

(* Reconcile the log suffix this tree has not observed.  Every flip
   that cannot touch a canonical tree leaves it canonical for the next
   outage set too, so it just advances the cursor — the common case,
   and free.  Once a flip does matter, the remaining suffix is
   replayed exactly as the eager path would have run it: the log is
   its own undo record, so the outage bitmask is rewound to the
   tree's cursor state, then each flip re-applies its bit and repairs
   the tree if it touches it — byte-identical tree state to eager
   repair, with the bitmask restored to the present by the time the
   replay completes. *)
let catch_up t src r =
  while
    r.flip_cursor < t.flip_len && not (flip_matters t r t.flip_log.(r.flip_cursor))
  do
    r.flip_cursor <- r.flip_cursor + 1
  done;
  if r.flip_cursor < t.flip_len then begin
    for i = t.flip_len - 1 downto r.flip_cursor do
      let code = t.flip_log.(i) in
      let e = code lsr 1 in
      if code land 1 = 0 then clear_edge_bit t e else set_edge_bit t e
    done;
    while r.flip_cursor < t.flip_len do
      let code = t.flip_log.(r.flip_cursor) in
      let e = code lsr 1 in
      if code land 1 = 0 then begin
        set_edge_bit t e;
        if flip_matters t r code then repair_cut t src r e
      end
      else begin
        clear_edge_bit t e;
        if flip_matters t r code then
          let u, v = t.edge_ends.(e) in
          repair_restore t src r u v t.edge_weight.(e)
      end;
      r.flip_cursor <- r.flip_cursor + 1
    done
  end

let route t src =
  check_node t src;
  (match t.routes.(src) with
  | Some r when r.flip_cursor < t.flip_len -> catch_up t src r
  | Some _ | None -> ());
  match t.routes.(src) with
  | Some r ->
      t.route_cache_hits <- t.route_cache_hits + 1;
      r
  | None ->
      t.route_recomputes <- t.route_recomputes + 1;
      let tree, via =
        if t.edges_down = 0 then Shortest_path.dijkstra_flat ~adj:t.adj t.scratch src
        else
          Shortest_path.dijkstra_flat ~adj:t.adj ~edge_down:t.edge_down t.scratch
            src
      in
      let r =
        {
          tree;
          next_hop = Shortest_path.first_hops tree;
          via;
          flip_cursor = t.flip_len;
        }
      in
      t.routes.(src) <- Some r;
      r

let tree t src = (route t src).tree

let is_anchor t v =
  match t.anchors with
  | None -> true
  | Some b -> Char.code (Bytes.get b (v lsr 3)) land (1 lsl (v land 7)) <> 0

let set_route_anchors t nodes =
  let b = Bytes.make (max 1 ((t.n + 7) / 8)) '\000' in
  List.iter
    (fun v ->
      check_node t v;
      Bytes.set b (v lsr 3)
        (Char.chr (Char.code (Bytes.get b (v lsr 3)) lor (1 lsl (v land 7)))))
    nodes;
  invalidate_all t;
  t.anchors <- Some b

(* The endpoint whose tree answers a (src, dst) query.  Prefer an
   anchor so leaf endpoints never warm a tree of their own; a query
   between two non-anchors falls back to the source's tree. *)
let route_owner t src dst =
  if is_anchor t src then src else if is_anchor t dst then dst else src

let route_recomputes t = t.route_recomputes
let route_cache_hits t = t.route_cache_hits
let route_invalidations t = t.route_invalidations

let notify_link t u v status =
  match t.trace with
  | Some tr ->
      Dsim.Trace.infof tr ~time:(Dsim.Engine.now t.engine) ~category:"net"
        "link %s-%s %s" (Graph.label t.graph u) (Graph.label t.graph v)
        (if status then "up" else "down")
  | None -> ()

let set_link_down t u v =
  check_link t u v;
  let e = edge_id t u v in
  if not (edge_is_down t e) then begin
    Bytes.set t.edge_down (e lsr 3)
      (Char.chr (Char.code (Bytes.get t.edge_down (e lsr 3)) lor (1 lsl (e land 7))));
    t.edges_down <- t.edges_down + 1;
    (match t.invalidation with
    | Full -> invalidate_all t
    | Scoped -> log_flip t (e lsl 1));
    notify_link t u v false
  end

let set_link_up t u v =
  check_link t u v;
  let e = edge_id t u v in
  if edge_is_down t e then begin
    Bytes.set t.edge_down (e lsr 3)
      (Char.chr
         (Char.code (Bytes.get t.edge_down (e lsr 3)) land lnot (1 lsl (e land 7))));
    t.edges_down <- t.edges_down - 1;
    (match t.invalidation with
    | Full -> invalidate_all t
    | Scoped -> log_flip t ((e lsl 1) lor 1));
    notify_link t u v true
  end

let links_down t =
  (* Edge ids follow the sorted [Graph.edges] order, so ascending ids
     already yield the sorted endpoint list. *)
  let acc = ref [] in
  for e = Array.length t.edge_ends - 1 downto 0 do
    if edge_is_down t e then acc := t.edge_ends.(e) :: !acc
  done;
  !acc

let distance t u v =
  check_node t u;
  check_node t v;
  let owner = route_owner t u v in
  Shortest_path.distance (tree t owner) (if owner = u then v else u)

let hops t u v =
  check_node t u;
  check_node t v;
  let owner = route_owner t u v in
  let leaf = if owner = u then v else u in
  match Shortest_path.hop_count (tree t owner) leaf with
  | Some h -> h
  | None -> -1

let first_hop t ~src ~dst =
  check_node t src;
  check_node t dst;
  if src = dst then None
  else if is_anchor t src || not (is_anchor t dst) then
    let r = route t src in
    match r.next_hop.(dst) with -1 -> None | hop -> Some hop
  else
    (* Read the hop off the anchored destination's tree: the first
       step from [src] toward [dst] is [src]'s own predecessor. *)
    let r = route t dst in
    if not (Float.is_finite r.tree.Shortest_path.dist.(src)) then None
    else match r.tree.Shortest_path.prev.(src) with -1 -> None | p -> Some p

let fire_slot t i =
  let sl = match t.slots with Some sl -> sl | None -> assert false in
  let src = sl.s_src.(i)
  and dst = sl.s_dst.(i)
  and hop_count = sl.s_hops.(i)
  and msg = sl.s_msg.(i) in
  (* Release before running the handler: the handler may send again
     and immediately reuse this slot. *)
  sl.s_free.(sl.s_free_top) <- i;
  sl.s_free_top <- sl.s_free_top + 1;
  if t.up.(dst) then begin
    t.delivered <- t.delivered + 1;
    t.hops <- t.hops + hop_count;
    t.handlers.(dst) ~time:(Dsim.Engine.now t.engine) ~src msg
  end
  else t.dropped <- t.dropped + 1

let grow_slots t sl filler =
  let old = Array.length sl.s_src in
  let extend a fill = Array.append a (Array.make old fill) in
  sl.s_src <- extend sl.s_src 0;
  sl.s_dst <- extend sl.s_dst 0;
  sl.s_hops <- extend sl.s_hops 0;
  sl.s_msg <- extend sl.s_msg filler;
  sl.s_fire <- Array.append sl.s_fire (Array.init old (fun k -> let i = old + k in fun () -> fire_slot t i));
  sl.s_free <- extend sl.s_free 0;
  for k = 0 to old - 1 do
    sl.s_free.(sl.s_free_top) <- old + k;
    sl.s_free_top <- sl.s_free_top + 1
  done

let schedule_delivery t ~src ~dst ~hop_count ~latency msg =
  let sl =
    match t.slots with
    | Some sl -> sl
    | None ->
        let cap = 64 in
        let sl =
          {
            s_src = Array.make cap 0;
            s_dst = Array.make cap 0;
            s_hops = Array.make cap 0;
            s_msg = Array.make cap msg;
            s_fire = Array.init cap (fun i () -> fire_slot t i);
            s_free = Array.init cap (fun i -> i);
            s_free_top = cap;
          }
        in
        t.slots <- Some sl;
        sl
  in
  if sl.s_free_top = 0 then grow_slots t sl msg;
  sl.s_free_top <- sl.s_free_top - 1;
  let i = sl.s_free.(sl.s_free_top) in
  sl.s_src.(i) <- src;
  sl.s_dst.(i) <- dst;
  sl.s_hops.(i) <- hop_count;
  sl.s_msg.(i) <- msg;
  ignore (Dsim.Engine.schedule_after t.engine latency sl.s_fire.(i))

(* Per-hop serialisation delay for a [bytes]-sized payload. *)
let serialisation t bytes =
  if bytes <= 0 || t.bandwidth = infinity then 0.
  else float_of_int bytes /. t.bandwidth

(* Random in-flight loss, decided at send time for determinism. *)
let vanishes t = t.loss_rate > 0. && Dsim.Rng.bernoulli t.loss_rng t.loss_rate

(* Like {!send}, but a successful transmission also reports the
   scheduled arrival latency — the deterministic upper bound on how
   long the message can still be in flight.  [None] means the send was
   refused (source down, destination unreachable, relay down).  A
   message lost to random in-flight loss still reports its would-be
   latency: the caller gets a conservative fence either way. *)
let send_raw ~bytes t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  if not t.up.(src) then begin
    t.dropped <- t.dropped + 1;
    Float.nan
  end
  else begin
    let owner = route_owner t src dst in
    let leaf = if owner = src then dst else src in
    let r = route t owner in
    let dist = r.tree.Shortest_path.dist in
    if not (Float.is_finite dist.(leaf)) then begin
      t.dropped <- t.dropped + 1;
      Float.nan
    end
    else begin
      (* One walk up the predecessor chain counts the hops and checks
         that every intermediate relay is up right now — no path list,
         no filter/exists/length traversals.  The chain is read from
         the owning endpoint's tree; hop count and interior relays are
         the same in either orientation of the undirected path. *)
      let prev = r.tree.Shortest_path.prev in
      let rec walk v hop_count relays_up =
        if v = owner then (hop_count, relays_up)
        else
          let p = prev.(v) in
          walk p (hop_count + 1) (relays_up && (p = owner || t.up.(p)))
      in
      let hop_count, relays_up = if dst = src then (0, true) else walk leaf 0 true in
      if not relays_up then begin
        t.dropped <- t.dropped + 1;
        Float.nan
      end
      else begin
        t.sent <- t.sent + 1;
        let latency =
          dist.(leaf) +. (float_of_int hop_count *. serialisation t bytes)
        in
        if vanishes t then t.lost <- t.lost + 1
        else schedule_delivery t ~src ~dst ~hop_count ~latency msg;
        latency
      end
    end
  end

let send_timed ?(bytes = 0) t ~src ~dst msg =
  let latency = send_raw ~bytes t ~src ~dst msg in
  if Float.is_nan latency then None else Some latency

let send ?(bytes = 0) t ~src ~dst msg =
  not (Float.is_nan (send_raw ~bytes t ~src ~dst msg))

let send_neighbor ?(bytes = 0) t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  match Graph.weight t.graph src dst with
  | None -> invalid_arg "Net.send_neighbor: nodes are not adjacent"
  | Some w ->
      if (not t.up.(src)) || not (link_is_up t src dst) then begin
        t.dropped <- t.dropped + 1;
        false
      end
      else begin
        t.sent <- t.sent + 1;
        if vanishes t then begin
          t.lost <- t.lost + 1;
          true
        end
        else begin
          schedule_delivery t ~src ~dst ~hop_count:1
            ~latency:(w +. serialisation t bytes)
            msg;
          true
        end
      end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_lost t = t.lost
let hops_traversed t = t.hops

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.hops <- 0;
  t.lost <- 0
