type 'msg handler = time:float -> src:Graph.node -> 'msg -> unit

type invalidation = Full | Scoped

(* One cached routing state per source: the Dijkstra tree, a derived
   next-hop table for O(1) first-hop queries, and the exact set of
   links the tree routes over — the dependency record that lets a link
   flip invalidate only the sources it can actually affect. *)
type route = {
  tree : Shortest_path.tree;
  next_hop : Graph.node array;
  links : (Graph.node * Graph.node) list;
}

type 'msg t = {
  graph : Graph.t;
  engine : Dsim.Engine.t;
  trace : Dsim.Trace.t option;
  bandwidth : float;  (* bytes per unit time per link; infinity = unsized *)
  loss_rate : float;
  loss_rng : Dsim.Rng.t;
  mutable lost : int;
  up : bool array;
  link_down : (Graph.node * Graph.node, unit) Hashtbl.t;  (* key normalised u <= v *)
  handlers : 'msg handler array;
  mutable listeners : (time:float -> Graph.node -> bool -> unit) list;
  routes : route option array;  (* Dijkstra cache per source *)
  deps : (Graph.node * Graph.node, (Graph.node, unit) Hashtbl.t) Hashtbl.t;
      (* link -> sources whose cached tree routes over it *)
  invalidation : invalidation;
  mutable route_recomputes : int;
  mutable route_cache_hits : int;
  mutable route_invalidations : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable hops : int;
}

let default_handler ~time:_ ~src:_ _ = ()

let create ~engine ?trace ?(bandwidth = infinity) ?(loss_rate = 0.) ?(loss_seed = 0)
    ?(invalidation = Scoped) graph =
  if bandwidth <= 0. then invalid_arg "Net.create: bandwidth must be positive";
  if loss_rate < 0. || loss_rate >= 1. then
    invalid_arg "Net.create: loss_rate outside [0, 1)";
  let n = Graph.node_count graph in
  {
    graph;
    engine;
    trace;
    bandwidth;
    loss_rate;
    loss_rng = Dsim.Rng.create loss_seed;
    lost = 0;
    up = Array.make n true;
    link_down = Hashtbl.create 16;
    handlers = Array.make n default_handler;
    listeners = [];
    routes = Array.make n None;
    deps = Hashtbl.create 64;
    invalidation;
    route_recomputes = 0;
    route_cache_hits = 0;
    route_invalidations = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    hops = 0;
  }

let graph t = t.graph
let engine t = t.engine

let check_node t v =
  if not (Graph.mem_node t.graph v) then
    invalid_arg (Printf.sprintf "Net: unknown node %d" v)

let set_handler t v h =
  check_node t v;
  t.handlers.(v) <- h

let is_up t v =
  check_node t v;
  t.up.(v)

let notify t v status =
  let time = Dsim.Engine.now t.engine in
  (match t.trace with
  | Some tr ->
      Dsim.Trace.infof tr ~time ~category:"net"
        "node %s %s" (Graph.label t.graph v) (if status then "up" else "down")
  | None -> ());
  List.iter (fun f -> f ~time v status) t.listeners

let set_up t v =
  check_node t v;
  if not t.up.(v) then begin
    t.up.(v) <- true;
    notify t v true
  end

let set_down t v =
  check_node t v;
  if t.up.(v) then begin
    t.up.(v) <- false;
    notify t v false
  end

let on_status_change t f = t.listeners <- t.listeners @ [ f ]

(* --- Link outages.  Keys are normalised (min, max) endpoint pairs so
   either orientation names the same undirected edge. --- *)

let norm_link (u : Graph.node) (v : Graph.node) =
  if u <= v then (u, v) else (v, u)

let check_link t u v =
  check_node t u;
  check_node t v;
  if Graph.weight t.graph u v = None then
    invalid_arg (Printf.sprintf "Net: nodes %d and %d are not adjacent" u v)

let link_is_up t u v = not (Hashtbl.mem t.link_down (norm_link u v))

(* --- Route cache with dependency-tracked invalidation.

   Each cached tree registers the links it routes over in [deps], so a
   link cut drops only the trees that cross it and a link restore
   drops only the trees the restored edge could improve.  The cached
   answers therefore stay byte-identical (distances, predecessors,
   tie-breaks) to a fresh full Dijkstra against the current outage
   set; the oracle property test in test/determinism asserts exactly
   that. --- *)

let dep_set t key =
  match Hashtbl.find_opt t.deps key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.deps key s;
      s

let register_route t src links =
  List.iter (fun key -> Hashtbl.replace (dep_set t key) src ()) links

let unregister_route t src links =
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.deps key with
      | Some s ->
          Hashtbl.remove s src;
          if Hashtbl.length s = 0 then Hashtbl.remove t.deps key
      | None -> ())
    links

let drop_route t src =
  match t.routes.(src) with
  | None -> ()
  | Some r ->
      t.route_invalidations <- t.route_invalidations + 1;
      unregister_route t src r.links;
      t.routes.(src) <- None

let invalidate_all t =
  Array.iteri (fun src _ -> drop_route t src) t.routes

(* Sources whose cached tree routes over [key], in ascending id order
   (sorted so nothing depends on hash order). *)
let dependents t key =
  match Hashtbl.find_opt t.deps key with
  | None -> []
  | Some s -> Hashtbl.fold (fun src () acc -> src :: acc) s [] |> List.sort Int.compare

(* Can restoring edge (u, v) of weight [w] change this tree?  With the
   edge absent the cached distances are exact, so it matters only when
   it strictly shortens a path through either endpoint — or ties one
   while offering a smaller predecessor id, which would flip the
   deterministic tie-break a fresh Dijkstra applies. *)
let restored_edge_matters r u v w =
  let dist = r.tree.Shortest_path.dist and prev = r.tree.Shortest_path.prev in
  let du = dist.(u) and dv = dist.(v) in
  du +. w < dv
  || dv +. w < du
  || (du +. w = dv && prev.(v) >= 0 && u < prev.(v))
  || (dv +. w = du && prev.(u) >= 0 && v < prev.(u))

let route t src =
  check_node t src;
  match t.routes.(src) with
  | Some r ->
      t.route_cache_hits <- t.route_cache_hits + 1;
      r
  | None ->
      t.route_recomputes <- t.route_recomputes + 1;
      let tree =
        if Hashtbl.length t.link_down = 0 then Shortest_path.dijkstra t.graph src
        else Shortest_path.dijkstra ~usable:(fun u v -> link_is_up t u v) t.graph src
      in
      let r =
        {
          tree;
          next_hop = Shortest_path.first_hops tree;
          links = Shortest_path.tree_links tree;
        }
      in
      register_route t src r.links;
      t.routes.(src) <- Some r;
      r

let tree t src = (route t src).tree

let route_recomputes t = t.route_recomputes
let route_cache_hits t = t.route_cache_hits
let route_invalidations t = t.route_invalidations

let notify_link t u v status =
  match t.trace with
  | Some tr ->
      Dsim.Trace.infof tr ~time:(Dsim.Engine.now t.engine) ~category:"net"
        "link %s-%s %s" (Graph.label t.graph u) (Graph.label t.graph v)
        (if status then "up" else "down")
  | None -> ()

let set_link_down t u v =
  check_link t u v;
  let key = norm_link u v in
  if not (Hashtbl.mem t.link_down key) then begin
    Hashtbl.replace t.link_down key ();
    (match t.invalidation with
    | Full -> invalidate_all t
    | Scoped -> List.iter (drop_route t) (dependents t key));
    notify_link t u v false
  end

let set_link_up t u v =
  check_link t u v;
  let key = norm_link u v in
  if Hashtbl.mem t.link_down key then begin
    Hashtbl.remove t.link_down key;
    (match t.invalidation with
    | Full -> invalidate_all t
    | Scoped ->
        let w = match Graph.weight t.graph u v with Some w -> w | None -> 0. in
        Array.iteri
          (fun src cached ->
            match cached with
            | Some r when restored_edge_matters r u v w -> drop_route t src
            | Some _ | None -> ())
          t.routes);
    notify_link t u v true
  end

let links_down t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.link_down []
  |> List.sort (fun (u1, v1) (u2, v2) ->
         match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)

let distance t u v =
  check_node t v;
  Shortest_path.distance (tree t u) v

let hops t u v =
  match Shortest_path.hop_count (tree t u) v with Some h -> h | None -> -1

let first_hop t ~src ~dst =
  check_node t dst;
  let r = route t src in
  match r.next_hop.(dst) with -1 -> None | hop -> Some hop

let deliver t ~src ~dst ~hop_count msg () =
  if t.up.(dst) then begin
    t.delivered <- t.delivered + 1;
    t.hops <- t.hops + hop_count;
    t.handlers.(dst) ~time:(Dsim.Engine.now t.engine) ~src msg
  end
  else t.dropped <- t.dropped + 1

(* Per-hop serialisation delay for a [bytes]-sized payload. *)
let serialisation t bytes =
  if bytes <= 0 || t.bandwidth = infinity then 0.
  else float_of_int bytes /. t.bandwidth

(* Random in-flight loss, decided at send time for determinism. *)
let vanishes t = t.loss_rate > 0. && Dsim.Rng.bernoulli t.loss_rng t.loss_rate

(* Like {!send}, but a successful transmission also reports the
   scheduled arrival latency — the deterministic upper bound on how
   long the message can still be in flight.  [None] means the send was
   refused (source down, destination unreachable, relay down).  A
   message lost to random in-flight loss still reports its would-be
   latency: the caller gets a conservative fence either way. *)
let send_timed ?(bytes = 0) t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  if not t.up.(src) then begin
    t.dropped <- t.dropped + 1;
    None
  end
  else begin
    let r = route t src in
    let dist = r.tree.Shortest_path.dist in
    if not (Float.is_finite dist.(dst)) then begin
      t.dropped <- t.dropped + 1;
      None
    end
    else begin
      (* One walk up the predecessor chain counts the hops and checks
         that every intermediate relay is up right now — no path list,
         no filter/exists/length traversals. *)
      let prev = r.tree.Shortest_path.prev in
      let rec walk v hop_count relays_up =
        if v = src then (hop_count, relays_up)
        else
          let p = prev.(v) in
          walk p (hop_count + 1) (relays_up && (p = src || t.up.(p)))
      in
      let hop_count, relays_up = if dst = src then (0, true) else walk dst 0 true in
      if not relays_up then begin
        t.dropped <- t.dropped + 1;
        None
      end
      else begin
        t.sent <- t.sent + 1;
        let latency =
          dist.(dst) +. (float_of_int hop_count *. serialisation t bytes)
        in
        if vanishes t then t.lost <- t.lost + 1
        else
          ignore
            (Dsim.Engine.schedule_after t.engine latency
               (deliver t ~src ~dst ~hop_count msg));
        Some latency
      end
    end
  end

let send ?bytes t ~src ~dst msg =
  Option.is_some (send_timed ?bytes t ~src ~dst msg)

let send_neighbor ?(bytes = 0) t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  match Graph.weight t.graph src dst with
  | None -> invalid_arg "Net.send_neighbor: nodes are not adjacent"
  | Some w ->
      if (not t.up.(src)) || not (link_is_up t src dst) then begin
        t.dropped <- t.dropped + 1;
        false
      end
      else begin
        t.sent <- t.sent + 1;
        if vanishes t then begin
          t.lost <- t.lost + 1;
          true
        end
        else begin
          ignore
            (Dsim.Engine.schedule_after t.engine
               (w +. serialisation t bytes)
               (deliver t ~src ~dst ~hop_count:1 msg));
          true
        end
      end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_lost t = t.lost
let hops_traversed t = t.hops

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.hops <- 0;
  t.lost <- 0
