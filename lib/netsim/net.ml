type 'msg handler = time:float -> src:Graph.node -> 'msg -> unit

type 'msg t = {
  graph : Graph.t;
  engine : Dsim.Engine.t;
  trace : Dsim.Trace.t option;
  bandwidth : float;  (* bytes per unit time per link; infinity = unsized *)
  loss_rate : float;
  loss_rng : Dsim.Rng.t;
  mutable lost : int;
  up : bool array;
  link_down : (Graph.node * Graph.node, unit) Hashtbl.t;  (* key normalised u <= v *)
  handlers : 'msg handler array;
  mutable listeners : (time:float -> Graph.node -> bool -> unit) list;
  trees : Shortest_path.tree option array;  (* Dijkstra cache per source *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable hops : int;
}

let default_handler ~time:_ ~src:_ _ = ()

let create ~engine ?trace ?(bandwidth = infinity) ?(loss_rate = 0.) ?(loss_seed = 0)
    graph =
  if bandwidth <= 0. then invalid_arg "Net.create: bandwidth must be positive";
  if loss_rate < 0. || loss_rate >= 1. then
    invalid_arg "Net.create: loss_rate outside [0, 1)";
  let n = Graph.node_count graph in
  {
    graph;
    engine;
    trace;
    bandwidth;
    loss_rate;
    loss_rng = Dsim.Rng.create loss_seed;
    lost = 0;
    up = Array.make n true;
    link_down = Hashtbl.create 16;
    handlers = Array.make n default_handler;
    listeners = [];
    trees = Array.make n None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    hops = 0;
  }

let graph t = t.graph
let engine t = t.engine

let check_node t v =
  if not (Graph.mem_node t.graph v) then
    invalid_arg (Printf.sprintf "Net: unknown node %d" v)

let set_handler t v h =
  check_node t v;
  t.handlers.(v) <- h

let is_up t v =
  check_node t v;
  t.up.(v)

let notify t v status =
  let time = Dsim.Engine.now t.engine in
  (match t.trace with
  | Some tr ->
      Dsim.Trace.infof tr ~time ~category:"net"
        "node %s %s" (Graph.label t.graph v) (if status then "up" else "down")
  | None -> ());
  List.iter (fun f -> f ~time v status) t.listeners

let set_up t v =
  check_node t v;
  if not t.up.(v) then begin
    t.up.(v) <- true;
    notify t v true
  end

let set_down t v =
  check_node t v;
  if t.up.(v) then begin
    t.up.(v) <- false;
    notify t v false
  end

let on_status_change t f = t.listeners <- t.listeners @ [ f ]

(* --- Link outages.  Keys are normalised (min, max) endpoint pairs so
   either orientation names the same undirected edge. --- *)

let norm_link u v = if u <= v then (u, v) else (v, u)

let check_link t u v =
  check_node t u;
  check_node t v;
  if Graph.weight t.graph u v = None then
    invalid_arg (Printf.sprintf "Net: nodes %d and %d are not adjacent" u v)

let link_is_up t u v = not (Hashtbl.mem t.link_down (norm_link u v))

let invalidate_trees t = Array.fill t.trees 0 (Array.length t.trees) None

let notify_link t u v status =
  match t.trace with
  | Some tr ->
      Dsim.Trace.infof tr ~time:(Dsim.Engine.now t.engine) ~category:"net"
        "link %s-%s %s" (Graph.label t.graph u) (Graph.label t.graph v)
        (if status then "up" else "down")
  | None -> ()

let set_link_down t u v =
  check_link t u v;
  let key = norm_link u v in
  if not (Hashtbl.mem t.link_down key) then begin
    Hashtbl.replace t.link_down key ();
    invalidate_trees t;
    notify_link t u v false
  end

let set_link_up t u v =
  check_link t u v;
  let key = norm_link u v in
  if Hashtbl.mem t.link_down key then begin
    Hashtbl.remove t.link_down key;
    invalidate_trees t;
    notify_link t u v true
  end

let links_down t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.link_down []
  |> List.sort (fun (u1, v1) (u2, v2) ->
         match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)

let tree t src =
  check_node t src;
  match t.trees.(src) with
  | Some tr -> tr
  | None ->
      let tr =
        if Hashtbl.length t.link_down = 0 then Shortest_path.dijkstra t.graph src
        else Shortest_path.dijkstra ~usable:(fun u v -> link_is_up t u v) t.graph src
      in
      t.trees.(src) <- Some tr;
      tr

let distance t u v =
  check_node t v;
  Shortest_path.distance (tree t u) v

let hops t u v =
  match Shortest_path.hop_count (tree t u) v with Some h -> h | None -> -1

let deliver t ~src ~dst ~hop_count msg () =
  if t.up.(dst) then begin
    t.delivered <- t.delivered + 1;
    t.hops <- t.hops + hop_count;
    t.handlers.(dst) ~time:(Dsim.Engine.now t.engine) ~src msg
  end
  else t.dropped <- t.dropped + 1

(* Per-hop serialisation delay for a [bytes]-sized payload. *)
let serialisation t bytes =
  if bytes <= 0 || t.bandwidth = infinity then 0.
  else float_of_int bytes /. t.bandwidth

(* Random in-flight loss, decided at send time for determinism. *)
let vanishes t = t.loss_rate > 0. && Dsim.Rng.bernoulli t.loss_rng t.loss_rate

let send ?(bytes = 0) t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  if not t.up.(src) then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else
    match Shortest_path.path (tree t src) dst with
    | None ->
        t.dropped <- t.dropped + 1;
        false
    | Some path ->
        (* Intermediate relays must be up now for the route to hold. *)
        let relays =
          match path with [] | [ _ ] -> [] | _ :: rest -> List.filter (fun v -> v <> dst) rest
        in
        if List.exists (fun v -> not t.up.(v)) relays then begin
          t.dropped <- t.dropped + 1;
          false
        end
        else begin
          t.sent <- t.sent + 1;
          if vanishes t then begin
            t.lost <- t.lost + 1;
            true
          end
          else begin
            let hop_count = List.length path - 1 in
            let latency =
              distance t src dst +. (float_of_int hop_count *. serialisation t bytes)
            in
            ignore
              (Dsim.Engine.schedule_after t.engine latency
                 (deliver t ~src ~dst ~hop_count msg));
            true
          end
        end

let send_neighbor ?(bytes = 0) t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  match Graph.weight t.graph src dst with
  | None -> invalid_arg "Net.send_neighbor: nodes are not adjacent"
  | Some w ->
      if (not t.up.(src)) || not (link_is_up t src dst) then begin
        t.dropped <- t.dropped + 1;
        false
      end
      else begin
        t.sent <- t.sent + 1;
        if vanishes t then begin
          t.lost <- t.lost + 1;
          true
        end
        else begin
          ignore
            (Dsim.Engine.schedule_after t.engine
               (w +. serialisation t bytes)
               (deliver t ~src ~dst ~hop_count:1 msg));
          true
        end
      end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_lost t = t.lost
let hops_traversed t = t.hops

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.hops <- 0;
  t.lost <- 0
