(** Message transport over a topology, driven by the {!Dsim.Engine}.

    A network wraps a {!Graph.t} with per-node up/down status, per-node
    receive handlers, and two send primitives:

    - {!send} routes over the zero-load shortest path; the end-to-end
      latency is the path distance.  The message is dropped when the
      source is down, the destination is unreachable or down at
      delivery time, or an intermediate node is down at send time.
    - {!send_neighbor} crosses exactly one edge — the primitive the
      distributed MST automaton uses.  Per-edge delivery is FIFO
      (fixed latency per edge + deterministic engine tie-breaks), which
      realises the paper's channel model: "messages … arrive after an
      unpredictable but finite delay, without error and in sequence".

    Delivery, drop and hop counts are accumulated for the traffic
    experiments. *)

type 'msg t

type 'msg handler = time:float -> src:Graph.node -> 'msg -> unit

val create :
  engine:Dsim.Engine.t ->
  ?trace:Dsim.Trace.t ->
  ?bandwidth:float ->
  ?loss_rate:float ->
  ?loss_seed:int ->
  Graph.t ->
  'msg t
(** All nodes start up.  [bandwidth] is the uniform link capacity in
    bytes per unit virtual time used to serialise sized messages
    (default: infinite — size adds no delay).  [loss_rate] (default 0)
    makes each transmission vanish in flight with that probability,
    drawn from a deterministic stream seeded by [loss_seed] — the
    random message loss the mail pipeline's acknowledgements and
    retries must absorb.
    @raise Invalid_argument if [bandwidth <= 0.] or [loss_rate]
    is outside [0, 1). *)

val graph : 'msg t -> Graph.t
val engine : 'msg t -> Dsim.Engine.t

val set_handler : 'msg t -> Graph.node -> 'msg handler -> unit
(** Replaces the node's receive handler (default: ignore). *)

val is_up : 'msg t -> Graph.node -> bool

val set_up : 'msg t -> Graph.node -> unit
val set_down : 'msg t -> Graph.node -> unit
(** Status changes fire the {!on_status_change} listeners with the
    current virtual time.  Messages already in flight towards a node
    that goes down are dropped at delivery time. *)

val on_status_change : 'msg t -> (time:float -> Graph.node -> bool -> unit) -> unit
(** Register a listener called after every status flip ([true] = up). *)

val link_is_up : 'msg t -> Graph.node -> Graph.node -> bool
(** Whether the (undirected) edge between two adjacent nodes is
    currently usable.  Orientation does not matter. *)

val set_link_down : 'msg t -> Graph.node -> Graph.node -> unit
val set_link_up : 'msg t -> Graph.node -> Graph.node -> unit
(** Cut / restore a single link.  Down links are invisible to routing
    ({!send} finds a detour or drops when none exists) and refuse
    {!send_neighbor} one-hop transmissions.  Flips invalidate the
    shortest-path cache; messages already in flight across the link
    are not recalled.  Idempotent.
    @raise Invalid_argument if the nodes are not adjacent. *)

val links_down : 'msg t -> (Graph.node * Graph.node) list
(** Currently cut links as normalised [(min, max)] endpoint pairs, in
    no particular order. *)

val distance : 'msg t -> Graph.node -> Graph.node -> float
(** Zero-load shortest-path distance ([infinity] if disconnected).
    Cached per source. *)

val hops : 'msg t -> Graph.node -> Graph.node -> int
(** Edge count of the shortest path ([-1] if unreachable). *)

val send : ?bytes:int -> 'msg t -> src:Graph.node -> dst:Graph.node -> 'msg -> bool
(** Routed send as described above.  Returns [false] iff the message
    was dropped immediately (source down, no route, or a relay on the
    path is down right now); a [true] send can still be dropped later
    if the destination is down at delivery time.  [bytes] (default 0)
    adds a serialisation delay of [bytes / bandwidth] per hop. *)

val send_neighbor :
  ?bytes:int -> 'msg t -> src:Graph.node -> dst:Graph.node -> 'msg -> bool
(** One-hop send; same liveness rules, latency = edge weight plus the
    serialisation delay.
    @raise Invalid_argument if [src] and [dst] are not adjacent. *)

(** Traffic accounting since creation. *)

val messages_sent : 'msg t -> int
(** Messages accepted for transmission (including ones later dropped
    at delivery). *)

val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Immediate refusals plus deliveries to down nodes. *)

val messages_lost : 'msg t -> int
(** Transmissions that vanished to random link loss. *)

val hops_traversed : 'msg t -> int
(** Total edges crossed by delivered messages. *)

val reset_counters : 'msg t -> unit
