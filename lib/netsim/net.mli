(** Message transport over a topology, driven by the {!Dsim.Engine}.

    A network wraps a {!Graph.t} with per-node up/down status, per-node
    receive handlers, and two send primitives:

    - {!send} routes over the zero-load shortest path; the end-to-end
      latency is the path distance.  The message is dropped when the
      source is down, the destination is unreachable or down at
      delivery time, or an intermediate node is down at send time.
    - {!send_neighbor} crosses exactly one edge — the primitive the
      distributed MST automaton uses.  Per-edge delivery is FIFO
      (fixed latency per edge + deterministic engine tie-breaks), which
      realises the paper's channel model: "messages … arrive after an
      unpredictable but finite delay, without error and in sequence".

    Delivery, drop and hop counts are accumulated for the traffic
    experiments. *)

type 'msg t

type 'msg handler = time:float -> src:Graph.node -> 'msg -> unit

type invalidation =
  | Full  (** Any link flip drops every cached shortest-path tree. *)
  | Scoped
      (** A link flip only appends to a flip log; each cached tree
          reconciles the flips it has not seen on its next query.  A
          cut touches only the trees that route over the link, a
          restore only the trees the restored edge could shorten (or
          re-tie-break) — every other flip is a cursor bump, so trees
          nobody queries between flips cost nothing to keep.  Produces
          byte-identical routing answers to [Full] — the choice only
          changes how much Dijkstra work is redone, which the route
          counters below expose. *)

val create :
  engine:Dsim.Engine.t ->
  ?trace:Dsim.Trace.t ->
  ?bandwidth:float ->
  ?loss_rate:float ->
  ?loss_seed:int ->
  ?invalidation:invalidation ->
  Graph.t ->
  'msg t
(** All nodes start up.  [bandwidth] is the uniform link capacity in
    bytes per unit virtual time used to serialise sized messages
    (default: infinite — size adds no delay).  [loss_rate] (default 0)
    makes each transmission vanish in flight with that probability,
    drawn from a deterministic stream seeded by [loss_seed] — the
    random message loss the mail pipeline's acknowledgements and
    retries must absorb.  [invalidation] (default [Scoped]) selects the
    route-cache invalidation policy on link flips.
    @raise Invalid_argument if [bandwidth <= 0.] or [loss_rate]
    is outside [0, 1). *)

val graph : 'msg t -> Graph.t
val engine : 'msg t -> Dsim.Engine.t

val set_handler : 'msg t -> Graph.node -> 'msg handler -> unit
(** Replaces the node's receive handler (default: ignore). *)

val is_up : 'msg t -> Graph.node -> bool

val set_up : 'msg t -> Graph.node -> unit
val set_down : 'msg t -> Graph.node -> unit
(** Status changes fire the {!on_status_change} listeners with the
    current virtual time.  Messages already in flight towards a node
    that goes down are dropped at delivery time. *)

val on_status_change : 'msg t -> (time:float -> Graph.node -> bool -> unit) -> unit
(** Register a listener called after every status flip ([true] = up). *)

val link_is_up : 'msg t -> Graph.node -> Graph.node -> bool
(** Whether the (undirected) edge between two adjacent nodes is
    currently usable.  Orientation does not matter. *)

val set_link_down : 'msg t -> Graph.node -> Graph.node -> unit
val set_link_up : 'msg t -> Graph.node -> Graph.node -> unit
(** Cut / restore a single link.  Down links are invisible to routing
    ({!send} finds a detour or drops when none exists) and refuse
    {!send_neighbor} one-hop transmissions.  Flips invalidate the
    shortest-path cache per the network's {!invalidation} policy;
    messages already in flight across the link are not recalled.
    Idempotent.
    @raise Invalid_argument if the nodes are not adjacent. *)

val links_down : 'msg t -> (Graph.node * Graph.node) list
(** Currently cut links as normalised [(min, max)] endpoint pairs, in
    no particular order. *)

val distance : 'msg t -> Graph.node -> Graph.node -> float
(** Zero-load shortest-path distance ([infinity] if disconnected).
    Cached per source. *)

val hops : 'msg t -> Graph.node -> Graph.node -> int
(** Edge count of the shortest path ([-1] if unreachable). *)

val first_hop : 'msg t -> src:Graph.node -> dst:Graph.node -> Graph.node option
(** The neighbour of [src] that begins the shortest path to [dst]
    ([None] when unreachable or [dst = src]).  O(1) from the cached
    next-hop table of the owning tree (or one predecessor read when
    the query is answered from an anchored destination's tree). *)

val set_route_anchors : 'msg t -> Graph.node list -> unit
(** Declare the route anchors: the only nodes that keep cached
    shortest-path trees warm.  A [(src, dst)] query is answered from
    the anchored endpoint's tree — paths on the undirected graph are
    symmetric, so distance and hop count are unchanged, though the
    deterministic tie-break may pick a different equal-length path
    than the source's own tree would.  Queries between two
    non-anchors fall back to the source's tree.  Mail deployments
    anchor the infrastructure (servers, gateways): every hop of every
    message has one, so the fault campaign repairs a few hundred
    shared trees instead of one per host.  Drops all cached routes;
    call before traffic starts. *)

(** Route-cache accounting since creation — the observables behind the
    invalidation policies.  A recompute is one full Dijkstra run; a
    cache hit is a routing query answered from a cached tree; an
    invalidation is one cached tree repaired in place or dropped
    because of a link flip (under [Scoped], counted lazily, when the
    tree next answers a query).  Not reset by {!reset_counters}: they
    describe cache behaviour over the network's whole life, not
    per-experiment traffic. *)

val route_recomputes : 'msg t -> int
val route_cache_hits : 'msg t -> int
val route_invalidations : 'msg t -> int

val tree : 'msg t -> Graph.node -> Shortest_path.tree
(** The shortest-path tree rooted at the node, honouring the links
    currently down — served from the route cache (counts as a hit or a
    recompute like any routing query).  The returned arrays are the
    cache's own: treat them as read-only.  This is the observable the
    oracle test compares byte-for-byte against a fresh Dijkstra. *)

val send : ?bytes:int -> 'msg t -> src:Graph.node -> dst:Graph.node -> 'msg -> bool
(** Routed send as described above.  Returns [false] iff the message
    was dropped immediately (source down, no route, or a relay on the
    path is down right now); a [true] send can still be dropped later
    if the destination is down at delivery time.  [bytes] (default 0)
    adds a serialisation delay of [bytes / bandwidth] per hop. *)

val send_timed :
  ?bytes:int -> 'msg t -> src:Graph.node -> dst:Graph.node -> 'msg -> float option
(** {!send}, but a successful transmission also reports the scheduled
    arrival latency — a deterministic upper bound on how long the
    message can still be in flight.  [None] iff {!send} would return
    [false].  A message lost to random in-flight loss still reports
    its would-be latency (the caller's fence stays conservative).
    Senders whose dedup state is compactable use this to fence
    compaction past every possible late arrival. *)

val send_neighbor :
  ?bytes:int -> 'msg t -> src:Graph.node -> dst:Graph.node -> 'msg -> bool
(** One-hop send; same liveness rules, latency = edge weight plus the
    serialisation delay.
    @raise Invalid_argument if [src] and [dst] are not adjacent. *)

(** Traffic accounting since creation. *)

val messages_sent : 'msg t -> int
(** Messages accepted for transmission (including ones later dropped
    at delivery). *)

val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Immediate refusals plus deliveries to down nodes. *)

val messages_lost : 'msg t -> int
(** Transmissions that vanished to random link loss. *)

val hops_traversed : 'msg t -> int
(** Total edges crossed by delivered messages. *)

val reset_counters : 'msg t -> unit
