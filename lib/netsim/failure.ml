type outage = { node : Graph.node; start : float; duration : float }

let schedule_outage net { node; start; duration } =
  if start < 0. || duration < 0. then
    invalid_arg "Failure.schedule_outage: negative time";
  let engine = Net.engine net in
  ignore (Dsim.Engine.schedule_at engine start (fun () -> Net.set_down net node));
  ignore
    (Dsim.Engine.schedule_at engine (start +. duration) (fun () ->
         Net.set_up net node))

let schedule_outages net outages = List.iter (schedule_outage net) outages

let random_outages ~rng ~nodes ~rate ~mean_duration ~horizon =
  if rate <= 0. then []
  else
    List.concat_map
      (fun node ->
        let rec gen t acc =
          let t = t +. Dsim.Rng.exponential rng rate in
          if t >= horizon then List.rev acc
          else
            let duration = Dsim.Rng.exponential rng (1. /. mean_duration) in
            gen t ({ node; start = t; duration } :: acc)
        in
        gen 0. [])
      nodes

(* The node's outage windows clipped to [0, horizon], sorted, with
   overlaps merged into disjoint intervals. *)
let down_intervals ~outages ~node ~horizon =
  let mine =
    List.filter (fun o -> o.node = node) outages
    |> List.map (fun o -> (o.start, Float.min horizon (o.start +. o.duration)))
    |> List.filter (fun (s, e) -> s < horizon && e > s)
    |> List.sort (fun (s1, e1) (s2, e2) ->
           match Float.compare s1 s2 with 0 -> Float.compare e1 e2 | c -> c)
  in
  let rec merge acc = function
    | [] -> List.rev acc
    | (s, e) :: rest ->
        let rec absorb e = function
          | (s', e') :: more when s' <= e -> absorb (Float.max e e') more
          | more -> (e, more)
        in
        let e, more = absorb e rest in
        merge ((s, e) :: acc) more
  in
  merge [] mine

let measure intervals = List.fold_left (fun acc (s, e) -> acc +. (e -. s)) 0. intervals

let availability ~outages ~node ~horizon =
  if horizon <= 0. then 1.
  else begin
    let down = measure (down_intervals ~outages ~node ~horizon) in
    (horizon -. down) /. horizon
  end

(* Intersection of two sorted disjoint interval lists. *)
let intersect a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (s1, e1) :: ra, (s2, e2) :: rb ->
        let s = Float.max s1 s2 and e = Float.min e1 e2 in
        let acc = if s < e then (s, e) :: acc else acc in
        if e1 <= e2 then go acc ra b else go acc a rb
  in
  go [] a b

let group_availability ~outages ~nodes ~horizon =
  if horizon <= 0. then 1.
  else
    match nodes with
    | [] -> 0.
    | first :: rest ->
        (* The group is down only while every member is down: intersect
           the members' downtime interval sets. *)
        let all_down =
          List.fold_left
            (fun acc node ->
              if acc = [] then []
              else intersect acc (down_intervals ~outages ~node ~horizon))
            (down_intervals ~outages ~node:first ~horizon)
            rest
        in
        (horizon -. measure all_down) /. horizon
