type outage = { node : Graph.node; start : float; duration : float }

let schedule_outage net { node; start; duration } =
  if start < 0. || duration < 0. then
    invalid_arg "Failure.schedule_outage: negative time";
  let engine = Net.engine net in
  ignore (Dsim.Engine.schedule_at engine start (fun () -> Net.set_down net node));
  ignore
    (Dsim.Engine.schedule_at engine (start +. duration) (fun () ->
         Net.set_up net node))

let schedule_outages net outages = List.iter (schedule_outage net) outages

let random_outages ~rng ~nodes ~rate ~mean_duration ~horizon =
  if rate <= 0. then []
  else
    List.concat_map
      (fun node ->
        let rec gen t acc =
          let t = t +. Dsim.Rng.exponential rng rate in
          if t >= horizon then List.rev acc
          else
            let duration = Dsim.Rng.exponential rng (1. /. mean_duration) in
            gen t ({ node; start = t; duration } :: acc)
        in
        gen 0. [])
      nodes

let availability ~outages ~node ~horizon =
  if horizon <= 0. then 1.
  else begin
    let mine =
      List.filter (fun o -> o.node = node) outages
      |> List.map (fun o -> (o.start, Float.min horizon (o.start +. o.duration)))
      |> List.filter (fun (s, e) -> s < horizon && e > s)
      |> List.sort (fun (s1, e1) (s2, e2) ->
             match Float.compare s1 s2 with 0 -> Float.compare e1 e2 | c -> c)
    in
    (* Merge overlapping intervals and total the downtime. *)
    let rec merge acc = function
      | [] -> acc
      | (s, e) :: rest ->
          let rec absorb e = function
            | (s', e') :: more when s' <= e -> absorb (Float.max e e') more
            | more -> (e, more)
          in
          let e, more = absorb e rest in
          merge (acc +. (e -. s)) more
    in
    let down = merge 0. mine in
    (horizon -. down) /. horizon
  end
