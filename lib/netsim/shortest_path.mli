(** Shortest-path computations over {!Graph}.

    The paper's cost model and routing both rest on "shortest-path
    zero-load" distances (§3.1.1); this module provides Dijkstra from
    a single source, all-pairs tables, explicit path extraction and
    next-hop routing tables for the transport layer. *)

type tree = {
  source : Graph.node;
  dist : float array;  (** [dist.(v)] = distance from source; [infinity] if unreachable. *)
  prev : Graph.node array;  (** Predecessor on a shortest path; [-1] for source/unreachable. *)
}

val dijkstra : ?usable:(Graph.node -> Graph.node -> bool) -> Graph.t -> Graph.node -> tree
(** Single-source shortest paths.  [usable u v] (default: always true)
    filters edges at relaxation time — a cut link is simply invisible
    to the search, which is how {!Net} routes around link outages. *)

val distance : tree -> Graph.node -> float

val path : tree -> Graph.node -> Graph.node list option
(** Node sequence from the tree's source to the target, inclusive;
    [None] if unreachable. *)

val hop_count : tree -> Graph.node -> int option
(** Edges on the shortest path; [Some 0] for the source itself. *)

val tree_links : tree -> (Graph.node * Graph.node) list
(** The undirected links the tree routes over — one normalised
    [(min, max)] endpoint pair per reachable non-source node's
    predecessor edge — sorted and distinct.  This is exactly the set
    of links whose outage can change any answer the tree gives, which
    is what {!Net}'s scoped route-cache invalidation indexes. *)

val first_hops : tree -> Graph.node array
(** Next-hop table derived from an already-computed tree: for every
    destination [d], the neighbour of the tree's source that begins
    the shortest path to [d] ([-1] when unreachable or [d] is the
    source).  O(n) over the predecessor array — no re-running
    Dijkstra, no path-list allocation. *)

val all_pairs : Graph.t -> tree array
(** [all_pairs g] runs Dijkstra from every node; index by source id. *)

val next_hop_table : Graph.t -> Graph.node -> Graph.node array
(** [next_hop_table g src] gives, for every destination [d], the
    neighbour of [src] that begins a shortest path to [d] ([-1] when
    unreachable or [d = src]).  Deterministic: among equal-cost
    first hops the lowest node id wins. *)

val eccentricity : Graph.t -> Graph.node -> float
(** Greatest finite distance from the node to any reachable node. *)

val diameter : Graph.t -> float
(** Max eccentricity over all nodes ([0.] for empty graphs). *)

(** {1 Flat routing core}

    The cached-routing hot path compiles the graph once into a
    structure-of-arrays adjacency (CSR layout) and runs Dijkstra over
    it with a reusable arena queue: no per-edge closures, no tuple
    keys, no per-relaxation allocation.  Link outages arrive as a
    bitset indexed by undirected edge id. *)

type adjacency = {
  adj_n : int;  (** node count *)
  adj_index : int array;  (** per-source slice bounds, length [n + 1] *)
  adj_dst : int array;  (** directed neighbour per slot *)
  adj_weight : float array;  (** edge weight per slot *)
  adj_edge : int array;  (** undirected edge id per slot *)
}

val compile : Graph.t -> adjacency
(** Compile the graph's adjacency into flat arrays.  Undirected edge
    ids are positions in the sorted [Graph.edges] list, so every
    consumer shares one deterministic numbering. *)

type scratch
(** Reusable Dijkstra workspace (settled set + arena queue). *)

val scratch : ?capacity:int -> int -> scratch
(** [scratch n] sizes the workspace for an [n]-node graph; it regrows
    on demand. *)

val dijkstra_flat :
  adj:adjacency -> ?edge_down:Bytes.t -> scratch -> Graph.node ->
  tree * int array
(** Single-source shortest paths over the compiled adjacency.
    [edge_down] marks unusable undirected edges by id (bit set =
    down); omitted means every edge is usable.  Returns the tree plus
    the via-edge table: for every reached non-source node, the
    undirected edge id of its predecessor link ([-1] otherwise) — the
    exact dependency set scoped route invalidation indexes, with no
    tuple or list allocation.  Tie-breaks match {!dijkstra}, so both
    return byte-identical trees on the same outage set. *)
