(** Shortest-path computations over {!Graph}.

    The paper's cost model and routing both rest on "shortest-path
    zero-load" distances (§3.1.1); this module provides Dijkstra from
    a single source, all-pairs tables, explicit path extraction and
    next-hop routing tables for the transport layer. *)

type tree = {
  source : Graph.node;
  dist : float array;  (** [dist.(v)] = distance from source; [infinity] if unreachable. *)
  prev : Graph.node array;  (** Predecessor on a shortest path; [-1] for source/unreachable. *)
}

val dijkstra : ?usable:(Graph.node -> Graph.node -> bool) -> Graph.t -> Graph.node -> tree
(** Single-source shortest paths.  [usable u v] (default: always true)
    filters edges at relaxation time — a cut link is simply invisible
    to the search, which is how {!Net} routes around link outages. *)

val distance : tree -> Graph.node -> float

val path : tree -> Graph.node -> Graph.node list option
(** Node sequence from the tree's source to the target, inclusive;
    [None] if unreachable. *)

val hop_count : tree -> Graph.node -> int option
(** Edges on the shortest path; [Some 0] for the source itself. *)

val tree_links : tree -> (Graph.node * Graph.node) list
(** The undirected links the tree routes over — one normalised
    [(min, max)] endpoint pair per reachable non-source node's
    predecessor edge — sorted and distinct.  This is exactly the set
    of links whose outage can change any answer the tree gives, which
    is what {!Net}'s scoped route-cache invalidation indexes. *)

val first_hops : tree -> Graph.node array
(** Next-hop table derived from an already-computed tree: for every
    destination [d], the neighbour of the tree's source that begins
    the shortest path to [d] ([-1] when unreachable or [d] is the
    source).  O(n) over the predecessor array — no re-running
    Dijkstra, no path-list allocation. *)

val all_pairs : Graph.t -> tree array
(** [all_pairs g] runs Dijkstra from every node; index by source id. *)

val next_hop_table : Graph.t -> Graph.node -> Graph.node array
(** [next_hop_table g src] gives, for every destination [d], the
    neighbour of [src] that begins a shortest path to [d] ([-1] when
    unreachable or [d = src]).  Deterministic: among equal-cost
    first hops the lowest node id wins. *)

val eccentricity : Graph.t -> Graph.node -> float
(** Greatest finite distance from the node to any reachable node. *)

val diameter : Graph.t -> float
(** Max eccentricity over all nodes ([0.] for empty graphs). *)
