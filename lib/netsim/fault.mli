(** Declarative, deterministic fault campaigns.

    {!Failure} injects independent random node outages; this module
    generalises it into a {e campaign}: a pure description of several
    fault processes that is expanded ({!compile}) against a concrete
    topology into a reproducible schedule of down/up windows, and then
    armed ({!apply}) on a live {!Net.t}.  Campaigns drive the
    no-lost-mail invariant checks of §3.1.2c: the delivery pipeline
    must not lose or duplicate mail under any of these faults.

    Four fault processes are supported:

    - [Crashes]: per-server Poisson crash/restart process with a
      configurable repair-time distribution;
    - [Link_cuts]: the same process per network link (the cut link
      disappears from routing, see {!Net.set_link_down});
    - [Partition]: every link crossing the boundary of a named region
      goes down for one window, isolating the region;
    - [Burst]: a correlated mass failure — a random fraction of the
      servers crash at the same instant and recover together.

    Campaigns are also expressible as flag strings (see {!parse}), e.g.
    [crash:0.002/150,link:0.001,partition:regionA@1500+600,burst:0.3]. *)

(** Repair-time law for recurring faults. *)
type repair =
  | Fixed of float  (** constant downtime. *)
  | Exp_mean of float  (** exponential with the given mean. *)

type fault =
  | Crashes of { rate : float; repair : repair }
      (** Each server fails as a Poisson process with [rate] failures
          per unit time. *)
  | Link_cuts of { rate : float; repair : repair }
      (** Each link is cut as a Poisson process with [rate]. *)
  | Partition of { region : string; start : float option; duration : float option }
      (** Cut all links with exactly one endpoint in [region].
          Defaults: [start = horizon / 3], [duration = horizon / 4]. *)
  | Burst of { fraction : float; at : float option; duration : float option }
      (** [fraction] of the servers (at least one, chosen by the
          campaign RNG) crash simultaneously.  Defaults:
          [at = horizon / 2], [duration = horizon / 10]. *)

type campaign = { seed : int; faults : fault list }

val no_faults : campaign
(** [{ seed = 0; faults = [] }]. *)

type target = Node of Graph.node | Link of Graph.node * Graph.node

type window = {
  target : target;
  kind : string;  (** ["crash"], ["link"], ["partition"] or ["burst"]. *)
  start : float;
  duration : float;
}

type schedule = { windows : window list; horizon : float }

val compile :
  ?salt:int ->
  graph:Graph.t ->
  servers:Graph.node list ->
  horizon:float ->
  campaign ->
  schedule
(** Expand the campaign into concrete fault windows.  All randomness
    comes from a generator seeded with [campaign.seed] (xor-mixed with
    [salt], default 0, so one campaign can drive several independent
    runs): same campaign, graph, servers and horizon — same schedule.
    Node faults ([Crashes], [Burst]) target [servers]; link faults
    target the graph's edges.
    @raise Invalid_argument on a non-positive horizon or an unknown
    partition region. *)

val node_outages : schedule -> Failure.outage list
(** The node-level windows as classic outages, for
    {!Failure.availability}. *)

val apply :
  ?on_event:(time:float -> window -> bool -> unit) ->
  'msg Net.t ->
  schedule ->
  unit
(** Arm every window on the network's engine (category ["fault"]).
    Overlapping windows on one target are depth-counted: the target
    recovers when the last covering window ends.  [on_event] fires at
    each effective status change ([false] = went down, [true] = came
    back), after the network state was updated.
    @raise Invalid_argument on negative window times (at scheduling
    time, i.e. immediately). *)

val heal : 'msg Net.t -> schedule -> unit
(** Force every target of the schedule back up/reconnected — used to
    drain in-flight mail after the measured horizon. *)

val parse : string -> campaign
(** Parse the flag syntax: comma-separated items, each [KIND:SPEC].

    - [crash:RATE], [crash:RATE/MEAN], [crash:RATE/=FIXED] — server
      crash process; repair exponential with mean [MEAN] (default 150)
      or constant [FIXED].
    - [link:RATE[/MEAN|/=FIXED]] — link-cut process, same shape.
    - [partition:REGION], [partition:REGION@START+DURATION].
    - [burst:FRACTION], [burst:FRACTION@START+DURATION].
    - [seed:N] — the campaign seed (default 0).

    @raise Invalid_argument on malformed input. *)

val to_string : campaign -> string
(** Inverse of {!parse} (up to item order and float formatting). *)

val standard : campaign
(** The campaign the benchmark and fault experiments share:
    [seed:5,crash:0.002/150,link:0.0008,partition:r1@1500+600,burst:0.25]
    — background server crashes with exponential repair, a link-cut
    process, one regional partition window and a crash burst.  Defined
    once so "under the standard fault campaign" means the same thing
    everywhere. *)

val pp : Format.formatter -> campaign -> unit
