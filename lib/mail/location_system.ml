type ctrl =
  | Location_update of Naming.Name.t * Netsim.Graph.node * bool
      (* name, current host, and whether the receiving server should
         fan the update out to its regional peers. *)

type wire = ctrl Pipeline.wire

type config = {
  replication : int;
  users_per_host : int;
  hash_groups : int;
  retry_timeout : float;
  resubmit_timeout : float;
  max_retries : int;
  mailbox_policy : Mailbox.policy;
  bandwidth : float option;
  service_rate : float option;
  loss_rate : float;
  span_sample : int;
}

let default_config =
  {
    replication = 3;
    users_per_host = 5;
    hash_groups = 8;
    retry_timeout = 50.;
    resubmit_timeout = 400.;
    max_retries = 50;
    mailbox_policy = Mailbox.Delete_on_retrieve;
    bandwidth = None;
    service_rate = None;
    loss_rate = 0.;
    span_sample = 1;
  }

type t = {
  config : config;
  engine : Dsim.Engine.t;
  pipeline : ctrl Pipeline.t;
  graph : Netsim.Graph.t;
  storage : Replica_group.t;
  region_servers : (string, Netsim.Graph.node list) Hashtbl.t;
  agents : (Naming.Name.t, User_agent.t) Hashtbl.t;
  intern : Naming.Intern.t;
  mutable agents_by_uid : User_agent.t option array;
  primary_hosts : (Naming.Name.t, Netsim.Graph.node) Hashtbl.t;
  locations : (Naming.Name.t, Netsim.Graph.node) Hashtbl.t;
      (* the regionally shared current-location table; gossip messages
         carry its updates for traffic accounting. *)
  spaces : (string, Naming.Name_space.t) Hashtbl.t;
  redirects : (Naming.Name.t, Naming.Name.t) Hashtbl.t;
  redirects_uid : (int, int) Hashtbl.t;
  mutable groups : int;
  retrieval_costs : Dsim.Stats.Summary.t;
  counters : Dsim.Stats.Counter.t;
  metrics : Telemetry.Registry.t;
  tracer : Telemetry.Tracer.t;
  trace : Dsim.Trace.t;
  ledger : Ledger.t;
  mutable next_id : Message.id;
  mutable submitted : Message.t list;
}

let engine t = t.engine
let net t = Pipeline.net t.pipeline
let graph t = t.graph
let now t = Dsim.Engine.now t.engine
let counters t = t.counters
let metrics t = t.metrics
let tracer t = t.tracer
let trace t = t.trace
let ledger t = t.ledger
let submitted t = t.submitted

let users t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.agents []
  |> List.sort Naming.Name.compare

let agent t name =
  match Hashtbl.find_opt t.agents name with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Location_system: unknown user %s" (Naming.Name.to_string name))

let uid_of t name = Naming.Intern.intern t.intern name

let set_agent_uid t uid a =
  let n = Array.length t.agents_by_uid in
  if uid >= n then begin
    let arr = Array.make (max (2 * n) (uid + 1)) None in
    Array.blit t.agents_by_uid 0 arr 0 n;
    t.agents_by_uid <- arr
  end;
  t.agents_by_uid.(uid) <- a

let agent_by_uid t uid =
  if uid >= 0 && uid < Array.length t.agents_by_uid then t.agents_by_uid.(uid)
  else None

let uids t =
  let acc = ref [] in
  for uid = Array.length t.agents_by_uid - 1 downto 0 do
    (match t.agents_by_uid.(uid) with
    | Some _ -> acc := uid :: !acc
    | None -> ())
  done;
  !acc

let storage t = t.storage
let server_nodes t = Replica_group.nodes t.storage
let space t region = Hashtbl.find_opt t.spaces region

let count ?by t key = Dsim.Stats.Counter.incr ?by t.counters key

let region_of_node g v =
  let r = Netsim.Graph.region g v in
  if String.equal r "" then "r0" else r

(* Authority servers of a name: rotate the region's server list by the
   name's hash group — host-independent by construction. *)
let authority_of t name =
  match Hashtbl.find_opt t.region_servers (Naming.Name.region name) with
  | None | Some [] -> []
  | Some servers ->
      let arr = Array.of_list servers in
      let n = Array.length arr in
      let g = Naming.Name_space.hash_group ~groups:t.groups name in
      let start = g mod n in
      List.init (min t.config.replication n) (fun i -> arr.((start + i) mod n))

let primary_host t name =
  match Hashtbl.find_opt t.primary_hosts name with
  | Some h -> h
  | None ->
      invalid_arg
        (Printf.sprintf "Location_system: unknown user %s" (Naming.Name.to_string name))

let current_location t name =
  match Hashtbl.find_opt t.locations name with
  | Some h -> h
  | None -> primary_host t name

(* Servers of the user's region ordered by distance from a host —
   "a user always contacts the nearest active server". *)
let servers_by_distance t ~from_host ~region =
  match Hashtbl.find_opt t.region_servers region with
  | None -> []
  | Some servers ->
      let tree = Netsim.Shortest_path.dijkstra t.graph from_host in
      List.sort
        (fun a b ->
          Float.compare
            (Netsim.Shortest_path.distance tree a)
            (Netsim.Shortest_path.distance tree b))
        servers

let rec canonical_uid t uid =
  match Hashtbl.find_opt t.redirects_uid uid with
  | Some target ->
      count t "redirects";
      canonical_uid t target
  | None -> uid

(* --- operations -------------------------------------------------------- *)

let view t = Replica_group.view t.storage

(* §3.2.2c: the user's host talks to the nearest active server, which
   relays the polls to the authority servers.  The communication cost
   of one retrieval is the host↔relay round trip plus the relay's
   round trips to each polled authority server; a roamed user far from
   their hash group pays visibly more ("remote access is usually slow
   and imposes large overhead"). *)
let record_retrieval_cost t a (stats : User_agent.check_stats) =
  let host = User_agent.host a in
  let region = region_of_node t.graph host in
  match servers_by_distance t ~from_host:host ~region with
  | [] -> ()
  | relay :: _ ->
      let d_host_relay = Netsim.Net.distance (net t) host relay in
      let polled =
        (* approximate the polled set: the first [polls] servers of
           the authority list *)
        List.filteri (fun i _ -> i < stats.User_agent.polls) (User_agent.authority a)
      in
      let d_polls =
        List.fold_left
          (fun acc srv -> acc +. (2. *. Netsim.Net.distance (net t) relay srv))
          0. polled
      in
      if relay <> host && List.mem relay polled then count t "relay_is_authority";
      if not (List.mem relay (User_agent.authority a)) then count t "relay_checks";
      Dsim.Stats.Summary.add t.retrieval_costs ((2. *. d_host_relay) +. d_polls)

let check_mail t name =
  let a = agent t name in
  let tracer =
    (* Span sampling: trace the retrieval rounds of 1-in-N users,
       selected by interned id so the choice is deterministic. *)
    if t.config.span_sample <= 1 || User_agent.uid a mod t.config.span_sample = 0
    then Some t.tracer
    else None
  in
  let stats =
    User_agent.get_mail ?tracer ~ledger:t.ledger a ~view:(view t) ~now:(now t)
  in
  count t "checks";
  count ~by:stats.User_agent.polls t "polls";
  count ~by:stats.User_agent.failed_polls t "failed_polls";
  count ~by:stats.User_agent.retrieved t "retrieved";
  record_retrieval_cost t a stats;
  stats

let compact t =
  let prunable = Pipeline.prunable t.pipeline ~ledger:t.ledger in
  let dropped =
    Hashtbl.fold
      (fun _ a acc -> acc + User_agent.compact a prunable)
      t.agents
      (Pipeline.compact t.pipeline prunable
      + Replica_group.compact t.storage prunable)
  in
  if dropped > 0 then count ~by:dropped t "compacted";
  dropped

let publish_health t =
  Pipeline.publish_gauges t.pipeline t.metrics;
  Replica_group.publish_gauges t.storage ~users:(fun () -> uids t) t.metrics

let retrieval_cost_stats t = t.retrieval_costs

let check_mail_at t ~at name =
  ignore
    (Dsim.Engine.schedule_at ~category:"mail.check" t.engine at (fun () ->
         ignore (check_mail t name)))

let login t name ~host =
  let a = agent t name in
  let region = Naming.Name.region name in
  if not (String.equal (region_of_node t.graph host) region) then
    invalid_arg
      (Printf.sprintf "Location_system.login: host %s is outside region %s"
         (Netsim.Graph.label t.graph host)
         region);
  User_agent.set_host a host;
  Hashtbl.replace t.locations name host;
  count t "logins";
  (* Inform the nearest active server; it gossips the new location to
     its regional peers so any of them can route the alert signal. *)
  (match List.find_opt (fun s -> Netsim.Net.is_up (net t) s)
           (servers_by_distance t ~from_host:host ~region)
   with
  | None -> count t "login_unserved"
  | Some nearest ->
      ignore
        (Netsim.Net.send (net t) ~src:host ~dst:nearest
           (Pipeline.Ctrl (Location_update (name, host, true)))));
  (* §3.2.2c: logging on triggers retrieval of pending mail. *)
  check_mail t name

let submit_at t ~at ~sender ~recipient ?(subject = "") ?(body = "") () =
  let sender_agent = agent t sender in
  (if not (Hashtbl.mem t.agents recipient || Hashtbl.mem t.redirects recipient) then
     invalid_arg
       (Printf.sprintf "Location_system.submit: unknown recipient %s"
          (Naming.Name.to_string recipient)));
  let id = t.next_id in
  t.next_id <- id + 1;
  let msg =
    Message.create ~id ~sender ~recipient ~recipient_uid:(uid_of t recipient)
      ~subject ~body ~submitted_at:at ()
  in
  t.submitted <- msg :: t.submitted;
  ignore
    (Dsim.Engine.schedule_at ~category:"mail.submit" t.engine at (fun () ->
         Pipeline.submit t.pipeline ~sender_agent ~msg));
  msg

let submit t ~sender ~recipient ?subject ?body () =
  submit_at t ~at:(now t) ~sender ~recipient ?subject ?body ()

let run_until t horizon = Dsim.Engine.run ~until:horizon t.engine

let quiesce ?(step = 1000.) ?(max_steps = 10000) t =
  let rec go n =
    if n < max_steps && Dsim.Engine.pending t.engine > 0 then begin
      Dsim.Engine.run ~until:(now t +. step) t.engine;
      go (n + 1)
    end
  in
  go 0

(* --- reconfiguration and migration ------------------------------------- *)

let rebalance_hash t ~groups =
  if groups <= 0 then invalid_arg "Location_system.rebalance_hash: groups <= 0";
  let moved = ref 0 in
  let old_groups = t.groups in
  Hashtbl.iter
    (fun name a ->
      let before = authority_of t name in
      t.groups <- groups;
      let after = authority_of t name in
      t.groups <- old_groups;
      if before <> after then begin
        incr moved;
        User_agent.set_authority a after
      end)
    t.agents;
  t.groups <- groups;
  Hashtbl.iter
    (fun _ sp ->
      match Naming.Name_space.scheme sp with
      | Naming.Name_space.By_hash _ ->
          ignore (Naming.Name_space.rebalance_hash sp ~k:groups)
      | Naming.Name_space.By_region | Naming.Name_space.By_host -> ())
    t.spaces;
  count ~by:!moved t "hash_moves";
  !moved

let migrate_region t name ~new_host =
  let _ = agent t name in
  if not (Netsim.Graph.mem_node t.graph new_host) then
    invalid_arg "Location_system.migrate_region: unknown host";
  let new_region = region_of_node t.graph new_host in
  if String.equal new_region (Naming.Name.region name) then
    invalid_arg "Location_system.migrate_region: same-region move is free, use login";
  let new_name =
    let host_label = Netsim.Graph.label t.graph new_host in
    let candidate user = Naming.Name.make ~region:new_region ~host:host_label ~user in
    let base = Naming.Name.user name in
    let rec pick i =
      let n = candidate (if i = 0 then base else Printf.sprintf "%s-m%d" base i) in
      if Hashtbl.mem t.agents n || Hashtbl.mem t.redirects n then pick (i + 1) else n
    in
    pick 0
  in
  let authority = authority_of t new_name in
  let authority = if authority = [] then server_nodes t else authority in
  let new_uid = uid_of t new_name in
  let a' = User_agent.create ~uid:new_uid ~name:new_name ~host:new_host ~authority () in
  Hashtbl.replace t.agents new_name a';
  set_agent_uid t new_uid (Some a');
  Hashtbl.replace t.primary_hosts new_name new_host;
  (match space t new_region with
  | Some sp ->
      Naming.Name_space.register sp new_name;
      Naming.Name_space.assign_context sp
        (Naming.Name_space.context_of sp new_name)
        authority
  | None -> ());
  (match space t (Naming.Name.region name) with
  | Some sp -> Naming.Name_space.unregister sp name
  | None -> ());
  Hashtbl.remove t.agents name;
  let old_uid = uid_of t name in
  set_agent_uid t old_uid None;
  Hashtbl.remove t.locations name;
  Hashtbl.remove t.primary_hosts name;
  Hashtbl.replace t.redirects name new_name;
  Hashtbl.replace t.redirects_uid old_uid new_uid;
  count t "migrations";
  new_name

let redirect_target t name = Hashtbl.find_opt t.redirects name

(* --- construction ------------------------------------------------------- *)

let create ?(config = default_config) ?(design_label = "location")
    (site : Netsim.Topology.mail_site) =
  if config.replication <= 0 then invalid_arg "Location_system.create: replication <= 0";
  if config.hash_groups <= 0 then invalid_arg "Location_system.create: hash_groups <= 0";
  let engine = Dsim.Engine.create () in
  let trace = Dsim.Trace.create () in
  let counters = Dsim.Stats.Counter.create () in
  let tracer = Telemetry.Tracer.create () in
  let metrics = Telemetry.Registry.create ~labels:[ ("design", design_label) ] () in
  let ledger = Ledger.create () in
  Telemetry.Probe.attach_engine metrics engine;
  let intern = Naming.Intern.create ~capacity:256 () in
  let region_servers = Hashtbl.create 4 in
  let agents = Hashtbl.create 64 in
  let primary_hosts = Hashtbl.create 64 in
  let locations = Hashtbl.create 64 in
  let spaces = Hashtbl.create 4 in
  let redirects = Hashtbl.create 4 in
  let t_ref = ref None in
  let the_t () = match !t_ref with Some t -> t | None -> assert false in
  let storage =
    Replica_group.create ~mailbox_policy:config.mailbox_policy ~ledger ~tracer
      ~metrics ~counters
      ~chain_of:(fun uid ->
        let t = the_t () in
        authority_of t (Naming.Intern.name t.intern (canonical_uid t uid)))
      ~is_up:(fun node -> Netsim.Net.is_up (Pipeline.net (the_t ()).pipeline) node)
      ()
  in
  List.iter
    (fun node ->
      let region = region_of_node site.graph node in
      Replica_group.add_holder storage ~node ~region;
      let existing =
        match Hashtbl.find_opt region_servers region with Some l -> l | None -> []
      in
      Hashtbl.replace region_servers region (existing @ [ node ]);
      if not (Hashtbl.mem spaces region) then
        Hashtbl.replace spaces region
          (Naming.Name_space.create (Naming.Name_space.By_hash config.hash_groups)))
    site.servers;
  let callbacks =
    {
      Pipeline.region_servers =
        (fun region ->
          match Hashtbl.find_opt region_servers region with Some l -> l | None -> []);
      uid_of = (fun name -> Naming.Intern.intern intern name);
      name_of_uid = (fun uid -> Naming.Intern.name intern uid);
      canonical_uid = (fun uid -> canonical_uid (the_t ()) uid);
      authority_of_uid =
        (fun uid -> authority_of (the_t ()) (Naming.Intern.name intern uid));
      notify_target_uid =
        (fun uid ->
          let t = the_t () in
          match agent_by_uid t uid with
          | Some a -> Some (current_location t (User_agent.name a))
          | None -> None);
      submit_servers =
        (fun a ->
          let t = the_t () in
          let host = User_agent.host a in
          servers_by_distance t ~from_host:host
            ~region:(region_of_node t.graph host));
      on_deposit = (fun _ ~on:_ ~ack:_ -> ());
      cached_authority = (fun ~at:_ _ -> None);
      on_forward_resolved = (fun ~at:_ _ _ -> ());
      on_undeliverable =
        (fun _ ~reason:_ -> count (the_t ()) "undeliverable");
      on_redirected = (fun _ ~old_name:_ -> count (the_t ()) "rename_notices");
      on_ctrl =
        (fun node ~time:_ ~src:_ (Location_update (name, host, fan_out)) ->
          let t = the_t () in
          Hashtbl.replace t.locations name host;
          count t "location_updates";
          if fan_out then
            (* Only the first (nearest) server gossips to its peers. *)
            match Hashtbl.find_opt t.region_servers (region_of_node t.graph node) with
            | Some peers ->
                List.iter
                  (fun peer ->
                    if peer <> node then begin
                      count t "location_gossip";
                      ignore
                        (Netsim.Net.send (Pipeline.net t.pipeline) ~src:node ~dst:peer
                           (Pipeline.Ctrl (Location_update (name, host, false))))
                    end)
                  peers
            | None -> ());
    }
  in
  let route_anchors =
    (* Anchor routing on the infrastructure: every node that is not a
       user host (servers, gateways, interior switches). *)
    let is_host = Array.make (Netsim.Graph.node_count site.graph) false in
    List.iter (fun (h, _) -> is_host.(h) <- true) site.hosts;
    List.filter
      (fun v -> not is_host.(v))
      (List.init (Netsim.Graph.node_count site.graph) Fun.id)
  in
  let pipeline =
    Pipeline.create ~engine ~graph:site.graph ~trace ~counters ~metrics ~tracer
      ?bandwidth:config.bandwidth ~loss_rate:config.loss_rate ~ledger ~route_anchors ~storage
      {
        Pipeline.default_pipeline_config with
        retry_timeout = config.retry_timeout;
        resubmit_timeout = config.resubmit_timeout;
        max_retries = config.max_retries;
        service_rate = config.service_rate;
        service_seed = 0;
        span_sample = config.span_sample;
      }
      callbacks
  in
  let t =
    {
      config;
      engine;
      pipeline;
      graph = site.graph;
      storage;
      region_servers;
      agents;
      intern;
      agents_by_uid = Array.make 256 None;
      primary_hosts;
      locations;
      spaces;
      redirects;
      redirects_uid = Hashtbl.create 4;
      groups = config.hash_groups;
      retrieval_costs = Dsim.Stats.Summary.create ();
      counters;
      metrics;
      tracer;
      trace;
      ledger;
      next_id = 0;
      submitted = [];
    }
  in
  t_ref := Some t;
  Netsim.Net.on_status_change (net t) (fun ~time node up ->
      if up && Replica_group.mem_holder storage node then
        Replica_group.note_recovery storage ~node ~at:time);
  List.iter
    (fun (host, _population) ->
      let region = region_of_node site.graph host in
      let host_label = Netsim.Graph.label site.graph host in
      for k = 0 to config.users_per_host - 1 do
        let name =
          Naming.Name.make ~region ~host:host_label ~user:(Printf.sprintf "u%d" k)
        in
        let authority = authority_of t name in
        let authority = if authority = [] then server_nodes t else authority in
        let uid = uid_of t name in
        let a = User_agent.create ~uid ~name ~host ~authority () in
        Hashtbl.replace agents name a;
        set_agent_uid t uid (Some a);
        Hashtbl.replace primary_hosts name host;
        let sp = Hashtbl.find spaces region in
        Naming.Name_space.register sp name;
        Naming.Name_space.assign_context sp
          (Naming.Name_space.context_of sp name)
          authority
      done)
    site.hosts;
  t
