(** The common surface of the three mail-system designs.

    All three designs (§3.1 syntax-directed, §3.2 location-independent,
    §3.3 attribute-based) expose the same driving surface: an engine,
    a network, named users with agents, servers, submission, mailbox
    checks and quiescing.  [S] captures that surface once so scenario
    drivers and evaluation exist once instead of per-design
    ({!Scenario.drive}, {!Evaluation.of_system}); packing lives in
    {!System}. *)

(* lint: allow missing-mli — interface-only module: it declares module types, and an .mli would have to repeat it verbatim *)

module type S = sig
  type t

  type wire
  (** The design's network payload type (kept abstract by packing). *)

  val design : string
  (** Short label for metrics and reports: ["syntax"], ["location"],
      ["attribute"]. *)

  (** {1 Access} *)

  val engine : t -> Dsim.Engine.t
  val net : t -> wire Netsim.Net.t
  val graph : t -> Netsim.Graph.t
  val now : t -> float
  val users : t -> Naming.Name.t list
  val agent : t -> Naming.Name.t -> User_agent.t
  val server_nodes : t -> Netsim.Graph.node list

  val storage : t -> Replica_group.t
  (** The system's replicated mailbox storage: every server node is a
      holder inside this group, and all mailbox access (deposit
      copies, GetMail drains, recovery resync) goes through it. *)

  val authority_of : t -> Naming.Name.t -> Netsim.Graph.node list
  (** A user's current ordered authority chain (primary first) — the
      replication set of the quorum deposit. *)

  val counters : t -> Dsim.Stats.Counter.t
  (** Raw internal tallies; prefer {!metrics} for anything public. *)

  val metrics : t -> Telemetry.Registry.t
  (** The run's typed metric registry (base label
      [design=<design>]). *)

  val tracer : t -> Telemetry.Tracer.t
  (** The run's span collector: per-message lifecycle traces from the
      pipeline plus per-check retrieval traces (root spans ["message"]
      and ["getmail.check"]). *)

  val trace : t -> Dsim.Trace.t
  val submitted : t -> Message.t list
  val view : t -> User_agent.server_view

  val ledger : t -> Ledger.t
  (** The run's delivery-invariant ledger (§3.1.2c): the pipeline
      records submits/deposits/bounces into it, the agents record
      fetches/retrievals.  Check it after quiescing. *)

  (** {1 Operation} *)

  val submit :
    t -> sender:Naming.Name.t -> recipient:Naming.Name.t -> unit -> Message.t

  val submit_at :
    t ->
    at:float ->
    sender:Naming.Name.t ->
    recipient:Naming.Name.t ->
    unit ->
    Message.t

  val check_mail : t -> Naming.Name.t -> User_agent.check_stats
  val run_until : t -> float -> unit
  val quiesce : ?step:float -> ?max_steps:int -> t -> unit

  val compact : t -> int
  (** Prune dedup/bookkeeping state (pipeline tables, agent seen-sets)
      for messages the ledger has confirmed settled; returns the
      number of entries dropped.  Keeps long-running simulations
      memory-bounded; safe to call at any time. *)

  val publish_health : t -> unit
  (** Publish the instantaneous health gauges the per-window monitors
      read — pipeline backlog ({!Pipeline.publish_gauges}) and replica
      chain health ({!Replica_group.publish_gauges}) — into
      {!metrics}.  Called by [System.snapshot_metrics], so every
      timeseries window carries a fresh reading. *)
end
