(** The no-lost-mail invariant checker of §3.1.2c.

    The paper claims GetMail plus the deposit/retry pipeline "does not
    cause any loss of mail" across server failures.  A ledger records
    every lifecycle transition per message id — submit, mailbox
    deposit, mailbox fetch, inbox retrieval, undeliverable declaration
    — and {!check} turns them into a verdict of the invariant:

    {e every submitted message is eventually retrieved exactly once,
    or explicitly declared undeliverable with a reason — never
    silently dropped, never duplicated into an inbox.}

    The systems record submits/deposits/bounces from inside the
    pipeline and fetches/retrievals from the user agents; run
    {!check} only after the network has drained (post-quiesce), since
    in-flight mail is neither lost nor delivered yet. *)

type t

val create : unit -> t

val record_submit : t -> Message.t -> at:float -> unit
(** The message entered the pipeline (once per submission;
    resubmissions of the same id count again but do not reset the
    original submit time). *)

val record_deposit : t -> Message.t -> at:float -> unit
(** A new copy landed in some server's mailbox (the pipeline calls
    this once per distinct (server, message) deposit). *)

val record_fetch : t -> Message.t -> at:float -> unit
(** A copy was drained out of a mailbox by a retrieval round — counted
    {e before} agent-side dedup, once per copy. *)

val record_purge : t -> Message.id -> at:float -> unit
(** A replica copy was dropped unfetched because another chain member
    already served the message ({!Replica_group} purge-on-fetch or
    recovery resync).  Purged copies count as accounted-for alongside
    fetched ones, so replication does not stop ids from settling. *)

val record_ack : t -> Message.t -> degraded:bool -> at:float -> unit
(** The replication round for one deposit finished and the pipeline
    acked upstream: [degraded = false] means the write quorum was
    reached, [degraded = true] means the round timed out below quorum
    (but with at least the coordinator's copy stored). *)

val record_retrieve : t -> Message.t -> at:float -> unit
(** The message was accepted into the recipient's inbox (post-dedup).
    More than one of these per id is the duplicate violation. *)

val record_undeliverable : t -> Message.t -> reason:string -> at:float -> unit
(** The pipeline bounced the message.  First reason wins. *)

val size : t -> int
(** Number of message ids ever recorded. *)

val settled : t -> Message.id -> bool
(** The id's outcome is final (retrieved or declared undeliverable)
    {e and} every deposited copy has been fetched or purged back out
    of its mailbox, so no later event can resurface it.  Dedup state
    for a settled id is safe to prune — this is the signal
    [Pipeline.compact], [User_agent.compact] and
    [Replica_group.compact] act on.  Unknown ids are settled. *)

type violation_kind = Lost | Duplicate

type violation = { id : Message.id; kind : violation_kind; detail : string }

type verdict = {
  submitted : int;
  delivered : int;  (** retrieved exactly once. *)
  undeliverable : int;  (** declared, never retrieved. *)
  lost : int;  (** submitted but neither retrieved nor declared. *)
  duplicates : int;  (** retrieved more than once. *)
  spurious_bounces : int;
      (** both delivered and declared undeliverable — e.g. the deposit
          ack vanished and retries ran out after the copy had landed.
          At-least-once delivery permits this; counted, not a
          violation. *)
  in_mailbox : int;
      (** deposited copies never fetched nor purged (informational). *)
  purged : int;  (** replica copies dropped unfetched (informational). *)
  quorum_acks : int;  (** replication rounds acked at full write quorum. *)
  degraded_acks : int;  (** rounds acked below quorum after timeout. *)
  ok : bool;  (** [lost = 0 && duplicates = 0]. *)
  violations : violation list;  (** sorted by message id. *)
}

val check : t -> verdict
(** Evaluate the invariant over everything recorded so far.  Only
    meaningful once the run has drained. *)

val verdict_to_json : verdict -> Telemetry.Json.t

val pp_verdict : Format.formatter -> verdict -> unit
(** One summary line, then one line per violation. *)
