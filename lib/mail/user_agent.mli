(** User agents ("user interfaces", §2) and the GetMail retrieval
    algorithm of §3.1.2c.

    The agent keeps, per the paper, [LastCheckingTime] and the
    [PreviouslyUnavailableServers] list, and retrieves mail by polling
    the user's ordered authority-server list only as far as needed:
    once it reaches an alive server that has been up since before the
    last check ([LastCheckingTime > LastStartTime]), no later server
    can hold fresh mail and the scan stops.  Servers that were down at
    checking time are remembered and drained when they recover, which
    is what makes the scheme lossless.

    The module is decoupled from any concrete system through
    {!server_view} so designs 1 and 2 (and the tests) can reuse it. *)

type t

val create :
  ?uid:int ->
  name:Naming.Name.t ->
  host:Netsim.Graph.node ->
  authority:Netsim.Graph.node list ->
  unit ->
  t
(** [uid] is the name's interned id in the owning system
    ({!Naming.Intern}); [-1] (the default) for standalone agents.
    @raise Invalid_argument on an empty authority list. *)

val name : t -> Naming.Name.t

val uid : t -> int
(** The interned id passed at creation; every fetch through
    {!server_view} carries it so storage keys mailboxes on ints. *)

val host : t -> Netsim.Graph.node
val authority : t -> Netsim.Graph.node list

val set_authority : t -> Netsim.Graph.node list -> unit
(** Reconfiguration: replace the ordered list. *)

val set_host : t -> Netsim.Graph.node -> unit

val inbox : t -> Message.t list
(** Everything retrieved so far, oldest first. *)

val inbox_size : t -> int

val previously_unavailable : t -> Netsim.Graph.node list
(** In first-marked-unavailable order (the paper's FIFO drain order).
    Maintained in a hash table internally, so marking and clearing a
    server is O(1) per check instead of the former O(n) list scans. *)

val last_checking_time : t -> float

(** How the agent sees the servers: liveness, [LastStartTime], and a
    fetch operation. *)
type server_view = {
  is_alive : Netsim.Graph.node -> bool;
  last_start : Netsim.Graph.node -> float;
  fetch :
    Netsim.Graph.node -> uid:int -> Naming.Name.t -> at:float -> Message.t list;
}

(** Outcome of one retrieval round. *)
type check_stats = {
  polls : int;  (** servers contacted, alive or not. *)
  failed_polls : int;  (** contacts to servers that were down. *)
  retrieved : int;  (** messages fetched this round. *)
}

val get_mail :
  ?tracer:Telemetry.Tracer.t ->
  ?ledger:Ledger.t ->
  t ->
  view:server_view ->
  now:float ->
  check_stats
(** The paper's GetMail procedure.  With [?tracer], the round opens a
    ["getmail.check"] trace whose instant ["getmail.poll"] children
    correspond one-to-one with [check_stats.polls] (failed polls
    carry [alive=false]); every fresh message fetched also gets a
    ["mailbox.wait"] span (deposit → retrieval) and a poll marker in
    its own message trace, whose root span is then finished.
    With [?ledger], every fetched mailbox copy is recorded
    ({!Ledger.record_fetch}) and every accepted fresh message counted
    as the retrieval ({!Ledger.record_retrieve}). *)

val poll_all :
  ?tracer:Telemetry.Tracer.t ->
  ?ledger:Ledger.t ->
  t ->
  view:server_view ->
  now:float ->
  check_stats
(** Baseline: poll {e every} authority server, every time.  Traced
    and ledgered like {!get_mail}, with mode ["poll_all"]. *)

val naive_check :
  ?tracer:Telemetry.Tracer.t ->
  ?ledger:Ledger.t ->
  t ->
  view:server_view ->
  now:float ->
  check_stats
(** Lossy baseline: poll only the first alive server and keep no
    unavailability state — mail deposited on other servers during
    outages is never found.  Traced and ledgered like {!get_mail},
    with mode ["naive"]. *)

val seen_size : t -> int
(** Current size of the dedup ([seen]) table. *)

val compact : t -> (Message.id -> bool) -> int
(** [compact t prunable] drops dedup entries for settled messages
    (predicate from {!Pipeline.prunable}); returns how many were
    removed.  The inbox itself is never touched. *)
