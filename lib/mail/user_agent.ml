type t = {
  name : Naming.Name.t;
  uid : int;  (* interned id of [name] in the owning system; -1 standalone *)
  mutable host : Netsim.Graph.node;
  mutable authority : Netsim.Graph.node list;
  mutable last_checking : float;
  pus : (Netsim.Graph.node, int) Hashtbl.t;
      (* PreviouslyUnavailableServers, each tagged with an insertion
         sequence number: O(1) add/remove instead of the old list's
         O(n) membership scan + tail append, while keeping the
         paper's FIFO drain order recoverable. *)
  mutable pus_seq : int;
  mutable inbox : Message.t list;  (* newest first *)
  seen : (Message.id, unit) Hashtbl.t;
      (* delivery is at-least-once; the agent deduplicates. *)
}

let create ?(uid = -1) ~name ~host ~authority () =
  if authority = [] then invalid_arg "User_agent.create: empty authority list";
  {
    name;
    uid;
    host;
    authority;
    last_checking = 0.;
    pus = Hashtbl.create 8;
    pus_seq = 0;
    inbox = [];
    seen = Hashtbl.create 32;
  }

let name t = t.name
let uid t = t.uid
let host t = t.host
let authority t = t.authority
let set_authority t servers =
  if servers = [] then invalid_arg "User_agent.set_authority: empty authority list";
  t.authority <- servers

let set_host t h = t.host <- h

let inbox t = List.rev t.inbox
let inbox_size t = List.length t.inbox

let previously_unavailable t =
  Hashtbl.fold (fun s seq acc -> (seq, s) :: acc) t.pus []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let last_checking_time t = t.last_checking

type server_view = {
  is_alive : Netsim.Graph.node -> bool;
  last_start : Netsim.Graph.node -> float;
  fetch :
    Netsim.Graph.node -> uid:int -> Naming.Name.t -> at:float -> Message.t list;
}

type check_stats = { polls : int; failed_polls : int; retrieved : int }

let add_pus t s =
  if not (Hashtbl.mem t.pus s) then begin
    Hashtbl.replace t.pus s t.pus_seq;
    t.pus_seq <- t.pus_seq + 1
  end

let remove_pus t s = Hashtbl.remove t.pus s

(* Keep only messages not already retrieved (duplicates can arrive
   when a deposit retry raced a lost acknowledgement).  The ledger, if
   any, sees every fetched copy and every accepted (fresh) message. *)
let fresh_only ?ledger t ~now msgs =
  List.filter
    (fun (m : Message.t) ->
      Option.iter (fun l -> Ledger.record_fetch l m ~at:now) ledger;
      if Hashtbl.mem t.seen m.Message.id then false
      else begin
        Hashtbl.replace t.seen m.Message.id ();
        Option.iter (fun l -> Ledger.record_retrieve l m ~at:now) ledger;
        true
      end)
    msgs

(* Tracing: one "getmail.check" trace per retrieval round with an
   instant "getmail.poll" child per server contact — their count
   matches [check_stats.polls] exactly.  Each fresh message fetched
   also completes its own trace: a "mailbox.wait" span (deposit →
   retrieval), a poll marker, and the root span is finished. *)
let instrument tracer t ~mode ~now =
  match tracer with
  | None ->
      ((fun ~server:_ ~alive:_ ~fetched:_ -> ()), fun (_ : check_stats) -> ())
  | Some tracer ->
      let root =
        Telemetry.Tracer.span tracer ~name:"getmail.check" ~start:now
          ~attrs:[ ("user", Naming.Name.to_string t.name); ("mode", mode) ]
          ()
      in
      let record_poll ~server ~alive ~fetched =
        ignore
          (Telemetry.Tracer.span tracer ~parent:root ~name:"getmail.poll"
             ~start:now ~finish:now
             ~attrs:
               [
                 ("server", string_of_int server);
                 ("alive", string_of_bool alive);
                 ("retrieved", string_of_int (List.length fetched));
               ]
             ());
        List.iter
          (fun (m : Message.t) ->
            match Message.span m with
            | Some mroot ->
                (match m.Message.deposited_at with
                | Some dep ->
                    ignore
                      (Telemetry.Tracer.span tracer ~parent:mroot
                         ~name:"mailbox.wait" ~start:dep ~finish:now
                         ~attrs:[ ("server", string_of_int server) ] ())
                | None -> ());
                ignore
                  (Telemetry.Tracer.span tracer ~parent:mroot
                     ~name:"getmail.poll" ~start:now ~finish:now
                     ~attrs:[ ("server", string_of_int server) ] ());
                Telemetry.Span.finish mroot ~at:now
            | None -> ())
          fetched
      in
      let close (stats : check_stats) =
        Telemetry.Span.set_attr root "polls" (string_of_int stats.polls);
        Telemetry.Span.set_attr root "failed_polls"
          (string_of_int stats.failed_polls);
        Telemetry.Span.set_attr root "retrieved" (string_of_int stats.retrieved);
        Telemetry.Span.finish root ~at:now
      in
      (record_poll, close)

let get_mail ?tracer ?ledger t ~view ~now =
  let current_checking_time = now in
  let polls = ref 0 and failed = ref 0 and retrieved = ref 0 in
  let record_poll, close = instrument tracer t ~mode:"getmail" ~now in
  let take msgs =
    let msgs = fresh_only ?ledger t ~now msgs in
    retrieved := !retrieved + List.length msgs;
    t.inbox <- List.rev_append msgs t.inbox;
    msgs
  in
  (* Phase 1: scan the authority list until a stable server proves no
     later server can hold fresh mail. *)
  let rec scan = function
    | [] -> ()
    | s :: rest ->
        incr polls;
        if view.is_alive s then begin
          let fetched = take (view.fetch s ~uid:t.uid t.name ~at:now) in
          record_poll ~server:s ~alive:true ~fetched;
          remove_pus t s;
          if t.last_checking > view.last_start s then () else scan rest
        end
        else begin
          incr failed;
          record_poll ~server:s ~alive:false ~fetched:[];
          add_pus t s;
          scan rest
        end
  in
  scan t.authority;
  (* Phase 2: drain servers that were unavailable at some earlier
     check and are alive again — they may hold old mail.  Snapshot
     first (in insertion order): [remove_pus] mutates the table. *)
  List.iter
    (fun s ->
      if view.is_alive s then begin
        incr polls;
        let fetched = take (view.fetch s ~uid:t.uid t.name ~at:now) in
        record_poll ~server:s ~alive:true ~fetched;
        remove_pus t s
      end)
    (previously_unavailable t);
  t.last_checking <- current_checking_time;
  let stats = { polls = !polls; failed_polls = !failed; retrieved = !retrieved } in
  close stats;
  stats

let poll_all ?tracer ?ledger t ~view ~now =
  let polls = ref 0 and failed = ref 0 and retrieved = ref 0 in
  let record_poll, close = instrument tracer t ~mode:"poll_all" ~now in
  List.iter
    (fun s ->
      incr polls;
      if view.is_alive s then begin
        let msgs = fresh_only ?ledger t ~now (view.fetch s ~uid:t.uid t.name ~at:now) in
        retrieved := !retrieved + List.length msgs;
        t.inbox <- List.rev_append msgs t.inbox;
        record_poll ~server:s ~alive:true ~fetched:msgs
      end
      else begin
        incr failed;
        record_poll ~server:s ~alive:false ~fetched:[]
      end)
    t.authority;
  t.last_checking <- now;
  let stats = { polls = !polls; failed_polls = !failed; retrieved = !retrieved } in
  close stats;
  stats

let naive_check ?tracer ?ledger t ~view ~now =
  let polls = ref 0 and failed = ref 0 and retrieved = ref 0 in
  let record_poll, close = instrument tracer t ~mode:"naive" ~now in
  let rec first_alive = function
    | [] -> ()
    | s :: rest ->
        incr polls;
        if view.is_alive s then begin
          let msgs = fresh_only ?ledger t ~now (view.fetch s ~uid:t.uid t.name ~at:now) in
          retrieved := !retrieved + List.length msgs;
          t.inbox <- List.rev_append msgs t.inbox;
          record_poll ~server:s ~alive:true ~fetched:msgs
        end
        else begin
          incr failed;
          record_poll ~server:s ~alive:false ~fetched:[];
          first_alive rest
        end
  in
  first_alive t.authority;
  t.last_checking <- now;
  let stats = { polls = !polls; failed_polls = !failed; retrieved = !retrieved } in
  close stats;
  stats

let seen_size t = Hashtbl.length t.seen

let compact t prunable =
  let doomed =
    Hashtbl.fold (fun id () acc -> if prunable id then id :: acc else acc) t.seen []
    |> List.sort Int.compare
  in
  List.iter (Hashtbl.remove t.seen) doomed;
  List.length doomed
