type t = {
  node : Netsim.Graph.node;
  region : string;
  mailbox_policy : Mailbox.policy;
  mutable last_start : float;
  mailboxes : (int, Mailbox.t) Hashtbl.t;  (* keyed by interned user id *)
  mutable stores : int;
  (* Running holder-wide totals, kept in step around every mailbox
     mutation so per-window sampling never walks the mailbox table. *)
  mutable pending_total : int;
  mutable bytes_total : int;
}

let create ?(mailbox_policy = Mailbox.Delete_on_retrieve) ~node ~region () =
  {
    node;
    region;
    mailbox_policy;
    last_start = 0.;
    mailboxes = Hashtbl.create 16;
    stores = 0;
    pending_total = 0;
    bytes_total = 0;
  }

let node t = t.node
let region t = t.region
let last_start t = t.last_start
let note_recovery t ~at = t.last_start <- at

let mailbox t ~uid name =
  match Hashtbl.find_opt t.mailboxes uid with
  | Some mb -> mb
  | None ->
      let mb = Mailbox.create ~policy:t.mailbox_policy name in
      Hashtbl.add t.mailboxes uid mb;
      mb

(* Run one mailbox mutation, folding its effect into the holder-wide
   running totals. *)
let tracked t mb f =
  let b0 = Mailbox.storage_bytes mb and p0 = Mailbox.pending mb in
  let r = f () in
  t.bytes_total <- t.bytes_total + Mailbox.storage_bytes mb - b0;
  t.pending_total <- t.pending_total + Mailbox.pending mb - p0;
  r

let store t msg ~at =
  let mb = mailbox t ~uid:msg.Message.recipient_uid msg.Message.recipient in
  tracked t mb (fun () -> Mailbox.deposit mb msg);
  t.stores <- t.stores + 1;
  Message.mark_deposited msg ~at ~on:t.node

let take t ~uid ~at =
  match Hashtbl.find_opt t.mailboxes uid with
  | None -> []
  | Some mb ->
      let msgs = tracked t mb (fun () -> Mailbox.retrieve_all mb) in
      List.iter (fun m -> Message.mark_retrieved m ~at) msgs;
      msgs

let purge t ~uid id =
  match Hashtbl.find_opt t.mailboxes uid with
  | None -> 0
  | Some mb -> tracked t mb (fun () -> Mailbox.remove_pending mb id)

let pending_for t ~uid =
  match Hashtbl.find_opt t.mailboxes uid with
  | Some mb -> Mailbox.pending mb
  | None -> 0

let total_pending t = t.pending_total

let mailbox_count t = Hashtbl.length t.mailboxes

let stores t = t.stores

let storage_bytes t = t.bytes_total

let cleanup t ~now ~max_age =
  Hashtbl.fold
    (fun _ mb acc -> acc + tracked t mb (fun () -> Mailbox.cleanup mb ~now ~max_age))
    t.mailboxes 0
