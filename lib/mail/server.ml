type t = {
  node : Netsim.Graph.node;
  region : string;
  mailbox_policy : Mailbox.policy;
  mutable last_start : float;
  mailboxes : (Naming.Name.t, Mailbox.t) Hashtbl.t;
  mutable stores : int;
}

let create ?(mailbox_policy = Mailbox.Delete_on_retrieve) ~node ~region () =
  {
    node;
    region;
    mailbox_policy;
    last_start = 0.;
    mailboxes = Hashtbl.create 16;
    stores = 0;
  }

let node t = t.node
let region t = t.region
let last_start t = t.last_start
let note_recovery t ~at = t.last_start <- at

let mailbox t name =
  match Hashtbl.find_opt t.mailboxes name with
  | Some mb -> mb
  | None ->
      let mb = Mailbox.create ~policy:t.mailbox_policy name in
      Hashtbl.add t.mailboxes name mb;
      mb

let store t msg ~at =
  Mailbox.deposit (mailbox t msg.Message.recipient) msg;
  t.stores <- t.stores + 1;
  Message.mark_deposited msg ~at ~on:t.node

let take t name ~at =
  match Hashtbl.find_opt t.mailboxes name with
  | None -> []
  | Some mb ->
      let msgs = Mailbox.retrieve_all mb in
      List.iter (fun m -> Message.mark_retrieved m ~at) msgs;
      msgs

let purge t name id =
  match Hashtbl.find_opt t.mailboxes name with
  | None -> 0
  | Some mb -> Mailbox.remove_pending mb id

let pending_for t name =
  match Hashtbl.find_opt t.mailboxes name with
  | Some mb -> Mailbox.pending mb
  | None -> 0

let total_pending t = Hashtbl.fold (fun _ mb acc -> acc + Mailbox.pending mb) t.mailboxes 0

let mailbox_count t = Hashtbl.length t.mailboxes

let stores t = t.stores

let storage_bytes t =
  Hashtbl.fold (fun _ mb acc -> acc + Mailbox.storage_bytes mb) t.mailboxes 0

let cleanup t ~now ~max_age =
  Hashtbl.fold (fun _ mb acc -> acc + Mailbox.cleanup mb ~now ~max_age) t.mailboxes 0
