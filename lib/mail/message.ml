type id = int

type t = {
  id : id;
  sender : Naming.Name.t;
  mutable recipient : Naming.Name.t;
  mutable recipient_uid : int;
  subject : string;
  body : string;
  submitted_at : float;
  mutable deposited_at : float option;
  mutable deposited_on : Netsim.Graph.node option;
  mutable retrieved_at : float option;
  mutable forward_hops : int;
  parts : Content.part list;
  mutable span : Telemetry.Span.t option;
  mutable latency_observed : int;
}

let create ~id ~sender ~recipient ?(recipient_uid = -1) ?(subject = "")
    ?(body = "") ?(parts = []) ~submitted_at () =
  {
    id;
    sender;
    recipient;
    recipient_uid;
    subject;
    body;
    submitted_at;
    deposited_at = None;
    deposited_on = None;
    retrieved_at = None;
    forward_hops = 0;
    parts;
    span = None;
    latency_observed = 0;
  }

let set_span t span = if t.span = None then t.span <- Some span
let span t = t.span

let mark_deposited t ~at ~on =
  if t.deposited_at = None then begin
    t.deposited_at <- Some at;
    t.deposited_on <- Some on
  end

let mark_retrieved t ~at = if t.retrieved_at = None then t.retrieved_at <- Some at

let size_bytes t =
  64 + String.length t.subject + String.length t.body + Content.bytes_of t.parts

let is_deposited t = t.deposited_at <> None
let is_retrieved t = t.retrieved_at <> None

let delivery_latency t =
  match t.deposited_at with Some d -> Some (d -. t.submitted_at) | None -> None

let end_to_end_latency t =
  match t.retrieved_at with Some r -> Some (r -. t.submitted_at) | None -> None

let pp ppf t =
  Format.fprintf ppf "#%d %a -> %a (%s) submitted=%.3f%s%s" t.id Naming.Name.pp
    t.sender Naming.Name.pp t.recipient t.subject t.submitted_at
    (match t.deposited_at with
    | Some d -> Printf.sprintf " deposited=%.3f" d
    | None -> "")
    (match t.retrieved_at with
    | Some r -> Printf.sprintf " retrieved=%.3f" r
    | None -> "")
