type 'ctrl wire =
  | Submit of Message.t
  | Forward of Message.t
  | Deposit of Message.t
  | Ack of Message.id
  | Notify of Naming.Name.t * Message.id
  | Ctrl of 'ctrl

type config = {
  retry_timeout : float;
  resubmit_timeout : float;
  max_retries : int;
  service_rate : float option;
  service_seed : int;
}

let default_pipeline_config =
  {
    retry_timeout = 50.;
    resubmit_timeout = 400.;
    max_retries = 50;
    service_rate = None;
    service_seed = 0;
  }

type 'ctrl callbacks = {
  server_of : Netsim.Graph.node -> Server.t;
  region_servers : string -> Netsim.Graph.node list;
  canonical : Naming.Name.t -> Naming.Name.t;
  authority_of : Naming.Name.t -> Netsim.Graph.node list;
  notify_target : Naming.Name.t -> Netsim.Graph.node option;
  submit_servers : User_agent.t -> Netsim.Graph.node list;
  on_deposit : Message.t -> on:Netsim.Graph.node -> unit;
  cached_authority :
    at:Netsim.Graph.node -> Naming.Name.t -> Netsim.Graph.node list option;
  on_forward_resolved :
    at:Netsim.Graph.node -> Naming.Name.t -> Netsim.Graph.node list -> unit;
  on_undeliverable : Message.t -> reason:string -> unit;
  on_redirected : Message.t -> old_name:Naming.Name.t -> unit;
  on_ctrl :
    Netsim.Graph.node -> time:float -> src:Netsim.Graph.node -> 'ctrl -> unit;
}

(* A message a server must push onward until the next hop acknowledges
   receipt.  Pending state survives holder crashes (queued mail is on
   disk); retries wait for the holder to come back up. *)
type pending = {
  p_msg : Message.t;
  holder : Netsim.Graph.node;
  mutable attempts : int;
  mutable acked : bool;
}

(* FIFO work queue of one server under the Exp(mu) service model. *)
type srv_queue = {
  mutable busy : bool;
  jobs : (float * (unit -> unit)) Queue.t;  (* arrival time, work *)
  mutable busy_total : float;
  mutable served : int;
}

type 'ctrl t = {
  config : config;
  engine : Dsim.Engine.t;
  net : 'ctrl wire Netsim.Net.t;
  callbacks : 'ctrl callbacks;
  counters : Dsim.Stats.Counter.t;
  trace : Dsim.Trace.t;
  pendings : (Netsim.Graph.node * Message.id, pending) Hashtbl.t;
  seen_deposits : (Netsim.Graph.node * Message.id, unit) Hashtbl.t;
  dead : (Message.id, unit) Hashtbl.t;
      (* declared undeliverable: no further resubmissions *)
  service_rng : Dsim.Rng.t;
  queues : (Netsim.Graph.node, srv_queue) Hashtbl.t;
  queue_waits : Dsim.Stats.Summary.t;
  queue_wait_hist : Telemetry.Registry.histogram option;
}

let net t = t.net

let queue_wait_stats t = t.queue_waits

let srv_queue t node =
  match Hashtbl.find_opt t.queues node with
  | Some q -> q
  | None ->
      let q = { busy = false; jobs = Queue.create (); busy_total = 0.; served = 0 } in
      Hashtbl.replace t.queues node q;
      q

let server_utilisation t node =
  match Hashtbl.find_opt t.queues node with
  | None -> 0.
  | Some q ->
      let elapsed = Dsim.Engine.now t.engine in
      if elapsed <= 0. then 0. else q.busy_total /. elapsed

(* Run [work] through the node's FIFO service queue (or immediately
   when the service model is off). *)
let through_queue t node work =
  match t.config.service_rate with
  | None -> work ()
  | Some rate ->
      let q = srv_queue t node in
      Queue.add (Dsim.Engine.now t.engine, work) q.jobs;
      let rec serve_next () =
        match Queue.take_opt q.jobs with
        | None -> q.busy <- false
        | Some (arrived, job) ->
            q.busy <- true;
            let wait = Dsim.Engine.now t.engine -. arrived in
            Dsim.Stats.Summary.add t.queue_waits wait;
            Option.iter (fun h -> Telemetry.Registry.observe h wait) t.queue_wait_hist;
            let service = Dsim.Rng.exponential t.service_rng rate in
            q.busy_total <- q.busy_total +. service;
            ignore
              (Dsim.Engine.schedule_after ~category:"pipeline.service" t.engine
                 service (fun () ->
                   job ();
                   q.served <- q.served + 1;
                   serve_next ()))
      in
      if not q.busy then serve_next ()

let count ?by t key = Dsim.Stats.Counter.incr ?by t.counters key

let now t = Dsim.Engine.now t.engine

let log t fmt = Dsim.Trace.infof t.trace ~time:(now t) ~category:"pipeline" fmt

let first_active t nodes = List.find_opt (fun s -> Netsim.Net.is_up t.net s) nodes

let is_dead t id = Hashtbl.mem t.dead id

let declare_dead t msg ~reason =
  if not (Hashtbl.mem t.dead msg.Message.id) then begin
    Hashtbl.replace t.dead msg.Message.id ();
    t.callbacks.on_undeliverable msg ~reason
  end

let arm_retry t (p : pending) step =
  let rec fire () =
    ignore
      (Dsim.Engine.schedule_after ~category:"pipeline.retry" t.engine
         t.config.retry_timeout (fun () ->
           if not p.acked then
             if p.attempts < t.config.max_retries then begin
               p.attempts <- p.attempts + 1;
               count t "retries";
               if Netsim.Net.is_up t.net p.holder then step ();
               fire ()
             end
             else begin
               count t "gave_up";
               Hashtbl.remove t.pendings (p.holder, p.p_msg.Message.id);
               declare_dead t p.p_msg ~reason:"retries exhausted"
             end))
  in
  fire ()

let pending_for t ~holder msg step =
  let key = (holder, msg.Message.id) in
  match Hashtbl.find_opt t.pendings key with
  | Some p -> p.acked <- false
  | None ->
      let p = { p_msg = msg; holder; attempts = 0; acked = false } in
      Hashtbl.replace t.pendings key p;
      arm_retry t p step

let ack_pending t ~holder id =
  match Hashtbl.find_opt t.pendings (holder, id) with
  | Some p ->
      p.acked <- true;
      Hashtbl.remove t.pendings (holder, id)
  | None -> ()

let do_deposit t ~on msg =
  let key = (on, msg.Message.id) in
  if not (Hashtbl.mem t.seen_deposits key) then begin
    Hashtbl.replace t.seen_deposits key ();
    Server.deposit (t.callbacks.server_of on) msg ~at:(now t);
    count t "deposits";
    t.callbacks.on_deposit msg ~on;
    match t.callbacks.notify_target msg.Message.recipient with
    | Some host ->
        ignore (Netsim.Net.send t.net ~src:on ~dst:host (Notify (msg.Message.recipient, msg.Message.id)))
    | None -> ()
  end

(* Phase 3 (§3.1.2c): deposit into the first active server of a given
   authority list. *)
let rec deposit_with t ~at_server msg authority =
  match first_active t authority with
  | None ->
      count t "deposit_stalled";
      pending_for t ~holder:at_server msg (fun () -> deposit_phase t ~at_server msg)
  | Some target when target = at_server ->
      do_deposit t ~on:at_server msg;
      ack_pending t ~holder:at_server msg.Message.id
  | Some target ->
      pending_for t ~holder:at_server msg (fun () -> deposit_phase t ~at_server msg);
      msg.Message.forward_hops <- msg.Message.forward_hops + 1;
      ignore
        (Netsim.Net.send ~bytes:(Message.size_bytes msg) t.net ~src:at_server
           ~dst:target (Deposit msg))

and deposit_phase t ~at_server msg =
  let recipient = t.callbacks.canonical msg.Message.recipient in
  if not (Naming.Name.equal recipient msg.Message.recipient) then begin
    let old_name = msg.Message.recipient in
    msg.Message.recipient <- recipient;
    t.callbacks.on_redirected msg ~old_name
  end;
  deposit_with t ~at_server msg (t.callbacks.authority_of recipient)

(* Phase 2 (§3.1.2b): resolution and forwarding toward the
   recipient's region, short-circuited by the resolution cache. *)
let rec resolve_phase t ~at_server msg =
  let srv = t.callbacks.server_of at_server in
  let recipient = t.callbacks.canonical msg.Message.recipient in
  if String.equal (Naming.Name.region recipient) (Server.region srv) then
    deposit_phase t ~at_server msg
  else begin
    match t.callbacks.cached_authority ~at:at_server recipient with
    | Some authority when List.exists (fun s -> Netsim.Net.is_up t.net s) authority ->
        (* A cached resolution lets this server deposit directly,
           skipping the forwarding hop.  Retries re-enter
           [resolve_phase], so a stale entry degrades to a forward. *)
        count t "resolution_cache_hits";
        (match first_active t authority with
        | Some target when target <> at_server ->
            pending_for t ~holder:at_server msg (fun () ->
                resolve_phase t ~at_server msg);
            msg.Message.forward_hops <- msg.Message.forward_hops + 1;
            ignore
              (Netsim.Net.send ~bytes:(Message.size_bytes msg) t.net ~src:at_server
                 ~dst:target (Deposit msg))
        | Some target ->
            ignore target;
            do_deposit t ~on:at_server msg;
            ack_pending t ~holder:at_server msg.Message.id
        | None -> assert false)
    | _ -> (
        let target_region = Naming.Name.region recipient in
        match t.callbacks.region_servers target_region with
        | [] ->
            count t "unresolvable";
            log t "cannot resolve %s: unknown region %s"
              (Naming.Name.to_string recipient)
              target_region;
            declare_dead t msg ~reason:"unknown region"
        | nodes -> (
            match first_active t nodes with
            | None ->
                count t "forward_stalled";
                pending_for t ~holder:at_server msg (fun () ->
                    resolve_phase t ~at_server msg)
            | Some target ->
                t.callbacks.on_forward_resolved ~at:at_server recipient
                  (t.callbacks.authority_of recipient);
                pending_for t ~holder:at_server msg (fun () ->
                    resolve_phase t ~at_server msg);
                msg.Message.forward_hops <- msg.Message.forward_hops + 1;
                ignore
                  (Netsim.Net.send ~bytes:(Message.size_bytes msg) t.net
                     ~src:at_server ~dst:target (Forward msg))))
  end

let handle_wire t node ~time ~src msg =
  ignore time;
  match msg with
  | Submit m ->
      count t "submits_received";
      through_queue t node (fun () -> resolve_phase t ~at_server:node m)
  | Forward m ->
      ignore (Netsim.Net.send t.net ~src:node ~dst:src (Ack m.Message.id));
      through_queue t node (fun () -> deposit_phase t ~at_server:node m)
  | Deposit m ->
      ignore (Netsim.Net.send t.net ~src:node ~dst:src (Ack m.Message.id));
      through_queue t node (fun () -> do_deposit t ~on:node m)
  | Ack id -> ack_pending t ~holder:node id
  | Notify _ -> count t "notifications"
  | Ctrl c -> t.callbacks.on_ctrl node ~time ~src c

(* Connection setup (§3.1.2a): try servers in the agent's order;
   resubmission is the end-to-end safety net. *)
let rec try_submit t msg sender_agent =
  if (not (Message.is_deposited msg)) && not (is_dead t msg.Message.id) then begin
    let rec attempt = function
      | [] ->
          count t "submit_deferred";
          ignore
            (Dsim.Engine.schedule_after ~category:"pipeline.submit" t.engine
               t.config.retry_timeout (fun () -> try_submit t msg sender_agent))
      | s :: rest ->
          count t "submit_attempts";
          if
            Netsim.Net.is_up t.net s
            && Netsim.Net.send ~bytes:(Message.size_bytes msg) t.net
                 ~src:(User_agent.host sender_agent) ~dst:s (Submit msg)
          then ()
          else begin
            (* Server down, or unreachable through downed relays. *)
            count t "submit_attempt_failures";
            attempt rest
          end
    in
    attempt (t.callbacks.submit_servers sender_agent);
    ignore
      (Dsim.Engine.schedule_after ~category:"pipeline.resubmit" t.engine
         t.config.resubmit_timeout (fun () ->
           if (not (Message.is_deposited msg)) && not (is_dead t msg.Message.id)
           then begin
             count t "resubmissions";
             try_submit t msg sender_agent
           end))
  end

let submit t ~sender_agent ~msg =
  count t "submitted";
  try_submit t msg sender_agent

let pending_count t = Hashtbl.length t.pendings

let create ~engine ~graph ~trace ~counters ?metrics ?bandwidth ?loss_rate config
    callbacks =
  let net = Netsim.Net.create ~engine ~trace ?bandwidth ?loss_rate graph in
  (* Registered eagerly (even when the service model is off) so every
     design's registry exposes the same metric names. *)
  let queue_wait_hist =
    Option.map
      (fun reg ->
        Telemetry.Registry.histogram ~lo:0. ~hi:100. ~buckets:40 reg "queue_wait")
      metrics
  in
  let t =
    {
      config;
      engine;
      net;
      callbacks;
      counters;
      trace;
      pendings = Hashtbl.create 64;
      seen_deposits = Hashtbl.create 64;
      dead = Hashtbl.create 16;
      service_rng = Dsim.Rng.create config.service_seed;
      queues = Hashtbl.create 16;
      queue_waits = Dsim.Stats.Summary.create ();
      queue_wait_hist;
    }
  in
  List.iter
    (fun node -> Netsim.Net.set_handler net node (handle_wire t node))
    (Netsim.Graph.nodes graph);
  t
