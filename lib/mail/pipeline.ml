type 'ctrl wire =
  | Submit of Message.t
  | Forward of Message.t
  | Deposit of Message.t
  | Replicate of Message.t
  | Replicated of Message.id
  | Ack of Message.id
  | Notify of Naming.Name.t * Message.id
  | Ctrl of 'ctrl

type ack = Quorum | Degraded | Unavailable

let ack_to_string = function
  | Quorum -> "quorum"
  | Degraded -> "degraded"
  | Unavailable -> "unavailable"

type config = {
  retry_timeout : float;
  resubmit_timeout : float;
  max_retries : int;
  replicate_timeout : float;
  max_replicate_rounds : int;
  service_rate : float option;
  service_seed : int;
  span_sample : int;
      (* trace 1-in-N message lifecycles (by id, deterministic);
         <= 1 traces every message *)
}

let default_pipeline_config =
  {
    retry_timeout = 50.;
    resubmit_timeout = 400.;
    max_retries = 50;
    replicate_timeout = 25.;
    max_replicate_rounds = 3;
    service_rate = None;
    service_seed = 0;
    span_sample = 1;
  }

(* Counter handles resolved once at wiring time ({!Dsim.Stats.Counter.cell}):
   the dominant tallies bump raw int refs instead of hashing a string
   per event.  Rare outcomes keep the stringly [count]. *)
type cells = {
  c_submitted : int ref;
  c_submits_received : int ref;
  c_submit_attempts : int ref;
  c_submit_attempt_failures : int ref;
  c_submit_deferred : int ref;
  c_resubmissions : int ref;
  c_retries : int ref;
  c_deposits : int ref;
  c_replicate_sends : int ref;
  c_quorum_acks : int ref;
  c_degraded_acks : int ref;
  c_cache_hits : int ref;
  c_notifications : int ref;
}

type 'ctrl callbacks = {
  region_servers : string -> Netsim.Graph.node list;
  uid_of : Naming.Name.t -> int;
      (* intern a recipient name; messages cache the id so the hot
         path resolves each name at most once *)
  name_of_uid : int -> Naming.Name.t;
  canonical_uid : int -> int;  (* follow redirects, by interned id *)
  authority_of_uid : int -> Netsim.Graph.node list;
  notify_target_uid : int -> Netsim.Graph.node option;
  submit_servers : User_agent.t -> Netsim.Graph.node list;
  on_deposit : Message.t -> on:Netsim.Graph.node -> ack:ack -> unit;
  cached_authority :
    at:Netsim.Graph.node -> Naming.Name.t -> Netsim.Graph.node list option;
  on_forward_resolved :
    at:Netsim.Graph.node -> Naming.Name.t -> Netsim.Graph.node list -> unit;
  on_undeliverable : Message.t -> reason:string -> unit;
  on_redirected : Message.t -> old_name:Naming.Name.t -> unit;
  on_ctrl :
    Netsim.Graph.node -> time:float -> src:Netsim.Graph.node -> 'ctrl -> unit;
}

(* A message a server must push onward until the next hop acknowledges
   receipt.  Pending state survives holder crashes (queued mail is on
   disk); retries wait for the holder to come back up. *)
type pending = {
  p_msg : Message.t;
  holder : Netsim.Graph.node;
  mutable attempts : int;
  mutable acked : bool;
}

(* Who is waiting for this deposit's acknowledgement: the local
   deposit path (a pending on the coordinator itself) or an upstream
   server that sent a [Deposit] over the wire. *)
type upstream = Local | Remote of Netsim.Graph.node

(* One quorum-replication round: the coordinator wrote its local copy
   and fans [Replicate] out to the rest of the recipient's chain; the
   upstream ack is withheld until [needed] chain members hold the copy
   (quorum) or the round budget runs out (degraded). *)
type round = {
  r_msg : Message.t;
  coordinator : Netsim.Graph.node;
  chain : Netsim.Graph.node list;
  needed : int;
  mutable stored : Netsim.Graph.node list;  (* chain members holding a copy *)
  mutable upstreams : upstream list;
  mutable rounds_left : int;
  started : float;
  mutable finished : bool;
}

(* FIFO work queue of one server under the Exp(mu) service model. *)
type srv_queue = {
  mutable busy : bool;
  jobs : (float * Message.t option * (unit -> unit)) Queue.t;
      (* arrival time, message being processed (for tracing), work *)
  mutable busy_total : float;
  mutable served : int;
}

type 'ctrl t = {
  config : config;
  engine : Dsim.Engine.t;
  net : 'ctrl wire Netsim.Net.t;
  storage : Replica_group.t;
  callbacks : 'ctrl callbacks;
  counters : Dsim.Stats.Counter.t;
  cells : cells;
  (* Timer categories interned once at wiring time; the per-event
     schedule calls then touch no strings. *)
  cat_retry : Dsim.Engine.category;
  cat_replicate : Dsim.Engine.category;
  cat_submit : Dsim.Engine.category;
  cat_resubmit : Dsim.Engine.category;
  cat_service : Dsim.Engine.category;
  trace : Dsim.Trace.t;
  n : int;  (* node count: (node, id) dedup keys pack into id * n + node *)
  pendings : (int, pending) Hashtbl.t;
  rounds : (int, round) Hashtbl.t;
      (* open replication rounds, keyed by coordinator *)
  completed : (int, unit) Hashtbl.t;
      (* finished rounds: a retransmitted Deposit is re-acked instantly *)
  dead : (Message.id, unit) Hashtbl.t;
      (* declared undeliverable: no further resubmissions *)
  submit_timers : (Message.id, unit) Hashtbl.t;
      (* messages with an armed submit-driver timer: at most one each *)
  in_work : (Message.id, int ref) Hashtbl.t;
      (* copies sitting in a service queue between wire receipt and
         phase execution — the window where a message is owned by
         neither a pending nor a timer (see [compact]) *)
  ledger : Ledger.t option;
  service_rng : Dsim.Rng.t;
  queues : (Netsim.Graph.node, srv_queue) Hashtbl.t;
  queue_waits : Dsim.Stats.Summary.t;
  queue_wait_hist : Telemetry.Registry.histogram option;
  tracer : Telemetry.Tracer.t option;
  submit_spans : (Message.id, unit) Hashtbl.t;
      (* messages whose "submit" span was already emitted *)
  hop_sends : (int, string * Netsim.Graph.node * float) Hashtbl.t;
      (* in-flight Forward/Deposit hops: span name, source, send time *)
  fences : (Message.id, float) Hashtbl.t;
      (* per id, the latest scheduled arrival time of any in-flight
         wire message carrying the full Message.t.  Until that time
         the id must not be compacted: a late Submit/Forward/Deposit/
         Replicate arriving after the dedup state (completed rounds,
         the replica group's retrieved set, the agents' seen sets) was
         pruned would re-open deposit machinery and resurrect an
         already-retrieved message as a fresh copy — a duplicate. *)
}

let net t = t.net

(* Pack a (node, message-id) pair into one int: ids are dense and
   [node < n], so [id * n + node] is collision-free and the dedup
   tables hash an immediate instead of a boxed tuple. *)
let nkey t node id = (id * t.n) + node
let id_of_nkey t k = k / t.n

(* The message's interned recipient id, resolved through the system at
   most once and cached on the message itself. *)
let ruid t (msg : Message.t) =
  let u = msg.Message.recipient_uid in
  if u >= 0 then u
  else begin
    let u = t.callbacks.uid_of msg.Message.recipient in
    msg.Message.recipient_uid <- u;
    u
  end

let queue_wait_stats t = t.queue_waits

let srv_queue t node =
  match Hashtbl.find_opt t.queues node with
  | Some q -> q
  | None ->
      let q = { busy = false; jobs = Queue.create (); busy_total = 0.; served = 0 } in
      Hashtbl.replace t.queues node q;
      q

let server_utilisation t node =
  match Hashtbl.find_opt t.queues node with
  | None -> 0.
  | Some q ->
      let elapsed = Dsim.Engine.now t.engine in
      if elapsed <= 0. then 0. else q.busy_total /. elapsed

let node_label t node = Netsim.Graph.label (Netsim.Net.graph t.net) node

(* Emit a span into [msg]'s trace as a child of its root span — a
   no-op when tracing is off or the message never went through
   [submit] (so has no root to hang off). *)
let emit_span t msg ~name ~start ~finish attrs =
  match (t.tracer, Message.span msg) with
  | Some tracer, Some root ->
      ignore
        (Telemetry.Tracer.span tracer ~parent:root ~attrs ~finish ~name ~start ())
  | _ -> ()

(* Run [work] through the node's FIFO service queue (or immediately
   when the service model is off). *)
let through_queue t node ?msg work =
  let queue_wait_span m ~arrived ~started =
    emit_span t m ~name:"queue_wait" ~start:arrived ~finish:started
      [ ("server", node_label t node) ]
  in
  match t.config.service_rate with
  | None ->
      (* Service is free, but a zero-length wait span keeps trace
         trees the same shape with or without the service model. *)
      let at = Dsim.Engine.now t.engine in
      Option.iter (fun m -> queue_wait_span m ~arrived:at ~started:at) msg;
      work ()
  | Some rate ->
      let q = srv_queue t node in
      Queue.add (Dsim.Engine.now t.engine, msg, work) q.jobs;
      let rec serve_next () =
        match Queue.take_opt q.jobs with
        | None -> q.busy <- false
        | Some (arrived, m, job) ->
            q.busy <- true;
            let started = Dsim.Engine.now t.engine in
            let wait = started -. arrived in
            Dsim.Stats.Summary.add t.queue_waits wait;
            Option.iter (fun h -> Telemetry.Registry.observe h wait) t.queue_wait_hist;
            Option.iter (fun m -> queue_wait_span m ~arrived ~started) m;
            let service = Dsim.Rng.exponential t.service_rng rate in
            q.busy_total <- q.busy_total +. service;
            ignore
              (Dsim.Engine.schedule_after_cat t.engine t.cat_service service
                 (fun () ->
                   job ();
                   q.served <- q.served + 1;
                   serve_next ()))
      in
      if not q.busy then serve_next ()

let count ?by t key = Dsim.Stats.Counter.incr ?by t.counters key

let now t = Dsim.Engine.now t.engine

let log t fmt = Dsim.Trace.infof t.trace ~time:(now t) ~category:"pipeline" fmt

let first_active t nodes = List.find_opt (fun s -> Netsim.Net.is_up t.net s) nodes

let is_dead t id = Hashtbl.mem t.dead id

(* Send a wire message that carries the full Message.t (Submit,
   Forward, Deposit, Replicate) and fence its id against compaction
   until the scheduled arrival has passed — see the [fences] field. *)
let send_fenced ?bytes t ~src ~dst wire (id : Message.id) =
  match Netsim.Net.send_timed ?bytes t.net ~src ~dst wire with
  | None -> false
  | Some latency ->
      let until = now t +. latency in
      (match Hashtbl.find_opt t.fences id with
      | Some f when f >= until -> ()
      | _ -> Hashtbl.replace t.fences id until);
      true

(* Remember an in-flight server→server hop so the receiving node can
   close the transit span; each (destination, message) keeps only the
   latest send — a retry supersedes the lost original. *)
let record_hop t msg ~name ~src ~dst =
  if Option.is_some t.tracer && Option.is_some (Message.span msg) then
    Hashtbl.replace t.hop_sends (nkey t dst msg.Message.id) (name, src, now t)

let emit_hop t node ~time m =
  match Hashtbl.find_opt t.hop_sends (nkey t node m.Message.id) with
  | Some (name, src, sent) ->
      Hashtbl.remove t.hop_sends (nkey t node m.Message.id);
      emit_span t m ~name ~start:sent ~finish:time
        [ ("src", node_label t src); ("dst", node_label t node) ]
  | None -> ()

let declare_dead t msg ~reason =
  if not (Hashtbl.mem t.dead msg.Message.id) then begin
    Hashtbl.replace t.dead msg.Message.id ();
    (match Message.span msg with
    | Some root ->
        Telemetry.Span.set_attr root "outcome" reason;
        Telemetry.Span.finish root ~at:(now t)
    | None -> ());
    Option.iter (fun l -> Ledger.record_undeliverable l msg ~reason ~at:(now t)) t.ledger;
    t.callbacks.on_undeliverable msg ~reason
  end

let arm_retry t (p : pending) step =
  (* One handler closure per pending, allocated here and reused by
     every re-arm: the steady-state retry tick — the dominant timer
     kind under faults — schedules into the event arena without
     boxing a fresh closure per round. *)
  let rec handler () =
    if not p.acked then
      if not (Netsim.Net.is_up t.net p.holder) then
        (* Pending state survives holder crashes — queued mail is
           on disk — so a down holder must not burn the retry
           budget toward "retries exhausted": just wait for the
           holder to come back. *)
        fire ()
      else if p.attempts < t.config.max_retries then begin
        p.attempts <- p.attempts + 1;
        incr t.cells.c_retries;
        step ();
        fire ()
      end
      else begin
        count t "gave_up";
        Hashtbl.remove t.pendings (nkey t p.holder p.p_msg.Message.id);
        declare_dead t p.p_msg ~reason:"retries exhausted"
      end
  and fire () =
    ignore
      (Dsim.Engine.schedule_after_cat t.engine t.cat_retry t.config.retry_timeout
         handler)
  in
  fire ()

let pending_for t ~holder msg step =
  let key = nkey t holder msg.Message.id in
  match Hashtbl.find_opt t.pendings key with
  | Some p -> p.acked <- false
  | None ->
      let p = { p_msg = msg; holder; attempts = 0; acked = false } in
      Hashtbl.replace t.pendings key p;
      arm_retry t p step

let ack_pending t ~holder id =
  match Hashtbl.find_opt t.pendings (nkey t holder id) with
  | Some p ->
      p.acked <- true;
      Hashtbl.remove t.pendings (nkey t holder id)
  | None -> ()

(* Acknowledge one deposit upstream: clear the coordinator's own
   pending (local path) or send a wire Ack to the server that pushed
   the Deposit. *)
let ack_upstream t ~on ~upstream id =
  match upstream with
  | Local -> ack_pending t ~holder:on id
  | Remote src -> ignore (Netsim.Net.send t.net ~src:on ~dst:src (Ack id))

let send_replicates t (r : round) =
  List.iter
    (fun node ->
      if
        node <> r.coordinator
        && (not (List.mem node r.stored))
        && Netsim.Net.is_up t.net node
      then begin
        incr t.cells.c_replicate_sends;
        ignore
          (send_fenced ~bytes:(Message.size_bytes r.r_msg) t ~src:r.coordinator
             ~dst:node (Replicate r.r_msg) r.r_msg.Message.id)
      end)
    r.chain

let finish_round t (r : round) ~degraded =
  if not r.finished then begin
    r.finished <- true;
    let id = r.r_msg.Message.id in
    Hashtbl.remove t.rounds (nkey t r.coordinator id);
    Hashtbl.replace t.completed (nkey t r.coordinator id) ();
    let ack = if degraded then Degraded else Quorum in
    incr (if degraded then t.cells.c_degraded_acks else t.cells.c_quorum_acks);
    Option.iter (fun l -> Ledger.record_ack l r.r_msg ~degraded ~at:(now t)) t.ledger;
    emit_span t r.r_msg ~name:"deposit.replicate" ~start:r.started ~finish:(now t)
      [
        ("server", node_label t r.coordinator);
        ("ack", ack_to_string ack);
        ("copies", string_of_int (List.length r.stored));
        ("chain", string_of_int (List.length r.chain));
      ];
    t.callbacks.on_deposit r.r_msg ~on:r.coordinator ~ack;
    (match t.callbacks.notify_target_uid (ruid t r.r_msg) with
    | Some host ->
        ignore
          (Netsim.Net.send t.net ~src:r.coordinator ~dst:host
             (Notify (r.r_msg.Message.recipient, id)))
    | None -> ());
    List.iter (fun up -> ack_upstream t ~on:r.coordinator ~upstream:up id) r.upstreams
  end

let arm_round_timer t (r : round) =
  (* Like [arm_retry]: one reusable handler per replication round. *)
  let rec handler () =
    if not r.finished then
      if r.rounds_left <= 0 then finish_round t r ~degraded:true
      else begin
        r.rounds_left <- r.rounds_left - 1;
        send_replicates t r;
        fire ()
      end
  and fire () =
    ignore
      (Dsim.Engine.schedule_after_cat t.engine t.cat_replicate
         t.config.replicate_timeout handler)
  in
  fire ()

(* Quorum deposit (the tentpole): the coordinator — the first active
   server of the recipient's chain — writes its local copy, then the
   upstream acknowledgement is withheld until a write quorum of the
   chain holds the copy, or the bounded replicate-round budget runs
   out (degraded ack: at least the coordinator's copy is on disk, so
   mail is never lost, only under-replicated). *)
let do_deposit t ~on ~upstream msg =
  let key = nkey t on msg.Message.id in
  if Hashtbl.mem t.completed key then ack_upstream t ~on ~upstream msg.Message.id
  else
    match Hashtbl.find_opt t.rounds key with
    | Some r ->
        if not (List.mem upstream r.upstreams) then
          r.upstreams <- upstream :: r.upstreams
    | None ->
        let cuid = t.callbacks.canonical_uid (ruid t msg) in
        let chain = t.callbacks.authority_of_uid cuid in
        let chain = if List.mem on chain then chain else on :: chain in
        (match Replica_group.write t.storage ~on msg ~at:(now t) with
        | Replica_group.Stored ->
            incr t.cells.c_deposits;
            emit_span t msg ~name:"deposit" ~start:(now t) ~finish:(now t)
              [ ("server", node_label t on) ]
        | Replica_group.Duplicate | Replica_group.Superseded -> ());
        let r =
          {
            r_msg = msg;
            coordinator = on;
            chain;
            needed = Replica_group.quorum_of chain;
            stored = [ on ];
            upstreams = [ upstream ];
            rounds_left = t.config.max_replicate_rounds;
            started = now t;
            finished = false;
          }
        in
        Hashtbl.replace t.rounds key r;
        if List.length r.stored >= r.needed then finish_round t r ~degraded:false
        else begin
          send_replicates t r;
          arm_round_timer t r
        end

(* Phase 3 (§3.1.2c): deposit into the first active server of a given
   authority list. *)
let rec deposit_with t ~at_server msg authority =
  match first_active t authority with
  | None ->
      count t "deposit_stalled";
      count t "replica_unavailable_acks";
      pending_for t ~holder:at_server msg (fun () -> deposit_phase t ~at_server msg)
  | Some target when target = at_server ->
      pending_for t ~holder:at_server msg (fun () -> deposit_phase t ~at_server msg);
      do_deposit t ~on:at_server ~upstream:Local msg
  | Some target ->
      pending_for t ~holder:at_server msg (fun () -> deposit_phase t ~at_server msg);
      msg.Message.forward_hops <- msg.Message.forward_hops + 1;
      record_hop t msg ~name:"deposit.hop" ~src:at_server ~dst:target;
      ignore
        (send_fenced ~bytes:(Message.size_bytes msg) t ~src:at_server ~dst:target
           (Deposit msg) msg.Message.id)

and deposit_phase t ~at_server msg =
  let uid = ruid t msg in
  let cuid = t.callbacks.canonical_uid uid in
  if cuid <> uid then begin
    let old_name = msg.Message.recipient in
    msg.Message.recipient <- t.callbacks.name_of_uid cuid;
    msg.Message.recipient_uid <- cuid;
    t.callbacks.on_redirected msg ~old_name
  end;
  deposit_with t ~at_server msg (t.callbacks.authority_of_uid cuid)

(* Phase 2 (§3.1.2b): resolution and forwarding toward the
   recipient's region, short-circuited by the resolution cache. *)
let rec resolve_phase t ~at_server msg =
  let cuid = t.callbacks.canonical_uid (ruid t msg) in
  let recipient =
    if cuid = msg.Message.recipient_uid then msg.Message.recipient
    else t.callbacks.name_of_uid cuid
  in
  if
    String.equal (Naming.Name.region recipient)
      (Replica_group.region t.storage at_server)
  then
    deposit_phase t ~at_server msg
  else begin
    match t.callbacks.cached_authority ~at:at_server recipient with
    | Some authority when List.exists (fun s -> Netsim.Net.is_up t.net s) authority ->
        (* A cached resolution lets this server deposit directly,
           skipping the forwarding hop.  Retries re-enter
           [resolve_phase], so a stale entry degrades to a forward. *)
        incr t.cells.c_cache_hits;
        (match first_active t authority with
        | Some target when target <> at_server ->
            pending_for t ~holder:at_server msg (fun () ->
                resolve_phase t ~at_server msg);
            msg.Message.forward_hops <- msg.Message.forward_hops + 1;
            record_hop t msg ~name:"deposit.hop" ~src:at_server ~dst:target;
            ignore
              (send_fenced ~bytes:(Message.size_bytes msg) t ~src:at_server
                 ~dst:target (Deposit msg) msg.Message.id)
        | Some target ->
            ignore target;
            pending_for t ~holder:at_server msg (fun () ->
                resolve_phase t ~at_server msg);
            do_deposit t ~on:at_server ~upstream:Local msg
        | None -> assert false)
    | _ -> (
        let target_region = Naming.Name.region recipient in
        match t.callbacks.region_servers target_region with
        | [] ->
            count t "unresolvable";
            log t "cannot resolve %s: unknown region %s"
              (Naming.Name.to_string recipient)
              target_region;
            declare_dead t msg ~reason:"unknown region"
        | nodes -> (
            match first_active t nodes with
            | None ->
                count t "forward_stalled";
                pending_for t ~holder:at_server msg (fun () ->
                    resolve_phase t ~at_server msg)
            | Some target ->
                t.callbacks.on_forward_resolved ~at:at_server recipient
                  (t.callbacks.authority_of_uid cuid);
                pending_for t ~holder:at_server msg (fun () ->
                    resolve_phase t ~at_server msg);
                msg.Message.forward_hops <- msg.Message.forward_hops + 1;
                record_hop t msg ~name:"forward.hop" ~src:at_server ~dst:target;
                ignore
                  (send_fenced ~bytes:(Message.size_bytes msg) t ~src:at_server
                     ~dst:target (Forward msg) msg.Message.id)))
  end

(* A copy parked in a service queue is owned by neither a pending nor
   a timer; track it so [compact] never prunes dedup state out from
   under it. *)
let begin_work t (m : Message.t) =
  match Hashtbl.find_opt t.in_work m.Message.id with
  | Some r -> incr r
  | None -> Hashtbl.replace t.in_work m.Message.id (ref 1)

let end_work t (m : Message.t) =
  match Hashtbl.find_opt t.in_work m.Message.id with
  | Some r ->
      decr r;
      if !r <= 0 then Hashtbl.remove t.in_work m.Message.id
  | None -> ()

let handle_wire t node ~time ~src msg =
  match msg with
  | Submit m ->
      incr t.cells.c_submits_received;
      if not (Hashtbl.mem t.submit_spans m.Message.id) then begin
        Hashtbl.replace t.submit_spans m.Message.id ();
        (* Connection setup: submission at the sender's host until the
           first server accepts the message. *)
        emit_span t m ~name:"submit" ~start:m.Message.submitted_at ~finish:time
          [ ("server", node_label t node) ]
      end;
      begin_work t m;
      through_queue t node ~msg:m (fun () ->
          end_work t m;
          resolve_phase t ~at_server:node m)
  | Forward m ->
      ignore (Netsim.Net.send t.net ~src:node ~dst:src (Ack m.Message.id));
      emit_hop t node ~time m;
      begin_work t m;
      through_queue t node ~msg:m (fun () ->
          end_work t m;
          deposit_phase t ~at_server:node m)
  | Deposit m ->
      (* No immediate ack: the upstream's pending is cleared only once
         this coordinator's replication round reaches quorum (or
         degrades) — [finish_round] sends the Ack. *)
      emit_hop t node ~time m;
      begin_work t m;
      through_queue t node ~msg:m (fun () ->
          end_work t m;
          do_deposit t ~on:node ~upstream:(Remote src) m)
  | Replicate m ->
      (* A replica write from a coordinator.  Always confirm — a
         Duplicate or Superseded copy still means this node (or the
         delivery invariant) already accounts for the id, which is all
         the quorum needs to know. *)
      (match Replica_group.write t.storage ~on:node m ~at:time with
      | Replica_group.Stored | Replica_group.Duplicate | Replica_group.Superseded
        ->
          ());
      ignore (Netsim.Net.send t.net ~src:node ~dst:src (Replicated m.Message.id))
  | Replicated id -> (
      match Hashtbl.find_opt t.rounds (nkey t node id) with
      | Some r when not r.finished ->
          if not (List.mem src r.stored) then begin
            r.stored <- src :: r.stored;
            if List.length r.stored >= r.needed then finish_round t r ~degraded:false
          end
      | _ -> ())
  | Ack id -> ack_pending t ~holder:node id
  | Notify _ -> incr t.cells.c_notifications
  | Ctrl c -> t.callbacks.on_ctrl node ~time ~src c

(* Connection setup (§3.1.2a): try servers in the agent's order;
   resubmission is the end-to-end safety net.  Exactly one driver
   timer is armed per undeposited message — [try_submit] used to arm
   both a deferral and a resubmission timer on every invocation, so
   each round doubled the live timers (and the submit counters with
   them) for the whole length of an outage. *)
let rec try_submit t msg sender_agent =
  if (not (Message.is_deposited msg)) && not (is_dead t msg.Message.id) then begin
    let rec attempt = function
      | [] ->
          (* No server reachable right now: defer the whole attempt. *)
          incr t.cells.c_submit_deferred;
          arm_submit_timer t msg sender_agent ~delay:t.config.retry_timeout
            ~resubmission:false
      | s :: rest ->
          incr t.cells.c_submit_attempts;
          if
            Netsim.Net.is_up t.net s
            && send_fenced ~bytes:(Message.size_bytes msg) t
                 ~src:(User_agent.host sender_agent) ~dst:s (Submit msg)
                 msg.Message.id
          then
            (* Accepted for transmission: arm the end-to-end safety
               net in case the submission is lost downstream. *)
            arm_submit_timer t msg sender_agent ~delay:t.config.resubmit_timeout
              ~resubmission:true
          else begin
            (* Server down, or unreachable through downed relays. *)
            incr t.cells.c_submit_attempt_failures;
            attempt rest
          end
    in
    attempt (t.callbacks.submit_servers sender_agent)
  end

and arm_submit_timer t msg sender_agent ~delay ~resubmission =
  let id = msg.Message.id in
  if not (Hashtbl.mem t.submit_timers id) then begin
    Hashtbl.replace t.submit_timers id ();
    let category = if resubmission then t.cat_resubmit else t.cat_submit in
    ignore
      (Dsim.Engine.schedule_after_cat t.engine category delay (fun () ->
           Hashtbl.remove t.submit_timers id;
           if (not (Message.is_deposited msg)) && not (is_dead t id) then begin
             if resubmission then incr t.cells.c_resubmissions;
             try_submit t msg sender_agent
           end))
  end

let submit t ~sender_agent ~msg =
  (match t.tracer with
  | Some tracer
    when Message.span msg = None
         && (t.config.span_sample <= 1
            || msg.Message.id mod t.config.span_sample = 0) ->
      Message.set_span msg
        (Telemetry.Tracer.span tracer ~name:"message"
           ~start:msg.Message.submitted_at
           ~attrs:
             [
               ("id", string_of_int msg.Message.id);
               ("sender", Naming.Name.to_string msg.Message.sender);
               ("recipient", Naming.Name.to_string msg.Message.recipient);
             ]
           ())
  | _ -> ());
  incr t.cells.c_submitted;
  ignore (ruid t msg);
  Option.iter (fun l -> Ledger.record_submit l msg ~at:(now t)) t.ledger;
  try_submit t msg sender_agent

let pending_count t = Hashtbl.length t.pendings

(* Health gauges the per-window monitors read: transfers still awaiting
   acknowledgement, plus service-queue backlog (waiting jobs and, when
   a server is mid-service, the job in flight). *)
let publish_gauges t reg =
  let depth, deepest =
    (* lint: allow unsorted-fold — sum and max are order-independent *)
    Hashtbl.fold
      (fun _ q (sum, worst) ->
        let d = Queue.length q.jobs + if q.busy then 1 else 0 in
        (sum + d, max worst d))
      t.queues (0, 0)
  in
  let set name v =
    Telemetry.Registry.set_gauge (Telemetry.Registry.gauge reg name) v
  in
  set "pipeline_pending" (float_of_int (Hashtbl.length t.pendings));
  set "queue_depth" (float_of_int depth);
  set "queue_depth_max" (float_of_int deepest)

let dedup_entries t =
  Hashtbl.length t.completed + Hashtbl.length t.dead
  + Hashtbl.length t.submit_spans + Hashtbl.length t.hop_sends

let prunable t ~ledger =
  (* Ids still referenced by live pipeline machinery: a pending
     transfer, a parked service-queue copy, an armed submit timer, an
     open replication round, or a message-bearing wire send that has
     not reached its scheduled arrival yet can all produce further
     events for the id. *)
  let live = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace live (id_of_nkey t k) ()) t.pendings;
  Hashtbl.iter (fun id _ -> Hashtbl.replace live id ()) t.in_work;
  Hashtbl.iter (fun id _ -> Hashtbl.replace live id ()) t.submit_timers;
  Hashtbl.iter (fun k _ -> Hashtbl.replace live (id_of_nkey t k) ()) t.rounds;
  let horizon = now t in
  Hashtbl.iter
    (fun id until -> if until >= horizon then Hashtbl.replace live id ())
    t.fences;
  fun id -> (not (Hashtbl.mem live id)) && Ledger.settled ledger id

let compact t keep_out =
  let dropped = ref 0 in
  (* Expired fences are dead weight regardless of the ledger verdict:
     the send they covered has landed (or vanished) by now. *)
  let horizon = now t in
  let expired =
    (* lint: allow unsorted-fold — collects ids only; sorted before removal *)
    Hashtbl.fold
      (fun id until acc -> if until < horizon then id :: acc else acc)
      t.fences []
    |> List.sort Int.compare
  in
  List.iter (Hashtbl.remove t.fences) expired;
  let prune tbl id_of =
    let doomed =
      (* lint: allow unsorted-fold — pure removal set over heterogeneous key types; deletion order cannot reach any observable state *)
      Hashtbl.fold (fun k _ acc -> if keep_out (id_of k) then k :: acc else acc) tbl []
    in
    List.iter
      (fun k ->
        Hashtbl.remove tbl k;
        incr dropped)
      doomed
  in
  prune t.completed (id_of_nkey t);
  prune t.dead Fun.id;
  prune t.submit_spans Fun.id;
  prune t.hop_sends (id_of_nkey t);
  !dropped

let create ~engine ~graph ~trace ~counters ?metrics ?tracer ?bandwidth ?loss_rate
    ?ledger ?route_anchors ~storage config callbacks =
  let net = Netsim.Net.create ~engine ~trace ?bandwidth ?loss_rate graph in
  Option.iter (Netsim.Net.set_route_anchors net) route_anchors;
  (* Registered eagerly (even when the service model is off) so every
     design's registry exposes the same metric names. *)
  let queue_wait_hist =
    Option.map
      (fun reg ->
        Telemetry.Registry.histogram ~lo:0. ~hi:100. ~buckets:40 reg "queue_wait")
      metrics
  in
  let cells =
    let cell = Dsim.Stats.Counter.cell counters in
    {
      c_submitted = cell "submitted";
      c_submits_received = cell "submits_received";
      c_submit_attempts = cell "submit_attempts";
      c_submit_attempt_failures = cell "submit_attempt_failures";
      c_submit_deferred = cell "submit_deferred";
      c_resubmissions = cell "resubmissions";
      c_retries = cell "retries";
      c_deposits = cell "deposits";
      c_replicate_sends = cell "replica_replicate_sends";
      c_quorum_acks = cell "replica_quorum_acks";
      c_degraded_acks = cell "replica_degraded_acks";
      c_cache_hits = cell "resolution_cache_hits";
      c_notifications = cell "notifications";
    }
  in
  let t =
    {
      config;
      engine;
      net;
      storage;
      callbacks;
      counters;
      cells;
      cat_retry = Dsim.Engine.category engine "pipeline.retry";
      cat_replicate = Dsim.Engine.category engine "pipeline.replicate";
      cat_submit = Dsim.Engine.category engine "pipeline.submit";
      cat_resubmit = Dsim.Engine.category engine "pipeline.resubmit";
      cat_service = Dsim.Engine.category engine "pipeline.service";
      trace;
      n = Netsim.Graph.node_count graph;
      pendings = Hashtbl.create 64;
      rounds = Hashtbl.create 64;
      completed = Hashtbl.create 64;
      dead = Hashtbl.create 16;
      submit_timers = Hashtbl.create 64;
      in_work = Hashtbl.create 64;
      ledger;
      service_rng = Dsim.Rng.create config.service_seed;
      queues = Hashtbl.create 16;
      queue_waits = Dsim.Stats.Summary.create ();
      queue_wait_hist;
      tracer;
      submit_spans = Hashtbl.create 64;
      hop_sends = Hashtbl.create 64;
      fences = Hashtbl.create 64;
    }
  in
  List.iter
    (fun node -> Netsim.Net.set_handler net node (handle_wire t node))
    (Netsim.Graph.nodes graph);
  t
