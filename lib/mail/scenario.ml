type retrieval_mode = Get_mail | Poll_all | Naive

type spec = {
  seed : int;
  duration : float;
  mail_count : int;
  check_period : float;
  failure_rate : float;
  mean_outage : float;
  sender_skew : float;
  retrieval : retrieval_mode;
  faults : Netsim.Fault.campaign option;
  sampling : float option;
  monitors : Telemetry.Monitor.rule list;
}

let default_spec =
  {
    seed = 1;
    duration = 5000.;
    mail_count = 300;
    check_period = 100.;
    failure_rate = 0.;
    mean_outage = 150.;
    sender_skew = 0.9;
    retrieval = Get_mail;
    faults = None;
    sampling = None;
    monitors = [];
  }

type outcome = {
  report : Evaluation.report;
  availability : float;
  server_uptime : float;
  replication_factor : int;
  final_polls_per_check : float;
  inbox_total : int;
  ledger : Ledger.verdict;
  engine_events : int;
  metrics : Telemetry.Registry.t;
  tracer : Telemetry.Tracer.t;
  events : Dsim.Trace.t;
  timeseries : Telemetry.Timeseries.t option;
  monitor : Telemetry.Monitor.t option;
}

let pick_pair rng users =
  let n = Array.length users in
  let s = Dsim.Rng.int rng n in
  let rec other () =
    let r = Dsim.Rng.int rng n in
    if r = s then other () else r
  in
  (users.(s), users.(other ()))

(* Zipf-weighted sender, uniform distinct recipient. *)
let pick_pair_skewed rng users skew =
  let n = Array.length users in
  if skew <= 0. then pick_pair rng users
  else begin
    let s = Dsim.Rng.zipf rng ~n ~s:skew - 1 in
    let rec other () =
      let r = Dsim.Rng.int rng n in
      if r = s then other () else r
    in
    (users.(s), users.(other ()))
  end

let check_with ?tracer ?ledger mode view sys_agent now =
  match mode with
  | Get_mail -> User_agent.get_mail ?tracer ?ledger sys_agent ~view ~now
  | Poll_all -> User_agent.poll_all ?tracer ?ledger sys_agent ~view ~now
  | Naive -> User_agent.naive_check ?tracer ?ledger sys_agent ~view ~now

let record_check counters (stats : User_agent.check_stats) =
  Dsim.Stats.Counter.incr counters "checks";
  Dsim.Stats.Counter.incr ~by:stats.User_agent.polls counters "polls";
  Dsim.Stats.Counter.incr ~by:stats.User_agent.failed_polls counters "failed_polls";
  Dsim.Stats.Counter.incr ~by:stats.User_agent.retrieved counters "retrieved"

(* The one driver body, shared by all designs through System.S.  Only
   [on_check_tick] (design 2/3 roaming) is design-specific. *)
let drive (type s) ?(on_check_tick = fun ~rng:_ _ -> ())
    (module M : System.S with type t = s) (sys : s) spec =
  let rng = Dsim.Rng.create spec.seed in
  let traffic_rng = Dsim.Rng.split rng in
  let failure_rng = Dsim.Rng.split rng in
  let roam_rng = Dsim.Rng.split rng in
  let engine = M.engine sys in
  let users = M.users sys in
  let users_arr = Array.of_list users in
  let check name =
    let stats =
      check_with ~tracer:(M.tracer sys) ~ledger:(M.ledger sys) spec.retrieval
        (M.view sys) (M.agent sys name) (M.now sys)
    in
    record_check (M.counters sys) stats;
    stats
  in
  (* Mail injection at uniform times. *)
  let send_times =
    Queueing.Workload.uniform_arrivals ~rng:traffic_rng ~count:spec.mail_count
      ~horizon:spec.duration
  in
  List.iter
    (fun at ->
      let sender, recipient = pick_pair_skewed traffic_rng users_arr spec.sender_skew in
      ignore (M.submit_at sys ~at ~sender ~recipient ()))
    send_times;
  (* Periodic checks, phase-shifted per user. *)
  Array.iteri
    (fun i name ->
      let phase =
        spec.check_period *. float_of_int (i + 1) /. float_of_int (Array.length users_arr + 1)
      in
      let rec arm at =
        if at < spec.duration then
          ignore
            (Dsim.Engine.schedule_at ~category:"scenario.check" engine at (fun () ->
                 on_check_tick ~rng:roam_rng name;
                 ignore (check name);
                 arm (at +. spec.check_period)))
      in
      arm phase)
    users_arr;
  (* Failure injection on servers. *)
  let outages =
    Netsim.Failure.random_outages ~rng:failure_rng ~nodes:(M.server_nodes sys)
      ~rate:spec.failure_rate ~mean_duration:spec.mean_outage ~horizon:spec.duration
  in
  Netsim.Failure.schedule_outages (M.net sys) outages;
  (* Fault campaign, if any: compiled deterministically from the
     campaign's own seed (salted with the run seed) and armed on the
     network; every effective status flip is tallied by fault kind. *)
  let fault_schedule =
    match spec.faults with
    | None -> None
    | Some campaign ->
        let sched =
          Netsim.Fault.compile ~salt:spec.seed ~graph:(M.graph sys)
            ~servers:(M.server_nodes sys) ~horizon:spec.duration campaign
        in
        let counters = M.counters sys in
        Netsim.Fault.apply
          ~on_event:(fun ~time:_ w status ->
            if not status then
              Dsim.Stats.Counter.incr counters ("fault_" ^ w.Netsim.Fault.kind))
          (M.net sys) sched;
        Some sched
  in
  (* Periodic compaction keeps dedup/bookkeeping tables bounded on
     long runs; it only touches state the ledger proved settled. *)
  let compact_period = 5. *. spec.check_period in
  let rec arm_compact at =
    if at < spec.duration then
      ignore
        (Dsim.Engine.schedule_at ~category:"scenario.compact" engine at (fun () ->
             ignore (M.compact sys);
             arm_compact (at +. compact_period)))
  in
  arm_compact compact_period;
  (* Observability: a periodic virtual-time sampling event refreshes
     the registry (snapshot_metrics is idempotent), appends a
     timeseries window and evaluates the monitor rules against it.
     Alerts land in the engine trace (level Warn, category "monitor")
     as well as in the alert_* counters the monitor registers. *)
  let observability =
    match spec.sampling with
    | None -> None
    | Some resolution ->
        let ts = Telemetry.Timeseries.create ~resolution () in
        let mon =
          Telemetry.Monitor.create ~registry:(M.metrics sys) spec.monitors
        in
        let sample () =
          System.snapshot_metrics (module M) sys;
          let at = M.now sys in
          ignore (Telemetry.Timeseries.sample ts ~at (M.metrics sys));
          List.iter
            (fun (a : Telemetry.Monitor.alert) ->
              Dsim.Trace.warnf (M.trace sys) ~time:at ~category:"monitor"
                "%s: %s" a.Telemetry.Monitor.a_rule
                a.Telemetry.Monitor.a_message)
            (Telemetry.Monitor.eval mon ~time:at (M.metrics sys))
        in
        Dsim.Engine.every ~category:"scenario.sample" engine ~period:resolution
          ~until:spec.duration sample;
        Some (ts, mon, sample)
  in
  (* Run, restore, drain, final checks. *)
  Dsim.Engine.run ~until:spec.duration engine;
  Option.iter (Netsim.Fault.heal (M.net sys)) fault_schedule;
  List.iter (fun n -> Netsim.Net.set_up (M.net sys) n) (M.server_nodes sys);
  M.quiesce sys;
  List.iter (fun name -> ignore (check name)) users;
  M.quiesce sys;
  ignore (M.compact sys);
  let report = Evaluation.of_system (module M) sys in
  let fault_outages =
    match fault_schedule with
    | None -> []
    | Some sched -> Netsim.Fault.node_outages sched
  in
  let all_outages = outages @ fault_outages in
  (* Raw infrastructure health: mean single-node uptime. *)
  let server_uptime =
    let nodes = M.server_nodes sys in
    if nodes = [] then 1.
    else
      List.fold_left
        (fun acc node ->
          acc
          +. Netsim.Failure.availability ~outages:all_outages ~node
               ~horizon:spec.duration)
        0. nodes
      /. float_of_int (List.length nodes)
  in
  (* Mailbox availability under replication: a user's mail is
     reachable whenever at least one chain member is up, so
     availability is the mean over users of their {e group}
     availability (memoised per distinct chain — many users share
     one). *)
  let availability, replication_factor =
    let memo = Hashtbl.create 16 in
    let group chain =
      match Hashtbl.find_opt memo chain with
      | Some a -> a
      | None ->
          let a =
            Netsim.Failure.group_availability ~outages:all_outages ~nodes:chain
              ~horizon:spec.duration
          in
          Hashtbl.replace memo chain a;
          a
    in
    match users with
    | [] -> (1., 0)
    | _ ->
        List.fold_left
          (fun (sum, repl) name ->
            let chain = M.authority_of sys name in
            (sum +. group chain, max repl (List.length chain)))
          (0., 0) users
        |> fun (sum, repl) -> (sum /. float_of_int (List.length users), repl)
  in
  (* Fault windows become spans so trace timelines show the outages
     next to the message lifecycles they disturbed. *)
  (match fault_schedule with
  | None -> ()
  | Some sched ->
      let tracer = M.tracer sys in
      let target_string = function
        | Netsim.Fault.Node v -> Printf.sprintf "node:%d" v
        | Netsim.Fault.Link (u, v) -> Printf.sprintf "link:%d-%d" u v
      in
      List.iter
        (fun (w : Netsim.Fault.window) ->
          ignore
            (Telemetry.Tracer.span tracer ~name:"fault" ~start:w.start
               ~finish:(w.start +. w.duration)
               ~attrs:[ ("kind", w.kind); ("target", target_string w.target) ]
               ()))
        sched.Netsim.Fault.windows);
  let ledger_verdict = Ledger.check (M.ledger sys) in
  let inbox_total =
    List.fold_left (fun acc name -> acc + User_agent.inbox_size (M.agent sys name)) 0 users
  in
  System.snapshot_metrics (module M) sys;
  let metrics = M.metrics sys in
  let set name v = Telemetry.Registry.set_gauge (Telemetry.Registry.gauge metrics name) v in
  set "availability" availability;
  set "server_uptime" server_uptime;
  set "replication_factor" (float_of_int replication_factor);
  set "inbox_total" (float_of_int inbox_total);
  set "polls_per_check" report.Evaluation.polls_per_check;
  set "trace_spans" (float_of_int (Telemetry.Tracer.total (M.tracer sys)));
  (* Set unconditionally so every design's registry carries the same
     metric names whether or not a campaign ran. *)
  set "ledger_ok" (if ledger_verdict.Ledger.ok then 1. else 0.);
  set "ledger_lost" (float_of_int ledger_verdict.Ledger.lost);
  set "ledger_duplicates" (float_of_int ledger_verdict.Ledger.duplicates);
  set "fault_windows"
    (float_of_int
       (match fault_schedule with
       | None -> 0
       | Some sched -> List.length sched.Netsim.Fault.windows));
  (* One final window after drain and the end-of-run gauges above, so
     the series always closes on the settled state (and a sampled run
     has at least one window even when duration < resolution). *)
  let timeseries, monitor =
    match observability with
    | None -> (None, None)
    | Some (ts, mon, sample) ->
        sample ();
        (Some ts, Some mon)
  in
  {
    report;
    availability;
    server_uptime;
    replication_factor;
    final_polls_per_check = report.Evaluation.polls_per_check;
    inbox_total;
    ledger = ledger_verdict;
    engine_events = Dsim.Engine.events_executed engine;
    metrics;
    tracer = M.tracer sys;
    events = M.trace sys;
    timeseries;
    monitor;
  }

(* Roaming hook shared by the location-based designs: before a check,
   the user logs in from a random host of their region. *)
let roaming_hook sys graph roam_probability =
  let hosts_by_region = Hashtbl.create 4 in
  List.iter
    (fun v ->
      if Netsim.Graph.kind graph v = Netsim.Graph.Host then begin
        let r = Netsim.Graph.region graph v in
        let cur =
          match Hashtbl.find_opt hosts_by_region r with Some l -> l | None -> []
        in
        Hashtbl.replace hosts_by_region r (v :: cur)
      end)
    (Netsim.Graph.nodes graph);
  fun ~rng name ->
    if Dsim.Rng.bernoulli rng roam_probability then begin
      match Hashtbl.find_opt hosts_by_region (Naming.Name.region name) with
      | Some (_ :: _ as hosts) ->
          let arr = Array.of_list hosts in
          ignore (Location_system.login sys name ~host:(Dsim.Rng.choice rng arr))
      | Some [] | None -> ()
    end

let run_syntax ?config site spec =
  let sys = Syntax_system.create ?config site in
  drive (module System.Syntax) sys spec

let run_location ?config ~roam_probability site spec =
  let sys = Location_system.create ?config site in
  let on_check_tick = roaming_hook sys (Location_system.graph sys) roam_probability in
  drive ~on_check_tick (module System.Location) sys spec

let run_attribute ?config ?(roam_probability = 0.) site spec =
  let sys = Attribute_system.create ?config site in
  let base = Attribute_system.base sys in
  let on_check_tick = roaming_hook base (Location_system.graph base) roam_probability in
  drive ~on_check_tick (module System.Attribute) sys spec

type estimate = { mean : float; stddev : float; runs : int }

let replicate ~runs run spec metric =
  if runs <= 0 then invalid_arg "Scenario.replicate: runs <= 0";
  let summary = Dsim.Stats.Summary.create () in
  for i = 0 to runs - 1 do
    let outcome = run { spec with seed = spec.seed + i } in
    Dsim.Stats.Summary.add summary (metric outcome)
  done;
  {
    mean = Dsim.Stats.Summary.mean summary;
    stddev = Dsim.Stats.Summary.stddev summary;
    runs;
  }
