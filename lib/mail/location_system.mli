(** Design 2: the mail system with limited location-independent access
    (§3.2).

    Names keep the ["region.host.user"] form, but the host token is
    only the user's {e primary} location: a user may connect from any
    host of their region.  Name resolution inside a region is
    host-independent — "a hash function is applied to the name to find
    out in which sub-group the name belongs" — so authority servers
    derive from the (region, user) hash group, not from the host.
    Servers of a region cooperatively track each user's current
    location: a login informs the nearest active server, which gossips
    the update to its regional peers ([Ctrl] traffic, counter
    ["location_updates"]); deposit-time alerts go to the user's
    {e current} host.

    Within a region users therefore move with {e no renaming and no
    server reassignment}; across regions the system falls back to the
    §3.1.4-style rename with redirection. *)

type t

type config = {
  replication : int;  (** authority servers per hash group. *)
  users_per_host : int;
  hash_groups : int;  (** sub-groups per region (the hash range). *)
  retry_timeout : float;
  resubmit_timeout : float;
  max_retries : int;
  mailbox_policy : Mailbox.policy;
  bandwidth : float option;  (** as in {!Syntax_system.config}. *)
  service_rate : float option;  (** as in {!Syntax_system.config}. *)
  loss_rate : float;  (** as in {!Syntax_system.config}. *)
  span_sample : int;  (** as in {!Syntax_system.config}. *)
}

val default_config : config
(** replication 3, 5 users/host, 8 hash groups, pipeline defaults,
    no bandwidth/service/loss modelling. *)

val create : ?config:config -> ?design_label:string -> Netsim.Topology.mail_site -> t
(** [design_label] (default ["location"]) is the [design] base label
    of the metrics registry — {!Attribute_system} passes
    ["attribute"] for the runs it drives through this base. *)

(** {1 Access} *)

type ctrl
(** Location-gossip control messages. *)

type wire = ctrl Pipeline.wire

val engine : t -> Dsim.Engine.t
val net : t -> wire Netsim.Net.t
val graph : t -> Netsim.Graph.t
val now : t -> float
val users : t -> Naming.Name.t list
val agent : t -> Naming.Name.t -> User_agent.t
val server_nodes : t -> Netsim.Graph.node list

val storage : t -> Replica_group.t
(** The replicated mailbox storage: every server node is a holder in
    this group and all mailbox access goes through it. *)

val space : t -> string -> Naming.Name_space.t option
val counters : t -> Dsim.Stats.Counter.t

val metrics : t -> Telemetry.Registry.t
(** The run's typed metric registry (base label
    [design=<design_label>]). *)

val tracer : t -> Telemetry.Tracer.t
(** The run's span collector (per-message lifecycle + retrieval
    rounds; see {!Pipeline.create} and {!User_agent.get_mail}). *)

val trace : t -> Dsim.Trace.t

val ledger : t -> Ledger.t
(** The run's delivery-invariant ledger (§3.1.2c); see
    {!Syntax_system.ledger}. *)

val submitted : t -> Message.t list

val authority_of : t -> Naming.Name.t -> Netsim.Graph.node list
(** The hash-group authority list — identical for all users of one
    group, independent of any host. *)

val current_location : t -> Naming.Name.t -> Netsim.Graph.node
(** Where the system believes the user is (primary host until the
    first login elsewhere). *)

val primary_host : t -> Naming.Name.t -> Netsim.Graph.node

(** {1 Operation} *)

val login : t -> Naming.Name.t -> host:Netsim.Graph.node -> User_agent.check_stats
(** Connect from [host] (must be in the user's region): informs the
    nearest active server, which records the location, gossips it to
    regional peers, and retrieves the user's pending mail on their
    behalf (§3.2.2c) — returned as the check stats.
    @raise Invalid_argument if [host] is outside the user's region. *)

val submit :
  t ->
  sender:Naming.Name.t ->
  recipient:Naming.Name.t ->
  ?subject:string ->
  ?body:string ->
  unit ->
  Message.t

val submit_at :
  t ->
  at:float ->
  sender:Naming.Name.t ->
  recipient:Naming.Name.t ->
  ?subject:string ->
  ?body:string ->
  unit ->
  Message.t

val check_mail : t -> Naming.Name.t -> User_agent.check_stats
val check_mail_at : t -> at:float -> Naming.Name.t -> unit
val view : t -> User_agent.server_view

val retrieval_cost_stats : t -> Dsim.Stats.Summary.t
(** §3.2.2c communication cost of retrievals: host ↔ nearest-server
    round trip plus the relay's round trips to the polled authority
    servers.  Grows when users roam far from their hash group —
    "remote access is usually slow and imposes large overhead"
    (§3.2.4). *)

val run_until : t -> float -> unit
val quiesce : ?step:float -> ?max_steps:int -> t -> unit

val compact : t -> int
(** Prune settled-message bookkeeping; see {!Syntax_system.compact}. *)

val publish_health : t -> unit
(** Publish pipeline and chain-health gauges; see
    {!Syntax_system.publish_health}. *)

(** {1 Reconfiguration and migration} *)

val rebalance_hash : t -> groups:int -> int
(** §3.2.3c: "reallocation of load can be done by changing the hashing
    functions" — switch every region to [groups] sub-groups and
    reassign authority lists.  Returns the number of users whose
    authority assignment changed. *)

val migrate_region :
  t -> Naming.Name.t -> new_host:Netsim.Graph.node -> Naming.Name.t
(** Cross-region move: rename + redirection, as in design 1 (§3.2.4
    "obtaining a new name for a user who plans to move for a long
    time").  @raise Invalid_argument if [new_host] is in the user's
    own region (use {!login} instead — that move is free). *)

val redirect_target : t -> Naming.Name.t -> Naming.Name.t option
