(** Mail messages and their lifecycle bookkeeping.

    A message is created when a user submits it, {e deposited} when an
    authority server stores it in the recipient's mailbox, and
    {e retrieved} when the recipient's user agent fetches it to the
    local host.  The structure records each transition's virtual time
    so experiments can compute delivery and retrieval latencies. *)

type id = int

type t = {
  id : id;
  sender : Naming.Name.t;
  mutable recipient : Naming.Name.t;
      (** rewritten in place when a redirection for a migrated user
          applies (§3.1.4). *)
  mutable recipient_uid : int;
      (** the recipient's interned id ({!Naming.Intern}) in the owning
          system, [-1] until resolved; rewritten together with
          [recipient] on redirect.  The hot pipeline keys dedup tables
          and authority-chain lookups on this int. *)
  subject : string;
  body : string;
  submitted_at : float;
  mutable deposited_at : float option;
      (** stored in some authority server's mailbox. *)
  mutable deposited_on : Netsim.Graph.node option;
  mutable retrieved_at : float option;
  mutable forward_hops : int;  (** server-to-server forwarding steps. *)
  parts : Content.part list;  (** typed attachments (§5): voice, image,
                                  facsimile parts ride along with the
                                  textual body. *)
  mutable span : Telemetry.Span.t option;
      (** root span of this message's trace, when a tracer is
          attached; lifecycle stages hang off it as children. *)
  mutable latency_observed : int;
      (** bitmask used by {!Mail.Replica_group} to observe each
          latency into the registry histograms exactly once, at the
          deposit / fetch that makes it known (bit 0 = delivery,
          bit 1 = end-to-end).  A latency never changes once set, so
          event-time observation equals a full rebuild from the
          message list — without the per-window rescan that would
          make timeseries sampling O(messages) per window. *)
}

val create :
  id:id ->
  sender:Naming.Name.t ->
  recipient:Naming.Name.t ->
  ?recipient_uid:int ->
  ?subject:string ->
  ?body:string ->
  ?parts:Content.part list ->
  submitted_at:float ->
  unit ->
  t

val mark_deposited : t -> at:float -> on:Netsim.Graph.node -> unit
(** First deposit wins; later calls are ignored (a retry may race a
    slow original). *)

val mark_retrieved : t -> at:float -> unit

val set_span : t -> Telemetry.Span.t -> unit
(** First span wins; a resubmission after a bounce keeps the original
    trace. *)

val span : t -> Telemetry.Span.t option

val is_deposited : t -> bool
val is_retrieved : t -> bool

val delivery_latency : t -> float option
(** Submission to deposit. *)

val end_to_end_latency : t -> float option
(** Submission to retrieval. *)

val size_bytes : t -> int
(** Wire size: envelope overhead + subject + body + attachment
    parts — what the network's bandwidth model serialises. *)

val pp : Format.formatter -> t -> unit
