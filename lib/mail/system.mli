(** The three designs behind one interface.

    {!S} (= {!System_intf.S}) is the shared surface; [Syntax],
    [Location] and [Attribute] are its instances, and {!t} packs an
    instance with a value of its type so heterogeneous code (drivers,
    report tables) can hold "some mail system" without a type
    parameter. *)

module type S = System_intf.S

module Syntax : S with type t = Syntax_system.t
module Location : S with type t = Location_system.t

module Attribute : S with type t = Attribute_system.t
(** Delegates mail operations to {!Attribute_system.base}; its metrics
    registry carries [design="attribute"]. *)

(** {1 Packed systems} *)

type t = Packed : (module S with type t = 'a) * 'a -> t

val pack_syntax : Syntax_system.t -> t
val pack_location : Location_system.t -> t
val pack_attribute : Attribute_system.t -> t

val design : t -> string
val metrics : t -> Telemetry.Registry.t

val tracer : t -> Telemetry.Tracer.t
(** The packed system's span collector (see {!System_intf.S.tracer}). *)

val counters : t -> Dsim.Stats.Counter.t
val now : t -> float
val users : t -> Naming.Name.t list
val submitted : t -> Message.t list

val ledger : t -> Ledger.t
(** The packed system's delivery-invariant ledger
    (see {!System_intf.S.ledger}). *)

val compact : t -> int
(** Prune settled-message bookkeeping (see {!System_intf.S.compact}). *)

(** {1 Metric snapshotting} *)

val core_counters : string list
(** The tallies every design promotes to first-class metrics (own
    name, no [event] label): checks, polls, failed_polls, retrieved,
    submitted, deposits, retries, resubmissions, notifications,
    redirects, migrations. *)

val snapshot_metrics : (module S with type t = 'a) -> 'a -> unit
(** Bring the system's registry up to date with the run so far:
    promote {!core_counters} (creating them at 0 when a design never
    fired one), route every other raw tally to
    [system_events{event=<key>}], rebuild the ["delivery_latency"] and
    ["end_to_end_latency"] histograms from the submitted messages,
    refresh the network/storage gauges ([messages_sent],
    [messages_delivered], [messages_dropped], [link_hops],
    [storage_bytes]), the route-cache counters
    ([route_tree_recompute], [route_cache_hit], [route_invalidation]),
    the instantaneous health gauges
    ({!System_intf.S.publish_health}: pipeline backlog and replica
    chain health), the [trace_dropped] span-loss counter and the
    engine profile.  Idempotent — safe to call repeatedly as a run
    progresses, which is exactly what the per-window timeseries
    sampler does. *)

val snapshot : t -> unit
(** {!snapshot_metrics} on a packed system. *)
