module type S = System_intf.S

module Syntax : S with type t = Syntax_system.t = struct
  include Syntax_system

  let design = "syntax"

  (* Optional arguments do not erase during signature inclusion, so the
     richer submit functions are shadowed with exact-arity wrappers. *)
  let submit t ~sender ~recipient () = Syntax_system.submit t ~sender ~recipient ()

  let submit_at t ~at ~sender ~recipient () =
    Syntax_system.submit_at t ~at ~sender ~recipient ()
end

module Location : S with type t = Location_system.t = struct
  include Location_system

  let design = "location"

  let submit t ~sender ~recipient () =
    Location_system.submit t ~sender ~recipient ()

  let submit_at t ~at ~sender ~recipient () =
    Location_system.submit_at t ~at ~sender ~recipient ()
end

module Attribute : S with type t = Attribute_system.t = struct
  type t = Attribute_system.t
  type wire = Location_system.wire

  let design = "attribute"
  let base = Attribute_system.base
  let engine t = Location_system.engine (base t)
  let net t = Location_system.net (base t)
  let graph t = Location_system.graph (base t)
  let now t = Location_system.now (base t)
  let users t = Location_system.users (base t)
  let agent t name = Location_system.agent (base t) name
  let server_nodes t = Location_system.server_nodes (base t)
  let storage t = Location_system.storage (base t)
  let authority_of t name = Location_system.authority_of (base t) name
  let counters t = Location_system.counters (base t)
  let metrics t = Attribute_system.metrics t
  let tracer t = Location_system.tracer (base t)
  let trace t = Location_system.trace (base t)
  let ledger t = Location_system.ledger (base t)
  let submitted t = Location_system.submitted (base t)
  let view t = Location_system.view (base t)

  let submit t ~sender ~recipient () =
    Location_system.submit (base t) ~sender ~recipient ()

  let submit_at t ~at ~sender ~recipient () =
    Location_system.submit_at (base t) ~at ~sender ~recipient ()

  let check_mail t name = Location_system.check_mail (base t) name
  let run_until t horizon = Location_system.run_until (base t) horizon
  let quiesce ?step ?max_steps t = Location_system.quiesce ?step ?max_steps (base t)
  let compact t = Location_system.compact (base t)

  (* Safe to delegate: the attribute registry IS the base registry
     (Attribute_system.metrics reads through [base]). *)
  let publish_health t = Location_system.publish_health (base t)
end

(* --- packing ------------------------------------------------------------ *)

type t = Packed : (module S with type t = 'a) * 'a -> t

let pack_syntax sys = Packed ((module Syntax), sys)
let pack_location sys = Packed ((module Location), sys)
let pack_attribute sys = Packed ((module Attribute), sys)

let design (Packed ((module M), _)) = M.design
let metrics (Packed ((module M), sys)) = M.metrics sys
let tracer (Packed ((module M), sys)) = M.tracer sys
let counters (Packed ((module M), sys)) = M.counters sys
let now (Packed ((module M), sys)) = M.now sys
let users (Packed ((module M), sys)) = M.users sys
let submitted (Packed ((module M), sys)) = M.submitted sys
let ledger (Packed ((module M), sys)) = M.ledger sys
let compact (Packed ((module M), sys)) = M.compact sys

(* --- metric snapshotting ------------------------------------------------ *)

let core_counters =
  [
    "checks";
    "polls";
    "failed_polls";
    "retrieved";
    "submitted";
    "deposits";
    "retries";
    "resubmissions";
    "notifications";
    "redirects";
    "migrations";
    "replica_copy_writes";
    "replica_replicate_sends";
    "replica_quorum_acks";
    "replica_degraded_acks";
    "replica_unavailable_acks";
    "replica_purges";
    "replica_resyncs";
    "replica_failovers";
  ]

let snapshot_metrics (type a) (module M : S with type t = a) (sys : a) =
  let reg = M.metrics sys in
  let counters = M.counters sys in
  (* Core tallies are promoted under their own metric names — and set
     unconditionally, so every design's registry exposes all of them
     even when a tally never fired. *)
  List.iter
    (fun k -> Telemetry.Registry.set_counter reg k (Dsim.Stats.Counter.get counters k))
    core_counters;
  (* Everything else is design-specific and routed through one shared
     metric name, labelled by event, to keep names comparable. *)
  Telemetry.Probe.sync_counters ~only:core_counters ~rest_as:"system_events" reg
    counters;
  (* The delivery / end-to-end latency histograms are fed at deposit
     and fetch time by the replica group ([Replica_group.create]'s
     [?metrics]: each latency observed exactly once, the moment it
     becomes known), so the snapshot has no per-message work to do —
     per-window timeseries sampling stays cheap no matter how many
     messages the run has accumulated. *)
  let net = M.net sys in
  let set name v = Telemetry.Registry.set_gauge (Telemetry.Registry.gauge reg name) v in
  set "messages_sent" (float_of_int (Netsim.Net.messages_sent net));
  set "messages_delivered" (float_of_int (Netsim.Net.messages_delivered net));
  set "messages_dropped" (float_of_int (Netsim.Net.messages_dropped net));
  set "link_hops" (float_of_int (Netsim.Net.hops_traversed net));
  (* Route-cache observables: each recompute is one full Dijkstra run,
     each hit a query the cache absorbed — the pair quantifies what
     scoped invalidation saves under a fault campaign. *)
  Telemetry.Registry.set_counter reg "route_tree_recompute"
    (Netsim.Net.route_recomputes net);
  Telemetry.Registry.set_counter reg "route_cache_hit"
    (Netsim.Net.route_cache_hits net);
  Telemetry.Registry.set_counter reg "route_invalidation"
    (Netsim.Net.route_invalidations net);
  set "storage_bytes" (float_of_int (Replica_group.storage_bytes (M.storage sys)));
  (* Instantaneous health gauges (pipeline backlog, chain health) and
     the span-loss signal: sampled here so every timeseries window —
     not just the end-of-run snapshot — carries a fresh reading. *)
  M.publish_health sys;
  Telemetry.Registry.set_counter reg "trace_dropped"
    (Telemetry.Tracer.dropped (M.tracer sys));
  Telemetry.Probe.sync_engine_profile reg (M.engine sys)

let snapshot (Packed ((module M), sys)) = snapshot_metrics (module M) sys
