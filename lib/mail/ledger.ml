(* The delivery-invariant checker of §3.1.2c.

   Every message id gets one entry recording its lifecycle
   transitions: submitted into the pipeline, deposited into mailboxes
   (one count per distinct server copy), fetched out of a mailbox
   (pre-dedup — every copy a GetMail round drains), retrieved into the
   recipient's inbox (post-dedup), or declared undeliverable.  At end
   of run [check] proves the paper's claim: every submitted message is
   retrieved exactly once or explicitly bounced with a reason — never
   silently dropped, never duplicated into an inbox. *)

type state = {
  mutable submits : int;
  mutable submitted_at : float;
  mutable copies_deposited : int;
  mutable copies_fetched : int;
  mutable copies_purged : int;
  mutable retrievals : int;
  mutable first_retrieved_at : float;  (* nan until retrieved *)
  mutable undeliverable : string option;
  mutable quorum_acks : int;
  mutable degraded_acks : int;
}

type t = { entries : (Message.id, state) Hashtbl.t }

let create () = { entries = Hashtbl.create 256 }

let entry t id =
  match Hashtbl.find_opt t.entries id with
  | Some st -> st
  | None ->
      let st =
        {
          submits = 0;
          submitted_at = nan;
          copies_deposited = 0;
          copies_fetched = 0;
          copies_purged = 0;
          retrievals = 0;
          first_retrieved_at = nan;
          undeliverable = None;
          quorum_acks = 0;
          degraded_acks = 0;
        }
      in
      Hashtbl.replace t.entries id st;
      st

let record_submit t (m : Message.t) ~at =
  let st = entry t m.Message.id in
  if st.submits = 0 then st.submitted_at <- at;
  st.submits <- st.submits + 1

let record_deposit t (m : Message.t) ~at:_ =
  let st = entry t m.Message.id in
  st.copies_deposited <- st.copies_deposited + 1

let record_fetch t (m : Message.t) ~at:_ =
  let st = entry t m.Message.id in
  st.copies_fetched <- st.copies_fetched + 1

let record_purge t id ~at:_ =
  let st = entry t id in
  st.copies_purged <- st.copies_purged + 1

let record_ack t (m : Message.t) ~degraded ~at:_ =
  let st = entry t m.Message.id in
  if degraded then st.degraded_acks <- st.degraded_acks + 1
  else st.quorum_acks <- st.quorum_acks + 1

let record_retrieve t (m : Message.t) ~at =
  let st = entry t m.Message.id in
  if st.retrievals = 0 then st.first_retrieved_at <- at;
  st.retrievals <- st.retrievals + 1

let record_undeliverable t (m : Message.t) ~reason ~at:_ =
  let st = entry t m.Message.id in
  if st.undeliverable = None then st.undeliverable <- Some reason

let size t = Hashtbl.length t.entries

(* An id is settled when its outcome is final *and* no mailbox still
   holds an unfetched copy that could resurface it later: pruning
   dedup state for such an id can no longer create a duplicate. *)
let settled t id =
  match Hashtbl.find_opt t.entries id with
  | None -> true
  | Some st ->
      st.copies_fetched + st.copies_purged >= st.copies_deposited
      && (st.retrievals > 0 || st.undeliverable <> None)

type violation_kind = Lost | Duplicate

type violation = { id : Message.id; kind : violation_kind; detail : string }

type verdict = {
  submitted : int;
  delivered : int;
  undeliverable : int;
  lost : int;
  duplicates : int;
  spurious_bounces : int;
  in_mailbox : int;
  purged : int;
  quorum_acks : int;
  degraded_acks : int;
  ok : bool;
  violations : violation list;
}

let check t =
  let submitted = ref 0
  and delivered = ref 0
  and undeliv = ref 0
  and lost = ref 0
  and dups = ref 0
  and spurious = ref 0
  and in_mailbox = ref 0
  and purged = ref 0
  and quorum_acks = ref 0
  and degraded_acks = ref 0
  and violations = ref [] in
  Hashtbl.iter
    (fun id st ->
      if st.submits > 0 then incr submitted;
      purged := !purged + st.copies_purged;
      quorum_acks := !quorum_acks + st.quorum_acks;
      degraded_acks := !degraded_acks + st.degraded_acks;
      in_mailbox :=
        !in_mailbox
        + Int.max 0 (st.copies_deposited - st.copies_fetched - st.copies_purged);
      if st.retrievals = 1 then begin
        incr delivered;
        if st.undeliverable <> None then incr spurious
      end
      else if st.retrievals > 1 then begin
        incr dups;
        violations :=
          {
            id;
            kind = Duplicate;
            detail =
              Printf.sprintf "retrieved %d times (deposited %d, fetched %d)"
                st.retrievals st.copies_deposited st.copies_fetched;
          }
          :: !violations
      end
      else
        match st.undeliverable with
        | Some _ -> incr undeliv
        | None ->
            incr lost;
            violations :=
              {
                id;
                kind = Lost;
                detail =
                  Printf.sprintf
                    "submitted %d times, deposited %d, fetched %d, never retrieved \
                     nor declared undeliverable"
                    st.submits st.copies_deposited st.copies_fetched;
              }
              :: !violations)
    t.entries;
  let violations = List.sort (fun a b -> Int.compare a.id b.id) !violations in
  {
    submitted = !submitted;
    delivered = !delivered;
    undeliverable = !undeliv;
    lost = !lost;
    duplicates = !dups;
    spurious_bounces = !spurious;
    in_mailbox = !in_mailbox;
    purged = !purged;
    quorum_acks = !quorum_acks;
    degraded_acks = !degraded_acks;
    ok = !lost = 0 && !dups = 0;
    violations;
  }

let string_of_kind = function Lost -> "lost" | Duplicate -> "duplicate"

let verdict_to_json v =
  Telemetry.Json.Obj
    [
      ("ok", Telemetry.Json.Bool v.ok);
      ("submitted", Telemetry.Json.Int v.submitted);
      ("delivered", Telemetry.Json.Int v.delivered);
      ("undeliverable", Telemetry.Json.Int v.undeliverable);
      ("lost", Telemetry.Json.Int v.lost);
      ("duplicates", Telemetry.Json.Int v.duplicates);
      ("spurious_bounces", Telemetry.Json.Int v.spurious_bounces);
      ("in_mailbox", Telemetry.Json.Int v.in_mailbox);
      ("purged", Telemetry.Json.Int v.purged);
      ("quorum_acks", Telemetry.Json.Int v.quorum_acks);
      ("degraded_acks", Telemetry.Json.Int v.degraded_acks);
      ( "violations",
        Telemetry.Json.List
          (List.map
             (fun viol ->
               Telemetry.Json.Obj
                 [
                   ("id", Telemetry.Json.Int viol.id);
                   ("kind", Telemetry.Json.String (string_of_kind viol.kind));
                   ("detail", Telemetry.Json.String viol.detail);
                 ])
             v.violations) );
    ]

let pp_verdict ppf v =
  Format.fprintf ppf
    "%s: %d submitted, %d delivered, %d undeliverable, %d lost, %d duplicated"
    (if v.ok then "OK" else "VIOLATED")
    v.submitted v.delivered v.undeliverable v.lost v.duplicates;
  if v.spurious_bounces > 0 then
    Format.fprintf ppf " (%d spurious bounces)" v.spurious_bounces;
  List.iter
    (fun viol ->
      Format.fprintf ppf "@.  message %d %s: %s" viol.id
        (string_of_kind viol.kind) viol.detail)
    v.violations
