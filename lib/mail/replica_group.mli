(** Replicated mailbox groups — the storage layer behind the redesigned
    system API.

    §3.1.1's secondary-server extension anticipated exactly the failure
    PR 5 measured: one crashed authority server takes its users' mail
    with it.  This module makes the replica chains
    ({!Loadbalance.Replicas}) real at runtime: every user's mailbox
    lives on an ordered authority chain of {e holders}
    ({!Server.t} instances this module owns), deposits fan out to a
    write quorum (driven by {!Pipeline}), GetMail serves from the
    highest-priority live holder, and the group keeps the cross-holder
    copy bookkeeping that makes replication invisible to the delivery
    invariant:

    - a copy {!write} is deduplicated per (holder, id) and {e refused}
      once the id was retrieved anywhere ([Superseded]) — a late
      replicate cannot resurrect mail the user already has;
    - a {!fetch} marks the id retrieved group-wide and purges the
      remaining copies: live chain members immediately, down members
      at {!note_recovery} (resync) — so duplicate copies never reach a
      second GetMail round, and the ledger's settled-state machinery
      ({!Ledger.settled}) still converges (purged copies count as
      accounted-for).

    Counters written: [replica_copy_writes], [replica_purges],
    [replica_resyncs], [replica_failovers].  With a tracer, a fetch
    served by a lower-priority holder while the primary is down emits
    an instant ["getmail.failover"] root span. *)

type write_status =
  | Stored  (** new copy written to the holder. *)
  | Duplicate  (** this holder already has an unfetched copy. *)
  | Superseded
      (** the id was already retrieved somewhere — write refused. *)

type t

val create :
  ?mailbox_policy:Mailbox.policy ->
  ?ledger:Ledger.t ->
  ?tracer:Telemetry.Tracer.t ->
  ?metrics:Telemetry.Registry.t ->
  counters:Dsim.Stats.Counter.t ->
  chain_of:(int -> Netsim.Graph.node list) ->
  is_up:(Netsim.Graph.node -> bool) ->
  unit ->
  t
(** [chain_of] maps a user (by interned id, {!Naming.Intern}) to their
    current ordered authority chain (primary first) and [is_up] reports node liveness; both are
    consulted at call time, so late binding through the owning system
    is fine.  With [ledger], every copy write, purge and resync is
    recorded ({!Ledger.record_deposit} / {!Ledger.record_purge}).
    With [metrics], the [delivery_latency] and [end_to_end_latency]
    histograms are registered eagerly and fed at deposit / fetch time
    — each message's latency observed exactly once, the moment it
    becomes known, so per-window timeseries sampling never has to
    rescan the message list (see {!Mail.System.snapshot_metrics}). *)

val add_holder : t -> node:Netsim.Graph.node -> region:string -> unit
(** Register a mailbox holder (one per server node).
    @raise Invalid_argument if the node was already added. *)

val holder : t -> Netsim.Graph.node -> Server.t
(** @raise Invalid_argument on a non-holder node. *)

val mem_holder : t -> Netsim.Graph.node -> bool

val nodes : t -> Netsim.Graph.node list
(** All holder nodes, sorted. *)

val region : t -> Netsim.Graph.node -> string
val last_start : t -> Netsim.Graph.node -> float
val chain : t -> int -> Netsim.Graph.node list
(** By interned user id. *)

val quorum_of : Netsim.Graph.node list -> int
(** Majority write quorum of a chain: [length / 2 + 1] — 1 for a
    singleton chain, 2 for length 2 or 3, 3 for length 4 or 5. *)

val write : t -> on:Netsim.Graph.node -> Message.t -> at:float -> write_status
(** Store one copy on one holder (coordinator local write or replica
    write), with the dedup/refusal rules above.  Only [Stored]
    actually touches the holder and the ledger. *)

val fetch :
  t -> on:Netsim.Graph.node -> uid:int -> Naming.Name.t -> at:float ->
  Message.t list
(** Drain the user's mailbox on one holder (the GetMail poll).  Every
    served message is marked retrieved group-wide; its copies on live
    other chain members are purged now, down members at resync.
    Serving while the chain's primary is down counts a
    [replica_failovers] and emits the failover span. *)

val note_recovery : t -> node:Netsim.Graph.node -> at:float -> unit
(** The holder rejoined: bump its [LastStartTime] and purge every copy
    it holds whose id was retrieved during the outage. *)

val copies : t -> Message.id -> Netsim.Graph.node list
(** Holders with an unfetched copy of the id, sorted. *)

val no_copies : t -> Message.id -> bool

val view : t -> User_agent.server_view
(** The agent-facing view of the group: liveness, [LastStartTime] and
    {!fetch} — GetMail's ordered-scan machinery works unchanged on
    top, but every poll now routes through the group's failover and
    purge logic. *)

val total_pending : t -> int
val storage_bytes : t -> int

val publish_gauges : t -> users:(unit -> int list) -> Telemetry.Registry.t -> unit
(** Publish chain-health gauges for the per-window monitors:
    [replica_holders_up] (registered holders currently up),
    [replica_chains_degraded] (distinct authority chains with at
    least one holder down but at least one up),
    [replica_chains_down] (chains with every holder down) and
    [chain_health] (mean live fraction across distinct chains; [1.]
    when no chains exist).  Chains are resolved through [chain_of]
    for the given users and deduplicated on the node list. *)

val cleanup_all : t -> now:float -> max_age:float -> int
(** Run the archive clean-up policy over every holder. *)

val tracked_ids : t -> int
(** Size of the retrieved-set plus live copy table — what {!compact}
    bounds. *)

val compact : t -> (Message.id -> bool) -> int
(** Drop retrieved-set entries for settled ids (predicate from
    {!Pipeline.prunable}); returns how many were removed.  Copy-table
    entries clear themselves as copies are fetched or purged, and an
    id with a live copy is never settled, so only the retrieved set
    needs pruning. *)
