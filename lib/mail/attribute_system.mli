(** Design 3: the attribute-based mail system (§3.3).

    Recipients are identified by attribute predicates instead of exact
    addresses.  Each region keeps an attribute {!Naming.Directory} of
    its users' profiles (visibility-controlled, §3.3.1).  A search is
    executed as the paper prescribes: a query travels from the source
    region over the {e backbone MST} to the selected target regions
    and down each region's {e local MST}; responses are combined into
    summary messages on the way back up (convergecast), with parents
    timing out on dead nodes.  The §3.3.B cost table is computed from
    the same trees and acts as the flow-control estimate a user sees
    before broadcasting.

    Point-to-point delivery of the resulting mail reuses the design-2
    substrate ({!Location_system}): an attribute mail system is an
    ordinary mail system plus attribute search and mass distribution. *)

type t

val create :
  ?config:Location_system.config -> Netsim.Topology.mail_site -> t
(** Builds the underlying {!Location_system}, the backbone + local
    MSTs, and one directory per region (initially empty).
    @raise Invalid_argument if a region or the backbone graph is
    disconnected. *)

(** {1 Access} *)

val base : t -> Location_system.t
(** The underlying point-to-point mail system. *)

val metrics : t -> Telemetry.Registry.t
(** The base system's registry, created with base label
    [design="attribute"]. *)

val backbone : t -> Mst.Backbone.t
val graph : t -> Netsim.Graph.t
val regions : t -> string list

val shard : t -> Netsim.Graph.node -> Naming.Directory.t option
(** The directory shard one server holds — profiles are distributed
    over a region's servers by hash group ("several name servers
    collectively manage the name space", §2). *)

val directory : t -> string -> Naming.Directory.t option
(** A merged {e read-only} view of all the region's shards; [None]
    for regions without servers.  Writes go through
    {!register_profile}. *)

val cost_table : t -> source:string -> Mst.Cost_table.t

(** {1 Profiles} *)

val register_profile : t -> Naming.Directory.profile -> unit
(** Stores the profile in the shard of the user's primary authority
    server; replaces any existing profile for the same name.
    @raise Invalid_argument if the name is not a user of the system or
    no shard is responsible for it. *)

val profile_of : t -> Naming.Name.t -> Naming.Directory.profile option

val populate_random : t -> rng:Dsim.Rng.t -> unit
(** Generate a plausible profile (organisation, role, specialty
    keywords, city, experience; some attributes organisation-private)
    for every user that does not have one yet — workload material for
    the examples and benches. *)

(** {1 Search and mass distribution} *)

type search_result = {
  matches : Naming.Name.t list;  (** sorted, duplicates removed. *)
  examined : int;  (** profiles scanned across the searched shards. *)
  regions_searched : string list;
  traffic : Mst.Broadcast.gather;
      (** convergecast over backbone + local MSTs; [total] equals the
          number of matches when no node timed out. *)
  estimated_cost : float;  (** the §3.3.B flow-control estimate. *)
}

val search :
  t ->
  from:Naming.Name.t ->
  ?regions:string list ->
  viewer:Naming.Attribute.viewer ->
  Naming.Attribute.pred ->
  search_result
(** [regions] defaults to all regions.  The search respects attribute
    visibility with respect to [viewer].
    @raise Invalid_argument on unknown user or region. *)

val mass_mail :
  t ->
  sender:Naming.Name.t ->
  ?regions:string list ->
  ?subject:string ->
  ?body:string ->
  viewer:Naming.Attribute.viewer ->
  Naming.Attribute.pred ->
  search_result * Message.t list
(** Search, then submit one message per match (excluding the sender)
    through the underlying mail system.  Run the engine afterwards to
    let deliveries complete. *)

val budget_regions : t -> source:string -> budget:float -> string list
(** Flow control: the cheapest set of regions affordable within
    [budget], per the cost table ("based on the detailed estimate of
    charges …, the user can select his recipients"). *)
